// bench_report: validates and merges benchmark JSON files into one
// BENCH_*.json snapshot. Two input formats are recognised:
//   * "blockbench-sweep-v1" documents written by the bench binaries'
//     --json flag (macro sweeps; detected by their "rows" array), and
//   * google-benchmark --benchmark_out=... output from bench_components
//     (microbenchmarks; detected by their "benchmarks" array).
// Anything else — unreadable files, parse errors, missing keys — is a
// hard error with a non-zero exit, which is what the CI perf-smoke job
// keys off: a run that produced malformed output must fail the gate.
//
//   bench_report --out=BENCH_2026-08-06.json micro.json sweep1.json ...
//
// --gate-ratio=NUM_NAME/DEN_NAME:MAX (repeatable) compares the cpu_time
// of two microbenchmarks from the same run and fails (non-zero exit)
// when NUM/DEN exceeds MAX. Comparing two benchmarks of one run instead
// of a committed snapshot keeps the gate meaningful across machines —
// see docs/BENCHMARKING.md.
//
// --gate-events-ratio=BENCH:K=V1/K=V2:MIN (repeatable) compares
// sim.events_per_sec between two rows of the sweep named BENCH, selected
// by label (e.g. raw_speed:variant=optimized/variant=legacy:1.8), and
// fails when the ratio falls BELOW MIN — a same-run speedup floor.
//
// --gate-events-vs-baseline=FILE:K=V:MIN (repeatable) reads a committed
// sweep snapshot, locates the row matching the label selector in both
// the snapshot and the current inputs, and fails when
// current/baseline sim.events_per_sec falls below MIN.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "report_common.h"
#include "util/flags.h"
#include "util/json.h"

using bb::util::Json;

namespace {

/// Validates one sweep document beyond "it parsed": every row needs
/// labels and a status, and successful rows need their metrics block.
bb::Status ValidateSweep(const Json& doc, const std::string& path) {
  const Json* rows = doc.Get("rows");
  if (rows == nullptr || !rows->is_array()) {
    return bb::Status::InvalidArgument(path + ": sweep document without rows");
  }
  for (size_t i = 0; i < rows->items().size(); ++i) {
    const Json& row = rows->items()[i];
    if (!row.is_object() || row.Get("labels") == nullptr ||
        row.Get("status") == nullptr) {
      return bb::Status::InvalidArgument(
          path + ": row " + std::to_string(i) + " missing labels/status");
    }
    const Json* status = row.Get("status");
    if (status->is_string() && status->AsString() == "Ok" &&
        row.Get("metrics") == nullptr) {
      return bb::Status::InvalidArgument(
          path + ": OK row " + std::to_string(i) + " without metrics");
    }
  }
  return bb::Status::Ok();
}

// Spec grammar and selector matching live in report_common.h, shared
// with prof_report and mem_report.
using bb::tools::BaselineGateSpec;
using bb::tools::RatioGateSpec;
using bb::tools::SelectorRatioGateSpec;

/// sim.events_per_sec of the first row in `rows` matching the selector;
/// negative when absent.
double EventsPerSecOf(const Json& rows, const std::string& sel) {
  return bb::tools::SweepRowMetric(rows, sel, "sim", "events_per_sec");
}

bb::Status ValidateMicro(const Json& doc, const std::string& path) {
  const Json* benchmarks = doc.Get("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return bb::Status::InvalidArgument(path + ": no benchmarks array");
  }
  for (const Json& b : benchmarks->items()) {
    if (!b.is_object() || b.Get("name") == nullptr) {
      return bb::Status::InvalidArgument(path + ": benchmark entry without name");
    }
  }
  return bb::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path =
      bb::util::FlagValue(argc, argv, "--out").value_or("BENCH.json");
  const char* usage =
      "usage: bench_report [--out=PATH] "
      "[--gate-ratio=NUM_NAME/DEN_NAME:MAX]... "
      "[--gate-events-ratio=BENCH:K=V1/K=V2:MIN]... "
      "[--gate-events-vs-baseline=FILE:K=V:MIN]... FILE.json...\n";
  std::vector<std::string> inputs;
  std::vector<RatioGateSpec> gates;
  std::vector<SelectorRatioGateSpec> events_gates;
  std::vector<BaselineGateSpec> baseline_gates;
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) == 0) {
      if (s.rfind("--gate-ratio=", 0) == 0) {
        RatioGateSpec g;
        if (!bb::tools::ParseRatioGateSpec(
                s.substr(sizeof("--gate-ratio=") - 1), &g)) {
          std::fprintf(stderr, "bench_report: bad gate spec %s\n", s.c_str());
          std::fprintf(stderr, "%s", usage);
          return 2;
        }
        gates.push_back(std::move(g));
        continue;
      }
      if (s.rfind("--gate-events-ratio=", 0) == 0) {
        SelectorRatioGateSpec g;
        if (!bb::tools::ParseSelectorRatioGateSpec(
                s.substr(sizeof("--gate-events-ratio=") - 1), &g)) {
          std::fprintf(stderr, "bench_report: bad gate spec %s\n", s.c_str());
          std::fprintf(stderr, "%s", usage);
          return 2;
        }
        events_gates.push_back(std::move(g));
        continue;
      }
      if (s.rfind("--gate-events-vs-baseline=", 0) == 0) {
        BaselineGateSpec g;
        if (!bb::tools::ParseBaselineGateSpec(
                s.substr(sizeof("--gate-events-vs-baseline=") - 1), &g)) {
          std::fprintf(stderr, "bench_report: bad gate spec %s\n", s.c_str());
          std::fprintf(stderr, "%s", usage);
          return 2;
        }
        baseline_gates.push_back(std::move(g));
        continue;
      }
      if (s.rfind("--out=", 0) != 0) {
        std::fprintf(stderr, "bench_report: unknown flag %s\n", s.c_str());
        std::fprintf(stderr, "%s", usage);
        return 2;
      }
      continue;
    }
    inputs.push_back(s);
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "bench_report: no input files\n");
    std::fprintf(stderr, "%s", usage);
    return 2;
  }

  Json micro = Json::Array();
  Json macro = Json::Array();
  // First sighting of each microbenchmark name -> cpu_time, for the
  // ratio gates.
  std::map<std::string, double> bench_cpu;
  for (const std::string& path : inputs) {
    auto doc = bb::tools::LoadJson(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "bench_report: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    if (doc->Get("benchmarks") != nullptr) {
      bb::Status s = ValidateMicro(*doc, path);
      if (!s.ok()) {
        std::fprintf(stderr, "bench_report: %s\n", s.ToString().c_str());
        return 1;
      }
      for (const Json& b : doc->Get("benchmarks")->items()) {
        const Json* name = b.Get("name");
        const Json* cpu = b.Get("cpu_time");
        if (name != nullptr && cpu != nullptr && cpu->is_number()) {
          bench_cpu.emplace(name->AsString(), cpu->AsDouble());
        }
      }
      Json entry = Json::Object();
      entry.Set("source", path);
      if (const Json* ctx = doc->Get("context")) entry.Set("context", *ctx);
      entry.Set("benchmarks", *doc->Get("benchmarks"));
      micro.Push(std::move(entry));
      std::printf("bench_report: %s: %zu microbenchmarks\n", path.c_str(),
                  doc->Get("benchmarks")->items().size());
    } else if (doc->Get("rows") != nullptr) {
      bb::Status s = ValidateSweep(*doc, path);
      if (!s.ok()) {
        std::fprintf(stderr, "bench_report: %s\n", s.ToString().c_str());
        return 1;
      }
      Json entry = Json::Object();
      entry.Set("source", path);
      if (const Json* schema = doc->Get("schema")) entry.Set("schema", *schema);
      if (const Json* bench = doc->Get("bench")) entry.Set("bench", *bench);
      if (const Json* full = doc->Get("full")) entry.Set("full", *full);
      if (const Json* jobs = doc->Get("jobs")) entry.Set("jobs", *jobs);
      if (const Json* w = doc->Get("wall_seconds")) {
        entry.Set("wall_seconds", *w);
      }
      entry.Set("rows", *doc->Get("rows"));
      macro.Push(std::move(entry));
      std::printf("bench_report: %s: %zu sweep rows\n", path.c_str(),
                  doc->Get("rows")->items().size());
    } else {
      std::fprintf(stderr,
                   "bench_report: %s: neither a sweep document (rows) nor "
                   "google-benchmark output (benchmarks)\n",
                   path.c_str());
      return 1;
    }
  }

  for (const RatioGateSpec& g : gates) {
    auto num = bench_cpu.find(g.num);
    auto den = bench_cpu.find(g.den);
    if (num == bench_cpu.end() || den == bench_cpu.end()) {
      std::fprintf(stderr, "bench_report: gate benchmark missing: %s\n",
                   (num == bench_cpu.end() ? g.num : g.den).c_str());
      return 1;
    }
    if (den->second <= 0) {
      std::fprintf(stderr, "bench_report: gate denominator %s has cpu_time 0\n",
                   g.den.c_str());
      return 1;
    }
    if (!bb::tools::CheckGate("bench_report", g.num + "/" + g.den,
                              num->second / den->second, g.bound)) {
      return 1;
    }
  }

  for (const SelectorRatioGateSpec& g : events_gates) {
    double num = -1, den = -1;
    for (const Json& entry : macro.items()) {
      const Json* bench = entry.Get("bench");
      if (bench == nullptr || !bench->is_string() ||
          bench->AsString() != g.name) {
        continue;
      }
      const Json* rows = entry.Get("rows");
      if (rows == nullptr) continue;
      if (num < 0) num = EventsPerSecOf(*rows, g.num_sel);
      if (den < 0) den = EventsPerSecOf(*rows, g.den_sel);
    }
    if (num < 0 || den <= 0) {
      std::fprintf(stderr,
                   "bench_report: gate rows missing: %s (%s / %s)\n",
                   g.name.c_str(), g.num_sel.c_str(), g.den_sel.c_str());
      return 1;
    }
    if (!bb::tools::CheckGate(
            "bench_report",
            "events " + g.name + " " + g.num_sel + "/" + g.den_sel, num / den,
            g.bound, /*is_floor=*/true)) {
      return 1;
    }
  }

  for (const BaselineGateSpec& g : baseline_gates) {
    auto doc = bb::tools::LoadJson(g.file);
    if (!doc.ok()) {
      std::fprintf(stderr, "bench_report: baseline: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    if (doc->Get("rows") == nullptr) {
      std::fprintf(stderr, "bench_report: baseline %s is not a sweep document\n",
                   g.file.c_str());
      return 1;
    }
    double baseline = EventsPerSecOf(*doc->Get("rows"), g.sel);
    double current = -1;
    for (const Json& entry : macro.items()) {
      const Json* rows = entry.Get("rows");
      if (rows == nullptr) continue;
      current = EventsPerSecOf(*rows, g.sel);
      if (current >= 0) break;
    }
    if (baseline <= 0 || current < 0) {
      std::fprintf(stderr,
                   "bench_report: baseline gate rows missing: %s in %s\n",
                   g.sel.c_str(), g.file.c_str());
      return 1;
    }
    if (!bb::tools::CheckGate("bench_report",
                              "events-vs-baseline " + g.sel + " (" + g.file +
                                  ")",
                              current / baseline, g.bound,
                              /*is_floor=*/true)) {
      return 1;
    }
  }

  Json report = Json::Object();
  report.Set("schema", "blockbench-report-v1");
  report.Set("micro", std::move(micro));
  report.Set("macro", std::move(macro));
  std::string text = report.Dump(2);
  text.push_back('\n');
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("bench_report: wrote %s\n", out_path.c_str());
  return 0;
}
