// prof_report: validates blockbench-profile-v1 documents (written by
// bench --profile / bbench --profile) and prints where the wall clock
// went.
//
//   prof_report PROFILE.json...
//       Validate each profile and print its subsystem attribution
//       table (self seconds, % of run wall time, allocs, bytes copied).
//
//   prof_report --diff BEFORE.json AFTER.json
//       Attribute a throughput regression or win: per-subsystem self
//       time / allocation / copy deltas, largest absolute delta first.
//       The same table bench_raw_speed prints inline, so a profile-diff
//       can ride along with every raw-speed PR.
//
//   prof_report --min-attributed=PCT PROFILE.json...
//       Additionally require that at least PCT% of each profile's wall
//       time is attributed to named (non-"other") subsystems — the CI
//       check that instrumentation coverage has not rotted.
//
// Exit codes: 0 all files valid (and gates met), 1 validation/read/gate
// failure, 2 usage.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "report_common.h"
#include "util/json.h"

using bb::util::Json;

namespace {

bb::Result<Json> LoadProfile(const std::string& path) {
  auto doc = bb::tools::LoadJson(path);
  if (!doc.ok()) return doc.status();
  bb::Status s = bb::obs::ValidateProfile(*doc);
  if (!s.ok()) {
    return bb::Status::InvalidArgument(path + ": " + s.ToString());
  }
  return *doc;
}

int Usage() {
  std::fprintf(stderr,
               "usage: prof_report [--min-attributed=PCT] PROFILE.json...\n"
               "       prof_report --diff BEFORE.json AFTER.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool diff = false;
  double min_attributed = -1;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s == "--diff") {
      diff = true;
    } else if (s.rfind("--min-attributed=", 0) == 0) {
      if (!bb::tools::ParsePositiveDouble(
              s.substr(sizeof("--min-attributed=") - 1), &min_attributed) ||
          min_attributed > 100) {
        std::fprintf(stderr, "prof_report: bad --min-attributed value %s\n",
                     s.c_str());
        return Usage();
      }
    } else if (s.rfind("--", 0) == 0) {
      std::fprintf(stderr, "prof_report: unknown flag %s\n", s.c_str());
      return Usage();
    } else {
      inputs.push_back(s);
    }
  }

  if (diff) {
    if (inputs.size() != 2 || min_attributed > 0) return Usage();
    auto before = LoadProfile(inputs[0]);
    auto after = LoadProfile(inputs[1]);
    for (const auto* r : {&before, &after}) {
      if (!r->ok()) {
        std::fprintf(stderr, "prof_report: %s\n",
                     r->status().ToString().c_str());
        return 1;
      }
    }
    std::printf("profile diff: %s -> %s\n", inputs[0].c_str(),
                inputs[1].c_str());
    std::fputs(bb::obs::RenderProfileDiff(*before, *after).c_str(), stdout);
    return 0;
  }

  if (inputs.empty()) return Usage();
  for (const std::string& path : inputs) {
    auto doc = LoadProfile(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "prof_report: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    double duration = doc->Get("duration_seconds")->AsDouble();
    uint64_t threads =
        doc->Get("threads") != nullptr ? doc->Get("threads")->AsUint() : 0;
    std::printf("%s: OK (%.3fs wall, %llu thread%s)\n", path.c_str(),
                duration, (unsigned long long)threads,
                threads == 1 ? "" : "s");
    std::fputs(bb::obs::RenderProfileAttribution(*doc).c_str(), stdout);
    if (min_attributed > 0) {
      double pct = 100.0 * bb::obs::AttributedFraction(*doc);
      if (!bb::tools::CheckGate("prof_report", path + " attributed%", pct,
                                min_attributed, /*is_floor=*/true)) {
        return 1;
      }
    }
    std::printf("\n");
  }
  return 0;
}
