// bbench: the command-line front end to the framework — pick a platform,
// a workload and a load shape, get the paper's metrics. The CLI analogue
// of the paper's "Driver takes as input a workload and user-defined
// configuration, executes it on the blockchain and outputs running
// statistics".
//
//   bbench --platform=hyperledger --workload=ycsb --servers=8 ...
//     --clients=8 --rate=100 --duration=120
//
// Optional fault/attack injection:
//   --crash=ID@T          crash server ID at time T (repeatable)
//   --partition=T0:T1     split the network in half during [T0, T1)
//   --delay=SECONDS       inject one-way network delay
//   --corrupt=P           corrupt each message with probability P
//
// Observability:
//   --sample=PERIOD       live-sample per-node state every PERIOD seconds
//                         (feeds --trace counter tracks)
//   --audit=PATH          post-run cross-node ledger audit; writes the
//                         blockbench-audit-v1 report to PATH and exits 3
//                         when a safety invariant was violated
//   --profile=PATH        wall-clock profile of the run itself: writes a
//                         blockbench-profile-v1 doc to PATH plus folded
//                         stacks to PATH.folded (prof_report reads both)
//   --metrics[=PATH]      print the per-node metrics table; with =PATH,
//                         also write the registry as JSON to PATH
//   --mem=PATH            per-subsystem memory accounting (logical bytes
//                         on virtual time): prints the attribution table
//                         and writes a blockbench-mem-v1 dump to PATH
//                         (mem_report validates / diffs / gates it)
//   --blackbox=PATH       arm the flight recorder and dump the
//                         blockbench-blackbox-v1 black box to PATH after
//                         the run; with --audit, a violation dumps to
//                         AUDIT_PATH.blackbox.json even without this flag
//   --replay=PATH         re-run the configuration recorded in a blackbox
//                         dump (explicit flags still override fields)
//   --until=TIME[,SEQ]    with --replay: stop at virtual TIME, or right
//                         after message seq SEQ was sent
//
// Exit codes (documented here and in --help, nowhere else): 0 run ok,
// 1 setup or output-write failure, 2 usage error, 3 run completed but
// the --audit ledger check found a safety-invariant violation.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.h"
#include "obs/auditor.h"
#include "obs/memtrack.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "platform/forensics.h"
#include "report_common.h"
#include "platform/platform.h"
#include "platform/registry.h"
#include "util/flags.h"
#include "workloads/donothing.h"
#include "workloads/doubler.h"
#include "workloads/etherid.h"
#include "workloads/smallbank.h"
#include "workloads/wavespresale.h"
#include "workloads/ycsb.h"

using namespace bb;

namespace {

struct Args {
  std::string platform = "hyperledger";
  std::string workload = "ycsb";
  size_t servers = 8;
  size_t clients = 8;
  size_t shards = 0;  // 0 = leave the spec's @shards= (or unsharded) alone
  double cross_shard = 0;
  double rate = 100;
  double duration = 120;
  double warmup = 10;
  double drain = 30;  // DriverConfig default; a replayed spec may differ
  uint64_t seed = 42;
  uint64_t platform_seed = 42;  // normally == seed; replay may split them
  uint64_t driver_seed = 42;
  uint64_t ycsb_records = 0;  // 0 = workload default; only replay sets these
  uint64_t smallbank_accounts = 0;
  size_t max_outstanding = 0;
  std::vector<std::pair<size_t, double>> crashes;  // (server, time)
  double partition_start = -1, partition_end = -1;
  double delay = 0;
  double corrupt = 0;
  bool timeline = false;
  std::string trace_path;
  bool metrics = false;
  std::string metrics_path;
  std::string mem_path;
  std::string profile_path;
  double sample = 0;
  std::string audit_path;
  std::string blackbox_path;
  std::string replay_path;
  double until_time = -1;
  uint64_t until_seq = 0;
};

void Usage() {
  std::fprintf(stderr, R"(usage: bbench [options]
  --platform=NAME or a layer-stack spec "consensus+tree[/backend]+exec"
             (e.g. --platform=hyperledger or --platform=pbft+trie+evm;
              append "@shards=S" for a sharded stack;
              --list-platforms shows the registry and the option axes)
  --workload=ycsb|smallbank|etherid|doubler|wavespresale|donothing
  --servers=N --clients=N --rate=TXS --duration=SEC --warmup=SEC
  --shards=S (shorthand for "@shards=S"; --servers is then PER SHARD)
  --cross-shard=P (ycsb/smallbank: fraction of txs straddling shards)
  --max-outstanding=N (closed-loop window; 0 = open loop)
  --seed=N
  --crash=ID@T (repeatable)  --partition=T0:T1
  --delay=SEC  --corrupt=PROB
  --timeline (print committed tx per second)
  --trace=PATH (write a Chrome/Perfetto trace of the run; also prints the
                per-phase commit latency breakdown)
  --sample=PERIOD (live-sample per-node state every PERIOD virtual seconds;
                   sampled gauges land in --trace as counter tracks)
  --audit=PATH (run the post-run ledger audit, write blockbench-audit-v1
                JSON to PATH; exit code 3 on a safety-invariant violation)
  --profile=PATH (wall-clock-profile the run: blockbench-profile-v1 JSON
                  to PATH, folded stacks to PATH.folded; see prof_report)
  --metrics[=PATH] (print the per-node metrics table after the run; with
                    =PATH also write the registry as JSON to PATH)
  --mem=PATH (account per-subsystem memory — logical bytes on virtual
              time; prints the attribution table and writes a
              blockbench-mem-v1 dump to PATH for mem_report)
  --blackbox=PATH (arm the flight recorder; dump blockbench-blackbox-v1
                   JSON to PATH after the run. --audit alone also arms it
                   and dumps to AUDIT_PATH.blackbox.json on a violation)
  --replay=PATH (re-run the config recorded in a blackbox dump; explicit
                 flags override recorded fields; see blackbox_report)
  --until=TIME[,SEQ] (with --replay: stop at virtual second TIME, or as
                      soon as message seq SEQ has been sent)
  --list-platforms (print the platform registry and exit)

exit codes: 0 run ok; 1 setup or output-write failure; 2 usage error;
            3 run completed but --audit found a safety violation
)");
}

bool Parse(int argc, char** argv, Args* a) {
  // Reject typos up front; the util helpers below then extract values
  // (last occurrence wins, like every bench binary).
  const char* known_kv[] = {"--platform",        "--workload", "--servers",
                            "--clients",         "--rate",     "--duration",
                            "--warmup",          "--seed",     "--max-outstanding",
                            "--delay",           "--corrupt",  "--crash",
                            "--partition",       "--trace",    "--sample",
                            "--audit",           "--shards",   "--cross-shard",
                            "--profile",         "--metrics",  "--blackbox",
                            "--replay",          "--until",    "--mem"};
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s == "--timeline" || s == "--list-platforms" || s == "--metrics") {
      continue;
    }
    if (s == "--help" || s == "-h") return false;
    bool matched = false;
    for (const char* k : known_kv) {
      if (s.rfind(std::string(k) + "=", 0) == 0) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "unknown flag: %s\n", s.c_str());
      return false;
    }
  }

  if (util::HasFlag(argc, argv, "--list-platforms")) {
    std::fprintf(stderr, "registered platforms:\n");
    for (const auto& [name, def] :
         platform::PlatformRegistry::Instance().definitions()) {
      std::fprintf(stderr, "  %-12s %s\n", name.c_str(),
                   def.description.c_str());
    }
    std::fprintf(stderr, R"(
stack spec axes ("consensus+tree[/backend]+exec[@shards=S]"):
  consensus    pow | poa | pbft | tendermint | raft
  tree         trie | bucket
  backend      /memkv (default) | /diskkv (needs options.data_dir)
  exec         evm | native
  @shards=S    S independent consensus groups of --servers nodes each
               over a hash-partitioned state space, with 2PC cross-shard
               commit (requires a finality consensus: pbft | tendermint
               | raft)
examples: pbft+trie+evm   tendermint+bucket+native   pbft+trie+evm@shards=4
)");
    std::exit(0);
  }

  a->platform = util::FlagValue(argc, argv, "--platform").value_or(a->platform);
  a->workload = util::FlagValue(argc, argv, "--workload").value_or(a->workload);
  a->servers = size_t(util::FlagUint(argc, argv, "--servers", a->servers));
  a->clients = size_t(util::FlagUint(argc, argv, "--clients", a->clients));
  a->rate = util::FlagDouble(argc, argv, "--rate", a->rate);
  a->duration = util::FlagDouble(argc, argv, "--duration", a->duration);
  a->warmup = util::FlagDouble(argc, argv, "--warmup", a->warmup);
  a->seed = util::FlagUint(argc, argv, "--seed", a->seed);
  a->max_outstanding = size_t(
      util::FlagUint(argc, argv, "--max-outstanding", a->max_outstanding));
  a->shards = size_t(util::FlagUint(argc, argv, "--shards", a->shards));
  a->cross_shard =
      util::FlagDouble(argc, argv, "--cross-shard", a->cross_shard);
  a->delay = util::FlagDouble(argc, argv, "--delay", a->delay);
  a->corrupt = util::FlagDouble(argc, argv, "--corrupt", a->corrupt);
  a->timeline = util::HasFlag(argc, argv, "--timeline");
  a->trace_path = util::FlagValue(argc, argv, "--trace").value_or("");
  a->metrics_path = util::FlagValue(argc, argv, "--metrics").value_or("");
  a->metrics =
      util::HasFlag(argc, argv, "--metrics") || !a->metrics_path.empty();
  a->mem_path = util::FlagValue(argc, argv, "--mem").value_or("");
  a->profile_path = util::FlagValue(argc, argv, "--profile").value_or("");
  a->sample = util::FlagDouble(argc, argv, "--sample", a->sample);
  a->audit_path = util::FlagValue(argc, argv, "--audit").value_or("");
  a->blackbox_path = util::FlagValue(argc, argv, "--blackbox").value_or("");
  if (auto until = util::FlagValue(argc, argv, "--until")) {
    auto comma = until->find(',');
    a->until_time = std::atof(until->substr(0, comma).c_str());
    if (comma != std::string::npos) {
      a->until_seq = std::strtoull(until->substr(comma + 1).c_str(),
                                   nullptr, 10);
    }
  }

  // --crash is repeatable, so collect every occurrence by hand.
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--crash=", 0) != 0) continue;
    std::string v = s.substr(sizeof("--crash=") - 1);
    auto at = v.find('@');
    if (at == std::string::npos) return false;
    a->crashes.emplace_back(size_t(std::atoll(v.substr(0, at).c_str())),
                            std::atof(v.substr(at + 1).c_str()));
  }
  if (auto part = util::FlagValue(argc, argv, "--partition")) {
    auto colon = part->find(':');
    if (colon == std::string::npos) return false;
    a->partition_start = std::atof(part->substr(0, colon).c_str());
    a->partition_end = std::atof(part->substr(colon + 1).c_str());
  }
  return true;
}

platform::PlatformOptions PlatformFor(const std::string& name) {
  auto opts = platform::StackOptionsFromString(name);
  if (!opts.ok()) {
    std::fprintf(stderr, "unknown platform: %s\n",
                 opts.status().ToString().c_str());
    std::exit(2);
  }
  return *opts;
}

std::unique_ptr<core::WorkloadConnector> WorkloadFor(const std::string& name,
                                                     double cross_shard,
                                                     uint64_t ycsb_records,
                                                     uint64_t smallbank_accounts) {
  if (name == "ycsb") {
    workloads::YcsbConfig yc;
    yc.cross_shard_ratio = cross_shard;
    if (ycsb_records > 0) yc.record_count = ycsb_records;
    return std::make_unique<workloads::YcsbWorkload>(yc);
  }
  if (name == "smallbank") {
    workloads::SmallbankConfig sc;
    sc.cross_shard_ratio = cross_shard;
    if (smallbank_accounts > 0) sc.num_accounts = smallbank_accounts;
    return std::make_unique<workloads::SmallbankWorkload>(sc);
  }
  if (name == "etherid") return std::make_unique<workloads::EtherIdWorkload>();
  if (name == "doubler") return std::make_unique<workloads::DoublerWorkload>();
  if (name == "wavespresale")
    return std::make_unique<workloads::WavesPresaleWorkload>();
  if (name == "donothing")
    return std::make_unique<workloads::DoNothingWorkload>();
  std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
  std::exit(2);
}

/// The recorded spec becomes the new Args defaults; Parse() then runs as
/// usual, so any explicit CLI flag still overrides a replayed field.
void ApplySpec(const obs::RunSpec& s, Args* a) {
  a->platform = s.platform;
  a->workload = s.workload;
  a->servers = size_t(s.servers);
  a->clients = size_t(s.clients);
  a->cross_shard = s.cross_shard;
  a->rate = s.rate;
  a->duration = s.duration;
  a->warmup = s.warmup;
  a->drain = s.drain;
  a->max_outstanding = size_t(s.max_outstanding);
  a->seed = s.seed;
  a->platform_seed = s.platform_seed;
  a->driver_seed = s.driver_seed;
  a->ycsb_records = s.ycsb_records;
  a->smallbank_accounts = s.smallbank_accounts;
  for (const auto& [id, t] : s.crashes) a->crashes.emplace_back(size_t(id), t);
  a->partition_start = s.partition_start;
  a->partition_end = s.partition_end;
  a->delay = s.delay;
  a->corrupt = s.corrupt;
}

obs::RunSpec SpecFromArgs(const Args& a) {
  obs::RunSpec s;
  s.platform = a.platform;  // post --shards rewrite: the full stack spec
  s.workload = a.workload;
  s.servers = a.servers;
  s.clients = a.clients;
  s.cross_shard = a.cross_shard;
  s.rate = a.rate;
  s.duration = a.duration;
  s.warmup = a.warmup;
  s.drain = a.drain;
  s.max_outstanding = a.max_outstanding;
  s.seed = a.seed;
  s.platform_seed = a.platform_seed;
  s.driver_seed = a.driver_seed;
  s.ycsb_records = a.ycsb_records;
  s.smallbank_accounts = a.smallbank_accounts;
  for (const auto& [id, t] : a.crashes) s.crashes.emplace_back(uint64_t(id), t);
  s.partition_start = a.partition_start;
  s.partition_end = a.partition_end;
  s.delay = a.delay;
  s.corrupt = a.corrupt;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  // --replay pre-pass: load the dump before Parse() so its recorded run
  // spec seeds the defaults and explicit flags keep the last word.
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--replay=", 0) == 0) {
      a.replay_path = s.substr(sizeof("--replay=") - 1);
    }
  }
  bool replaying = !a.replay_path.empty();
  if (replaying) {
    auto doc = tools::LoadJson(a.replay_path);
    if (!doc.ok()) {
      std::fprintf(stderr, "--replay: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    if (Status vs = obs::ValidateBlackbox(*doc); !vs.ok()) {
      std::fprintf(stderr, "--replay: %s: %s\n", a.replay_path.c_str(),
                   vs.ToString().c_str());
      return 1;
    }
    auto spec = obs::RunSpec::FromJson(*doc->Get("run"));
    if (!spec.ok()) {
      std::fprintf(stderr, "--replay: %s: %s\n", a.replay_path.c_str(),
                   spec.status().ToString().c_str());
      return 1;
    }
    ApplySpec(*spec, &a);
  }
  if (!Parse(argc, argv, &a)) {
    Usage();
    return 2;
  }
  // In a normal run every layer is seeded from --seed. A replayed dump
  // may carry three distinct seeds (the bench harness splits them); an
  // explicit --seed on top of --replay re-unifies them, giving "same
  // scenario, different randomness".
  if (!replaying || util::FlagValue(argc, argv, "--seed").has_value()) {
    a.platform_seed = a.seed;
    a.driver_seed = a.seed;
  }
  if (a.until_time >= 0 || a.until_seq > 0) {
    if (!replaying) {
      std::fprintf(stderr, "--until requires --replay\n");
      return 2;
    }
  }

  // --shards overrides whatever the spec says (including removing an
  // existing "@shards=" suffix when --shards=1).
  if (a.shards > 0) {
    if (size_t at = a.platform.rfind("@shards="); at != std::string::npos) {
      a.platform.resize(at);
    }
    if (a.shards > 1) a.platform += "@shards=" + std::to_string(a.shards);
  }

  sim::Simulation sim(a.seed);
  std::unique_ptr<obs::Tracer> tracer;
  if (!a.trace_path.empty()) {
    tracer = std::make_unique<obs::Tracer>();
    sim.set_tracer(tracer.get());
  }

  // The flight recorder arms whenever a dump could be wanted: an explicit
  // --blackbox, any audited run (a violation auto-dumps the black box),
  // or a replay (whose breakpoint mechanism lives in the recorder).
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!a.blackbox_path.empty() || !a.audit_path.empty() || replaying) {
    recorder = std::make_unique<obs::FlightRecorder>();
    if (a.until_seq > 0) recorder->set_break_seq(a.until_seq);
    sim.set_recorder(recorder.get());
  }

  // --mem: attached before platform construction so every node binds its
  // layer gauges at build time.
  std::unique_ptr<obs::MemTracker> memtracker;
  if (!a.mem_path.empty()) {
    memtracker = std::make_unique<obs::MemTracker>();
    sim.set_memtracker(memtracker.get());
  }

  // --profile: the window opens here (before platform construction) and
  // closes right after Driver::Run, so setup and the event loop are the
  // whole profile; output writing below is deliberately outside it.
  std::unique_ptr<obs::Profiler> profiler;
  std::unique_ptr<obs::Profiler::ThreadScope> prof_scope;
  if (!a.profile_path.empty()) {
    profiler = std::make_unique<obs::Profiler>();
    prof_scope = std::make_unique<obs::Profiler::ThreadScope>(profiler.get());
  }

  std::unique_ptr<platform::Platform> chain_ptr = [&] {
    BB_PROF_SCOPE("driver.setup");
    return platform::MakePlatform(&sim, PlatformFor(a.platform), a.servers,
                                  a.platform_seed);
  }();
  platform::Platform& chain = *chain_ptr;
  auto workload = WorkloadFor(a.workload, a.cross_shard, a.ycsb_records,
                              a.smallbank_accounts);
  Status s = [&] {
    BB_PROF_SCOPE("driver.setup");
    return workload->Setup(&chain);
  }();
  if (!s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    return 1;
  }

  if (a.delay > 0) chain.network().InjectDelay(a.delay);
  if (a.corrupt > 0) chain.network().SetCorruptProbability(a.corrupt);
  for (auto [id, t] : a.crashes) {
    if (id >= chain.num_servers()) {
      std::fprintf(stderr, "--crash server id out of range\n");
      return 2;
    }
    sim.At(t, [&chain, id = id] { chain.network().Crash(sim::NodeId(id)); });
  }
  if (a.partition_start >= 0) {
    std::vector<sim::NodeId> half;
    for (size_t i = 0; i < chain.num_servers() / 2; ++i) {
      half.push_back(sim::NodeId(i));
    }
    sim.At(a.partition_start,
           [&chain, half] { chain.network().Partition(half); });
    sim.At(a.partition_end, [&chain] { chain.network().HealPartition(); });
  }

  core::DriverConfig dc;
  dc.num_clients = a.clients;
  dc.request_rate = a.rate;
  dc.max_outstanding = a.max_outstanding;
  dc.duration = a.duration;
  dc.drain = a.drain;
  dc.warmup = a.warmup;
  dc.seed = a.driver_seed;
  core::Driver driver(&chain, workload.get(), dc);

  std::unique_ptr<obs::Sampler> sampler;
  if (a.sample > 0) {
    sampler = std::make_unique<obs::Sampler>(
        obs::Sampler::Config{a.sample, 0.0});
    platform::AttachStandardProbes(sampler.get(), &chain);
    sampler->Schedule(&sim, a.duration + dc.drain);
  }

  std::printf("bbench: %s / %s, %zu servers, %zu clients, %.0f tx/s/client, "
              "%.0f s\n",
              a.platform.c_str(), a.workload.c_str(), a.servers, a.clients,
              a.rate, a.duration);
  if (replaying && (a.until_time >= 0 || a.until_seq > 0)) {
    // Replay-to-failure: drive the sim ourselves so the run can stop at
    // the requested virtual time — or earlier, when the recorder's
    // message-seq breakpoint requests a stop from inside Network::Send.
    double end = a.duration + dc.drain;
    if (a.until_time >= 0 && a.until_time < end) end = a.until_time;
    driver.StartAll();
    sim.RunUntil(end);
    std::printf("replay stopped at t=%.6f%s\n", sim.Now(),
                sim.stop_requested() ? " (message-seq breakpoint)" : "");
  } else {
    driver.Run();
  }

  if (profiler != nullptr) {
    profiler->set_events(sim.events_executed());
    profiler->Stop();
    prof_scope.reset();  // detach + merge this thread before serializing
    Status ps = profiler->WriteJson(a.profile_path);
    if (ps.ok()) ps = profiler->WriteFolded(a.profile_path + ".folded");
    if (!ps.ok()) {
      std::fprintf(stderr, "profile write failed: %s\n",
                   ps.ToString().c_str());
      return 1;
    }
    std::printf("\nwall profile (%.3f s, %llu events):\n%s",
                profiler->duration_seconds(),
                (unsigned long long)sim.events_executed(),
                obs::RenderProfileAttribution(profiler->ToJson()).c_str());
    std::printf("profile -> %s (+ .folded)\n", a.profile_path.c_str());
  }

  auto r = driver.Report();
  std::printf("\nresults (measured over [%.0f s, %.0f s)):\n", a.warmup,
              a.duration);
  std::printf("  throughput    %10.1f tx/s\n", r.throughput);
  std::printf("  latency       mean %.3f s  p50 %.3f s  p95 %.3f s  p99 "
              "%.3f s\n",
              r.latency_mean, r.latency_p50, r.latency_p95, r.latency_p99);
  std::printf("  submitted     %10llu\n", (unsigned long long)r.submitted);
  std::printf("  committed     %10llu\n", (unsigned long long)r.committed);
  std::printf("  rejected      %10llu\n", (unsigned long long)r.rejected);
  if (chain.num_shards() > 1) {
    std::printf("  cross-shard   %10llu submitted, %llu committed "
                "(mean %.3f s), %llu aborted\n",
                (unsigned long long)r.xs_submitted,
                (unsigned long long)r.xs_committed, r.xs_latency_mean,
                (unsigned long long)r.xs_aborted);
    std::printf("  blocks        %10llu on the main branches of %zu shards\n",
                (unsigned long long)chain.CanonicalBlocks(),
                chain.num_shards());
  } else {
    std::printf("  blocks        %10llu on the main branch, %llu orphaned\n",
                (unsigned long long)chain.node(0).chain().main_chain_blocks(),
                (unsigned long long)chain.node(0).chain().orphaned_blocks());
  }

  if (tracer != nullptr) {
    const core::StatsCollector& st = driver.stats();
    if (st.traced_commits() > 0) {
      double total_mean = 0;
      for (size_t leg = 0; leg < core::StatsCollector::kNumPhases; ++leg) {
        total_mean += st.phase_latency(leg).Mean();
      }
      std::printf("\ncommit latency breakdown (%llu traced txs):\n",
                  (unsigned long long)st.traced_commits());
      for (size_t leg = 0; leg < core::StatsCollector::kNumPhases; ++leg) {
        const Histogram& h = st.phase_latency(leg);
        std::printf("  %-15s mean %8.4f s  p95 %8.4f s  (%5.1f%%)\n",
                    obs::Tracer::TxSpanName(leg), h.Mean(), h.Percentile(95),
                    total_mean > 0 ? 100.0 * h.Mean() / total_mean : 0.0);
      }
    }
    Status ws = tracer->WriteChromeTrace(a.trace_path);
    if (!ws.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", ws.ToString().c_str());
      return 1;
    }
    std::printf("\ntrace: %zu events, %zu txs -> %s\n", tracer->num_events(),
                tracer->num_tx(), a.trace_path.c_str());
  }

  if (a.metrics) {
    obs::MetricsRegistry reg;
    chain.ExportMetrics(&reg);
    std::printf("\nper-node metrics:\n%s", reg.RenderTable().c_str());
    if (!a.metrics_path.empty()) {
      util::Json doc = util::Json::Object();
      doc.Set("schema", "blockbench-metrics-v1");
      doc.Set("platform", a.platform);
      doc.Set("workload", a.workload);
      doc.Set("metrics", reg.ToJson());
      std::string text = doc.Dump(2);
      text.push_back('\n');
      std::FILE* mf = std::fopen(a.metrics_path.c_str(), "w");
      if (mf == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", a.metrics_path.c_str());
        return 1;
      }
      std::fwrite(text.data(), 1, text.size(), mf);
      std::fclose(mf);
      std::printf("metrics -> %s\n", a.metrics_path.c_str());
    }
  }

  if (a.timeline) {
    std::printf("\ncommitted per second:\n");
    for (size_t t = 0; t < size_t(a.duration); t += 5) {
      double sum = 0;
      for (size_t u = t; u < t + 5; ++u) {
        sum += driver.stats().CommittedInSecond(u);
      }
      std::printf("  t=%4zu  %8.0f tx (%6.0f tx/s)\n", t, sum, sum / 5);
    }
  }

  if (sampler != nullptr) {
    std::printf("\nsampler: %zu gauges x %zu ticks (period %.2f s)\n",
                sampler->num_gauges(), sampler->num_ticks(), a.sample);
  }

  if (memtracker != nullptr) {
    memtracker->set_committed(uint64_t(r.committed));
    Status ms = memtracker->WriteJson(a.mem_path);
    if (!ms.ok()) {
      std::fprintf(stderr, "mem dump write failed: %s\n",
                   ms.ToString().c_str());
      return 1;
    }
    std::printf("\nmemory attribution (logical bytes, virtual time):\n%s",
                obs::RenderMemAttribution(memtracker->ToJson()).c_str());
    std::printf("mem -> %s (mem_report validates / diffs / gates)\n",
                a.mem_path.c_str());
  }

  bool audit_violated = false;
  obs::BlackboxTrigger trigger;  // kind "explicit" unless the audit fails
  if (!a.audit_path.empty()) {
    obs::AuditorConfig ac;
    ac.confirmation_depth = chain.options().confirmation_depth;
    ac.heal_time = a.partition_start >= 0 ? a.partition_end : -1;
    ac.end_time = a.duration + dc.drain;
    ac.num_shards = uint32_t(chain.num_shards());
    obs::AuditReport audit = platform::RunAudit(chain, ac);
    std::printf("\nledger audit (%zu nodes):\n%s", chain.num_servers(),
                audit.RenderTable().c_str());
    std::string text = audit.ToJson(ac).Dump(2);
    text.push_back('\n');
    std::FILE* f = std::fopen(a.audit_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", a.audit_path.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("audit report -> %s\n", a.audit_path.c_str());
    if (!audit.ok()) {
      audit_violated = true;
      trigger.kind = "audit_violation";
      trigger.invariant = audit.violations.front().invariant;
      trigger.detail = audit.violations.front().detail;
    }
  }

  // The black box lands on disk before the exit code: an explicit
  // --blackbox always dumps; an audited violation dumps even without it
  // (next to the audit report) so the post-mortem survives the run.
  if (recorder != nullptr && (!a.blackbox_path.empty() || audit_violated)) {
    std::string bb_path = !a.blackbox_path.empty()
                              ? a.blackbox_path
                              : a.audit_path + ".blackbox.json";
    Status bs = recorder->WriteJson(bb_path, SpecFromArgs(a), trigger);
    if (!bs.ok()) {
      std::fprintf(stderr, "blackbox write failed: %s\n",
                   bs.ToString().c_str());
      return 1;
    }
    std::printf("blackbox -> %s (blackbox_report %s renders the "
                "post-mortem)\n",
                bb_path.c_str(), bb_path.c_str());
  }

  // Exit 3 signals "the run completed but the ledger is unsafe" —
  // distinct from usage (2) and setup (1) failures. A partitioned
  // Ethereum-model run is EXPECTED to exit 3 (Fig 10).
  return audit_violated ? 3 : 0;
}
