// mem_report: validates blockbench-mem-v1 dumps (written by
// bbench --mem / the bench binaries' --mem=PREFIX) and prints where the
// simulated cluster's logical bytes live; also fits and gates how
// per-node memory scales with cluster size.
//
//   mem_report DUMP.mem.json...
//       Validate each dump (schema shape plus the cross-sum tamper
//       checks) and print its subsystem attribution table.
//
//   mem_report --diff BEFORE.json AFTER.json
//       Per-subsystem peak deltas, largest absolute delta first — the
//       memory analogue of prof_report --diff.
//
//   mem_report --gate-peak-bytes=N DUMP.mem.json...
//       Fail when any dump's cluster-wide concurrent peak exceeds N.
//
//   mem_report --gate-scaling=MAXEXP SWEEP.json...
//       Read blockbench-sweep-v1 documents whose rows carry "mem"
//       blocks and "platform"/"n" labels (bench_fig_memscale), fit
//       log(mem.peak_node_bytes) against log(n) per platform by least
//       squares, and fail when a non-exempt platform's exponent
//       exceeds MAXEXP. Quorum-broadcast BFT platforms are expected
//       super-linear and exempt by default (--scaling-exempt).
//
//   mem_report --scaling-exempt=LIST
//       Comma-separated platform labels the scaling gate skips
//       (default: hyperledger,fabric,erisdb).
//
//   mem_report --gate-vs-baseline=FILE:SEL:MAX SWEEP.json...
//       Compare mem.peak_node_bytes of the row matching SEL (comma-
//       separated key=value label pairs, e.g. platform=hyperledger,n=16)
//       against the committed snapshot FILE; fail when current/baseline
//       exceeds MAX.
//
// Exit codes: 0 all files valid (and gates met), 1 validation/read/gate
// failure, 2 usage.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/memtrack.h"
#include "report_common.h"
#include "util/json.h"

using bb::util::Json;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: mem_report [--gate-peak-bytes=N] DUMP.mem.json...\n"
      "       mem_report --diff BEFORE.json AFTER.json\n"
      "       mem_report [--gate-scaling=MAXEXP] [--scaling-exempt=LIST]\n"
      "                  [--gate-vs-baseline=FILE:SEL:MAX]... SWEEP.json...\n");
  return 2;
}

bb::Result<Json> LoadDump(const std::string& path) {
  auto doc = bb::tools::LoadJson(path);
  if (!doc.ok()) return doc.status();
  bb::Status s = bb::obs::ValidateMemDump(*doc);
  if (!s.ok()) return bb::Status::InvalidArgument(path + ": " + s.ToString());
  return *doc;
}

bool InList(const std::string& csv, const std::string& item) {
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    std::string tok = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (tok == item) return true;
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return false;
}

/// (n, bytes) points per platform label for one mem-block metric,
/// harvested from every sweep row carrying a mem block. Ordered map:
/// deterministic output.
using ScalingPoints = std::map<std::string, std::vector<std::pair<double, double>>>;

void CollectScalingPoints(const Json& rows, const char* key,
                          ScalingPoints* points) {
  for (const Json& row : rows.items()) {
    const Json* labels = row.Get("labels");
    const Json* mem = row.Get("mem");
    if (labels == nullptr || mem == nullptr) continue;
    const Json* platform = labels->Get("platform");
    const Json* n = labels->Get("n");
    const Json* peak = mem->Get(key);
    if (platform == nullptr || !platform->is_string() || n == nullptr ||
        peak == nullptr || !peak->is_number()) {
      continue;
    }
    double nodes = n->is_number() ? n->AsDouble()
                                  : std::atof(n->AsString().c_str());
    if (nodes > 0 && peak->AsDouble() > 0) {
      (*points)[platform->AsString()].emplace_back(nodes, peak->AsDouble());
    }
  }
}

/// Least-squares slope of log(peak) over log(n) — the growth exponent
/// (1 = linear, 2 = quadratic). NAN with fewer than two distinct sizes.
double FitExponent(const std::vector<std::pair<double, double>>& pts) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [n, peak] : pts) {
    double x = std::log(n), y = std::log(peak);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  double count = double(pts.size());
  double var = sxx - sx * sx / count;
  if (!(var > 1e-12)) return std::nan("");
  return (sxy - sx * sy / count) / var;
}

}  // namespace

int main(int argc, char** argv) {
  bool diff = false;
  double gate_peak_bytes = -1;
  double gate_scaling = -1;
  std::string scaling_exempt = "hyperledger,fabric,erisdb";
  std::vector<bb::tools::BaselineGateSpec> baseline_gates;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s == "--diff") {
      diff = true;
    } else if (s.rfind("--gate-peak-bytes=", 0) == 0) {
      if (!bb::tools::ParsePositiveDouble(
              s.substr(sizeof("--gate-peak-bytes=") - 1), &gate_peak_bytes)) {
        std::fprintf(stderr, "mem_report: bad --gate-peak-bytes value %s\n",
                     s.c_str());
        return Usage();
      }
    } else if (s.rfind("--gate-scaling=", 0) == 0) {
      if (!bb::tools::ParsePositiveDouble(
              s.substr(sizeof("--gate-scaling=") - 1), &gate_scaling)) {
        std::fprintf(stderr, "mem_report: bad --gate-scaling value %s\n",
                     s.c_str());
        return Usage();
      }
    } else if (s.rfind("--scaling-exempt=", 0) == 0) {
      scaling_exempt = s.substr(sizeof("--scaling-exempt=") - 1);
    } else if (s.rfind("--gate-vs-baseline=", 0) == 0) {
      bb::tools::BaselineGateSpec g;
      if (!bb::tools::ParseBaselineGateSpec(
              s.substr(sizeof("--gate-vs-baseline=") - 1), &g)) {
        std::fprintf(stderr, "mem_report: bad gate spec %s\n", s.c_str());
        return Usage();
      }
      baseline_gates.push_back(std::move(g));
    } else if (s.rfind("--", 0) == 0) {
      std::fprintf(stderr, "mem_report: unknown flag %s\n", s.c_str());
      return Usage();
    } else {
      inputs.push_back(s);
    }
  }

  if (diff) {
    if (inputs.size() != 2 || gate_peak_bytes > 0 || gate_scaling > 0 ||
        !baseline_gates.empty()) {
      return Usage();
    }
    auto before = LoadDump(inputs[0]);
    auto after = LoadDump(inputs[1]);
    for (const auto* r : {&before, &after}) {
      if (!r->ok()) {
        std::fprintf(stderr, "mem_report: %s\n",
                     r->status().ToString().c_str());
        return 1;
      }
    }
    std::printf("mem diff: %s -> %s\n", inputs[0].c_str(), inputs[1].c_str());
    std::fputs(bb::obs::RenderMemDiff(*before, *after).c_str(), stdout);
    return 0;
  }

  if (inputs.empty()) return Usage();

  ScalingPoints scaling_points;          // per-node peak vs N (the gate)
  ScalingPoints cluster_scaling_points;  // cluster peak vs N (informational)
  // Sweep rows matching a baseline selector, searched across all inputs.
  std::vector<Json> sweep_rows_docs;
  for (const std::string& path : inputs) {
    auto doc = bb::tools::LoadJson(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "mem_report: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    if (doc->Get("rows") != nullptr) {
      // A sweep document: harvest scaling points and keep the rows for
      // the baseline gates. Rows without a mem block are skipped (the
      // sweep ran without --mem), which the gates below then report as
      // missing rather than silently passing.
      size_t with_mem = 0;
      const Json& rows = *doc->Get("rows");
      for (const Json& row : rows.items()) {
        if (row.Get("mem") != nullptr) ++with_mem;
      }
      std::printf("mem_report: %s: %zu sweep rows, %zu with mem blocks\n",
                  path.c_str(), rows.items().size(), with_mem);
      CollectScalingPoints(rows, "peak_node_bytes", &scaling_points);
      CollectScalingPoints(rows, "cluster_peak", &cluster_scaling_points);
      sweep_rows_docs.push_back(rows);
      continue;
    }
    auto dump = LoadDump(path);
    if (!dump.ok()) {
      std::fprintf(stderr, "mem_report: %s\n",
                   dump.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: OK\n", path.c_str());
    std::fputs(bb::obs::RenderMemAttribution(*dump).c_str(), stdout);
    if (gate_peak_bytes > 0) {
      const Json* cluster = dump->Get("cluster");
      double peak = cluster != nullptr && cluster->Get("peak") != nullptr
                        ? cluster->Get("peak")->AsDouble()
                        : -1;
      if (!bb::tools::CheckGate("mem_report", path + " cluster peak bytes",
                                peak, gate_peak_bytes)) {
        return 1;
      }
    }
    std::printf("\n");
  }

  if (gate_scaling > 0) {
    if (scaling_points.empty()) {
      std::fprintf(stderr,
                   "mem_report: --gate-scaling found no sweep rows with mem "
                   "blocks and platform/n labels\n");
      return 1;
    }
    for (const auto& [platform, pts] : scaling_points) {
      double exp = FitExponent(pts);
      if (std::isnan(exp)) {
        std::fprintf(stderr,
                     "mem_report: scaling fit needs >= 2 cluster sizes for "
                     "%s (got %zu points)\n",
                     platform.c_str(), pts.size());
        return 1;
      }
      // The cluster-wide exponent (~ per-node exponent + 1) is where
      // quorum-broadcast protocols show their O(N^2) curve; printed for
      // every platform, never gated.
      auto cit = cluster_scaling_points.find(platform);
      double cluster_exp =
          cit != cluster_scaling_points.end() ? FitExponent(cit->second)
                                              : std::nan("");
      std::printf(
          "mem_report: scaling %s: peak_node_bytes ~ N^%.2f, "
          "cluster_peak ~ N^%.2f over %zu points%s\n",
          platform.c_str(), exp, cluster_exp, pts.size(),
          InList(scaling_exempt, platform) ? " (exempt)" : "");
      if (InList(scaling_exempt, platform)) continue;
      if (!bb::tools::CheckGate("mem_report",
                                "scaling exponent " + platform, exp,
                                gate_scaling)) {
        return 1;
      }
    }
  }

  for (const bb::tools::BaselineGateSpec& g : baseline_gates) {
    auto doc = bb::tools::LoadJson(g.file);
    if (!doc.ok()) {
      std::fprintf(stderr, "mem_report: baseline: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    const Json* rows = doc->Get("rows");
    if (rows == nullptr) {
      // BENCH_*.json report snapshots nest sweeps under "macro".
      const Json* macro = doc->Get("macro");
      if (macro != nullptr) {
        for (const Json& entry : macro->items()) {
          if (entry.Get("rows") != nullptr &&
              bb::tools::SweepRowMetric(*entry.Get("rows"), g.sel, "mem",
                                        "peak_node_bytes") >= 0) {
            rows = entry.Get("rows");
            break;
          }
        }
      }
    }
    if (rows == nullptr) {
      std::fprintf(stderr, "mem_report: baseline %s has no sweep rows\n",
                   g.file.c_str());
      return 1;
    }
    double baseline =
        bb::tools::SweepRowMetric(*rows, g.sel, "mem", "peak_node_bytes");
    double current = -1;
    for (const Json& sweep : sweep_rows_docs) {
      current = bb::tools::SweepRowMetric(sweep, g.sel, "mem",
                                          "peak_node_bytes");
      if (current >= 0) break;
    }
    if (baseline <= 0 || current < 0) {
      std::fprintf(stderr, "mem_report: baseline gate rows missing: %s in %s\n",
                   g.sel.c_str(), g.file.c_str());
      return 1;
    }
    if (!bb::tools::CheckGate(
            "mem_report",
            "peak-vs-baseline " + g.sel + " (" + g.file + ")",
            current / baseline, g.bound)) {
      return 1;
    }
  }
  return 0;
}
