# Runs the black-box post-mortem loop end to end (invoked by ctest, see
# tools/CMakeLists.txt):
#   1. an audited partitioned Ethereum-model run must exit 3 AND leave a
#      flight-recorder dump next to the audit report;
#   2. blackbox_report must validate the dump and render the post-mortem;
#   3. bbench --replay=DUMP must reproduce the SAME safety violation
#      (exit 3 again) — the dump really is a re-runnable recording.
#
# Required -D vars: BBENCH, BLACKBOX_REPORT, OUT (audit report path;
#                   the dump lands at ${OUT}.blackbox.json).

foreach(v BBENCH BLACKBOX_REPORT OUT)
  if(NOT DEFINED ${v})
    message(FATAL_ERROR "run_blackbox_scenario: missing -D${v}")
  endif()
endforeach()

set(DUMP ${OUT}.blackbox.json)

execute_process(
  COMMAND ${BBENCH} --platform=ethereum --workload=ycsb --servers=4
          --clients=4 --rate=30 --duration=90 --warmup=5
          --partition=10:60 --audit=${OUT}
  RESULT_VARIABLE bbench_rc)
if(NOT bbench_rc EQUAL 3)
  message(FATAL_ERROR "expected bbench to exit 3 (safety violated), "
                      "got ${bbench_rc}")
endif()
if(NOT EXISTS ${DUMP})
  message(FATAL_ERROR "audit violation did not write ${DUMP}")
endif()

execute_process(
  COMMAND ${BLACKBOX_REPORT} ${DUMP}
  RESULT_VARIABLE report_rc)
if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR "blackbox_report rejected ${DUMP} (exit ${report_rc})")
endif()

# The replayed run re-audits (and re-dumps) under different paths so the
# two dumps can coexist; it must find the same violation.
execute_process(
  COMMAND ${BBENCH} --replay=${DUMP} --audit=${OUT}.replay
          --blackbox=${DUMP}.replay
  RESULT_VARIABLE replay_rc)
if(NOT replay_rc EQUAL 3)
  message(FATAL_ERROR "replay did not reproduce the violation "
                      "(exit ${replay_rc}, expected 3)")
endif()
