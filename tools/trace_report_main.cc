// trace_report: validates a Chrome/Perfetto trace written by
// bbench --trace (or Tracer::WriteChromeTrace) and prints what the
// trace says about where commit latency goes.
//
//   trace_report TRACE.json...
//
// Validation is structural: every event needs a known phase ('X', 'i',
// 'b', 'e', 'C', 'M', 's', 'f'), complete spans need a non-negative
// duration, every async 'b' needs a matching 'e' with the same
// (cat, name, id) at a later-or-equal timestamp, every counter sample
// ('C', the sampler's gauge tracks) needs an id and numeric-only args,
// and every flow finish ('f', the cross-node message arrows) needs a
// prior start ('s') with the same (cat, id) — an unmatched 's' is legal
// (the message was dropped in flight). Any violation is a non-zero
// exit — the CI perf-smoke job keys off this.
//
// Reporting decomposes the commit latency of every complete transaction
// (all four lifecycle legs present) into per-leg mean AND p95 — the
// mean legs telescope to exactly the client-measured mean latency; the
// p95 column makes tail regressions attributable to a specific leg.
// Named consensus spans ('X') are summarized per (cat, name).

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "report_common.h"
#include "util/flags.h"
#include "util/json.h"

using bb::util::Json;

namespace {

// Lifecycle leg order; must match obs::Tracer::TxSpanName.
constexpr const char* kTxSpans[] = {"tx.admission", "tx.pool_wait",
                                    "tx.consensus", "tx.confirmation"};
constexpr size_t kNumLegs = sizeof(kTxSpans) / sizeof(kTxSpans[0]);

int LegIndex(const std::string& name) {
  for (size_t i = 0; i < kNumLegs; ++i) {
    if (name == kTxSpans[i]) return int(i);
  }
  return -1;
}

struct SpanStats {
  uint64_t count = 0;
  double total_us = 0;
};

struct CounterStats {
  uint64_t samples = 0;
  std::map<std::string, uint64_t> tracks;  // id -> samples on that track
  double min = 0, max = 0, last = 0;
};

struct TraceSummary {
  uint64_t events = 0, complete_spans = 0, instants = 0, async_pairs = 0;
  uint64_t counter_samples = 0;
  uint64_t flow_starts = 0, flow_ends = 0;
  std::map<std::string, SpanStats> x_spans;  // "cat/name" -> stats
  std::map<std::string, CounterStats> counters;  // "cat/name" -> stats
  // tx id -> per-leg duration in µs (-1 until seen).
  std::map<std::string, std::array<double, kNumLegs>> tx_legs;
};

bb::Status Analyze(const Json& doc, const std::string& path,
                   TraceSummary* out) {
  const Json* events = doc.Get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return bb::Status::InvalidArgument(path + ": no traceEvents array");
  }
  // Open async 'b' events: (cat, name, id) -> start ts.
  std::map<std::string, double> open_async;
  // Flow starts seen so far, keyed (cat, id) — flows bind across names
  // ("net.send" starts what "net.recv" finishes).
  std::unordered_set<std::string> flow_open;
  for (size_t i = 0; i < events->items().size(); ++i) {
    const Json& e = events->items()[i];
    std::string at = path + ": event " + std::to_string(i);
    if (!e.is_object()) return bb::Status::InvalidArgument(at + " not an object");
    const Json* ph = e.Get("ph");
    const Json* name = e.Get("name");
    if (ph == nullptr || !ph->is_string() || ph->AsString().size() != 1) {
      return bb::Status::InvalidArgument(at + " has no phase");
    }
    if (name == nullptr || !name->is_string()) {
      return bb::Status::InvalidArgument(at + " has no name");
    }
    char p = ph->AsString()[0];
    if (p == 'M') continue;  // metadata carries no timestamp
    ++out->events;
    const Json* ts = e.Get("ts");
    if (ts == nullptr || !ts->is_number()) {
      return bb::Status::InvalidArgument(at + " has no timestamp");
    }
    const Json* cat = e.Get("cat");
    std::string key = (cat != nullptr ? cat->AsString() : "") + "/" +
                      name->AsString();
    switch (p) {
      case 'X': {
        const Json* dur = e.Get("dur");
        if (dur == nullptr || !dur->is_number() || dur->AsDouble() < 0) {
          return bb::Status::InvalidArgument(at + " ('" + name->AsString() +
                                             "') has no valid duration");
        }
        SpanStats& s = out->x_spans[key];
        ++s.count;
        s.total_us += dur->AsDouble();
        ++out->complete_spans;
        break;
      }
      case 'i':
        ++out->instants;
        break;
      case 'C': {
        // Counter track: needs an id (node) and numeric-only args —
        // these are the obs::Sampler's gauge samples.
        const Json* id = e.Get("id");
        if (id == nullptr || !id->is_string()) {
          return bb::Status::InvalidArgument(at + " counter without id");
        }
        const Json* args = e.Get("args");
        if (args == nullptr || !args->is_object() || args->size() == 0) {
          return bb::Status::InvalidArgument(at + " counter without args");
        }
        double value = 0;
        for (const auto& [k, v] : args->members()) {
          if (!v.is_number()) {
            return bb::Status::InvalidArgument(
                at + " counter arg '" + k + "' is not numeric");
          }
          value = v.AsDouble();
        }
        CounterStats& c = out->counters[key];
        if (c.samples == 0) {
          c.min = c.max = value;
        } else {
          c.min = std::min(c.min, value);
          c.max = std::max(c.max, value);
        }
        c.last = value;
        ++c.samples;
        ++c.tracks[id->AsString()];
        ++out->counter_samples;
        break;
      }
      case 'b':
      case 'e': {
        const Json* id = e.Get("id");
        if (id == nullptr || !id->is_string()) {
          return bb::Status::InvalidArgument(at + " async event without id");
        }
        std::string akey = key + "/" + id->AsString();
        if (p == 'b') {
          if (!open_async.emplace(akey, ts->AsDouble()).second) {
            return bb::Status::InvalidArgument(at + " duplicate async begin " +
                                               akey);
          }
        } else {
          auto it = open_async.find(akey);
          if (it == open_async.end()) {
            return bb::Status::InvalidArgument(at + " async end without begin " +
                                               akey);
          }
          double dur_us = ts->AsDouble() - it->second;
          if (dur_us < 0) {
            return bb::Status::InvalidArgument(at + " async span " + akey +
                                               " ends before it begins");
          }
          open_async.erase(it);
          ++out->async_pairs;
          int leg = LegIndex(name->AsString());
          if (leg >= 0) {
            auto [li, inserted] = out->tx_legs.emplace(
                id->AsString(), std::array<double, kNumLegs>{});
            if (inserted) li->second.fill(-1);
            li->second[size_t(leg)] = dur_us;
          }
        }
        break;
      }
      case 's':
      case 'f': {
        const Json* id = e.Get("id");
        if (id == nullptr || !id->is_string()) {
          return bb::Status::InvalidArgument(at + " flow event without id");
        }
        std::string fkey =
            (cat != nullptr ? cat->AsString() : "") + "/" + id->AsString();
        if (p == 's') {
          // Re-used ids are illegal: each message seq starts one flow.
          if (!flow_open.insert(fkey).second) {
            return bb::Status::InvalidArgument(at + " duplicate flow start " +
                                               fkey);
          }
          ++out->flow_starts;
        } else {
          if (flow_open.erase(fkey) == 0) {
            return bb::Status::InvalidArgument(at + " flow finish without start " +
                                               fkey);
          }
          const Json* bp = e.Get("bp");
          if (bp == nullptr || bp->AsString() != "e") {
            return bb::Status::InvalidArgument(at +
                                               " flow finish without bp:\"e\"");
          }
          ++out->flow_ends;
        }
        break;
      }
      default:
        return bb::Status::InvalidArgument(at + " has unknown phase '" +
                                           ph->AsString() + "'");
    }
  }
  if (!open_async.empty()) {
    return bb::Status::InvalidArgument(
        path + ": " + std::to_string(open_async.size()) +
        " async span(s) never closed, first: " + open_async.begin()->first);
  }
  return bb::Status::Ok();
}

/// Linear-interpolated percentile over an unsorted sample vector (same
/// convention as util::Histogram::Percentile). Sorts in place.
double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  double rank = p * double(v->size() - 1);
  size_t lo = size_t(rank);
  size_t hi = lo + 1 < v->size() ? lo + 1 : lo;
  double frac = rank - double(lo);
  return (*v)[lo] + ((*v)[hi] - (*v)[lo]) * frac;
}

void Report(const std::string& path, const TraceSummary& t) {
  std::printf("%s: %llu events OK (%llu spans, %llu instants, %llu async "
              "pairs, %llu counter samples, %llu/%llu flows, %zu txs)\n",
              path.c_str(), (unsigned long long)t.events,
              (unsigned long long)t.complete_spans,
              (unsigned long long)t.instants,
              (unsigned long long)t.async_pairs,
              (unsigned long long)t.counter_samples,
              (unsigned long long)t.flow_ends,
              (unsigned long long)t.flow_starts, t.tx_legs.size());

  std::array<double, kNumLegs> leg_total{};
  std::array<std::vector<double>, kNumLegs> leg_vals;
  std::vector<double> tx_totals;
  for (const auto& [id, legs] : t.tx_legs) {
    bool all = true;
    for (double d : legs) all = all && d >= 0;
    if (!all) continue;
    double total = 0;
    for (size_t i = 0; i < kNumLegs; ++i) {
      leg_total[i] += legs[i];
      leg_vals[i].push_back(legs[i]);
      total += legs[i];
    }
    tx_totals.push_back(total);
  }
  uint64_t complete = tx_totals.size();
  if (complete > 0) {
    double total_mean_us = 0;
    for (double d : leg_total) total_mean_us += d / double(complete);
    double total_p95_us = Percentile(&tx_totals, 0.95);
    std::printf("\ncritical path of commit latency (%llu complete txs):\n",
                (unsigned long long)complete);
    // Mean legs telescope to the mean commit latency exactly; the p95
    // column is each leg's own tail (p95 legs do not sum to the total
    // p95 — slow txs are rarely slow in every leg at once).
    for (size_t i = 0; i < kNumLegs; ++i) {
      double mean_us = leg_total[i] / double(complete);
      double p95_us = Percentile(&leg_vals[i], 0.95);
      std::printf("  %-15s mean %10.4f ms  %5.1f%%   p95 %10.4f ms\n",
                  kTxSpans[i], mean_us / 1e3,
                  total_mean_us > 0 ? 100.0 * mean_us / total_mean_us : 0.0,
                  p95_us / 1e3);
    }
    std::printf("  %-15s mean %10.4f ms          p95 %10.4f ms\n", "total",
                total_mean_us / 1e3, total_p95_us / 1e3);
  }

  if (!t.x_spans.empty()) {
    std::printf("\nnamed spans:\n");
    for (const auto& [key, s] : t.x_spans) {
      std::printf("  %-24s count %8llu  mean %10.4f ms\n", key.c_str(),
                  (unsigned long long)s.count,
                  s.count > 0 ? s.total_us / double(s.count) / 1e3 : 0.0);
    }
  }

  if (!t.counters.empty()) {
    std::printf("\ncounter tracks (sampler gauges):\n");
    for (const auto& [key, c] : t.counters) {
      std::printf("  %-24s %zu track(s)  %6llu samples  min %g  max %g\n",
                  key.c_str(), c.tracks.size(),
                  (unsigned long long)c.samples, c.min, c.max);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string bad;
  if (!bb::tools::SplitArgs(argc, argv, {}, {}, &inputs, &bad)) {
    std::fprintf(stderr, "trace_report: unknown flag %s\n", bad.c_str());
    std::fprintf(stderr, "usage: trace_report TRACE.json...\n");
    return 2;
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "trace_report: no input files\n");
    std::fprintf(stderr, "usage: trace_report TRACE.json...\n");
    return 2;
  }
  for (const std::string& path : inputs) {
    auto doc = bb::tools::LoadJson(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "trace_report: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    TraceSummary summary;
    bb::Status s = Analyze(*doc, path, &summary);
    if (!s.ok()) {
      std::fprintf(stderr, "trace_report: %s\n", s.ToString().c_str());
      return 1;
    }
    Report(path, summary);
  }
  return 0;
}
