// bbasm: contract developer tool — assemble, disassemble, or execute a
// contract assembly file against an in-memory ledger.
//
//   bbasm check file.casm              assemble, report errors/stats
//   bbasm dis file.casm                assemble then disassemble (listing)
//   bbasm run file.casm FN [ARG...]    execute FN; int args as-is, others
//                                      as strings; prints the receipt
//   bbasm run --engine=geth|parity|default ...   pick a VM profile
//
// Built-in contracts from the benchmark suite can be referenced as
// @ycsb @smallbank @etherid @doubler @wavespresale @donothing @ioheavy
// @cpuheavy instead of a file path.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "platform/options.h"
#include "vm/assembler.h"
#include "vm/disasm.h"
#include "vm/interpreter.h"
#include "workloads/contracts.h"

using namespace bb;

namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "bbasm: %s\n", msg.c_str());
  return 1;
}

bool LoadSource(const std::string& ref, std::string* out) {
  if (!ref.empty() && ref[0] == '@') {
    std::string name = ref.substr(1);
    if (name == "ycsb") *out = workloads::KvStoreCasm();
    else if (name == "smallbank") *out = workloads::SmallbankCasm();
    else if (name == "etherid") *out = workloads::EtherIdCasm();
    else if (name == "doubler") *out = workloads::DoublerCasm();
    else if (name == "wavespresale") *out = workloads::WavesPresaleCasm();
    else if (name == "donothing") *out = workloads::DoNothingCasm();
    else if (name == "ioheavy") *out = workloads::IoHeavyCasm();
    else if (name == "cpuheavy") *out = workloads::CpuHeavyCasm();
    else return false;
    return true;
  }
  std::ifstream in(ref);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(uint8_t(s[i]))) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: bbasm check|dis|run SOURCE [--engine=E] [FN ARG...]\n"
                 "SOURCE: a .casm file or a built-in like @smallbank\n");
    return 2;
  }
  std::string cmd = argv[1];
  std::string source_ref = argv[2];
  std::string source;
  if (!LoadSource(source_ref, &source)) {
    return Fail("cannot load " + source_ref);
  }

  auto program = vm::Assemble(source);
  if (!program.ok()) {
    return Fail("assembly failed: " + program.status().ToString());
  }

  if (cmd == "check") {
    std::printf("%zu instructions, %zu strings, %zu functions:\n",
                program->code.size(), program->string_pool.size(),
                program->functions.size());
    for (const auto& [name, idx] : program->functions) {
      std::printf("  %-20s @ %zu\n", name.c_str(), idx);
    }
    return 0;
  }

  if (cmd == "dis") {
    std::fputs(vm::Disassemble(*program).c_str(), stdout);
    return 0;
  }

  if (cmd != "run") return Fail("unknown command " + cmd);

  vm::VmOptions vm_opts;
  int argi = 3;
  if (argi < argc && std::strncmp(argv[argi], "--engine=", 9) == 0) {
    std::string engine = argv[argi] + 9;
    if (engine == "geth") vm_opts = platform::EthereumOptions().vm;
    else if (engine == "parity") vm_opts = platform::ParityOptions().vm;
    else if (engine != "default") return Fail("unknown engine " + engine);
    ++argi;
  }
  if (argi >= argc) return Fail("run needs a function name");

  vm::TxContext ctx;
  ctx.sender = "bbasm";
  ctx.function = argv[argi++];
  for (; argi < argc; ++argi) {
    std::string arg = argv[argi];
    if (LooksLikeInt(arg)) {
      ctx.args.emplace_back(int64_t(std::atoll(arg.c_str())));
    } else {
      ctx.args.emplace_back(arg);
    }
  }

  vm::MapHost host;
  auto receipt = vm::Interpreter(vm_opts).Execute(*program, ctx, &host);
  std::printf("status:   %s\n", receipt.status.ToString().c_str());
  std::printf("return:   %s\n", receipt.return_value.ToDisplayString().c_str());
  std::printf("gas:      %llu\n", (unsigned long long)receipt.gas_used);
  std::printf("ops:      %llu\n", (unsigned long long)receipt.ops_executed);
  std::printf("peak mem: %llu bytes (accounted)\n",
              (unsigned long long)receipt.peak_memory_bytes);
  std::printf("storage:  %llu reads, %llu writes\n",
              (unsigned long long)receipt.storage_reads,
              (unsigned long long)receipt.storage_writes);
  if (!host.state().empty()) {
    std::printf("state after execution:\n");
    for (const auto& [k, v] : host.state()) {
      auto val = vm::Value::Deserialize(v);
      std::printf("  %-24s = %s\n", k.c_str(),
                  val.ok() ? val->ToDisplayString().c_str() : "<raw>");
    }
  }
  return receipt.status.ok() ? 0 : 1;
}
