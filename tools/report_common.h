// Shared boilerplate for the report tools (audit_report, trace_report,
// prof_report, bench_report, blackbox_report) and for bbench --replay:
// slurp-and-parse of JSON documents plus the common argv split into
// known flags and positional inputs. Header-only so the tools stay
// single-translation-unit binaries.

#ifndef BLOCKBENCH_TOOLS_REPORT_COMMON_H_
#define BLOCKBENCH_TOOLS_REPORT_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace bb::tools {

inline Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

/// Read + parse one JSON document; the error message carries the path.
inline Result<util::Json> LoadJson(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  auto doc = util::Json::Parse(*text);
  if (!doc.ok()) {
    return Status::InvalidArgument(path + ": " + doc.status().ToString());
  }
  return doc;
}

/// The arg-split every report tool repeats: everything not starting with
/// "--" is a positional input; flags must be an exact match in
/// `known_bool` or a "NAME=" prefix match in `known_kv`. Returns false
/// (and fills *bad_flag) on an unknown flag. Value extraction stays with
/// the util::Flag* helpers; this only rejects typos and collects inputs.
inline bool SplitArgs(int argc, char** argv,
                      const std::vector<std::string>& known_bool,
                      const std::vector<std::string>& known_kv,
                      std::vector<std::string>* inputs,
                      std::string* bad_flag) {
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) != 0) {
      inputs->push_back(s);
      continue;
    }
    bool known = false;
    for (const std::string& k : known_bool) {
      if (s == k) {
        known = true;
        break;
      }
    }
    for (const std::string& k : known_kv) {
      if (s.rfind(k + "=", 0) == 0) {
        known = true;
        break;
      }
    }
    if (!known) {
      if (bad_flag != nullptr) *bad_flag = s;
      return false;
    }
  }
  return true;
}

// --- --gate-* flag grammar ---------------------------------------------------
//
// Every report tool gates with the same three spec shapes; parsing them
// here keeps bench_report / prof_report / mem_report byte-for-byte
// consistent on selectors and bounds:
//   * "NUM/DEN:BOUND"        two benchmark names and a ratio bound
//   * "NAME:SEL1/SEL2:BOUND" two row selectors inside one sweep
//   * "FILE:SEL:BOUND"       a committed snapshot + one row selector
// Row selectors are "key=value" pairs against a sweep row's labels
// object; comma-separate pairs ("platform=hyperledger,n=16") to require
// all of them.

/// Strict positive double ("1.03"); false on garbage or <= 0.
inline bool ParsePositiveDouble(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty() && *out > 0;
}

/// "NUM_NAME/DEN_NAME:BOUND". Benchmark names may themselves contain
/// '/' (google-benchmark args, e.g. BM_DigestBatch/64), so split at the
/// '/' that starts the denominator's "BM_" prefix; fall back to the
/// first '/' for names that don't follow the convention.
struct RatioGateSpec {
  std::string num, den;
  double bound = 0;
};

inline bool ParseRatioGateSpec(const std::string& v, RatioGateSpec* g) {
  size_t slash = v.rfind("/BM_");
  if (slash == std::string::npos) slash = v.find('/');
  size_t colon = v.rfind(':');
  if (slash == std::string::npos || colon == std::string::npos ||
      colon < slash || slash == 0) {
    return false;
  }
  g->num = v.substr(0, slash);
  g->den = v.substr(slash + 1, colon - slash - 1);
  return !g->num.empty() && !g->den.empty() &&
         ParsePositiveDouble(v.substr(colon + 1), &g->bound);
}

/// "NAME:SEL1/SEL2:BOUND" — two rows of the sweep named NAME.
struct SelectorRatioGateSpec {
  std::string name;
  std::string num_sel, den_sel;
  double bound = 0;
};

inline bool ParseSelectorRatioGateSpec(const std::string& v,
                                       SelectorRatioGateSpec* g) {
  size_t first_colon = v.find(':');
  size_t last_colon = v.rfind(':');
  if (first_colon == std::string::npos || last_colon == first_colon) {
    return false;
  }
  g->name = v.substr(0, first_colon);
  std::string pair = v.substr(first_colon + 1, last_colon - first_colon - 1);
  size_t slash = pair.find('/');
  if (slash == std::string::npos) return false;
  g->num_sel = pair.substr(0, slash);
  g->den_sel = pair.substr(slash + 1);
  return !g->name.empty() && !g->num_sel.empty() && !g->den_sel.empty() &&
         ParsePositiveDouble(v.substr(last_colon + 1), &g->bound);
}

/// "FILE:SEL:BOUND" — current inputs vs a committed snapshot's row.
struct BaselineGateSpec {
  std::string file;
  std::string sel;
  double bound = 0;
};

inline bool ParseBaselineGateSpec(const std::string& v, BaselineGateSpec* g) {
  size_t last_colon = v.rfind(':');
  if (last_colon == std::string::npos) return false;
  std::string rest = v.substr(0, last_colon);
  size_t sel_colon = rest.rfind(':');
  if (sel_colon == std::string::npos) return false;
  g->file = rest.substr(0, sel_colon);
  g->sel = rest.substr(sel_colon + 1);
  return !g->file.empty() && !g->sel.empty() &&
         ParsePositiveDouble(v.substr(last_colon + 1), &g->bound);
}

/// True when the sweep row's labels object satisfies every
/// comma-separated "key=value" pair of the selector.
inline bool RowMatchesLabels(const util::Json& row, const std::string& sel) {
  const util::Json* labels = row.Get("labels");
  if (labels == nullptr) return false;
  size_t start = 0;
  while (start <= sel.size()) {
    size_t comma = sel.find(',', start);
    std::string pair = sel.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    size_t eq = pair.find('=');
    if (eq == std::string::npos) return false;
    const util::Json* v = labels->Get(pair.substr(0, eq));
    if (v == nullptr || !v->is_string() || v->AsString() != pair.substr(eq + 1)) {
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

/// Numeric rows[i].SECTION.KEY of the first row matching `sel`;
/// negative when no row matches or the field is absent.
inline double SweepRowMetric(const util::Json& rows, const std::string& sel,
                             const std::string& section,
                             const std::string& key) {
  for (const util::Json& row : rows.items()) {
    if (!RowMatchesLabels(row, sel)) continue;
    const util::Json* sec = row.Get(section);
    if (sec == nullptr) continue;
    const util::Json* v = sec->Get(key);
    if (v != nullptr && v->is_number()) return v->AsDouble();
  }
  return -1;
}

/// Prints the pass line (stdout) or the FAILED line (stderr) in the
/// shared gate format and returns whether the gate held. `is_floor`
/// selects "value must stay >= bound" (speedup floors) over the default
/// "value must stay <= bound" (overhead / growth ceilings).
inline bool CheckGate(const char* tool, const std::string& label, double value,
                      double bound, bool is_floor = false) {
  bool ok = is_floor ? value >= bound : value <= bound;
  if (ok) {
    std::printf("%s: gate %s = %.4f (%s %.4f) OK\n", tool, label.c_str(),
                value, is_floor ? "min" : "max", bound);
  } else {
    std::fprintf(stderr, "%s: gate FAILED: %s = %.4f %s %.4f\n", tool,
                 label.c_str(), value, is_floor ? "below" : "exceeds", bound);
  }
  return ok;
}

}  // namespace bb::tools

#endif  // BLOCKBENCH_TOOLS_REPORT_COMMON_H_
