// Shared boilerplate for the report tools (audit_report, trace_report,
// prof_report, bench_report, blackbox_report) and for bbench --replay:
// slurp-and-parse of JSON documents plus the common argv split into
// known flags and positional inputs. Header-only so the tools stay
// single-translation-unit binaries.

#ifndef BLOCKBENCH_TOOLS_REPORT_COMMON_H_
#define BLOCKBENCH_TOOLS_REPORT_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace bb::tools {

inline Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

/// Read + parse one JSON document; the error message carries the path.
inline Result<util::Json> LoadJson(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  auto doc = util::Json::Parse(*text);
  if (!doc.ok()) {
    return Status::InvalidArgument(path + ": " + doc.status().ToString());
  }
  return doc;
}

/// The arg-split every report tool repeats: everything not starting with
/// "--" is a positional input; flags must be an exact match in
/// `known_bool` or a "NAME=" prefix match in `known_kv`. Returns false
/// (and fills *bad_flag) on an unknown flag. Value extraction stays with
/// the util::Flag* helpers; this only rejects typos and collects inputs.
inline bool SplitArgs(int argc, char** argv,
                      const std::vector<std::string>& known_bool,
                      const std::vector<std::string>& known_kv,
                      std::vector<std::string>* inputs,
                      std::string* bad_flag) {
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) != 0) {
      inputs->push_back(s);
      continue;
    }
    bool known = false;
    for (const std::string& k : known_bool) {
      if (s == k) {
        known = true;
        break;
      }
    }
    for (const std::string& k : known_kv) {
      if (s.rfind(k + "=", 0) == 0) {
        known = true;
        break;
      }
    }
    if (!known) {
      if (bad_flag != nullptr) *bad_flag = s;
      return false;
    }
  }
  return true;
}

}  // namespace bb::tools

#endif  // BLOCKBENCH_TOOLS_REPORT_COMMON_H_
