// audit_report: validates blockbench-audit-v1 documents written by
// bbench --audit (or obs::AuditReport::ToJson) and applies scenario
// expectations — the CI gate for the fault/attack experiments.
//
//   audit_report [flags] REPORT.json...
//
// Structural validation always runs: schema tag, required sections,
// fork-tree arithmetic (distinct = agreed + forked), per-node summaries
// consistent with the tree, series arrays of equal length. Expectation
// flags then encode what a scenario SHOULD have produced:
//
//   --fail-on-violation     exit 4 when the report records any
//                           safety-invariant violation
//   --expect-violation      exit 4 when it records NONE (a partitioned
//                           PoW run that kept safety is itself a red
//                           flag — the scenario did not bite)
//   --min-forked-pct=X      forked_pct must be >= X (Ethereum model
//                           under partition: double-digit forks)
//   --max-forked-pct=X      forked_pct must be <= X (Hyperledger model:
//                           zero forks, ever)
//   --require-recovery      recovery.gap_seconds must be present and
//                           >= 0 (the chain resumed after the heal)
//
// Exit codes: 0 ok, 1 I/O or structural error, 2 usage, 4 expectation
// failed.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "report_common.h"
#include "util/flags.h"
#include "util/json.h"

using bb::util::Json;

namespace {

struct Expectations {
  bool fail_on_violation = false;
  bool expect_violation = false;
  double min_forked_pct = -1;
  double max_forked_pct = -1;
  bool require_recovery = false;
};

const Json* Need(const Json& doc, const char* key, Json::Type type,
                 const std::string& path, bb::Status* status) {
  const Json* v = doc.Get(key);
  if (v == nullptr || v->type() != type) {
    *status = bb::Status::InvalidArgument(path + ": missing or mistyped '" +
                                          key + "'");
    return nullptr;
  }
  return v;
}

bb::Status Validate(const Json& doc, const std::string& path) {
  bb::Status status = bb::Status::Ok();
  const Json* schema = Need(doc, "schema", Json::Type::kString, path, &status);
  if (schema == nullptr) return status;
  if (schema->AsString() != "blockbench-audit-v1") {
    return bb::Status::InvalidArgument(path + ": unexpected schema '" +
                                       schema->AsString() + "'");
  }
  const Json* tree = Need(doc, "fork_tree", Json::Type::kObject, path, &status);
  const Json* nodes = Need(doc, "nodes", Json::Type::kArray, path, &status);
  const Json* series = Need(doc, "series", Json::Type::kObject, path, &status);
  const Json* inv =
      Need(doc, "invariants", Json::Type::kObject, path, &status);
  if (tree == nullptr || nodes == nullptr || series == nullptr ||
      inv == nullptr) {
    return status;
  }
  for (const char* key : {"distinct_blocks", "agreed_blocks", "forked_blocks",
                          "forked_pct", "fork_points", "branches",
                          "max_branch_depth", "wasted_weight"}) {
    if (Need(*tree, key, Json::Type::kNumber, path, &status) == nullptr) {
      return status;
    }
  }
  uint64_t distinct = tree->Get("distinct_blocks")->AsUint();
  uint64_t agreed = tree->Get("agreed_blocks")->AsUint();
  uint64_t forked = tree->Get("forked_blocks")->AsUint();
  if (agreed + forked != distinct) {
    return bb::Status::InvalidArgument(
        path + ": fork-tree arithmetic broken (agreed " +
        std::to_string(agreed) + " + forked " + std::to_string(forked) +
        " != distinct " + std::to_string(distinct) + ")");
  }
  if (nodes->size() == 0) {
    return bb::Status::InvalidArgument(path + ": empty nodes section");
  }
  for (size_t i = 0; i < nodes->items().size(); ++i) {
    const Json& n = nodes->items()[i];
    std::string at = path + ": node " + std::to_string(i);
    for (const char* key : {"node", "head_height", "known_blocks",
                            "canonical_blocks", "forked_blocks", "reorgs",
                            "divergence_depth"}) {
      if (n.Get(key) == nullptr || !n.Get(key)->is_number()) {
        return bb::Status::InvalidArgument(at + " missing '" + key + "'");
      }
    }
    uint64_t known = n.Get("known_blocks")->AsUint();
    if (known > distinct) {
      return bb::Status::InvalidArgument(
          at + " knows more blocks than the global tree holds");
    }
    if (n.Get("canonical_blocks")->AsUint() +
            n.Get("forked_blocks")->AsUint() != known) {
      return bb::Status::InvalidArgument(at + " block accounting broken");
    }
  }
  const Json* sealed = series->Get("sealed");
  const Json* forked_bins = series->Get("forked");
  if (sealed == nullptr || !sealed->is_array() || forked_bins == nullptr ||
      !forked_bins->is_array() ||
      sealed->size() != forked_bins->size()) {
    return bb::Status::InvalidArgument(
        path + ": series arrays missing or of unequal length");
  }
  const Json* violations = inv->Get("violations");
  const Json* ok = doc.Get("ok");
  if (violations == nullptr || !violations->is_array() || ok == nullptr ||
      !ok->is_bool()) {
    return bb::Status::InvalidArgument(path +
                                       ": invariants section malformed");
  }
  if (ok->AsBool() != (violations->size() == 0)) {
    return bb::Status::InvalidArgument(
        path + ": 'ok' contradicts the violations list");
  }
  return bb::Status::Ok();
}

/// Returns false when a scenario expectation failed (printed to stderr).
bool CheckExpectations(const Json& doc, const std::string& path,
                       const Expectations& want) {
  bool ok = true;
  size_t violations = doc.Get("invariants")->Get("violations")->size();
  double forked_pct = doc.Get("fork_tree")->Get("forked_pct")->AsDouble();
  if (want.fail_on_violation && violations > 0) {
    std::fprintf(stderr,
                 "audit_report: %s: %zu safety violation(s) recorded\n",
                 path.c_str(), violations);
    ok = false;
  }
  if (want.expect_violation && violations == 0) {
    std::fprintf(stderr,
                 "audit_report: %s: expected a safety violation, found "
                 "none — the scenario did not bite\n",
                 path.c_str());
    ok = false;
  }
  if (want.min_forked_pct >= 0 && forked_pct < want.min_forked_pct) {
    std::fprintf(stderr,
                 "audit_report: %s: forked_pct %.2f below expected "
                 "minimum %.2f\n",
                 path.c_str(), forked_pct, want.min_forked_pct);
    ok = false;
  }
  if (want.max_forked_pct >= 0 && forked_pct > want.max_forked_pct) {
    std::fprintf(stderr,
                 "audit_report: %s: forked_pct %.2f above expected "
                 "maximum %.2f\n",
                 path.c_str(), forked_pct, want.max_forked_pct);
    ok = false;
  }
  if (want.require_recovery) {
    const Json* rec = doc.Get("recovery");
    double gap = rec != nullptr && rec->Get("gap_seconds") != nullptr
                     ? rec->Get("gap_seconds")->AsDouble()
                     : -1;
    if (gap < 0) {
      std::fprintf(stderr,
                   "audit_report: %s: no post-heal recovery recorded\n",
                   path.c_str());
      ok = false;
    }
  }
  return ok;
}

void Summarize(const Json& doc, const std::string& path) {
  const Json* tree = doc.Get("fork_tree");
  size_t violations = doc.Get("invariants")->Get("violations")->size();
  const Json* rec = doc.Get("recovery");
  double gap = rec != nullptr && rec->Get("gap_seconds") != nullptr
                   ? rec->Get("gap_seconds")->AsDouble()
                   : -1;
  std::printf("%s: %llu blocks, %llu forked (%.1f%%), max branch depth "
              "%llu, %zu violation(s)",
              path.c_str(),
              (unsigned long long)tree->Get("distinct_blocks")->AsUint(),
              (unsigned long long)tree->Get("forked_blocks")->AsUint(),
              tree->Get("forked_pct")->AsDouble(),
              (unsigned long long)tree->Get("max_branch_depth")->AsUint(),
              violations);
  if (gap >= 0) std::printf(", recovery gap %.1f s", gap);
  std::printf("\n");
}

int UsageError(const char* msg) {
  std::fprintf(stderr, "audit_report: %s\n", msg);
  std::fprintf(stderr,
               "usage: audit_report [--fail-on-violation] "
               "[--expect-violation]\n"
               "                    [--min-forked-pct=X] "
               "[--max-forked-pct=X]\n"
               "                    [--require-recovery] REPORT.json...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Expectations want;
  want.fail_on_violation = bb::util::HasFlag(argc, argv, "--fail-on-violation");
  want.expect_violation = bb::util::HasFlag(argc, argv, "--expect-violation");
  want.min_forked_pct =
      bb::util::FlagDouble(argc, argv, "--min-forked-pct", -1);
  want.max_forked_pct =
      bb::util::FlagDouble(argc, argv, "--max-forked-pct", -1);
  want.require_recovery = bb::util::HasFlag(argc, argv, "--require-recovery");
  if (want.fail_on_violation && want.expect_violation) {
    return UsageError("--fail-on-violation and --expect-violation conflict");
  }

  std::vector<std::string> inputs;
  std::string bad;
  if (!bb::tools::SplitArgs(argc, argv,
                            {"--fail-on-violation", "--expect-violation",
                             "--require-recovery"},
                            {"--min-forked-pct", "--max-forked-pct"}, &inputs,
                            &bad)) {
    return UsageError(("unknown flag " + bad).c_str());
  }
  if (inputs.empty()) return UsageError("no input files");

  bool expectations_ok = true;
  for (const std::string& path : inputs) {
    auto doc = bb::tools::LoadJson(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "audit_report: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    bb::Status s = Validate(*doc, path);
    if (!s.ok()) {
      std::fprintf(stderr, "audit_report: %s\n", s.ToString().c_str());
      return 1;
    }
    Summarize(*doc, path);
    if (!CheckExpectations(*doc, path, want)) expectations_ok = false;
  }
  return expectations_ok ? 0 : 4;
}
