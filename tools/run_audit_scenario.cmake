# Runs one audited partition scenario end to end and checks the exact
# contract (invoked by ctest, see tools/CMakeLists.txt):
#   EXPECT=violation  bbench must exit 3 (safety violated: the Fig 10
#                     double-spend window) and audit_report must confirm
#                     a double-digit forked-block share;
#   EXPECT=clean      bbench must exit 0 and audit_report must confirm
#                     zero forks plus a post-heal recovery gap.
#
# Required -D vars: BBENCH, AUDIT_REPORT, PLATFORM, OUT, EXPECT,
#                   DURATION, PARTITION.

foreach(v BBENCH AUDIT_REPORT PLATFORM OUT EXPECT DURATION PARTITION)
  if(NOT DEFINED ${v})
    message(FATAL_ERROR "run_audit_scenario: missing -D${v}")
  endif()
endforeach()

execute_process(
  COMMAND ${BBENCH} --platform=${PLATFORM} --workload=ycsb --servers=4
          --clients=4 --rate=30 --duration=${DURATION} --warmup=5
          --partition=${PARTITION} --audit=${OUT}
  RESULT_VARIABLE bbench_rc)

if(EXPECT STREQUAL "violation")
  if(NOT bbench_rc EQUAL 3)
    message(FATAL_ERROR "expected bbench to exit 3 (safety violated), "
                        "got ${bbench_rc}")
  endif()
  execute_process(
    COMMAND ${AUDIT_REPORT} --expect-violation --min-forked-pct=10 ${OUT}
    RESULT_VARIABLE report_rc)
elseif(EXPECT STREQUAL "clean")
  if(NOT bbench_rc EQUAL 0)
    message(FATAL_ERROR "expected bbench to exit 0 (ledger safe), "
                        "got ${bbench_rc}")
  endif()
  execute_process(
    COMMAND ${AUDIT_REPORT} --fail-on-violation --max-forked-pct=0
            --require-recovery ${OUT}
    RESULT_VARIABLE report_rc)
else()
  message(FATAL_ERROR "unknown EXPECT '${EXPECT}'")
endif()

if(NOT report_rc EQUAL 0)
  message(FATAL_ERROR "audit_report rejected ${OUT} (exit ${report_rc})")
endif()
