// blackbox_report: validates blockbench-blackbox-v1 documents (written
// by bbench --blackbox, by an audited bbench run that found a safety
// violation, or by the fig9/fig10 bench harnesses) and renders the
// post-mortem a black box exists for:
//
//   blackbox_report [flags] DUMP.json...
//
//   --timeline=N   interleaved cross-node timeline depth (newest N
//                  records; 0 = everything; default 40)
//   --quiet        validation + divergence only, no timeline
//
// For every dump this prints the trigger and run summary, the per-node
// interleaved timeline with causal-slice records marked '*', the first
// height at which two nodes' committed chains diverge (the violation's
// footprint), and the bbench --replay command that re-runs the recorded
// configuration deterministically.
//
// Exit codes: 0 all dumps valid, 1 read/validation failure, 2 usage.

#include <cstdio>
#include <string>
#include <vector>

#include "obs/recorder.h"
#include "report_common.h"
#include "util/flags.h"
#include "util/json.h"

using bb::util::Json;

namespace {

int Usage(const char* msg) {
  std::fprintf(stderr, "blackbox_report: %s\n", msg);
  std::fprintf(stderr,
               "usage: blackbox_report [--timeline=N] [--quiet] "
               "DUMP.json...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string bad;
  if (!bb::tools::SplitArgs(argc, argv, {"--quiet"}, {"--timeline"}, &inputs,
                            &bad)) {
    return Usage(("unknown flag " + bad).c_str());
  }
  if (inputs.empty()) return Usage("no input files");
  size_t timeline = size_t(bb::util::FlagUint(argc, argv, "--timeline", 40));
  bool quiet = bb::util::HasFlag(argc, argv, "--quiet");

  for (const std::string& path : inputs) {
    auto doc = bb::tools::LoadJson(path);
    if (!doc.ok()) {
      std::fprintf(stderr, "blackbox_report: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    bb::Status s = bb::obs::ValidateBlackbox(*doc);
    if (!s.ok()) {
      std::fprintf(stderr, "blackbox_report: %s: %s\n", path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("%s: OK\n%s", path.c_str(),
                bb::obs::RenderBlackboxSummary(*doc).c_str());

    if (!quiet) {
      std::printf("\n%s", bb::obs::RenderBlackboxTimeline(*doc, timeline).c_str());
    }

    std::string divergence = bb::obs::FirstDivergence(*doc);
    if (!divergence.empty()) {
      std::printf("\nfirst divergence: %s\n", divergence.c_str());
    } else {
      std::printf("\nfirst divergence: none (all commits agree)\n");
    }
    std::printf("replay: bbench --replay=%s\n", path.c_str());
  }
  return 0;
}
