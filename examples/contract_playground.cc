// Contract playground: the execution layer by itself — assemble a
// contract, run it on the gas-metered VM under different engine
// configurations, and inspect gas, memory accounting and journaling.
// Useful when developing new contracts for the framework.
//
//   $ ./contract_playground

#include <cstdio>

#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "workloads/contracts.h"

using namespace bb;

namespace {

void Show(const char* label, const vm::ExecReceipt& r) {
  std::printf("%-28s status=%-22s gas=%-8llu ops=%-8llu peak_mem=%llu B\n",
              label, r.status.ToString().c_str(),
              (unsigned long long)r.gas_used,
              (unsigned long long)r.ops_executed,
              (unsigned long long)r.peak_memory_bytes);
}

}  // namespace

int main() {
  // A factorial contract, written from scratch.
  auto program = vm::Assemble(R"(
.func factorial           ; (n) -> n!
  PUSH 1                 ; acc
  ARG 0                  ; acc i
loop:
  DUP 0                  ; acc i i
  PUSH 1
  LE                     ; acc i (i<=1)
  JUMPI done
  DUP 0                  ; acc i i
  SWAP 2                 ; i i acc   -- wait, keep it simple:
  MUL                    ; i*acc ... see note below
  SWAP 0
  STOP
done:
  POP
  RETURN
)");
  if (!program.ok()) {
    // Deliberate: the snippet above is wrong (SWAP 0 is invalid) — the
    // assembler tells you where.
    std::printf("assembler rejected the first draft: %s\n\n",
                program.status().ToString().c_str());
  }

  program = vm::Assemble(R"(
.func factorial           ; (n) -> n!
  PUSH 1                 ; acc
  ARG 0                  ; acc i
loop:
  DUP 0
  PUSH 1
  LE
  JUMPI done             ; acc i
  DUP 0                  ; acc i i
  DUP 2                  ; acc i i acc
  MUL                    ; acc i newacc
  SWAP 2                 ; newacc i acc
  POP                    ; newacc i
  PUSH 1
  SUB                    ; newacc i-1
  JUMP loop
done:
  POP
  RETURN
)");
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }

  vm::MapHost host;
  vm::TxContext ctx;
  ctx.function = "factorial";
  ctx.args = {vm::Value(12)};

  // Same bytecode, three engine configurations.
  vm::VmOptions parity_like;
  parity_like.dispatch_overhead = 12;
  parity_like.word_overhead_bytes = 200;

  vm::VmOptions geth_like;
  geth_like.dispatch_overhead = 60;
  geth_like.word_overhead_bytes = 2200;

  auto r = vm::Interpreter().Execute(*program, ctx, &host);
  std::printf("factorial(12) = %s\n\n", r.return_value.ToDisplayString().c_str());
  Show("default engine", r);
  Show("parity-like engine",
       vm::Interpreter(parity_like).Execute(*program, ctx, &host));
  Show("geth-like engine",
       vm::Interpreter(geth_like).Execute(*program, ctx, &host));

  // Gas limits and journaling: a transaction that runs out of gas rolls
  // its writes back.
  auto bomb = vm::Assemble(R"(
  PUSHS "poison"
  PUSH 1
  SSTORE
spin:
  JUMP spin
)");
  vm::VmOptions limited;
  limited.gas_limit = 10'000;
  vm::TxContext spin_ctx;
  spin_ctx.function = "main";
  auto boom = vm::Interpreter(limited).Execute(*bomb, spin_ctx, &host);
  Show("\ninfinite loop, gas=10000", boom);
  std::printf("state after out-of-gas: %zu keys (journal rolled back)\n",
              host.state().size());

  // The real CPUHeavy contract from the benchmark suite.
  auto sort_prog = vm::Assemble(workloads::CpuHeavyCasm());
  vm::TxContext sort_ctx;
  sort_ctx.function = "sort";
  sort_ctx.args = {vm::Value(50'000)};
  Show("\nquicksort 50K elements",
       vm::Interpreter().Execute(*sort_prog, sort_ctx, &host));
  return 0;
}
