// Attack simulation: the paper's security experiment (Section 3.3) as a
// standalone scenario. An attacker who can partition the network (BGP
// hijack / eclipse) splits an 8-server cluster in half for 100 virtual
// seconds while a payment workload runs. We then measure the
// double-spending window: blocks confirmed to clients that never reach
// the main branch.
//
//   $ ./attack_simulation
//
// Expected: the PoW chain forks (a sizable fraction of blocks orphaned,
// each a double-spend opportunity); PBFT never forks — the minority
// partition simply halts and catches up after the heal.

#include <cstdio>

#include "core/driver.h"
#include "platform/platform.h"
#include "workloads/smallbank.h"

using namespace bb;

namespace {

void RunAttack(platform::PlatformOptions options) {
  std::printf("--- %s ---\n", options.name.c_str());
  sim::Simulation sim(7);
  platform::Platform chain(&sim, options, 8);

  workloads::SmallbankConfig cfg;
  cfg.num_accounts = 1'000;
  workloads::SmallbankWorkload workload(cfg);
  if (!workload.Setup(&chain).ok()) return;

  core::DriverConfig dc;
  dc.num_clients = 4;
  dc.request_rate = 40;
  dc.duration = 300;
  dc.drain = 40;
  core::Driver driver(&chain, &workload, dc);

  // The attack: partition {0,1,2,3} from {4,5,6,7} during [100s, 200s).
  sim.At(100, [&chain] {
    std::printf("  t=100s  network partitioned in half\n");
    chain.network().Partition({0, 1, 2, 3});
  });
  sim.At(200, [&chain] {
    std::printf("  t=200s  partition healed\n");
    chain.network().HealPartition();
  });

  driver.Run();

  uint64_t generated = chain.TotalBlocksProduced();
  uint64_t main_branch = chain.CanonicalBlocks();
  uint64_t orphaned = 0;
  for (size_t i = 0; i < chain.num_servers(); ++i) {
    orphaned = std::max<uint64_t>(orphaned,
                                  chain.node(i).chain().orphaned_blocks());
  }
  std::printf("  blocks generated:   %llu\n", (unsigned long long)generated);
  std::printf("  main branch:        %llu\n", (unsigned long long)main_branch);
  std::printf("  orphaned (Δ):       %llu  -> %s\n",
              (unsigned long long)orphaned,
              orphaned > 0 ? "DOUBLE-SPEND WINDOW: transactions 'confirmed' "
                             "on the losing branch vanished"
                           : "no fork: consensus safety held");
  std::printf("  committed tx:       %llu\n\n",
              (unsigned long long)driver.stats().total_committed());
}

}  // namespace

int main() {
  std::printf("Partition attack while a Smallbank payment workload runs\n\n");
  RunAttack(platform::EthereumOptions());
  RunAttack(platform::ParityOptions());
  RunAttack(platform::HyperledgerOptions());
  std::printf(
      "PoW/PoA fork under partition (probabilistic finality); PBFT's\n"
      "quorum intersection makes forks impossible — the paper's Fig 10.\n");
  return 0;
}
