// Consensus tour: the same Smallbank workload on all five platform
// models — one table showing how the consensus choice shapes throughput,
// latency, finality and fork behaviour.
//
//   $ ./consensus_tour

#include <cstdio>

#include "core/driver.h"
#include "platform/platform.h"
#include "workloads/smallbank.h"

using namespace bb;

int main() {
  struct Entry {
    const char* consensus;
    platform::PlatformOptions options;
  };
  Entry entries[] = {
      {"PoW", platform::EthereumOptions()},
      {"PoA", platform::ParityOptions()},
      {"PBFT", platform::HyperledgerOptions()},
      {"Tendermint", platform::ErisDbOptions()},
      {"Raft (CFT)", platform::CordaOptions()},
  };

  std::printf("Smallbank on five consensus designs (6 servers, 4 clients, "
              "60 tx/s/client, 90 s)\n\n");
  std::printf("%-12s %-12s | %9s %9s %8s %8s %s\n", "platform", "consensus",
              "tput", "p50 lat", "blocks", "orphans", "finality");
  for (auto& e : entries) {
    sim::Simulation sim(21);
    platform::Platform chain(&sim, e.options, 6);
    workloads::SmallbankConfig cfg;
    cfg.num_accounts = 2'000;
    workloads::SmallbankWorkload workload(cfg);
    if (!workload.Setup(&chain).ok()) {
      std::fprintf(stderr, "setup failed for %s\n", e.options.name.c_str());
      continue;
    }
    core::DriverConfig dc;
    dc.num_clients = 4;
    dc.request_rate = 60;
    dc.duration = 90;
    dc.drain = 25;
    core::Driver driver(&chain, &workload, dc);
    driver.Run();
    auto r = driver.Report();
    std::printf("%-12s %-12s | %9.1f %8.2fs %8llu %8llu %s\n",
                e.options.name.c_str(), e.consensus, r.throughput,
                r.latency_p50,
                (unsigned long long)chain.node(0).chain().main_chain_blocks(),
                (unsigned long long)chain.node(0).chain().orphaned_blocks(),
                e.options.confirmation_depth == 0
                    ? "immediate"
                    : "probabilistic (confirmation depth)");
  }
  std::printf(
      "\nPoW pays for open-membership security with latency and forks;\n"
      "PoA is bounded by its signing stage; the BFT protocols commit\n"
      "instantly but carry quorum traffic; Raft is cheapest of all —\n"
      "because it does not tolerate Byzantine behaviour at all (§2 of\n"
      "the paper).\n");
  return 0;
}
