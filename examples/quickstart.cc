// Quickstart: benchmark a private blockchain in ~40 lines.
//
// Builds an 8-server Hyperledger-model network, loads the YCSB key-value
// workload through the BLOCKBENCH driver with 8 clients, runs two
// virtual minutes, and prints throughput/latency — the framework's
// core loop (Fig 4 of the paper) end to end.
//
//   $ ./quickstart

#include <cstdio>

#include "core/driver.h"
#include "platform/platform.h"
#include "workloads/ycsb.h"

int main() {
  using namespace bb;

  // 1. A simulated cluster running the Hyperledger platform model.
  sim::Simulation sim(/*seed=*/42);
  platform::Platform chain(&sim, platform::HyperledgerOptions(),
                           /*num_servers=*/8);

  // 2. A workload: YCSB with 10K preloaded records, 50/50 reads/writes.
  workloads::YcsbConfig config;
  config.record_count = 10'000;
  workloads::YcsbWorkload workload(config);
  Status s = workload.Setup(&chain);  // deploys the contract + preloads
  if (!s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. The driver: 8 clients, each submitting 100 tx/s for 2 minutes.
  core::DriverConfig dc;
  dc.num_clients = 8;
  dc.request_rate = 100;
  dc.duration = 120;
  core::Driver driver(&chain, &workload, dc);
  driver.Run();  // advances virtual time; returns when the run is over

  // 4. Results.
  core::BenchReport r = driver.Report();
  std::printf("committed %llu of %llu submitted transactions\n",
              (unsigned long long)r.committed,
              (unsigned long long)r.submitted);
  std::printf("throughput: %.1f tx/s\n", r.throughput);
  std::printf("latency:    mean %.2f s, p50 %.2f s, p99 %.2f s\n",
              r.latency_mean, r.latency_p50, r.latency_p99);
  std::printf("blocks on chain: %llu\n",
              (unsigned long long)chain.node(0).chain().main_chain_blocks());

  // Swap HyperledgerOptions() for EthereumOptions() or ParityOptions()
  // to compare platforms — nothing else changes.
  return 0;
}
