// Custom workload: integrating your own smart contract and workload into
// the framework — the paper's IWorkloadConnector extension point (Fig 4).
//
// The contract is a sealed-bid auction: bidders place bids; the highest
// bid and bidder are tracked; a close() call picks the winner. We write
// it once in contract assembly (the "Solidity version") and once as
// chaincode-style semantics via the same assembly run natively, then
// drive it with a custom WorkloadConnector on two platforms.
//
//   $ ./custom_workload

#include <cstdio>

#include "core/driver.h"
#include "platform/platform.h"
#include "vm/assembler.h"

using namespace bb;

namespace {

// The auction contract. State: "hi" = highest bid, "hib" = highest
// bidder, "n" = number of bids.
const char* kAuctionCasm = R"(
.func bid                 ; (amount)
  ARG 0
  PUSHS "hi"
  SLOAD                  ; amount hi
  GT                     ; amount > hi ?
  JUMPI new_high
  PUSHS "too low"
  REVERT
new_high:
  PUSHS "hi"
  ARG 0
  SSTORE
  PUSHS "hib"
  CALLER
  SSTORE
  PUSHS "n"
  DUP 0
  SLOAD
  PUSH 1
  ADD
  SSTORE
  STOP
.func winner
  PUSHS "hib"
  SLOAD
  RETURN
.func highestBid
  PUSHS "hi"
  SLOAD
  RETURN
)";

// The workload connector: each transaction is a bid slightly above a
// random base, so some bids revert ("too low") — the framework counts
// both outcomes.
class AuctionWorkload : public core::WorkloadConnector {
 public:
  Status Setup(platform::Platform* platform) override {
    return platform->DeployContract("auction", kAuctionCasm).ok()
               ? platform->FinalizeGenesis()
               : Status::Internal("deploy failed");
  }

  chain::Transaction NextTransaction(uint32_t client_id, Rng& rng) override {
    (void)client_id;
    chain::Transaction tx;
    tx.contract = "auction";
    tx.function = "bid";
    tx.args = {vm::Value(int64_t(rng.Range(1, 1'000'000)))};
    return tx;
  }

  std::string name() const override { return "auction"; }
};

void RunOn(platform::PlatformOptions options) {
  sim::Simulation sim(11);
  platform::Platform chain(&sim, options, 4);
  AuctionWorkload workload;
  if (!workload.Setup(&chain).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return;
  }
  core::DriverConfig dc;
  dc.num_clients = 4;
  dc.request_rate = 25;
  dc.duration = 60;
  core::Driver driver(&chain, &workload, dc);
  driver.Run();
  auto r = driver.Report();

  // Query the final auction state through the read-only contract path.
  double cpu = 0;
  auto hi = chain.node(0).QueryContract("auction", "highestBid", {}, &cpu);
  auto who = chain.node(0).QueryContract("auction", "winner", {}, &cpu);
  std::printf("%-10s: %6.1f tx/s, lat p50 %.2fs | highest bid %lld by %s "
              "(%llu bids failed as too low)\n",
              options.name.c_str(), r.throughput, r.latency_p50,
              hi.ok() ? (long long)hi->AsInt() : -1,
              who.ok() && who->is_str() ? who->AsStr().c_str() : "?",
              (unsigned long long)chain.node(0).txs_failed());
}

}  // namespace

int main() {
  std::printf("Custom auction contract + workload connector\n\n");
  RunOn(platform::EthereumOptions());
  RunOn(platform::ParityOptions());
  return 0;
}
