// Discrete-event simulation core: a virtual clock and an event queue.
//
// Everything distributed in blockbench-cpp (consensus, block propagation,
// client drivers) runs in virtual time on one Simulation instance, which
// makes 32-node, multi-minute experiments deterministic and laptop-fast.

#ifndef BLOCKBENCH_SIM_SIMULATION_H_
#define BLOCKBENCH_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/random.h"

namespace bb::sim {

/// Virtual time in seconds since simulation start.
using SimTime = double;

/// The event loop. Events fire in (time, insertion order) order, so
/// same-time events are FIFO and runs are fully deterministic.
class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1) : rng_(seed) {}

  SimTime Now() const { return now_; }

  /// Schedules fn at absolute virtual time t (>= Now()).
  void At(SimTime t, std::function<void()> fn);
  /// Schedules fn after a delay (>= 0) from Now().
  void After(SimTime delay, std::function<void()> fn);

  /// Runs events until the queue is empty or Now() would exceed `end`.
  /// Events at exactly `end` are executed.
  void RunUntil(SimTime end);
  /// Runs until the event queue drains completely.
  void RunToCompletion();

  /// Drops all pending events (used between experiment phases in tests).
  void Clear();

  size_t pending_events() const { return queue_.size(); }

  /// Simulation-global RNG; fork per-component streams from it.
  Rng& rng() { return rng_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  Rng rng_;
};

}  // namespace bb::sim

#endif  // BLOCKBENCH_SIM_SIMULATION_H_
