// Discrete-event simulation core: a virtual clock and an event queue.
//
// Everything distributed in blockbench-cpp (consensus, block propagation,
// client drivers) runs in virtual time on one Simulation instance, which
// makes 32-node, multi-minute experiments deterministic and laptop-fast.
//
// The event loop is the single hottest path in the whole framework (a
// 32-node PBFT run dispatches millions of events), so it avoids the two
// classic costs of the naive priority_queue<std::function> design:
//   * callables live in a small-buffer-optimized EventFn inside a slab
//     of recycled slots — no per-event heap allocation for closures up
//     to 48 bytes, and closures are never moved by queue reordering;
//   * ordering works on 24-byte POD handles in a two-level structure: a
//     near-term binary heap plus an unsorted far-term overflow list
//     behind an adaptive horizon, tuned for the mostly-monotonic
//     schedule pattern (most events land a few milliseconds ahead of
//     Now, timers land seconds ahead).
// Events still fire in exact (time, insertion-seq) order, so runs are
// bit-for-bit identical to the previous kernel.

#ifndef BLOCKBENCH_SIM_SIMULATION_H_
#define BLOCKBENCH_SIM_SIMULATION_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/random.h"

namespace bb::obs {
class Tracer;
class MetricsRegistry;
class FlightRecorder;
class MemTracker;
}  // namespace bb::obs

namespace bb::sim {

/// Virtual time in seconds since simulation start.
using SimTime = double;

/// A move-only type-erased void() callable with inline storage for
/// captures up to kInlineSize bytes; larger callables fall back to one
/// heap allocation. The simulation's replacement for std::function.
class EventFn {
 public:
  static constexpr size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT: implicit wrap, like std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(std::move(other)); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*relocate)(void* from, void* to);  // move-construct + destroy src
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      [](void* from, void* to) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* self) { std::launder(reinterpret_cast<Fn*>(self))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      [](void* from, void* to) { std::memcpy(to, from, sizeof(Fn*)); },
      [](void* self) { delete *std::launder(reinterpret_cast<Fn**>(self)); },
  };

  void MoveFrom(EventFn&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

/// The event loop. Events fire in (time, insertion order) order, so
/// same-time events are FIFO and runs are fully deterministic.
class Simulation {
 public:
  explicit Simulation(uint64_t seed = 1) : rng_(seed) {}

  SimTime Now() const { return now_; }

  /// Schedules fn at absolute virtual time t (>= Now()).
  void At(SimTime t, EventFn fn);
  /// Schedules fn after a delay (>= 0) from Now().
  void After(SimTime delay, EventFn fn);

  /// Runs events until the queue is empty or Now() would exceed `end`.
  /// Events at exactly `end` are executed.
  void RunUntil(SimTime end);
  /// Runs until the event queue drains completely.
  void RunToCompletion();

  /// Drops all pending events (used between experiment phases in tests).
  void Clear();

  size_t pending_events() const { return near_.size() + far_.size(); }

  /// Total events dispatched since construction (drives events/sec
  /// reporting in the benchmark suite).
  uint64_t events_executed() const { return events_executed_; }

  /// Simulation-global RNG; fork per-component streams from it.
  Rng& rng() { return rng_; }

  /// Observability hooks. Both are non-owning and default to nullptr
  /// (disabled); every instrumentation site guards on the pointer, so a
  /// null tracer costs one branch. Attach before constructing the
  /// platform so genesis-time events are captured too.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }
  obs::FlightRecorder* recorder() const { return recorder_; }
  /// Out-of-line (simulation.cc) so it can bind the virtual clock into
  /// the tracker for high-water-mark timestamps.
  void set_memtracker(obs::MemTracker* memtracker);
  obs::MemTracker* memtracker() const { return memtracker_; }

  /// Stops the run loop after the currently dispatching event returns —
  /// the replay-breakpoint mechanism (bbench --until=TIME,SEQ). One-shot:
  /// the next RunUntil/RunToCompletion call clears the request.
  void RequestStop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

 private:
  /// Queue entry: everything ordering needs, nothing else — reordering
  /// the heap shuffles 24-byte PODs while the callables stay put in the
  /// slab.
  struct Handle {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
  };

  static bool Earlier(const Handle& a, const Handle& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  uint32_t AllocSlot(EventFn fn);
  void Push(Handle h);
  /// Pops the globally earliest handle; requires pending_events() > 0.
  Handle PopEarliest();
  /// Moves every far-term event within the new horizon into the heap.
  void RefillNear();
  void HeapSiftUp(size_t i);
  void HeapSiftDown(size_t i);
  /// Runs the earliest event (advancing the clock to its timestamp).
  void Dispatch();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;

  /// Near-term events, binary min-heap on (time, seq).
  std::vector<Handle> near_;
  /// Far-term events (time > horizon_), unsorted; scanned only when the
  /// heap drains.
  std::vector<Handle> far_;
  /// All heap events satisfy time <= horizon_, all far events
  /// time > horizon_; the horizon only moves forward.
  SimTime horizon_ = 0;

  /// Callable storage: slots are recycled through free_, so steady-state
  /// scheduling does not allocate at all (deque growth aside).
  std::deque<EventFn> slab_;
  std::vector<uint32_t> free_;

  Rng rng_;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::MemTracker* memtracker_ = nullptr;
  bool stop_requested_ = false;
};

}  // namespace bb::sim

#endif  // BLOCKBENCH_SIM_SIMULATION_H_
