#include "sim/network.h"

#include <cassert>

#include "obs/memtrack.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "sim/node.h"

namespace bb::sim {

void Network::Register(Node* node) {
  assert(node->id() == nodes_.size() && "register nodes in id order");
  nodes_.push_back(node);
  crashed_.push_back(false);
  side_.push_back(0);
}

bool Network::SameSide(NodeId a, NodeId b) const {
  if (!partitioned_) return true;
  return side_[a] == side_[b];
}

double Network::SampleLatency(uint64_t size_bytes) {
  double lat = config_.base_latency + injected_delay_;
  if (config_.jitter > 0) lat += rng_.NextDouble() * config_.jitter;
  if (config_.bandwidth_bytes_per_sec > 0) {
    lat += double(size_bytes) / config_.bandwidth_bytes_per_sec;
  }
  return lat;
}

bool Network::Send(Message msg) {
  BB_PROF_SCOPE("serialize.msg_send");
  assert(msg.from < nodes_.size() && msg.to < nodes_.size());
  ++messages_sent_;
  msg.seq = messages_sent_;  // deterministic: counts every send attempt
  bytes_sent_ += msg.size_bytes;
  // Allocation/copy model of the send path the raw-speed campaign is
  // chasing: the std::any payload box, msg.type when it spills the SSO
  // buffer, and the modeled wire bytes the hop copies.
  BB_PROF_ALLOC((msg.payload.has_value() ? 1 : 0) + (msg.type.size() > 15 ? 1 : 0),
                msg.type.size());
  BB_PROF_COPY(msg.size_bytes);
  nodes_[msg.from]->meter().AddNetBytes(sim_->Now(), msg.size_bytes);
  nodes_[msg.from]->meter().AddMessageSent(msg.type);
  if (auto* rec = sim_->recorder()) {
    rec->MsgSend(uint32_t(msg.from), sim_->Now(), msg.seq, uint32_t(msg.to),
                 msg.type, msg.size_bytes);
    // Replay breakpoint: --until=TIME,SEQ stops right after send SEQ.
    if (rec->break_seq() != 0 && msg.seq >= rec->break_seq()) {
      sim_->RequestStop();
    }
  }

  if (crashed_[msg.from] || crashed_[msg.to] || !SameSide(msg.from, msg.to) ||
      (config_.drop_probability > 0 && rng_.Bernoulli(config_.drop_probability))) {
    ++messages_dropped_;
    if (auto* rec = sim_->recorder()) {
      rec->MsgDrop(uint32_t(msg.from), sim_->Now(), msg.seq, uint32_t(msg.to),
                   msg.type, /*in_flight=*/false);
    }
    return false;
  }
  if (config_.inbox_capacity > 0 &&
      nodes_[msg.to]->inbox_depth() >= config_.inbox_capacity) {
    // Receiver's message channel is full: reject, as Fabric v0.6 does.
    ++messages_dropped_;
    if (auto* rec = sim_->recorder()) {
      rec->MsgDrop(uint32_t(msg.from), sim_->Now(), msg.seq, uint32_t(msg.to),
                   msg.type, /*in_flight=*/false);
    }
    return false;
  }
  if (config_.corrupt_probability > 0 &&
      rng_.Bernoulli(config_.corrupt_probability)) {
    msg.corrupted = true;
  }

  double latency = SampleLatency(msg.size_bytes);
  NodeId to = msg.to;
  if (auto* tr = sim_->tracer()) {
    tr->FlowBegin(msg.from, "net", "net.send", sim_->Now(), msg.seq);
  }
  // In-flight bytes are charged to the *receiver*: that is the node
  // whose inbound queue the scale campaign will see balloon under
  // quorum broadcast, and the attribution the mem gates reason about.
  if (auto* mt = sim_->memtracker()) {
    mt->Track(uint32_t(to), obs::mem::kNetInflight, msg.size_bytes);
  }
  sim_->After(latency, [this, to, m = std::move(msg)]() mutable {
    // Every in-flight outcome (delivery or either drop) releases the
    // receiver's in-flight bytes.
    if (auto* mt = sim_->memtracker()) {
      mt->Untrack(uint32_t(to), obs::mem::kNetInflight, m.size_bytes);
    }
    // Re-check fault state at delivery time.
    if (crashed_[to] || !SameSide(m.from, to)) {
      ++messages_dropped_;
      if (auto* rec = sim_->recorder()) {
        rec->MsgDrop(uint32_t(to), sim_->Now(), m.seq, uint32_t(m.from),
                     m.type, /*in_flight=*/true);
      }
      return;
    }
    // Channel-full check at the receiver (the arrival-time inbox, not
    // the send-time snapshot, is what overflows under load).
    if (config_.inbox_capacity > 0 &&
        nodes_[to]->inbox_depth() >= config_.inbox_capacity) {
      ++messages_dropped_;
      if (auto* rec = sim_->recorder()) {
        rec->MsgDrop(uint32_t(to), sim_->Now(), m.seq, uint32_t(m.from),
                     m.type, /*in_flight=*/true);
      }
      return;
    }
    if (auto* tr = sim_->tracer()) {
      tr->FlowEnd(to, "net", "net.recv", sim_->Now(), m.seq);
    }
    if (auto* rec = sim_->recorder()) {
      rec->MsgRecv(uint32_t(to), sim_->Now(), m.seq, uint32_t(m.from), m.type,
                   m.size_bytes);
    }
    nodes_[to]->Deliver(std::move(m));
  });
  return true;
}

void Network::Broadcast(NodeId from, const std::string& type, std::any payload,
                        uint64_t size_bytes) {
  BB_PROF_SCOPE("serialize.broadcast");
  for (NodeId to = 0; to < nodes_.size(); ++to) {
    if (to == from) continue;
    Message m;
    m.from = from;
    m.to = to;
    m.type = type;
    // Per-recipient std::any re-box — the copy source ROADMAP's next
    // raw-speed round wants gone; count it so the profile names it.
    BB_PROF_ALLOC(payload.has_value() ? 1 : 0, size_bytes);
    m.payload = payload;
    m.size_bytes = size_bytes;
    Send(std::move(m));
  }
}

void Network::Crash(NodeId id) {
  assert(id < nodes_.size());
  crashed_[id] = true;
  nodes_[id]->set_crashed(true);
  // Fault-schedule edges land in both observability sinks: Perfetto
  // traces show when the fault fired, and the flight recorder keeps it
  // in the node's black-box ring for post-mortems.
  if (auto* tr = sim_->tracer()) {
    tr->Instant(uint32_t(id), "fault", "fault.crash", sim_->Now());
  }
  if (auto* rec = sim_->recorder()) {
    rec->Fault(obs::FlightRecorder::Kind::kCrash, uint32_t(id), sim_->Now());
  }
}

void Network::Restart(NodeId id) {
  assert(id < nodes_.size());
  crashed_[id] = false;
  nodes_[id]->set_crashed(false);
  if (auto* tr = sim_->tracer()) {
    tr->Instant(uint32_t(id), "fault", "fault.recover", sim_->Now());
  }
  if (auto* rec = sim_->recorder()) {
    rec->Fault(obs::FlightRecorder::Kind::kRecover, uint32_t(id), sim_->Now());
  }
}

bool Network::IsCrashed(NodeId id) const { return crashed_.at(id); }

void Network::Partition(const std::vector<NodeId>& group_a) {
  for (auto& s : side_) s = 1;
  for (NodeId id : group_a) {
    assert(id < side_.size());
    side_[id] = 0;
  }
  partitioned_ = true;
  // One edge per node, tagged with the side it landed on, so each ring
  // is self-contained for the per-node timeline.
  for (NodeId id = 0; id < side_.size(); ++id) {
    if (auto* tr = sim_->tracer()) {
      tr->Instant(uint32_t(id), "fault", "fault.partition", sim_->Now(),
                  "side", double(side_[id]));
    }
    if (auto* rec = sim_->recorder()) {
      rec->Fault(obs::FlightRecorder::Kind::kPartition, uint32_t(id),
                 sim_->Now(), side_[id]);
    }
  }
}

void Network::HealPartition() {
  partitioned_ = false;
  for (NodeId id = 0; id < side_.size(); ++id) {
    if (auto* tr = sim_->tracer()) {
      tr->Instant(uint32_t(id), "fault", "fault.heal", sim_->Now());
    }
    if (auto* rec = sim_->recorder()) {
      rec->Fault(obs::FlightRecorder::Kind::kHeal, uint32_t(id), sim_->Now());
    }
  }
}

size_t Network::InboxDepth(NodeId id) const {
  return nodes_.at(id)->inbox_depth();
}

}  // namespace bb::sim
