#include "sim/node.h"

#include <cassert>
#include <utility>

#include "obs/profiler.h"

namespace bb::sim {

Node::Node(NodeId id, Network* network) : id_(id), network_(network) {
  network_->Register(this);
}

void Node::set_crashed(bool c) {
  if (crashed_ == c) return;
  crashed_ = c;
  if (c) {
    inbox_.clear();
    class_queued_ = 0;
    processing_ = false;
    OnCrash();
  } else {
    OnRestart();
  }
}

void Node::SetInboxClassLimit(std::string prefix, size_t capacity) {
  class_prefix_ = std::move(prefix);
  class_capacity_ = capacity;
}

void Node::Deliver(Message msg) {
  if (crashed_) return;
  if (class_capacity_ > 0 && !class_prefix_.empty() &&
      msg.type.compare(0, class_prefix_.size(), class_prefix_) == 0) {
    if (class_queued_ >= class_capacity_) {
      // The class channel is full: reject, as Fabric v0.6 does.
      ++class_dropped_;
      return;
    }
    ++class_queued_;
  }
  inbox_.push_back(std::move(msg));
  if (!processing_) ProcessNext();
}

void Node::ProcessNext() {
  if (crashed_ || inbox_.empty()) {
    processing_ = false;
    return;
  }
  processing_ = true;
  BB_PROF_SCOPE("sim.process_msg");
  Message msg = std::move(inbox_.front());
  inbox_.pop_front();
  if (class_queued_ > 0 && !class_prefix_.empty() &&
      msg.type.compare(0, class_prefix_.size(), class_prefix_) == 0) {
    --class_queued_;
  }
  meter_.AddNetBytes(Now(), msg.size_bytes);
  double cost = HandleMessage(msg);
  assert(cost >= 0);
  meter_.AddCpu(Now(), cost);
  // The node is busy for `cost`; the next queued message starts after.
  sim()->After(cost, [this] { ProcessNext(); });
}

bool Node::Send(NodeId to, const std::string& type, std::any payload,
                uint64_t size_bytes) {
  Message m;
  m.from = id_;
  m.to = to;
  m.type = type;
  m.payload = std::move(payload);
  m.size_bytes = size_bytes;
  return network_->Send(std::move(m));
}

void Node::Broadcast(const std::string& type, std::any payload,
                     uint64_t size_bytes) {
  network_->Broadcast(id_, type, std::move(payload), size_bytes);
}

}  // namespace bb::sim
