#include "sim/simulation.h"

#include <algorithm>
#include <cassert>

// Header-only hot paths: bb_sim stays link-independent of bb_obs.
#include "obs/memtrack.h"
#include "obs/profiler.h"

namespace bb::sim {
namespace {

// Logical cost of one scheduled event: the 24-byte ordering handle plus
// the slab slot holding the (possibly heap-spilled, but we charge the
// inline footprint) callable. Deliberately a constant: slot recycling
// means real growth is HWM-shaped, which is exactly what this measures.
constexpr uint64_t kEventSlotBytes =
    sizeof(EventFn) + 3 * sizeof(uint64_t);  // Handle is private: 24 bytes

// Near-term window restarted around the next event when the queue goes
// idle; ~10 ms covers the network-latency scale most events live on.
constexpr SimTime kIdleSpan = 0.010;

// Floor for how many far-term events one refill aims to absorb.
constexpr size_t kMinRefillBatch = 64;

}  // namespace

uint32_t Simulation::AllocSlot(EventFn fn) {
  if (!free_.empty()) {
    uint32_t slot = free_.back();
    free_.pop_back();
    slab_[slot] = std::move(fn);
    return slot;
  }
  slab_.push_back(std::move(fn));
  return uint32_t(slab_.size() - 1);
}

void Simulation::Push(Handle h) {
  if (near_.empty() && far_.empty()) {
    // Queue went idle: restart the window at this event.
    horizon_ = h.time + kIdleSpan;
    near_.push_back(h);
    return;
  }
  if (h.time <= horizon_) {
    near_.push_back(h);
    HeapSiftUp(near_.size() - 1);
  } else {
    far_.push_back(h);
  }
}

void Simulation::RefillNear() {
  assert(near_.empty() && !far_.empty());
  SimTime min_time = far_[0].time;
  SimTime max_time = far_[0].time;
  for (const Handle& h : far_) {
    if (h.time < min_time) min_time = h.time;
    if (h.time > max_time) max_time = h.time;
  }
  // Window width from the observed event density: absorb a batch
  // proportional to the far list (amortized O(1) scan work per event)
  // but never fewer than kMinRefillBatch, so skewed schedules don't
  // degenerate into one-event refills.
  size_t target = std::max(kMinRefillBatch, far_.size() / 8);
  SimTime spacing = (max_time - min_time) / SimTime(far_.size());
  horizon_ = min_time + spacing * SimTime(target);

  // Partition far_ in place: handles within the horizon move to near_.
  size_t kept = 0;
  for (size_t i = 0; i < far_.size(); ++i) {
    if (far_[i].time <= horizon_) {
      near_.push_back(far_[i]);
    } else {
      far_[kept++] = far_[i];
    }
  }
  far_.resize(kept);

  // Floyd heap construction: O(moved), cheaper than repeated sift-ups.
  for (size_t i = near_.size() / 2; i-- > 0;) HeapSiftDown(i);
}

void Simulation::HeapSiftUp(size_t i) {
  Handle h = near_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!Earlier(h, near_[parent])) break;
    near_[i] = near_[parent];
    i = parent;
  }
  near_[i] = h;
}

void Simulation::HeapSiftDown(size_t i) {
  Handle h = near_[i];
  const size_t n = near_.size();
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && Earlier(near_[child + 1], near_[child])) ++child;
    if (!Earlier(near_[child], h)) break;
    near_[i] = near_[child];
    i = child;
  }
  near_[i] = h;
}

Simulation::Handle Simulation::PopEarliest() {
  if (near_.empty()) RefillNear();
  Handle top = near_[0];
  Handle last = near_.back();
  near_.pop_back();
  if (!near_.empty()) {
    near_[0] = last;
    HeapSiftDown(0);
  }
  return top;
}

void Simulation::Dispatch() {
  BB_PROF_SCOPE("sim.dispatch");
  Handle h = PopEarliest();
  // Detach the callable before running it: the event may Clear() the
  // queue or schedule events that recycle this slot.
  EventFn fn = std::move(slab_[h.slot]);
  free_.push_back(h.slot);
  now_ = h.time;
  ++events_executed_;
  if (memtracker_ != nullptr) {
    memtracker_->Untrack(obs::MemTracker::kGlobalNode, obs::mem::kSimEvents,
                         kEventSlotBytes);
  }
  fn();
}

void Simulation::At(SimTime t, EventFn fn) {
  assert(t >= now_ && "cannot schedule in the past");
  Push(Handle{t, next_seq_++, AllocSlot(std::move(fn))});
  if (memtracker_ != nullptr) {
    memtracker_->Track(obs::MemTracker::kGlobalNode, obs::mem::kSimEvents,
                       kEventSlotBytes);
  }
}

void Simulation::After(SimTime delay, EventFn fn) {
  assert(delay >= 0);
  At(now_ + delay, std::move(fn));
}

void Simulation::RunUntil(SimTime end) {
  stop_requested_ = false;
  while (pending_events() > 0) {
    if (near_.empty()) RefillNear();
    // All far events lie beyond horizon_ >= every near event, so the
    // heap root is the global minimum.
    if (near_[0].time > end) break;
    Dispatch();
    if (stop_requested_) return;  // breakpoint hit: clock stays at Now()
  }
  if (now_ < end) now_ = end;
}

void Simulation::RunToCompletion() {
  stop_requested_ = false;
  while (pending_events() > 0) {
    Dispatch();
    if (stop_requested_) return;
  }
}

void Simulation::Clear() {
  if (memtracker_ != nullptr && pending_events() > 0) {
    uint64_t n = pending_events();
    memtracker_->Untrack(obs::MemTracker::kGlobalNode, obs::mem::kSimEvents,
                         n * kEventSlotBytes, n);
  }
  // Destroying the slab releases every pending closure; a closure
  // calling Clear() from inside Dispatch() is safe because the running
  // callable was detached from its slot before being invoked.
  near_.clear();
  far_.clear();
  slab_.clear();
  free_.clear();
  horizon_ = now_;
}

void Simulation::set_memtracker(obs::MemTracker* memtracker) {
  memtracker_ = memtracker;
  if (memtracker_ != nullptr) memtracker_->BindSim(this);
}

}  // namespace bb::sim
