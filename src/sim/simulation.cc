#include "sim/simulation.h"

#include <cassert>

namespace bb::sim {

void Simulation::At(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulation::After(SimTime delay, std::function<void()> fn) {
  assert(delay >= 0);
  At(now_ + delay, std::move(fn));
}

void Simulation::RunUntil(SimTime end) {
  while (!queue_.empty() && queue_.top().time <= end) {
    // Copy out before pop: fn may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
  }
  if (now_ < end) now_ = end;
}

void Simulation::RunToCompletion() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
  }
}

void Simulation::Clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace bb::sim
