// Node: base class for simulated processes (consensus replicas, clients).
//
// A node handles messages serially, modelling a (mostly) single-threaded
// server: each message occupies the node's CPU for a handler-declared cost,
// and arrivals queue behind it. This is what lets the framework observe
// CPU saturation, growing inboxes, and the PBFT channel-full collapse.

#ifndef BLOCKBENCH_SIM_NODE_H_
#define BLOCKBENCH_SIM_NODE_H_

#include <deque>
#include <string>

#include "sim/meters.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace bb::sim {

class Node {
 public:
  Node(NodeId id, Network* network);
  virtual ~Node() = default;

  NodeId id() const { return id_; }
  Network* network() { return network_; }
  Simulation* sim() { return network_->sim(); }
  SimTime Now() const { return network_->sim()->Now(); }

  /// Called once when the experiment starts.
  virtual void Start() {}
  /// Handles one message. Return value is the CPU seconds the handler
  /// consumed; the node is busy (and queues later messages) for that long.
  virtual double HandleMessage(const Message& msg) = 0;
  /// Called when the node is crashed / restarted by fault injection.
  virtual void OnCrash() {}
  virtual void OnRestart() {}

  /// Network delivery entry point (called by Network).
  void Deliver(Message msg);
  size_t inbox_depth() const { return inbox_.size() + (processing_ ? 1 : 0); }

  /// Bounds the number of queued messages whose type starts with
  /// `prefix` (e.g. Fabric v0.6's bounded consensus channel). Arrivals
  /// beyond the cap are dropped. One class per node.
  void SetInboxClassLimit(std::string prefix, size_t capacity);
  uint64_t class_dropped() const { return class_dropped_; }

  bool crashed() const { return crashed_; }
  void set_crashed(bool c);

  ResourceMeter& meter() { return meter_; }
  const ResourceMeter& meter() const { return meter_; }

  /// Runs `cost` seconds of background CPU work on this node's meter
  /// without blocking message processing (e.g. PoW mining runs on
  /// dedicated cores).
  void ChargeBackgroundCpu(double cost) { meter_.AddCpu(Now(), cost); }

 protected:
  /// Convenience wrappers.
  bool Send(NodeId to, const std::string& type, std::any payload,
            uint64_t size_bytes);
  void Broadcast(const std::string& type, std::any payload,
                 uint64_t size_bytes);

 private:
  void ProcessNext();

  NodeId id_;
  Network* network_;
  bool crashed_ = false;
  bool processing_ = false;
  std::deque<Message> inbox_;
  ResourceMeter meter_;
  std::string class_prefix_;
  size_t class_capacity_ = 0;
  size_t class_queued_ = 0;
  uint64_t class_dropped_ = 0;
};

}  // namespace bb::sim

#endif  // BLOCKBENCH_SIM_NODE_H_
