// Per-node resource meters: CPU busy time and network bytes, binned into
// per-second time series. These back the utilization figures (Fig 16) and
// the CPU-bound vs communication-bound analysis in the paper.

#ifndef BLOCKBENCH_SIM_METERS_H_
#define BLOCKBENCH_SIM_METERS_H_

#include <cstdint>

#include "util/histogram.h"

namespace bb::sim {

class ResourceMeter {
 public:
  ResourceMeter() : cpu_busy_(1.0), net_bytes_(1.0) {}

  /// Records `busy` seconds of CPU work starting at virtual time t.
  void AddCpu(double t, double busy) {
    cpu_busy_.Add(t, busy);
    total_cpu_ += busy;
  }
  /// Records bytes put on the wire at time t (sent + received combined).
  void AddNetBytes(double t, uint64_t bytes) {
    net_bytes_.Add(t, double(bytes));
    total_net_bytes_ += bytes;
  }

  /// CPU utilization (0..1, can exceed 1 when modelling multi-core work)
  /// during second `sec`.
  double CpuUtilizationAt(size_t sec) const { return cpu_busy_.SumAt(sec); }
  /// Network rate in Mbps during second `sec`.
  double NetworkMbpsAt(size_t sec) const {
    return net_bytes_.SumAt(sec) * 8.0 / 1e6;
  }

  double total_cpu() const { return total_cpu_; }
  uint64_t total_net_bytes() const { return total_net_bytes_; }

 private:
  TimeSeries cpu_busy_;
  TimeSeries net_bytes_;
  double total_cpu_ = 0;
  uint64_t total_net_bytes_ = 0;
};

}  // namespace bb::sim

#endif  // BLOCKBENCH_SIM_METERS_H_
