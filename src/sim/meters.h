// Per-node resource meters: CPU busy time and network bytes, binned into
// per-second time series. These back the utilization figures (Fig 16) and
// the CPU-bound vs communication-bound analysis in the paper.

#ifndef BLOCKBENCH_SIM_METERS_H_
#define BLOCKBENCH_SIM_METERS_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/histogram.h"

namespace bb::sim {

class ResourceMeter {
 public:
  ResourceMeter() : cpu_busy_(1.0), net_bytes_(1.0) {}

  /// Records `busy` seconds of CPU work starting at virtual time t.
  void AddCpu(double t, double busy) {
    cpu_busy_.Add(t, busy);
    total_cpu_ += busy;
  }
  /// Records bytes put on the wire at time t (sent + received combined).
  void AddNetBytes(double t, uint64_t bytes) {
    net_bytes_.Add(t, double(bytes));
    total_net_bytes_ += bytes;
  }
  /// Counts one outbound message of the given protocol type (the
  /// Message::type string, e.g. "pbft_prepare"); backs the
  /// messages-per-consensus-phase breakdown in Fig 16 and the metrics
  /// registry.
  void AddMessageSent(const std::string& type) {
    ++msgs_sent_by_type_[type];
    ++total_msgs_sent_;
  }

  /// CPU utilization (0..1, can exceed 1 when modelling multi-core work)
  /// during second `sec`.
  double CpuUtilizationAt(size_t sec) const { return cpu_busy_.SumAt(sec); }
  /// Network rate in Mbps during second `sec`.
  double NetworkMbpsAt(size_t sec) const {
    return net_bytes_.SumAt(sec) * 8.0 / 1e6;
  }

  double total_cpu() const { return total_cpu_; }
  uint64_t total_net_bytes() const { return total_net_bytes_; }
  uint64_t total_msgs_sent() const { return total_msgs_sent_; }
  /// Outbound message counts keyed by Message::type, sorted (std::map)
  /// so iteration order is deterministic.
  const std::map<std::string, uint64_t>& msgs_sent_by_type() const {
    return msgs_sent_by_type_;
  }

 private:
  TimeSeries cpu_busy_;
  TimeSeries net_bytes_;
  double total_cpu_ = 0;
  uint64_t total_net_bytes_ = 0;
  uint64_t total_msgs_sent_ = 0;
  std::map<std::string, uint64_t> msgs_sent_by_type_;
};

}  // namespace bb::sim

#endif  // BLOCKBENCH_SIM_METERS_H_
