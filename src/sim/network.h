// Simulated message-passing network between nodes.
//
// Supports the fault/attack toolbox Section 3.3 of the paper calls for:
//   - crash failure   (node stops: messages to/from it are dropped)
//   - network delay   (extra injected latency per link or globally)
//   - random response (message corruption)
//   - partitions      (traffic between partitions dropped for a duration)
// plus a bounded per-node inbox, which is what lets the PBFT model
// reproduce Hyperledger's "message channel full" collapse at scale.

#ifndef BLOCKBENCH_SIM_NETWORK_H_
#define BLOCKBENCH_SIM_NETWORK_H_

#include <any>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulation.h"
#include "util/random.h"

namespace bb::sim {

using NodeId = uint32_t;
constexpr NodeId kNoNode = UINT32_MAX;

/// A message in flight. Payload is type-erased; receivers know the schema
/// from `type`.
struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::string type;
  std::any payload;
  uint64_t size_bytes = 0;
  /// Unique per network send, assigned by Network::Send in dispatch
  /// order (deterministic). Links a send to its delivery — the tracer
  /// uses it as the Perfetto flow-event id.
  uint64_t seq = 0;
  bool corrupted = false;
};

class Node;  // sim/node.h

struct NetworkConfig {
  /// One-way base propagation latency between any two nodes (seconds).
  /// Default approximates a 1G-switch LAN.
  double base_latency = 0.001;
  /// Uniform jitter added on top of base latency: U[0, jitter].
  double jitter = 0.0005;
  /// Link bandwidth in bytes/sec used to serialize large messages
  /// (blocks). 1 Gbps by default, matching the paper's testbed.
  double bandwidth_bytes_per_sec = 125e6;
  /// Maximum messages queued for a node (delivery + processing backlog)
  /// before new arrivals are dropped. 0 = unbounded.
  size_t inbox_capacity = 0;
  /// Probability any message is silently dropped.
  double drop_probability = 0;
  /// Probability a delivered message is flagged corrupted.
  double corrupt_probability = 0;
};

/// The network. Owns delivery scheduling; Nodes register themselves.
class Network {
 public:
  Network(Simulation* sim, NetworkConfig config)
      : sim_(sim), config_(config), rng_(sim->rng().Fork()) {}

  /// Registers a node; its id must equal its index order of registration.
  void Register(Node* node);
  size_t num_nodes() const { return nodes_.size(); }

  /// Sends a message; delivery is scheduled per latency model and current
  /// fault state. Returns false if the message was dropped at send time
  /// (partition, crash, random drop, inbox overflow).
  bool Send(Message msg);
  /// Sends to every other live node (gossip-style broadcast).
  void Broadcast(NodeId from, const std::string& type, std::any payload,
                 uint64_t size_bytes);

  // --- Fault & attack injection -------------------------------------------
  /// Crash-stops a node. It stops receiving and its pending work is void.
  void Crash(NodeId id);
  void Restart(NodeId id);
  bool IsCrashed(NodeId id) const;

  /// Splits nodes into two groups; cross-group traffic is dropped until
  /// HealPartition(). group_a holds ids in the first partition.
  void Partition(const std::vector<NodeId>& group_a);
  void HealPartition();
  bool partitioned() const { return partitioned_; }
  /// Side a node currently sits on: 0 (group A) or 1; -1 when no
  /// partition is active. Live-sampled by the observability probes.
  int PartitionSideOf(NodeId id) const {
    return partitioned_ && id < side_.size() ? side_[id] : -1;
  }

  /// Adds `extra` seconds of one-way latency to every message.
  void InjectDelay(double extra) { injected_delay_ = extra; }
  void SetDropProbability(double p) { config_.drop_probability = p; }
  void SetCorruptProbability(double p) { config_.corrupt_probability = p; }

  // --- Introspection -------------------------------------------------------
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  size_t InboxDepth(NodeId id) const;

  Simulation* sim() { return sim_; }
  Node* node(NodeId id) { return nodes_.at(id); }

 private:
  bool SameSide(NodeId a, NodeId b) const;
  double SampleLatency(uint64_t size_bytes);

  Simulation* sim_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<Node*> nodes_;
  std::vector<bool> crashed_;
  // Partition membership: 0 = group A, 1 = group B. Valid when partitioned_.
  std::vector<int> side_;
  bool partitioned_ = false;
  double injected_delay_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace bb::sim

#endif  // BLOCKBENCH_SIM_NETWORK_H_
