#include "sim/meters.h"

// ResourceMeter is header-only today; this TU anchors the library target.
