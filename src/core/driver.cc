#include "core/driver.h"

#include <cassert>

#include "obs/profiler.h"

namespace bb::core {

Driver::Driver(platform::Platform* platform, WorkloadConnector* workload,
               DriverConfig config)
    : platform_(platform), config_(config), stats_(config.num_clients) {
  Rng seeder(config_.seed);
  for (size_t i = 0; i < config_.num_clients; ++i) {
    ClientConfig cc;
    cc.request_rate = config_.request_rate;
    cc.max_outstanding = config_.max_outstanding;
    cc.poll_interval = config_.poll_interval;
    cc.load_end = platform_->psim()->Now() + config_.duration;
    // Client ids start where the platform's node-id space ends (after
    // the coordinator on sharded platforms); client i submits to and
    // polls its platform-assigned home server.
    sim::NodeId client_node_id = platform_->first_client_id() + sim::NodeId(i);
    clients_.push_back(std::make_unique<DriverClient>(
        client_node_id, &platform_->network(), uint32_t(i),
        platform_->SubmitServerFor(i), workload, &stats_, cc, seeder.Next(),
        platform_));
  }
}

void Driver::StartAll() {
  assert(!started_);
  started_ = true;
  platform_->Start();
  for (auto& c : clients_) c->Start();
}

void Driver::Run() {
  BB_PROF_SCOPE("driver.run");
  double start = platform_->psim()->Now();
  StartAll();
  platform_->psim()->RunUntil(start + config_.duration + config_.drain);
}

BenchReport Driver::Report() const {
  return Report(config_.warmup, config_.duration);
}

BenchReport Driver::Report(double from, double to) const {
  BenchReport r;
  r.throughput = stats_.Throughput(from, to);
  const Histogram& lat = stats_.latencies();
  r.latency_mean = lat.Mean();
  r.latency_p50 = lat.Percentile(50);
  r.latency_p95 = lat.Percentile(95);
  r.latency_p99 = lat.Percentile(99);
  r.submitted = stats_.total_submitted();
  r.committed = stats_.total_committed();
  r.rejected = stats_.total_rejected();
  r.xs_submitted = stats_.xs_submitted();
  r.xs_committed = stats_.xs_committed();
  r.xs_aborted = stats_.xs_aborted();
  const Histogram& xs = stats_.xs_latencies();
  r.xs_latency_mean = xs.Mean();
  r.xs_latency_p95 = xs.Percentile(95);
  return r;
}

}  // namespace bb::core
