#include "core/driver.h"

#include <cassert>

namespace bb::core {

Driver::Driver(platform::Platform* platform, WorkloadConnector* workload,
               DriverConfig config)
    : platform_(platform), config_(config), stats_(config.num_clients) {
  Rng seeder(config_.seed);
  size_t servers = platform_->num_servers();
  for (size_t i = 0; i < config_.num_clients; ++i) {
    ClientConfig cc;
    cc.request_rate = config_.request_rate;
    cc.max_outstanding = config_.max_outstanding;
    cc.poll_interval = config_.poll_interval;
    cc.load_end = platform_->psim()->Now() + config_.duration;
    sim::NodeId client_node_id = sim::NodeId(servers + i);
    clients_.push_back(std::make_unique<DriverClient>(
        client_node_id, &platform_->network(), uint32_t(i),
        sim::NodeId(i % servers), workload, &stats_, cc, seeder.Next()));
  }
}

void Driver::StartAll() {
  assert(!started_);
  started_ = true;
  platform_->Start();
  for (auto& c : clients_) c->Start();
}

void Driver::Run() {
  double start = platform_->psim()->Now();
  StartAll();
  platform_->psim()->RunUntil(start + config_.duration + config_.drain);
}

BenchReport Driver::Report() const {
  return Report(config_.warmup, config_.duration);
}

BenchReport Driver::Report(double from, double to) const {
  BenchReport r;
  r.throughput = stats_.Throughput(from, to);
  const Histogram& lat = stats_.latencies();
  r.latency_mean = lat.Mean();
  r.latency_p50 = lat.Percentile(50);
  r.latency_p95 = lat.Percentile(95);
  r.latency_p99 = lat.Percentile(99);
  r.submitted = stats_.total_submitted();
  r.committed = stats_.total_committed();
  r.rejected = stats_.total_rejected();
  return r;
}

}  // namespace bb::core
