// Driver: the framework's core component (Fig 4). Takes a workload, a
// user-defined configuration (number of clients, request rate, duration),
// executes it against a platform, and outputs running statistics.

#ifndef BLOCKBENCH_CORE_DRIVER_H_
#define BLOCKBENCH_CORE_DRIVER_H_

#include <memory>
#include <vector>

#include "core/client.h"
#include "core/connector.h"
#include "core/stats.h"

namespace bb::core {

struct DriverConfig {
  size_t num_clients = 8;
  /// Per-client open-loop rate (tx/s); 0 = closed loop.
  double request_rate = 8;
  /// Closed-loop window / open-loop outstanding cap. 0 = unbounded.
  size_t max_outstanding = 0;
  double poll_interval = 0.5;
  /// Seconds of offered load.
  double duration = 300;
  /// Extra time after load stops for in-flight commits to land.
  double drain = 30;
  /// Measurement window for the report (defaults to [warmup, duration]).
  double warmup = 10;
  uint64_t seed = 7;
};

struct BenchReport {
  double throughput = 0;        // committed tx/s in the measurement window
  double latency_mean = 0;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t rejected = 0;
  /// Cross-shard 2PC transactions (all zero on unsharded platforms).
  uint64_t xs_submitted = 0;
  uint64_t xs_committed = 0;
  uint64_t xs_aborted = 0;
  double xs_latency_mean = 0;
  double xs_latency_p95 = 0;
};

class Driver {
 public:
  /// Creates num_clients DriverClients on the platform's network; client
  /// i submits to server (i mod num_servers). The workload must already
  /// be Setup() on the platform.
  Driver(platform::Platform* platform, WorkloadConnector* workload,
         DriverConfig config);

  /// Starts the platform and the clients, then advances virtual time to
  /// duration + drain. Reentrant runs are not supported.
  void Run();

  /// Starts everything without advancing time (caller drives the sim —
  /// used when benches schedule faults/attacks themselves).
  void StartAll();

  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }
  DriverClient& client(size_t i) { return *clients_.at(i); }
  size_t num_clients() const { return clients_.size(); }
  const DriverConfig& config() const { return config_; }

  BenchReport Report() const;
  BenchReport Report(double from, double to) const;

 private:
  platform::Platform* platform_;
  DriverConfig config_;
  StatsCollector stats_;
  std::vector<std::unique_ptr<DriverClient>> clients_;
  bool started_ = false;
};

}  // namespace bb::core

#endif  // BLOCKBENCH_CORE_DRIVER_H_
