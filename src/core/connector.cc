#include "core/connector.h"

// Interface-only translation unit; anchors vtables.
