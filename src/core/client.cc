#include "core/client.h"

#include "obs/profiler.h"
#include "obs/trace.h"

namespace bb::core {

namespace {
uint64_t MakeTxId(uint32_t client_index, uint64_t seq) {
  return (uint64_t(client_index) + 1) << 40 | seq;
}
}  // namespace

DriverClient::DriverClient(sim::NodeId id, sim::Network* network,
                           uint32_t client_index, sim::NodeId server,
                           WorkloadConnector* workload, StatsCollector* stats,
                           ClientConfig config, uint64_t seed,
                           platform::Platform* platform)
    : sim::Node(id, network),
      client_index_(client_index),
      server_(server),
      platform_(platform),
      workload_(workload),
      stats_(stats),
      config_(config),
      rng_(seed) {}

void DriverClient::Start() {
  if (config_.request_rate > 0) {
    // Desynchronize clients slightly so submissions do not arrive in
    // lockstep.
    sim()->After(rng_.NextDouble() / config_.request_rate,
                 [this] { GenerateTick(); });
  } else if (config_.max_outstanding > 0) {
    // Pure closed loop: fill the window.
    for (size_t i = 0; i < config_.max_outstanding; ++i) GenerateOne();
  }
  PollTick();
  RetryTick();
}

void DriverClient::GenerateTick() {
  if (Now() >= config_.load_end) return;
  GenerateOne();
  sim()->After(1.0 / config_.request_rate, [this] { GenerateTick(); });
}

void DriverClient::GenerateOne() {
  chain::Transaction tx = workload_->NextTransaction(client_index_, rng_);
  tx.id = MakeTxId(client_index_, next_seq_++);
  tx.sender = "client" + std::to_string(client_index_);
  TrySubmit(std::move(tx));
}

void DriverClient::TrySubmit(chain::Transaction tx) {
  BB_PROF_SCOPE("driver.submit");
  if (config_.max_outstanding != 0 &&
      outstanding_.size() >= config_.max_outstanding) {
    backlog_.push_back(std::move(tx));
    return;
  }
  tx.submit_time = Now();
  size_t wire_bytes = tx.SizeBytes();
  auto [it, inserted] = outstanding_.emplace(tx.id, std::move(tx));
  (void)inserted;
  stats_->RecordSubmit(Now());
  if (auto* tr = sim()->tracer()) {
    // A resubmission after rejection restarts the lifecycle record, so
    // traced spans telescope to the latency measured from this submit.
    tr->TxMilestone(it->second.id, obs::Tracer::kSubmit, Now());
  }

  // Key-partition routing (sharded platforms only): a transaction whose
  // keys all hash to one shard goes straight to that shard; one that
  // straddles shards goes to the 2PC coordinator.
  if (platform_ != nullptr && platform_->num_shards() > 1) {
    std::vector<uint32_t> shards;
    for (const std::string& key : workload_->TouchedKeys(it->second)) {
      uint32_t s = platform_->ShardOfKey(key);
      bool seen = false;
      for (uint32_t have : shards) seen = seen || have == s;
      if (!seen) shards.push_back(s);
    }
    if (shards.size() > 1) {
      cross_ids_.insert(it->second.id);
      stats_->RecordXsSubmit();
      Send(platform_->coordinator_id(), "xs_client_tx",
           platform::XsClientTx{it->second, std::move(shards)}, wire_bytes);
      return;
    }
    if (shards.size() == 1) {
      Send(platform_->ServerInShard(shards[0], client_index_), "client_tx",
           platform::ClientTx{it->second}, wire_bytes);
      return;
    }
  }
  Send(server_, "client_tx", platform::ClientTx{it->second}, wire_bytes);
}

void DriverClient::SubmitTransaction(const chain::Transaction& tx) {
  TrySubmit(tx);
}

void DriverClient::RequestLatestBlocks(uint64_t from_height,
                                       BlocksCallback cb) {
  uint64_t req = next_req_id_++;
  block_callbacks_[req] = std::move(cb);
  Send(server_, "rpc_getblocks", platform::RpcGetBlocks{req, from_height},
       60);
}

void DriverClient::PollTick() {
  BB_PROF_SCOPE("driver.poll");
  stats_->ObserveQueue(Now(), client_index_, outstanding_.size(),
                       backlog_.size());
  RequestLatestBlocks(last_height_, [this](const LatestBlocks& lb) {
    platform::RpcBlocks m;
    m.confirmed_height = lb.confirmed_height;
    m.blocks = lb.blocks;
    OnBlocks(m);
  });
  sim()->After(config_.poll_interval, [this] { PollTick(); });
}

void DriverClient::RetryTick() {
  while (!backlog_.empty() &&
         (config_.max_outstanding == 0 ||
          outstanding_.size() < config_.max_outstanding)) {
    chain::Transaction tx = std::move(backlog_.front());
    backlog_.pop_front();
    if (committed_.count(tx.id)) continue;
    tx.submit_time = 0;  // reset; TrySubmit stamps it
    TrySubmit(std::move(tx));
    // Submit one per retry tick when recovering from rejections, to
    // avoid hammering a full server pool.
    break;
  }
  sim()->After(config_.retry_interval, [this] { RetryTick(); });
}

void DriverClient::OnBlocks(const platform::RpcBlocks& m) {
  for (const auto& block : m.blocks) {
    for (const auto& tx : block->txs) {
      auto it = outstanding_.find(tx.id);
      if (it == outstanding_.end()) continue;
      if (!committed_.insert(tx.id).second) continue;
      stats_->RecordCommit(Now(), Now() - it->second.submit_time);
      if (auto xs = cross_ids_.find(tx.id); xs != cross_ids_.end()) {
        stats_->RecordXsCommit(Now() - it->second.submit_time);
        cross_ids_.erase(xs);
      }
      if (auto* tr = sim()->tracer()) {
        tr->TxMilestone(tx.id, obs::Tracer::kConfirm, Now());
        if (const auto* ms = tr->FindTx(tx.id)) {
          double legs[StatsCollector::kNumPhases];
          bool complete = true;
          for (size_t leg = 0; leg < StatsCollector::kNumPhases; ++leg) {
            if ((*ms)[leg] < 0 || (*ms)[leg + 1] < 0) {
              complete = false;
              break;
            }
            legs[leg] = (*ms)[leg + 1] - (*ms)[leg];
          }
          if (complete) stats_->RecordCommitPhases(legs);
        }
      }
      outstanding_.erase(it);
    }
  }
  if (m.confirmed_height > last_height_) last_height_ = m.confirmed_height;

  // Closed-loop refill.
  if (config_.request_rate == 0 && config_.max_outstanding > 0 &&
      Now() < config_.load_end) {
    while (outstanding_.size() + backlog_.size() < config_.max_outstanding) {
      GenerateOne();
    }
  }
}

double DriverClient::HandleMessage(const sim::Message& msg) {
  if (msg.type == "rpc_blocks") {
    const auto& m = std::any_cast<const platform::RpcBlocks&>(msg.payload);
    auto cb = block_callbacks_.find(m.req_id);
    if (cb != block_callbacks_.end()) {
      LatestBlocks lb{m.confirmed_height, m.blocks};
      auto fn = std::move(cb->second);
      block_callbacks_.erase(cb);
      fn(lb);
    }
    return 0;
  }
  if (msg.type == "client_tx_reject") {
    const auto& m =
        std::any_cast<const platform::ClientTxReject&>(msg.payload);
    auto it = outstanding_.find(m.tx_id);
    if (it != outstanding_.end()) {
      stats_->RecordReject(Now());
      // A cross-shard id rejected here is a 2PC abort (the coordinator
      // rejects on prepare timeout); the retry path resubmits it as a
      // fresh cross-shard attempt.
      if (cross_ids_.erase(m.tx_id) > 0) stats_->RecordXsAbort();
      backlog_.push_back(std::move(it->second));
      outstanding_.erase(it);
    }
    return 0;
  }
  return 0;
}

}  // namespace bb::core
