// The two integration points of the BLOCKBENCH framework (Fig 4):
//
//   * WorkloadConnector  (the paper's IWorkloadConnector): wraps a
//     workload's operations into blockchain transactions via
//     getNextTransaction(), plus contract deployment/preloading.
//   * BlockchainConnector (the paper's IBlockchainConnector): operations
//     to deploy an application, invoke it by sending a transaction, and
//     query blockchain state, including the getLatestBlock(h) poll the
//     asynchronous Driver is built on.
//
// The in-simulator backend (DriverClient over a platform::Platform) is
// the bundled implementation of BlockchainConnector; a real deployment
// would implement the same interface over JSON-RPC/gRPC.

#ifndef BLOCKBENCH_CORE_CONNECTOR_H_
#define BLOCKBENCH_CORE_CONNECTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/transaction.h"
#include "platform/platform.h"
#include "util/random.h"

namespace bb::core {

class WorkloadConnector {
 public:
  virtual ~WorkloadConnector() = default;

  /// Deploys the workload's smart contract(s) and preloads state on the
  /// platform. Called once, before the run starts.
  virtual Status Setup(platform::Platform* platform) = 0;

  /// Returns the next transaction for `client_id`. The framework fills
  /// in id and submit_time. Must be deterministic given the Rng.
  virtual chain::Transaction NextTransaction(uint32_t client_id,
                                             Rng& rng) = 0;

  /// State keys `tx` reads or writes, for key-partition routing on
  /// sharded platforms. The default (empty) routes every transaction to
  /// the client's home server, which is always correct unsharded.
  virtual std::vector<std::string> TouchedKeys(
      const chain::Transaction& tx) const {
    (void)tx;
    return {};
  }

  virtual std::string name() const = 0;
};

/// Asynchronous blockchain access. Submissions return immediately; commit
/// discovery happens by polling GetLatestBlocks and inspecting block
/// contents, exactly as the paper's Driver does.
class BlockchainConnector {
 public:
  virtual ~BlockchainConnector() = default;

  struct LatestBlocks {
    uint64_t confirmed_height;
    std::vector<platform::BlockPtr> blocks;
  };
  using BlocksCallback = std::function<void(const LatestBlocks&)>;
  using RejectCallback = std::function<void(uint64_t tx_id)>;

  /// Fire-and-forget submission; rejections surface via the callback
  /// registered with set_on_reject.
  virtual void SubmitTransaction(const chain::Transaction& tx) = 0;
  /// getLatestBlock(h): requests confirmed blocks with height > h.
  virtual void RequestLatestBlocks(uint64_t from_height,
                                   BlocksCallback cb) = 0;
  virtual void set_on_reject(RejectCallback cb) = 0;
};

}  // namespace bb::core

#endif  // BLOCKBENCH_CORE_CONNECTOR_H_
