// DriverClient: one benchmark client — a simulated process that generates
// workload transactions at a configured rate, submits them to its server,
// and discovers commits by polling getLatestBlock(h), maintaining the
// outstanding-transaction queue described in Section 3.2.

#ifndef BLOCKBENCH_CORE_CLIENT_H_
#define BLOCKBENCH_CORE_CLIENT_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "core/connector.h"
#include "core/stats.h"
#include "platform/rpc.h"
#include "sim/node.h"

namespace bb::core {

struct ClientConfig {
  /// Open-loop generation rate in tx/s (0 disables open-loop generation).
  double request_rate = 8;
  /// Max submitted-but-unconfirmed transactions. 0 = unbounded.
  /// With request_rate == 0 this makes the client fully closed-loop
  /// ("blocking transactions", the paper's latency mode).
  size_t max_outstanding = 0;
  /// getLatestBlock poll period.
  double poll_interval = 0.5;
  /// Back-off before resubmitting a rejected transaction.
  double retry_interval = 0.25;
  /// Stop generating at this virtual time (polling continues).
  double load_end = 300;
};

class DriverClient : public sim::Node, public BlockchainConnector {
 public:
  /// `platform` (may be null in connector-level tests) supplies the
  /// sharding topology: key-partition routing sends single-shard
  /// transactions to the owning shard and multi-shard ones to the 2PC
  /// coordinator. Commit discovery always polls `server` (the home
  /// shard), which the workload guarantees participates.
  DriverClient(sim::NodeId id, sim::Network* network, uint32_t client_index,
               sim::NodeId server, WorkloadConnector* workload,
               StatsCollector* stats, ClientConfig config, uint64_t seed,
               platform::Platform* platform = nullptr);

  void Start() override;
  double HandleMessage(const sim::Message& msg) override;

  // BlockchainConnector --------------------------------------------------
  void SubmitTransaction(const chain::Transaction& tx) override;
  void RequestLatestBlocks(uint64_t from_height, BlocksCallback cb) override;
  void set_on_reject(RejectCallback cb) override { on_reject_ = std::move(cb); }

  uint32_t client_index() const { return client_index_; }
  size_t outstanding() const { return outstanding_.size(); }
  size_t backlog() const { return backlog_.size(); }
  uint64_t generated() const { return next_seq_; }

 private:
  void GenerateTick();
  void PollTick();
  void RetryTick();
  void GenerateOne();
  void TrySubmit(chain::Transaction tx);
  void OnBlocks(const platform::RpcBlocks& m);

  uint32_t client_index_;
  sim::NodeId server_;
  platform::Platform* platform_ = nullptr;
  WorkloadConnector* workload_;
  StatsCollector* stats_;
  ClientConfig config_;
  Rng rng_;

  uint64_t next_seq_ = 0;
  uint64_t next_req_id_ = 1;
  uint64_t last_height_ = 0;
  // Submitted, unconfirmed, keyed by tx id. The paper's "queue". The full
  // transaction is kept so a server rejection can re-enter the backlog.
  std::unordered_map<uint64_t, chain::Transaction> outstanding_;
  // Generated or rejected, waiting for submission capacity.
  std::deque<chain::Transaction> backlog_;
  std::unordered_set<uint64_t> committed_;
  /// Outstanding ids routed through the cross-shard coordinator.
  std::unordered_set<uint64_t> cross_ids_;
  std::unordered_map<uint64_t, BlocksCallback> block_callbacks_;
  RejectCallback on_reject_;
};

}  // namespace bb::core

#endif  // BLOCKBENCH_CORE_CLIENT_H_
