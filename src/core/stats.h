// StatsCollector: the framework's measurement sink. Records submissions,
// commits (with latency), client queue lengths and block arrivals, and
// produces the metrics of Section 3.3: throughput, latency, plus the
// per-second series behind the time-line figures.

#ifndef BLOCKBENCH_CORE_STATS_H_
#define BLOCKBENCH_CORE_STATS_H_

#include <array>
#include <cstdint>

#include "util/status.h"
#include <string>
#include <vector>

#include "util/histogram.h"

namespace bb::core {

class StatsCollector {
 public:
  explicit StatsCollector(size_t num_clients = 0);

  void SetNumClients(size_t n);

  /// Lifecycle legs in the per-phase latency breakdown; mirrors
  /// obs::Tracer::kNumTxSpans (admission, pool wait, consensus,
  /// confirmation).
  static constexpr size_t kNumPhases = 4;

  void RecordSubmit(double t);
  void RecordReject(double t);
  void RecordCommit(double t, double latency_sec);
  /// Per-leg durations (seconds) of one traced committed transaction, in
  /// lifecycle order. Only called when tracing is on and all milestones
  /// were observed; Summary() then appends a breakdown table.
  void RecordCommitPhases(const double (&legs)[kNumPhases]);
  /// Instantaneous queue snapshot for one client (called at poll points).
  void ObserveQueue(double t, uint32_t client, size_t outstanding,
                    size_t backlog);

  /// Cross-shard transactions are additionally tracked on their own
  /// counters and latency histogram (they also count in the totals):
  /// the 2PC prepare round makes their latency profile categorically
  /// different from single-shard commits.
  void RecordXsSubmit() { ++xs_submitted_; }
  void RecordXsCommit(double latency_sec) {
    ++xs_committed_;
    xs_latency_.Add(latency_sec);
  }
  void RecordXsAbort() { ++xs_aborted_; }

  // --- Aggregates ---------------------------------------------------------
  uint64_t total_submitted() const { return total_submitted_; }
  uint64_t total_committed() const { return total_committed_; }
  uint64_t total_rejected() const { return total_rejected_; }
  uint64_t xs_submitted() const { return xs_submitted_; }
  uint64_t xs_committed() const { return xs_committed_; }
  uint64_t xs_aborted() const { return xs_aborted_; }
  const Histogram& xs_latencies() const { return xs_latency_; }

  /// Committed tx/s within [from, to).
  double Throughput(double from, double to) const;
  /// Committed transactions with commit time < t (Fig 9's cumulative
  /// committed-transactions timeline is the per-second series).
  double CommittedInSecond(size_t sec) const;
  double SubmittedInSecond(size_t sec) const;

  const Histogram& latencies() const { return latency_; }
  const Histogram& phase_latency(size_t leg) const { return phase_.at(leg); }
  uint64_t traced_commits() const { return uint64_t(phase_[0].count()); }

  /// Sum of the most recent queue observations across clients at second
  /// `sec` (outstanding only, matching the paper's queue metric).
  double QueueLengthAt(size_t sec) const;
  double BacklogAt(size_t sec) const;

  std::string Summary(double from, double to) const;

  /// Writes per-second series (submitted, committed, queue, backlog) as
  /// CSV for external plotting. Returns Unavailable on I/O failure.
  Status WriteCsv(const std::string& path, double duration_sec) const;

 private:
  TimeSeries submitted_;
  TimeSeries committed_;
  Histogram latency_;
  std::array<Histogram, kNumPhases> phase_;
  std::vector<TimeSeries> queue_per_client_;
  std::vector<TimeSeries> backlog_per_client_;
  uint64_t total_submitted_ = 0;
  uint64_t total_committed_ = 0;
  uint64_t total_rejected_ = 0;
  Histogram xs_latency_;
  uint64_t xs_submitted_ = 0;
  uint64_t xs_committed_ = 0;
  uint64_t xs_aborted_ = 0;
};

}  // namespace bb::core

#endif  // BLOCKBENCH_CORE_STATS_H_
