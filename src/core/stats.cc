#include "core/stats.h"

#include <cstdio>
#include <fstream>

namespace bb::core {

StatsCollector::StatsCollector(size_t num_clients)
    : submitted_(1.0), committed_(1.0) {
  SetNumClients(num_clients);
}

void StatsCollector::SetNumClients(size_t n) {
  queue_per_client_.assign(n, TimeSeries(1.0));
  backlog_per_client_.assign(n, TimeSeries(1.0));
}

void StatsCollector::RecordSubmit(double t) {
  submitted_.Add(t, 1);
  ++total_submitted_;
}

void StatsCollector::RecordReject(double t) {
  (void)t;
  ++total_rejected_;
}

void StatsCollector::RecordCommit(double t, double latency_sec) {
  committed_.Add(t, 1);
  latency_.Add(latency_sec);
  ++total_committed_;
}

void StatsCollector::ObserveQueue(double t, uint32_t client,
                                  size_t outstanding, size_t backlog) {
  if (client < queue_per_client_.size()) {
    queue_per_client_[client].Observe(t, double(outstanding));
    backlog_per_client_[client].Observe(t, double(backlog));
  }
}

double StatsCollector::Throughput(double from, double to) const {
  if (to <= from) return 0;
  double sum = 0;
  for (size_t s = size_t(from); s < size_t(to); ++s) {
    sum += committed_.SumAt(s);
  }
  return sum / (to - from);
}

double StatsCollector::CommittedInSecond(size_t sec) const {
  return committed_.SumAt(sec);
}

double StatsCollector::SubmittedInSecond(size_t sec) const {
  return submitted_.SumAt(sec);
}

double StatsCollector::QueueLengthAt(size_t sec) const {
  double sum = 0;
  for (const auto& q : queue_per_client_) sum += q.ValueAt(sec);
  return sum;
}

double StatsCollector::BacklogAt(size_t sec) const {
  double sum = 0;
  for (const auto& q : backlog_per_client_) sum += q.ValueAt(sec);
  return sum;
}

Status StatsCollector::WriteCsv(const std::string& path,
                                double duration_sec) const {
  std::ofstream out(path);
  if (!out) return Status::Unavailable("cannot open " + path);
  out << "second,submitted,committed,queue,backlog\n";
  for (size_t s = 0; s < size_t(duration_sec); ++s) {
    out << s << ',' << SubmittedInSecond(s) << ',' << CommittedInSecond(s)
        << ',' << QueueLengthAt(s) << ',' << BacklogAt(s) << "\n";
  }
  return out.good() ? Status::Ok() : Status::Unavailable("write failed");
}

std::string StatsCollector::Summary(double from, double to) const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "throughput=%.1f tx/s latency{mean=%.2fs p50=%.2fs p95=%.2fs} "
                "submitted=%llu committed=%llu rejected=%llu",
                Throughput(from, to), latency_.Mean(), latency_.Percentile(50),
                latency_.Percentile(95),
                (unsigned long long)total_submitted_,
                (unsigned long long)total_committed_,
                (unsigned long long)total_rejected_);
  return buf;
}

}  // namespace bb::core
