#include "core/stats.h"

#include <cstdio>

#include "obs/trace.h"
#include "util/bufwriter.h"

namespace bb::core {

static_assert(StatsCollector::kNumPhases == obs::Tracer::kNumTxSpans,
              "phase breakdown legs must match the tracer's span legs");

StatsCollector::StatsCollector(size_t num_clients)
    : submitted_(1.0), committed_(1.0) {
  SetNumClients(num_clients);
}

void StatsCollector::SetNumClients(size_t n) {
  queue_per_client_.assign(n, TimeSeries(1.0));
  backlog_per_client_.assign(n, TimeSeries(1.0));
}

void StatsCollector::RecordSubmit(double t) {
  submitted_.Add(t, 1);
  ++total_submitted_;
}

void StatsCollector::RecordReject(double t) {
  (void)t;
  ++total_rejected_;
}

void StatsCollector::RecordCommit(double t, double latency_sec) {
  committed_.Add(t, 1);
  latency_.Add(latency_sec);
  ++total_committed_;
}

void StatsCollector::RecordCommitPhases(const double (&legs)[kNumPhases]) {
  for (size_t i = 0; i < kNumPhases; ++i) phase_[i].Add(legs[i]);
}

void StatsCollector::ObserveQueue(double t, uint32_t client,
                                  size_t outstanding, size_t backlog) {
  if (client < queue_per_client_.size()) {
    queue_per_client_[client].Observe(t, double(outstanding));
    backlog_per_client_[client].Observe(t, double(backlog));
  }
}

double StatsCollector::Throughput(double from, double to) const {
  if (to <= from) return 0;
  double sum = 0;
  for (size_t s = size_t(from); s < size_t(to); ++s) {
    sum += committed_.SumAt(s);
  }
  return sum / (to - from);
}

double StatsCollector::CommittedInSecond(size_t sec) const {
  return committed_.SumAt(sec);
}

double StatsCollector::SubmittedInSecond(size_t sec) const {
  return submitted_.SumAt(sec);
}

double StatsCollector::QueueLengthAt(size_t sec) const {
  double sum = 0;
  for (const auto& q : queue_per_client_) sum += q.ValueAt(sec);
  return sum;
}

double StatsCollector::BacklogAt(size_t sec) const {
  double sum = 0;
  for (const auto& q : backlog_per_client_) sum += q.ValueAt(sec);
  return sum;
}

Status StatsCollector::WriteCsv(const std::string& path,
                                double duration_sec) const {
  util::BufferedWriter out;
  BB_RETURN_IF_ERROR(out.Open(path));
  out.Append("second,submitted,committed,queue,backlog\n");
  for (size_t s = 0; s < size_t(duration_sec); ++s) {
    out.Appendf("%zu,%g,%g,%g,%g\n", s, SubmittedInSecond(s),
                CommittedInSecond(s), QueueLengthAt(s), BacklogAt(s));
  }
  return out.Close();
}

std::string StatsCollector::Summary(double from, double to) const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "throughput=%.1f tx/s latency{mean=%.2fs p50=%.2fs p95=%.2fs} "
                "submitted=%llu committed=%llu rejected=%llu",
                Throughput(from, to), latency_.Mean(), latency_.Percentile(50),
                latency_.Percentile(95),
                (unsigned long long)total_submitted_,
                (unsigned long long)total_committed_,
                (unsigned long long)total_rejected_);
  std::string out = buf;
  if (phase_[0].count() > 0) {
    double total_mean = 0;
    for (const auto& h : phase_) total_mean += h.Mean();
    std::snprintf(buf, sizeof(buf),
                  "\ncommit latency breakdown (%llu traced txs):\n",
                  (unsigned long long)phase_[0].count());
    out += buf;
    for (size_t leg = 0; leg < kNumPhases; ++leg) {
      const Histogram& h = phase_[leg];
      std::snprintf(buf, sizeof(buf),
                    "  %-15s mean=%8.4fs p95=%8.4fs share=%5.1f%%\n",
                    obs::Tracer::TxSpanName(leg), h.Mean(), h.Percentile(95),
                    total_mean > 0 ? 100.0 * h.Mean() / total_mean : 0.0);
      out += buf;
    }
  }
  return out;
}

}  // namespace bb::core
