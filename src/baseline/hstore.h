// HStoreLite: a sharded, in-memory, crash-failure-model database in the
// style of H-Store — the incumbent the paper compares blockchains against
// (Fig 14 / Appendix B).
//
// Data is hash-partitioned across single-threaded sites. A transaction
// whose keys live in one partition executes directly at that site; a
// multi-partition transaction runs two-phase commit across the touched
// sites. No Byzantine tolerance, no signatures, no replication — exactly
// the design contrast the paper draws.

#ifndef BLOCKBENCH_BASELINE_HSTORE_H_
#define BLOCKBENCH_BASELINE_HSTORE_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/stats.h"
#include "sim/node.h"
#include "util/random.h"

namespace bb::baseline {

struct HStoreOptions {
  size_t num_sites = 8;
  /// Per-transaction fixed execution cost at a site.
  double txn_fixed_cpu = 55e-6;
  /// Per key-value operation cost.
  double op_cpu = 2e-6;
  /// Per 2PC message handling cost (undo logging, blocking, fsync
  /// amortization — what makes Smallbank 6.6x slower than YCSB).
  double twopc_msg_cpu = 1.8e-4;
  sim::NetworkConfig net{/*base_latency=*/0.0002, /*jitter=*/0.0001};
};

struct KvOp {
  bool is_write;
  std::string key;
  std::string value;  // writes only
};

struct HsTransaction {
  uint64_t id = 0;
  std::vector<KvOp> ops;
  double submit_time = 0;
};

class HStoreSite;

/// The cluster: sites 0..num_sites-1 on a private network.
class HStoreCluster {
 public:
  HStoreCluster(sim::Simulation* sim, HStoreOptions options);
  ~HStoreCluster();

  sim::Network& network() { return *network_; }
  size_t num_sites() const;
  HStoreSite& site(size_t i);

  /// Partition owning `key`.
  size_t PartitionOf(const std::string& key) const;
  /// Coordinator site for a transaction (owner of its first key).
  size_t CoordinatorOf(const HsTransaction& txn) const;

  uint64_t single_partition_txns() const;
  uint64_t multi_partition_txns() const;

 private:
  sim::Simulation* sim_;
  HStoreOptions options_;
  std::unique_ptr<sim::Network> network_;
  std::vector<std::unique_ptr<HStoreSite>> sites_;
};

/// One single-threaded execution site.
class HStoreSite : public sim::Node {
 public:
  HStoreSite(sim::NodeId id, sim::Network* network, HStoreCluster* cluster,
             HStoreOptions options);

  double HandleMessage(const sim::Message& msg) override;

  /// Direct (setup-time) data loading.
  void Load(const std::string& key, const std::string& value);
  size_t num_keys() const { return data_.size(); }
  /// Current value of `key` at this site (nullopt when absent) — lets
  /// tests check that an aborted transaction left no trace.
  std::optional<std::string> Get(const std::string& key) const;

  /// Test hook: when set, this site votes abort on every incoming
  /// prepare instead of executing it — the single-site failure that 2PC
  /// must turn into a clean cluster-wide rollback.
  void set_vote_abort(bool vote_abort) { vote_abort_ = vote_abort; }

  uint64_t aborted_txns() const { return aborted_txns_; }

 private:
  /// Before-image of one write, captured while a transaction is only
  /// prepared; replayed in reverse on abort.
  struct UndoEntry {
    std::string key;
    bool existed = false;
    std::string old_value;
  };

  struct Pending2pc {
    sim::NodeId client;
    uint64_t txn_id;
    std::set<sim::NodeId> waiting_prepare;
    std::set<sim::NodeId> waiting_ack;
    std::map<sim::NodeId, std::vector<KvOp>> per_site_ops;
    std::vector<UndoEntry> local_undo;
  };

  /// Applies `ops`; when `undo` is non-null, captures before-images so
  /// the effects can be rolled back.
  double ExecuteOps(const std::vector<KvOp>& ops,
                    std::vector<UndoEntry>* undo = nullptr);
  void Rollback(std::vector<UndoEntry>& undo);
  double HandleClientTxn(const sim::Message& msg);

  HStoreCluster* cluster_;
  HStoreOptions options_;
  std::unordered_map<std::string, std::string> data_;
  std::unordered_map<uint64_t, Pending2pc> coordinating_;
  /// Prepared-but-undecided participant state: txn -> undo log.
  std::unordered_map<uint64_t, std::vector<UndoEntry>> prepared_;
  bool vote_abort_ = false;
  uint64_t aborted_txns_ = 0;
};

/// Open/closed-loop benchmark client feeding HsTransactions to the
/// cluster and recording commits into a StatsCollector.
class HStoreClient : public sim::Node {
 public:
  using TxnFactory = std::function<HsTransaction(Rng&)>;

  HStoreClient(sim::NodeId id, HStoreCluster* cluster, uint32_t client_index,
               TxnFactory factory, core::StatsCollector* stats,
               double request_rate, double load_end, uint64_t seed);

  void Start() override;
  double HandleMessage(const sim::Message& msg) override;

 private:
  void Tick();

  HStoreCluster* cluster_;
  uint32_t client_index_;
  TxnFactory factory_;
  core::StatsCollector* stats_;
  double request_rate_;
  double load_end_;
  Rng rng_;
  uint64_t next_seq_ = 0;
  std::unordered_map<uint64_t, double> outstanding_;
};

}  // namespace bb::baseline

#endif  // BLOCKBENCH_BASELINE_HSTORE_H_
