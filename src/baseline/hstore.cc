#include "baseline/hstore.h"

#include <cassert>
#include <functional>

namespace bb::baseline {

namespace {

struct PrepareMsg {
  uint64_t txn_id;
  std::vector<KvOp> ops;
};
struct TxnIdMsg {
  uint64_t txn_id;
};

uint64_t OpsBytes(const std::vector<KvOp>& ops) {
  uint64_t n = 32;
  for (const auto& op : ops) n += op.key.size() + op.value.size() + 8;
  return n;
}

}  // namespace

HStoreCluster::HStoreCluster(sim::Simulation* sim, HStoreOptions options)
    : sim_(sim), options_(options) {
  network_ = std::make_unique<sim::Network>(sim_, options_.net);
  for (size_t i = 0; i < options_.num_sites; ++i) {
    sites_.push_back(std::make_unique<HStoreSite>(
        sim::NodeId(i), network_.get(), this, options_));
  }
}

HStoreCluster::~HStoreCluster() = default;

size_t HStoreCluster::num_sites() const { return sites_.size(); }

HStoreSite& HStoreCluster::site(size_t i) { return *sites_.at(i); }

size_t HStoreCluster::PartitionOf(const std::string& key) const {
  return std::hash<std::string>{}(key) % sites_.size();
}

size_t HStoreCluster::CoordinatorOf(const HsTransaction& txn) const {
  assert(!txn.ops.empty());
  return PartitionOf(txn.ops.front().key);
}

uint64_t HStoreCluster::single_partition_txns() const {
  // Tracked by sites; aggregate on demand (stats hooks kept minimal).
  return 0;
}
uint64_t HStoreCluster::multi_partition_txns() const { return 0; }

HStoreSite::HStoreSite(sim::NodeId id, sim::Network* network,
                       HStoreCluster* cluster, HStoreOptions options)
    : sim::Node(id, network), cluster_(cluster), options_(options) {}

void HStoreSite::Load(const std::string& key, const std::string& value) {
  data_[key] = value;
}

std::optional<std::string> HStoreSite::Get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

double HStoreSite::ExecuteOps(const std::vector<KvOp>& ops,
                              std::vector<UndoEntry>* undo) {
  for (const auto& op : ops) {
    if (op.is_write) {
      if (undo != nullptr) {
        UndoEntry u;
        u.key = op.key;
        auto it = data_.find(op.key);
        u.existed = it != data_.end();
        if (u.existed) u.old_value = it->second;
        undo->push_back(std::move(u));
      }
      data_[op.key] = op.value;
    } else {
      auto it = data_.find(op.key);
      (void)it;
    }
  }
  return options_.op_cpu * double(ops.size());
}

void HStoreSite::Rollback(std::vector<UndoEntry>& undo) {
  // Reverse order, so a transaction writing one key twice restores the
  // oldest before-image last.
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    if (it->existed) {
      data_[it->key] = it->old_value;
    } else {
      data_.erase(it->key);
    }
  }
  undo.clear();
}

double HStoreSite::HandleClientTxn(const sim::Message& msg) {
  const auto& txn = std::any_cast<const HsTransaction&>(msg.payload);
  double cpu = options_.txn_fixed_cpu;

  // Split ops by owning partition.
  std::map<sim::NodeId, std::vector<KvOp>> per_site;
  for (const auto& op : txn.ops) {
    per_site[sim::NodeId(cluster_->PartitionOf(op.key))].push_back(op);
  }

  if (per_site.size() == 1 && per_site.begin()->first == id()) {
    // Single-partition fast path: no coordination at all.
    cpu += ExecuteOps(txn.ops);
    Send(msg.from, "hs_done", TxnIdMsg{txn.id}, 40);
    return cpu;
  }

  // Multi-partition: two-phase commit. The coordinator's own writes are
  // only prepared (undo-logged) until every participant votes yes.
  Pending2pc p;
  p.client = msg.from;
  p.txn_id = txn.id;
  for (auto& [site, ops] : per_site) {
    if (site == id()) {
      cpu += ExecuteOps(ops, &p.local_undo);
    } else {
      p.waiting_prepare.insert(site);
      p.waiting_ack.insert(site);
      p.per_site_ops[site] = ops;
      Send(site, "hs_prepare", PrepareMsg{txn.id, ops}, OpsBytes(ops));
    }
  }
  if (p.waiting_prepare.empty()) {
    Send(msg.from, "hs_done", TxnIdMsg{txn.id}, 40);
    return cpu;
  }
  coordinating_.emplace(txn.id, std::move(p));
  return cpu;
}

double HStoreSite::HandleMessage(const sim::Message& msg) {
  if (msg.type == "hs_txn") return HandleClientTxn(msg);

  if (msg.type == "hs_prepare") {
    const auto& m = std::any_cast<const PrepareMsg&>(msg.payload);
    if (vote_abort_) {
      Send(msg.from, "hs_vote_abort", TxnIdMsg{m.txn_id}, 40);
      return options_.twopc_msg_cpu;
    }
    std::vector<UndoEntry> undo;
    double cpu = options_.twopc_msg_cpu + ExecuteOps(m.ops, &undo);
    prepared_[m.txn_id] = std::move(undo);
    Send(msg.from, "hs_prepared", TxnIdMsg{m.txn_id}, 40);
    return cpu;
  }

  if (msg.type == "hs_prepared") {
    const auto& m = std::any_cast<const TxnIdMsg&>(msg.payload);
    auto it = coordinating_.find(m.txn_id);
    if (it == coordinating_.end()) return options_.twopc_msg_cpu;
    it->second.waiting_prepare.erase(msg.from);
    if (it->second.waiting_prepare.empty()) {
      for (sim::NodeId site : it->second.waiting_ack) {
        Send(site, "hs_commit", TxnIdMsg{m.txn_id}, 40);
      }
    }
    return options_.twopc_msg_cpu;
  }

  if (msg.type == "hs_vote_abort") {
    // One participant said no: roll back everywhere and tell the client.
    const auto& m = std::any_cast<const TxnIdMsg&>(msg.payload);
    auto it = coordinating_.find(m.txn_id);
    if (it == coordinating_.end()) return options_.twopc_msg_cpu;
    Pending2pc& p = it->second;
    for (const auto& [site, ops] : p.per_site_ops) {
      if (site != msg.from) Send(site, "hs_abort", TxnIdMsg{m.txn_id}, 40);
    }
    Rollback(p.local_undo);
    ++aborted_txns_;
    Send(p.client, "hs_aborted", TxnIdMsg{m.txn_id}, 40);
    coordinating_.erase(it);
    return options_.twopc_msg_cpu;
  }

  if (msg.type == "hs_commit") {
    const auto& m = std::any_cast<const TxnIdMsg&>(msg.payload);
    prepared_.erase(m.txn_id);  // decision is commit: drop the undo log
    Send(msg.from, "hs_ack", TxnIdMsg{m.txn_id}, 40);
    return options_.twopc_msg_cpu;
  }

  if (msg.type == "hs_abort") {
    const auto& m = std::any_cast<const TxnIdMsg&>(msg.payload);
    auto it = prepared_.find(m.txn_id);
    if (it != prepared_.end()) {
      Rollback(it->second);
      prepared_.erase(it);
    }
    return options_.twopc_msg_cpu;
  }

  if (msg.type == "hs_ack") {
    const auto& m = std::any_cast<const TxnIdMsg&>(msg.payload);
    auto it = coordinating_.find(m.txn_id);
    if (it == coordinating_.end()) return options_.twopc_msg_cpu;
    it->second.waiting_ack.erase(msg.from);
    if (it->second.waiting_ack.empty()) {
      Send(it->second.client, "hs_done", TxnIdMsg{m.txn_id}, 40);
      coordinating_.erase(it);
    }
    return options_.twopc_msg_cpu;
  }

  return 0;
}

HStoreClient::HStoreClient(sim::NodeId id, HStoreCluster* cluster,
                           uint32_t client_index, TxnFactory factory,
                           core::StatsCollector* stats, double request_rate,
                           double load_end, uint64_t seed)
    : sim::Node(id, &cluster->network()),
      cluster_(cluster),
      client_index_(client_index),
      factory_(std::move(factory)),
      stats_(stats),
      request_rate_(request_rate),
      load_end_(load_end),
      rng_(seed) {}

void HStoreClient::Start() {
  sim()->After(rng_.NextDouble() / request_rate_, [this] { Tick(); });
}

void HStoreClient::Tick() {
  if (Now() >= load_end_) return;
  HsTransaction txn = factory_(rng_);
  txn.id = (uint64_t(client_index_) + 1) << 40 | next_seq_++;
  txn.submit_time = Now();
  outstanding_.emplace(txn.id, txn.submit_time);
  stats_->RecordSubmit(Now());
  size_t coord = cluster_->CoordinatorOf(txn);
  Send(sim::NodeId(coord), "hs_txn", std::move(txn), 200);
  sim()->After(1.0 / request_rate_, [this] { Tick(); });
}

double HStoreClient::HandleMessage(const sim::Message& msg) {
  if (msg.type == "hs_done") {
    const auto& m = std::any_cast<const TxnIdMsg&>(msg.payload);
    auto it = outstanding_.find(m.txn_id);
    if (it != outstanding_.end()) {
      stats_->RecordCommit(Now(), Now() - it->second);
      outstanding_.erase(it);
    }
  }
  if (msg.type == "hs_aborted") {
    const auto& m = std::any_cast<const TxnIdMsg&>(msg.payload);
    if (outstanding_.erase(m.txn_id) > 0) stats_->RecordReject(Now());
  }
  return 0;
}

}  // namespace bb::baseline
