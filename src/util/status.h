// Status and Result<T>: the library-wide error-handling primitives.
//
// blockbench-cpp does not throw exceptions across library boundaries.
// Functions that can fail return Status (or Result<T> when they also
// produce a value), in the style of LevelDB/RocksDB.

#ifndef BLOCKBENCH_UTIL_STATUS_H_
#define BLOCKBENCH_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace bb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kCorruption,
  kOutOfGas,
  kOutOfMemory,
  kReverted,
  kTimeout,
  kUnavailable,
  kAborted,
  kInternal,
};

/// Human-readable name for a StatusCode ("Ok", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// A Status encapsulates success or an error code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Corruption(std::string m = "") {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status OutOfGas(std::string m = "") {
    return Status(StatusCode::kOutOfGas, std::move(m));
  }
  static Status OutOfMemory(std::string m = "") {
    return Status(StatusCode::kOutOfMemory, std::move(m));
  }
  static Status Reverted(std::string m = "") {
    return Status(StatusCode::kReverted, std::move(m));
  }
  static Status Timeout(std::string m = "") {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Unavailable(std::string m = "") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Aborted(std::string m = "") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Internal(std::string m = "") {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfGas() const { return code_ == StatusCode::kOutOfGas; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsReverted() const { return code_ == StatusCode::kReverted; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Result<T> is a Status plus a value on success.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                  // NOLINT
    assert(!status_.ok() && "ok Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T ValueOr(T fallback) const { return ok() ? *value_ : std::move(fallback); }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace bb

/// Propagate a non-ok Status from the current function.
#define BB_RETURN_IF_ERROR(expr)           \
  do {                                     \
    ::bb::Status _st = (expr);             \
    if (!_st.ok()) return _st;             \
  } while (0)

#endif  // BLOCKBENCH_UTIL_STATUS_H_
