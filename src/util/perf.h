// Process-wide performance-mode switches.
//
// The raw-speed campaign layers wall-clock optimizations (hardware SHA,
// batched digests, memoized block/tx hashes) on top of code whose
// *simulated* behaviour is pinned by golden digests. None of the
// optimizations may change virtual time, so they can be toggled off at
// runtime to measure their effect inside one binary: bench_raw_speed
// runs the same sweep point in "legacy" and "optimized" variants and
// gates on the events/sec ratio (machine-independent, unlike comparing
// against a committed snapshot from different hardware).
//
// The flags are relaxed atomics read once per hot-path call; flipping
// them mid-simulation is allowed (results are unaffected by design —
// tests pin that scalar and accelerated digests agree byte-for-byte).

#ifndef BLOCKBENCH_UTIL_PERF_H_
#define BLOCKBENCH_UTIL_PERF_H_

#include <atomic>

namespace bb::perf {

namespace internal {
inline std::atomic<bool> g_legacy_mode{false};
}  // namespace internal

/// True = run the seed-equivalent slow paths: scalar SHA-256 rounds,
/// per-message digest loops instead of wide batches, and no hash/size
/// memoization on Block/Transaction. Zero-copy plumbing and data-layout
/// changes cannot be reverted at runtime, so the legacy lane is a
/// conservative (at least seed-speed) baseline.
inline bool LegacyMode() {
  return internal::g_legacy_mode.load(std::memory_order_relaxed);
}

inline void SetLegacyMode(bool on) {
  internal::g_legacy_mode.store(on, std::memory_order_relaxed);
}

/// RAII scope for benches/tests.
class ScopedLegacyMode {
 public:
  explicit ScopedLegacyMode(bool on = true) : prev_(LegacyMode()) {
    SetLegacyMode(on);
  }
  ~ScopedLegacyMode() { SetLegacyMode(prev_); }
  ScopedLegacyMode(const ScopedLegacyMode&) = delete;
  ScopedLegacyMode& operator=(const ScopedLegacyMode&) = delete;

 private:
  bool prev_;
};

}  // namespace bb::perf

#endif  // BLOCKBENCH_UTIL_PERF_H_
