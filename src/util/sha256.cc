#include "util/sha256.h"

#include <atomic>
#include <cstring>

#include "util/hex.h"
#include "util/perf.h"

#if defined(__x86_64__) || defined(__i386__)
#define BB_SHA256_X86 1
#include <immintrin.h>
#endif

namespace bb {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

void ProcessBlocksScalar(uint32_t state[8], const uint8_t* block,
                         size_t blocks) {
  for (; blocks > 0; --blocks, block += 64) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (uint32_t(block[i * 4]) << 24) |
             (uint32_t(block[i * 4 + 1]) << 16) |
             (uint32_t(block[i * 4 + 2]) << 8) | uint32_t(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
      uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#if BB_SHA256_X86

// ---------------------------------------------------------------------------
// SHA-NI: the FIPS rounds on _mm_sha256rnds2_epu32. Standard two-register
// (ABEF/CDGH) layout; message schedule advanced with sha256msg1/msg2.
// ---------------------------------------------------------------------------

__attribute__((target("sha,sse4.1,ssse3"))) void ProcessBlocksShaNi(
    uint32_t state[8], const uint8_t* data, size_t blocks) {
  const __m128i kShuf =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);  // CDAB
  st1 = _mm_shuffle_epi32(st1, 0x1B);  // EFGH
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);  // ABEF
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);       // CDGH

  while (blocks > 0) {
    const __m128i abef_save = st0;
    const __m128i cdgh_save = st1;
    __m128i msg, m0, m1, m2, m3;

#define BB_KVEC(i) \
  _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[i]))
#define BB_RNDS2()                             \
  st1 = _mm_sha256rnds2_epu32(st1, st0, msg);  \
  msg = _mm_shuffle_epi32(msg, 0x0E);          \
  st0 = _mm_sha256rnds2_epu32(st0, st1, msg)
// One 4-round chunk with full schedule advance:
//   mb += alignr(ma, md, 4); mb = msg2(mb, ma); md = msg1(md, ma)
#define BB_QROUND(ma, mb, md, i)               \
  msg = _mm_add_epi32(ma, BB_KVEC(i));         \
  st1 = _mm_sha256rnds2_epu32(st1, st0, msg);  \
  tmp = _mm_alignr_epi8(ma, md, 4);            \
  mb = _mm_add_epi32(mb, tmp);                 \
  mb = _mm_sha256msg2_epu32(mb, ma);           \
  msg = _mm_shuffle_epi32(msg, 0x0E);          \
  st0 = _mm_sha256rnds2_epu32(st0, st1, msg);  \
  md = _mm_sha256msg1_epu32(md, ma)
// Same without the trailing msg1 (schedule words past w[63] are unused).
#define BB_QROUND_TAIL(ma, mb, md, i)          \
  msg = _mm_add_epi32(ma, BB_KVEC(i));         \
  st1 = _mm_sha256rnds2_epu32(st1, st0, msg);  \
  tmp = _mm_alignr_epi8(ma, md, 4);            \
  mb = _mm_add_epi32(mb, tmp);                 \
  mb = _mm_sha256msg2_epu32(mb, ma);           \
  msg = _mm_shuffle_epi32(msg, 0x0E);          \
  st0 = _mm_sha256rnds2_epu32(st0, st1, msg)

    // Rounds 0-15: load + byte-swap the message, start the schedule.
    m0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuf);
    msg = _mm_add_epi32(m0, BB_KVEC(0));
    BB_RNDS2();

    m1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuf);
    msg = _mm_add_epi32(m1, BB_KVEC(4));
    BB_RNDS2();
    m0 = _mm_sha256msg1_epu32(m0, m1);

    m2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuf);
    msg = _mm_add_epi32(m2, BB_KVEC(8));
    BB_RNDS2();
    m1 = _mm_sha256msg1_epu32(m1, m2);

    m3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuf);
    BB_QROUND(m3, m0, m2, 12);

    // Rounds 16-51: the schedule registers rotate m0→m1→m2→m3.
    BB_QROUND(m0, m1, m3, 16);
    BB_QROUND(m1, m2, m0, 20);
    BB_QROUND(m2, m3, m1, 24);
    BB_QROUND(m3, m0, m2, 28);
    BB_QROUND(m0, m1, m3, 32);
    BB_QROUND(m1, m2, m0, 36);
    BB_QROUND(m2, m3, m1, 40);
    BB_QROUND(m3, m0, m2, 44);
    BB_QROUND(m0, m1, m3, 48);

    BB_QROUND_TAIL(m1, m2, m0, 52);
    BB_QROUND_TAIL(m2, m3, m1, 56);

    msg = _mm_add_epi32(m3, BB_KVEC(60));
    BB_RNDS2();

#undef BB_QROUND_TAIL
#undef BB_QROUND
#undef BB_RNDS2
#undef BB_KVEC

    st0 = _mm_add_epi32(st0, abef_save);
    st1 = _mm_add_epi32(st1, cdgh_save);
    data += 64;
    --blocks;
  }

  tmp = _mm_shuffle_epi32(st0, 0x1B);  // FEBA
  st1 = _mm_shuffle_epi32(st1, 0xB1);  // DCHG
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);  // DCBA
  st1 = _mm_alignr_epi8(st1, tmp, 8);     // EFGH
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), st1);
}

// ---------------------------------------------------------------------------
// AVX2 8-wide multi-buffer: eight independent messages advance in lockstep,
// one 64-byte block per lane per compression call, lane l of each ymm
// holding message l's state word. Lanes that run out of blocks keep their
// final state via a blend mask.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i RorV(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

__attribute__((target("avx2"))) inline uint32_t LoadBe32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return __builtin_bswap32(v);
}

// Runs one compression round over 8 lanes; blocks[l] points at lane l's
// 64-byte block (all pointers must be valid — masking happens in the caller).
__attribute__((target("avx2"))) void Avx2Block8(__m256i st[8],
                                               const uint8_t* const blocks[8]) {
  __m256i w[16];
  for (int t = 0; t < 16; ++t) {
    w[t] = _mm256_setr_epi32(
        LoadBe32(blocks[0] + 4 * t), LoadBe32(blocks[1] + 4 * t),
        LoadBe32(blocks[2] + 4 * t), LoadBe32(blocks[3] + 4 * t),
        LoadBe32(blocks[4] + 4 * t), LoadBe32(blocks[5] + 4 * t),
        LoadBe32(blocks[6] + 4 * t), LoadBe32(blocks[7] + 4 * t));
  }

  __m256i a = st[0], b = st[1], c = st[2], d = st[3];
  __m256i e = st[4], f = st[5], g = st[6], h = st[7];

  for (int t = 0; t < 64; ++t) {
    __m256i wt;
    if (t < 16) {
      wt = w[t];
    } else {
      const __m256i wm15 = w[(t - 15) & 15];
      const __m256i wm2 = w[(t - 2) & 15];
      const __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(RorV(wm15, 7), RorV(wm15, 18)),
          _mm256_srli_epi32(wm15, 3));
      const __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(RorV(wm2, 17), RorV(wm2, 19)),
          _mm256_srli_epi32(wm2, 10));
      wt = _mm256_add_epi32(_mm256_add_epi32(w[t & 15], s0),
                            _mm256_add_epi32(w[(t - 7) & 15], s1));
      w[t & 15] = wt;
    }

    const __m256i s1 = _mm256_xor_si256(
        _mm256_xor_si256(RorV(e, 6), RorV(e, 11)), RorV(e, 25));
    const __m256i ch =
        _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
    const __m256i t1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, s1), _mm256_add_epi32(ch, wt)),
        _mm256_set1_epi32(int(kK[t])));
    const __m256i s0 = _mm256_xor_si256(
        _mm256_xor_si256(RorV(a, 2), RorV(a, 13)), RorV(a, 22));
    const __m256i maj = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
    const __m256i t2 = _mm256_add_epi32(s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(t1, t2);
  }

  st[0] = _mm256_add_epi32(st[0], a);
  st[1] = _mm256_add_epi32(st[1], b);
  st[2] = _mm256_add_epi32(st[2], c);
  st[3] = _mm256_add_epi32(st[3], d);
  st[4] = _mm256_add_epi32(st[4], e);
  st[5] = _mm256_add_epi32(st[5], f);
  st[6] = _mm256_add_epi32(st[6], g);
  st[7] = _mm256_add_epi32(st[7], h);
}

__attribute__((target("avx2"))) void Avx2Extract(const __m256i st[8],
                                                Hash256* out8[8]) {
  alignas(32) uint32_t tmp[8];
  for (int word = 0; word < 8; ++word) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), st[word]);
    for (int lane = 0; lane < 8; ++lane) {
      const uint32_t v = tmp[lane];
      out8[lane]->bytes[word * 4] = uint8_t(v >> 24);
      out8[lane]->bytes[word * 4 + 1] = uint8_t(v >> 16);
      out8[lane]->bytes[word * 4 + 2] = uint8_t(v >> 8);
      out8[lane]->bytes[word * 4 + 3] = uint8_t(v);
    }
  }
}

// Digests 8 messages of arbitrary length in lockstep. Each lane owns a
// ≤128-byte tail buffer holding its final partial block plus padding;
// shorter lanes that finish early re-run a dummy block and blend their
// previous state back in.
__attribute__((target("avx2"))) void Avx2Digest8(const Slice in[8],
                                                Hash256* out8[8]) {
  uint8_t tail[8][128];
  size_t data_blocks[8];
  size_t total_blocks[8];
  size_t max_blocks = 0;

  for (int l = 0; l < 8; ++l) {
    const size_t len = in[l].size();
    const size_t rem = len % 64;
    data_blocks[l] = len / 64;
    const size_t tail_blocks = rem >= 56 ? 2 : 1;
    total_blocks[l] = data_blocks[l] + tail_blocks;
    max_blocks = total_blocks[l] > max_blocks ? total_blocks[l] : max_blocks;

    std::memset(tail[l], 0, sizeof(tail[l]));
    if (rem > 0) {
      std::memcpy(tail[l],
                  reinterpret_cast<const uint8_t*>(in[l].data()) +
                      data_blocks[l] * 64,
                  rem);
    }
    tail[l][rem] = 0x80;
    const uint64_t bits = uint64_t(len) * 8;
    uint8_t* len_be = tail[l] + tail_blocks * 64 - 8;
    for (int i = 0; i < 8; ++i) len_be[i] = uint8_t(bits >> (56 - i * 8));
  }

  __m256i st[8];
  for (int i = 0; i < 8; ++i) st[i] = _mm256_set1_epi32(int(kIv[i]));

  for (size_t blk = 0; blk < max_blocks; ++blk) {
    const uint8_t* ptr[8];
    bool all_active = true;
    alignas(32) int32_t mask[8];
    for (int l = 0; l < 8; ++l) {
      if (blk < data_blocks[l]) {
        ptr[l] = reinterpret_cast<const uint8_t*>(in[l].data()) + blk * 64;
        mask[l] = -1;
      } else if (blk < total_blocks[l]) {
        ptr[l] = tail[l] + (blk - data_blocks[l]) * 64;
        mask[l] = -1;
      } else {
        ptr[l] = tail[l];  // dummy — result blended away below
        mask[l] = 0;
        all_active = false;
      }
    }

    if (all_active) {
      Avx2Block8(st, ptr);
    } else {
      __m256i saved[8];
      for (int i = 0; i < 8; ++i) saved[i] = st[i];
      Avx2Block8(st, ptr);
      const __m256i m =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(mask));
      for (int i = 0; i < 8; ++i)
        st[i] = _mm256_blendv_epi8(saved[i], st[i], m);
    }
  }

  Avx2Extract(st, out8);
}

// Merkle combining: every message is exactly 64 data bytes (two child
// digests) plus one constant padding block — no masks, no tail buffers.
__attribute__((target("avx2"))) void Avx2DigestPairs8(const Hash256* nodes,
                                                      Hash256* out8[8]) {
  alignas(64) static const uint8_t kPadBlock[64] = {
      0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
      0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
      0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
      0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x02, 0x00};

  __m256i st[8];
  for (int i = 0; i < 8; ++i) st[i] = _mm256_set1_epi32(int(kIv[i]));

  const uint8_t* ptr[8];
  for (int l = 0; l < 8; ++l)
    ptr[l] = reinterpret_cast<const uint8_t*>(nodes[2 * l].bytes.data());
  Avx2Block8(st, ptr);

  for (int l = 0; l < 8; ++l) ptr[l] = kPadBlock;
  Avx2Block8(st, ptr);

  Avx2Extract(st, out8);
}

#endif  // BB_SHA256_X86

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

enum class Isa : int { kScalar = 0, kShaNi = 1, kAvx2 = 2 };

bool CpuHasShaNi() {
#if BB_SHA256_X86
  static const bool has = __builtin_cpu_supports("sha") &&
                          __builtin_cpu_supports("sse4.1") &&
                          __builtin_cpu_supports("ssse3");
  return has;
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#if BB_SHA256_X86
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

std::atomic<int> g_backend{int(Sha256::Backend::kAuto)};

// The implementation for single-message digests under the current backend.
Isa SingleIsa() {
  if (perf::LegacyMode()) return Isa::kScalar;
  switch (Sha256::Backend(g_backend.load(std::memory_order_relaxed))) {
    case Sha256::Backend::kShaNi:
      return Isa::kShaNi;
    case Sha256::Backend::kScalar:
    case Sha256::Backend::kAvx2:  // AVX2 multi-buffer only helps batches
      return Isa::kScalar;
    case Sha256::Backend::kAuto:
    default:
      return CpuHasShaNi() ? Isa::kShaNi : Isa::kScalar;
  }
}

// The implementation for DigestBatch/DigestPairs under the current backend.
// SHA-NI single-stream throughput beats the 8-wide AVX2 schedule, so kAuto
// prefers it even for batches.
Isa BatchIsa() {
  if (perf::LegacyMode()) return Isa::kScalar;
  switch (Sha256::Backend(g_backend.load(std::memory_order_relaxed))) {
    case Sha256::Backend::kShaNi:
      return Isa::kShaNi;
    case Sha256::Backend::kAvx2:
      return Isa::kAvx2;
    case Sha256::Backend::kScalar:
      return Isa::kScalar;
    case Sha256::Backend::kAuto:
    default:
      return CpuHasShaNi() ? Isa::kShaNi
                           : (CpuHasAvx2() ? Isa::kAvx2 : Isa::kScalar);
  }
}

}  // namespace

std::string Hash256::ToHex() const {
  return BytesToHex(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

std::string Hash256::ShortHex() const { return ToHex().substr(0, 8); }

uint64_t Hash256::Prefix64() const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[i];
  return v;
}

bool Sha256::BackendAvailable(Backend b) {
  switch (b) {
    case Backend::kShaNi:
      return CpuHasShaNi();
    case Backend::kAvx2:
      return CpuHasAvx2();
    case Backend::kAuto:
    case Backend::kScalar:
    default:
      return true;
  }
}

bool Sha256::SetBackend(Backend b) {
  if (!BackendAvailable(b)) return false;
  g_backend.store(int(b), std::memory_order_relaxed);
  return true;
}

Sha256::Backend Sha256::backend() {
  return Backend(g_backend.load(std::memory_order_relaxed));
}

void Sha256::Reset() {
  for (int i = 0; i < 8; ++i) state_[i] = kIv[i];
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::ProcessBlocks(const uint8_t* data, size_t blocks) {
#if BB_SHA256_X86
  if (SingleIsa() == Isa::kShaNi) {
    ProcessBlocksShaNi(state_, data, blocks);
    return;
  }
#endif
  ProcessBlocksScalar(state_, data, blocks);
}

void Sha256::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bit_count_ += uint64_t(len) * 8;

  if (buffer_len_ > 0) {
    size_t need = 64 - buffer_len_;
    size_t take = len < need ? len : need;
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlocks(buffer_, 1);
      buffer_len_ = 0;
    }
  }
  if (len >= 64) {
    const size_t blocks = len / 64;
    ProcessBlocks(p, blocks);
    p += blocks * 64;
    len -= blocks * 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Hash256 Sha256::Finish() {
  uint64_t bits = bit_count_;
  // Padding: 0x80 then zeros then 8-byte big-endian length.
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) Update(&zero, 1);
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = uint8_t(bits >> (56 - i * 8));
  // Bypass bit_count_ bookkeeping for the length field itself.
  std::memcpy(buffer_ + 56, len_be, 8);
  ProcessBlocks(buffer_, 1);
  buffer_len_ = 0;

  Hash256 out;
  for (int i = 0; i < 8; ++i) {
    out.bytes[i * 4] = uint8_t(state_[i] >> 24);
    out.bytes[i * 4 + 1] = uint8_t(state_[i] >> 16);
    out.bytes[i * 4 + 2] = uint8_t(state_[i] >> 8);
    out.bytes[i * 4 + 3] = uint8_t(state_[i]);
  }
  return out;
}

Hash256 Sha256::Digest(Slice s) {
  Sha256 h;
  h.Update(s);
  return h.Finish();
}

Hash256 Sha256::Digest2(Slice a, Slice b) {
  Sha256 h;
  h.Update(a);
  h.Update(b);
  return h.Finish();
}

void Sha256::DigestBatch(const Slice* in, size_t n, Hash256* out) {
#if BB_SHA256_X86
  if (BatchIsa() == Isa::kAvx2) {
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      Hash256* out8[8];
      for (int l = 0; l < 8; ++l) out8[l] = &out[i + l];
      Avx2Digest8(in + i, out8);
    }
    for (; i < n; ++i) out[i] = Digest(in[i]);
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) out[i] = Digest(in[i]);
}

void Sha256::DigestPairs(const Hash256* nodes, size_t n_pairs, Hash256* out) {
#if BB_SHA256_X86
  if (BatchIsa() == Isa::kAvx2) {
    size_t i = 0;
    for (; i + 8 <= n_pairs; i += 8) {
      Hash256* out8[8];
      for (int l = 0; l < 8; ++l) out8[l] = &out[i + l];
      Avx2DigestPairs8(nodes + 2 * i, out8);
    }
    for (; i < n_pairs; ++i) {
      out[i] = Digest2(
          Slice(reinterpret_cast<const char*>(nodes[2 * i].bytes.data()), 32),
          Slice(reinterpret_cast<const char*>(nodes[2 * i + 1].bytes.data()),
                32));
    }
    return;
  }
#endif
  for (size_t i = 0; i < n_pairs; ++i) {
    out[i] = Digest2(
        Slice(reinterpret_cast<const char*>(nodes[2 * i].bytes.data()), 32),
        Slice(reinterpret_cast<const char*>(nodes[2 * i + 1].bytes.data()),
              32));
  }
}

}  // namespace bb
