#include "util/status.h"

namespace bb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfGas:
      return "OutOfGas";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kReverted:
      return "Reverted";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string s = StatusCodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace bb
