// A from-scratch SHA-256 implementation (FIPS 180-4).
//
// Used for block hashes, Merkle trees and transaction ids. Not intended as
// a hardened crypto library — the benchmark framework needs a correct,
// deterministic cryptographic hash, which this provides.
//
// The compression function is runtime-dispatched: on x86-64 CPUs with the
// SHA extensions the rounds run on _mm_sha256rnds2_epu32, and the batch
// entry points (DigestBatch / DigestPairs) additionally know an 8-wide
// block-interleaved AVX2 schedule for CPUs without SHA-NI. Every backend
// produces byte-identical digests (tests/util_test.cc cross-checks them);
// only wall-clock speed differs, so golden simulation digests are
// unaffected by the dispatch.

#ifndef BLOCKBENCH_UTIL_SHA256_H_
#define BLOCKBENCH_UTIL_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "util/slice.h"

namespace bb {

/// A 32-byte SHA-256 digest.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Hash256& o) const { return bytes == o.bytes; }
  bool operator!=(const Hash256& o) const { return bytes != o.bytes; }
  bool operator<(const Hash256& o) const { return bytes < o.bytes; }

  bool IsZero() const {
    for (uint8_t b : bytes)
      if (b != 0) return false;
    return true;
  }

  /// Lowercase hex, 64 chars.
  std::string ToHex() const;
  /// First 8 hex chars, for logs.
  std::string ShortHex() const;
  /// First 8 bytes as a big-endian integer (used for hash-based bucketing).
  uint64_t Prefix64() const;

  static Hash256 Zero() { return Hash256{}; }
};

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  /// Which compression-function implementation to use.
  enum class Backend {
    kAuto,    ///< Best available: SHA-NI > AVX2 (batches only) > scalar.
    kScalar,  ///< Portable FIPS 180-4 rounds everywhere.
    kShaNi,   ///< x86 SHA extensions for every digest.
    kAvx2,    ///< Scalar single digests, 8-wide AVX2 batch digests.
  };

  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(Slice s) { Update(s.data(), s.size()); }
  /// Finalizes and returns the digest. The hasher must be Reset() before reuse.
  Hash256 Finish();

  /// One-shot convenience.
  static Hash256 Digest(Slice s);
  /// Hash of the concatenation of two slices (Merkle node combining).
  static Hash256 Digest2(Slice a, Slice b);

  /// out[i] = Digest(in[i]) for i < n. On AVX2-only CPUs the messages are
  /// scheduled block-interleaved across 8 SIMD lanes; with SHA-NI each
  /// message runs on the hardware rounds. Any n (including 0) is valid.
  static void DigestBatch(const Slice* in, size_t n, Hash256* out);
  /// out[i] = Digest(nodes[2i] || nodes[2i+1]) for i < n_pairs — Merkle
  /// level combining. Fixed two-block messages, so the batch schedule
  /// needs no per-lane masking.
  static void DigestPairs(const Hash256* nodes, size_t n_pairs, Hash256* out);

  /// Forces an implementation (testing/benchmarks). Returns false — and
  /// leaves the backend unchanged — when the CPU lacks the requested
  /// extension. Thread-safe but process-wide; perf::LegacyMode() forces
  /// scalar regardless of this setting.
  static bool SetBackend(Backend b);
  static Backend backend();
  /// True when this CPU supports `b` (kAuto/kScalar are always true).
  static bool BackendAvailable(Backend b);

 private:
  void ProcessBlocks(const uint8_t* data, size_t blocks);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

struct Hash256Hasher {
  size_t operator()(const Hash256& h) const {
    // Digest bytes are uniformly distributed; fold the first 8 bytes.
    return static_cast<size_t>(h.Prefix64());
  }
};

}  // namespace bb

#endif  // BLOCKBENCH_UTIL_SHA256_H_
