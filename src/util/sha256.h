// A from-scratch SHA-256 implementation (FIPS 180-4).
//
// Used for block hashes, Merkle trees and transaction ids. Not intended as
// a hardened crypto library — the benchmark framework needs a correct,
// deterministic cryptographic hash, which this provides.

#ifndef BLOCKBENCH_UTIL_SHA256_H_
#define BLOCKBENCH_UTIL_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "util/slice.h"

namespace bb {

/// A 32-byte SHA-256 digest.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Hash256& o) const { return bytes == o.bytes; }
  bool operator!=(const Hash256& o) const { return bytes != o.bytes; }
  bool operator<(const Hash256& o) const { return bytes < o.bytes; }

  bool IsZero() const {
    for (uint8_t b : bytes)
      if (b != 0) return false;
    return true;
  }

  /// Lowercase hex, 64 chars.
  std::string ToHex() const;
  /// First 8 hex chars, for logs.
  std::string ShortHex() const;
  /// First 8 bytes as a big-endian integer (used for hash-based bucketing).
  uint64_t Prefix64() const;

  static Hash256 Zero() { return Hash256{}; }
};

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(Slice s) { Update(s.data(), s.size()); }
  /// Finalizes and returns the digest. The hasher must be Reset() before reuse.
  Hash256 Finish();

  /// One-shot convenience.
  static Hash256 Digest(Slice s);
  /// Hash of the concatenation of two slices (Merkle node combining).
  static Hash256 Digest2(Slice a, Slice b);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

struct Hash256Hasher {
  size_t operator()(const Hash256& h) const {
    // Digest bytes are uniformly distributed; fold the first 8 bytes.
    return static_cast<size_t>(h.Prefix64());
  }
};

}  // namespace bb

#endif  // BLOCKBENCH_UTIL_SHA256_H_
