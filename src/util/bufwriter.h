// BufferedWriter: a small append-only file writer with an in-memory
// buffer and sticky error state. Shared by every bulk text exporter in
// the framework (StatsCollector CSV, the Chrome trace writer) so that
// per-row output never turns into per-row write(2) calls.
//
// Errors are sticky: once a write fails, further Appends are no-ops and
// Close() (or status()) reports the first failure as a Status.

#ifndef BLOCKBENCH_UTIL_BUFWRITER_H_
#define BLOCKBENCH_UTIL_BUFWRITER_H_

#include <cstdio>
#include <string>
#include <string_view>

#include "util/status.h"

namespace bb::util {

class BufferedWriter {
 public:
  static constexpr size_t kDefaultBufferBytes = 1 << 16;

  explicit BufferedWriter(size_t buffer_bytes = kDefaultBufferBytes);
  ~BufferedWriter();

  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  /// Opens (truncates) `path` for writing.
  Status Open(const std::string& path);

  void Append(std::string_view data);
  void Append(char c);
  /// printf-style append; formatting happens into the buffer directly.
  void Appendf(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 2, 3)))
#endif
      ;

  /// Flushes, closes, and returns the first error seen (Ok otherwise).
  /// Safe to call more than once.
  Status Close();

  /// First error seen so far (sticky), Ok if none.
  const Status& status() const { return status_; }

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  void Flush();
  void Fail(const std::string& what);

  FILE* file_ = nullptr;
  std::string path_;
  std::string buf_;
  size_t cap_;
  uint64_t bytes_written_ = 0;
  Status status_ = Status::Ok();
};

}  // namespace bb::util

#endif  // BLOCKBENCH_UTIL_BUFWRITER_H_
