#include "util/codec.h"

namespace bb {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = char(v >> (i * 8));
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = char(v >> (i * 8));
  dst->append(buf, 8);
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(char(v | 0x80));
    v >>= 7;
  }
  dst->push_back(char(v));
}

void PutLengthPrefixed(std::string* dst, Slice s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

Status GetFixed32(Slice* input, uint32_t* v) {
  if (input->size() < 4) return Status::Corruption("truncated fixed32");
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) r |= uint32_t(uint8_t((*input)[i])) << (i * 8);
  input->remove_prefix(4);
  *v = r;
  return Status::Ok();
}

Status GetFixed64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return Status::Corruption("truncated fixed64");
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) r |= uint64_t(uint8_t((*input)[i])) << (i * 8);
  input->remove_prefix(8);
  *v = r;
  return Status::Ok();
}

Status GetVarint64(Slice* input, uint64_t* v) {
  uint64_t r = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint8_t byte = uint8_t((*input)[0]);
    input->remove_prefix(1);
    r |= uint64_t(byte & 0x7f) << shift;
    if (!(byte & 0x80)) {
      *v = r;
      return Status::Ok();
    }
  }
  return Status::Corruption("truncated or overlong varint");
}

Status GetLengthPrefixed(Slice* input, std::string* s) {
  uint64_t len;
  BB_RETURN_IF_ERROR(GetVarint64(input, &len));
  if (input->size() < len) return Status::Corruption("truncated string");
  s->assign(input->data(), len);
  input->remove_prefix(len);
  return Status::Ok();
}

size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace bb
