// Flat open-addressing hash containers for 64-bit ids.
//
// The hot paths (tx admission dedup, committed-id filtering, pool
// membership) all key on dense client-assigned ids of the form
// (client+1)<<40 | seq — low entropy in exactly the bits an identity-hash
// table would use, and std::unordered_set's node allocations made these
// lookups ~16% of the seed profile. These tables use linear probing over
// one contiguous array, a splitmix64 finalizer to spread the structured
// ids, zero-as-empty-sentinel (the zero key is tracked out of band) and
// backward-shift deletion so probe chains never accumulate tombstones.

#ifndef BLOCKBENCH_UTIL_FLAT_ID_TABLE_H_
#define BLOCKBENCH_UTIL_FLAT_ID_TABLE_H_

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace bb::util {

namespace internal {
/// splitmix64 finalizer: full-avalanche mix for structured ids.
inline uint64_t MixId(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace internal

/// Set of uint64 ids. Interface mirrors the std::unordered_set subset the
/// codebase uses (insert/count/erase/size/clear), so it drops in.
class FlatIdSet {
 public:
  FlatIdSet() { Rehash(kMinCapacity); }

  size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), 0);
    size_ = 0;
    has_zero_ = false;
  }

  size_t count(uint64_t id) const {
    if (id == 0) return has_zero_ ? 1 : 0;
    size_t i = Home(id);
    while (keys_[i] != 0) {
      if (keys_[i] == id) return 1;
      i = (i + 1) & mask_;
    }
    return 0;
  }

  /// Returns true when newly inserted.
  bool insert(uint64_t id) {
    if (id == 0) {
      bool fresh = !has_zero_;
      has_zero_ = true;
      return fresh;
    }
    if ((size_ + 1) * 10 >= keys_.size() * 7) Rehash(keys_.size() * 2);
    size_t i = Home(id);
    while (keys_[i] != 0) {
      if (keys_[i] == id) return false;
      i = (i + 1) & mask_;
    }
    keys_[i] = id;
    ++size_;
    return true;
  }

  /// Returns the number of elements removed (0 or 1).
  size_t erase(uint64_t id) {
    if (id == 0) {
      size_t n = has_zero_ ? 1 : 0;
      has_zero_ = false;
      return n;
    }
    size_t i = Home(id);
    while (keys_[i] != id) {
      if (keys_[i] == 0) return 0;
      i = (i + 1) & mask_;
    }
    BackwardShift(i);
    --size_;
    return 1;
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  size_t Home(uint64_t id) const { return internal::MixId(id) & mask_; }

  void BackwardShift(size_t hole) {
    size_t j = hole;
    while (true) {
      j = (j + 1) & mask_;
      if (keys_[j] == 0) break;
      size_t home = Home(keys_[j]);
      // Move j's key into the hole only if its probe chain started at or
      // before the hole (cyclically) — otherwise it would become
      // unreachable from its home slot.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        keys_[hole] = keys_[j];
        hole = j;
      }
    }
    keys_[hole] = 0;
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old = std::move(keys_);
    keys_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (uint64_t id : old) {
      if (id == 0) continue;
      size_t i = Home(id);
      while (keys_[i] != 0) i = (i + 1) & mask_;
      keys_[i] = id;
      ++size_;
    }
  }

  std::vector<uint64_t> keys_;
  size_t mask_ = 0;
  size_t size_ = 0;  // excluding the zero key
  bool has_zero_ = false;
};

/// Map from uint64 id to a small trivially-copyable value (pool slot
/// indices). Same layout/probing as FlatIdSet.
template <typename V>
class FlatIdMap {
 public:
  FlatIdMap() { Rehash(kMinCapacity); }

  size_t size() const { return size_ + (has_zero_ ? 1 : 0); }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), 0);
    size_ = 0;
    has_zero_ = false;
  }

  /// Null when absent. The pointer is invalidated by any mutation.
  V* Find(uint64_t id) {
    if (id == 0) return has_zero_ ? &zero_value_ : nullptr;
    size_t i = Home(id);
    while (keys_[i] != 0) {
      if (keys_[i] == id) return &values_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* Find(uint64_t id) const {
    return const_cast<FlatIdMap*>(this)->Find(id);
  }

  /// Inserts or overwrites.
  void Put(uint64_t id, V value) {
    if (id == 0) {
      has_zero_ = true;
      zero_value_ = value;
      return;
    }
    if ((size_ + 1) * 10 >= keys_.size() * 7) Rehash(keys_.size() * 2);
    size_t i = Home(id);
    while (keys_[i] != 0) {
      if (keys_[i] == id) {
        values_[i] = value;
        return;
      }
      i = (i + 1) & mask_;
    }
    keys_[i] = id;
    values_[i] = value;
    ++size_;
  }

  /// Returns true when the id was present.
  bool Erase(uint64_t id) {
    if (id == 0) {
      bool had = has_zero_;
      has_zero_ = false;
      return had;
    }
    size_t i = Home(id);
    while (keys_[i] != id) {
      if (keys_[i] == 0) return false;
      i = (i + 1) & mask_;
    }
    BackwardShift(i);
    --size_;
    return true;
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  size_t Home(uint64_t id) const { return internal::MixId(id) & mask_; }

  void BackwardShift(size_t hole) {
    size_t j = hole;
    while (true) {
      j = (j + 1) & mask_;
      if (keys_[j] == 0) break;
      size_t home = Home(keys_[j]);
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        keys_[hole] = keys_[j];
        values_[hole] = values_[j];
        hole = j;
      }
    }
    keys_[hole] = 0;
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(new_capacity, 0);
    values_.assign(new_capacity, V{});
    mask_ = new_capacity - 1;
    size_ = 0;
    for (size_t s = 0; s < old_keys.size(); ++s) {
      uint64_t id = old_keys[s];
      if (id == 0) continue;
      size_t i = Home(id);
      while (keys_[i] != 0) i = (i + 1) & mask_;
      keys_[i] = id;
      values_[i] = old_values[s];
      ++size_;
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  size_t mask_ = 0;
  size_t size_ = 0;
  bool has_zero_ = false;
  V zero_value_{};
};

/// Bounded membership window over recently seen ids: two generations of
/// FlatIdSet, rotated when the current generation fills. Remembers between
/// `window` and 2×`window` of the most recent distinct ids with O(1)
/// amortized inserts — the fix for the unbounded seen-set a long-running
/// admission path would otherwise accumulate.
class SeenIdWindow {
 public:
  /// Effectively-unbounded default for simulation-scale runs; tests set a
  /// tiny window to exercise the recycling boundary.
  static constexpr size_t kDefaultWindow = size_t(1) << 20;

  explicit SeenIdWindow(size_t window = kDefaultWindow) : window_(window) {}

  bool Contains(uint64_t id) const {
    return cur_.count(id) > 0 || prev_.count(id) > 0;
  }

  /// Marks the id seen; returns true when it was not in the window.
  bool Insert(uint64_t id) {
    if (Contains(id)) return false;
    if (cur_.size() >= window_) {
      prev_ = std::move(cur_);
      cur_ = FlatIdSet();
    }
    cur_.insert(id);
    return true;
  }

  size_t window() const { return window_; }
  void set_window(size_t w) { window_ = w; }
  /// Ids currently remembered (spans both generations).
  size_t size() const { return cur_.size() + prev_.size(); }

 private:
  size_t window_;
  FlatIdSet cur_;
  FlatIdSet prev_;
};

}  // namespace bb::util

#endif  // BLOCKBENCH_UTIL_FLAT_ID_TABLE_H_
