// Deterministic pseudo-random utilities for workload generation and the
// simulator: xoshiro256** core, plus Zipfian and exponential samplers.
//
// All randomness in blockbench-cpp flows through Rng so that every
// experiment is reproducible from a seed.

#ifndef BLOCKBENCH_UTIL_RANDOM_H_
#define BLOCKBENCH_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace bb {

/// xoshiro256** PRNG. Deterministic from seed; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  uint64_t Next();
  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);
  /// Uniform in [lo, hi]. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// True with probability p.
  bool Bernoulli(double p);
  /// Exponential with the given mean (> 0). Used for PoW mining times.
  double Exponential(double mean);
  /// Gaussian via Box-Muller.
  double Gaussian(double mean, double stddev);
  /// Random printable ASCII string of exactly `len` bytes.
  std::string AsciiString(size_t len);
  /// Spawn an independent child stream (e.g. one per simulated node).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Zipfian generator over [0, n) using the YCSB rejection-inversion-free
/// algorithm (Gray et al.), with theta defaulting to YCSB's 0.99.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);
  uint64_t item_count() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zeta_n_;
  double alpha_;
  double eta_;
  double zeta2_;
};

/// Scrambles ZipfianGenerator output across the keyspace (YCSB "scrambled
/// zipfian") so hot keys are spread out rather than clustered at 0.
class ScrambledZipfian {
 public:
  explicit ScrambledZipfian(uint64_t n, double theta = 0.99)
      : n_(n), zipf_(n, theta) {}

  uint64_t Next(Rng& rng);

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

}  // namespace bb

#endif  // BLOCKBENCH_UTIL_RANDOM_H_
