// Latency histogram with percentile queries, plus a time-series recorder
// used by the StatsCollector for throughput-over-time figures.

#ifndef BLOCKBENCH_UTIL_HISTOGRAM_H_
#define BLOCKBENCH_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bb {

/// Collects double-valued samples; percentiles computed on demand.
/// Storage is exact (all samples kept) — runs are bounded, so this is
/// simpler and more accurate than bucketed approximation.
class Histogram {
 public:
  void Add(double v);
  void Merge(const Histogram& other);
  void Clear();

  size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double Mean() const;
  double Stddev() const;
  /// p in [0, 100]. Linear interpolation between order statistics.
  double Percentile(double p) const;
  double Median() const { return Percentile(50); }

  /// CDF points (value, cumulative fraction), thinned to at most
  /// `max_points` entries. Used for Figure 17.
  std::vector<std::pair<double, double>> Cdf(size_t max_points = 200) const;

  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Accumulates (time, value) points into fixed-width time bins; used for
/// committed-transactions-over-time and queue-length-over-time series.
class TimeSeries {
 public:
  explicit TimeSeries(double bin_width_sec = 1.0) : bin_width_(bin_width_sec) {}

  /// Adds `value` into the bin containing time t (seconds).
  void Add(double t, double value);
  /// Records an instantaneous observation; bins keep the last value seen.
  void Observe(double t, double value);

  double bin_width() const { return bin_width_; }
  size_t num_bins() const { return bins_.size(); }
  /// Sum accumulated in bin i (0 if empty).
  double SumAt(size_t i) const;
  /// Last observed value at bin i, carrying the previous bin's value forward.
  double ValueAt(size_t i) const;

 private:
  struct Bin {
    double sum = 0;
    double last = 0;
    bool has_last = false;
  };
  void Grow(size_t i);

  double bin_width_;
  std::vector<Bin> bins_;
};

}  // namespace bb

#endif  // BLOCKBENCH_UTIL_HISTOGRAM_H_
