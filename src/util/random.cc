#include "util/random.h"

#include <cassert>
#include <cmath>

namespace bb {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a-like 64-bit scrambler used by YCSB's scrambled zipfian.
uint64_t FnvHash64(uint64_t v) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    uint8_t octet = v & 0xff;
    v >>= 8;
    hash ^= octet;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return double(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Gaussian(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

std::string Rng::AsciiString(size_t len) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) out.push_back(kChars[Uniform(62)]);
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zeta_n_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2_ / zeta_n_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  double u = rng.NextDouble();
  double uz = u * zeta_n_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return uint64_t(double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

uint64_t ScrambledZipfian::Next(Rng& rng) {
  return FnvHash64(zipf_.Next(rng)) % n_;
}

}  // namespace bb
