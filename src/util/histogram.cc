#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace bb {

void Histogram::Add(double v) {
  samples_.push_back(v);
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    auto& s = const_cast<std::vector<double>&>(samples_);
    std::sort(s.begin(), s.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double Histogram::min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.front();
}

double Histogram::max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.back();
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / double(samples_.size());
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) return 0;
  double m = Mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / double(samples_.size() - 1));
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0;
  assert(p >= 0 && p <= 100);
  EnsureSorted();
  if (samples_.size() == 1) return samples_[0];
  double rank = p / 100.0 * double(samples_.size() - 1);
  size_t lo = size_t(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - double(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

std::vector<std::pair<double, double>> Histogram::Cdf(size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty()) return out;
  EnsureSorted();
  size_t n = samples_.size();
  size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i], double(i + 1) / double(n));
  }
  if (out.back().second < 1.0) out.emplace_back(samples_.back(), 1.0);
  return out;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.4f p50=%.4f p95=%.4f p99=%.4f min=%.4f "
                "max=%.4f",
                count(), Mean(), Percentile(50), Percentile(95),
                Percentile(99), min(), max());
  return buf;
}

void TimeSeries::Grow(size_t i) {
  if (i >= bins_.size()) bins_.resize(i + 1);
}

void TimeSeries::Add(double t, double value) {
  if (t < 0) return;
  size_t i = size_t(t / bin_width_);
  Grow(i);
  bins_[i].sum += value;
}

void TimeSeries::Observe(double t, double value) {
  if (t < 0) return;
  size_t i = size_t(t / bin_width_);
  Grow(i);
  bins_[i].last = value;
  bins_[i].has_last = true;
}

double TimeSeries::SumAt(size_t i) const {
  if (i >= bins_.size()) return 0;
  return bins_[i].sum;
}

double TimeSeries::ValueAt(size_t i) const {
  double last = 0;
  for (size_t j = 0; j <= i && j < bins_.size(); ++j) {
    if (bins_[j].has_last) last = bins_[j].last;
  }
  return last;
}

}  // namespace bb
