#include "util/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace bb::util {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; closest faithful value
    *out += "null";
    return;
  }
  double rounded = std::nearbyint(d);
  if (rounded == d && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", (long long)d);
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

struct Parser {
  const char* p;
  const char* end;

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Eat(char c) {
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(size_t(p - start)));
  }

  Result<Json> ParseValue() {
    SkipWs();
    if (p >= end) return Error("unexpected end of input");
    switch (*p) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        return Json(std::move(s));
      }
      case 't':
        if (Literal("true")) return Json(true);
        return Error("bad literal");
      case 'f':
        if (Literal("false")) return Json(false);
        return Error("bad literal");
      case 'n':
        if (Literal("null")) return Json();
        return Error("bad literal");
      default: return ParseNumber();
    }
  }

  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (size_t(end - p) >= n && std::memcmp(p, lit, n) == 0) {
      p += n;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    if (!Eat('"')) return Error("expected string");
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) return Error("dangling escape");
      char e = *p++;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (end - p < 4) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs untreated —
          // the bench output never emits them).
          if (code < 0x80) {
            out->push_back(char(code));
          } else if (code < 0x800) {
            out->push_back(char(0xC0 | (code >> 6)));
            out->push_back(char(0x80 | (code & 0x3F)));
          } else {
            out->push_back(char(0xE0 | (code >> 12)));
            out->push_back(char(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(char(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Error("bad escape");
      }
    }
    if (!Eat('"')) return Error("unterminated string");
    return Status::Ok();
  }

  Result<Json> ParseNumber() {
    char* num_end = nullptr;
    double d = std::strtod(p, &num_end);
    if (num_end == p || num_end > end) return Error("bad number");
    p = num_end;
    return Json(d);
  }

  Result<Json> ParseArray() {
    Eat('[');
    Json arr = Json::Array();
    SkipWs();
    if (Eat(']')) return arr;
    for (;;) {
      auto v = ParseValue();
      if (!v.ok()) return v;
      arr.Push(std::move(*v));
      SkipWs();
      if (Eat(']')) return arr;
      if (!Eat(',')) return Error("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    Eat('{');
    Json obj = Json::Object();
    SkipWs();
    if (Eat('}')) return obj;
    for (;;) {
      SkipWs();
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (!Eat(':')) return Error("expected ':'");
      auto v = ParseValue();
      if (!v.ok()) return v;
      obj.Set(key, std::move(*v));
      SkipWs();
      if (Eat('}')) return obj;
      if (!Eat(',')) return Error("expected ',' or '}'");
    }
  }

  const char* start;
};

}  // namespace

void Json::Push(Json v) {
  assert(type_ == Type::kArray || type_ == Type::kNull);
  type_ = Type::kArray;
  items_.push_back(std::move(v));
}

void Json::Set(const std::string& key, Json v) {
  assert(type_ == Type::kObject || type_ == Type::kNull);
  type_ = Type::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const Json* Json::Get(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent <= 0) return;
    out->push_back('\n');
    out->append(size_t(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: AppendNumber(out, num_); break;
    case Type::kString: AppendEscaped(out, str_); break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out->push_back(',');
        newline(depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i) out->push_back(',');
        newline(depth + 1);
        AppendEscaped(out, members_[i].first);
        *out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser parser;
  parser.p = text.data();
  parser.end = text.data() + text.size();
  parser.start = text.data();
  auto v = parser.ParseValue();
  if (!v.ok()) return v;
  parser.SkipWs();
  if (parser.p != parser.end) {
    return parser.Error("trailing characters after document");
  }
  return v;
}

}  // namespace bb::util
