// Binary encoding helpers: fixed/varint integers and length-prefixed
// strings, appended to std::string buffers (LevelDB coding idiom).
// Used for transaction/block serialization and KV store records.

#ifndef BLOCKBENCH_UTIL_CODEC_H_
#define BLOCKBENCH_UTIL_CODEC_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace bb {

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// varint length followed by raw bytes.
void PutLengthPrefixed(std::string* dst, Slice s);

/// Each Get* consumes from the front of *input and fails on truncation.
Status GetFixed32(Slice* input, uint32_t* v);
Status GetFixed64(Slice* input, uint64_t* v);
Status GetVarint64(Slice* input, uint64_t* v);
Status GetLengthPrefixed(Slice* input, std::string* s);

/// Number of bytes PutVarint64 would append.
size_t VarintLength(uint64_t v);

}  // namespace bb

#endif  // BLOCKBENCH_UTIL_CODEC_H_
