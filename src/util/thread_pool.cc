#include "util/thread_pool.h"

namespace bb::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

size_t ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : size_t(n);
}

}  // namespace bb::util
