// Hex encoding/decoding helpers.

#ifndef BLOCKBENCH_UTIL_HEX_H_
#define BLOCKBENCH_UTIL_HEX_H_

#include <string>

#include "util/status.h"
#include "util/slice.h"

namespace bb {

/// Lowercase hex encoding of a byte range.
std::string BytesToHex(const char* data, size_t len);
inline std::string BytesToHex(Slice s) { return BytesToHex(s.data(), s.size()); }

/// Decodes lowercase/uppercase hex; fails on odd length or non-hex chars.
Result<std::string> HexToBytes(Slice hex);

}  // namespace bb

#endif  // BLOCKBENCH_UTIL_HEX_H_
