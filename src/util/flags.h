// Tiny argv helpers shared by the bench binaries and the bbench CLI:
// exact-match boolean flags ("--full") and "--key=value" flags
// ("--jobs=8", "--json=out.json"). No registry, no allocation beyond
// the returned value — just enough parsing for ~25 small mains to agree
// on one syntax.

#ifndef BLOCKBENCH_UTIL_FLAGS_H_
#define BLOCKBENCH_UTIL_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace bb::util {

/// True when the exact flag (e.g. "--full") is among the args.
inline bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Returns the value of a "--key=value" flag given its key (e.g.
/// "--jobs"), or nullopt when absent. The last occurrence wins.
inline std::optional<std::string> FlagValue(int argc, char** argv,
                                            const std::string& key) {
  std::optional<std::string> value;
  const std::string prefix = key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) value = arg.substr(prefix.size());
  }
  return value;
}

/// "--key=N" parsed as uint64, or `fallback` when absent/malformed.
inline uint64_t FlagUint(int argc, char** argv, const std::string& key,
                         uint64_t fallback) {
  auto v = FlagValue(argc, argv, key);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  unsigned long long n = std::strtoull(v->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return uint64_t(n);
}

/// "--key=X" parsed as double, or `fallback` when absent/malformed.
inline double FlagDouble(int argc, char** argv, const std::string& key,
                         double fallback) {
  auto v = FlagValue(argc, argv, key);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  double d = std::strtod(v->c_str(), &end);
  if (end == nullptr || *end != '\0') return fallback;
  return d;
}

}  // namespace bb::util

#endif  // BLOCKBENCH_UTIL_FLAGS_H_
