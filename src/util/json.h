// Minimal JSON value model, writer and parser — just enough for the
// benchmark suite's machine-readable output (--json=<path>) and the
// bench_report aggregator that merges those files into BENCH_*.json
// snapshots. Objects preserve insertion order so emitted files are
// stable and diffable across runs.

#ifndef BLOCKBENCH_UTIL_JSON_H_
#define BLOCKBENCH_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace bb::util {

/// A JSON document node. Numbers are stored as double (JSON's number
/// model); use AsUint() for counters that fit exactly in 2^53.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                    // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}                 // NOLINT
  Json(int i) : type_(Type::kNumber), num_(i) {}                    // NOLINT
  Json(uint64_t u) : type_(Type::kNumber), num_(double(u)) {}       // NOLINT
  Json(int64_t i) : type_(Type::kNumber), num_(double(i)) {}        // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}            // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {} // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return is_bool() && bool_; }
  double AsDouble() const { return is_number() ? num_ : 0; }
  uint64_t AsUint() const { return is_number() && num_ > 0 ? uint64_t(num_) : 0; }
  const std::string& AsString() const { return str_; }

  /// Array access. Push() asserts the value is (or becomes) an array.
  void Push(Json v);
  const std::vector<Json>& items() const { return items_; }
  size_t size() const {
    return is_array() ? items_.size() : is_object() ? members_.size() : 0;
  }

  /// Object access. Set() keeps insertion order and overwrites an
  /// existing key in place; Get() returns nullptr when absent.
  void Set(const std::string& key, Json v);
  const Json* Get(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serializes the document. indent=0 -> compact one-liner; otherwise
  /// pretty-printed with that many spaces per level.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> items_;                             // kArray
  std::vector<std::pair<std::string, Json>> members_;   // kObject
};

}  // namespace bb::util

#endif  // BLOCKBENCH_UTIL_JSON_H_
