// A fixed-size worker pool for fanning independent jobs out across
// cores. Used by bench::SweepRunner to run MacroRun sweep points in
// parallel; each job owns its entire Simulation, so no simulation state
// is ever shared between threads.

#ifndef BLOCKBENCH_UTIL_THREAD_POOL_H_
#define BLOCKBENCH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bb::util {

/// Fixed-size FIFO thread pool. Submit() enqueues a job; the destructor
/// (or Wait() + destruction) drains everything. Jobs must not throw.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; runs on some worker in FIFO dispatch order.
  void Submit(std::function<void()> job);

  /// Blocks until every submitted job has finished running.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// The machine's hardware concurrency, never reported as 0.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: job or shutdown
  std::condition_variable done_cv_;   // signals Wait(): all jobs finished
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // jobs popped but not yet finished
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bb::util

#endif  // BLOCKBENCH_UTIL_THREAD_POOL_H_
