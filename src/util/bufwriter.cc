#include "util/bufwriter.h"

#include <cerrno>
#include <cstdarg>
#include <cstring>

namespace bb::util {

BufferedWriter::BufferedWriter(size_t buffer_bytes)
    : cap_(buffer_bytes > 0 ? buffer_bytes : kDefaultBufferBytes) {
  buf_.reserve(cap_);
}

BufferedWriter::~BufferedWriter() { Close(); }

Status BufferedWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::Internal("writer already open");
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::Unavailable("cannot open " + path + ": " +
                                  std::strerror(errno));
    return status_;
  }
  path_ = path;
  return Status::Ok();
}

void BufferedWriter::Append(std::string_view data) {
  if (!status_.ok()) return;
  buf_.append(data.data(), data.size());
  if (buf_.size() >= cap_) Flush();
}

void BufferedWriter::Append(char c) {
  if (!status_.ok()) return;
  buf_.push_back(c);
  if (buf_.size() >= cap_) Flush();
}

void BufferedWriter::Appendf(const char* fmt, ...) {
  if (!status_.ok()) return;
  char stack[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(stack, sizeof(stack), fmt, ap);
  va_end(ap);
  if (n < 0) {
    Fail("vsnprintf failed");
    return;
  }
  if (size_t(n) < sizeof(stack)) {
    Append(std::string_view(stack, size_t(n)));
    return;
  }
  std::string big(size_t(n) + 1, '\0');
  va_start(ap, fmt);
  std::vsnprintf(big.data(), big.size(), fmt, ap);
  va_end(ap);
  big.resize(size_t(n));
  Append(big);
}

Status BufferedWriter::Close() {
  if (file_ != nullptr) {
    Flush();
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::Unavailable("close failed for " + path_ + ": " +
                                    std::strerror(errno));
    }
    file_ = nullptr;
  }
  return status_;
}

void BufferedWriter::Flush() {
  if (buf_.empty()) return;
  if (file_ == nullptr) {
    Fail("writer not open");
    buf_.clear();
    return;
  }
  if (status_.ok()) {
    size_t n = std::fwrite(buf_.data(), 1, buf_.size(), file_);
    if (n != buf_.size()) {
      Fail(std::string("write failed: ") + std::strerror(errno));
    } else {
      bytes_written_ += n;
    }
  }
  buf_.clear();
}

void BufferedWriter::Fail(const std::string& what) {
  if (status_.ok()) {
    status_ = Status::Unavailable(path_.empty() ? what : path_ + ": " + what);
  }
}

}  // namespace bb::util
