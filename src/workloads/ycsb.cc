#include "workloads/ycsb.h"

#include <cstdio>

#include "workloads/contracts.h"

namespace bb::workloads {

YcsbWorkload::YcsbWorkload(YcsbConfig config) : config_(config) {
  if (config_.zipfian) {
    zipf_ = std::make_unique<ScrambledZipfian>(config_.record_count,
                                               config_.zipf_theta);
  }
  RegisterAllChaincodes();
}

YcsbWorkload::~YcsbWorkload() = default;

std::string YcsbWorkload::KeyFor(uint64_t n) {
  char buf[32];  // "user" + up to 20 digits (insert ids are 64-bit)
  std::snprintf(buf, sizeof(buf), "user%08llu", (unsigned long long)n);
  return buf;
}

Status YcsbWorkload::Setup(platform::Platform* platform) {
  platform_ = platform;
  shards_ = platform->num_shards();
  BB_RETURN_IF_ERROR(platform->DeployWorkloadContract(
      config_.contract, KvStoreCasm(), kKvStoreChaincode));
  Rng rng(0x5cb5);
  for (uint64_t i = 0; i < config_.record_count; ++i) {
    vm::Value v(rng.AsciiString(config_.value_size));
    BB_RETURN_IF_ERROR(
        platform->PreloadState(config_.contract, KeyFor(i), v.Serialize()));
  }
  return platform->FinalizeGenesis();
}

uint64_t YcsbWorkload::NextKeyNum(Rng& rng) {
  if (zipf_ != nullptr) return zipf_->Next(rng);
  return rng.Uniform(config_.record_count);
}

uint64_t YcsbWorkload::NextKeyNumInShard(Rng& rng, uint32_t shard) {
  // Rejection sampling keeps the per-shard key distribution equal to the
  // configured one restricted to the shard (expected tries ~= shards_).
  for (int tries = 0; tries < 1024; ++tries) {
    uint64_t n = NextKeyNum(rng);
    if (platform_->ShardOfKey(KeyFor(n)) == shard) return n;
  }
  // A shard with (almost) no keys in range: probe linearly so generation
  // always terminates.
  uint64_t n = NextKeyNum(rng);
  for (uint64_t step = 0; step < config_.record_count; ++step) {
    uint64_t candidate = (n + step) % config_.record_count;
    if (platform_->ShardOfKey(KeyFor(candidate)) == shard) return candidate;
  }
  return n;
}

chain::Transaction YcsbWorkload::NextTransaction(uint32_t client_id,
                                                 Rng& rng) {
  chain::Transaction tx;
  tx.contract = config_.contract;

  // Sharded platforms: pin keys to the client's home shard, except for
  // the configured fraction of deliberately cross-shard transactions.
  // The unsharded path below draws from the rng in the exact historical
  // order, so existing golden digests are untouched.
  const bool sharded = shards_ > 1 && platform_ != nullptr;
  const uint32_t home = sharded ? uint32_t(client_id % shards_) : 0;
  if (sharded && config_.cross_shard_ratio > 0 &&
      rng.NextDouble() < config_.cross_shard_ratio) {
    uint32_t other =
        uint32_t((home + 1 + rng.Uniform(uint64_t(shards_) - 1)) % shards_);
    tx.function = "write2";
    tx.args = {vm::Value(KeyFor(NextKeyNumInShard(rng, home))),
               vm::Value(rng.AsciiString(config_.value_size)),
               vm::Value(KeyFor(NextKeyNumInShard(rng, other))),
               vm::Value(rng.AsciiString(config_.value_size))};
    return tx;
  }
  auto next_key = [&] {
    return sharded ? NextKeyNumInShard(rng, home) : NextKeyNum(rng);
  };

  double p = rng.NextDouble();
  double acc = config_.read_proportion;
  if (p < acc) {
    tx.function = "read";
    tx.args = {vm::Value(KeyFor(next_key()))};
    return tx;
  }
  acc += config_.update_proportion;
  if (p < acc) {
    tx.function = "write";
    tx.args = {vm::Value(KeyFor(next_key())),
               vm::Value(rng.AsciiString(config_.value_size))};
    return tx;
  }
  acc += config_.rmw_proportion;
  if (p < acc) {
    tx.function = "readmodifywrite";
    tx.args = {vm::Value(KeyFor(next_key())),
               vm::Value(rng.AsciiString(config_.value_size))};
    return tx;
  }
  acc += config_.insert_proportion;
  if (p < acc) {
    if (insert_counters_.size() <= client_id) {
      insert_counters_.resize(client_id + 1, 0);
    }
    // Fresh keys partitioned per client so concurrent inserts never
    // collide: id = record_count + client * 2^32 + counter.
    uint64_t id = config_.record_count +
                  (uint64_t(client_id) << 32) + insert_counters_[client_id]++;
    if (sharded) {
      // Advance past fresh ids whose key hashes off-shard; skipped ids
      // are simply never used.
      while (platform_->ShardOfKey(KeyFor(id)) != home) {
        id = config_.record_count + (uint64_t(client_id) << 32) +
             insert_counters_[client_id]++;
      }
    }
    tx.function = "write";
    tx.args = {vm::Value(KeyFor(id)),
               vm::Value(rng.AsciiString(config_.value_size))};
    return tx;
  }
  acc += config_.delete_proportion;
  if (p < acc) {
    tx.function = "remove";
    tx.args = {vm::Value(KeyFor(next_key()))};
    return tx;
  }
  tx.function = "read";
  tx.args = {vm::Value(KeyFor(next_key()))};
  return tx;
}

std::vector<std::string> YcsbWorkload::TouchedKeys(
    const chain::Transaction& tx) const {
  std::vector<std::string> keys;
  if (!tx.args.empty() && tx.args[0].is_str()) {
    keys.push_back(tx.args[0].AsStr());
  }
  if (tx.function == "write2" && tx.args.size() >= 3 && tx.args[2].is_str()) {
    keys.push_back(tx.args[2].AsStr());
  }
  return keys;
}

}  // namespace bb::workloads
