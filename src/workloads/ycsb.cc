#include "workloads/ycsb.h"

#include <cstdio>

#include "workloads/contracts.h"

namespace bb::workloads {

YcsbWorkload::YcsbWorkload(YcsbConfig config) : config_(config) {
  if (config_.zipfian) {
    zipf_ = std::make_unique<ScrambledZipfian>(config_.record_count,
                                               config_.zipf_theta);
  }
  RegisterAllChaincodes();
}

YcsbWorkload::~YcsbWorkload() = default;

std::string YcsbWorkload::KeyFor(uint64_t n) {
  char buf[32];  // "user" + up to 20 digits (insert ids are 64-bit)
  std::snprintf(buf, sizeof(buf), "user%08llu", (unsigned long long)n);
  return buf;
}

Status YcsbWorkload::Setup(platform::Platform* platform) {
  BB_RETURN_IF_ERROR(platform->DeployWorkloadContract(
      config_.contract, KvStoreCasm(), kKvStoreChaincode));
  Rng rng(0x5cb5);
  for (uint64_t i = 0; i < config_.record_count; ++i) {
    vm::Value v(rng.AsciiString(config_.value_size));
    BB_RETURN_IF_ERROR(
        platform->PreloadState(config_.contract, KeyFor(i), v.Serialize()));
  }
  return platform->FinalizeGenesis();
}

uint64_t YcsbWorkload::NextKeyNum(Rng& rng) {
  if (zipf_ != nullptr) return zipf_->Next(rng);
  return rng.Uniform(config_.record_count);
}

chain::Transaction YcsbWorkload::NextTransaction(uint32_t client_id,
                                                 Rng& rng) {
  chain::Transaction tx;
  tx.contract = config_.contract;
  double p = rng.NextDouble();
  double acc = config_.read_proportion;
  if (p < acc) {
    tx.function = "read";
    tx.args = {vm::Value(KeyFor(NextKeyNum(rng)))};
    return tx;
  }
  acc += config_.update_proportion;
  if (p < acc) {
    tx.function = "write";
    tx.args = {vm::Value(KeyFor(NextKeyNum(rng))),
               vm::Value(rng.AsciiString(config_.value_size))};
    return tx;
  }
  acc += config_.rmw_proportion;
  if (p < acc) {
    tx.function = "readmodifywrite";
    tx.args = {vm::Value(KeyFor(NextKeyNum(rng))),
               vm::Value(rng.AsciiString(config_.value_size))};
    return tx;
  }
  acc += config_.insert_proportion;
  if (p < acc) {
    if (insert_counters_.size() <= client_id) {
      insert_counters_.resize(client_id + 1, 0);
    }
    // Fresh keys partitioned per client so concurrent inserts never
    // collide: id = record_count + client * 2^32 + counter.
    uint64_t id = config_.record_count +
                  (uint64_t(client_id) << 32) + insert_counters_[client_id]++;
    tx.function = "write";
    tx.args = {vm::Value(KeyFor(id)),
               vm::Value(rng.AsciiString(config_.value_size))};
    return tx;
  }
  acc += config_.delete_proportion;
  if (p < acc) {
    tx.function = "remove";
    tx.args = {vm::Value(KeyFor(NextKeyNum(rng)))};
    return tx;
  }
  tx.function = "read";
  tx.args = {vm::Value(KeyFor(NextKeyNum(rng)))};
  return tx;
}

}  // namespace bb::workloads
