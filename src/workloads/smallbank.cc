#include "workloads/smallbank.h"

#include "workloads/contracts.h"

namespace bb::workloads {

SmallbankWorkload::SmallbankWorkload(SmallbankConfig config)
    : config_(config) {
  RegisterAllChaincodes();
}

Status SmallbankWorkload::Setup(platform::Platform* platform) {
  platform_ = platform;
  shards_ = platform->num_shards();
  BB_RETURN_IF_ERROR(platform->DeployWorkloadContract(
      config_.contract, SmallbankCasm(), kSmallbankChaincode));
  for (uint64_t i = 0; i < config_.num_accounts; ++i) {
    std::string a = AccountName(i);
    vm::Value bal(config_.initial_balance);
    BB_RETURN_IF_ERROR(
        platform->PreloadState(config_.contract, "s_" + a, bal.Serialize()));
    BB_RETURN_IF_ERROR(
        platform->PreloadState(config_.contract, "c_" + a, bal.Serialize()));
  }
  return platform->FinalizeGenesis();
}

std::string SmallbankWorkload::AccountInShard(Rng& rng,
                                              uint32_t shard) const {
  for (int tries = 0; tries < 1024; ++tries) {
    std::string a = AccountName(rng.Uniform(config_.num_accounts));
    if (platform_->ShardOfKey(a) == shard) return a;
  }
  // A shard owning (almost) no accounts: probe linearly so generation
  // always terminates.
  uint64_t n = rng.Uniform(config_.num_accounts);
  for (uint64_t step = 0; step < config_.num_accounts; ++step) {
    std::string a = AccountName((n + step) % config_.num_accounts);
    if (platform_->ShardOfKey(a) == shard) return a;
  }
  return AccountName(n);
}

chain::Transaction SmallbankWorkload::NextTransaction(uint32_t client_id,
                                                      Rng& rng) {
  // Sharded platforms pin both accounts to the client's home shard (so
  // the transaction is single-shard), except for the configured fraction
  // of deliberately cross-shard payments. The unsharded path draws from
  // the rng in the exact historical order — golden digests depend on it.
  const bool sharded = shards_ > 1 && platform_ != nullptr;
  if (sharded) {
    uint32_t home = uint32_t(client_id % shards_);
    if (config_.cross_shard_ratio > 0 &&
        rng.NextDouble() < config_.cross_shard_ratio) {
      uint32_t other =
          uint32_t((home + 1 + rng.Uniform(uint64_t(shards_) - 1)) % shards_);
      chain::Transaction tx;
      tx.contract = config_.contract;
      tx.function = "sendPayment";
      tx.args = {vm::Value(AccountInShard(rng, home)),
                 vm::Value(AccountInShard(rng, other)),
                 vm::Value(int64_t(rng.Range(1, 100)))};
      return tx;
    }
    std::string a = AccountInShard(rng, home);
    std::string b = AccountInShard(rng, home);
    int64_t amount = int64_t(rng.Range(1, 100));
    return MixTransaction(rng, std::move(a), std::move(b), amount);
  }

  std::string a = AccountName(rng.Uniform(config_.num_accounts));
  std::string b = AccountName(rng.Uniform(config_.num_accounts));
  int64_t amount = int64_t(rng.Range(1, 100));
  return MixTransaction(rng, std::move(a), std::move(b), amount);
}

chain::Transaction SmallbankWorkload::MixTransaction(Rng& rng, std::string a,
                                                     std::string b,
                                                     int64_t amount) const {
  chain::Transaction tx;
  tx.contract = config_.contract;

  double p = rng.NextDouble();
  double acc = config_.p_transact_savings;
  if (p < acc) {
    tx.function = "transactSavings";
    tx.args = {vm::Value(a), vm::Value(amount)};
    return tx;
  }
  acc += config_.p_deposit_checking;
  if (p < acc) {
    tx.function = "depositChecking";
    tx.args = {vm::Value(a), vm::Value(amount)};
    return tx;
  }
  acc += config_.p_send_payment;
  if (p < acc) {
    tx.function = "sendPayment";
    tx.args = {vm::Value(a), vm::Value(b), vm::Value(amount)};
    return tx;
  }
  acc += config_.p_write_check;
  if (p < acc) {
    tx.function = "writeCheck";
    tx.args = {vm::Value(a), vm::Value(amount)};
    return tx;
  }
  acc += config_.p_amalgamate;
  if (p < acc) {
    tx.function = "amalgamate";
    tx.args = {vm::Value(a), vm::Value(b)};
    return tx;
  }
  tx.function = "getBalance";
  tx.args = {vm::Value(a)};
  return tx;
}

std::vector<std::string> SmallbankWorkload::TouchedKeys(
    const chain::Transaction& tx) const {
  // Accounts are the partition unit (each account's s_/c_ keys live
  // together), so the touched-key set is the account name arguments.
  std::vector<std::string> keys;
  if (!tx.args.empty() && tx.args[0].is_str()) {
    keys.push_back(tx.args[0].AsStr());
  }
  if ((tx.function == "sendPayment" || tx.function == "amalgamate") &&
      tx.args.size() >= 2 && tx.args[1].is_str()) {
    keys.push_back(tx.args[1].AsStr());
  }
  return keys;
}

}  // namespace bb::workloads
