#include "workloads/smallbank.h"

#include "workloads/contracts.h"

namespace bb::workloads {

SmallbankWorkload::SmallbankWorkload(SmallbankConfig config)
    : config_(config) {
  RegisterAllChaincodes();
}

Status SmallbankWorkload::Setup(platform::Platform* platform) {
  BB_RETURN_IF_ERROR(platform->DeployWorkloadContract(
      config_.contract, SmallbankCasm(), kSmallbankChaincode));
  for (uint64_t i = 0; i < config_.num_accounts; ++i) {
    std::string a = AccountName(i);
    vm::Value bal(config_.initial_balance);
    BB_RETURN_IF_ERROR(
        platform->PreloadState(config_.contract, "s_" + a, bal.Serialize()));
    BB_RETURN_IF_ERROR(
        platform->PreloadState(config_.contract, "c_" + a, bal.Serialize()));
  }
  return platform->FinalizeGenesis();
}

chain::Transaction SmallbankWorkload::NextTransaction(uint32_t client_id,
                                                      Rng& rng) {
  (void)client_id;
  chain::Transaction tx;
  tx.contract = config_.contract;

  std::string a = AccountName(rng.Uniform(config_.num_accounts));
  std::string b = AccountName(rng.Uniform(config_.num_accounts));
  int64_t amount = int64_t(rng.Range(1, 100));

  double p = rng.NextDouble();
  double acc = config_.p_transact_savings;
  if (p < acc) {
    tx.function = "transactSavings";
    tx.args = {vm::Value(a), vm::Value(amount)};
    return tx;
  }
  acc += config_.p_deposit_checking;
  if (p < acc) {
    tx.function = "depositChecking";
    tx.args = {vm::Value(a), vm::Value(amount)};
    return tx;
  }
  acc += config_.p_send_payment;
  if (p < acc) {
    tx.function = "sendPayment";
    tx.args = {vm::Value(a), vm::Value(b), vm::Value(amount)};
    return tx;
  }
  acc += config_.p_write_check;
  if (p < acc) {
    tx.function = "writeCheck";
    tx.args = {vm::Value(a), vm::Value(amount)};
    return tx;
  }
  acc += config_.p_amalgamate;
  if (p < acc) {
    tx.function = "amalgamate";
    tx.args = {vm::Value(a), vm::Value(b)};
    return tx;
  }
  tx.function = "getBalance";
  tx.args = {vm::Value(a)};
  return tx;
}

}  // namespace bb::workloads
