// The smart contracts of Table 1. Every contract exists in two builds:
// an EVM-assembly source (the "Solidity version", run by the Ethereum and
// Parity models) and a native chaincode class (the "Golang version", run
// by the Hyperledger model). Both implement identical state semantics —
// the differential tests rely on this.

#ifndef BLOCKBENCH_WORKLOADS_CONTRACTS_H_
#define BLOCKBENCH_WORKLOADS_CONTRACTS_H_

#include <string>

namespace bb::workloads {

// --- EVM assembly sources -----------------------------------------------
const std::string& KvStoreCasm();        // YCSB key-value store
const std::string& SmallbankCasm();      // OLTP bank procedures
const std::string& EtherIdCasm();        // domain-name registrar
const std::string& DoublerCasm();        // the Fig 2 pyramid scheme
const std::string& WavesPresaleCasm();   // token crowd-sale
const std::string& DoNothingCasm();      // consensus-layer microbench
const std::string& IoHeavyCasm();        // bulk random reads/writes
const std::string& CpuHeavyCasm();       // in-VM quicksort

// --- Native chaincode registry names -------------------------------------
// Registered in ChaincodeRegistry by RegisterAllChaincodes() (called at
// static init; callable again harmlessly).
inline constexpr char kKvStoreChaincode[] = "cc_kvstore";
inline constexpr char kSmallbankChaincode[] = "cc_smallbank";
inline constexpr char kEtherIdChaincode[] = "cc_etherid";
inline constexpr char kDoublerChaincode[] = "cc_doubler";
inline constexpr char kWavesPresaleChaincode[] = "cc_wavespresale";
inline constexpr char kDoNothingChaincode[] = "cc_donothing";
inline constexpr char kIoHeavyChaincode[] = "cc_ioheavy";
inline constexpr char kCpuHeavyChaincode[] = "cc_cpuheavy";
inline constexpr char kVersionKvChaincode[] = "cc_versionkv";

void RegisterAllChaincodes();

}  // namespace bb::workloads

#endif  // BLOCKBENCH_WORKLOADS_CONTRACTS_H_
