#include "workloads/wavespresale.h"

#include "workloads/contracts.h"

namespace bb::workloads {

WavesPresaleWorkload::WavesPresaleWorkload(WavesPresaleConfig config)
    : config_(config) {
  RegisterAllChaincodes();
}

Status WavesPresaleWorkload::Setup(platform::Platform* platform) {
  BB_RETURN_IF_ERROR(platform->DeployWorkloadContract(
      config_.contract, WavesPresaleCasm(), kWavesPresaleChaincode));
  int64_t total = 0;
  for (uint64_t i = 0; i < config_.preloaded_sales; ++i) {
    std::string id = "sale" + std::to_string(i);
    BB_RETURN_IF_ERROR(
        platform->PreloadState(config_.contract, "so_" + id,
                               vm::Value(std::string("genesis")).Serialize()));
    int64_t tokens = int64_t(i % 500 + 1);
    BB_RETURN_IF_ERROR(platform->PreloadState(
        config_.contract, "st_" + id, vm::Value(tokens).Serialize()));
    total += tokens;
  }
  BB_RETURN_IF_ERROR(platform->PreloadState(config_.contract, "total",
                                            vm::Value(total).Serialize()));
  return platform->FinalizeGenesis();
}

chain::Transaction WavesPresaleWorkload::NextTransaction(uint32_t client_id,
                                                         Rng& rng) {
  chain::Transaction tx;
  tx.contract = config_.contract;
  double p = rng.NextDouble();
  if (p < config_.p_add_sale) {
    // Fresh ids partitioned per client to avoid collisions.
    uint64_t id = uint64_t(client_id) * 1'000'000'000ULL +
                  config_.preloaded_sales + rng.Uniform(1'000'000'000ULL);
    tx.function = "addSale";
    tx.args = {vm::Value("sale" + std::to_string(id)),
               vm::Value(int64_t(rng.Range(1, 1000)))};
  } else if (p < config_.p_add_sale + config_.p_transfer) {
    tx.function = "transferSale";
    tx.args = {
        vm::Value("sale" + std::to_string(rng.Uniform(config_.preloaded_sales))),
        vm::Value("client" + std::to_string(rng.Uniform(64)))};
  } else {
    tx.function = "getSale";
    tx.args = {vm::Value(
        "sale" + std::to_string(rng.Uniform(config_.preloaded_sales)))};
  }
  return tx;
}

}  // namespace bb::workloads
