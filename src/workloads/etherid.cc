#include "workloads/etherid.h"

#include "workloads/contracts.h"

namespace bb::workloads {

EtherIdWorkload::EtherIdWorkload(EtherIdConfig config)
    : config_(config), next_new_domain_(config.preregistered_domains) {
  RegisterAllChaincodes();
}

Status EtherIdWorkload::Setup(platform::Platform* platform) {
  BB_RETURN_IF_ERROR(platform->DeployWorkloadContract(
      config_.contract, EtherIdCasm(), kEtherIdChaincode));
  // Pre-allocate user accounts with balances (the contract's
  // pre-allocation function, run at genesis).
  for (uint64_t c = 0; c < config_.max_clients; ++c) {
    std::string user = "client" + std::to_string(c);
    BB_RETURN_IF_ERROR(platform->PreloadState(
        config_.contract, "b_" + user,
        vm::Value(config_.initial_balance).Serialize()));
  }
  // Pre-register a pool of domains owned by a genesis user.
  for (uint64_t d = 0; d < config_.preregistered_domains; ++d) {
    BB_RETURN_IF_ERROR(
        platform->PreloadState(config_.contract, "d_" + DomainName(d),
                               vm::Value(std::string("genesis")).Serialize()));
    BB_RETURN_IF_ERROR(platform->PreloadState(
        config_.contract, "p_" + DomainName(d),
        vm::Value(int64_t(d % 1000 + 1)).Serialize()));
  }
  return platform->FinalizeGenesis();
}

chain::Transaction EtherIdWorkload::NextTransaction(uint32_t client_id,
                                                    Rng& rng) {
  (void)client_id;
  chain::Transaction tx;
  tx.contract = config_.contract;
  double p = rng.NextDouble();
  if (p < config_.p_register) {
    // Each registration targets a fresh name; collisions across clients
    // are tolerated (the contract reverts, which the framework counts).
    uint64_t d = next_new_domain_ + rng.Uniform(1'000'000'000);
    tx.function = "register";
    tx.args = {vm::Value(DomainName(d)), vm::Value(int64_t(rng.Range(1, 500)))};
  } else if (p < config_.p_register + config_.p_buy) {
    tx.function = "buy";
    tx.args = {vm::Value(DomainName(rng.Uniform(config_.preregistered_domains)))};
  } else {
    tx.function = "setPrice";
    tx.args = {vm::Value(DomainName(rng.Uniform(config_.preregistered_domains))),
               vm::Value(int64_t(rng.Range(1, 500)))};
  }
  return tx;
}

}  // namespace bb::workloads
