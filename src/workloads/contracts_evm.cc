#include "workloads/contracts.h"

// EVM-assembly contract sources. Stack-effect comments show
// bottom -> top after the instruction.

namespace bb::workloads {

const std::string& KvStoreCasm() {
  static const std::string kSrc = R"(
; YCSB key-value store contract.
.func write
  ARG 0                ; key
  ARG 1                ; key value
  SSTORE
  STOP
.func read
  ARG 0
  SLOAD
  RETURN
.func remove
  ARG 0
  SDELETE
  STOP
.func readmodifywrite
  ARG 0
  SLOAD
  POP
  ARG 0
  ARG 1
  SSTORE
  STOP
.func write2             ; (k1, v1, k2, v2): two-key write, the
  ARG 0                  ; cross-shard workload operation
  ARG 1
  SSTORE
  ARG 2
  ARG 3
  SSTORE
  STOP
)";
  return kSrc;
}

const std::string& SmallbankCasm() {
  static const std::string kSrc = R"(
; Smallbank OLTP contract. Accounts keep a savings ("s_<acct>") and a
; checking ("c_<acct>") balance.
.func getBalance          ; (acct) -> savings + checking
  PUSHS "s_"
  ARG 0
  CONCAT
  SLOAD
  PUSHS "c_"
  ARG 0
  CONCAT
  SLOAD
  ADD
  RETURN
.func depositChecking     ; (acct, amount)
  PUSHS "c_"
  ARG 0
  CONCAT                 ; key
  DUP 0
  SLOAD                  ; key bal
  ARG 1
  ADD                    ; key bal+v
  SSTORE
  STOP
.func transactSavings     ; (acct, amount) - reverts if result < 0
  PUSHS "s_"
  ARG 0
  CONCAT
  DUP 0
  SLOAD
  ARG 1
  ADD                    ; key newbal
  DUP 0
  PUSH 0
  LT                     ; key newbal (newbal<0)
  JUMPI ts_fail
  SSTORE
  STOP
ts_fail:
  PUSHS "insufficient savings"
  REVERT
.func sendPayment         ; (from, to, amount) - reverts on overdraft
  PUSHS "c_"
  ARG 0
  CONCAT                 ; ka
  DUP 0
  SLOAD                  ; ka bal
  ARG 2
  SUB                    ; ka newa
  DUP 0
  PUSH 0
  LT
  JUMPI sp_fail          ; ka newa
  SSTORE
  PUSHS "c_"
  ARG 1
  CONCAT
  DUP 0
  SLOAD
  ARG 2
  ADD
  SSTORE
  STOP
sp_fail:
  PUSHS "insufficient funds"
  REVERT
.func writeCheck          ; (acct, amount)
  PUSHS "c_"
  ARG 0
  CONCAT
  DUP 0
  SLOAD
  ARG 1
  SUB
  SSTORE
  STOP
.func amalgamate          ; (from, to): move all funds of from into to's checking
  PUSHS "s_"
  ARG 0
  CONCAT                 ; ks
  DUP 0
  SLOAD                  ; ks s
  SWAP 1                 ; s ks
  PUSH 0
  SSTORE                 ; s
  PUSHS "c_"
  ARG 0
  CONCAT                 ; s kc
  DUP 0
  SLOAD                  ; s kc c
  SWAP 1                 ; s c kc
  PUSH 0
  SSTORE                 ; s c
  ADD                    ; total
  PUSHS "c_"
  ARG 1
  CONCAT                 ; total kb
  DUP 0
  SLOAD                  ; total kb bal
  DUP 2                  ; total kb bal total
  ADD                    ; total kb bal+total
  SSTORE                 ; total
  POP
  STOP
)";
  return kSrc;
}

const std::string& EtherIdCasm() {
  static const std::string kSrc = R"(
; EtherId domain-name registrar. Domains: owner "d_<dom>", price
; "p_<dom>"; user balances "b_<user>" (pre-allocated by the workload).
.func register            ; (domain, price)
  PUSHS "d_"
  ARG 0
  CONCAT                 ; kd
  DUP 0
  SEXISTS
  JUMPI reg_exists       ; kd
  DUP 0
  CALLER
  SSTORE                 ; kd
  POP
  PUSHS "p_"
  ARG 0
  CONCAT
  ARG 1
  SSTORE
  STOP
reg_exists:
  PUSHS "domain taken"
  REVERT
.func buy                 ; (domain): pay the current owner the price
  PUSHS "p_"
  ARG 0
  CONCAT
  SLOAD                  ; price
  PUSHS "b_"
  CALLER
  CONCAT                 ; price kb
  DUP 0
  SLOAD                  ; price kb bal
  DUP 2                  ; price kb bal price
  SWAP 1                 ; price kb price bal
  GT                     ; price kb (price>bal)
  JUMPI buy_fail
  DUP 0
  SLOAD                  ; price kb bal
  DUP 2                  ; price kb bal price
  SUB                    ; price kb bal-price
  SSTORE                 ; price
  PUSHS "b_"
  PUSHS "d_"
  ARG 0
  CONCAT
  SLOAD                  ; price "b_" owner
  CONCAT                 ; price kowner
  DUP 0
  SLOAD                  ; price kowner obal
  DUP 2                  ; price kowner obal price
  ADD
  SSTORE                 ; price
  POP
  PUSHS "d_"
  ARG 0
  CONCAT
  CALLER
  SSTORE
  STOP
buy_fail:
  PUSHS "insufficient balance"
  REVERT
.func setPrice            ; (domain, price): owner-only modification
  PUSHS "d_"
  ARG 0
  CONCAT
  SLOAD                  ; owner
  CALLER
  NE
  JUMPI setp_fail
  PUSHS "p_"
  ARG 0
  CONCAT
  ARG 1
  SSTORE
  STOP
setp_fail:
  PUSHS "not owner"
  REVERT
.func ownerOf             ; (domain) -> owner
  PUSHS "d_"
  ARG 0
  CONCAT
  SLOAD
  RETURN
)";
  return kSrc;
}

const std::string& DoublerCasm() {
  static const std::string kSrc = R"(
; Doubler pyramid scheme (Fig 2). Participants: address "a_<i>",
; contribution "m_<i>"; counters "n", "payout"; pool "balance".
.func enter
  PUSHS "n"
  SLOAD                  ; n
  DUP 0
  PUSHS "a_"
  SWAP 1
  CONCAT                 ; n "a_n"
  CALLER
  SSTORE                 ; n
  DUP 0
  PUSHS "m_"
  SWAP 1
  CONCAT
  TXVALUE
  SSTORE                 ; n
  PUSH 1
  ADD
  PUSHS "n"
  SWAP 1
  SSTORE
  PUSHS "balance"
  DUP 0
  SLOAD
  TXVALUE
  ADD
  SSTORE
payout_loop:
  PUSHS "payout"
  SLOAD                  ; idx
  DUP 0
  PUSHS "n"
  SLOAD                  ; idx idx n
  GE                     ; idx (idx>=n)
  JUMPI done_pop
  DUP 0
  PUSHS "m_"
  SWAP 1
  CONCAT
  SLOAD                  ; idx amt
  DUP 0
  PUSH 2
  MUL                    ; idx amt 2amt
  PUSHS "balance"
  SLOAD                  ; idx amt 2amt bal
  SWAP 1                 ; idx amt bal 2amt
  GT                     ; idx amt (bal>2amt)
  NOT
  JUMPI done_pop2
  DUP 0
  PUSH 2
  MUL                    ; idx amt pay
  DUP 2                  ; idx amt pay idx
  PUSHS "a_"
  SWAP 1
  CONCAT                 ; idx amt pay a_idx
  SLOAD                  ; idx amt pay addr
  SWAP 1                 ; idx amt addr pay
  SEND                   ; idx amt
  PUSHS "balance"
  DUP 0
  SLOAD                  ; idx amt kbal bal
  DUP 2                  ; idx amt kbal bal amt
  PUSH 2
  MUL
  SUB                    ; idx amt kbal bal-pay
  SSTORE                 ; idx amt
  POP                    ; idx
  PUSH 1
  ADD
  PUSHS "payout"
  SWAP 1
  SSTORE
  JUMP payout_loop
done_pop2:
  POP
done_pop:
  POP
  STOP
.func participants       ; () -> number of participants
  PUSHS "n"
  SLOAD
  RETURN
)";
  return kSrc;
}

const std::string& WavesPresaleCasm() {
  static const std::string kSrc = R"(
; WavesPresale token crowd-sale: sale owner "so_<id>", tokens "st_<id>",
; aggregate "total".
.func addSale             ; (id, tokens)
  PUSHS "so_"
  ARG 0
  CONCAT
  DUP 0
  SEXISTS
  JUMPI ws_exists
  CALLER
  SSTORE
  PUSHS "st_"
  ARG 0
  CONCAT
  ARG 1
  SSTORE
  PUSHS "total"
  DUP 0
  SLOAD
  ARG 1
  ADD
  SSTORE
  STOP
ws_exists:
  PUSHS "sale exists"
  REVERT
.func transferSale        ; (id, newOwner): owner-only
  PUSHS "so_"
  ARG 0
  CONCAT                 ; k
  DUP 0
  SLOAD                  ; k owner
  CALLER
  NE
  JUMPI ws_notown
  ARG 1
  SSTORE
  STOP
ws_notown:
  PUSHS "not owner"
  REVERT
.func getSale             ; (id) -> tokens
  PUSHS "st_"
  ARG 0
  CONCAT
  SLOAD
  RETURN
.func totalSold
  PUSHS "total"
  SLOAD
  RETURN
)";
  return kSrc;
}

const std::string& DoNothingCasm() {
  static const std::string kSrc = R"(
; DoNothing: accepts a transaction and returns immediately.
.func nop
  STOP
)";
  return kSrc;
}

const std::string& IoHeavyCasm() {
  static const std::string kSrc = R"(
; IOHeavy: bulk random state writes and reads. Keys "k_<num>", values are
; a 100-byte constant payload (matching the paper's 100-byte values).
.func writes              ; (start, count)
  PUSH 0                 ; i
iow_loop:
  DUP 0
  ARG 1
  GE
  JUMPI iow_done         ; i
  DUP 0
  ARG 0
  ADD                    ; i keynum
  PUSHS "k_"
  SWAP 1
  CONCAT                 ; i key
  PUSHS "0123456789012345678901234567890123456789012345678901234567890123456789012345678901234567890123456789"
  SSTORE                 ; i
  PUSH 1
  ADD
  JUMP iow_loop
iow_done:
  POP
  STOP
.func reads               ; (start, count)
  PUSH 0
ior_loop:
  DUP 0
  ARG 1
  GE
  JUMPI ior_done
  DUP 0
  ARG 0
  ADD
  PUSHS "k_"
  SWAP 1
  CONCAT
  SLOAD
  POP
  PUSH 1
  ADD
  JUMP ior_loop
ior_done:
  POP
  STOP
)";
  return kSrc;
}

const std::string& CpuHeavyCasm() {
  // In-VM iterative quicksort (Hoare partition, middle pivot) over an
  // array initialized in descending order. Memory layout for sort(n):
  //   mem[0..n-1]  the array
  //   mem[n]       frame stack pointer
  //   mem[n+1]     lo     mem[n+2] hi    mem[n+3] i
  //   mem[n+4]     j      mem[n+5] pivot
  //   mem[n+6...]  frame stack: [hi, lo] per frame
  static const std::string kSrc = R"(
.func sort                ; (n) -> mem[0] after sorting (== 1)
  PUSH 0                 ; i
init_loop:
  DUP 0
  ARG 0
  GE
  JUMPI init_done        ; i
  DUP 0                  ; i i(addr)
  ARG 0
  DUP 2
  SUB                    ; i i n-i
  MSTORE                 ; i
  PUSH 1
  ADD
  JUMP init_loop
init_done:
  POP
  ; sp = n+6
  ARG 0
  ARG 0
  PUSH 6
  ADD
  MSTORE
  ; push initial frame (0, n-1)
  PUSH 0
  ARG 0
  PUSH 1
  SUB                    ; lo hi
  ARG 0
  MLOAD                  ; lo hi sp
  DUP 0
  PUSH 1
  ADD                    ; lo hi sp sp1
  SWAP 2                 ; lo sp1 sp hi
  MSTORE                 ; lo sp1
  SWAP 1                 ; sp1 lo
  MSTORE
  ARG 0
  ARG 0
  MLOAD
  PUSH 2
  ADD
  MSTORE                 ; sp += 2
main_loop:
  ARG 0
  MLOAD
  ARG 0
  PUSH 6
  ADD
  GT                     ; sp > base?
  NOT
  JUMPI sort_done
  ; pop frame -> lo hi
  ARG 0
  MLOAD
  PUSH 2
  SUB                    ; fb (frame base)
  DUP 0
  PUSH 1
  ADD
  MLOAD                  ; fb lo
  SWAP 1                 ; lo fb
  DUP 0
  MLOAD                  ; lo fb hi
  SWAP 1                 ; lo hi fb
  ARG 0
  SWAP 1                 ; lo hi n fb
  MSTORE                 ; lo hi      (sp -= 2)
  ; if lo >= hi: continue
  DUP 1
  DUP 1                  ; lo hi lo hi
  GE
  JUMPI skip_pop2        ; lo hi
  ; spill lo, hi
  ARG 0
  PUSH 2
  ADD                    ; lo hi a_hi
  SWAP 1
  MSTORE                 ; lo
  ARG 0
  PUSH 1
  ADD
  SWAP 1
  MSTORE
  ; pivot = mem[(lo+hi)/2]
  ARG 0
  PUSH 5
  ADD                    ; a_piv
  ARG 0
  PUSH 1
  ADD
  MLOAD                  ; a_piv lo
  ARG 0
  PUSH 2
  ADD
  MLOAD                  ; a_piv lo hi
  ADD
  PUSH 2
  DIV                    ; a_piv mid
  MLOAD                  ; a_piv mem[mid]
  MSTORE
  ; i = lo-1, j = hi+1
  ARG 0
  PUSH 3
  ADD
  ARG 0
  PUSH 1
  ADD
  MLOAD
  PUSH 1
  SUB
  MSTORE
  ARG 0
  PUSH 4
  ADD
  ARG 0
  PUSH 2
  ADD
  MLOAD
  PUSH 1
  ADD
  MSTORE
hoare_loop:
i_loop:
  ; i++
  ARG 0
  PUSH 3
  ADD
  DUP 0
  MLOAD
  PUSH 1
  ADD
  MSTORE
  ; while mem[i] < pivot
  ARG 0
  PUSH 3
  ADD
  MLOAD
  MLOAD                  ; mem[i]
  ARG 0
  PUSH 5
  ADD
  MLOAD                  ; mem[i] pivot
  LT
  JUMPI i_loop
j_loop:
  ; j--
  ARG 0
  PUSH 4
  ADD
  DUP 0
  MLOAD
  PUSH 1
  SUB
  MSTORE
  ; while mem[j] > pivot
  ARG 0
  PUSH 4
  ADD
  MLOAD
  MLOAD
  ARG 0
  PUSH 5
  ADD
  MLOAD
  GT
  JUMPI j_loop
  ; if i >= j: partition done
  ARG 0
  PUSH 3
  ADD
  MLOAD
  ARG 0
  PUSH 4
  ADD
  MLOAD
  GE
  JUMPI part_done
  ; swap mem[i] <-> mem[j]
  ARG 0
  PUSH 3
  ADD
  MLOAD
  MLOAD                  ; vi
  ARG 0
  PUSH 4
  ADD
  MLOAD
  MLOAD                  ; vi vj
  ARG 0
  PUSH 3
  ADD
  MLOAD                  ; vi vj ai
  SWAP 1                 ; vi ai vj
  MSTORE                 ; vi
  ARG 0
  PUSH 4
  ADD
  MLOAD                  ; vi aj
  SWAP 1                 ; aj vi
  MSTORE
  JUMP hoare_loop
part_done:
  ; push (lo, j)
  ARG 0
  PUSH 1
  ADD
  MLOAD                  ; lo
  ARG 0
  PUSH 4
  ADD
  MLOAD                  ; lo j
  ARG 0
  MLOAD                  ; lo j sp
  DUP 0
  PUSH 1
  ADD
  SWAP 2                 ; lo sp1 sp j
  MSTORE                 ; lo sp1
  SWAP 1
  MSTORE
  ARG 0
  ARG 0
  MLOAD
  PUSH 2
  ADD
  MSTORE
  ; push (j+1, hi)
  ARG 0
  PUSH 4
  ADD
  MLOAD
  PUSH 1
  ADD                    ; j+1
  ARG 0
  PUSH 2
  ADD
  MLOAD                  ; j+1 hi
  ARG 0
  MLOAD
  DUP 0
  PUSH 1
  ADD
  SWAP 2
  MSTORE
  SWAP 1
  MSTORE
  ARG 0
  ARG 0
  MLOAD
  PUSH 2
  ADD
  MSTORE
  JUMP main_loop
skip_pop2:
  POP
  POP
  JUMP main_loop
sort_done:
  PUSH 0
  MLOAD
  RETURN
)";
  return kSrc;
}

}  // namespace bb::workloads
