// Doubler workload: participants repeatedly enter the Fig 2 pyramid
// scheme with random contributions.

#ifndef BLOCKBENCH_WORKLOADS_DOUBLER_H_
#define BLOCKBENCH_WORKLOADS_DOUBLER_H_

#include "core/connector.h"

namespace bb::workloads {

struct DoublerConfig {
  int64_t min_contribution = 10;
  int64_t max_contribution = 1000;
  std::string contract = "doubler";
};

class DoublerWorkload : public core::WorkloadConnector {
 public:
  explicit DoublerWorkload(DoublerConfig config = {});

  Status Setup(platform::Platform* platform) override;
  chain::Transaction NextTransaction(uint32_t client_id, Rng& rng) override;
  std::string name() const override { return "doubler"; }

 private:
  DoublerConfig config_;
};

}  // namespace bb::workloads

#endif  // BLOCKBENCH_WORKLOADS_DOUBLER_H_
