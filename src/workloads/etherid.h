// EtherId workload: domain-name registrar operations (creation,
// ownership transfer by purchase, modification), with user accounts
// pre-allocated with balances as the paper's port does.

#ifndef BLOCKBENCH_WORKLOADS_ETHERID_H_
#define BLOCKBENCH_WORKLOADS_ETHERID_H_

#include "core/connector.h"

namespace bb::workloads {

struct EtherIdConfig {
  uint64_t preregistered_domains = 5'000;
  uint64_t max_clients = 64;
  int64_t initial_balance = 1'000'000'000;
  double p_register = 0.3;
  double p_buy = 0.4;
  double p_set_price = 0.3;
  std::string contract = "etherid";
};

class EtherIdWorkload : public core::WorkloadConnector {
 public:
  explicit EtherIdWorkload(EtherIdConfig config = {});

  Status Setup(platform::Platform* platform) override;
  chain::Transaction NextTransaction(uint32_t client_id, Rng& rng) override;
  std::string name() const override { return "etherid"; }

  static std::string DomainName(uint64_t n) {
    return "dom" + std::to_string(n);
  }

 private:
  EtherIdConfig config_;
  uint64_t next_new_domain_;
};

}  // namespace bb::workloads

#endif  // BLOCKBENCH_WORKLOADS_ETHERID_H_
