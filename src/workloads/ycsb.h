// YCSB key-value workload (macro benchmark), following the YCSB driver:
// preloads record_count records, then issues a configurable read/update/
// read-modify-write mix over a uniform or (scrambled) Zipfian key
// distribution.

#ifndef BLOCKBENCH_WORKLOADS_YCSB_H_
#define BLOCKBENCH_WORKLOADS_YCSB_H_

#include <memory>

#include "core/connector.h"

namespace bb::workloads {

struct YcsbConfig {
  uint64_t record_count = 20'000;
  double read_proportion = 0.5;
  double update_proportion = 0.5;
  double rmw_proportion = 0.0;
  /// Inserts create fresh keys (client-partitioned id space); deletes
  /// remove previously loaded records. Remainder after all proportions
  /// falls back to reads.
  double insert_proportion = 0.0;
  double delete_proportion = 0.0;
  size_t value_size = 100;
  bool zipfian = true;
  double zipf_theta = 0.99;
  /// Contract deployment name.
  std::string contract = "ycsb";
  /// Sharded platforms only: probability that a transaction touches a
  /// key outside the client's home shard (emitted as a two-key "write2",
  /// one key home, one on another shard). 0 keeps every transaction
  /// single-shard; ignored when the platform is unsharded.
  double cross_shard_ratio = 0.0;
};

class YcsbWorkload : public core::WorkloadConnector {
 public:
  explicit YcsbWorkload(YcsbConfig config = {});
  ~YcsbWorkload() override;

  Status Setup(platform::Platform* platform) override;
  chain::Transaction NextTransaction(uint32_t client_id, Rng& rng) override;
  std::vector<std::string> TouchedKeys(
      const chain::Transaction& tx) const override;
  std::string name() const override { return "ycsb"; }

  /// Key for record `n` ("userXXXXXXXX").
  static std::string KeyFor(uint64_t n);

 private:
  uint64_t NextKeyNum(Rng& rng);
  /// Shard-aware draw: rejection-samples NextKeyNum until the key hashes
  /// to `shard`.
  uint64_t NextKeyNumInShard(Rng& rng, uint32_t shard);

  YcsbConfig config_;
  std::unique_ptr<ScrambledZipfian> zipf_;
  /// Next fresh key id per client (inserts).
  std::vector<uint64_t> insert_counters_;
  /// Sharding topology, captured at Setup (1 / null when unsharded).
  size_t shards_ = 1;
  const platform::Platform* platform_ = nullptr;
};

}  // namespace bb::workloads

#endif  // BLOCKBENCH_WORKLOADS_YCSB_H_
