// WavesPresale workload: digital token sales — new sales, ownership
// transfers of previous sales, and sale-record queries.

#ifndef BLOCKBENCH_WORKLOADS_WAVESPRESALE_H_
#define BLOCKBENCH_WORKLOADS_WAVESPRESALE_H_

#include "core/connector.h"

namespace bb::workloads {

struct WavesPresaleConfig {
  uint64_t preloaded_sales = 2'000;
  double p_add_sale = 0.5;
  double p_transfer = 0.3;  // remainder: getSale queries
  std::string contract = "wavespresale";
};

class WavesPresaleWorkload : public core::WorkloadConnector {
 public:
  explicit WavesPresaleWorkload(WavesPresaleConfig config = {});

  Status Setup(platform::Platform* platform) override;
  chain::Transaction NextTransaction(uint32_t client_id, Rng& rng) override;
  std::string name() const override { return "wavespresale"; }

 private:
  WavesPresaleConfig config_;
};

}  // namespace bb::workloads

#endif  // BLOCKBENCH_WORKLOADS_WAVESPRESALE_H_
