#include <algorithm>
#include <vector>

#include "workloads/contracts.h"

#include "vm/native.h"

// Native ("Golang version") chaincode. Each class talks to the ledger
// only through GetState/PutState on the stub, mirroring the restricted
// Fabric development interface the paper describes. State encodings match
// the EVM contracts exactly (vm::Value wire form), so both builds of a
// contract are differentially testable.

namespace bb::workloads {

namespace {

using vm::Chaincode;
using vm::HostInterface;
using vm::TxContext;
using vm::Value;

// Shared helpers: integer state slots default to 0 when absent.
int64_t GetInt(HostInterface* stub, const std::string& key) {
  std::string raw;
  if (!stub->GetState(key, &raw).ok()) return 0;
  auto v = Value::Deserialize(raw);
  return v.ok() && v->is_int() ? v->AsInt() : 0;
}

void PutInt(HostInterface* stub, const std::string& key, int64_t v) {
  stub->PutState(key, Value(v).Serialize());
}

std::string GetStr(HostInterface* stub, const std::string& key) {
  std::string raw;
  if (!stub->GetState(key, &raw).ok()) return "";
  auto v = Value::Deserialize(raw);
  return v.ok() && v->is_str() ? v->AsStr() : "";
}

void PutStr(HostInterface* stub, const std::string& key,
            const std::string& v) {
  stub->PutState(key, Value(v).Serialize());
}

Status NeedArgs(const TxContext& ctx, size_t n) {
  if (ctx.args.size() < n) {
    return Status::InvalidArgument(ctx.function + ": missing arguments");
  }
  return Status::Ok();
}

std::string ArgStr(const TxContext& ctx, size_t i) {
  const Value& v = ctx.args[i];
  return v.is_str() ? v.AsStr() : std::to_string(v.AsInt());
}

int64_t ArgInt(const TxContext& ctx, size_t i) {
  const Value& v = ctx.args[i];
  return v.is_int() ? v.AsInt() : 0;
}

// --- YCSB key-value store ---------------------------------------------------

class KvStoreChaincode : public Chaincode {
 public:
  Status Invoke(const TxContext& ctx, HostInterface* stub,
                Value* result) override {
    if (ctx.function == "write") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      stub->PutState(ArgStr(ctx, 0), ctx.args[1].Serialize());
      *result = Value(int64_t{0});
      return Status::Ok();
    }
    if (ctx.function == "read") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 1));
      std::string raw;
      if (!stub->GetState(ArgStr(ctx, 0), &raw).ok()) {
        *result = Value(int64_t{0});
        return Status::Ok();
      }
      auto v = Value::Deserialize(raw);
      if (!v.ok()) return v.status();
      *result = std::move(*v);
      return Status::Ok();
    }
    if (ctx.function == "remove") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 1));
      stub->DeleteState(ArgStr(ctx, 0));
      *result = Value(int64_t{0});
      return Status::Ok();
    }
    if (ctx.function == "readmodifywrite") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      std::string raw;
      stub->GetState(ArgStr(ctx, 0), &raw);
      stub->PutState(ArgStr(ctx, 0), ctx.args[1].Serialize());
      *result = Value(int64_t{0});
      return Status::Ok();
    }
    if (ctx.function == "write2") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 4));
      stub->PutState(ArgStr(ctx, 0), ctx.args[1].Serialize());
      stub->PutState(ArgStr(ctx, 2), ctx.args[3].Serialize());
      *result = Value(int64_t{0});
      return Status::Ok();
    }
    return Status::InvalidArgument("kvstore: unknown function " + ctx.function);
  }
};

// --- Smallbank ---------------------------------------------------------------

class SmallbankChaincode : public Chaincode {
 public:
  Status Invoke(const TxContext& ctx, HostInterface* stub,
                Value* result) override {
    *result = Value(int64_t{0});
    if (ctx.function == "getBalance") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 1));
      std::string a = ArgStr(ctx, 0);
      *result = Value(GetInt(stub, "s_" + a) + GetInt(stub, "c_" + a));
      return Status::Ok();
    }
    if (ctx.function == "depositChecking") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      std::string k = "c_" + ArgStr(ctx, 0);
      PutInt(stub, k, GetInt(stub, k) + ArgInt(ctx, 1));
      return Status::Ok();
    }
    if (ctx.function == "transactSavings") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      std::string k = "s_" + ArgStr(ctx, 0);
      int64_t nb = GetInt(stub, k) + ArgInt(ctx, 1);
      if (nb < 0) return Status::Reverted("insufficient savings");
      PutInt(stub, k, nb);
      return Status::Ok();
    }
    if (ctx.function == "sendPayment") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 3));
      std::string ka = "c_" + ArgStr(ctx, 0);
      std::string kb = "c_" + ArgStr(ctx, 1);
      int64_t v = ArgInt(ctx, 2);
      int64_t na = GetInt(stub, ka) - v;
      if (na < 0) return Status::Reverted("insufficient funds");
      PutInt(stub, ka, na);
      PutInt(stub, kb, GetInt(stub, kb) + v);
      return Status::Ok();
    }
    if (ctx.function == "writeCheck") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      std::string k = "c_" + ArgStr(ctx, 0);
      PutInt(stub, k, GetInt(stub, k) - ArgInt(ctx, 1));
      return Status::Ok();
    }
    if (ctx.function == "amalgamate") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      std::string a = ArgStr(ctx, 0), b = ArgStr(ctx, 1);
      int64_t total = GetInt(stub, "s_" + a) + GetInt(stub, "c_" + a);
      PutInt(stub, "s_" + a, 0);
      PutInt(stub, "c_" + a, 0);
      PutInt(stub, "c_" + b, GetInt(stub, "c_" + b) + total);
      return Status::Ok();
    }
    return Status::InvalidArgument("smallbank: unknown function " +
                                   ctx.function);
  }
};

// --- EtherId -------------------------------------------------------------------
// Two key-value namespaces, as the paper describes the Hyperledger port:
// domain data ("d_", "p_") and account balances ("b_").

class EtherIdChaincode : public Chaincode {
 public:
  Status Invoke(const TxContext& ctx, HostInterface* stub,
                Value* result) override {
    *result = Value(int64_t{0});
    if (ctx.function == "register") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      std::string kd = "d_" + ArgStr(ctx, 0);
      std::string tmp;
      if (stub->GetState(kd, &tmp).ok()) {
        return Status::Reverted("domain taken");
      }
      PutStr(stub, kd, ctx.sender);
      PutInt(stub, "p_" + ArgStr(ctx, 0), ArgInt(ctx, 1));
      return Status::Ok();
    }
    if (ctx.function == "buy") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 1));
      std::string dom = ArgStr(ctx, 0);
      int64_t price = GetInt(stub, "p_" + dom);
      std::string kb = "b_" + ctx.sender;
      int64_t bal = GetInt(stub, kb);
      if (price > bal) return Status::Reverted("insufficient balance");
      PutInt(stub, kb, bal - price);
      std::string owner = GetStr(stub, "d_" + dom);
      if (owner.empty()) owner = "0";  // EVM build coerces int 0 the same way
      std::string ko = "b_" + owner;
      PutInt(stub, ko, GetInt(stub, ko) + price);
      PutStr(stub, "d_" + dom, ctx.sender);
      return Status::Ok();
    }
    if (ctx.function == "setPrice") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      std::string dom = ArgStr(ctx, 0);
      if (GetStr(stub, "d_" + dom) != ctx.sender) {
        return Status::Reverted("not owner");
      }
      PutInt(stub, "p_" + dom, ArgInt(ctx, 1));
      return Status::Ok();
    }
    if (ctx.function == "ownerOf") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 1));
      *result = Value(GetStr(stub, "d_" + ArgStr(ctx, 0)));
      return Status::Ok();
    }
    return Status::InvalidArgument("etherid: unknown function " +
                                   ctx.function);
  }
};

// --- Doubler --------------------------------------------------------------------
// The paper notes list operations must be translated into key-value
// semantics, "making the chaincode more bulky than the Ethereum
// counterpart" — the explicit indexed keys below are that translation.

class DoublerChaincode : public Chaincode {
 public:
  Status Invoke(const TxContext& ctx, HostInterface* stub,
                Value* result) override {
    *result = Value(int64_t{0});
    if (ctx.function == "participants") {
      *result = Value(GetInt(stub, "n"));
      return Status::Ok();
    }
    if (ctx.function != "enter") {
      return Status::InvalidArgument("doubler: unknown function " +
                                     ctx.function);
    }
    int64_t n = GetInt(stub, "n");
    PutStr(stub, "a_" + std::to_string(n), ctx.sender);
    PutInt(stub, "m_" + std::to_string(n), ctx.value);
    PutInt(stub, "n", n + 1);
    int64_t balance = GetInt(stub, "balance") + ctx.value;
    PutInt(stub, "balance", balance);

    int64_t payout = GetInt(stub, "payout");
    while (payout < n + 1) {
      int64_t amt = GetInt(stub, "m_" + std::to_string(payout));
      if (balance <= 2 * amt) break;
      int64_t pay = 2 * amt;
      stub->Transfer(GetStr(stub, "a_" + std::to_string(payout)), pay);
      balance -= pay;
      PutInt(stub, "balance", balance);
      ++payout;
      PutInt(stub, "payout", payout);
    }
    return Status::Ok();
  }
};

// --- WavesPresale ----------------------------------------------------------------

class WavesPresaleChaincode : public Chaincode {
 public:
  Status Invoke(const TxContext& ctx, HostInterface* stub,
                Value* result) override {
    *result = Value(int64_t{0});
    if (ctx.function == "addSale") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      std::string id = ArgStr(ctx, 0);
      std::string tmp;
      if (stub->GetState("so_" + id, &tmp).ok()) {
        return Status::Reverted("sale exists");
      }
      PutStr(stub, "so_" + id, ctx.sender);
      PutInt(stub, "st_" + id, ArgInt(ctx, 1));
      PutInt(stub, "total", GetInt(stub, "total") + ArgInt(ctx, 1));
      return Status::Ok();
    }
    if (ctx.function == "transferSale") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      std::string id = ArgStr(ctx, 0);
      if (GetStr(stub, "so_" + id) != ctx.sender) {
        return Status::Reverted("not owner");
      }
      PutStr(stub, "so_" + id, ArgStr(ctx, 1));
      return Status::Ok();
    }
    if (ctx.function == "getSale") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 1));
      *result = Value(GetInt(stub, "st_" + ArgStr(ctx, 0)));
      return Status::Ok();
    }
    if (ctx.function == "totalSold") {
      *result = Value(GetInt(stub, "total"));
      return Status::Ok();
    }
    return Status::InvalidArgument("wavespresale: unknown function " +
                                   ctx.function);
  }
};

// --- DoNothing -------------------------------------------------------------------

class DoNothingChaincode : public Chaincode {
 public:
  Status Invoke(const TxContext& ctx, HostInterface*, Value* result) override {
    (void)ctx;
    *result = Value(int64_t{0});
    return Status::Ok();
  }
};

// --- IOHeavy ---------------------------------------------------------------------

class IoHeavyChaincode : public Chaincode {
 public:
  Status Invoke(const TxContext& ctx, HostInterface* stub,
                Value* result) override {
    *result = Value(int64_t{0});
    // Must match the EVM build's payload byte-for-byte (differential
    // tests compare final state).
    static const std::string kPayload =
        "01234567890123456789012345678901234567890123456789"
        "01234567890123456789012345678901234567890123456789";
    if (ctx.function == "writes") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      int64_t start = ArgInt(ctx, 0), count = ArgInt(ctx, 1);
      for (int64_t i = 0; i < count; ++i) {
        PutStr(stub, "k_" + std::to_string(start + i), kPayload);
      }
      return Status::Ok();
    }
    if (ctx.function == "reads") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      int64_t start = ArgInt(ctx, 0), count = ArgInt(ctx, 1);
      std::string raw;
      for (int64_t i = 0; i < count; ++i) {
        stub->GetState("k_" + std::to_string(start + i), &raw);
      }
      return Status::Ok();
    }
    return Status::InvalidArgument("ioheavy: unknown function " +
                                   ctx.function);
  }
};

// --- CPUHeavy --------------------------------------------------------------------
// Native machine code inside the "Docker image": the same quicksort the
// EVM build runs, compiled.

class CpuHeavyChaincode : public Chaincode {
 public:
  Status Invoke(const TxContext& ctx, HostInterface*,
                Value* result) override {
    if (ctx.function != "sort") {
      return Status::InvalidArgument("cpuheavy: unknown function " +
                                     ctx.function);
    }
    BB_RETURN_IF_ERROR(NeedArgs(ctx, 1));
    int64_t n = ArgInt(ctx, 0);
    if (n < 1) return Status::InvalidArgument("sort: n must be >= 1");
    std::vector<int64_t> a(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) a[size_t(i)] = n - i;
    Quicksort(a);
    *result = Value(a[0]);
    return Status::Ok();
  }

 private:
  static void Quicksort(std::vector<int64_t>& a) {
    std::vector<std::pair<int64_t, int64_t>> stack;
    stack.emplace_back(0, int64_t(a.size()) - 1);
    while (!stack.empty()) {
      auto [lo, hi] = stack.back();
      stack.pop_back();
      if (lo >= hi) continue;
      int64_t pivot = a[size_t((lo + hi) / 2)];
      int64_t i = lo - 1, j = hi + 1;
      while (true) {
        do { ++i; } while (a[size_t(i)] < pivot);
        do { --j; } while (a[size_t(j)] > pivot);
        if (i >= j) break;
        std::swap(a[size_t(i)], a[size_t(j)]);
      }
      stack.emplace_back(lo, j);
      stack.emplace_back(j + 1, hi);
    }
  }
};

// --- VersionKVStore (Hyperledger only, Fig 20) -----------------------------------
// Keeps every version of an account's balance keyed account:version with
// the committing block recorded, so analytical Q2 can run server-side in
// one round trip despite the bucket state model having no history.

class VersionKvChaincode : public Chaincode {
 public:
  Status Invoke(const TxContext& ctx, HostInterface* stub,
                Value* result) override {
    *result = Value(int64_t{0});
    if (ctx.function == "sendValue") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 3));
      std::string from = ArgStr(ctx, 0), to = ArgStr(ctx, 1);
      int64_t v = ArgInt(ctx, 2);
      AppendVersion(stub, from, -v, int64_t(ctx.block_height));
      AppendVersion(stub, to, v, int64_t(ctx.block_height));
      return Status::Ok();
    }
    if (ctx.function == "init") {
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 2));
      AppendVersion(stub, ArgStr(ctx, 0), ArgInt(ctx, 1),
                    int64_t(ctx.block_height));
      return Status::Ok();
    }
    if (ctx.function == "maxBalanceInRange") {
      // Q2: largest balance of `account` committed in (start, end].
      BB_RETURN_IF_ERROR(NeedArgs(ctx, 3));
      std::string account = ArgStr(ctx, 0);
      int64_t start = ArgInt(ctx, 1), end = ArgInt(ctx, 2);
      int64_t version = GetInt(stub, account + ":latest");
      int64_t best = 0;
      bool found = false;
      while (version >= 1) {
        std::string base = account + ":" + std::to_string(version);
        int64_t commit_block = GetInt(stub, base + ":blk");
        if (commit_block < start) break;
        if (commit_block <= end) {
          int64_t bal = GetInt(stub, base + ":bal");
          if (!found || bal > best) best = bal;
          found = true;
        }
        --version;
      }
      *result = Value(best);
      return Status::Ok();
    }
    return Status::InvalidArgument("versionkv: unknown function " +
                                   ctx.function);
  }

 private:
  static void AppendVersion(HostInterface* stub, const std::string& account,
                            int64_t delta, int64_t block) {
    int64_t version = GetInt(stub, account + ":latest");
    int64_t balance =
        version >= 1
            ? GetInt(stub, account + ":" + std::to_string(version) + ":bal")
            : 0;
    ++version;
    std::string base = account + ":" + std::to_string(version);
    PutInt(stub, base + ":bal", balance + delta);
    PutInt(stub, base + ":blk", block);
    PutInt(stub, account + ":latest", version);
  }
};

void DoRegisterAllChaincodes() {
  auto& reg = vm::ChaincodeRegistry::Instance();
  reg.Register(kKvStoreChaincode,
               [] { return std::make_unique<KvStoreChaincode>(); });
  reg.Register(kSmallbankChaincode,
               [] { return std::make_unique<SmallbankChaincode>(); });
  reg.Register(kEtherIdChaincode,
               [] { return std::make_unique<EtherIdChaincode>(); });
  reg.Register(kDoublerChaincode,
               [] { return std::make_unique<DoublerChaincode>(); });
  reg.Register(kWavesPresaleChaincode,
               [] { return std::make_unique<WavesPresaleChaincode>(); });
  reg.Register(kDoNothingChaincode,
               [] { return std::make_unique<DoNothingChaincode>(); });
  reg.Register(kIoHeavyChaincode,
               [] { return std::make_unique<IoHeavyChaincode>(); });
  reg.Register(kCpuHeavyChaincode,
               [] { return std::make_unique<CpuHeavyChaincode>(); });
  reg.Register(kVersionKvChaincode,
               [] { return std::make_unique<VersionKvChaincode>(); });
}

}  // namespace

void RegisterAllChaincodes() {
  // Thread-safe once-only registration (workload constructors may run
  // on SweepRunner worker threads): the magic static runs the lambda
  // exactly once under the C++11 initialization guarantee.
  static const bool registered = [] {
    DoRegisterAllChaincodes();
    return true;
  }();
  (void)registered;
}

}  // namespace bb::workloads
