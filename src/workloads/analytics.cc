#include "workloads/analytics.h"

#include <algorithm>

#include "platform/platform.h"
#include "workloads/contracts.h"

namespace bb::workloads {

namespace {
std::string AccountName(uint64_t n) { return "acct" + std::to_string(n); }
}  // namespace

std::string AnalyticsHotAccount() { return AccountName(0); }

Status SetupAnalyticsChain(platform::Platform* platform,
                           const AnalyticsConfig& config) {
  RegisterAllChaincodes();
  bool native = platform->options().stack.exec_engine ==
                platform::ExecEngineKind::kNative;
  if (native) {
    BB_RETURN_IF_ERROR(
        platform->DeployChaincode("analytics", kVersionKvChaincode));
  } else {
    // Accounts start at balance zero on both engines so Q1/Q2 results
    // are comparable across platforms (the chaincode's implicit first
    // version also starts at 0).
    for (uint64_t a = 0; a < config.num_accounts; ++a) {
      BB_RETURN_IF_ERROR(
          platform->PreloadState("__bal", AccountName(a), "0"));
    }
  }
  BB_RETURN_IF_ERROR(platform->FinalizeGenesis());

  Rng rng(config.seed);
  uint64_t next_id = 1;
  for (uint64_t b = 0; b < config.num_blocks; ++b) {
    std::vector<chain::Transaction> txs;
    for (uint64_t t = 0; t < config.txs_per_block; ++t) {
      uint64_t from = rng.Uniform(config.num_accounts);
      uint64_t to = rng.Bernoulli(config.hot_account_fraction)
                        ? 0
                        : rng.Uniform(config.num_accounts);
      int64_t value = int64_t(rng.Range(1, uint64_t(config.max_transfer)));
      chain::Transaction tx;
      tx.id = next_id++;
      tx.sender = AccountName(from);
      if (native) {
        tx.contract = "analytics";
        tx.function = "sendValue";
        tx.args = {vm::Value(AccountName(from)), vm::Value(AccountName(to)),
                   vm::Value(value)};
      } else {
        tx.contract = AccountName(to);
        tx.value = value;
      }
      txs.push_back(std::move(tx));
    }
    BB_RETURN_IF_ERROR(platform->PreloadBlock(txs));
  }
  return Status::Ok();
}

AnalyticsClient::AnalyticsClient(sim::NodeId id, sim::Network* network,
                                 sim::NodeId server, AnalyticsConfig config)
    : sim::Node(id, network), server_(server), config_(config) {}

void AnalyticsClient::StartQ1(uint64_t from_block, uint64_t to_block) {
  mode_ = Mode::kQ1;
  cursor_ = from_block + 1;
  end_ = to_block;
  result_ = 0;
  result_valid_ = true;
  done_ = false;
  rpcs_issued_ = 0;
  start_time_ = Now();
  SendNextQ1();
}

void AnalyticsClient::SendNextQ1() {
  if (cursor_ > end_) {
    Finish();
    return;
  }
  ++rpcs_issued_;
  Send(server_, "rpc_getblock", platform::RpcGetBlock{next_req_++, cursor_},
       60);
}

void AnalyticsClient::StartQ2(const std::string& account, uint64_t from_block,
                              uint64_t to_block, bool use_chaincode) {
  account_ = account;
  cursor_ = from_block + 1;
  end_ = to_block;
  result_ = 0;
  result_valid_ = false;
  done_ = false;
  rpcs_issued_ = 0;
  inflight_ = 0;
  start_time_ = Now();
  if (use_chaincode) {
    mode_ = Mode::kQ2Chaincode;
    ++rpcs_issued_;
    Send(server_, "rpc_query",
         platform::RpcQuery{next_req_++, "analytics", "maxBalanceInRange",
                            {vm::Value(account),
                             vm::Value(int64_t(from_block + 1)),
                             vm::Value(int64_t(to_block))}},
         140);
  } else {
    mode_ = Mode::kQ2Balance;
    PumpQ2();
  }
}

void AnalyticsClient::PumpQ2() {
  while (inflight_ < std::max<size_t>(1, config_.q2_pipeline) &&
         cursor_ <= end_) {
    ++rpcs_issued_;
    ++inflight_;
    Send(server_, "rpc_getbalance",
         platform::RpcGetBalance{next_req_++, account_, cursor_}, 80);
    ++cursor_;
  }
  if (inflight_ == 0 && cursor_ > end_) Finish();
}

void AnalyticsClient::Finish() {
  done_ = true;
  finish_time_ = Now();
  mode_ = Mode::kIdle;
}

double AnalyticsClient::HandleMessage(const sim::Message& msg) {
  if (mode_ == Mode::kQ1 && msg.type == "rpc_block") {
    const auto& m = std::any_cast<const platform::RpcBlock&>(msg.payload);
    if (m.block != nullptr) {
      for (const auto& tx : m.block->txs) {
        result_ += tx.value;
        // Hyperledger transfers carry the value as sendValue's 3rd arg.
        if (tx.function == "sendValue" && tx.args.size() == 3 &&
            tx.args[2].is_int()) {
          result_ += tx.args[2].AsInt();
        }
      }
    }
    ++cursor_;
    SendNextQ1();
    return 0;
  }
  if (mode_ == Mode::kQ2Balance && msg.type == "rpc_balance") {
    const auto& m = std::any_cast<const platform::RpcBalance&>(msg.payload);
    if (m.ok && (!result_valid_ || m.balance > result_)) {
      result_ = m.balance;
      result_valid_ = true;
    }
    --inflight_;
    PumpQ2();
    return 0;
  }
  if (mode_ == Mode::kQ2Chaincode && msg.type == "rpc_result") {
    const auto& m = std::any_cast<const platform::RpcResult&>(msg.payload);
    if (m.ok && m.value.is_int()) {
      result_ = m.value.AsInt();
      result_valid_ = true;
    }
    Finish();
    return 0;
  }
  return 0;
}

double RunAnalyticsQuery(sim::Simulation* sim, AnalyticsClient* client,
                         double max_wait) {
  double deadline = sim->Now() + max_wait;
  while (!client->done() && sim->Now() < deadline) {
    sim->RunUntil(sim->Now() + 0.05);
  }
  return client->latency();
}

}  // namespace bb::workloads
