#include "workloads/donothing.h"

#include "workloads/contracts.h"

namespace bb::workloads {

DoNothingWorkload::DoNothingWorkload() { RegisterAllChaincodes(); }

Status DoNothingWorkload::Setup(platform::Platform* platform) {
  BB_RETURN_IF_ERROR(platform->DeployWorkloadContract(
      "donothing", DoNothingCasm(), kDoNothingChaincode));
  return platform->FinalizeGenesis();
}

chain::Transaction DoNothingWorkload::NextTransaction(uint32_t client_id,
                                                      Rng& rng) {
  (void)client_id;
  (void)rng;
  chain::Transaction tx;
  tx.contract = "donothing";
  tx.function = "nop";
  return tx;
}

}  // namespace bb::workloads
