// Analytics workload (data-model microbench): OLAP-style queries over
// historical blockchain data.
//
//   Q1: total transaction value committed between block i and block j.
//   Q2: per-block balance aggregate for one account between i and j —
//       implemented over getBalance(account, block) RPCs on the
//       versioned-state platforms, and as a single VersionKVStore
//       chaincode query on Hyperledger (Fig 20), whose bucket state model
//       has no historical reads.

#ifndef BLOCKBENCH_WORKLOADS_ANALYTICS_H_
#define BLOCKBENCH_WORKLOADS_ANALYTICS_H_

#include "core/connector.h"
#include "platform/rpc.h"
#include "sim/node.h"

namespace bb::workloads {

struct AnalyticsConfig {
  uint64_t num_accounts = 10'000;
  uint64_t num_blocks = 10'000;
  uint64_t txs_per_block = 3;
  /// Fraction of transfers touching the designated hot account
  /// (account 0), the target of Q2.
  double hot_account_fraction = 0.3;
  int64_t max_transfer = 100;
  /// Concurrent getBalance requests for Q2 (balance lookups are
  /// independent; block fetches in Q1 stay sequential like the paper's
  /// driver).
  size_t q2_pipeline = 3;
  uint64_t seed = 99;
};

/// Preloads the chain with `num_blocks` of random transfers. On EVM
/// platforms the transfers are plain value-moving transactions; on the
/// native platform they are VersionKVStore sendValue invocations
/// (contract name "analytics").
Status SetupAnalyticsChain(platform::Platform* platform,
                           const AnalyticsConfig& config);

/// The hot account's name ("acct0").
std::string AnalyticsHotAccount();

/// A sequential query client. Start a query, then drive the simulation
/// until done() — see RunAnalyticsQuery().
class AnalyticsClient : public sim::Node {
 public:
  AnalyticsClient(sim::NodeId id, sim::Network* network, sim::NodeId server,
                  AnalyticsConfig config);

  /// Q1 over blocks (from, to].
  void StartQ1(uint64_t from_block, uint64_t to_block);
  /// Q2 for `account` over (from, to]. use_chaincode selects the
  /// Hyperledger single-RPC path.
  void StartQ2(const std::string& account, uint64_t from_block,
               uint64_t to_block, bool use_chaincode);

  bool done() const { return done_; }
  int64_t result() const { return result_; }
  /// Virtual seconds from Start*() to completion.
  double latency() const { return finish_time_ - start_time_; }
  uint64_t rpcs_issued() const { return rpcs_issued_; }

  double HandleMessage(const sim::Message& msg) override;

 private:
  void SendNextQ1();
  void PumpQ2();
  void Finish();

  sim::NodeId server_;
  AnalyticsConfig config_;

  enum class Mode { kIdle, kQ1, kQ2Balance, kQ2Chaincode } mode_ = Mode::kIdle;
  std::string account_;
  uint64_t cursor_ = 0;
  uint64_t end_ = 0;
  size_t inflight_ = 0;
  bool done_ = true;
  int64_t result_ = 0;
  bool result_valid_ = false;
  double start_time_ = 0;
  double finish_time_ = 0;
  uint64_t rpcs_issued_ = 0;
  uint64_t next_req_ = 1;
};

/// Drives the simulation in small steps until the client finishes (or
/// max_wait virtual seconds elapse). Returns the query latency.
double RunAnalyticsQuery(sim::Simulation* sim, AnalyticsClient* client,
                         double max_wait = 600);

}  // namespace bb::workloads

#endif  // BLOCKBENCH_WORKLOADS_ANALYTICS_H_
