#include "workloads/doubler.h"

#include "workloads/contracts.h"

namespace bb::workloads {

DoublerWorkload::DoublerWorkload(DoublerConfig config) : config_(config) {
  RegisterAllChaincodes();
}

Status DoublerWorkload::Setup(platform::Platform* platform) {
  BB_RETURN_IF_ERROR(platform->DeployWorkloadContract(
      config_.contract, DoublerCasm(), kDoublerChaincode));
  return platform->FinalizeGenesis();
}

chain::Transaction DoublerWorkload::NextTransaction(uint32_t client_id,
                                                    Rng& rng) {
  (void)client_id;
  chain::Transaction tx;
  tx.contract = config_.contract;
  tx.function = "enter";
  tx.value = int64_t(
      rng.Range(uint64_t(config_.min_contribution),
                uint64_t(config_.max_contribution)));
  return tx;
}

}  // namespace bb::workloads
