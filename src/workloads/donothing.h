// DoNothing workload (consensus-layer microbench): transactions that hit
// a contract which returns immediately, isolating consensus cost.

#ifndef BLOCKBENCH_WORKLOADS_DONOTHING_H_
#define BLOCKBENCH_WORKLOADS_DONOTHING_H_

#include "core/connector.h"

namespace bb::workloads {

class DoNothingWorkload : public core::WorkloadConnector {
 public:
  DoNothingWorkload();

  Status Setup(platform::Platform* platform) override;
  chain::Transaction NextTransaction(uint32_t client_id, Rng& rng) override;
  std::string name() const override { return "donothing"; }
};

}  // namespace bb::workloads

#endif  // BLOCKBENCH_WORKLOADS_DONOTHING_H_
