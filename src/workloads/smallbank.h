// Smallbank OLTP workload (macro benchmark): the standard six banking
// procedures over preloaded savings/checking accounts.

#ifndef BLOCKBENCH_WORKLOADS_SMALLBANK_H_
#define BLOCKBENCH_WORKLOADS_SMALLBANK_H_

#include "core/connector.h"

namespace bb::workloads {

struct SmallbankConfig {
  uint64_t num_accounts = 10'000;
  int64_t initial_balance = 100'000;
  /// Procedure mix (must sum to <= 1; remainder goes to getBalance).
  double p_transact_savings = 0.15;
  double p_deposit_checking = 0.15;
  double p_send_payment = 0.25;
  double p_write_check = 0.15;
  double p_amalgamate = 0.15;
  std::string contract = "smallbank";
  /// Sharded platforms only: probability that a transaction's accounts
  /// straddle shards (emitted as a sendPayment from a home-shard account
  /// to an account on another shard). Ignored when unsharded.
  double cross_shard_ratio = 0.0;
};

class SmallbankWorkload : public core::WorkloadConnector {
 public:
  explicit SmallbankWorkload(SmallbankConfig config = {});

  Status Setup(platform::Platform* platform) override;
  chain::Transaction NextTransaction(uint32_t client_id, Rng& rng) override;
  std::vector<std::string> TouchedKeys(
      const chain::Transaction& tx) const override;
  std::string name() const override { return "smallbank"; }

  static std::string AccountName(uint64_t n) {
    return "acct" + std::to_string(n);
  }

 private:
  /// Shard-aware draw: rejection-samples accounts until one partitions
  /// onto `shard` (accounts — not their s_/c_ state keys — are the
  /// partition unit, so one account never straddles shards).
  std::string AccountInShard(Rng& rng, uint32_t shard) const;
  /// Draws the procedure selector and builds the transaction for the
  /// standard six-procedure mix over accounts `a`/`b`.
  chain::Transaction MixTransaction(Rng& rng, std::string a, std::string b,
                                    int64_t amount) const;

  SmallbankConfig config_;
  size_t shards_ = 1;
  const platform::Platform* platform_ = nullptr;
};

}  // namespace bb::workloads

#endif  // BLOCKBENCH_WORKLOADS_SMALLBANK_H_
