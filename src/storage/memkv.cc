#include "storage/memkv.h"

namespace bb::storage {

namespace {
// Per-entry bookkeeping overhead of an unordered_map node + two
// std::string headers; counted so the capacity limit reflects resident
// memory, not just payload bytes.
constexpr uint64_t kPerEntryOverhead = 96;
}  // namespace

Status MemKv::Put(Slice key, Slice value) {
  auto it = map_.find(key.ToString());
  uint64_t new_live = live_bytes_;
  if (it != map_.end()) {
    new_live = new_live - it->second.size() + value.size();
  } else {
    new_live += key.size() + value.size();
  }
  if (capacity_ > 0) {
    uint64_t entries = map_.size() + (it == map_.end() ? 1 : 0);
    if (new_live + entries * kPerEntryOverhead > capacity_) {
      return Status::OutOfMemory("MemKv capacity exceeded");
    }
  }
  if (it != map_.end()) {
    it->second = value.ToString();
  } else {
    map_.emplace(key.ToString(), value.ToString());
  }
  live_bytes_ = new_live;
  SyncMemGauge();
  return Status::Ok();
}

Status MemKv::Get(Slice key, std::string* value) const {
  auto it = map_.find(key.ToString());
  if (it == map_.end()) return Status::NotFound();
  *value = it->second;
  return Status::Ok();
}

Status MemKv::Delete(Slice key) {
  auto it = map_.find(key.ToString());
  if (it == map_.end()) return Status::NotFound();
  live_bytes_ -= it->first.size() + it->second.size();
  map_.erase(it);
  SyncMemGauge();
  return Status::Ok();
}

void MemKv::Scan(
    const std::function<bool(Slice key, Slice value)>& fn) const {
  for (const auto& [k, v] : map_) {
    if (!fn(k, v)) return;
  }
}

uint64_t MemKv::size_bytes() const {
  return live_bytes_ + map_.size() * kPerEntryOverhead;
}

}  // namespace bb::storage
