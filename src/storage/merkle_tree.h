// Classic binary Merkle tree over a transaction list, with inclusion
// proofs. Every platform model uses this for the block's transaction root
// ("the hash tree for transaction list is a classic Merkle tree").

#ifndef BLOCKBENCH_STORAGE_MERKLE_TREE_H_
#define BLOCKBENCH_STORAGE_MERKLE_TREE_H_

#include <vector>

#include "util/sha256.h"

namespace bb::storage {

/// One step of an inclusion proof: the sibling hash and which side it is on.
struct MerkleProofStep {
  Hash256 sibling;
  bool sibling_is_left;
};

using MerkleProof = std::vector<MerkleProofStep>;

class MerkleTree {
 public:
  /// Builds the tree over the given leaf hashes. An empty list yields the
  /// zero root. Odd levels duplicate the last node (Bitcoin convention).
  explicit MerkleTree(std::vector<Hash256> leaves);

  const Hash256& root() const { return root_; }
  size_t num_leaves() const { return num_leaves_; }

  /// Inclusion proof for leaf `index` (< num_leaves()).
  MerkleProof Prove(size_t index) const;

  /// Verifies that `leaf` at position `index` is included under `root`.
  static bool Verify(const Hash256& root, const Hash256& leaf,
                     const MerkleProof& proof);

  /// Root over raw leaf data (hashes each element first).
  static Hash256 RootOf(const std::vector<std::string>& items);

 private:
  static Hash256 Combine(const Hash256& l, const Hash256& r);

  size_t num_leaves_;
  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Hash256>> levels_;
  Hash256 root_;
};

}  // namespace bb::storage

#endif  // BLOCKBENCH_STORAGE_MERKLE_TREE_H_
