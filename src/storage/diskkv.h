// DiskKv: a log-structured persistent KvStore (append log + in-memory hash
// index + garbage-triggered compaction), standing in for LevelDB/RocksDB
// under the Ethereum and Hyperledger platform models.
//
// It does real file I/O so the IOHeavy experiment measures genuine disk
// behaviour, and it reports file bytes for the disk-usage series (Fig 12c).

#ifndef BLOCKBENCH_STORAGE_DISKKV_H_
#define BLOCKBENCH_STORAGE_DISKKV_H_

#include <cstdio>
#include <string>
#include <unordered_map>

#include "storage/kvstore.h"

namespace bb::storage {

struct DiskKvOptions {
  /// Compaction runs when garbage bytes exceed this fraction of the log.
  double compaction_garbage_ratio = 0.5;
  /// Minimum log size before compaction is considered.
  uint64_t compaction_min_bytes = 4 << 20;
  /// fflush after every write (true models write-through durability).
  bool flush_every_write = false;
  /// false = recover from an existing log (rebuild the index by scanning
  /// records); true = start fresh.
  bool truncate = true;
};

class DiskKv : public KvStore {
 public:
  /// Opens the store backed by `path` (a single log file). With
  /// options.truncate=false an existing log is scanned to rebuild the
  /// index (crash recovery); a trailing partial record is discarded.
  static Result<std::unique_ptr<DiskKv>> Open(const std::string& path,
                                              DiskKvOptions options = {});
  ~DiskKv() override;

  DiskKv(const DiskKv&) = delete;
  DiskKv& operator=(const DiskKv&) = delete;

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) const override;
  Status Delete(Slice key) override;
  void Scan(
      const std::function<bool(Slice key, Slice value)>& fn) const override;

  size_t num_entries() const override { return index_.size(); }
  uint64_t size_bytes() const override { return log_bytes_; }
  uint64_t live_bytes() const override { return live_bytes_; }
  uint64_t garbage_bytes() const { return log_bytes_ - live_record_bytes_; }
  int compactions_run() const { return compactions_run_; }

  /// Rewrites the log keeping only live records. Public for tests.
  Status Compact();

 private:
  /// Rebuilds the index by scanning the log from the start.
  Status Recover();

  struct Entry {
    uint64_t offset;
    uint32_t record_len;  // full record incl. header
    uint32_t value_len;
    uint32_t value_offset_in_record;
  };

  DiskKv(std::string path, DiskKvOptions options)
      : path_(std::move(path)), options_(options) {}

  Status AppendRecord(Slice key, Slice value, bool tombstone, Entry* entry);
  void MaybeCompact();

  std::string path_;
  DiskKvOptions options_;
  std::FILE* file_ = nullptr;
  std::unordered_map<std::string, Entry> index_;
  uint64_t log_bytes_ = 0;
  uint64_t live_bytes_ = 0;         // key+value payload of live entries
  uint64_t live_record_bytes_ = 0;  // on-disk bytes of live records
  int compactions_run_ = 0;
};

}  // namespace bb::storage

#endif  // BLOCKBENCH_STORAGE_DISKKV_H_
