#include "storage/kvstore.h"

// Interface-only translation unit; anchors the vtable.
