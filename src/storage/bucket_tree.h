// BucketMerkleTree: Hyperledger Fabric v0.6's state hashing scheme.
//
// State keys are hashed into a fixed number of buckets; a Merkle tree is
// built over the bucket digests and its root goes into the block header.
// Entries themselves live flat in the backing KvStore (Fabric "outsources
// its data management entirely to the storage engine"), so unlike the
// Patricia trie there is no per-write node amplification and no historical
// versioning — which is exactly the data-model trade-off the paper probes
// with IOHeavy and the Analytics Q2 workload.
//
// Bucket digests are maintained incrementally: each entry contributes
// SHA-256(key || value), combined by addition mod 2^256, so updates are
// O(1) instead of rehashing the whole bucket.

#ifndef BLOCKBENCH_STORAGE_BUCKET_TREE_H_
#define BLOCKBENCH_STORAGE_BUCKET_TREE_H_

#include <vector>

#include "storage/kvstore.h"
#include "util/sha256.h"

namespace bb::storage {

class BucketMerkleTree {
 public:
  /// `store` holds the actual key/value state; not owned.
  explicit BucketMerkleTree(KvStore* store, size_t num_buckets = 1024);

  Status Put(Slice key, Slice value);
  Status Get(Slice key, std::string* value) const;
  Status Delete(Slice key);

  /// Root over all bucket digests. Rebuilds the (small) Merkle tree over
  /// buckets if any digest changed since the last call.
  Hash256 RootHash();

  size_t num_buckets() const { return buckets_.size(); }
  uint64_t updates() const { return updates_; }

 private:
  size_t BucketOf(Slice key) const;
  static void DigestAdd(Hash256* acc, const Hash256& h);
  static void DigestSub(Hash256* acc, const Hash256& h);

  KvStore* store_;
  std::vector<Hash256> buckets_;
  bool dirty_ = true;
  Hash256 root_;
  uint64_t updates_ = 0;
};

}  // namespace bb::storage

#endif  // BLOCKBENCH_STORAGE_BUCKET_TREE_H_
