#include "storage/bucket_tree.h"

#include "storage/merkle_tree.h"

namespace bb::storage {

namespace {
Hash256 EntryDigest(Slice key, Slice value) {
  Sha256 h;
  uint8_t klen[4] = {uint8_t(key.size() >> 24), uint8_t(key.size() >> 16),
                     uint8_t(key.size() >> 8), uint8_t(key.size())};
  h.Update(klen, 4);  // length-prefix so (k,v) boundaries are unambiguous
  h.Update(key);
  h.Update(value);
  return h.Finish();
}
}  // namespace

BucketMerkleTree::BucketMerkleTree(KvStore* store, size_t num_buckets)
    : store_(store), buckets_(num_buckets) {}

size_t BucketMerkleTree::BucketOf(Slice key) const {
  return size_t(Sha256::Digest(key).Prefix64() % buckets_.size());
}

void BucketMerkleTree::DigestAdd(Hash256* acc, const Hash256& h) {
  // Addition mod 2^256, little-endian over the byte array.
  unsigned carry = 0;
  for (int i = 31; i >= 0; --i) {
    unsigned sum = unsigned(acc->bytes[i]) + unsigned(h.bytes[i]) + carry;
    acc->bytes[i] = uint8_t(sum & 0xff);
    carry = sum >> 8;
  }
}

void BucketMerkleTree::DigestSub(Hash256* acc, const Hash256& h) {
  unsigned borrow = 0;
  for (int i = 31; i >= 0; --i) {
    int diff = int(acc->bytes[i]) - int(h.bytes[i]) - int(borrow);
    if (diff < 0) {
      diff += 256;
      borrow = 1;
    } else {
      borrow = 0;
    }
    acc->bytes[i] = uint8_t(diff);
  }
}

Status BucketMerkleTree::Put(Slice key, Slice value) {
  size_t b = BucketOf(key);
  std::string old;
  Status s = store_->Get(key, &old);
  if (s.ok()) {
    DigestSub(&buckets_[b], EntryDigest(key, old));
  } else if (!s.IsNotFound()) {
    return s;
  }
  BB_RETURN_IF_ERROR(store_->Put(key, value));
  DigestAdd(&buckets_[b], EntryDigest(key, value));
  dirty_ = true;
  ++updates_;
  return Status::Ok();
}

Status BucketMerkleTree::Get(Slice key, std::string* value) const {
  return store_->Get(key, value);
}

Status BucketMerkleTree::Delete(Slice key) {
  std::string old;
  BB_RETURN_IF_ERROR(store_->Get(key, &old));
  size_t b = BucketOf(key);
  DigestSub(&buckets_[b], EntryDigest(key, old));
  BB_RETURN_IF_ERROR(store_->Delete(key));
  dirty_ = true;
  ++updates_;
  return Status::Ok();
}

Hash256 BucketMerkleTree::RootHash() {
  if (dirty_) {
    root_ = MerkleTree(buckets_).root();
    dirty_ = false;
  }
  return root_;
}

}  // namespace bb::storage
