// KvStore: the storage-engine abstraction under every platform model.
//
// Ethereum persists state in LevelDB, Hyperledger in RocksDB, and Parity
// keeps state in memory; the three concrete stores here (DiskKv, MemKv)
// stand in for those engines and expose the size accounting the IOHeavy
// experiment (Fig 12) needs.

#ifndef BLOCKBENCH_STORAGE_KVSTORE_H_
#define BLOCKBENCH_STORAGE_KVSTORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

// Header-only hot path (mem::Gauge): bb_storage stays link-independent
// of bb_obs; the gauge is inert until a MemTracker is attached.
#include "obs/memtrack.h"
#include "util/slice.h"
#include "util/status.h"

namespace bb::storage {

class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(Slice key, Slice value) = 0;
  virtual Status Get(Slice key, std::string* value) const = 0;
  virtual Status Delete(Slice key) = 0;
  virtual bool Contains(Slice key) const {
    std::string v;
    return Get(key, &v).ok();
  }

  /// Iterates all live entries in unspecified order; stops early if fn
  /// returns false.
  virtual void Scan(
      const std::function<bool(Slice key, Slice value)>& fn) const = 0;

  virtual size_t num_entries() const = 0;
  /// Bytes of storage consumed (resident memory for MemKv, file bytes
  /// including garbage for DiskKv).
  virtual uint64_t size_bytes() const = 0;
  /// Bytes of live key+value data.
  virtual uint64_t live_bytes() const = 0;

  /// Mem observability: when bound, every mutation re-syncs the
  /// storage.state gauge from size_bytes(). Disabled cost is one branch
  /// per mutation.
  void set_mem_gauge(obs::mem::Gauge gauge) {
    mem_gauge_ = gauge;
    SyncMemGauge();
  }

 protected:
  /// Concrete stores call this at the end of every mutating operation.
  void SyncMemGauge() {
    if (mem_gauge_) mem_gauge_.Set(size_bytes());
  }

 private:
  obs::mem::Gauge mem_gauge_;
};

}  // namespace bb::storage

#endif  // BLOCKBENCH_STORAGE_KVSTORE_H_
