// MemKv: a purely in-memory KvStore with an optional capacity limit.
//
// Models Parity's keep-all-state-in-memory design: fast until the dataset
// outgrows memory, at which point writes fail with OutOfMemory — exactly
// the 'X' cells in the paper's IOHeavy results (Fig 12).

#ifndef BLOCKBENCH_STORAGE_MEMKV_H_
#define BLOCKBENCH_STORAGE_MEMKV_H_

#include <string>
#include <unordered_map>

#include "storage/kvstore.h"

namespace bb::storage {

class MemKv : public KvStore {
 public:
  /// capacity_bytes = 0 means unlimited.
  explicit MemKv(uint64_t capacity_bytes = 0) : capacity_(capacity_bytes) {}

  Status Put(Slice key, Slice value) override;
  Status Get(Slice key, std::string* value) const override;
  Status Delete(Slice key) override;
  void Scan(
      const std::function<bool(Slice key, Slice value)>& fn) const override;

  size_t num_entries() const override { return map_.size(); }
  uint64_t size_bytes() const override;
  uint64_t live_bytes() const override { return live_bytes_; }

 private:
  uint64_t capacity_;
  uint64_t live_bytes_ = 0;
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace bb::storage

#endif  // BLOCKBENCH_STORAGE_MEMKV_H_
