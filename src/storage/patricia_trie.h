// MerklePatriciaTrie: a hex-nibble Patricia-Merkle trie, the authenticated
// state structure of the Ethereum and Parity platform models.
//
// Nodes are content-addressed (key = SHA-256 of the encoded node) and
// persisted in a backing KvStore, so every Put/Delete produces a new root
// hash while old versions stay readable — which is both how Ethereum
// supports state queries "at a specific block" (Analytics workload) and
// why the trie has the write/space amplification the IOHeavy experiment
// measures.

#ifndef BLOCKBENCH_STORAGE_PATRICIA_TRIE_H_
#define BLOCKBENCH_STORAGE_PATRICIA_TRIE_H_

#include <list>
#include <vector>
#include <string>
#include <unordered_map>

#include "storage/kvstore.h"
#include "util/sha256.h"

namespace bb::storage {

struct TrieStats {
  uint64_t node_writes = 0;
  uint64_t node_reads = 0;
  uint64_t bytes_written = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

class MerklePatriciaTrie {
 public:
  /// `nodes` stores encoded trie nodes; not owned. `cache_entries` bounds
  /// the decoded-node LRU cache (0 disables caching), modelling Ethereum's
  /// partial in-memory state cache.
  explicit MerklePatriciaTrie(KvStore* nodes, size_t cache_entries = 1 << 16)
      : nodes_(nodes), cache_capacity_(cache_entries) {}

  /// Root hash of the empty trie.
  static Hash256 EmptyRoot() { return Hash256::Zero(); }

  /// Inserts/updates key under `root`; returns the new root.
  Result<Hash256> Put(const Hash256& root, Slice key, Slice value);
  /// Looks up key in the version identified by `root`.
  Status Get(const Hash256& root, Slice key, std::string* value) const;
  /// Removes key; returns the new root (possibly EmptyRoot()).
  /// NotFound if the key was absent.
  Result<Hash256> Delete(const Hash256& root, Slice key);

  /// Merkle inclusion proof: the encoded nodes along the path from the
  /// root to `key` in version `root`. A light client holding only the
  /// root hash can verify key/value with VerifyProof. NotFound when the
  /// key is absent (this trie does not emit non-membership proofs).
  Result<std::vector<std::string>> Prove(const Hash256& root,
                                         Slice key) const;
  /// Verifies that `key` maps to `value` under `root_hash` given the
  /// proof nodes. Pure function of its inputs: needs no store access.
  static bool VerifyProof(const Hash256& root_hash, Slice key, Slice value,
                          const std::vector<std::string>& proof);

  const TrieStats& stats() const { return stats_; }

 private:
  struct Node {
    enum Kind : uint8_t { kLeaf = 1, kExtension = 2, kBranch = 3 };
    Kind kind = kLeaf;
    std::string path;  // nibbles (one per byte, values 0..15); leaf/extension
    std::string value; // leaf value, or branch value when has_value
    bool has_value = false;
    Hash256 child;             // extension child
    Hash256 children[16] = {}; // branch children; zero hash = absent
  };

  static std::string ToNibbles(Slice key);
  static std::string Encode(const Node& n);
  static Status Decode(Slice data, Node* n);

  Hash256 Store(const Node& n);
  Status Load(const Hash256& h, Node* n) const;

  Result<Hash256> Insert(const Hash256& node_hash, Slice nibbles, Slice value);
  /// Deletion helper: *deleted set true on success; returns new subtree
  /// hash (zero = empty subtree).
  Result<Hash256> Remove(const Hash256& node_hash, Slice nibbles,
                         bool* deleted);
  /// Re-normalizes a branch that may have lost entries, collapsing
  /// single-child branches into leaf/extension nodes.
  Result<Hash256> NormalizeBranch(Node branch);
  /// Prefixes `nibble_prefix` onto the node identified by `h` (merging
  /// into its path when possible) and stores the result.
  Result<Hash256> PrependPath(const std::string& nibble_prefix,
                              const Hash256& h);

  void CachePut(const Hash256& h, const Node& n) const;
  bool CacheGet(const Hash256& h, Node* n) const;

  KvStore* nodes_;
  size_t cache_capacity_;
  /// Sticky node-store failure during the current Put/Delete.
  Status store_error_;
  mutable TrieStats stats_;
  // FIFO-evicted decoded-node cache.
  mutable std::unordered_map<Hash256, Node, Hash256Hasher> cache_;
  mutable std::list<Hash256> cache_order_;
};

}  // namespace bb::storage

#endif  // BLOCKBENCH_STORAGE_PATRICIA_TRIE_H_
