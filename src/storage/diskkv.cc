#include "storage/diskkv.h"

#include <cassert>
#include <cstring>

#include "util/codec.h"

namespace bb::storage {

namespace {
// Record layout: varint(key_len) varint(value_len_or_tombstone) key value
// where value_len_or_tombstone = 2*value_len | tombstone_bit.
std::string EncodeHeader(Slice key, Slice value, bool tombstone) {
  std::string h;
  PutVarint64(&h, key.size());
  PutVarint64(&h, (uint64_t(value.size()) << 1) | (tombstone ? 1 : 0));
  return h;
}
}  // namespace

Result<std::unique_ptr<DiskKv>> DiskKv::Open(const std::string& path,
                                             DiskKvOptions options) {
  std::unique_ptr<DiskKv> kv(new DiskKv(path, options));
  if (options.truncate) {
    kv->file_ = std::fopen(path.c_str(), "w+b");
  } else {
    kv->file_ = std::fopen(path.c_str(), "r+b");
    if (kv->file_ == nullptr) {
      kv->file_ = std::fopen(path.c_str(), "w+b");  // fresh store
    } else {
      Status s = kv->Recover();
      if (!s.ok()) return s;
    }
  }
  if (kv->file_ == nullptr) {
    return Status::Unavailable("cannot open " + path);
  }
  return kv;
}

Status DiskKv::Recover() {
  // Read the whole log; later records for a key supersede earlier ones,
  // replaying exactly the write order. A truncated tail (torn final
  // write) ends recovery at the last complete record.
  std::fseek(file_, 0, SEEK_END);
  long file_size = std::ftell(file_);
  if (file_size < 0) return Status::Unavailable("ftell failed");
  std::string log(size_t(file_size), '\0');
  std::fseek(file_, 0, SEEK_SET);
  if (file_size > 0 &&
      std::fread(log.data(), 1, size_t(file_size), file_) !=
          size_t(file_size)) {
    return Status::Unavailable("recovery read failed");
  }

  Slice input(log);
  uint64_t offset = 0;
  while (!input.empty()) {
    Slice record_start = input;
    uint64_t key_len = 0, vlen_tag = 0;
    if (!GetVarint64(&input, &key_len).ok() ||
        !GetVarint64(&input, &vlen_tag).ok()) {
      break;  // torn header
    }
    uint64_t value_len = vlen_tag >> 1;
    bool tombstone = (vlen_tag & 1) != 0;
    if (input.size() < key_len + value_len) break;  // torn payload
    std::string key(input.data(), key_len);
    input.remove_prefix(key_len + value_len);
    uint64_t header_len =
        uint64_t(record_start.size() - input.size()) - key_len - value_len;
    uint32_t record_len = uint32_t(header_len + key_len + value_len);

    auto it = index_.find(key);
    if (it != index_.end()) {
      live_bytes_ -= key.size() + it->second.value_len;
      live_record_bytes_ -= it->second.record_len;
      index_.erase(it);
    }
    if (!tombstone) {
      Entry e;
      e.offset = offset;
      e.record_len = record_len;
      e.value_len = uint32_t(value_len);
      e.value_offset_in_record = uint32_t(header_len + key_len);
      index_.emplace(std::move(key), e);
      live_bytes_ += key_len + value_len;
      live_record_bytes_ += record_len;
    }
    offset += record_len;
  }
  log_bytes_ = offset;  // appends resume after the last complete record
  return Status::Ok();
}

DiskKv::~DiskKv() {
  if (file_ != nullptr) std::fclose(file_);
}

Status DiskKv::AppendRecord(Slice key, Slice value, bool tombstone,
                            Entry* entry) {
  std::string header = EncodeHeader(key, value, tombstone);
  uint64_t offset = log_bytes_;
  if (std::fseek(file_, long(offset), SEEK_SET) != 0) {
    return Status::Unavailable("seek failed");
  }
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(key.data(), 1, key.size(), file_) != key.size() ||
      std::fwrite(value.data(), 1, value.size(), file_) != value.size()) {
    return Status::Unavailable("write failed");
  }
  if (options_.flush_every_write) std::fflush(file_);
  uint32_t record_len = uint32_t(header.size() + key.size() + value.size());
  log_bytes_ += record_len;
  if (entry != nullptr) {
    entry->offset = offset;
    entry->record_len = record_len;
    entry->value_len = uint32_t(value.size());
    entry->value_offset_in_record = uint32_t(header.size() + key.size());
  }
  return Status::Ok();
}

Status DiskKv::Put(Slice key, Slice value) {
  Entry entry;
  BB_RETURN_IF_ERROR(AppendRecord(key, value, /*tombstone=*/false, &entry));
  auto it = index_.find(key.ToString());
  if (it != index_.end()) {
    live_bytes_ -= it->second.value_len;
    live_record_bytes_ -= it->second.record_len;
    it->second = entry;
  } else {
    live_bytes_ += key.size();
    index_.emplace(key.ToString(), entry);
  }
  live_bytes_ += value.size();
  live_record_bytes_ += entry.record_len;
  MaybeCompact();
  SyncMemGauge();
  return Status::Ok();
}

Status DiskKv::Get(Slice key, std::string* value) const {
  auto it = index_.find(key.ToString());
  if (it == index_.end()) return Status::NotFound();
  const Entry& e = it->second;
  value->resize(e.value_len);
  if (e.value_len == 0) return Status::Ok();
  if (std::fseek(file_, long(e.offset + e.value_offset_in_record), SEEK_SET) !=
      0) {
    return Status::Unavailable("seek failed");
  }
  if (std::fread(value->data(), 1, e.value_len, file_) != e.value_len) {
    return Status::Corruption("short read");
  }
  return Status::Ok();
}

Status DiskKv::Delete(Slice key) {
  auto it = index_.find(key.ToString());
  if (it == index_.end()) return Status::NotFound();
  BB_RETURN_IF_ERROR(AppendRecord(key, Slice(), /*tombstone=*/true, nullptr));
  live_bytes_ -= key.size() + it->second.value_len;
  live_record_bytes_ -= it->second.record_len;
  index_.erase(it);
  MaybeCompact();
  SyncMemGauge();
  return Status::Ok();
}

void DiskKv::Scan(
    const std::function<bool(Slice key, Slice value)>& fn) const {
  for (const auto& [k, e] : index_) {
    std::string v;
    if (!Get(k, &v).ok()) continue;
    if (!fn(k, v)) return;
  }
}

void DiskKv::MaybeCompact() {
  if (log_bytes_ < options_.compaction_min_bytes) return;
  if (double(garbage_bytes()) <
      options_.compaction_garbage_ratio * double(log_bytes_)) {
    return;
  }
  Compact();
}

Status DiskKv::Compact() {
  // Rewrite live records into a fresh log, then swap files.
  std::string tmp_path = path_ + ".compact";
  std::FILE* out = std::fopen(tmp_path.c_str(), "w+b");
  if (out == nullptr) return Status::Unavailable("cannot open compact file");

  std::unordered_map<std::string, Entry> new_index;
  new_index.reserve(index_.size());
  uint64_t new_log_bytes = 0;
  std::string value;
  for (const auto& [k, e] : index_) {
    Status s = Get(k, &value);
    if (!s.ok()) {
      std::fclose(out);
      std::remove(tmp_path.c_str());
      return s;
    }
    std::string header = EncodeHeader(k, value, false);
    Entry ne;
    ne.offset = new_log_bytes;
    ne.record_len = uint32_t(header.size() + k.size() + value.size());
    ne.value_len = uint32_t(value.size());
    ne.value_offset_in_record = uint32_t(header.size() + k.size());
    if (std::fwrite(header.data(), 1, header.size(), out) != header.size() ||
        std::fwrite(k.data(), 1, k.size(), out) != k.size() ||
        std::fwrite(value.data(), 1, value.size(), out) != value.size()) {
      std::fclose(out);
      std::remove(tmp_path.c_str());
      return Status::Unavailable("compaction write failed");
    }
    new_log_bytes += ne.record_len;
    new_index.emplace(k, ne);
  }
  std::fflush(out);
  std::fclose(std::exchange(file_, nullptr));
  std::fclose(out);
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Status::Unavailable("compaction rename failed");
  }
  file_ = std::fopen(path_.c_str(), "r+b");
  if (file_ == nullptr) return Status::Unavailable("reopen failed");
  index_ = std::move(new_index);
  log_bytes_ = new_log_bytes;
  live_record_bytes_ = new_log_bytes;
  ++compactions_run_;
  SyncMemGauge();
  return Status::Ok();
}

}  // namespace bb::storage
