#include "storage/merkle_tree.h"

#include <cassert>

#include "obs/profiler.h"

namespace bb::storage {

Hash256 MerkleTree::Combine(const Hash256& l, const Hash256& r) {
  return Sha256::Digest2(
      Slice(reinterpret_cast<const char*>(l.bytes.data()), 32),
      Slice(reinterpret_cast<const char*>(r.bytes.data()), 32));
}

MerkleTree::MerkleTree(std::vector<Hash256> leaves)
    : num_leaves_(leaves.size()) {
  BB_PROF_SCOPE("hash.merkle");
  if (leaves.empty()) {
    root_ = Hash256::Zero();
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    // Full pairs are contiguous in prev, so the whole level combines in one
    // batched call; an odd trailing node duplicates itself (Bitcoin rule).
    const size_t full_pairs = prev.size() / 2;
    std::vector<Hash256> next((prev.size() + 1) / 2);
    Sha256::DigestPairs(prev.data(), full_pairs, next.data());
    if (prev.size() % 2 == 1) next.back() = Combine(prev.back(), prev.back());
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::Prove(size_t index) const {
  assert(index < num_leaves_);
  MerkleProof proof;
  size_t i = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    if (sibling >= nodes.size()) sibling = i;  // duplicated last node
    proof.push_back(MerkleProofStep{nodes[sibling], i % 2 == 1});
    i /= 2;
  }
  return proof;
}

bool MerkleTree::Verify(const Hash256& root, const Hash256& leaf,
                        const MerkleProof& proof) {
  Hash256 h = leaf;
  for (const auto& step : proof) {
    h = step.sibling_is_left ? Combine(step.sibling, h) : Combine(h, step.sibling);
  }
  return h == root;
}

Hash256 MerkleTree::RootOf(const std::vector<std::string>& items) {
  std::vector<Hash256> leaves;
  leaves.reserve(items.size());
  for (const auto& it : items) leaves.push_back(Sha256::Digest(it));
  return MerkleTree(std::move(leaves)).root();
}

}  // namespace bb::storage
