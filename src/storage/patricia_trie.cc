#include "storage/patricia_trie.h"

#include <cassert>

#include "util/codec.h"

namespace bb::storage {

namespace {

Slice HashSlice(const Hash256& h) {
  return Slice(reinterpret_cast<const char*>(h.bytes.data()), 32);
}

size_t CommonPrefix(Slice a, Slice b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

std::string MerklePatriciaTrie::ToNibbles(Slice key) {
  std::string out;
  out.reserve(key.size() * 2);
  for (size_t i = 0; i < key.size(); ++i) {
    uint8_t b = uint8_t(key[i]);
    out.push_back(char(b >> 4));
    out.push_back(char(b & 0xf));
  }
  return out;
}

std::string MerklePatriciaTrie::Encode(const Node& n) {
  std::string out;
  out.push_back(char(n.kind));
  switch (n.kind) {
    case Node::kLeaf:
      PutLengthPrefixed(&out, n.path);
      PutLengthPrefixed(&out, n.value);
      break;
    case Node::kExtension:
      PutLengthPrefixed(&out, n.path);
      out.append(HashSlice(n.child).data(), 32);
      break;
    case Node::kBranch: {
      uint32_t mask = 0;
      for (int i = 0; i < 16; ++i) {
        if (!n.children[i].IsZero()) mask |= (1u << i);
      }
      if (n.has_value) mask |= (1u << 16);
      PutFixed32(&out, mask);
      for (int i = 0; i < 16; ++i) {
        if (!n.children[i].IsZero()) {
          out.append(HashSlice(n.children[i]).data(), 32);
        }
      }
      if (n.has_value) PutLengthPrefixed(&out, n.value);
      break;
    }
  }
  return out;
}

Status MerklePatriciaTrie::Decode(Slice data, Node* n) {
  if (data.empty()) return Status::Corruption("empty trie node");
  uint8_t kind = uint8_t(data[0]);
  data.remove_prefix(1);
  *n = Node{};
  switch (kind) {
    case Node::kLeaf: {
      n->kind = Node::kLeaf;
      BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &n->path));
      BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &n->value));
      return Status::Ok();
    }
    case Node::kExtension: {
      n->kind = Node::kExtension;
      BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &n->path));
      if (data.size() < 32) return Status::Corruption("truncated ext child");
      std::memcpy(n->child.bytes.data(), data.data(), 32);
      return Status::Ok();
    }
    case Node::kBranch: {
      n->kind = Node::kBranch;
      uint32_t mask;
      BB_RETURN_IF_ERROR(GetFixed32(&data, &mask));
      for (int i = 0; i < 16; ++i) {
        if (mask & (1u << i)) {
          if (data.size() < 32) return Status::Corruption("truncated branch");
          std::memcpy(n->children[i].bytes.data(), data.data(), 32);
          data.remove_prefix(32);
        }
      }
      if (mask & (1u << 16)) {
        n->has_value = true;
        BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &n->value));
      }
      return Status::Ok();
    }
    default:
      return Status::Corruption("bad trie node kind");
  }
}

void MerklePatriciaTrie::CachePut(const Hash256& h, const Node& n) const {
  if (cache_capacity_ == 0) return;
  if (cache_.size() >= cache_capacity_ && !cache_order_.empty()) {
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
  auto [it, inserted] = cache_.emplace(h, n);
  (void)it;
  if (inserted) cache_order_.push_back(h);
}

bool MerklePatriciaTrie::CacheGet(const Hash256& h, Node* n) const {
  auto it = cache_.find(h);
  if (it == cache_.end()) return false;
  *n = it->second;
  return true;
}

Hash256 MerklePatriciaTrie::Store(const Node& n) {
  std::string enc = Encode(n);
  Hash256 h = Sha256::Digest(enc);
  Status s = nodes_->Put(HashSlice(h), enc);
  if (!s.ok() && store_error_.ok()) {
    // Sticky: surfaced by Put/Delete so a full store (Parity's memory
    // cap) fails the whole operation instead of corrupting the trie.
    store_error_ = s;
  }
  ++stats_.node_writes;
  stats_.bytes_written += enc.size() + 32;
  CachePut(h, n);
  return h;
}

Status MerklePatriciaTrie::Load(const Hash256& h, Node* n) const {
  ++stats_.node_reads;
  if (CacheGet(h, n)) {
    ++stats_.cache_hits;
    return Status::Ok();
  }
  ++stats_.cache_misses;
  std::string enc;
  BB_RETURN_IF_ERROR(nodes_->Get(HashSlice(h), &enc));
  BB_RETURN_IF_ERROR(Decode(enc, n));
  CachePut(h, *n);
  return Status::Ok();
}

Result<Hash256> MerklePatriciaTrie::Put(const Hash256& root, Slice key,
                                        Slice value) {
  std::string nibbles = ToNibbles(key);
  store_error_ = Status::Ok();
  auto r = Insert(root, nibbles, value);
  if (r.ok() && !store_error_.ok()) return store_error_;
  return r;
}

Result<Hash256> MerklePatriciaTrie::Insert(const Hash256& node_hash,
                                           Slice nibbles, Slice value) {
  if (node_hash.IsZero()) {
    Node leaf;
    leaf.kind = Node::kLeaf;
    leaf.path = nibbles.ToString();
    leaf.value = value.ToString();
    return Store(leaf);
  }

  Node n;
  BB_RETURN_IF_ERROR(Load(node_hash, &n));

  switch (n.kind) {
    case Node::kLeaf: {
      Slice existing(n.path);
      size_t cp = CommonPrefix(existing, nibbles);
      if (cp == existing.size() && cp == nibbles.size()) {
        n.value = value.ToString();
        return Store(n);
      }
      // Split: branch at the divergence point.
      Node branch;
      branch.kind = Node::kBranch;
      // Existing leaf's remainder.
      if (cp == existing.size()) {
        branch.has_value = true;
        branch.value = n.value;
      } else {
        Node child;
        child.kind = Node::kLeaf;
        child.path = existing.ToString().substr(cp + 1);
        child.value = n.value;
        branch.children[uint8_t(existing[cp])] = Store(child);
      }
      // New key's remainder.
      if (cp == nibbles.size()) {
        branch.has_value = true;
        branch.value = value.ToString();
      } else {
        Node child;
        child.kind = Node::kLeaf;
        child.path = nibbles.ToString().substr(cp + 1);
        child.value = value.ToString();
        branch.children[uint8_t(nibbles[cp])] = Store(child);
      }
      Hash256 branch_hash = Store(branch);
      if (cp > 0) {
        Node ext;
        ext.kind = Node::kExtension;
        ext.path = nibbles.ToString().substr(0, cp);
        ext.child = branch_hash;
        return Store(ext);
      }
      return branch_hash;
    }

    case Node::kExtension: {
      Slice existing(n.path);
      size_t cp = CommonPrefix(existing, nibbles);
      if (cp == existing.size()) {
        Slice rest = nibbles;
        rest.remove_prefix(cp);
        auto child = Insert(n.child, rest, value);
        if (!child.ok()) return child.status();
        n.child = *child;
        return Store(n);
      }
      // Split the extension path.
      Node branch;
      branch.kind = Node::kBranch;
      {
        // Remainder of the extension beyond the branch slot.
        std::string ext_rest = existing.ToString().substr(cp + 1);
        Hash256 sub;
        if (ext_rest.empty()) {
          sub = n.child;
        } else {
          Node sub_ext;
          sub_ext.kind = Node::kExtension;
          sub_ext.path = ext_rest;
          sub_ext.child = n.child;
          sub = Store(sub_ext);
        }
        branch.children[uint8_t(existing[cp])] = sub;
      }
      if (cp == nibbles.size()) {
        branch.has_value = true;
        branch.value = value.ToString();
      } else {
        Node leaf;
        leaf.kind = Node::kLeaf;
        leaf.path = nibbles.ToString().substr(cp + 1);
        leaf.value = value.ToString();
        branch.children[uint8_t(nibbles[cp])] = Store(leaf);
      }
      Hash256 branch_hash = Store(branch);
      if (cp > 0) {
        Node ext;
        ext.kind = Node::kExtension;
        ext.path = nibbles.ToString().substr(0, cp);
        ext.child = branch_hash;
        return Store(ext);
      }
      return branch_hash;
    }

    case Node::kBranch: {
      if (nibbles.empty()) {
        n.has_value = true;
        n.value = value.ToString();
        return Store(n);
      }
      uint8_t idx = uint8_t(nibbles[0]);
      Slice rest = nibbles;
      rest.remove_prefix(1);
      auto child = Insert(n.children[idx], rest, value);
      if (!child.ok()) return child.status();
      n.children[idx] = *child;
      return Store(n);
    }
  }
  return Status::Internal("unreachable");
}

Status MerklePatriciaTrie::Get(const Hash256& root, Slice key,
                               std::string* value) const {
  std::string nibbles_storage = ToNibbles(key);
  Slice nibbles(nibbles_storage);
  Hash256 cur = root;
  while (true) {
    if (cur.IsZero()) return Status::NotFound();
    Node n;
    BB_RETURN_IF_ERROR(Load(cur, &n));
    switch (n.kind) {
      case Node::kLeaf:
        if (Slice(n.path) == nibbles) {
          *value = n.value;
          return Status::Ok();
        }
        return Status::NotFound();
      case Node::kExtension:
        if (!nibbles.starts_with(n.path)) return Status::NotFound();
        nibbles.remove_prefix(n.path.size());
        cur = n.child;
        break;
      case Node::kBranch:
        if (nibbles.empty()) {
          if (!n.has_value) return Status::NotFound();
          *value = n.value;
          return Status::Ok();
        }
        cur = n.children[uint8_t(nibbles[0])];
        nibbles.remove_prefix(1);
        break;
    }
  }
}

Result<Hash256> MerklePatriciaTrie::PrependPath(
    const std::string& nibble_prefix, const Hash256& h) {
  if (nibble_prefix.empty()) return h;
  Node n;
  BB_RETURN_IF_ERROR(Load(h, &n));
  if (n.kind == Node::kLeaf || n.kind == Node::kExtension) {
    n.path = nibble_prefix + n.path;
    return Store(n);
  }
  Node ext;
  ext.kind = Node::kExtension;
  ext.path = nibble_prefix;
  ext.child = h;
  return Store(ext);
}

Result<Hash256> MerklePatriciaTrie::NormalizeBranch(Node branch) {
  int child_count = 0;
  int only_idx = -1;
  for (int i = 0; i < 16; ++i) {
    if (!branch.children[i].IsZero()) {
      ++child_count;
      only_idx = i;
    }
  }
  if (child_count == 0 && !branch.has_value) {
    return Hash256::Zero();
  }
  if (child_count == 0 && branch.has_value) {
    Node leaf;
    leaf.kind = Node::kLeaf;
    leaf.path.clear();
    leaf.value = branch.value;
    return Store(leaf);
  }
  if (child_count == 1 && !branch.has_value) {
    // Collapse into the single child, prefixing its slot nibble.
    std::string prefix(1, char(only_idx));
    return PrependPath(prefix, branch.children[only_idx]);
  }
  return Store(branch);
}

Result<Hash256> MerklePatriciaTrie::Delete(const Hash256& root, Slice key) {
  std::string nibbles = ToNibbles(key);
  store_error_ = Status::Ok();
  bool deleted = false;
  auto r = Remove(root, nibbles, &deleted);
  if (!r.ok()) return r.status();
  if (!store_error_.ok()) return store_error_;
  if (!deleted) return Status::NotFound();
  return *r;
}

Result<Hash256> MerklePatriciaTrie::Remove(const Hash256& node_hash,
                                           Slice nibbles, bool* deleted) {
  if (node_hash.IsZero()) {
    *deleted = false;
    return node_hash;
  }
  Node n;
  BB_RETURN_IF_ERROR(Load(node_hash, &n));

  switch (n.kind) {
    case Node::kLeaf:
      if (Slice(n.path) == nibbles) {
        *deleted = true;
        return Hash256::Zero();
      }
      *deleted = false;
      return node_hash;

    case Node::kExtension: {
      if (!nibbles.starts_with(n.path)) {
        *deleted = false;
        return node_hash;
      }
      Slice rest = nibbles;
      rest.remove_prefix(n.path.size());
      auto child = Remove(n.child, rest, deleted);
      if (!child.ok()) return child.status();
      if (!*deleted) return node_hash;
      if (child->IsZero()) return Hash256::Zero();
      // Merge the extension path back onto the (possibly collapsed) child.
      return PrependPath(n.path, *child);
    }

    case Node::kBranch: {
      if (nibbles.empty()) {
        if (!n.has_value) {
          *deleted = false;
          return node_hash;
        }
        *deleted = true;
        n.has_value = false;
        n.value.clear();
        return NormalizeBranch(std::move(n));
      }
      uint8_t idx = uint8_t(nibbles[0]);
      Slice rest = nibbles;
      rest.remove_prefix(1);
      auto child = Remove(n.children[idx], rest, deleted);
      if (!child.ok()) return child.status();
      if (!*deleted) return node_hash;
      n.children[idx] = *child;
      return NormalizeBranch(std::move(n));
    }
  }
  return Status::Internal("unreachable");
}

Result<std::vector<std::string>> MerklePatriciaTrie::Prove(
    const Hash256& root, Slice key) const {
  std::vector<std::string> proof;
  std::string nibbles_storage = ToNibbles(key);
  Slice nibbles(nibbles_storage);
  Hash256 cur = root;
  while (true) {
    if (cur.IsZero()) return Status::NotFound();
    std::string enc;
    BB_RETURN_IF_ERROR(
        nodes_->Get(Slice(reinterpret_cast<const char*>(cur.bytes.data()), 32),
                    &enc));
    Node n;
    BB_RETURN_IF_ERROR(Decode(enc, &n));
    proof.push_back(enc);
    switch (n.kind) {
      case Node::kLeaf:
        if (Slice(n.path) == nibbles) return proof;
        return Status::NotFound();
      case Node::kExtension:
        if (!nibbles.starts_with(n.path)) return Status::NotFound();
        nibbles.remove_prefix(n.path.size());
        cur = n.child;
        break;
      case Node::kBranch:
        if (nibbles.empty()) {
          if (!n.has_value) return Status::NotFound();
          return proof;
        }
        cur = n.children[uint8_t(nibbles[0])];
        nibbles.remove_prefix(1);
        break;
    }
  }
}

bool MerklePatriciaTrie::VerifyProof(const Hash256& root_hash, Slice key,
                                     Slice value,
                                     const std::vector<std::string>& proof) {
  if (proof.empty()) return false;
  std::string nibbles_storage = ToNibbles(key);
  Slice nibbles(nibbles_storage);
  Hash256 expected = root_hash;
  for (size_t i = 0; i < proof.size(); ++i) {
    // The node's content hash must match the pointer we followed.
    if (Sha256::Digest(proof[i]) != expected) return false;
    Node n;
    if (!Decode(proof[i], &n).ok()) return false;
    bool is_last = (i + 1 == proof.size());
    switch (n.kind) {
      case Node::kLeaf:
        return is_last && Slice(n.path) == nibbles &&
               Slice(n.value) == value;
      case Node::kExtension:
        if (is_last || !nibbles.starts_with(n.path)) return false;
        nibbles.remove_prefix(n.path.size());
        expected = n.child;
        break;
      case Node::kBranch:
        if (nibbles.empty()) {
          return is_last && n.has_value && Slice(n.value) == value;
        }
        if (is_last) return false;
        expected = n.children[uint8_t(nibbles[0])];
        nibbles.remove_prefix(1);
        break;
    }
  }
  return false;
}

}  // namespace bb::storage
