// NativeRuntime: the Hyperledger-style execution environment.
//
// Chaincode is compiled machine code (here: C++ classes) that talks to the
// ledger exclusively through PutState/GetState — the restricted key-value
// development interface the paper contrasts with the EVM's rich types.
// Execution is native speed with no per-word boxing, which is what gives
// the Hyperledger model its CPUHeavy/IOHeavy advantage.

#ifndef BLOCKBENCH_VM_NATIVE_H_
#define BLOCKBENCH_VM_NATIVE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "vm/host.h"

namespace bb::vm {

/// Base class for chaincode. Subclasses implement Invoke() using only the
/// stub's state operations (mirroring the Fabric shim).
class Chaincode {
 public:
  virtual ~Chaincode() = default;

  /// Executes `function(args)` for the given transaction. Writes are
  /// journaled by the runtime: they reach the real host only on Ok.
  virtual Status Invoke(const TxContext& ctx, HostInterface* stub,
                        Value* result) = 0;
};

using ChaincodeFactory = std::function<std::unique_ptr<Chaincode>()>;

/// Runs chaincode with journaled state semantics and receipt accounting.
class NativeRuntime {
 public:
  /// Executes the chaincode. Buffers state effects, applying them to
  /// `host` only when Invoke returns Ok. Peak memory is estimated from
  /// the chaincode's self-reported allocation via stub statistics.
  ExecReceipt Execute(Chaincode* code, const TxContext& ctx,
                      HostInterface* host);
};

/// Global registry so platforms can instantiate chaincode by name
/// ("deploying a Docker image").
class ChaincodeRegistry {
 public:
  static ChaincodeRegistry& Instance();

  void Register(const std::string& name, ChaincodeFactory factory);
  /// NotFound if the name is unknown.
  Result<std::unique_ptr<Chaincode>> Create(const std::string& name) const;
  bool Contains(const std::string& name) const;

 private:
  std::map<std::string, ChaincodeFactory> factories_;
};

}  // namespace bb::vm

#endif  // BLOCKBENCH_VM_NATIVE_H_
