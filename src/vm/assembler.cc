#include "vm/assembler.h"

#include <charconv>
#include <map>
#include <sstream>
#include <vector>

namespace bb::vm {

const char* OpName(Op op) {
  switch (op) {
    case Op::kPushInt: return "PUSH";
    case Op::kPushStr: return "PUSHS";
    case Op::kPop: return "POP";
    case Op::kDup: return "DUP";
    case Op::kSwap: return "SWAP";
    case Op::kAdd: return "ADD";
    case Op::kSub: return "SUB";
    case Op::kMul: return "MUL";
    case Op::kDiv: return "DIV";
    case Op::kMod: return "MOD";
    case Op::kNeg: return "NEG";
    case Op::kLt: return "LT";
    case Op::kGt: return "GT";
    case Op::kLe: return "LE";
    case Op::kGe: return "GE";
    case Op::kEq: return "EQ";
    case Op::kNe: return "NE";
    case Op::kNot: return "NOT";
    case Op::kAnd: return "AND";
    case Op::kOr: return "OR";
    case Op::kJump: return "JUMP";
    case Op::kJumpI: return "JUMPI";
    case Op::kMLoad: return "MLOAD";
    case Op::kMStore: return "MSTORE";
    case Op::kMSize: return "MSIZE";
    case Op::kSLoad: return "SLOAD";
    case Op::kSStore: return "SSTORE";
    case Op::kSExists: return "SEXISTS";
    case Op::kSDelete: return "SDELETE";
    case Op::kCaller: return "CALLER";
    case Op::kTxValue: return "TXVALUE";
    case Op::kArg: return "ARG";
    case Op::kNumArgs: return "NUMARGS";
    case Op::kSend: return "SEND";
    case Op::kConcat: return "CONCAT";
    case Op::kToStr: return "TOSTR";
    case Op::kStrLen: return "STRLEN";
    case Op::kReturn: return "RETURN";
    case Op::kRevert: return "REVERT";
    case Op::kStop: return "STOP";
  }
  return "?";
}

namespace {

struct PendingJump {
  size_t instr_index;
  std::string label;
  int line;
};

Status Err(int line, const std::string& msg) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " + msg);
}

// Simple mnemonics with no immediate operand.
const std::map<std::string, Op>& SimpleOps() {
  static const std::map<std::string, Op> kOps = {
      {"POP", Op::kPop},       {"ADD", Op::kAdd},
      {"SUB", Op::kSub},       {"MUL", Op::kMul},
      {"DIV", Op::kDiv},       {"MOD", Op::kMod},
      {"NEG", Op::kNeg},       {"LT", Op::kLt},
      {"GT", Op::kGt},         {"LE", Op::kLe},
      {"GE", Op::kGe},         {"EQ", Op::kEq},
      {"NE", Op::kNe},         {"NOT", Op::kNot},
      {"AND", Op::kAnd},       {"OR", Op::kOr},
      {"MLOAD", Op::kMLoad},   {"MSTORE", Op::kMStore},
      {"MSIZE", Op::kMSize},   {"SLOAD", Op::kSLoad},
      {"SSTORE", Op::kSStore}, {"SEXISTS", Op::kSExists},
      {"SDELETE", Op::kSDelete}, {"CALLER", Op::kCaller},
      {"TXVALUE", Op::kTxValue}, {"NUMARGS", Op::kNumArgs},
      {"SEND", Op::kSend},     {"CONCAT", Op::kConcat},
      {"TOSTR", Op::kToStr},   {"STRLEN", Op::kStrLen},
      {"RETURN", Op::kReturn}, {"REVERT", Op::kRevert},
      {"STOP", Op::kStop},
  };
  return kOps;
}

Result<std::string> ParseStringLiteral(const std::string& rest, int line) {
  size_t start = rest.find('"');
  if (start == std::string::npos) return Err(line, "expected string literal");
  std::string out;
  bool closed = false;
  for (size_t i = start + 1; i < rest.size(); ++i) {
    char c = rest[i];
    if (c == '\\') {
      if (i + 1 >= rest.size()) return Err(line, "dangling escape");
      char e = rest[++i];
      switch (e) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        default: return Err(line, "unknown escape");
      }
    } else if (c == '"') {
      closed = true;
      break;
    } else {
      out.push_back(c);
    }
  }
  if (!closed) return Err(line, "unterminated string literal");
  return out;
}

}  // namespace

Result<Program> Assemble(const std::string& source) {
  Program prog;
  std::map<std::string, size_t> labels;
  std::vector<PendingJump> pending;
  std::map<std::string, size_t> string_indices;

  auto intern = [&](const std::string& s) -> int64_t {
    auto it = string_indices.find(s);
    if (it != string_indices.end()) return int64_t(it->second);
    prog.string_pool.push_back(s);
    string_indices[s] = prog.string_pool.size() - 1;
    return int64_t(prog.string_pool.size() - 1);
  };

  std::istringstream in(source);
  std::string raw;
  int line_no = 0;
  std::vector<std::string> pending_funcs;

  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments — but not inside string literals.
    std::string line;
    bool in_str = false;
    for (size_t i = 0; i < raw.size(); ++i) {
      char c = raw[i];
      if (c == '"' && (i == 0 || raw[i - 1] != '\\')) in_str = !in_str;
      if (c == ';' && !in_str) break;
      line.push_back(c);
    }
    // Trim.
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    size_t e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    if (line.empty()) continue;

    // Directive: .func NAME
    if (line[0] == '.') {
      std::istringstream ls(line);
      std::string dir, name;
      ls >> dir >> name;
      if (dir != ".func" || name.empty()) return Err(line_no, "bad directive");
      if (prog.functions.count(name)) {
        return Err(line_no, "duplicate function " + name);
      }
      pending_funcs.push_back(name);
      continue;
    }

    // Label: NAME:
    if (line.back() == ':') {
      std::string name = line.substr(0, line.size() - 1);
      if (name.empty()) return Err(line_no, "empty label");
      if (labels.count(name)) return Err(line_no, "duplicate label " + name);
      labels[name] = prog.code.size();
      continue;
    }

    std::istringstream ls(line);
    std::string mnem;
    ls >> mnem;
    for (auto& c : mnem) c = char(std::toupper(uint8_t(c)));

    for (const auto& fn : pending_funcs) prog.functions[fn] = prog.code.size();
    pending_funcs.clear();

    auto simple = SimpleOps().find(mnem);
    if (simple != SimpleOps().end()) {
      prog.code.push_back({simple->second, 0});
      continue;
    }

    if (mnem == "PUSH" || mnem == "ARG" || mnem == "DUP" || mnem == "SWAP") {
      int64_t imm;
      if (!(ls >> imm)) return Err(line_no, mnem + " needs an integer operand");
      if (mnem == "SWAP" && imm < 1) return Err(line_no, "SWAP depth >= 1");
      if ((mnem == "ARG" || mnem == "DUP") && imm < 0) {
        return Err(line_no, mnem + " operand must be >= 0");
      }
      Op op = mnem == "PUSH" ? Op::kPushInt
              : mnem == "ARG" ? Op::kArg
              : mnem == "DUP" ? Op::kDup
                              : Op::kSwap;
      prog.code.push_back({op, imm});
      continue;
    }

    if (mnem == "PUSHS") {
      std::string rest;
      std::getline(ls, rest);
      auto lit = ParseStringLiteral(rest, line_no);
      if (!lit.ok()) return lit.status();
      prog.code.push_back({Op::kPushStr, intern(*lit)});
      continue;
    }

    if (mnem == "JUMP" || mnem == "JUMPI") {
      std::string label;
      if (!(ls >> label)) return Err(line_no, mnem + " needs a label");
      prog.code.push_back(
          {mnem == "JUMP" ? Op::kJump : Op::kJumpI, 0});
      pending.push_back({prog.code.size() - 1, label, line_no});
      continue;
    }

    return Err(line_no, "unknown mnemonic '" + mnem + "'");
  }

  // Functions declared after the last instruction point past the end;
  // treat as error.
  if (!pending_funcs.empty()) {
    return Status::InvalidArgument(".func at end of file has no body");
  }

  for (const auto& pj : pending) {
    auto it = labels.find(pj.label);
    if (it == labels.end()) {
      return Err(pj.line, "undefined label '" + pj.label + "'");
    }
    prog.code[pj.instr_index].imm = int64_t(it->second);
  }

  if (prog.functions.empty() && !prog.code.empty()) {
    prog.functions["main"] = 0;
  }
  return prog;
}

}  // namespace bb::vm
