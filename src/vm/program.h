// Program: assembled contract bytecode — instruction stream, string pool
// and the exported-function table (the contract's ABI).

#ifndef BLOCKBENCH_VM_PROGRAM_H_
#define BLOCKBENCH_VM_PROGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bb::vm {

enum class Op : uint8_t {
  // Stack.
  kPushInt,   // imm: int64 literal
  kPushStr,   // imm: string pool index
  kPop,
  kDup,       // imm: depth (0 = top)
  kSwap,      // imm: depth (>= 1); swaps top with stack[top - depth]
  // Arithmetic (ints). Pops b, a; pushes a OP b.
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  // Comparison / logic. Push 1 or 0.
  kLt, kGt, kLe, kGe, kEq, kNe, kNot, kAnd, kOr,
  // Control flow. imm: instruction index (resolved from labels).
  kJump,
  kJumpI,     // pops cond; jumps when truthy
  // VM memory: a growable array of Values.
  kMLoad,     // pops addr; pushes mem[addr]
  kMStore,    // pops value, addr; mem[addr] = value
  kMSize,     // pushes current memory size
  // Contract storage (persistent, journaled).
  kSLoad,     // pops key(str); pushes stored Value (int 0 when absent)
  kSStore,    // pops value, key(str)
  kSExists,   // pops key; pushes 1/0
  kSDelete,   // pops key
  // Transaction environment.
  kCaller,    // pushes sender address (str)
  kTxValue,   // pushes attached amount (int)
  kArg,       // imm: argument index; pushes tx arg
  kNumArgs,
  // Currency: pops amount(int), to(str); transfers from the contract.
  kSend,
  // Strings.
  kConcat,    // pops b, a; pushes a + b (strings or ints coerced)
  kToStr,     // pops int; pushes decimal string
  kStrLen,
  // Termination.
  kReturn,    // pops return value; halts Ok
  kRevert,    // pops message value; halts Reverted (state rolled back)
  kStop,      // halts Ok, return value int 0
};

const char* OpName(Op op);

struct Instruction {
  Op op;
  int64_t imm = 0;
};

struct Program {
  std::vector<Instruction> code;
  std::vector<std::string> string_pool;
  /// Exported entry points: function name -> instruction index.
  std::map<std::string, size_t> functions;

  /// Rough byte size of the deployed code (for block/tx sizing).
  size_t CodeSize() const { return code.size() * 9; }
};

}  // namespace bb::vm

#endif  // BLOCKBENCH_VM_PROGRAM_H_
