#include "vm/disasm.h"

#include <map>
#include <set>

namespace bb::vm {

namespace {

std::string QuoteString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string Disassemble(const Program& program) {
  // Collect jump targets and name them L<index>.
  std::set<size_t> targets;
  for (const auto& ins : program.code) {
    if (ins.op == Op::kJump || ins.op == Op::kJumpI) {
      targets.insert(size_t(ins.imm));
    }
  }
  // Function entries by instruction index.
  std::map<size_t, std::vector<std::string>> funcs;
  for (const auto& [name, idx] : program.functions) {
    funcs[idx].push_back(name);
  }

  std::string out;
  for (size_t i = 0; i < program.code.size(); ++i) {
    auto fn = funcs.find(i);
    if (fn != funcs.end()) {
      for (const auto& name : fn->second) {
        out += ".func " + name + "\n";
      }
    }
    if (targets.count(i)) {
      out += "L" + std::to_string(i) + ":\n";
    }
    const Instruction& ins = program.code[i];
    out += "  ";
    out += OpName(ins.op);
    switch (ins.op) {
      case Op::kPushInt:
      case Op::kArg:
      case Op::kDup:
      case Op::kSwap:
        out += " " + std::to_string(ins.imm);
        break;
      case Op::kPushStr:
        out += " " + QuoteString(program.string_pool[size_t(ins.imm)]);
        break;
      case Op::kJump:
      case Op::kJumpI:
        out += " L" + std::to_string(ins.imm);
        break;
      default:
        break;
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace bb::vm
