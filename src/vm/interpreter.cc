#include "vm/interpreter.h"

// GCC 12 emits spurious -Wmaybe-uninitialized for std::variant moves under
// optimization (GCC PR105593 and friends); every flagged site is a Value
// temporary that is fully initialized.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <unordered_map>
#include <vector>

namespace bb::vm {

namespace {

// Buffers storage effects during execution; flushed on success only.
class WriteCache {
 public:
  explicit WriteCache(HostInterface* host) : host_(host) {}

  Status Get(const std::string& key, std::string* value) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (!it->second.present) return Status::NotFound();
      *value = it->second.value;
      return Status::Ok();
    }
    return host_->GetState(key, value);
  }

  void Put(const std::string& key, std::string value) {
    cache_[key] = {true, std::move(value)};
  }

  void Delete(const std::string& key) { cache_[key] = {false, {}}; }

  bool Exists(const std::string& key) {
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second.present;
    std::string tmp;
    return host_->GetState(key, &tmp).ok();
  }

  void Transfer(std::string to, int64_t amount) {
    transfers_.emplace_back(std::move(to), amount);
  }

  Status Flush() {
    for (auto& [key, e] : cache_) {
      if (e.present) {
        BB_RETURN_IF_ERROR(host_->PutState(key, e.value));
      } else {
        Status s = host_->DeleteState(key);
        if (!s.ok() && !s.IsNotFound()) return s;
      }
    }
    for (auto& [to, amount] : transfers_) {
      BB_RETURN_IF_ERROR(host_->Transfer(to, amount));
    }
    return Status::Ok();
  }

  size_t num_writes() const { return cache_.size(); }

 private:
  struct Entry {
    bool present;
    std::string value;
  };
  HostInterface* host_;
  std::unordered_map<std::string, Entry> cache_;
  std::vector<std::pair<std::string, int64_t>> transfers_;
};

}  // namespace

ExecReceipt Interpreter::Execute(const Program& program, const TxContext& ctx,
                                 HostInterface* host) {
  ExecReceipt r;
  auto fn = program.functions.find(ctx.function);
  if (fn == program.functions.end()) {
    r.status = Status::InvalidArgument("no such function: " + ctx.function);
    return r;
  }

  std::vector<Value> stack;
  std::vector<Value> memory;
  WriteCache writes(host);
  uint64_t gas = options_.gas.tx_intrinsic;
  uint64_t heap_bytes = 0;   // string payload currently held by stack+memory
  uint64_t peak_words = 0;
  uint64_t peak_heap = 0;
  size_t pc = fn->second;
  // Defeats optimization of the dispatch-overhead spin loop.
  volatile uint32_t spin_sink = 0;

  auto fail = [&](Status s) {
    r.status = std::move(s);
    r.gas_used = gas;
    r.peak_memory_bytes =
        peak_words * options_.word_overhead_bytes + peak_heap;
    return r;
  };

  auto push = [&](Value v) {
    heap_bytes += v.HeapBytes();
    stack.push_back(std::move(v));
  };
  auto pop = [&](Value* out) -> bool {
    if (stack.empty()) return false;
    *out = std::move(stack.back());
    stack.pop_back();
    heap_bytes -= out->HeapBytes();
    return true;
  };

  const GasSchedule& g = options_.gas;

  while (pc < program.code.size()) {
    const Instruction& ins = program.code[pc];
    ++r.ops_executed;
    gas += g.base;
    if (gas > options_.gas_limit) return fail(Status::OutOfGas());
    if (options_.max_ops != 0 && r.ops_executed > options_.max_ops) {
      return fail(Status::Internal("max_ops exceeded (infinite loop?)"));
    }
    if (options_.dispatch_overhead > 0) {
      uint32_t acc = spin_sink;
      for (uint32_t i = 0; i < options_.dispatch_overhead; ++i) {
        acc = acc * 1664525u + 1013904223u;
      }
      spin_sink = acc;
    }

    uint64_t words = stack.size() + memory.size();
    if (words > peak_words) peak_words = words;
    if (heap_bytes > peak_heap) peak_heap = heap_bytes;

    size_t next_pc = pc + 1;
    Value a, b;

    switch (ins.op) {
      case Op::kPushInt:
        push(Value(ins.imm));
        break;
      case Op::kPushStr: {
        if (ins.imm < 0 || size_t(ins.imm) >= program.string_pool.size()) {
          return fail(Status::Corruption("bad string pool index"));
        }
        const std::string& s = program.string_pool[size_t(ins.imm)];
        gas += g.per_str_byte * s.size();
        push(Value(s));
        break;
      }
      case Op::kPop:
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        break;
      case Op::kDup: {
        if (size_t(ins.imm) >= stack.size()) {
          return fail(Status::Reverted("DUP past stack bottom"));
        }
        push(stack[stack.size() - 1 - size_t(ins.imm)]);
        break;
      }
      case Op::kSwap: {
        size_t depth = size_t(ins.imm);
        if (depth >= stack.size()) {
          return fail(Status::Reverted("SWAP past stack bottom"));
        }
        std::swap(stack[stack.size() - 1], stack[stack.size() - 1 - depth]);
        break;
      }

      case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv:
      case Op::kMod: {
        if (!pop(&b) || !pop(&a)) {
          return fail(Status::Reverted("stack underflow"));
        }
        if (!a.is_int() || !b.is_int()) {
          return fail(Status::Reverted("arithmetic on non-int"));
        }
        int64_t x = a.AsInt(), y = b.AsInt(), out = 0;
        switch (ins.op) {
          case Op::kAdd: out = x + y; break;
          case Op::kSub: out = x - y; break;
          case Op::kMul: out = x * y; break;
          case Op::kDiv:
            if (y == 0) return fail(Status::Reverted("division by zero"));
            out = x / y;
            break;
          case Op::kMod:
            if (y == 0) return fail(Status::Reverted("mod by zero"));
            out = x % y;
            break;
          default: break;
        }
        push(Value(out));
        break;
      }
      case Op::kNeg:
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        if (!a.is_int()) return fail(Status::Reverted("NEG on non-int"));
        push(Value(-a.AsInt()));
        break;

      case Op::kLt: case Op::kGt: case Op::kLe: case Op::kGe:
      case Op::kEq: case Op::kNe: {
        if (!pop(&b) || !pop(&a)) {
          return fail(Status::Reverted("stack underflow"));
        }
        bool out = false;
        if (ins.op == Op::kEq) {
          out = a == b;
        } else if (ins.op == Op::kNe) {
          out = !(a == b);
        } else {
          if (a.is_int() != b.is_int()) {
            return fail(Status::Reverted("ordered compare across types"));
          }
          int cmp;
          if (a.is_int()) {
            cmp = a.AsInt() < b.AsInt() ? -1 : (a.AsInt() > b.AsInt() ? 1 : 0);
          } else {
            cmp = a.AsStr().compare(b.AsStr());
            cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
          }
          switch (ins.op) {
            case Op::kLt: out = cmp < 0; break;
            case Op::kGt: out = cmp > 0; break;
            case Op::kLe: out = cmp <= 0; break;
            case Op::kGe: out = cmp >= 0; break;
            default: break;
          }
        }
        push(Value(int64_t(out ? 1 : 0)));
        break;
      }
      case Op::kNot:
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        push(Value(int64_t(a.Truthy() ? 0 : 1)));
        break;
      case Op::kAnd: case Op::kOr: {
        if (!pop(&b) || !pop(&a)) {
          return fail(Status::Reverted("stack underflow"));
        }
        bool out = ins.op == Op::kAnd ? (a.Truthy() && b.Truthy())
                                      : (a.Truthy() || b.Truthy());
        push(Value(int64_t(out ? 1 : 0)));
        break;
      }

      case Op::kJump:
        next_pc = size_t(ins.imm);
        break;
      case Op::kJumpI:
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        if (a.Truthy()) next_pc = size_t(ins.imm);
        break;

      case Op::kMLoad: {
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        if (!a.is_int() || a.AsInt() < 0 ||
            size_t(a.AsInt()) >= memory.size()) {
          return fail(Status::Reverted("MLOAD out of bounds"));
        }
        push(memory[size_t(a.AsInt())]);
        break;
      }
      case Op::kMStore: {
        // Stack order: ... addr value MSTORE  → b=value, a=addr.
        if (!pop(&b) || !pop(&a)) {
          return fail(Status::Reverted("stack underflow"));
        }
        if (!a.is_int() || a.AsInt() < 0) {
          return fail(Status::Reverted("MSTORE bad address"));
        }
        size_t addr = size_t(a.AsInt());
        if (addr >= memory.size()) {
          uint64_t growth = addr + 1 - memory.size();
          gas += g.memory_word * growth;
          if (gas > options_.gas_limit) return fail(Status::OutOfGas());
          if (options_.memory_word_limit != 0 &&
              addr + 1 + stack.size() > options_.memory_word_limit) {
            return fail(Status::OutOfMemory("VM memory limit"));
          }
          memory.resize(addr + 1);
        }
        heap_bytes -= memory[addr].HeapBytes();
        heap_bytes += b.HeapBytes();
        memory[addr] = std::move(b);
        break;
      }
      case Op::kMSize:
        push(Value(int64_t(memory.size())));
        break;

      case Op::kSLoad: {
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        if (!a.is_str()) return fail(Status::Reverted("SLOAD key not str"));
        gas += g.sload;
        if (gas > options_.gas_limit) return fail(Status::OutOfGas());
        ++r.storage_reads;
        std::string raw;
        Status s = writes.Get(a.AsStr(), &raw);
        if (s.IsNotFound()) {
          push(Value(int64_t{0}));
        } else if (!s.ok()) {
          return fail(s);
        } else {
          auto v = Value::Deserialize(raw);
          if (!v.ok()) return fail(v.status());
          gas += g.per_str_byte * raw.size();
          push(std::move(*v));
        }
        break;
      }
      case Op::kSStore: {
        if (!pop(&b) || !pop(&a)) {
          return fail(Status::Reverted("stack underflow"));
        }
        // Stack order: ... key value SSTORE → b=value, a=key.
        if (!a.is_str()) return fail(Status::Reverted("SSTORE key not str"));
        gas += g.sstore + g.per_str_byte * b.HeapBytes();
        if (gas > options_.gas_limit) return fail(Status::OutOfGas());
        ++r.storage_writes;
        writes.Put(a.AsStr(), b.Serialize());
        break;
      }
      case Op::kSExists: {
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        if (!a.is_str()) return fail(Status::Reverted("SEXISTS key not str"));
        gas += g.sload;
        ++r.storage_reads;
        push(Value(int64_t(writes.Exists(a.AsStr()) ? 1 : 0)));
        break;
      }
      case Op::kSDelete: {
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        if (!a.is_str()) return fail(Status::Reverted("SDELETE key not str"));
        gas += g.sdelete;
        ++r.storage_writes;
        writes.Delete(a.AsStr());
        break;
      }

      case Op::kCaller:
        push(Value(ctx.sender));
        break;
      case Op::kTxValue:
        push(Value(ctx.value));
        break;
      case Op::kArg: {
        if (ins.imm < 0 || size_t(ins.imm) >= ctx.args.size()) {
          return fail(Status::Reverted("ARG index out of range"));
        }
        push(ctx.args[size_t(ins.imm)]);
        break;
      }
      case Op::kNumArgs:
        push(Value(int64_t(ctx.args.size())));
        break;

      case Op::kSend: {
        if (!pop(&b) || !pop(&a)) {
          return fail(Status::Reverted("stack underflow"));
        }
        // Stack order: ... to amount SEND → b=amount, a=to.
        if (!a.is_str() || !b.is_int()) {
          return fail(Status::Reverted("SEND wants (str to, int amount)"));
        }
        gas += g.send;
        if (gas > options_.gas_limit) return fail(Status::OutOfGas());
        writes.Transfer(a.AsStr(), b.AsInt());
        break;
      }

      case Op::kConcat: {
        if (!pop(&b) || !pop(&a)) {
          return fail(Status::Reverted("stack underflow"));
        }
        auto str_of = [](const Value& v) {
          return v.is_str() ? v.AsStr() : std::to_string(v.AsInt());
        };
        std::string out = str_of(a) + str_of(b);
        gas += g.per_str_byte * out.size();
        if (gas > options_.gas_limit) return fail(Status::OutOfGas());
        push(Value(std::move(out)));
        break;
      }
      case Op::kToStr:
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        if (!a.is_int()) return fail(Status::Reverted("TOSTR on non-int"));
        push(Value(std::to_string(a.AsInt())));
        break;
      case Op::kStrLen:
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        if (!a.is_str()) return fail(Status::Reverted("STRLEN on non-str"));
        push(Value(int64_t(a.AsStr().size())));
        break;

      case Op::kReturn: {
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        Status s = writes.Flush();
        if (!s.ok()) return fail(s);
        r.return_value = std::move(a);
        r.gas_used = gas;
        r.peak_memory_bytes =
            peak_words * options_.word_overhead_bytes + peak_heap;
        return r;
      }
      case Op::kRevert: {
        if (!pop(&a)) return fail(Status::Reverted("stack underflow"));
        return fail(Status::Reverted(a.is_str() ? a.AsStr() : "reverted"));
      }
      case Op::kStop: {
        Status s = writes.Flush();
        if (!s.ok()) return fail(s);
        r.return_value = Value(int64_t{0});
        r.gas_used = gas;
        r.peak_memory_bytes =
            peak_words * options_.word_overhead_bytes + peak_heap;
        return r;
      }
    }
    pc = next_pc;
  }
  return fail(Status::Reverted("fell off end of code"));
}

}  // namespace bb::vm
