// Assembler: turns contract assembly text into a Program.
//
// Syntax (one statement per line; ';' starts a comment):
//   .func NAME          ; export the next instruction as entry point NAME
//   LABEL:              ; define a jump target
//   PUSH 42             ; push integer literal
//   PUSHS "hello"       ; push string literal (C-like escapes \" \\ \n)
//   ARG 0               ; push transaction argument 0
//   DUP 0 / SWAP 1 / JUMP label / JUMPI label
//   ADD SUB MUL DIV MOD NEG LT GT LE GE EQ NE NOT AND OR
//   MLOAD MSTORE MSIZE SLOAD SSTORE SEXISTS SDELETE
//   CALLER TXVALUE NUMARGS SEND CONCAT TOSTR STRLEN
//   RETURN REVERT STOP

#ifndef BLOCKBENCH_VM_ASSEMBLER_H_
#define BLOCKBENCH_VM_ASSEMBLER_H_

#include <string>

#include "util/status.h"
#include "vm/program.h"

namespace bb::vm {

/// Assembles `source`; on error the Status message includes the line number.
Result<Program> Assemble(const std::string& source);

}  // namespace bb::vm

#endif  // BLOCKBENCH_VM_ASSEMBLER_H_
