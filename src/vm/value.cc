#include "vm/value.h"

#include <charconv>

namespace bb::vm {

std::string Value::Serialize() const {
  if (is_int()) {
    return "i" + std::to_string(AsInt());
  }
  return "s" + AsStr();
}

Result<Value> Value::Deserialize(const std::string& data) {
  if (data.empty()) return Status::Corruption("empty value encoding");
  if (data[0] == 's') return Value(data.substr(1));
  if (data[0] == 'i') {
    int64_t v = 0;
    auto [ptr, ec] =
        std::from_chars(data.data() + 1, data.data() + data.size(), v);
    if (ec != std::errc() || ptr != data.data() + data.size()) {
      return Status::Corruption("bad int value encoding");
    }
    return Value(v);
  }
  return Status::Corruption("unknown value tag");
}

std::string Value::ToDisplayString() const {
  if (is_int()) return std::to_string(AsInt());
  return "\"" + AsStr() + "\"";
}

}  // namespace bb::vm
