// Disassembler: renders an assembled Program back to readable assembly,
// with function entry points and jump targets reconstructed as labels.
// Round-trips with the Assembler: Assemble(Disassemble(p)) produces an
// equivalent program.

#ifndef BLOCKBENCH_VM_DISASM_H_
#define BLOCKBENCH_VM_DISASM_H_

#include <string>

#include "vm/program.h"

namespace bb::vm {

/// Human/assembler-readable listing of `program`.
std::string Disassemble(const Program& program);

}  // namespace bb::vm

#endif  // BLOCKBENCH_VM_DISASM_H_
