// Value: the dynamically-typed word manipulated by the contract VM.
//
// Real EVM words are 256-bit; contract-visible data in the BLOCKBENCH
// workloads is integers and short byte strings, so Value is a tagged
// int64/string. The *memory accounting* of boxed VM words (what made geth
// use 22 GB to sort 10M integers) is modelled separately via
// VmOptions::word_overhead_bytes.

#ifndef BLOCKBENCH_VM_VALUE_H_
#define BLOCKBENCH_VM_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace bb::vm {

class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t i) : v_(i) {}                 // NOLINT
  Value(int i) : v_(int64_t{i}) {}            // NOLINT
  Value(std::string s) : v_(std::move(s)) {}  // NOLINT
  Value(const char* s) : v_(std::string(s)) {}  // NOLINT

  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_str() const { return !is_int(); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  const std::string& AsStr() const { return std::get<std::string>(v_); }

  /// Truthiness: nonzero int or non-empty string.
  bool Truthy() const {
    return is_int() ? AsInt() != 0 : !AsStr().empty();
  }

  /// Bytes this value occupies beyond a fixed word (string payload).
  size_t HeapBytes() const { return is_str() ? AsStr().size() : 0; }

  bool operator==(const Value& o) const { return v_ == o.v_; }

  /// Wire form: "i<decimal>" or "s<bytes>". Round-trips exactly.
  std::string Serialize() const;
  static Result<Value> Deserialize(const std::string& data);

  std::string ToDisplayString() const;

 private:
  std::variant<int64_t, std::string> v_;
};

using Args = std::vector<Value>;

}  // namespace bb::vm

#endif  // BLOCKBENCH_VM_VALUE_H_
