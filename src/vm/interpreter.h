// Interpreter: the gas-metered stack VM that executes assembled contracts
// (the EVM stand-in used by the Ethereum and Parity platform models).
//
// Semantics mirrored from the paper's description of the EVM:
//   - every instruction costs gas; execution halts with OutOfGas when the
//     budget is exhausted;
//   - all storage writes are buffered and applied to the host only on
//     success, so a failed/reverted transaction leaves no trace;
//   - execution is strictly sequential (single core), like all three
//     systems the paper measured.

#ifndef BLOCKBENCH_VM_INTERPRETER_H_
#define BLOCKBENCH_VM_INTERPRETER_H_

#include <cstdint>

#include "vm/host.h"
#include "vm/program.h"

namespace bb::vm {

/// Per-opcode gas costs (loosely modelled on the EVM fee schedule).
struct GasSchedule {
  /// Flat cost charged to every transaction before the first instruction
  /// (the EVM's 21000 intrinsic gas, rescaled to this VM's units).
  uint64_t tx_intrinsic = 0;
  uint64_t base = 1;           // every instruction
  uint64_t sload = 50;
  uint64_t sstore = 200;
  uint64_t sdelete = 100;
  uint64_t send = 300;
  uint64_t memory_word = 1;    // per word of memory growth
  uint64_t per_str_byte = 1;   // string ops, per byte touched
};

struct VmOptions {
  GasSchedule gas;
  uint64_t gas_limit = 100'000'000'000ULL;
  /// Hard cap on VM memory (in words); 0 = unlimited. Exceeding it halts
  /// with OutOfMemory (geth's OOM in CPUHeavy at 100M elements).
  uint64_t memory_word_limit = 0;
  /// Accounted bytes per memory/stack word, modelling boxed 256-bit words
  /// plus allocator overhead. geth ≈ 2200 B/word in the paper's CPUHeavy;
  /// Parity ≈ 200.
  uint64_t word_overhead_bytes = 32;
  /// Extra interpretation work per instruction, in spin iterations.
  /// Models geth's slower dispatch/bookkeeping relative to Parity's
  /// optimized EVM. 0 = tight loop.
  uint32_t dispatch_overhead = 0;
  /// Safety net against infinite loops in tests (0 = rely on gas).
  uint64_t max_ops = 0;
};

class Interpreter {
 public:
  explicit Interpreter(VmOptions options = {}) : options_(options) {}

  /// Runs `function` of `program` under `ctx` against `host`.
  /// On Ok the buffered writes/transfers have been applied to the host;
  /// on any error the host is untouched.
  ExecReceipt Execute(const Program& program, const TxContext& ctx,
                      HostInterface* host);

  const VmOptions& options() const { return options_; }

 private:
  VmOptions options_;
};

}  // namespace bb::vm

#endif  // BLOCKBENCH_VM_INTERPRETER_H_
