#include "vm/native.h"

#include <unordered_map>

namespace bb::vm {

namespace {

// Journal identical in spirit to the interpreter's WriteCache.
class JournaledStub : public HostInterface {
 public:
  explicit JournaledStub(HostInterface* host) : host_(host) {}

  Status GetState(const std::string& key, std::string* value) override {
    ++reads_;
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (!it->second.present) return Status::NotFound();
      *value = it->second.value;
      return Status::Ok();
    }
    return host_->GetState(key, value);
  }

  Status PutState(const std::string& key, const std::string& value) override {
    ++writes_;
    bytes_written_ += key.size() + value.size();
    cache_[key] = {true, value};
    return Status::Ok();
  }

  Status DeleteState(const std::string& key) override {
    ++writes_;
    cache_[key] = {false, {}};
    return Status::Ok();
  }

  Status Transfer(const std::string& to, int64_t amount) override {
    transfers_.emplace_back(to, amount);
    return Status::Ok();
  }

  Status Flush() {
    for (auto& [key, e] : cache_) {
      if (e.present) {
        BB_RETURN_IF_ERROR(host_->PutState(key, e.value));
      } else {
        Status s = host_->DeleteState(key);
        if (!s.ok() && !s.IsNotFound()) return s;
      }
    }
    for (auto& [to, amount] : transfers_) {
      BB_RETURN_IF_ERROR(host_->Transfer(to, amount));
    }
    return Status::Ok();
  }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  struct Entry {
    bool present;
    std::string value;
  };
  HostInterface* host_;
  std::unordered_map<std::string, Entry> cache_;
  std::vector<std::pair<std::string, int64_t>> transfers_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace

ExecReceipt NativeRuntime::Execute(Chaincode* code, const TxContext& ctx,
                                   HostInterface* host) {
  ExecReceipt r;
  JournaledStub stub(host);
  Value result;
  Status s = code->Invoke(ctx, &stub, &result);
  r.storage_reads = stub.reads();
  r.storage_writes = stub.writes();
  if (!s.ok()) {
    r.status = std::move(s);
    return r;
  }
  s = stub.Flush();
  if (!s.ok()) {
    r.status = std::move(s);
    return r;
  }
  r.return_value = std::move(result);
  // Native execution has no gas; report work as ops for symmetry.
  r.ops_executed = stub.reads() + stub.writes();
  r.peak_memory_bytes = stub.bytes_written();
  return r;
}

ChaincodeRegistry& ChaincodeRegistry::Instance() {
  static ChaincodeRegistry* registry = new ChaincodeRegistry();
  return *registry;
}

void ChaincodeRegistry::Register(const std::string& name,
                                 ChaincodeFactory factory) {
  factories_[name] = std::move(factory);
}

Result<std::unique_ptr<Chaincode>> ChaincodeRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("no chaincode named " + name);
  }
  return it->second();
}

bool ChaincodeRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

}  // namespace bb::vm
