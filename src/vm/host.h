// HostInterface: what a contract execution can touch — its own storage
// namespace plus currency transfers. Implemented by the platform models
// (backed by Patricia trie / bucket tree state) and by plain map hosts in
// tests.

#ifndef BLOCKBENCH_VM_HOST_H_
#define BLOCKBENCH_VM_HOST_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/status.h"
#include "vm/value.h"

namespace bb::vm {

class HostInterface {
 public:
  virtual ~HostInterface() = default;

  /// Reads a key from the contract's storage. NotFound when absent.
  virtual Status GetState(const std::string& key, std::string* value) = 0;
  /// Writes a key. Can fail (e.g. OutOfMemory on the Parity model).
  virtual Status PutState(const std::string& key, const std::string& value) = 0;
  virtual Status DeleteState(const std::string& key) = 0;
  /// Moves `amount` from the contract's balance to `to`.
  virtual Status Transfer(const std::string& to, int64_t amount) = 0;
};

/// An in-memory host; also the commit buffer used to journal writes.
class MapHost : public HostInterface {
 public:
  Status GetState(const std::string& key, std::string* value) override {
    auto it = state_.find(key);
    if (it == state_.end()) return Status::NotFound();
    *value = it->second;
    return Status::Ok();
  }
  Status PutState(const std::string& key, const std::string& value) override {
    state_[key] = value;
    return Status::Ok();
  }
  Status DeleteState(const std::string& key) override {
    if (state_.erase(key) == 0) return Status::NotFound();
    return Status::Ok();
  }
  Status Transfer(const std::string& to, int64_t amount) override {
    transfers_.emplace_back(to, amount);
    return Status::Ok();
  }

  std::map<std::string, std::string>& state() { return state_; }
  const std::vector<std::pair<std::string, int64_t>>& transfers() const {
    return transfers_;
  }

 private:
  std::map<std::string, std::string> state_;
  std::vector<std::pair<std::string, int64_t>> transfers_;
};

/// Per-invocation transaction context.
struct TxContext {
  std::string sender;
  int64_t value = 0;      // currency attached to the call
  std::string function;   // entry point name
  Args args;
  /// Height of the block this transaction executes in (0 for local
  /// queries). Chaincode uses it to version historical state.
  uint64_t block_height = 0;
};

/// What an execution produced.
struct ExecReceipt {
  Status status = Status::Ok();
  Value return_value;
  uint64_t gas_used = 0;
  uint64_t ops_executed = 0;
  /// Peak VM memory in *accounted* bytes (includes the platform's
  /// per-word boxing overhead).
  uint64_t peak_memory_bytes = 0;
  uint64_t storage_reads = 0;
  uint64_t storage_writes = 0;
};

}  // namespace bb::vm

#endif  // BLOCKBENCH_VM_HOST_H_
