// Consensus engine abstraction.
//
// A PlatformNode owns one Engine and forwards network messages to it; the
// engine drives block production/agreement through the ConsensusHost
// callbacks. Concrete engines: ProofOfWork (Ethereum model),
// ProofOfAuthority (Parity model), Pbft (Hyperledger model).

#ifndef BLOCKBENCH_CONSENSUS_ENGINE_H_
#define BLOCKBENCH_CONSENSUS_ENGINE_H_

#include <any>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/block.h"
#include "chain/chain_store.h"
#include "obs/memtrack.h"
#include "obs/metrics.h"
#include "sim/network.h"

namespace bb::consensus {

/// Payload for block-carrying messages (shared so broadcast is cheap).
using BlockPtr = std::shared_ptr<const chain::Block>;

/// The node-side services a consensus engine needs.
class ConsensusHost {
 public:
  virtual ~ConsensusHost() = default;

  virtual sim::NodeId node_id() const = 0;
  virtual size_t num_nodes() const = 0;
  /// First node id of this engine's consensus group. The group spans ids
  /// [peer_base, peer_base + num_nodes); unsharded platforms keep the
  /// default 0. Engines must derive leader/proposer rotation and peer
  /// loops from this base rather than assuming ids start at 0.
  virtual sim::NodeId peer_base() const { return 0; }
  virtual sim::Simulation* host_sim() = 0;
  virtual double HostNow() const = 0;

  virtual void HostBroadcast(const std::string& type, std::any payload,
                             uint64_t size_bytes) = 0;
  virtual bool HostSend(sim::NodeId to, const std::string& type,
                        std::any payload, uint64_t size_bytes) = 0;

  /// Assembles a candidate block extending `parent` (which may itself be
  /// a not-yet-executed proposal — PBFT pipelines batches) at height
  /// parent_height + 1, from the local tx pool. Returns nullopt when the
  /// pool is empty and !allow_empty. *build_cpu receives the CPU seconds
  /// spent assembling/executing.
  virtual std::optional<chain::Block> BuildBlock(const Hash256& parent,
                                                 uint64_t parent_height,
                                                 bool allow_empty,
                                                 double* build_cpu) = 0;

  /// Validates, executes and appends a block. Returns false when the
  /// block did not attach (its parent is unknown — the node is behind).
  /// *cpu receives the CPU seconds consumed. Takes a shared handle: the
  /// store keeps the same Block instance the network delivered, so a
  /// commit is a pointer hand-off, not a copy.
  virtual bool CommitBlock(chain::BlockPtr block, double* cpu) = 0;

  virtual const chain::ChainStore& chain_store() const = 0;
  virtual size_t pending_txs() const = 0;

  /// Returns abandoned transactions (e.g. from a proposal discarded by a
  /// view change) to the pool.
  virtual void RequeueTxs(std::vector<chain::Transaction> txs) = 0;

  /// Records CPU that runs off the message-handling path (mining).
  virtual void ChargeBackground(double cpu_seconds) = 0;
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual void Start(ConsensusHost* host) = 0;
  /// Handles a consensus message. Returns false when the type is not a
  /// consensus message. *cpu accumulates processing cost.
  virtual bool HandleMessage(const sim::Message& msg, double* cpu) = 0;
  /// Called by the node when new transactions entered the pool.
  virtual void OnNewTransactions() {}
  virtual void OnCrash() {}
  virtual void OnRestart() {}

  /// Protocol name for logs ("pow", "poa", "pbft").
  virtual const char* name() const = 0;

  /// Exports engine-specific counters/gauges (view changes, blocks
  /// mined, election count, ...) into `reg` under `labels`; called
  /// post-run by Platform::ExportMetrics. Default: nothing to export.
  virtual void ExportMetrics(obs::MetricsRegistry* reg,
                             const obs::Labels& labels) const {
    (void)reg;
    (void)labels;
  }

  /// One live probe for the obs::Sampler: `fn` is polled at every
  /// sampling tick while the run is in flight (names are static
  /// strings, e.g. "pbft.view").
  struct LiveGauge {
    const char* name;
    std::function<double()> fn;
  };
  /// Engine state worth watching live (current view/term/round, blocks
  /// sealed so far, ...). The returned closures must stay valid for the
  /// engine's lifetime. Default: nothing to watch.
  virtual std::vector<LiveGauge> LiveGauges() { return {}; }

  /// Logical bytes of live protocol bookkeeping — in-flight instances,
  /// vote sets, pending log entries, unexecuted proposal payloads —
  /// feeding the mem-observability consensus.bookkeeping subsystem.
  /// Container entries are costed with the obs::mem sizing constants so
  /// the model is deterministic and identical across platforms (what
  /// the N-scaling gates compare). Default: stateless protocol.
  virtual uint64_t BookkeepingBytes() const { return 0; }

 protected:
  /// Shared chain-sync fallback for gossip-based engines: when a
  /// received block does not attach (missing ancestors — e.g. after a
  /// healed partition), ask the sender for the canonical blocks above
  /// our head. Rate-limited to one outstanding request.
  void RequestSync(ConsensusHost* host, sim::NodeId from);
  /// Handles "sync_fetchreq" / "sync_blocks"; returns true if consumed.
  bool HandleSync(ConsensusHost* host, const sim::Message& msg, double* cpu);

  struct SyncFetchReq {
    uint64_t from_height;
  };
  struct SyncBlocks {
    std::vector<BlockPtr> blocks;
  };

 private:
  double last_sync_request_ = -1e9;
  /// How far below our head sync requests start. Doubles on each request
  /// until fetched blocks attach (the fork point may be arbitrarily deep),
  /// then resets.
  uint64_t sync_window_ = 8;
};

}  // namespace bb::consensus

#endif  // BLOCKBENCH_CONSENSUS_ENGINE_H_
