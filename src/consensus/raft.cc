#include "consensus/raft.h"

#include <algorithm>

#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace bb::consensus {

namespace {
constexpr uint64_t kControlBytes = 80;
}

void Raft::Start(ConsensusHost* host) {
  host_ = host;
  active_ = true;
  committed_height_ = LogHeight();
  ResetElectionTimer();
  Poll();
  ElectionCheck();
}

void Raft::OnCrash() { active_ = false; }

void Raft::OnRestart() {
  if (host_ == nullptr) return;
  active_ = true;
  role_ = Role::kFollower;
  pending_log_.clear();
  votes_.clear();
  committed_height_ = LogHeight();
  ResetElectionTimer();
  Poll();
  ElectionCheck();
}

void Raft::OnNewTransactions() {
  if (active_ && role_ == Role::kLeader) MaybePropose();
}

void Raft::ResetElectionTimer() {
  double timeout =
      config_.election_timeout_min +
      rng_.NextDouble() *
          (config_.election_timeout_max - config_.election_timeout_min);
  election_deadline_ = host_->HostNow() + timeout;
}

void Raft::Poll() {
  if (!active_) return;
  if (role_ == Role::kLeader) MaybePropose();
  host_->host_sim()->After(config_.poll_interval, [this] { Poll(); });
}

void Raft::ElectionCheck() {
  if (!active_) return;
  if (role_ != Role::kLeader && host_->HostNow() >= election_deadline_) {
    if (auto* rec = host_->host_sim()->recorder()) {
      rec->Timer(uint32_t(host_->node_id()), host_->HostNow(),
                 "raft.election_timeout", term_ + 1);
    }
    StartElection();
  }
  host_->host_sim()->After(0.1, [this] { ElectionCheck(); });
}

void Raft::StartElection() {
  ++term_;
  ++elections_started_;
  if (election_start_ < 0) election_start_ = host_->HostNow();
  role_ = Role::kCandidate;
  votes_.clear();
  votes_.insert(host_->node_id());
  voted_for_[term_] = host_->node_id();
  ResetElectionTimer();
  uint64_t last = std::max(LogHeight(),
                           pending_log_.empty() ? 0 : pending_log_.rbegin()->first);
  host_->HostBroadcast("raft_requestvote", RequestVoteMsg{term_, last},
                       kControlBytes);
  if (votes_.size() >= Majority()) BecomeLeader();  // single-node cluster
}

void Raft::BecomeLeader() {
  if (election_start_ >= 0) {
    if (auto* tr = host_->host_sim()->tracer()) {
      tr->CompleteSpan(uint32_t(host_->node_id()), "consensus",
                       "raft.election", election_start_, host_->HostNow(),
                       "term", double(term_));
    }
    election_start_ = -1;
  }
  if (auto* rec = host_->host_sim()->recorder()) {
    rec->Phase(uint32_t(host_->node_id()), host_->HostNow(),
               "raft.election", term_);
  }
  role_ = Role::kLeader;
  match_height_.clear();
  // Re-replicate our surviving pending tail; peers report their actual
  // match heights through AppendReply.
  SendHeartbeats();
  MaybePropose();
  HeartbeatLoop(term_);
}

void Raft::HeartbeatLoop(uint64_t tenure_term) {
  if (!active_ || role_ != Role::kLeader || term_ != tenure_term) return;
  host_->host_sim()->After(config_.heartbeat_interval, [this, tenure_term] {
    if (!active_ || role_ != Role::kLeader || term_ != tenure_term) return;
    SendHeartbeats();
    HeartbeatLoop(tenure_term);
  });
}

void Raft::BecomeFollower(uint64_t term) {
  term_ = term;
  if (role_ == Role::kLeader) {
    // Unreplicated tail dies with the tenure; recycle its transactions.
    for (auto& [h, b] : pending_log_) {
      if (h > committed_height_ && b != nullptr &&
          b->header.proposer == host_->node_id()) {
        host_->RequeueTxs(b->txs);
      }
    }
    pending_log_.clear();
  }
  role_ = Role::kFollower;
  votes_.clear();
  election_start_ = -1;  // another node won; no election span from us
  propose_time_.clear();
  ResetElectionTimer();
}

void Raft::MaybePropose() {
  if (role_ != Role::kLeader) return;
  size_t pending = host_->pending_txs();
  if (pending == 0) return;
  if (pending < config_.batch_size &&
      host_->HostNow() - last_proposal_time_ < config_.batch_timeout) {
    return;
  }
  // One in-flight uncommitted entry at a time keeps replication simple.
  uint64_t tail = pending_log_.empty() ? committed_height_
                                       : pending_log_.rbegin()->first;
  if (tail > committed_height_ + 3) return;  // replication window

  Hash256 parent = tail == LogHeight()
                       ? host_->chain_store().head()
                       : pending_log_.at(tail)->HashOf();
  double build_cpu = 0;
  auto block = host_->BuildBlock(parent, tail, /*allow_empty=*/false,
                                 &build_cpu);
  if (!block.has_value()) return;
  host_->ChargeBackground(build_cpu);
  block->header.proposer = host_->node_id();
  block->header.timestamp = host_->HostNow();
  block->header.nonce = term_;
  block->header.weight = 1;
  auto ptr = std::make_shared<const chain::Block>(std::move(*block));
  pending_log_[tail + 1] = ptr;
  if (host_->host_sim()->tracer() != nullptr) {
    propose_time_[tail + 1] = host_->HostNow();
  }
  last_proposal_time_ = host_->HostNow();
  sim::NodeId base = host_->peer_base();
  for (sim::NodeId peer = base; peer < base + host_->num_nodes(); ++peer) {
    if (peer != host_->node_id()) ReplicateTo(peer);
  }
}

void Raft::ReplicateTo(sim::NodeId peer) {
  uint64_t match = 0;
  auto it = match_height_.find(peer);
  if (it != match_height_.end()) match = it->second;
  uint64_t next = match + 1;
  uint64_t tail = pending_log_.empty() ? committed_height_
                                       : pending_log_.rbegin()->first;
  if (next > tail) return;  // up to date

  BlockPtr block;
  auto pend = pending_log_.find(next);
  if (pend != pending_log_.end()) {
    block = pend->second;
  } else {
    block = host_->chain_store().CanonicalAtPtr(next);
    if (block == nullptr) return;
  }
  Hash256 prev_hash;
  if (next - 1 > 0) {
    auto prev_pend = pending_log_.find(next - 1);
    if (prev_pend != pending_log_.end()) {
      prev_hash = prev_pend->second->HashOf();
    } else {
      const chain::Block* pb = host_->chain_store().CanonicalAt(next - 1);
      if (pb != nullptr) prev_hash = pb->HashOf();
    }
  } else {
    prev_hash = host_->chain_store().CanonicalAt(0)->HashOf();
  }
  host_->HostSend(peer, "raft_append",
                  AppendEntriesMsg{term_, next - 1, prev_hash, block,
                                   committed_height_},
                  kControlBytes + block->SizeBytes());
}

void Raft::SendHeartbeats() {
  host_->HostBroadcast(
      "raft_append",
      AppendEntriesMsg{term_, 0, Hash256::Zero(), nullptr, committed_height_},
      kControlBytes);
  // Also push replication forward for laggards.
  sim::NodeId base = host_->peer_base();
  for (sim::NodeId peer = base; peer < base + host_->num_nodes(); ++peer) {
    if (peer != host_->node_id()) ReplicateTo(peer);
  }
}

bool Raft::HandleMessage(const sim::Message& msg, double* cpu) {
  BB_PROF_SCOPE("consensus.raft.handle");
  if (HandleSync(host_, msg, cpu)) {
    committed_height_ = std::max(committed_height_, LogHeight());
    return true;
  }
  if (!msg.type.starts_with("raft_")) return false;
  *cpu += config_.per_message_cpu;
  if (!active_ || msg.corrupted) return true;  // crash model: drop garbage

  if (msg.type == "raft_requestvote") {
    OnRequestVote(msg.from, std::any_cast<RequestVoteMsg>(msg.payload));
  } else if (msg.type == "raft_vote") {
    OnVoteGranted(msg.from, std::any_cast<VoteGrantedMsg>(msg.payload));
  } else if (msg.type == "raft_append") {
    OnAppendEntries(msg.from, std::any_cast<AppendEntriesMsg>(msg.payload),
                    cpu);
  } else if (msg.type == "raft_appendreply") {
    OnAppendReply(msg.from, std::any_cast<AppendReplyMsg>(msg.payload), cpu);
  }
  return true;
}

void Raft::OnRequestVote(sim::NodeId from, const RequestVoteMsg& m) {
  if (m.term > term_) BecomeFollower(m.term);
  if (m.term < term_) return;
  uint64_t our_last = std::max(
      LogHeight(), pending_log_.empty() ? 0 : pending_log_.rbegin()->first);
  auto voted = voted_for_.find(m.term);
  bool can_vote = voted == voted_for_.end() || voted->second == from;
  if (can_vote && m.last_log_height >= our_last) {
    voted_for_[m.term] = from;
    ResetElectionTimer();
    host_->HostSend(from, "raft_vote", VoteGrantedMsg{m.term}, kControlBytes);
  }
}

void Raft::OnVoteGranted(sim::NodeId from, const VoteGrantedMsg& m) {
  if (role_ != Role::kCandidate || m.term != term_) return;
  votes_.insert(from);
  if (votes_.size() >= Majority()) BecomeLeader();
}

void Raft::OnAppendEntries(sim::NodeId from, const AppendEntriesMsg& m,
                           double* cpu) {
  if (m.term < term_) {
    host_->HostSend(from, "raft_appendreply",
                    AppendReplyMsg{term_, false, committed_height_},
                    kControlBytes);
    return;
  }
  if (m.term > term_ || role_ != Role::kFollower) BecomeFollower(m.term);
  term_ = m.term;
  ResetElectionTimer();

  if (m.block != nullptr) {
    *cpu += config_.tx_validate_cpu * double(m.block->txs.size());
    uint64_t h = m.prev_height + 1;
    // Consistency check against our log at prev_height.
    bool prev_ok;
    if (m.prev_height <= LogHeight()) {
      const chain::Block* pb = host_->chain_store().CanonicalAt(m.prev_height);
      prev_ok = pb != nullptr && pb->HashOf() == m.prev_hash;
    } else {
      auto it = pending_log_.find(m.prev_height);
      prev_ok = it != pending_log_.end() && it->second->HashOf() == m.prev_hash;
    }
    if (!prev_ok || h <= committed_height_) {
      host_->HostSend(from, "raft_appendreply",
                      AppendReplyMsg{term_, false, committed_height_},
                      kControlBytes);
      return;
    }
    // Overwrite any conflicting pending tail from an older tenure.
    const Hash256 incoming_hash = m.block->HashOf();
    for (auto it = pending_log_.lower_bound(h); it != pending_log_.end();) {
      if (it->second->HashOf() != incoming_hash) {
        it = pending_log_.erase(it);
      } else {
        ++it;
      }
    }
    pending_log_[h] = m.block;
  }

  // Apply everything the leader has committed.
  uint64_t target = std::min(
      m.leader_commit,
      pending_log_.empty() ? committed_height_ : pending_log_.rbegin()->first);
  while (committed_height_ < target) {
    auto it = pending_log_.find(committed_height_ + 1);
    if (it == pending_log_.end()) break;
    double commit_cpu = 0;
    host_->CommitBlock(it->second, &commit_cpu);
    *cpu += commit_cpu;
    pending_log_.erase(it);
    ++committed_height_;
  }
  committed_height_ = std::max(committed_height_, LogHeight());

  uint64_t match = std::max(
      LogHeight(), pending_log_.empty() ? 0 : pending_log_.rbegin()->first);
  host_->HostSend(from, "raft_appendreply", AppendReplyMsg{term_, true, match},
                  kControlBytes);
}

void Raft::OnAppendReply(sim::NodeId from, const AppendReplyMsg& m,
                         double* cpu) {
  if (m.term > term_) {
    BecomeFollower(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  if (m.success) {
    match_height_[from] = std::max(match_height_[from], m.match_height);
    AdvanceCommit(cpu);
    ReplicateTo(from);
  } else {
    // Laggard: restart replication from its committed height.
    match_height_[from] = m.match_height;
    ReplicateTo(from);
  }
}

void Raft::AdvanceCommit(double* cpu) {
  uint64_t tail = pending_log_.empty() ? committed_height_
                                       : pending_log_.rbegin()->first;
  while (committed_height_ < tail) {
    uint64_t h = committed_height_ + 1;
    size_t acks = 1;  // self
    for (const auto& [peer, match] : match_height_) {
      if (match >= h) ++acks;
    }
    if (acks < Majority()) break;
    auto it = pending_log_.find(h);
    if (it == pending_log_.end()) break;
    double commit_cpu = 0;
    host_->CommitBlock(it->second, &commit_cpu);
    *cpu += commit_cpu;
    if (auto* tr = host_->host_sim()->tracer()) {
      auto pt = propose_time_.find(h);
      if (pt != propose_time_.end()) {
        tr->CompleteSpan(uint32_t(host_->node_id()), "consensus",
                         "raft.replicate", pt->second, host_->HostNow(),
                         "height", double(h));
        propose_time_.erase(pt);
      }
    }
    if (auto* rec = host_->host_sim()->recorder()) {
      rec->Phase(uint32_t(host_->node_id()), host_->HostNow(),
                 "raft.replicate", h, term_);
    }
    pending_log_.erase(it);
    ++committed_height_;
  }
  if (role_ == Role::kLeader) MaybePropose();
}

void Raft::ExportMetrics(obs::MetricsRegistry* reg,
                         const obs::Labels& labels) const {
  reg->AddCounter("consensus.elections", labels, elections_started_);
  reg->SetGauge("consensus.term", labels, double(term_));
}

}  // namespace bb::consensus
