#include "consensus/tendermint.h"

#include <algorithm>

#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace bb::consensus {

namespace {
constexpr uint64_t kVoteBytes = 110;
}

void Tendermint::Start(ConsensusHost* host) {
  host_ = host;
  active_ = true;
  round_ = 0;
  last_commit_time_ = host_->HostNow();
  Poll();
  StartRoundTimer();
}

void Tendermint::OnCrash() { active_ = false; }

void Tendermint::OnRestart() {
  if (host_ == nullptr) return;
  active_ = true;
  round_ = 0;
  rounds_.clear();
  last_commit_time_ = host_->HostNow();
  Poll();
  StartRoundTimer();
}

void Tendermint::OnNewTransactions() {
  if (active_) MaybePropose();
}

sim::NodeId Tendermint::ProposerOf(uint64_t height, uint64_t round) const {
  // Stake-weighted round robin: validators appear in the rotation in
  // proportion to their stake, deterministically from (height, round).
  size_t n = host_->num_nodes();
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += config_.stake[i % config_.stake.size()];
  }
  // Derive a deterministic, well-mixed position along the cumulative
  // stake line — consecutive rounds must land on different validators
  // or a crashed proposer would stall the height for many rounds.
  uint64_t x = height * 0x9e3779b97f4a7c15ULL ^
               (round + 1) * 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 30;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 27;
  double point = double(x % 99991) / 99991.0 * total;
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += config_.stake[i % config_.stake.size()];
    if (point < acc) return sim::NodeId(host_->peer_base() + i);
  }
  return sim::NodeId(host_->peer_base() + n - 1);
}

void Tendermint::Poll() {
  if (!active_) return;
  MaybePropose();
  PruneOldRounds();
  host_->host_sim()->After(config_.poll_interval, [this] { Poll(); });
}

void Tendermint::MaybePropose() {
  if (!IsProposer()) return;
  uint64_t h = Height() + 1;
  RoundState& rs = State(h, round_);
  if (rs.proposal != nullptr) return;  // already proposed this round
  size_t pending = host_->pending_txs();
  if (pending == 0) return;
  if (pending < config_.batch_size &&
      host_->HostNow() - last_proposal_time_ < config_.batch_timeout) {
    return;
  }

  double build_cpu = 0;
  auto block = host_->BuildBlock(host_->chain_store().head(), Height(),
                                 /*allow_empty=*/false, &build_cpu);
  if (!block.has_value()) return;
  host_->ChargeBackground(build_cpu);
  block->header.proposer = host_->node_id();
  block->header.timestamp = host_->HostNow();
  block->header.nonce = (h << 16) | round_;
  block->header.weight = 1;
  auto ptr = std::make_shared<const chain::Block>(std::move(*block));
  ++blocks_proposed_;
  last_proposal_time_ = host_->HostNow();

  rs.proposal = ptr;
  rs.proposal_hash = ptr->HashOf();
  rs.sent_prevote = true;
  rs.prevotes.insert(host_->node_id());
  rs.t_proposal = host_->HostNow();
  if (auto* tr = host_->host_sim()->tracer()) {
    tr->Instant(uint32_t(host_->node_id()), "consensus", "tm.propose",
                host_->HostNow(), "height", double(h));
  }
  if (auto* rec = host_->host_sim()->recorder()) {
    rec->Phase(uint32_t(host_->node_id()), host_->HostNow(), "tm.propose", h,
               round_);
  }
  host_->HostBroadcast("tm_proposal", ProposalMsg{h, round_, ptr},
                       ptr->SizeBytes());
  host_->HostBroadcast("tm_prevote", VoteMsg{h, round_, rs.proposal_hash},
                       kVoteBytes);
}

double RoundTimeoutFor(const TendermintConfig& cfg, uint64_t round) {
  return cfg.round_timeout + cfg.round_timeout_delta * double(round);
}

void Tendermint::StartRoundTimer() {
  if (!active_) return;
  // Periodic progress check (robust to commits resetting the round): if
  // the current round has outlived its timeout without a commit, move on.
  host_->host_sim()->After(0.25, [this] {
    OnRoundTimeout(Height() + 1, round_);
    StartRoundTimer();
  });
}

void Tendermint::OnRoundTimeout(uint64_t height, uint64_t round) {
  if (!active_) return;
  if (Height() + 1 != height || round_ != round) return;
  double round_age = host_->HostNow() - std::max(last_commit_time_, round_start_time_);
  if (round_age < RoundTimeoutFor(config_, round)) return;
  // No progress this round and there is work to do.
  if (host_->pending_txs() > 0 || !rounds_.empty()) {
    if (auto* rec = host_->host_sim()->recorder()) {
      rec->Timer(uint32_t(host_->node_id()), host_->HostNow(),
                 "tm.round_timeout", round);
    }
    AdvanceRound();
  } else {
    round_start_time_ = host_->HostNow();  // idle: restart the clock
  }
}

void Tendermint::AdvanceRound() {
  ++rounds_failed_;
  ++round_;
  round_start_time_ = host_->HostNow();
  if (auto* tr = host_->host_sim()->tracer()) {
    tr->Instant(uint32_t(host_->node_id()), "consensus", "tm.round_failed",
                host_->HostNow(), "round", double(round_ - 1));
  }
  if (auto* rec = host_->host_sim()->recorder()) {
    rec->Phase(uint32_t(host_->node_id()), host_->HostNow(),
               "tm.round_failed", Height() + 1, round_ - 1);
  }
  // The failed round's proposal (ours or the proposer's) is abandoned;
  // requeue what we proposed ourselves.
  auto it = rounds_.find({Height() + 1, round_ - 1});
  if (it != rounds_.end() && it->second.proposal != nullptr &&
      it->second.proposal->header.proposer == host_->node_id()) {
    host_->RequeueTxs(it->second.proposal->txs);
  }
  MaybePropose();
}

bool Tendermint::HandleMessage(const sim::Message& msg, double* cpu) {
  BB_PROF_SCOPE("consensus.tm.handle");
  if (HandleSync(host_, msg, cpu)) {
    if (Height() >= 1) round_ = 0;
    return true;
  }
  if (!msg.type.starts_with("tm_")) return false;
  *cpu += config_.per_message_cpu;
  if (!active_ || msg.corrupted) return true;

  if (msg.type == "tm_proposal") {
    OnProposal(std::any_cast<ProposalMsg>(msg.payload), cpu);
  } else if (msg.type == "tm_prevote") {
    OnPrevote(msg.from, std::any_cast<VoteMsg>(msg.payload));
  } else if (msg.type == "tm_precommit") {
    OnPrecommit(msg.from, std::any_cast<VoteMsg>(msg.payload), cpu);
  }
  return true;
}

void Tendermint::OnProposal(const ProposalMsg& m, double* cpu) {
  if (m.height != Height() + 1) {
    if (m.height > Height() + 1) RequestSync(host_, m.block->header.proposer);
    return;
  }
  if (m.round < round_) return;
  if (ProposerOf(m.height, m.round) != m.block->header.proposer) return;
  *cpu += config_.tx_validate_cpu * double(m.block->txs.size());

  RoundState& rs = State(m.height, m.round);
  if (rs.proposal != nullptr) return;
  rs.proposal = m.block;
  rs.proposal_hash = m.block->HashOf();
  rs.t_proposal = host_->HostNow();
  if (m.round == round_ && !rs.sent_prevote) {
    rs.sent_prevote = true;
    rs.prevotes.insert(host_->node_id());
    host_->HostBroadcast("tm_prevote", VoteMsg{m.height, m.round,
                                               rs.proposal_hash},
                         kVoteBytes);
  }
}

void Tendermint::OnPrevote(sim::NodeId from, const VoteMsg& m) {
  if (m.height != Height() + 1 || m.round < round_) return;
  RoundState& rs = State(m.height, m.round);
  if (m.block_hash.IsZero()) {
    rs.nil_prevotes.insert(from);
    return;
  }
  rs.prevotes.insert(from);
  if (!rs.sent_precommit && rs.proposal != nullptr &&
      rs.proposal_hash == m.block_hash && rs.prevotes.size() >= Quorum()) {
    rs.sent_precommit = true;
    rs.precommits.insert(host_->node_id());
    rs.t_prevote_q = host_->HostNow();
    if (auto* tr = host_->host_sim()->tracer()) {
      if (rs.t_proposal >= 0) {
        tr->CompleteSpan(uint32_t(host_->node_id()), "consensus",
                         "tm.prevote", rs.t_proposal, rs.t_prevote_q,
                         "height", double(m.height));
      }
    }
    if (auto* rec = host_->host_sim()->recorder()) {
      rec->Phase(uint32_t(host_->node_id()), host_->HostNow(), "tm.prevote",
                 m.height, m.round);
    }
    host_->HostBroadcast("tm_precommit",
                         VoteMsg{m.height, m.round, rs.proposal_hash},
                         kVoteBytes);
  }
}

void Tendermint::OnPrecommit(sim::NodeId from, const VoteMsg& m,
                             double* cpu) {
  if (m.height != Height() + 1 || m.round < round_) return;
  if (m.block_hash.IsZero()) return;
  RoundState& rs = State(m.height, m.round);
  rs.precommits.insert(from);
  if (rs.proposal == nullptr || rs.proposal_hash != m.block_hash) return;
  if (rs.precommits.size() < Quorum()) return;

  // Commit: immediate finality, reset to round 0 for the next height.
  double commit_cpu = 0;
  host_->CommitBlock(rs.proposal, &commit_cpu);
  *cpu += commit_cpu;
  if (auto* tr = host_->host_sim()->tracer()) {
    if (rs.t_prevote_q >= 0) {
      tr->CompleteSpan(uint32_t(host_->node_id()), "consensus",
                       "tm.precommit", rs.t_prevote_q, host_->HostNow(),
                       "height", double(m.height));
    }
  }
  if (auto* rec = host_->host_sim()->recorder()) {
    rec->Phase(uint32_t(host_->node_id()), host_->HostNow(), "tm.precommit",
               m.height, m.round);
  }
  round_ = 0;
  last_commit_time_ = host_->HostNow();
  PruneOldRounds();
  MaybePropose();
}

void Tendermint::ExportMetrics(obs::MetricsRegistry* reg,
                               const obs::Labels& labels) const {
  reg->AddCounter("consensus.rounds_failed", labels, rounds_failed_);
  reg->AddCounter("consensus.blocks_proposed", labels, blocks_proposed_);
}

void Tendermint::PruneOldRounds() {
  uint64_t h = Height() + 1;
  for (auto it = rounds_.begin(); it != rounds_.end();) {
    it = it->first.first < h ? rounds_.erase(it) : ++it;
  }
}

}  // namespace bb::consensus
