// Tendermint: the PoS/BFT hybrid behind ErisDB — the backend the paper
// lists as "under development" for BLOCKBENCH (Section 3.2), completing
// Table 2's consensus spectrum.
//
// Simplified but structurally faithful: consensus proceeds in
// (height, round) steps; the proposer rotates every round by voting
// power; replicas PREVOTE on a valid proposal (nil on timeout), then
// PRECOMMIT once a 2f+1 prevote quorum forms, and commit on a 2f+1
// precommit quorum — immediate finality, no forks. A failed round (dead
// or slow proposer) moves to round+1 with the next proposer, so there is
// no separate view-change subprotocol and no view-change storms: the
// liveness failure mode differs from PBFT's in exactly the way the
// protocols differ. (Tendermint's value-locking rule is omitted — with
// crash-only faults and fresh proposals per round it is not observable
// in these experiments; see DESIGN.md.)

#ifndef BLOCKBENCH_CONSENSUS_TENDERMINT_H_
#define BLOCKBENCH_CONSENSUS_TENDERMINT_H_

#include <map>
#include <set>
#include <vector>

#include "consensus/engine.h"

namespace bb::consensus {

struct TendermintConfig {
  /// Transactions per proposal.
  size_t batch_size = 500;
  /// Propose when this much time passed since the last commit with a
  /// non-empty pool (or when a full batch is waiting).
  double batch_timeout = 0.5;
  double poll_interval = 0.05;
  /// A round fails (-> round+1) if no commit happened within this time.
  double round_timeout = 2.0;
  /// Round timeout grows by this per extra round (Tendermint's
  /// incremental timeouts).
  double round_timeout_delta = 0.5;
  /// Voting stake per validator; index i gets stake[i % stake.size()].
  /// Uniform by default. Proposer selection is stake-weighted.
  std::vector<double> stake = {1.0};
  double per_message_cpu = 0.0002;
  double tx_validate_cpu = 0.0001;
};

class Tendermint : public Engine {
 public:
  explicit Tendermint(TendermintConfig config) : config_(std::move(config)) {}

  void Start(ConsensusHost* host) override;
  bool HandleMessage(const sim::Message& msg, double* cpu) override;
  void OnNewTransactions() override;
  void OnCrash() override;
  void OnRestart() override;
  const char* name() const override { return "tendermint"; }
  void ExportMetrics(obs::MetricsRegistry* reg,
                     const obs::Labels& labels) const override;
  std::vector<LiveGauge> LiveGauges() override {
    return {{"tm.round", [this] { return double(round_); }},
            {"tm.rounds_failed",
             [this] { return double(rounds_failed_); }}};
  }

  uint64_t height() const { return Height(); }
  uint64_t round() const { return round_; }
  uint64_t rounds_failed() const { return rounds_failed_; }
  uint64_t blocks_proposed() const { return blocks_proposed_; }

  /// Stake-weighted deterministic proposer for (height, round).
  sim::NodeId ProposerOf(uint64_t height, uint64_t round) const;
  bool IsProposer() const {
    return ProposerOf(Height() + 1, round_) == host_->node_id();
  }

  size_t MaxFaults() const { return (host_->num_nodes() - 1) / 3; }
  size_t Quorum() const { return 2 * MaxFaults() + 1; }

  /// Vote sets are O(N) per live (height, round); PruneOldRounds bounds
  /// the round map, but quorum broadcast still makes the footprint grow
  /// super-linearly with N like PBFT's.
  uint64_t BookkeepingBytes() const override {
    uint64_t b = 0;
    for (const auto& [key, rs] : rounds_) {
      b += obs::mem::kMapEntryBytes + sizeof(RoundState);
      b += (rs.prevotes.size() + rs.nil_prevotes.size() +
            rs.precommits.size()) *
           obs::mem::kSetEntryBytes;
      if (rs.proposal != nullptr) b += rs.proposal->SizeBytes();
    }
    return b;
  }

  struct ProposalMsg {
    uint64_t height;
    uint64_t round;
    BlockPtr block;
  };
  struct VoteMsg {  // PREVOTE and PRECOMMIT
    uint64_t height;
    uint64_t round;
    Hash256 block_hash;  // zero = nil vote
  };

 private:
  struct RoundState {
    BlockPtr proposal;
    Hash256 proposal_hash;
    std::set<sim::NodeId> prevotes;
    std::set<sim::NodeId> nil_prevotes;
    std::set<sim::NodeId> precommits;
    bool sent_prevote = false;
    bool sent_precommit = false;
    /// Tracing: when this node saw the proposal / reached the prevote
    /// quorum (-1 until then).
    double t_proposal = -1;
    double t_prevote_q = -1;
  };

  uint64_t Height() const { return host_->chain_store().head_height(); }
  RoundState& State(uint64_t height, uint64_t round) {
    return rounds_[{height, round}];
  }

  void Poll();
  void MaybePropose();
  void StartRoundTimer();
  void OnRoundTimeout(uint64_t height, uint64_t round);
  void AdvanceRound();
  void OnProposal(const ProposalMsg& m, double* cpu);
  void OnPrevote(sim::NodeId from, const VoteMsg& m);
  void OnPrecommit(sim::NodeId from, const VoteMsg& m, double* cpu);
  void PruneOldRounds();

  TendermintConfig config_;
  ConsensusHost* host_ = nullptr;
  bool active_ = false;

  uint64_t round_ = 0;
  std::map<std::pair<uint64_t, uint64_t>, RoundState> rounds_;
  double last_commit_time_ = 0;
  double round_start_time_ = 0;
  double last_proposal_time_ = -1e9;
  uint64_t rounds_failed_ = 0;
  uint64_t blocks_proposed_ = 0;
};

}  // namespace bb::consensus

#endif  // BLOCKBENCH_CONSENSUS_TENDERMINT_H_
