// Pbft: Practical Byzantine Fault Tolerance (Castro & Liskov '99), as
// deployed in Hyperledger Fabric v0.6 — the Hyperledger platform model's
// consensus engine.
//
// Full three-phase protocol: the view-v leader batches transactions into a
// block and PRE-PREPAREs it; replicas broadcast PREPARE, then COMMIT; a
// block executes once 2f+1 commits are collected, giving immediate
// finality (no forks, ever). Liveness machinery is faithful where the
// paper depends on it:
//   - per-view progress timer with exponential backoff -> VIEW-CHANGE
//   - 2f+1 view-change quorum -> NEW-VIEW from the incoming leader
//   - periodic status gossip + block fetch for lagging replicas (Fabric's
//     state-transfer sync; this is what makes post-partition recovery
//     take the extra tens of seconds in Fig 10)
// Because every phase is O(N^2) real messages through the bounded-inbox
// network, overload at large N drops consensus traffic, views diverge,
// and the protocol livelocks — reproducing Fabric's collapse beyond 16
// nodes (Fig 7) without any special-casing.

#ifndef BLOCKBENCH_CONSENSUS_PBFT_H_
#define BLOCKBENCH_CONSENSUS_PBFT_H_

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "consensus/engine.h"

namespace bb::consensus {

struct PbftConfig {
  /// Transactions per batch (Fabric default in the paper: 500).
  size_t batch_size = 500;
  /// Leader re-checks its pool for a new batch at this period.
  double batch_poll_interval = 0.05;
  /// A batch is proposed when batch_size transactions are pending OR
  /// this much time has passed since the last proposal (Fabric's batch
  /// timeout) with a non-empty pool.
  double batch_timeout = 0.5;
  /// Base progress timeout before a replica starts a view change.
  double view_timeout = 3.0;
  /// Timeout doubles per consecutive failed view, capped here.
  double max_view_timeout = 30.0;
  /// Period of status gossip (height/view), driving lagging-node sync.
  double status_interval = 1.0;
  /// CPU cost of handling one consensus message (signature checks etc).
  double per_message_cpu = 0.0002;
  /// CPU cost of validating one transaction in a pre-prepare.
  double tx_validate_cpu = 0.0001;
  /// Max blocks proposed but not yet executed (pipeline depth — Fabric
  /// v0.6 keeps a window of in-flight batches below the high watermark).
  size_t pipeline = 4;
};

class Pbft : public Engine {
 public:
  explicit Pbft(PbftConfig config) : config_(config) {}

  void Start(ConsensusHost* host) override;
  bool HandleMessage(const sim::Message& msg, double* cpu) override;
  void OnNewTransactions() override;
  void OnCrash() override;
  void OnRestart() override;
  const char* name() const override { return "pbft"; }
  void ExportMetrics(obs::MetricsRegistry* reg,
                     const obs::Labels& labels) const override;
  std::vector<LiveGauge> LiveGauges() override {
    return {{"pbft.view", [this] { return double(view_); }},
            {"pbft.view_changes",
             [this] { return double(view_changes_started_); }},
            {"pbft.inflight", [this] { return double(instances_.size()); }}};
  }

  uint64_t view() const { return view_; }
  uint64_t view_changes_started() const { return view_changes_started_; }
  uint64_t blocks_proposed() const { return blocks_proposed_; }
  bool IsLeader() const;

  /// Vote sets are O(N) per in-flight instance and instances arrive at
  /// O(N) rate under quorum broadcast — this is the O(N^2) per-node
  /// growth the memory-scaling gates expect PBFT to show. Unexecuted
  /// proposal payloads ride along (the pipeline holds them until 2f+1
  /// commits land).
  uint64_t BookkeepingBytes() const override {
    uint64_t b = 0;
    for (const auto& [seq, inst] : instances_) {
      b += obs::mem::kMapEntryBytes + sizeof(Instance);
      b += (inst.prepares.size() + inst.commits.size()) *
           obs::mem::kSetEntryBytes;
      if (inst.block != nullptr && !inst.executed) b += inst.block->SizeBytes();
    }
    for (const auto& [view, votes] : view_change_votes_) {
      b += obs::mem::kMapEntryBytes + votes.size() * obs::mem::kSetEntryBytes;
    }
    // The retained certificate log (executed sequences up to the stable
    // checkpoint): per node O(checkpoint window * N) — the footprint
    // term that makes the cluster-wide PBFT curve O(N^2) in the
    // bench_fig_memscale baseline.
    b += cert_log_.size() *
         (obs::mem::kMapEntryBytes + sizeof(RetainedCert));
    b += cert_vote_total_ * obs::mem::kSetEntryBytes;
    return b;
  }

  /// Checkpoint interval K (Fabric v0.6 default): executed certificates
  /// are garbage-collected only when the stable low watermark advances,
  /// so up to ~2K of them are live at any time.
  static constexpr uint64_t kCheckpointInterval = 128;

  /// Max Byzantine faults tolerated: f = floor((N-1)/3).
  size_t MaxFaults() const { return (host_->num_nodes() - 1) / 3; }
  /// Fabric v0.6 collects N - f certificates (equal to 2f+1 only when
  /// N = 3f+1) — this is why killing 4 of 12 servers halts the network
  /// even though 8 responsive replicas remain (Fig 9).
  size_t Quorum() const { return host_->num_nodes() - MaxFaults(); }

  // Message payloads (public for tests).
  struct PrePrepareMsg {
    uint64_t view;
    uint64_t seq;  // == block height
    BlockPtr block;
  };
  struct PhaseMsg {  // PREPARE and COMMIT
    uint64_t view;
    uint64_t seq;
    Hash256 digest;
  };
  struct ViewChangeMsg {
    uint64_t new_view;
    uint64_t last_exec;
  };
  struct NewViewMsg {
    uint64_t new_view;
  };
  struct StatusMsg {
    uint64_t height;
    uint64_t view;
  };
  struct FetchReqMsg {
    uint64_t from_height;
  };
  struct BlocksMsg {
    std::vector<BlockPtr> blocks;
    uint64_t view;
  };

 private:
  struct Instance {
    BlockPtr block;         // set once pre-prepare arrives
    Hash256 digest;
    uint64_t view = 0;
    std::set<sim::NodeId> prepares;
    std::set<sim::NodeId> commits;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool executed = false;
    /// Tracing: when this node saw the pre-prepare / reached the
    /// prepared state (-1 until then).
    double t_preprepare = -1;
    double t_prepared = -1;
  };

  sim::NodeId LeaderOf(uint64_t view) const {
    return sim::NodeId(host_->peer_base() + view % host_->num_nodes());
  }
  uint64_t ExecHeight() const { return host_->chain_store().head_height(); }

  void TryPropose();
  /// Proposes a single batch; false when the pool yields nothing.
  bool ProposeOne();
  void BatchPoll();
  void StatusTick();
  void ProgressCheck();
  double CurrentTimeout() const;

  void OnPrePrepare(sim::NodeId from, const PrePrepareMsg& m, double* cpu);
  void OnPrepare(sim::NodeId from, const PhaseMsg& m);
  void OnCommit(sim::NodeId from, const PhaseMsg& m);
  void OnViewChange(sim::NodeId from, const ViewChangeMsg& m);
  void OnNewView(sim::NodeId from, const NewViewMsg& m);
  void OnStatus(sim::NodeId from, const StatusMsg& m);
  void OnFetchReq(sim::NodeId from, const FetchReqMsg& m);
  void OnBlocks(const BlocksMsg& m, double* cpu);

  void MaybeSendCommit(uint64_t seq);
  void MaybeExecute(double* cpu);
  void StartViewChange(uint64_t target_view);
  void EnterView(uint64_t view);
  void DiscardInflight();

  PbftConfig config_;
  ConsensusHost* host_ = nullptr;
  bool active_ = false;

  uint64_t view_ = 0;
  /// Highest view this node has voted a view-change for.
  uint64_t view_change_target_ = 0;
  bool in_view_change_ = false;
  std::map<uint64_t, std::set<sim::NodeId>> view_change_votes_;

  /// In-flight consensus instances keyed by seq (block height).
  std::map<uint64_t, Instance> instances_;

  /// Executed certificates (prepare/commit vote logs) retained until
  /// the stable checkpoint passes them, as Fabric v0.6's pbftCore keeps
  /// its message log for the whole watermark window. Accounting only —
  /// the protocol never reads it, so behaviour and golden digests are
  /// unchanged by its presence.
  struct RetainedCert {
    uint64_t seq;
    uint64_t votes;  // prepare + commit set entries at execution time
  };
  std::deque<RetainedCert> cert_log_;
  uint64_t cert_vote_total_ = 0;

  uint64_t last_progress_exec_ = 0;
  double last_progress_time_ = 0;
  uint64_t consecutive_view_changes_ = 0;

  /// Tip of the leader's proposal pipeline (may be unexecuted).
  double last_proposal_time_ = 0;
  uint64_t last_proposed_seq_ = 0;
  Hash256 last_proposed_hash_;

  bool fetch_outstanding_ = false;
  uint64_t view_changes_started_ = 0;
  uint64_t blocks_proposed_ = 0;
  /// Tracing: start of the in-progress view change (-1 when none).
  double view_change_start_ = -1;
};

}  // namespace bb::consensus

#endif  // BLOCKBENCH_CONSENSUS_PBFT_H_
