// Raft: crash-fault-tolerant log replication (Ongaro & Ousterhout '14) —
// the consensus Corda runs per the paper's Table 2, and the concrete
// instance of Section 2's contrast: "current transactional, distributed
// databases employ classic concurrency control... because of the simple
// failure model, i.e. crash failure".
//
// Faithful core: randomized election timeouts, terms, RequestVote with
// log-up-to-date checks, leader heartbeats, AppendEntries carrying one
// block per slot with (prev_height, prev_hash) consistency checks, and
// majority-ack commit. Byzantine behaviour is NOT tolerated — a
// corrupted/forged message is trusted if well-formed, which is exactly
// the property the Byzantine engines pay O(N^2) traffic to avoid. The
// `bench_consensus_compare` and fault-mode benches show both sides.

#ifndef BLOCKBENCH_CONSENSUS_RAFT_H_
#define BLOCKBENCH_CONSENSUS_RAFT_H_

#include <map>
#include <set>
#include <vector>

#include "consensus/engine.h"
#include "util/random.h"

namespace bb::consensus {

struct RaftConfig {
  /// Election timeout drawn uniformly from [min, max) per attempt.
  double election_timeout_min = 1.5;
  double election_timeout_max = 3.0;
  /// Leader heartbeat (empty AppendEntries) period.
  double heartbeat_interval = 0.5;
  /// Transactions per log entry (block).
  size_t batch_size = 500;
  /// Propose when a full batch waits or this much time passed.
  double batch_timeout = 0.5;
  double poll_interval = 0.05;
  double per_message_cpu = 0.0001;
  double tx_validate_cpu = 0.00005;
};

class Raft : public Engine {
 public:
  explicit Raft(RaftConfig config, uint64_t seed)
      : config_(config), rng_(seed) {}

  void Start(ConsensusHost* host) override;
  bool HandleMessage(const sim::Message& msg, double* cpu) override;
  void OnNewTransactions() override;
  void OnCrash() override;
  void OnRestart() override;
  const char* name() const override { return "raft"; }
  void ExportMetrics(obs::MetricsRegistry* reg,
                     const obs::Labels& labels) const override;
  std::vector<LiveGauge> LiveGauges() override {
    return {{"raft.term", [this] { return double(term_); }},
            {"raft.role", [this] { return double(role_); }},
            {"raft.elections",
             [this] { return double(elections_started_); }}};
  }

  enum class Role { kFollower, kCandidate, kLeader };
  Role role() const { return role_; }
  uint64_t term() const { return term_; }
  uint64_t elections_started() const { return elections_started_; }

  size_t Majority() const { return host_->num_nodes() / 2 + 1; }

  /// O(N) leader-side maps plus the uncommitted log tail (majority-ack
  /// replication keeps it short) — Raft is a linear-memory protocol,
  /// the contrast the scaling gate checks against the quorum-broadcast
  /// engines.
  uint64_t BookkeepingBytes() const override {
    uint64_t b =
        (voted_for_.size() + match_height_.size() + propose_time_.size()) *
            obs::mem::kMapEntryBytes +
        votes_.size() * obs::mem::kSetEntryBytes;
    for (const auto& [height, block] : pending_log_) {
      b += obs::mem::kMapEntryBytes;
      if (block != nullptr) b += block->SizeBytes();
    }
    return b;
  }

  // Message payloads (public for tests).
  struct RequestVoteMsg {
    uint64_t term;
    uint64_t last_log_height;
  };
  struct VoteGrantedMsg {
    uint64_t term;
  };
  struct AppendEntriesMsg {
    uint64_t term;
    uint64_t prev_height;
    Hash256 prev_hash;
    BlockPtr block;  // null = heartbeat
    uint64_t leader_commit;
  };
  struct AppendReplyMsg {
    uint64_t term;
    bool success;
    uint64_t match_height;
  };

 private:
  uint64_t LogHeight() const { return host_->chain_store().head_height(); }

  void Poll();
  void ElectionCheck();
  void StartElection();
  void BecomeLeader();
  void HeartbeatLoop(uint64_t tenure_term);
  void BecomeFollower(uint64_t term);
  void MaybePropose();
  void SendHeartbeats();
  void ReplicateTo(sim::NodeId peer);
  void AdvanceCommit(double* cpu);
  void ResetElectionTimer();

  void OnRequestVote(sim::NodeId from, const RequestVoteMsg& m);
  void OnVoteGranted(sim::NodeId from, const VoteGrantedMsg& m);
  void OnAppendEntries(sim::NodeId from, const AppendEntriesMsg& m,
                       double* cpu);
  void OnAppendReply(sim::NodeId from, const AppendReplyMsg& m, double* cpu);

  RaftConfig config_;
  Rng rng_;
  ConsensusHost* host_ = nullptr;
  bool active_ = false;

  Role role_ = Role::kFollower;
  uint64_t term_ = 0;
  std::map<uint64_t, sim::NodeId> voted_for_;  // term -> candidate
  std::set<sim::NodeId> votes_;

  /// Leader bookkeeping: the uncommitted tail of the log (height ->
  /// block) and per-peer replication progress.
  std::map<uint64_t, BlockPtr> pending_log_;
  std::map<sim::NodeId, uint64_t> match_height_;
  uint64_t committed_height_ = 0;

  double last_heard_from_leader_ = 0;
  double election_deadline_ = 0;
  double last_proposal_time_ = -1e9;
  uint64_t elections_started_ = 0;

  /// Tracing: first election attempt of the current leaderless period
  /// (-1 when none in flight) and leader-side proposal times by height.
  double election_start_ = -1;
  std::map<uint64_t, double> propose_time_;
};

}  // namespace bb::consensus

#endif  // BLOCKBENCH_CONSENSUS_RAFT_H_
