#include "consensus/pbft.h"

#include <algorithm>

#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace bb::consensus {

namespace {
constexpr uint64_t kPhaseMsgBytes = 120;    // view, seq, digest, signature
constexpr uint64_t kControlMsgBytes = 100;  // view-change / new-view / status
}  // namespace

bool Pbft::IsLeader() const { return LeaderOf(view_) == host_->node_id(); }

void Pbft::Start(ConsensusHost* host) {
  host_ = host;
  active_ = true;
  last_progress_exec_ = ExecHeight();
  last_progress_time_ = host_->HostNow();
  BatchPoll();
  StatusTick();
  ProgressCheck();
}

void Pbft::OnCrash() { active_ = false; }

void Pbft::OnRestart() {
  if (host_ == nullptr) return;
  active_ = true;
  in_view_change_ = false;
  instances_.clear();
  view_change_votes_.clear();
  last_progress_exec_ = ExecHeight();
  last_progress_time_ = host_->HostNow();
  BatchPoll();
  StatusTick();
  ProgressCheck();
}

void Pbft::OnNewTransactions() {
  if (active_) TryPropose();
}

void Pbft::BatchPoll() {
  if (!active_) return;
  TryPropose();
  host_->host_sim()->After(config_.batch_poll_interval, [this] { BatchPoll(); });
}

void Pbft::StatusTick() {
  if (!active_) return;
  host_->HostBroadcast("pbft_status", StatusMsg{ExecHeight(), view_},
                       kControlMsgBytes);
  host_->host_sim()->After(config_.status_interval, [this] { StatusTick(); });
}

double Pbft::CurrentTimeout() const {
  double t = config_.view_timeout;
  for (uint64_t i = 0; i < consecutive_view_changes_ && t < config_.max_view_timeout;
       ++i) {
    t *= 2;
  }
  return std::min(t, config_.max_view_timeout);
}

void Pbft::ProgressCheck() {
  if (!active_) return;
  uint64_t exec = ExecHeight();
  double now = host_->HostNow();
  if (exec > last_progress_exec_) {
    last_progress_exec_ = exec;
    last_progress_time_ = now;
    consecutive_view_changes_ = 0;
  } else {
    // Stalled. A view change is warranted only if there is work the
    // protocol should be making progress on.
    bool has_work = host_->pending_txs() > 0 || !instances_.empty();
    if (has_work && now - last_progress_time_ >= CurrentTimeout()) {
      if (auto* rec = host_->host_sim()->recorder()) {
        rec->Timer(uint32_t(host_->node_id()), now, "pbft.progress_timeout",
                   view_);
      }
      StartViewChange(std::max(view_ + 1, view_change_target_ + 1));
      last_progress_time_ = now;  // restart the clock for the next escalation
    }
  }
  host_->host_sim()->After(0.25, [this] { ProgressCheck(); });
}

void Pbft::TryPropose() {
  if (!active_ || in_view_change_ || !IsLeader()) return;
  while (true) {
    // Pipeline bound counts proposals not yet executed.
    size_t in_flight = 0;
    for (auto& [seq, inst] : instances_) {
      if (!inst.executed && seq > ExecHeight()) ++in_flight;
    }
    if (in_flight >= config_.pipeline) return;
    size_t pending = host_->pending_txs();
    if (pending == 0) return;
    // Batch discipline: wait for a full batch or the batch timeout.
    if (pending < config_.batch_size &&
        host_->HostNow() - last_proposal_time_ < config_.batch_timeout) {
      return;
    }
    if (!ProposeOne()) return;
  }
}

bool Pbft::ProposeOne() {
  // Chain onto the pipeline tip (which may not have executed yet), or
  // the canonical head when the pipeline is empty/stale.
  Hash256 parent = host_->chain_store().head();
  uint64_t parent_height = ExecHeight();
  if (last_proposed_seq_ > parent_height &&
      instances_.count(last_proposed_seq_) > 0) {
    parent = last_proposed_hash_;
    parent_height = last_proposed_seq_;
  }

  double build_cpu = 0;
  auto block = host_->BuildBlock(parent, parent_height,
                                 /*allow_empty=*/false, &build_cpu);
  if (!block.has_value()) return false;
  host_->ChargeBackground(build_cpu);

  block->header.proposer = host_->node_id();
  block->header.timestamp = host_->HostNow();
  uint64_t seq = block->header.height;
  block->header.nonce = seq;
  block->header.weight = 1;
  auto ptr = std::make_shared<const chain::Block>(std::move(*block));
  ++blocks_proposed_;

  Instance& inst = instances_[seq];
  inst.block = ptr;
  inst.digest = ptr->HashOf();
  inst.view = view_;
  inst.prepares.insert(host_->node_id());
  inst.sent_prepare = true;
  inst.t_preprepare = host_->HostNow();
  last_proposed_seq_ = seq;
  last_proposed_hash_ = inst.digest;
  last_proposal_time_ = host_->HostNow();

  if (auto* tr = host_->host_sim()->tracer()) {
    tr->Instant(uint32_t(host_->node_id()), "consensus", "pbft.propose",
                host_->HostNow(), "seq", double(seq));
  }
  if (auto* rec = host_->host_sim()->recorder()) {
    rec->Phase(uint32_t(host_->node_id()), host_->HostNow(), "pbft.propose",
               seq, view_);
  }
  host_->HostBroadcast("pbft_preprepare", PrePrepareMsg{view_, seq, ptr},
                       ptr->SizeBytes());
  return true;
}

bool Pbft::HandleMessage(const sim::Message& msg, double* cpu) {
  BB_PROF_SCOPE("consensus.pbft.handle");
  if (!msg.type.starts_with("pbft_")) return false;
  *cpu += config_.per_message_cpu;
  if (!active_) return true;
  if (msg.corrupted) return true;  // fails MAC/signature verification

  if (msg.type == "pbft_preprepare") {
    OnPrePrepare(msg.from, std::any_cast<PrePrepareMsg>(msg.payload), cpu);
  } else if (msg.type == "pbft_prepare") {
    OnPrepare(msg.from, std::any_cast<PhaseMsg>(msg.payload));
    MaybeExecute(cpu);
  } else if (msg.type == "pbft_commit") {
    OnCommit(msg.from, std::any_cast<PhaseMsg>(msg.payload));
    MaybeExecute(cpu);
  } else if (msg.type == "pbft_viewchange") {
    OnViewChange(msg.from, std::any_cast<ViewChangeMsg>(msg.payload));
  } else if (msg.type == "pbft_newview") {
    OnNewView(msg.from, std::any_cast<NewViewMsg>(msg.payload));
  } else if (msg.type == "pbft_status") {
    OnStatus(msg.from, std::any_cast<StatusMsg>(msg.payload));
  } else if (msg.type == "pbft_fetchreq") {
    OnFetchReq(msg.from, std::any_cast<FetchReqMsg>(msg.payload));
  } else if (msg.type == "pbft_blocks") {
    OnBlocks(std::any_cast<BlocksMsg>(msg.payload), cpu);
  }
  return true;
}

void Pbft::OnPrePrepare(sim::NodeId from, const PrePrepareMsg& m,
                        double* cpu) {
  if (in_view_change_ || m.view != view_ || LeaderOf(m.view) != from) return;
  if (m.seq <= ExecHeight()) return;  // already executed
  *cpu += config_.tx_validate_cpu * double(m.block->txs.size());

  const Hash256 digest = m.block->HashOf();
  Instance& inst = instances_[m.seq];
  if (inst.block != nullptr && inst.digest != digest) {
    return;  // conflicting pre-prepare in same view: ignore (leader fault)
  }
  inst.block = m.block;
  inst.digest = digest;
  inst.view = m.view;
  if (inst.t_preprepare < 0) inst.t_preprepare = host_->HostNow();
  inst.prepares.insert(from);  // pre-prepare doubles as the leader's prepare
  if (!inst.sent_prepare) {
    inst.sent_prepare = true;
    inst.prepares.insert(host_->node_id());
    host_->HostBroadcast("pbft_prepare", PhaseMsg{view_, m.seq, inst.digest},
                         kPhaseMsgBytes);
  }
  MaybeSendCommit(m.seq);
}

void Pbft::OnPrepare(sim::NodeId from, const PhaseMsg& m) {
  if (in_view_change_ || m.view != view_) return;
  if (m.seq <= ExecHeight()) return;
  Instance& inst = instances_[m.seq];
  if (inst.block != nullptr && inst.digest != m.digest) return;
  inst.view = m.view;
  inst.prepares.insert(from);
  MaybeSendCommit(m.seq);
}

void Pbft::MaybeSendCommit(uint64_t seq) {
  auto it = instances_.find(seq);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  // "prepared" requires the pre-prepare (block) plus a 2f+1 prepare quorum.
  if (inst.sent_commit || inst.block == nullptr ||
      inst.prepares.size() < Quorum()) {
    return;
  }
  inst.sent_commit = true;
  inst.commits.insert(host_->node_id());
  inst.t_prepared = host_->HostNow();
  if (auto* tr = host_->host_sim()->tracer()) {
    if (inst.t_preprepare >= 0) {
      tr->CompleteSpan(uint32_t(host_->node_id()), "consensus",
                       "pbft.prepare", inst.t_preprepare, inst.t_prepared,
                       "seq", double(seq));
    }
  }
  if (auto* rec = host_->host_sim()->recorder()) {
    rec->Phase(uint32_t(host_->node_id()), host_->HostNow(), "pbft.prepare",
               seq, view_);
  }
  host_->HostBroadcast("pbft_commit", PhaseMsg{view_, seq, inst.digest},
                       kPhaseMsgBytes);
}

void Pbft::OnCommit(sim::NodeId from, const PhaseMsg& m) {
  if (in_view_change_ || m.view != view_) return;
  if (m.seq <= ExecHeight()) return;
  Instance& inst = instances_[m.seq];
  if (inst.block != nullptr && inst.digest != m.digest) return;
  inst.view = m.view;
  inst.commits.insert(from);
}

void Pbft::MaybeExecute(double* cpu) {
  // Execute committed instances strictly in sequence order.
  while (true) {
    uint64_t next = ExecHeight() + 1;
    auto it = instances_.find(next);
    if (it == instances_.end()) return;
    Instance& inst = it->second;
    if (inst.block == nullptr || inst.commits.size() < Quorum()) return;
    double commit_cpu = 0;
    bool ok = host_->CommitBlock(inst.block, &commit_cpu);
    *cpu += commit_cpu;
    if (auto* tr = host_->host_sim()->tracer()) {
      if (ok && inst.t_prepared >= 0) {
        tr->CompleteSpan(uint32_t(host_->node_id()), "consensus",
                         "pbft.commit", inst.t_prepared, host_->HostNow(),
                         "seq", double(next));
      }
    }
    if (auto* rec = host_->host_sim()->recorder()) {
      if (ok) {
        rec->Phase(uint32_t(host_->node_id()), host_->HostNow(),
                   "pbft.commit", next, view_);
      }
    }
    // Retain the executed certificate until the stable checkpoint (low
    // watermark) passes it; GC the log tail whenever the watermark
    // advances by another kCheckpointInterval.
    cert_log_.push_back(
        {next, uint64_t(inst.prepares.size() + inst.commits.size())});
    cert_vote_total_ += cert_log_.back().votes;
    if (next >= 2 * kCheckpointInterval) {
      uint64_t stable = (next / kCheckpointInterval - 1) * kCheckpointInterval;
      while (!cert_log_.empty() && cert_log_.front().seq <= stable) {
        cert_vote_total_ -= cert_log_.front().votes;
        cert_log_.pop_front();
      }
    }
    instances_.erase(it);
    if (!ok) return;
    last_progress_exec_ = ExecHeight();
    last_progress_time_ = host_->HostNow();
    consecutive_view_changes_ = 0;
    if (IsLeader()) TryPropose();
  }
}

void Pbft::StartViewChange(uint64_t target_view) {
  if (target_view <= view_change_target_ && in_view_change_) return;
  in_view_change_ = true;
  view_change_target_ = target_view;
  ++view_changes_started_;
  ++consecutive_view_changes_;
  if (view_change_start_ < 0) view_change_start_ = host_->HostNow();
  DiscardInflight();
  ViewChangeMsg m{target_view, ExecHeight()};
  view_change_votes_[target_view].insert(host_->node_id());
  host_->HostBroadcast("pbft_viewchange", m, kControlMsgBytes);
  // A solo quorum (N <= 1 is degenerate) or pre-existing votes may
  // already satisfy the target.
  OnViewChange(host_->node_id(), m);
}

void Pbft::OnViewChange(sim::NodeId from, const ViewChangeMsg& m) {
  if (m.new_view <= view_) return;
  auto& votes = view_change_votes_[m.new_view];
  votes.insert(from);
  // Join the view change once f+1 peers demand it (PBFT's catch-up rule),
  // to keep honest nodes from being left behind.
  if (!in_view_change_ && votes.size() >= MaxFaults() + 1 &&
      m.new_view > view_change_target_) {
    StartViewChange(m.new_view);
    return;
  }
  if (votes.size() >= Quorum()) {
    if (LeaderOf(m.new_view) == host_->node_id()) {
      host_->HostBroadcast("pbft_newview", NewViewMsg{m.new_view},
                           kControlMsgBytes);
      EnterView(m.new_view);
      TryPropose();
    }
  }
}

void Pbft::OnNewView(sim::NodeId from, const NewViewMsg& m) {
  if (m.new_view <= view_) return;
  if (LeaderOf(m.new_view) != from) return;
  EnterView(m.new_view);
}

void Pbft::EnterView(uint64_t view) {
  if (view_change_start_ >= 0) {
    if (auto* tr = host_->host_sim()->tracer()) {
      tr->CompleteSpan(uint32_t(host_->node_id()), "consensus",
                       "pbft.view_change", view_change_start_,
                       host_->HostNow(), "view", double(view));
    }
    view_change_start_ = -1;
  }
  if (auto* rec = host_->host_sim()->recorder()) {
    rec->Phase(uint32_t(host_->node_id()), host_->HostNow(),
               "pbft.view_change", view);
  }
  view_ = view;
  in_view_change_ = false;
  view_change_target_ = std::max(view_change_target_, view);
  DiscardInflight();
  // Drop stale vote bookkeeping.
  for (auto it = view_change_votes_.begin(); it != view_change_votes_.end();) {
    it = it->first <= view_ ? view_change_votes_.erase(it) : ++it;
  }
  last_progress_time_ = host_->HostNow();
}

void Pbft::DiscardInflight() {
  // Unexecuted proposals die with the view; their transactions go back
  // to the pool so the next leader can re-batch them.
  for (auto& [seq, inst] : instances_) {
    if (inst.block != nullptr && !inst.executed) {
      host_->RequeueTxs(inst.block->txs);
    }
  }
  instances_.clear();
  last_proposed_seq_ = 0;
}

void Pbft::OnStatus(sim::NodeId from, const StatusMsg& m) {
  if (m.height > ExecHeight() && !fetch_outstanding_) {
    fetch_outstanding_ = true;
    host_->HostSend(from, "pbft_fetchreq", FetchReqMsg{ExecHeight()},
                    kControlMsgBytes);
    // Clear the flag after a grace period even if the reply is lost.
    host_->host_sim()->After(2.0, [this] { fetch_outstanding_ = false; });
  }
}

void Pbft::OnFetchReq(sim::NodeId from, const FetchReqMsg& m) {
  BlocksMsg reply;
  reply.view = view_;
  uint64_t size = kControlMsgBytes;
  reply.blocks =
      host_->chain_store().CanonicalRangePtr(m.from_height, ExecHeight());
  for (const auto& b : reply.blocks) size += b->SizeBytes();
  if (reply.blocks.empty()) return;
  host_->HostSend(from, "pbft_blocks", std::move(reply), size);
}

void Pbft::OnBlocks(const BlocksMsg& m, double* cpu) {
  // State transfer: blocks come with (implied) execution certificates,
  // so apply them directly in order.
  for (const auto& b : m.blocks) {
    if (b->header.height != ExecHeight() + 1) continue;
    double commit_cpu = 0;
    host_->CommitBlock(b, &commit_cpu);
    *cpu += commit_cpu;
  }
  if (m.view > view_) EnterView(m.view);
  last_progress_exec_ = ExecHeight();
  last_progress_time_ = host_->HostNow();
}

void Pbft::ExportMetrics(obs::MetricsRegistry* reg,
                         const obs::Labels& labels) const {
  reg->AddCounter("consensus.view_changes", labels, view_changes_started_);
  reg->AddCounter("consensus.blocks_proposed", labels, blocks_proposed_);
  reg->SetGauge("consensus.view", labels, double(view_));
}

}  // namespace bb::consensus
