#include "consensus/pow.h"

#include <cmath>

#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace bb::consensus {

double ProofOfWork::PerNodeMeanInterval() const {
  double n = double(host_->num_nodes());
  double network_interval = config_.base_block_interval;
  if (n > double(config_.reference_nodes)) {
    network_interval *= std::pow(n / double(config_.reference_nodes),
                                 config_.difficulty_growth);
  }
  // N miners racing, each exponential with mean N * network_interval,
  // yields a network minimum with mean network_interval.
  return network_interval * n;
}

void ProofOfWork::Start(ConsensusHost* host) {
  host_ = host;
  mining_ = true;
  ScheduleMine();
  CpuTick();
}

void ProofOfWork::CpuTick() {
  // Mining burns CPU continuously on the reserved cores; meter it in
  // 1-second slices for the utilization figure.
  if (!mining_) return;
  host_->ChargeBackground(config_.mining_cpu_utilization);
  host_->host_sim()->After(1.0, [this] { CpuTick(); });
}

void ProofOfWork::ScheduleMine() {
  if (!mining_) return;
  uint64_t epoch = ++mining_epoch_;
  mine_start_ = host_->HostNow();
  double delay = rng_.Exponential(PerNodeMeanInterval());
  host_->host_sim()->After(delay, [this, epoch] { OnMined(epoch); });
}

void ProofOfWork::OnMined(uint64_t epoch) {
  if (!mining_ || epoch != mining_epoch_) return;  // stale race ticket
  double build_cpu = 0;
  auto block = host_->BuildBlock(host_->chain_store().head(),
                                 host_->chain_store().head_height(),
                                 config_.mine_empty_blocks, &build_cpu);
  if (block.has_value()) {
    block->header.proposer = host_->node_id();
    block->header.timestamp = host_->HostNow();
    block->header.nonce = rng_.Next();
    // Weight models accumulated difficulty; constant within a run since
    // difficulty is fixed by the genesis configuration.
    block->header.weight = 1000;
    ++blocks_mined_;
    if (auto* tr = host_->host_sim()->tracer()) {
      tr->CompleteSpan(uint32_t(host_->node_id()), "consensus", "pow.mine",
                       mine_start_, host_->HostNow(), "height",
                       double(block->header.height));
    }
    if (auto* rec = host_->host_sim()->recorder()) {
      rec->Phase(uint32_t(host_->node_id()), host_->HostNow(), "pow.mine",
                 block->header.height);
    }
    // Wrap once; the store and every peer share the same instance.
    auto ptr = std::make_shared<const chain::Block>(std::move(*block));
    double commit_cpu = 0;
    host_->CommitBlock(ptr, &commit_cpu);
    host_->ChargeBackground(build_cpu + commit_cpu);
    host_->HostBroadcast("pow_block", ptr, ptr->SizeBytes());
  }
  ScheduleMine();
}

bool ProofOfWork::HandleMessage(const sim::Message& msg, double* cpu) {
  BB_PROF_SCOPE("consensus.pow.handle");
  if (HandleSync(host_, msg, cpu)) {
    ScheduleMine();  // the sync may have moved the head
    return true;
  }
  if (msg.type != "pow_block") return false;
  if (msg.corrupted) {
    // Corrupted block fails hash verification and is discarded.
    *cpu += config_.block_validate_cpu;
    return true;
  }
  auto block = std::any_cast<BlockPtr>(msg.payload);
  *cpu += config_.block_validate_cpu +
          config_.tx_validate_cpu * double(block->txs.size());
  Hash256 old_head = host_->chain_store().head();
  uint64_t old_reorgs = host_->chain_store().reorgs();
  double commit_cpu = 0;
  if (!host_->CommitBlock(block, &commit_cpu)) {
    // Missing ancestors: pull the sender's chain.
    RequestSync(host_, msg.from);
  }
  *cpu += commit_cpu;
  if (host_->chain_store().head() != old_head) {
    if (auto* tr = host_->host_sim()->tracer()) {
      if (host_->chain_store().reorgs() > old_reorgs) {
        tr->Instant(uint32_t(host_->node_id()), "consensus",
                    "pow.fork_switch", host_->HostNow(), "height",
                    double(host_->chain_store().head_height()));
      }
      if (mining_) {
        tr->Instant(uint32_t(host_->node_id()), "consensus",
                    "pow.mine_abandoned", host_->HostNow());
      }
    }
    if (auto* rec = host_->host_sim()->recorder()) {
      if (mining_) {
        rec->Phase(uint32_t(host_->node_id()), host_->HostNow(),
                   "pow.mine_abandoned");
      }
    }
    // Head moved: abandon the in-flight race and mine on the new tip.
    ScheduleMine();
  }
  return true;
}

void ProofOfWork::OnCrash() { mining_ = false; }

void ProofOfWork::OnRestart() {
  if (host_ == nullptr) return;
  mining_ = true;
  ScheduleMine();
  CpuTick();
}

void ProofOfWork::ExportMetrics(obs::MetricsRegistry* reg,
                                const obs::Labels& labels) const {
  reg->AddCounter("consensus.blocks_mined", labels, blocks_mined_);
}

}  // namespace bb::consensus
