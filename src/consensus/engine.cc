#include "consensus/engine.h"

namespace bb::consensus {

namespace {
constexpr double kSyncRequestInterval = 0.5;
constexpr size_t kMaxBlocksPerSync = 1024;
}  // namespace

void Engine::RequestSync(ConsensusHost* host, sim::NodeId from) {
  double now = host->HostNow();
  if (now - last_sync_request_ < kSyncRequestInterval) return;
  last_sync_request_ = now;
  uint64_t head = host->chain_store().head_height();
  uint64_t from_height = head > sync_window_ ? head - sync_window_ : 0;
  host->HostSend(from, "sync_fetchreq", SyncFetchReq{from_height}, 60);
  // The fork point may be deeper than the current window; widen for the
  // next attempt until something attaches.
  if (sync_window_ < (uint64_t(1) << 20)) sync_window_ *= 2;
}

bool Engine::HandleSync(ConsensusHost* host, const sim::Message& msg,
                        double* cpu) {
  if (msg.type == "sync_fetchreq") {
    if (msg.corrupted) return true;
    const auto& m = std::any_cast<const SyncFetchReq&>(msg.payload);
    SyncBlocks reply;
    uint64_t bytes = 80;
    uint64_t to = std::min(host->chain_store().head_height(),
                           m.from_height + kMaxBlocksPerSync);
    reply.blocks = host->chain_store().CanonicalRangePtr(m.from_height, to);
    for (const auto& b : reply.blocks) bytes += b->SizeBytes();
    if (!reply.blocks.empty()) {
      host->HostSend(msg.from, "sync_blocks", std::move(reply), bytes);
    }
    return true;
  }
  if (msg.type == "sync_blocks") {
    if (msg.corrupted) return true;
    const auto& m = std::any_cast<const SyncBlocks&>(msg.payload);
    bool progressed = false;
    for (const auto& b : m.blocks) {
      bool known = host->chain_store().Contains(b->HashOf());
      double commit_cpu = 0;
      if (host->CommitBlock(b, &commit_cpu) && !known) progressed = true;
      *cpu += commit_cpu;
    }
    if (progressed) sync_window_ = 8;
    return true;
  }
  return false;
}

}  // namespace bb::consensus
