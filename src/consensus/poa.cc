#include "consensus/poa.h"

#include <cmath>

#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace bb::consensus {

void ProofOfAuthority::Start(ConsensusHost* host) {
  host_ = host;
  active_ = true;
  ScheduleNextStep();
}

void ProofOfAuthority::OnRestart() {
  if (host_ == nullptr) return;
  active_ = true;
  ScheduleNextStep();
}

void ProofOfAuthority::ScheduleNextStep() {
  if (!active_) return;
  double now = host_->HostNow();
  uint64_t current_step = uint64_t(now / config_.step_duration);
  // Next step slot assigned to this authority.
  uint64_t n = host_->num_nodes();
  uint64_t self = host_->node_id() - host_->peer_base();
  uint64_t next = current_step + 1;
  while (next % n != self) ++next;
  double when = double(next) * config_.step_duration;
  host_->host_sim()->At(when, [this, next] { OnStep(next); });
}

void ProofOfAuthority::OnStep(uint64_t step) {
  if (!active_) return;
  if (auto* rec = host_->host_sim()->recorder()) {
    rec->Timer(uint32_t(host_->node_id()), host_->HostNow(), "poa.step", step);
  }
  double build_cpu = 0;
  auto block = host_->BuildBlock(host_->chain_store().head(),
                                 host_->chain_store().head_height(),
                                 config_.seal_empty_blocks, &build_cpu);
  if (block.has_value()) {
    block->header.proposer = host_->node_id();
    block->header.timestamp = host_->HostNow();
    block->header.nonce = step;
    block->header.weight = 1;  // fork choice degenerates to longest chain
    ++blocks_sealed_;
    // Wrap once; the store and every peer share the same instance.
    auto ptr = std::make_shared<const chain::Block>(std::move(*block));
    double commit_cpu = 0;
    host_->CommitBlock(ptr, &commit_cpu);
    host_->ChargeBackground(build_cpu + commit_cpu);
    if (auto* tr = host_->host_sim()->tracer()) {
      // The clock does not advance inside one event, so the seal span's
      // extent is the modeled build + commit CPU time.
      double now = host_->HostNow();
      tr->CompleteSpan(uint32_t(host_->node_id()), "consensus", "poa.seal",
                       now, now + build_cpu + commit_cpu, "height",
                       double(host_->chain_store().head_height()));
    }
    if (auto* rec = host_->host_sim()->recorder()) {
      rec->Phase(uint32_t(host_->node_id()), host_->HostNow(), "poa.seal",
                 host_->chain_store().head_height(), step);
    }
    host_->HostBroadcast("poa_block", ptr, ptr->SizeBytes());
  }
  ScheduleNextStep();
}

bool ProofOfAuthority::HandleMessage(const sim::Message& msg, double* cpu) {
  BB_PROF_SCOPE("consensus.poa.handle");
  if (HandleSync(host_, msg, cpu)) return true;
  if (msg.type != "poa_block") return false;
  if (msg.corrupted) {
    // Bad seal signature; rejected.
    *cpu += config_.block_validate_cpu;
    return true;
  }
  auto block = std::any_cast<BlockPtr>(msg.payload);
  *cpu += config_.block_validate_cpu +
          config_.tx_validate_cpu * double(block->txs.size());
  uint64_t old_reorgs = host_->chain_store().reorgs();
  double commit_cpu = 0;
  if (!host_->CommitBlock(block, &commit_cpu)) {
    RequestSync(host_, msg.from);
  }
  *cpu += commit_cpu;
  if (host_->chain_store().reorgs() > old_reorgs) {
    if (auto* tr = host_->host_sim()->tracer()) {
      tr->Instant(uint32_t(host_->node_id()), "consensus", "poa.fork_switch",
                  host_->HostNow(), "height",
                  double(host_->chain_store().head_height()));
    }
  }
  return true;
}

void ProofOfAuthority::ExportMetrics(obs::MetricsRegistry* reg,
                                     const obs::Labels& labels) const {
  reg->AddCounter("consensus.blocks_sealed", labels, blocks_sealed_);
}

}  // namespace bb::consensus
