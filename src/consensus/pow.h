// ProofOfWork: the Nakamoto-style mining engine used by the Ethereum
// platform model.
//
// Mining is a memoryless race: each miner's time-to-block is exponential
// with mean difficulty/hashrate, so the network block interval and the
// fork rate under propagation delay match PoW's real statistics. The
// difficulty schedule grows superlinearly with network size, reproducing
// the paper's observation that "the difficulty level increases at a
// higher rate than the number of nodes" to keep large networks from
// diverging. Forks resolve by heaviest chain; miners always extend the
// current head.

#ifndef BLOCKBENCH_CONSENSUS_POW_H_
#define BLOCKBENCH_CONSENSUS_POW_H_

#include "consensus/engine.h"
#include "util/random.h"

namespace bb::consensus {

struct PowConfig {
  /// Network-wide target block interval at the reference network size
  /// (the paper tuned geth's genesis difficulty to ~2.5 s per block).
  double base_block_interval = 2.5;
  /// Network size the base interval is calibrated for.
  size_t reference_nodes = 8;
  /// Superlinear difficulty growth: network interval scales by
  /// (N / reference_nodes)^difficulty_growth for N > reference_nodes.
  double difficulty_growth = 0.9;
  /// Fraction of the node's CPU burned by mining (geth saturated its
  /// reserved 8 cores).
  double mining_cpu_utilization = 0.85;
  /// CPU seconds to validate one received block + per transaction.
  double block_validate_cpu = 0.002;
  double tx_validate_cpu = 0.0002;
  /// Whether miners may seal empty blocks (Ethereum does).
  bool mine_empty_blocks = true;
};

class ProofOfWork : public Engine {
 public:
  explicit ProofOfWork(PowConfig config, uint64_t seed)
      : config_(config), rng_(seed) {}

  void Start(ConsensusHost* host) override;
  bool HandleMessage(const sim::Message& msg, double* cpu) override;
  void OnCrash() override;
  void OnRestart() override;
  const char* name() const override { return "pow"; }
  void ExportMetrics(obs::MetricsRegistry* reg,
                     const obs::Labels& labels) const override;
  std::vector<LiveGauge> LiveGauges() override {
    return {{"pow.blocks_mined", [this] { return double(blocks_mined_); }},
            {"pow.mining", [this] { return mining_ ? 1.0 : 0.0; }}};
  }

  /// Mean time for THIS node to find a block, given current network size.
  double PerNodeMeanInterval() const;
  /// Blocks this node has mined (for the security experiment's
  /// generated-vs-canonical accounting).
  uint64_t blocks_mined() const { return blocks_mined_; }

  /// Nakamoto mining keeps no per-peer or per-instance state at all —
  /// a fixed handful of scalars (epoch, flags, counters). Costed as a
  /// constant so the scaling fit sees O(1), the baseline the
  /// quorum-broadcast engines are compared against.
  uint64_t BookkeepingBytes() const override { return 64; }

 private:
  void ScheduleMine();
  void OnMined(uint64_t epoch);
  void CpuTick();

  PowConfig config_;
  Rng rng_;
  ConsensusHost* host_ = nullptr;
  /// Incremented whenever the mining target changes; stale mine events
  /// check it and abandon themselves.
  uint64_t mining_epoch_ = 0;
  bool mining_ = false;
  uint64_t blocks_mined_ = 0;
  /// Tracing: when the current mining race started.
  double mine_start_ = -1;
};

}  // namespace bb::consensus

#endif  // BLOCKBENCH_CONSENSUS_POW_H_
