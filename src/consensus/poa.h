// ProofOfAuthority: Parity's Aura-style consensus.
//
// Time is divided into fixed steps of stepDuration seconds; at step s the
// authority with id == s mod N seals a block and broadcasts it. Block
// production is thus constant-rate and nearly free of CPU — the paper's
// observation that Parity's bottleneck is NOT consensus. Under a network
// partition both sides keep sealing on their own branch (forks), and
// crashed authorities simply skip their slots, leaving throughput intact —
// both behaviours the fault/security experiments rely on.

#ifndef BLOCKBENCH_CONSENSUS_POA_H_
#define BLOCKBENCH_CONSENSUS_POA_H_

#include "consensus/engine.h"

namespace bb::consensus {

struct PoaConfig {
  /// Paper setting: stepDuration = 1.
  double step_duration = 1.0;
  double block_validate_cpu = 0.001;
  double tx_validate_cpu = 0.0001;
  /// Seal empty blocks on empty slots (Aura does).
  bool seal_empty_blocks = true;
};

class ProofOfAuthority : public Engine {
 public:
  explicit ProofOfAuthority(PoaConfig config) : config_(config) {}

  void Start(ConsensusHost* host) override;
  bool HandleMessage(const sim::Message& msg, double* cpu) override;
  void OnCrash() override { active_ = false; }
  void OnRestart() override;
  const char* name() const override { return "poa"; }
  void ExportMetrics(obs::MetricsRegistry* reg,
                     const obs::Labels& labels) const override;
  std::vector<LiveGauge> LiveGauges() override {
    return {{"poa.blocks_sealed", [this] { return double(blocks_sealed_); }},
            {"poa.active", [this] { return active_ ? 1.0 : 0.0; }}};
  }

  uint64_t blocks_sealed() const { return blocks_sealed_; }

  /// Aura keeps only the step schedule — O(1) scalars, costed as a
  /// constant (the linear-memory contrast to the BFT engines).
  uint64_t BookkeepingBytes() const override { return 64; }

 private:
  void ScheduleNextStep();
  void OnStep(uint64_t step);

  PoaConfig config_;
  ConsensusHost* host_ = nullptr;
  bool active_ = false;
  uint64_t blocks_sealed_ = 0;
};

}  // namespace bb::consensus

#endif  // BLOCKBENCH_CONSENSUS_POA_H_
