#include "platform/forensics.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "platform/rpc.h"
#include "platform/sharding.h"

namespace bb::platform {

namespace {

/// Parses a prepare record's "0,2,3" participant list.
std::vector<uint32_t> ParseParticipants(const chain::Transaction& tx) {
  std::vector<uint32_t> shards;
  if (tx.args.empty() || !tx.args[0].is_str()) return shards;
  const std::string& csv = tx.args[0].AsStr();
  uint32_t current = 0;
  bool have = false;
  for (char c : csv) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + uint32_t(c - '0');
      have = true;
    } else if (c == ',' && have) {
      shards.push_back(current);
      current = 0;
      have = false;
    }
  }
  if (have) shards.push_back(current);
  return shards;
}

}  // namespace

void AttachStandardProbes(obs::Sampler* sampler, Platform* platform) {
  for (size_t i = 0; i < platform->num_servers(); ++i) {
    uint32_t id = uint32_t(i);
    PlatformNode* node = &platform->node(i);
    sim::Network* net = &platform->network();
    if (platform->num_shards() > 1) {
      uint32_t shard = uint32_t(i / platform->servers_per_shard());
      sampler->AddGauge(id, "shard.id",
                        [shard] { return double(shard); });
    }
    sampler->AddGauge(id, "chain.height", [node] {
      return double(node->chain().head_height());
    });
    sampler->AddGauge(id, "chain.forks", [node] {
      return double(node->chain().orphaned_blocks());
    });
    sampler->AddGauge(id, "pool.depth",
                      [node] { return double(node->pending_txs()); });
    sampler->AddGauge(id, "net.crashed", [net, id] {
      return net->IsCrashed(id) ? 1.0 : 0.0;
    });
    sampler->AddGauge(id, "net.side", [net, id] {
      return double(net->PartitionSideOf(id));
    });
    sampler->AddTag(id, "chain.head",
                    [node] { return node->chain().head().ShortHex(); });
    for (consensus::Engine::LiveGauge& g : node->engine().LiveGauges()) {
      sampler->AddGauge(id, g.name, std::move(g.fn));
    }
    if (auto* mt = platform->psim()->memtracker()) {
      // One counter track per subsystem plus the node total — the live
      // footprint timeline next to chain.height / pool.depth.
      for (uint8_t s = 0; s < obs::mem::kNumSubsystems; ++s) {
        sampler->AddGauge(id, obs::mem::TrackName(s), [mt, id, s] {
          return double(mt->current(id, obs::mem::Subsystem(s)));
        });
      }
      sampler->AddGauge(id, "mem.total",
                        [mt, id] { return double(mt->node_current(id)); });
    }
  }
  if (auto* sharded = dynamic_cast<ShardedPlatform*>(platform)) {
    uint32_t id = uint32_t(sharded->coordinator_id());
    ShardCoordinator* coord = &sharded->coordinator();
    sampler->AddGauge(id, "xs.pending",
                      [coord] { return double(coord->pending()); });
    sampler->AddGauge(id, "xs.committed",
                      [coord] { return double(coord->committed()); });
    sampler->AddGauge(id, "xs.aborted",
                      [coord] { return double(coord->aborted()); });
  }
}

obs::NodeChainView CollectNodeView(Platform& platform, size_t i) {
  PlatformNode& node = platform.node(i);
  const chain::ChainStore& store = node.chain();
  obs::NodeChainView view;
  view.node = uint32_t(i);
  view.crashed = platform.network().IsCrashed(uint32_t(i));
  view.genesis = store.genesis().ToHex();
  view.head = store.head().ToHex();
  view.head_height = store.head_height();
  view.reorgs = store.reorgs();
  view.invalid_blocks = store.invalid_blocks();
  view.blocks.reserve(store.total_blocks());
  store.ForEachBlock([&](const Hash256& hash, const chain::Block& block) {
    if (hash == store.genesis()) return;
    obs::AuditBlock b;
    b.hash = hash.ToHex();
    b.parent = block.header.parent.ToHex();
    b.height = block.header.height;
    b.proposer = block.header.proposer;
    b.timestamp = block.header.timestamp;
    b.weight = block.header.weight;
    b.canonical = store.IsCanonical(hash);
    view.blocks.push_back(std::move(b));
  });
  // ChainStore iterates an unordered_map; sort so the extracted view is
  // deterministic on its own, not only after the auditor re-sorts.
  std::sort(view.blocks.begin(), view.blocks.end(),
            [](const obs::AuditBlock& a, const obs::AuditBlock& b) {
              return a.height != b.height ? a.height < b.height
                                          : a.hash < b.hash;
            });

  if (platform.num_shards() > 1) {
    view.shard = uint32_t(i / platform.servers_per_shard());
    // Replay the 2PC protocol off this node's canonical chain: pass one
    // finds the sealed "__xshard" prepare markers, pass two matches the
    // sealed original transactions (the commits) against them.
    std::vector<const chain::Block*> canonical;
    store.ForEachBlock([&](const Hash256& hash, const chain::Block& block) {
      if (hash == store.genesis() || !store.IsCanonical(hash)) return;
      canonical.push_back(&block);
    });
    std::sort(canonical.begin(), canonical.end(),
              [](const chain::Block* a, const chain::Block* b) {
                return a->header.height < b->header.height;
              });
    std::set<uint64_t> prepared;
    for (const chain::Block* block : canonical) {
      for (const chain::Transaction& tx : block->txs) {
        if (tx.contract == kXsContract) prepared.insert(XsBaseId(tx.id));
      }
    }
    for (const chain::Block* block : canonical) {
      for (const chain::Transaction& tx : block->txs) {
        obs::XsRecord r;
        if (tx.contract == kXsContract) {
          r.base_id = XsBaseId(tx.id);
          r.phase = tx.function;
          if (tx.function == "prepare") r.participants = ParseParticipants(tx);
        } else if (prepared.count(tx.id) != 0) {
          r.base_id = tx.id;
          r.phase = "commit";
        } else {
          continue;
        }
        r.timestamp = block->header.timestamp;
        view.xs_records.push_back(std::move(r));
      }
    }
  }
  return view;
}

std::vector<obs::NodeChainView> CollectAuditViews(Platform& platform) {
  std::vector<obs::NodeChainView> views;
  views.reserve(platform.num_servers());
  for (size_t i = 0; i < platform.num_servers(); ++i) {
    views.push_back(CollectNodeView(platform, i));
  }
  return views;
}

obs::AuditReport RunAudit(Platform& platform,
                          const obs::AuditorConfig& config) {
  obs::AuditorConfig cfg = config;
  if (cfg.num_shards <= 1) cfg.num_shards = uint32_t(platform.num_shards());
  obs::Auditor auditor(cfg);
  for (obs::NodeChainView& v : CollectAuditViews(platform)) {
    auditor.AddNode(std::move(v));
  }
  return auditor.Run();
}

}  // namespace bb::platform
