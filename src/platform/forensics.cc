#include "platform/forensics.h"

#include <algorithm>
#include <utility>

namespace bb::platform {

void AttachStandardProbes(obs::Sampler* sampler, Platform* platform) {
  for (size_t i = 0; i < platform->num_servers(); ++i) {
    uint32_t id = uint32_t(i);
    PlatformNode* node = &platform->node(i);
    sim::Network* net = &platform->network();
    sampler->AddGauge(id, "chain.height", [node] {
      return double(node->chain().head_height());
    });
    sampler->AddGauge(id, "chain.forks", [node] {
      return double(node->chain().orphaned_blocks());
    });
    sampler->AddGauge(id, "pool.depth",
                      [node] { return double(node->pending_txs()); });
    sampler->AddGauge(id, "net.crashed", [net, id] {
      return net->IsCrashed(id) ? 1.0 : 0.0;
    });
    sampler->AddGauge(id, "net.side", [net, id] {
      return double(net->PartitionSideOf(id));
    });
    sampler->AddTag(id, "chain.head",
                    [node] { return node->chain().head().ShortHex(); });
    for (consensus::Engine::LiveGauge& g : node->engine().LiveGauges()) {
      sampler->AddGauge(id, g.name, std::move(g.fn));
    }
  }
}

obs::NodeChainView CollectNodeView(Platform& platform, size_t i) {
  PlatformNode& node = platform.node(i);
  const chain::ChainStore& store = node.chain();
  obs::NodeChainView view;
  view.node = uint32_t(i);
  view.crashed = platform.network().IsCrashed(uint32_t(i));
  view.genesis = store.genesis().ToHex();
  view.head = store.head().ToHex();
  view.head_height = store.head_height();
  view.reorgs = store.reorgs();
  view.invalid_blocks = store.invalid_blocks();
  view.blocks.reserve(store.total_blocks());
  store.ForEachBlock([&](const Hash256& hash, const chain::Block& block) {
    if (hash == store.genesis()) return;
    obs::AuditBlock b;
    b.hash = hash.ToHex();
    b.parent = block.header.parent.ToHex();
    b.height = block.header.height;
    b.proposer = block.header.proposer;
    b.timestamp = block.header.timestamp;
    b.weight = block.header.weight;
    b.canonical = store.IsCanonical(hash);
    view.blocks.push_back(std::move(b));
  });
  // ChainStore iterates an unordered_map; sort so the extracted view is
  // deterministic on its own, not only after the auditor re-sorts.
  std::sort(view.blocks.begin(), view.blocks.end(),
            [](const obs::AuditBlock& a, const obs::AuditBlock& b) {
              return a.height != b.height ? a.height < b.height
                                          : a.hash < b.hash;
            });
  return view;
}

std::vector<obs::NodeChainView> CollectAuditViews(Platform& platform) {
  std::vector<obs::NodeChainView> views;
  views.reserve(platform.num_servers());
  for (size_t i = 0; i < platform.num_servers(); ++i) {
    views.push_back(CollectNodeView(platform, i));
  }
  return views;
}

obs::AuditReport RunAudit(Platform& platform,
                          const obs::AuditorConfig& config) {
  obs::Auditor auditor(config);
  for (obs::NodeChainView& v : CollectAuditViews(platform)) {
    auditor.AddNode(std::move(v));
  }
  return auditor.Run();
}

}  // namespace bb::platform
