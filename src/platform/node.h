// PlatformNode: one server of a platform model — glue between the
// simulated network and an assembled LayerStack. The node owns the tx
// pool and the client-facing submission/RPC interface, and forwards
// sim::Node / consensus::ConsensusHost callbacks into its stack's
// consensus, data and execution layers.

#ifndef BLOCKBENCH_PLATFORM_NODE_H_
#define BLOCKBENCH_PLATFORM_NODE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "chain/txpool.h"
#include "consensus/engine.h"
#include "platform/layers.h"
#include "platform/options.h"
#include "platform/rpc.h"
#include "sim/node.h"
#include "util/flat_id_table.h"

namespace bb::platform {

class PlatformNode : public sim::Node, public consensus::ConsensusHost {
 public:
  PlatformNode(sim::NodeId id, sim::Network* network, PlatformOptions options,
               uint64_t seed);
  ~PlatformNode() override;

  // --- Setup (before Start) ------------------------------------------------
  /// Deploys an assembled EVM contract under `name`.
  Status DeployContract(const std::string& name, const vm::Program& program);
  /// Instantiates registered chaincode under `name` (Hyperledger model).
  Status DeployChaincode(const std::string& name,
                         const std::string& registered_as);
  /// Writes genesis state directly (workload preloading).
  Status PreloadState(const std::string& contract, const std::string& key,
                      const std::string& value);
  /// Commits preloaded state into the genesis version.
  Status FinalizeGenesis();
  /// Applies a block of transactions bypassing consensus (fast preload of
  /// historical chain data for the Analytics workload). All nodes must be
  /// given identical batches in identical order.
  Status DirectCommit(const std::vector<chain::Transaction>& txs);

  // --- sim::Node -------------------------------------------------------------
  void Start() override;
  double HandleMessage(const sim::Message& msg) override;
  void OnCrash() override;
  void OnRestart() override;

  // --- consensus::ConsensusHost ----------------------------------------------
  sim::NodeId node_id() const override { return id(); }
  size_t num_nodes() const override { return num_peers_; }
  sim::Simulation* host_sim() override { return sim(); }
  double HostNow() const override { return Now(); }
  void HostBroadcast(const std::string& type, std::any payload,
                     uint64_t size_bytes) override;
  bool HostSend(sim::NodeId to, const std::string& type, std::any payload,
                uint64_t size_bytes) override;
  std::optional<chain::Block> BuildBlock(const Hash256& parent,
                                         uint64_t parent_height,
                                         bool allow_empty,
                                         double* build_cpu) override;
  bool CommitBlock(chain::BlockPtr block, double* cpu) override;
  sim::NodeId peer_base() const override { return peer_base_; }
  const chain::ChainStore& chain_store() const override {
    return stack_->data().chain();
  }
  size_t pending_txs() const override { return pool_.pending(); }
  void RequeueTxs(std::vector<chain::Transaction> txs) override;
  void ChargeBackground(double cpu_seconds) override {
    ChargeBackgroundCpu(cpu_seconds);
  }

  // --- Introspection -----------------------------------------------------------
  const PlatformOptions& options() const { return options_; }
  LayerStack& stack() { return *stack_; }
  const chain::ChainStore& chain() const { return stack_->data().chain(); }
  chain::StateDb& state() { return stack_->data().state(); }
  consensus::Engine& engine() { return stack_->consensus().engine(); }
  /// Height below which blocks count as confirmed for clients.
  uint64_t ConfirmedHeight() const;
  uint64_t txs_executed() const { return txs_executed_; }
  uint64_t txs_failed() const { return txs_failed_; }
  uint64_t blocks_produced() const { return blocks_produced_; }
  size_t pool_peak() const { return pool_peak_; }
  const Histogram& gas_per_block() const { return gas_per_block_; }

  /// Snapshots this node's counters (pool, chain, meter, engine, state)
  /// into `reg`, labelled {node=<id>}.
  void ExportMetrics(obs::MetricsRegistry* reg) const;
  /// Peers whose id is the server set (set by Platform during setup).
  void set_num_peers(size_t n) { num_peers_ = n; }
  /// Narrows this node's consensus group to ids [base, base + n): a
  /// ShardedPlatform assigns each node to its shard's group. Unsharded
  /// platforms keep the default [0, num_servers).
  void set_peer_group(sim::NodeId base, size_t n) {
    peer_base_ = base;
    num_peers_ = n;
  }
  /// Enables cross-shard 2PC participation: whenever a "__xshard"
  /// prepare/abort record is canonically executed, notify `coordinator`
  /// with an XsSealed message so it can drive the protocol forward.
  void set_xs_notify(sim::NodeId coordinator) { xs_notify_ = coordinator; }

  /// Executes a read-only contract call against current state (shared by
  /// the RPC path and local analytics). Discards any writes.
  Result<vm::Value> QueryContract(const std::string& contract,
                                  const std::string& function,
                                  const vm::Args& args, double* cpu);

 private:
  double DispatchMessage(const sim::Message& msg);
  double HandleClientTx(const sim::Message& msg);
  double HandleGossipTx(const sim::Message& msg);
  double HandleRpc(const sim::Message& msg);

  /// Re-reads the O(1) byte counters of every layer into the attached
  /// MemTracker (no-op when none is attached — one branch).
  void SyncMemGauges();

  /// Executes one transaction against current state; returns CPU cost.
  /// *gas_out (optional) receives the gas consumed (EVM engine only).
  double ExecuteTx(const chain::Transaction& tx, uint64_t* gas_out = nullptr);
  /// Brings state execution in line with the canonical chain (handles
  /// reorgs on versioned state).
  void ExecuteCanonical(double* cpu);

  PlatformOptions options_;
  size_t num_peers_ = 1;
  sim::NodeId peer_base_ = 0;
  /// Coordinator to notify when __xshard records seal (-1 = disabled).
  std::optional<sim::NodeId> xs_notify_;

  chain::TxPool pool_;
  std::unique_ptr<LayerStack> stack_;

  /// Sync-style memory gauges, bound in the constructor when the
  /// simulation has a MemTracker attached; disabled (null) otherwise.
  obs::mem::Gauge mem_pool_;
  obs::mem::Gauge mem_consensus_;
  obs::mem::Gauge mem_chain_;
  obs::mem::Gauge mem_vm_;
  obs::mem::Gauge mem_obs_;

  /// Height of the block currently being executed (for TxContext).
  uint64_t executing_height_ = 0;
  /// Execution bookkeeping along the canonical chain.
  uint64_t exec_height_ = 0;
  Hash256 exec_block_hash_;
  std::unordered_map<Hash256, Hash256, Hash256Hasher> block_state_roots_;
  util::FlatIdSet committed_ids_;

  /// Admission token bucket (admission_rate_limit).
  double admission_tokens_ = 0;
  double admission_refill_time_ = 0;

  uint64_t txs_executed_ = 0;
  uint64_t txs_failed_ = 0;
  uint64_t blocks_produced_ = 0;
  /// High-water mark of the tx pool (sampled at admission).
  size_t pool_peak_ = 0;
  /// Gas consumed per canonically executed block (EVM execution only).
  Histogram gas_per_block_;
};

}  // namespace bb::platform

#endif  // BLOCKBENCH_PLATFORM_NODE_H_
