#include "platform/sharding.h"

#include <string>

#include "obs/profiler.h"
#include "obs/recorder.h"

namespace bb::platform {

namespace {

/// Comma-separated participant list carried by every record so the
/// auditor can recover the shard set from any one chain.
std::string ParticipantsCsv(const std::vector<uint32_t>& shards) {
  std::string csv;
  for (uint32_t s : shards) {
    if (!csv.empty()) csv += ',';
    csv += std::to_string(s);
  }
  return csv;
}

/// Delay before re-submitting a record a shard's admission path
/// rejected (pool full / rate limited).
constexpr double kResubmitDelay = 1.0;

}  // namespace

// --- ShardCoordinator --------------------------------------------------------

ShardCoordinator::ShardCoordinator(sim::NodeId id, sim::Network* network,
                                   ShardedPlatform* platform)
    : sim::Node(id, network), platform_(platform) {
  if (auto* mt = sim()->memtracker()) {
    mem_entries_ = {mt, uint32_t(id), obs::mem::kConsensus};
  }
}

double ShardCoordinator::HandleMessage(const sim::Message& msg) {
  BB_PROF_SCOPE("consensus.xs_coordinator");
  double cpu = 0;
  if (msg.type == "xs_client_tx") {
    cpu = HandleClientTx(msg);
  } else if (msg.type == "xs_sealed") {
    cpu = HandleSealed(msg);
  } else if (msg.type == "client_tx_reject") {
    cpu = HandleReject(msg);
  }
  SyncMemGauge();
  return cpu;
}

void ShardCoordinator::SyncMemGauge() {
  if (!mem_entries_) return;
  uint64_t b = 0;
  for (const auto& [base_id, e] : entries_) {
    b += obs::mem::kMapEntryBytes + sizeof(Entry) + e.tx.SizeBytes() +
         e.shards.size() * sizeof(uint32_t) +
         e.prepared.size() * obs::mem::kSetEntryBytes;
  }
  mem_entries_.Set(b);
}

chain::Transaction ShardCoordinator::MakeRecord(const Entry& e,
                                                const char* phase,
                                                uint64_t id_bit) const {
  chain::Transaction rec;
  rec.id = e.tx.id | id_bit;
  rec.sender = "xs_coordinator";
  rec.contract = kXsContract;
  rec.function = phase;
  rec.args = {vm::Value(ParticipantsCsv(e.shards))};
  rec.submit_time = Now();
  return rec;
}

void ShardCoordinator::SubmitToShard(uint32_t shard,
                                     const chain::Transaction& record) {
  // Records enter the shard through the same admission path as client
  // transactions (dedup, rate limit, pool capacity, gossip).
  Send(platform_->ServerInShard(shard, 0), "client_tx", ClientTx{record},
       record.SizeBytes());
}

double ShardCoordinator::HandleClientTx(const sim::Message& msg) {
  const auto& m = std::any_cast<const XsClientTx&>(msg.payload);
  double cpu = platform_->options().xs_coordinator_cpu;
  if (msg.corrupted) return cpu;
  uint64_t base_id = m.tx.id;
  if (entries_.count(base_id)) return cpu;  // duplicate submission
  Entry& e = entries_[base_id];
  e.tx = m.tx;
  e.shards = m.shards;
  e.client = msg.from;
  ++started_;
  if (auto* rec = sim()->recorder()) {
    rec->Phase(uint32_t(id()), Now(), "xs.prepare", base_id, e.shards.size());
  }
  chain::Transaction prepare = MakeRecord(e, "prepare", kXsPrepareBit);
  for (uint32_t shard : e.shards) SubmitToShard(shard, prepare);
  sim()->After(platform_->options().xs_prepare_timeout,
               [this, base_id] { OnPrepareTimeout(base_id); });
  return cpu * double(e.shards.size());
}

double ShardCoordinator::HandleSealed(const sim::Message& msg) {
  const auto& m = std::any_cast<const XsSealed&>(msg.payload);
  double cpu = platform_->options().xs_coordinator_cpu;
  if (msg.corrupted) return cpu;
  if ((m.record_id & kXsPrepareBit) == 0) return cpu;  // abort bookkeeping
  auto it = entries_.find(XsBaseId(m.record_id));
  if (it == entries_.end() || it->second.decided) return cpu;
  // Every server in the shard notifies when it executes the record;
  // dedup to one vote per shard.
  uint32_t shard = uint32_t(size_t(msg.from) / platform_->servers_per_shard());
  it->second.prepared.insert(shard);
  if (it->second.prepared.size() == it->second.shards.size()) {
    Decide(it->first, /*commit=*/true);
  }
  return cpu;
}

double ShardCoordinator::HandleReject(const sim::Message& msg) {
  const auto& m = std::any_cast<const ClientTxReject&>(msg.payload);
  double cpu = platform_->options().xs_coordinator_cpu;
  if (msg.corrupted) return cpu;
  auto it = entries_.find(XsBaseId(m.tx_id));
  if (it == entries_.end()) return cpu;
  // Rebuild the rejected record and retry on the same shard after a
  // back-off: 2PC must not stall on a transient admission refusal.
  uint32_t shard = uint32_t(size_t(msg.from) / platform_->servers_per_shard());
  chain::Transaction record;
  if (m.tx_id & kXsPrepareBit) {
    if (it->second.decided) return cpu;  // prepare phase already over
    record = MakeRecord(it->second, "prepare", kXsPrepareBit);
  } else if (m.tx_id & kXsAbortBit) {
    record = MakeRecord(it->second, "abort", kXsAbortBit);
  } else {
    record = it->second.tx;  // the commit record
  }
  sim()->After(kResubmitDelay, [this, shard, record] {
    if (!crashed()) SubmitToShard(shard, record);
  });
  return cpu;
}

void ShardCoordinator::OnPrepareTimeout(uint64_t base_id) {
  auto it = entries_.find(base_id);
  if (it == entries_.end() || it->second.decided) return;
  if (auto* rec = sim()->recorder()) {
    rec->Timer(uint32_t(id()), Now(), "xs.prepare_timeout", base_id);
  }
  Decide(base_id, /*commit=*/false);
  // Timeouts fire as scheduled events, outside the HandleMessage epilogue.
  SyncMemGauge();
}

void ShardCoordinator::Decide(uint64_t base_id, bool commit) {
  Entry& e = entries_.at(base_id);
  e.decided = true;
  if (auto* rec = sim()->recorder()) {
    rec->Phase(uint32_t(id()), Now(), commit ? "xs.commit" : "xs.abort",
               base_id, e.shards.size());
  }
  if (commit) {
    ++committed_;
    if (break_atomicity_ && e.shards.size() > 1) {
      // Deliberately broken: commit lands on the first participant only,
      // the rest see an abort — the atomicity invariant's target.
      SubmitToShard(e.shards.front(), e.tx);
      chain::Transaction abort_rec = MakeRecord(e, "abort", kXsAbortBit);
      for (size_t i = 1; i < e.shards.size(); ++i) {
        SubmitToShard(e.shards[i], abort_rec);
      }
      return;
    }
    // The commit record is the original transaction: each participant
    // shard seals and executes it, and the client's home-shard poll
    // discovers it exactly like a single-shard commit.
    for (uint32_t shard : e.shards) SubmitToShard(shard, e.tx);
    return;
  }
  ++aborted_;
  chain::Transaction abort_rec = MakeRecord(e, "abort", kXsAbortBit);
  for (uint32_t shard : e.shards) SubmitToShard(shard, abort_rec);
  Send(e.client, "client_tx_reject", ClientTxReject{e.tx.id}, 60);
}

// --- ShardedPlatform ---------------------------------------------------------

ShardedPlatform::ShardedPlatform(sim::Simulation* sim, PlatformOptions options,
                                 size_t servers_per_shard, uint64_t seed)
    // `options` is deliberately copied (not moved) into the base: the
    // num_servers argument also reads it, and argument evaluation order
    // is unspecified.
    : Platform(sim, options, options.num_shards * servers_per_shard, seed),
      shards_(options.num_shards),
      per_shard_(servers_per_shard) {
  // Carve the flat node array into per-shard consensus groups and wire
  // every server to the 2PC coordinator.
  for (size_t i = 0; i < num_servers(); ++i) {
    nodes_[i]->set_peer_group(sim::NodeId((i / per_shard_) * per_shard_),
                              per_shard_);
    nodes_[i]->set_xs_notify(coordinator_id());
  }
  coordinator_ =
      std::make_unique<ShardCoordinator>(coordinator_id(), network_.get(), this);
}

ShardedPlatform::~ShardedPlatform() = default;

uint64_t ShardedPlatform::CanonicalBlocks() const {
  uint64_t total = 0;
  for (size_t s = 0; s < shards_; ++s) {
    total += nodes_[s * per_shard_]->chain().main_chain_blocks();
  }
  return total;
}

std::unique_ptr<Platform> MakePlatform(sim::Simulation* sim,
                                       PlatformOptions options,
                                       size_t num_servers, uint64_t seed) {
  if (options.num_shards <= 1) {
    return std::make_unique<Platform>(sim, std::move(options), num_servers,
                                      seed);
  }
  return std::make_unique<ShardedPlatform>(sim, std::move(options),
                                           num_servers, seed);
}

}  // namespace bb::platform
