// PlatformRegistry: the declarative catalogue of platform models. Each
// entry is a name, a one-line description, and a factory producing the
// calibrated PlatformOptions — i.e. a StackSpec plus constants. The five
// canonical platforms (ethereum / parity / hyperledger / erisdb / corda)
// are pre-registered; adding a backend is one Register() call (see
// docs/EXTENDING.md for the ~30-line recipe).
//
// Mix-and-match stacks — the paper's layer-swap ablations — come from
// CustomStackOptions() or from spec strings like "pbft+trie+evm"
// understood by StackOptionsFromString(), which bbench and the ablation
// benches expose directly on the command line.

#ifndef BLOCKBENCH_PLATFORM_REGISTRY_H_
#define BLOCKBENCH_PLATFORM_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "platform/options.h"

namespace bb::platform {

struct PlatformDefinition {
  std::string name;
  /// One-liner for --help listings and docs.
  std::string description;
  std::function<PlatformOptions()> make;
};

class PlatformRegistry {
 public:
  /// The process-wide registry, pre-populated with the five canonical
  /// platform models.
  static PlatformRegistry& Instance();

  /// InvalidArgument on a duplicate or empty name, or if the definition's
  /// options fail Validate().
  Status Register(PlatformDefinition def);
  bool Contains(const std::string& name) const;
  /// Builds the named platform's options; NotFound for unknown names
  /// (the message lists what is registered).
  Result<PlatformOptions> Make(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> Names() const;
  const std::map<std::string, PlatformDefinition>& definitions() const {
    return defs_;
  }

 private:
  std::map<std::string, PlatformDefinition> defs_;
};

/// Layer-name parsers ("pbft", "trie", "memkv", "evm", ...).
Result<ConsensusKind> ParseConsensusKind(const std::string& s);
Result<StateTreeKind> ParseStateTreeKind(const std::string& s);
Result<StorageBackendKind> ParseStorageBackendKind(const std::string& s);
Result<ExecEngineKind> ParseExecEngineKind(const std::string& s);

/// Options for an arbitrary stack with neutral (uncalibrated) constants:
/// BFT/CFT consensus gets immediate finality, chain-based consensus the
/// default confirmation depth. `name` defaults to ToString(spec).
PlatformOptions CustomStackOptions(const StackSpec& spec,
                                   std::string name = "");

/// Resolves either a registered platform name ("hyperledger") or a
/// "consensus+tree[/backend]+exec" spec ("pbft+trie+evm",
/// "pow+bucket/memkv+native") into validated options.
Result<PlatformOptions> StackOptionsFromString(const std::string& desc);

}  // namespace bb::platform

#endif  // BLOCKBENCH_PLATFORM_REGISTRY_H_
