#include "platform/platform.h"

#include <cstdio>
#include <cstdlib>

#include "obs/recorder.h"
#include "vm/assembler.h"

namespace bb::platform {

Platform::Platform(sim::Simulation* sim, PlatformOptions options,
                   size_t num_servers, uint64_t seed)
    : sim_(sim), options_(std::move(options)) {
  // Fail loudly on inconsistent layer combinations instead of silently
  // falling back — every stack a Platform runs has passed Validate().
  Status valid = options_.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid platform options: %s\n",
                 valid.ToString().c_str());
    std::abort();
  }
  network_ = std::make_unique<sim::Network>(sim_, options_.net);
  Rng seeder(seed);
  for (size_t i = 0; i < num_servers; ++i) {
    nodes_.push_back(std::make_unique<PlatformNode>(
        sim::NodeId(i), network_.get(), options_, seeder.Next()));
  }
  for (auto& n : nodes_) n->set_num_peers(num_servers);
}

Platform::~Platform() = default;

Status Platform::DeployContract(const std::string& name,
                                const std::string& casm) {
  auto program = vm::Assemble(casm);
  if (!program.ok()) return program.status();
  for (auto& n : nodes_) {
    BB_RETURN_IF_ERROR(n->DeployContract(name, *program));
  }
  return Status::Ok();
}

Status Platform::DeployChaincode(const std::string& name,
                                 const std::string& registered_as) {
  for (auto& n : nodes_) {
    BB_RETURN_IF_ERROR(n->DeployChaincode(name, registered_as));
  }
  return Status::Ok();
}

Status Platform::DeployWorkloadContract(const std::string& name,
                                        const std::string& casm,
                                        const std::string& chaincode_name) {
  switch (options_.stack.exec_engine) {
    case ExecEngineKind::kEvm:
      return DeployContract(name, casm);
    case ExecEngineKind::kNative:
    case ExecEngineKind::kNoop:
      // The noop layer accepts the chaincode deploy shape (no assembly
      // needed) and executes nothing.
      return DeployChaincode(name, chaincode_name);
  }
  return Status::InvalidArgument("unknown execution engine kind");
}

Status Platform::PreloadState(const std::string& contract,
                              const std::string& key,
                              const std::string& value) {
  for (auto& n : nodes_) {
    BB_RETURN_IF_ERROR(n->PreloadState(contract, key, value));
  }
  return Status::Ok();
}

Status Platform::FinalizeGenesis() {
  for (auto& n : nodes_) {
    BB_RETURN_IF_ERROR(n->FinalizeGenesis());
  }
  return Status::Ok();
}

Status Platform::PreloadBlock(const std::vector<chain::Transaction>& txs) {
  for (auto& n : nodes_) {
    BB_RETURN_IF_ERROR(n->DirectCommit(txs));
  }
  return Status::Ok();
}

void Platform::Start() {
  for (auto& n : nodes_) n->Start();
}

uint64_t Platform::TotalBlocksProduced() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) total += n->blocks_produced();
  return total;
}

uint64_t Platform::CanonicalBlocks() const {
  return nodes_.front()->chain().main_chain_blocks();
}

uint64_t Platform::TotalTxsExecuted() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) total += n->txs_executed();
  return total;
}

void Platform::ExportMetrics(obs::MetricsRegistry* reg) const {
  for (const auto& n : nodes_) n->ExportMetrics(reg);
  if (const auto* rec = sim_->recorder()) rec->ExportMetrics(reg);
}

}  // namespace bb::platform
