// Message schemas of the client<->server interface: transaction submission
// and the JSON-RPC-like query API ("current systems support a minimum set
// of queries including getting blocks and transactions based on their
// IDs"; Ethereum/Parity add account state at specific blocks).

#ifndef BLOCKBENCH_PLATFORM_RPC_H_
#define BLOCKBENCH_PLATFORM_RPC_H_

#include <memory>
#include <vector>

#include "chain/block.h"
#include "chain/transaction.h"
#include "vm/value.h"

namespace bb::platform {

using BlockPtr = std::shared_ptr<const chain::Block>;

/// type = "client_tx". Client -> server transaction submission.
struct ClientTx {
  chain::Transaction tx;
};

/// type = "client_tx_reject". Server pool is full; client should back off.
struct ClientTxReject {
  uint64_t tx_id;
};

/// type = "gossip_tx". Server -> server relay of an admitted transaction.
/// Carries a shared handle so broadcasting to N peers bumps a refcount N
/// times instead of deep-copying the payload N times (size_bytes still
/// models the full wire size).
struct GossipTx {
  std::shared_ptr<const chain::Transaction> tx;
};

/// Cross-shard 2PC wire protocol (platform/sharding.h) ---------------------

/// Pseudo-contract name of 2PC prepare/abort records. The records are
/// ordinary transactions sealed into participant chains; executing them
/// is a no-op (no such contract is deployed, value = 0), but the auditor
/// replays them to check cross-shard atomicity.
inline constexpr char kXsContract[] = "__xshard";

/// Record-id encoding: the prepare/abort records for transaction `id`
/// reuse the id with one distinguishing high bit (client tx ids occupy
/// the low 48 bits, so bits 62/63 are free).
inline constexpr uint64_t kXsPrepareBit = uint64_t(1) << 62;
inline constexpr uint64_t kXsAbortBit = uint64_t(1) << 63;
inline uint64_t XsBaseId(uint64_t record_id) {
  return record_id & ~(kXsPrepareBit | kXsAbortBit);
}

/// type = "xs_client_tx". Client -> coordinator: a transaction whose keys
/// straddle `shards` (at least two of them).
struct XsClientTx {
  chain::Transaction tx;
  std::vector<uint32_t> shards;
};

/// type = "xs_sealed". Participant server -> coordinator: a "__xshard"
/// record (or cross-shard commit) was canonically executed on its chain.
struct XsSealed {
  uint64_t record_id;
};

/// type = "rpc_getblocks". getLatestBlock(h): confirmed blocks above h.
struct RpcGetBlocks {
  uint64_t req_id;
  uint64_t from_height;
};
/// type = "rpc_blocks".
struct RpcBlocks {
  uint64_t req_id;
  uint64_t confirmed_height;
  std::vector<BlockPtr> blocks;
};

/// type = "rpc_getblock". Single block by height (canonical, confirmed).
struct RpcGetBlock {
  uint64_t req_id;
  uint64_t height;
};
/// type = "rpc_block". block is null when unavailable.
struct RpcBlock {
  uint64_t req_id;
  BlockPtr block;
};

/// type = "rpc_getbalance". Account balance at a historical block
/// (Ethereum/Parity only — needs versioned state).
struct RpcGetBalance {
  uint64_t req_id;
  std::string account;
  uint64_t height;
};
/// type = "rpc_balance".
struct RpcBalance {
  uint64_t req_id;
  bool ok;
  int64_t balance;
};

/// type = "rpc_query". Read-only contract invocation on current state
/// (Hyperledger chaincode query path).
struct RpcQuery {
  uint64_t req_id;
  std::string contract;
  std::string function;
  vm::Args args;
};
/// type = "rpc_result".
struct RpcResult {
  uint64_t req_id;
  bool ok;
  vm::Value value;
};

}  // namespace bb::platform

#endif  // BLOCKBENCH_PLATFORM_RPC_H_
