#include "platform/registry.h"

namespace bb::platform {

namespace {

void RegisterCanonical(PlatformRegistry* reg) {
  auto must = [&](PlatformDefinition def) {
    Status s = reg->Register(std::move(def));
    (void)s;  // canonical definitions are valid by construction
  };
  must({"ethereum",
        "geth v1.4.18 model: PoW, boxed-word EVM, Patricia trie (pow+trie+evm)",
        EthereumOptions});
  must({"parity",
        "Parity v1.6 model: PoA, optimized EVM, in-memory trie, signing "
        "bottleneck (poa+trie+evm)",
        ParityOptions});
  must({"hyperledger",
        "Fabric v0.6 model: PBFT, native chaincode, bucket tree, bounded "
        "channel (pbft+bucket+native)",
        HyperledgerOptions});
  must({"erisdb",
        "ErisDB model: Tendermint BFT, EVM contracts, trie state "
        "(tendermint+trie+evm)",
        ErisDbOptions});
  must({"corda",
        "Corda-style model: Raft (crash-fault only), native execution, flat "
        "state (raft+bucket+native)",
        CordaOptions});
  must({"fabric", "alias of 'hyperledger' (Fabric v0.6 model)",
        HyperledgerOptions});
}

}  // namespace

PlatformRegistry& PlatformRegistry::Instance() {
  static PlatformRegistry* instance = [] {
    auto* reg = new PlatformRegistry();
    RegisterCanonical(reg);
    return reg;
  }();
  return *instance;
}

Status PlatformRegistry::Register(PlatformDefinition def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("platform name must be non-empty");
  }
  if (def.make == nullptr) {
    return Status::InvalidArgument("platform '" + def.name +
                                   "' has no options factory");
  }
  if (defs_.count(def.name)) {
    return Status::InvalidArgument("platform already registered: " + def.name);
  }
  BB_RETURN_IF_ERROR(def.make().Validate());
  std::string name = def.name;
  defs_.emplace(std::move(name), std::move(def));
  return Status::Ok();
}

bool PlatformRegistry::Contains(const std::string& name) const {
  return defs_.count(name) != 0;
}

Result<PlatformOptions> PlatformRegistry::Make(const std::string& name) const {
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    std::string known;
    for (const auto& [n, _] : defs_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::NotFound("unknown platform '" + name +
                            "' (registered: " + known + ")");
  }
  return it->second.make();
}

std::vector<std::string> PlatformRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(defs_.size());
  for (const auto& [n, _] : defs_) names.push_back(n);
  return names;  // std::map iteration is already sorted
}

Result<ConsensusKind> ParseConsensusKind(const std::string& s) {
  if (s == "pow") return ConsensusKind::kPow;
  if (s == "poa") return ConsensusKind::kPoa;
  if (s == "pbft") return ConsensusKind::kPbft;
  if (s == "tendermint") return ConsensusKind::kTendermint;
  if (s == "raft") return ConsensusKind::kRaft;
  return Status::InvalidArgument(
      "unknown consensus layer '" + s +
      "' (one of: pow, poa, pbft, tendermint, raft)");
}

Result<StateTreeKind> ParseStateTreeKind(const std::string& s) {
  if (s == "trie") return StateTreeKind::kPatriciaTrie;
  if (s == "bucket") return StateTreeKind::kBucketTree;
  return Status::InvalidArgument("unknown state tree '" + s +
                                 "' (one of: trie, bucket)");
}

Result<StorageBackendKind> ParseStorageBackendKind(const std::string& s) {
  if (s == "memkv") return StorageBackendKind::kMemKv;
  if (s == "diskkv") return StorageBackendKind::kDiskKv;
  return Status::InvalidArgument("unknown storage backend '" + s +
                                 "' (one of: memkv, diskkv)");
}

Result<ExecEngineKind> ParseExecEngineKind(const std::string& s) {
  if (s == "evm") return ExecEngineKind::kEvm;
  if (s == "native") return ExecEngineKind::kNative;
  if (s == "noop") return ExecEngineKind::kNoop;
  return Status::InvalidArgument("unknown execution engine '" + s +
                                 "' (one of: evm, native, noop)");
}

PlatformOptions CustomStackOptions(const StackSpec& spec, std::string name) {
  PlatformOptions o;
  o.stack = spec;
  o.name = name.empty() ? ToString(spec) : std::move(name);
  switch (spec.consensus) {
    case ConsensusKind::kPow:
    case ConsensusKind::kPoa:
      // Chain-based consensus forks; keep the default confirmation lag.
      o.confirmation_depth = 2;
      break;
    case ConsensusKind::kPbft:
    case ConsensusKind::kTendermint:
    case ConsensusKind::kRaft:
      o.confirmation_depth = 0;  // agreement is final on commit
      break;
  }
  o.block_tx_limit = 500;
  return o;
}

Result<PlatformOptions> StackOptionsFromString(const std::string& desc) {
  // Peel the sharding axis first: both registered names and raw stack
  // specs accept an "@shards=S" suffix ("hyperledger@shards=4",
  // "pbft+trie+evm@shards=2").
  if (size_t at = desc.rfind("@shards="); at != std::string::npos) {
    std::string count = desc.substr(at + 8);
    size_t shards = 0;
    size_t consumed = 0;
    try {
      shards = std::stoull(count, &consumed);
    } catch (...) {
      consumed = 0;
    }
    if (consumed != count.size() || count.empty() || shards == 0) {
      return Status::InvalidArgument(
          "stack spec '" + desc +
          "': num_shards: '@shards=' needs a positive integer shard count; "
          "try e.g. '" +
          desc.substr(0, at) + "@shards=4'");
    }
    auto base = StackOptionsFromString(desc.substr(0, at));
    if (!base.ok()) return base.status();
    PlatformOptions o = std::move(*base);
    o.num_shards = shards;
    if (shards > 1) o.name += "@shards=" + std::to_string(shards);
    BB_RETURN_IF_ERROR(o.Validate());
    return o;
  }

  auto& registry = PlatformRegistry::Instance();
  if (registry.Contains(desc)) return registry.Make(desc);
  if (desc.find('+') == std::string::npos) return registry.Make(desc);

  // consensus+tree[/backend]+exec
  size_t first = desc.find('+');
  size_t last = desc.rfind('+');
  if (first == last) {
    return Status::InvalidArgument(
        "stack spec must be consensus+tree[/backend]+exec, got '" + desc +
        "'");
  }
  std::string consensus = desc.substr(0, first);
  std::string data = desc.substr(first + 1, last - first - 1);
  std::string exec = desc.substr(last + 1);
  std::string tree = data, backend = "memkv";
  if (size_t slash = data.find('/'); slash != std::string::npos) {
    tree = data.substr(0, slash);
    backend = data.substr(slash + 1);
  }

  StackSpec spec;
  auto c = ParseConsensusKind(consensus);
  if (!c.ok()) return c.status();
  spec.consensus = *c;
  auto t = ParseStateTreeKind(tree);
  if (!t.ok()) return t.status();
  spec.state_tree = *t;
  auto b = ParseStorageBackendKind(backend);
  if (!b.ok()) return b.status();
  spec.storage = *b;
  auto e = ParseExecEngineKind(exec);
  if (!e.ok()) return e.status();
  spec.exec_engine = *e;

  PlatformOptions o = CustomStackOptions(spec);
  BB_RETURN_IF_ERROR(o.Validate());
  return o;
}

}  // namespace bb::platform
