// Forensics: the platform-side bridge into the observability stack.
//
// Two jobs, both spanning the whole cluster:
//   * AttachStandardProbes wires a live obs::Sampler to every server —
//     chain height, pool depth, fork count, crash/partition status, plus
//     whatever each consensus engine exposes through LiveGauges()
//     (current PBFT view, Raft term, Tendermint round, ...).
//   * CollectAuditViews / RunAudit extract every node's final ChainStore
//     into the neutral obs::NodeChainView records the obs::Auditor
//     consumes (obs cannot see chain:: types — bb_chain links bb_obs).
//
// See docs/OBSERVABILITY.md for the sampler/auditor user guide.

#ifndef BLOCKBENCH_PLATFORM_FORENSICS_H_
#define BLOCKBENCH_PLATFORM_FORENSICS_H_

#include <vector>

#include "obs/auditor.h"
#include "obs/sampler.h"
#include "platform/platform.h"

namespace bb::platform {

/// Registers the standard per-server gauge set on `sampler`:
///   chain.height, chain.forks, pool.depth, net.crashed, net.side
/// plus the engine's LiveGauges(). The platform must outlive the
/// sampler's run (the gauges hold raw pointers into it).
void AttachStandardProbes(obs::Sampler* sampler, Platform* platform);

/// Extracts server `i`'s final ledger view. Blocks are sorted by
/// (height, hash) so the view itself is deterministic.
obs::NodeChainView CollectNodeView(Platform& platform, size_t i);

/// Every server's view, in node-id order.
std::vector<obs::NodeChainView> CollectAuditViews(Platform& platform);

/// Convenience: collect all views and run the audit in one step.
obs::AuditReport RunAudit(Platform& platform,
                          const obs::AuditorConfig& config);

}  // namespace bb::platform

#endif  // BLOCKBENCH_PLATFORM_FORENSICS_H_
