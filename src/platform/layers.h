// The paper's layer taxonomy (§3) as explicit, independently pluggable
// interfaces:
//
//   * ConsensusLayer — wraps a consensus::Engine (PoW / PoA / PBFT /
//     Tendermint / Raft); orders blocks.
//   * DataLayer      — owns the chain store plus the world state: an
//     authenticated structure (Patricia trie / bucket tree) over a
//     storage backend (memkv / diskkv).
//   * ExecutionLayer — runs deployed contracts: the gas-metered EVM
//     interpreter, native chaincode, or the no-op baseline.
//
// A LayerStack is the assembly of one layer per slot, built from a
// PlatformOptions::StackSpec (or layer-by-layer via LayerStackBuilder).
// PlatformNode is glue forwarding sim::Node / ConsensusHost callbacks
// into its stack, which is what makes the paper's layer-swap ablations
// (bucket-tree vs trie, PBFT over the Ethereum data model, ...) plain
// configuration instead of hand-rolled one-off benchmarks.

#ifndef BLOCKBENCH_PLATFORM_LAYERS_H_
#define BLOCKBENCH_PLATFORM_LAYERS_H_

#include <map>
#include <memory>
#include <string>

#include "chain/chain_store.h"
#include "chain/state_db.h"
#include "consensus/engine.h"
#include "platform/options.h"
#include "storage/kvstore.h"
#include "vm/interpreter.h"
#include "vm/native.h"

namespace bb::platform {

// --- Consensus layer ---------------------------------------------------------

/// Owns the consensus engine for one node. The engine talks back to the
/// node through consensus::ConsensusHost; this layer only decides *which*
/// protocol fills the slot.
class ConsensusLayer {
 public:
  ConsensusLayer(ConsensusKind kind, std::unique_ptr<consensus::Engine> engine)
      : kind_(kind), engine_(std::move(engine)) {}

  ConsensusKind kind() const { return kind_; }
  const char* name() const { return engine_->name(); }
  consensus::Engine& engine() { return *engine_; }
  const consensus::Engine& engine() const { return *engine_; }

  /// Builds the engine selected by options.stack.consensus, configured
  /// from the matching per-protocol config. `seed` feeds the randomized
  /// engines (PoW mining race, Raft election jitter).
  static std::unique_ptr<ConsensusLayer> Make(const PlatformOptions& options,
                                              uint64_t seed);

 private:
  ConsensusKind kind_;
  std::unique_ptr<consensus::Engine> engine_;
};

// --- Data layer --------------------------------------------------------------

/// Owns one node's chain store and world state: the storage backend
/// (memkv / diskkv) and the authenticated structure over it (Patricia
/// trie with versioned reads, or the in-place bucket tree).
class DataLayer {
 public:
  chain::ChainStore& chain() { return chain_; }
  const chain::ChainStore& chain() const { return chain_; }
  chain::StateDb& state() { return *state_; }
  const chain::StateDb& state() const { return *state_; }
  storage::KvStore& store() { return *store_; }

  StateTreeKind tree_kind() const { return tree_kind_; }
  StorageBackendKind backend_kind() const { return backend_kind_; }
  /// The state root of an empty world state — the reorg reset target when
  /// no snapshot is recorded for the fork point.
  Hash256 empty_state_root() const;

  /// Builds the backend + tree selected by options.stack. Fails when the
  /// disk backend cannot open its log under options.data_dir. `node_tag`
  /// keeps per-node disk files apart ("node3").
  static Result<std::unique_ptr<DataLayer>> Make(const PlatformOptions& options,
                                                 const std::string& node_tag);

 private:
  DataLayer() : chain_(chain::Block{}) {}  // all-zero genesis on every node

  StateTreeKind tree_kind_ = StateTreeKind::kPatriciaTrie;
  StorageBackendKind backend_kind_ = StorageBackendKind::kMemKv;
  chain::ChainStore chain_;
  std::unique_ptr<storage::KvStore> store_;
  std::unique_ptr<chain::StateDb> state_;
};

// --- Execution layer ---------------------------------------------------------

/// What one contract invocation cost and returned.
struct ExecOutcome {
  vm::ExecReceipt receipt;
  /// Engine-variable CPU seconds (gas or storage ops); the node adds the
  /// per-transaction fixed cost on top.
  double cpu = 0;
  /// Gas consumed (EVM only; 0 elsewhere) — drives gas-based packing.
  uint64_t gas = 0;
};

/// Runs deployed contracts. Concrete layers host exactly one engine
/// family; deploying the other family's artifact is an error (no silent
/// fallbacks — a chaincode deploy on an EVM layer must fail loudly).
class ExecutionLayer {
 public:
  virtual ~ExecutionLayer() = default;

  virtual ExecEngineKind kind() const = 0;
  virtual const char* name() const = 0;

  /// Deploys an assembled EVM program under `name`.
  virtual Status DeployProgram(const std::string& name,
                               const vm::Program& program);
  /// Instantiates chaincode registered as `registered_as` under `name`.
  virtual Status DeployChaincode(const std::string& name,
                                 const std::string& registered_as);

  virtual bool HasContract(const std::string& name) const = 0;
  /// Executes contract `name` with `ctx` against `host`. NotFound when
  /// the contract is not deployed; execution failures are reported in
  /// out->receipt.status, not the return value.
  virtual Status Invoke(const std::string& name, const vm::TxContext& ctx,
                        vm::HostInterface* host, ExecOutcome* out) = 0;

  /// Logical bytes held by deployed artifacts (assembled EVM bytecode,
  /// instantiated chaincode) — the mem-observability vm subsystem.
  virtual uint64_t footprint_bytes() const { return 0; }

  /// Builds the engine selected by options.stack.exec_engine.
  static std::unique_ptr<ExecutionLayer> Make(const PlatformOptions& options);
};

/// Gas-metered bytecode interpreter (Ethereum / Parity / ErisDB models).
class EvmExecution : public ExecutionLayer {
 public:
  EvmExecution(const vm::VmOptions& vm, const ExecCostModel& cost)
      : interpreter_(vm), cost_(cost) {}

  ExecEngineKind kind() const override { return ExecEngineKind::kEvm; }
  const char* name() const override { return "evm"; }
  Status DeployProgram(const std::string& name,
                       const vm::Program& program) override;
  bool HasContract(const std::string& name) const override {
    return programs_.count(name) != 0;
  }
  Status Invoke(const std::string& name, const vm::TxContext& ctx,
                vm::HostInterface* host, ExecOutcome* out) override;

  uint64_t footprint_bytes() const override {
    uint64_t b = 0;
    for (const auto& [name, program] : programs_) {
      b += obs::mem::kMapEntryBytes + name.size() + program.CodeSize();
    }
    return b;
  }

 private:
  vm::Interpreter interpreter_;
  ExecCostModel cost_;
  std::map<std::string, vm::Program> programs_;
};

/// Native chaincode against PutState/GetState (Hyperledger / Corda models).
class NativeExecution : public ExecutionLayer {
 public:
  explicit NativeExecution(const ExecCostModel& cost) : cost_(cost) {}

  ExecEngineKind kind() const override { return ExecEngineKind::kNative; }
  const char* name() const override { return "native"; }
  Status DeployChaincode(const std::string& name,
                         const std::string& registered_as) override;
  bool HasContract(const std::string& name) const override {
    return chaincodes_.count(name) != 0;
  }
  Status Invoke(const std::string& name, const vm::TxContext& ctx,
                vm::HostInterface* host, ExecOutcome* out) override;

  /// Chaincode is native C++ — no bytecode to weigh, so each instance
  /// is costed as one registry entry.
  uint64_t footprint_bytes() const override {
    return chaincodes_.size() *
           (obs::mem::kMapEntryBytes + obs::mem::kSetEntryBytes);
  }

 private:
  vm::NativeRuntime runtime_;
  ExecCostModel cost_;
  std::map<std::string, std::unique_ptr<vm::Chaincode>> chaincodes_;
};

/// Accepts any deploy and executes nothing at zero cost: isolates the
/// consensus + data layers, like the paper's DoNothing contract but for
/// arbitrary workloads.
class NoopExecution : public ExecutionLayer {
 public:
  ExecEngineKind kind() const override { return ExecEngineKind::kNoop; }
  const char* name() const override { return "noop"; }
  Status DeployProgram(const std::string& name, const vm::Program&) override;
  Status DeployChaincode(const std::string& name, const std::string&) override;
  bool HasContract(const std::string& name) const override {
    return deployed_.count(name) != 0;
  }
  Status Invoke(const std::string& name, const vm::TxContext& ctx,
                vm::HostInterface* host, ExecOutcome* out) override;

 private:
  Status Record(const std::string& name);
  std::map<std::string, bool> deployed_;
};

// --- The assembled stack -----------------------------------------------------

/// One node's consensus + data + execution layers.
class LayerStack {
 public:
  LayerStack(std::unique_ptr<ConsensusLayer> consensus,
             std::unique_ptr<DataLayer> data,
             std::unique_ptr<ExecutionLayer> execution)
      : consensus_(std::move(consensus)),
        data_(std::move(data)),
        execution_(std::move(execution)) {}

  ConsensusLayer& consensus() { return *consensus_; }
  const ConsensusLayer& consensus() const { return *consensus_; }
  DataLayer& data() { return *data_; }
  const DataLayer& data() const { return *data_; }
  ExecutionLayer& execution() { return *execution_; }

  /// Builds all three layers from options.stack.
  static Result<std::unique_ptr<LayerStack>> Build(
      const PlatformOptions& options, uint64_t seed,
      const std::string& node_tag = "");

 private:
  std::unique_ptr<ConsensusLayer> consensus_;
  std::unique_ptr<DataLayer> data_;
  std::unique_ptr<ExecutionLayer> execution_;
};

/// Assembles a LayerStack slot by slot; unset slots are filled from the
/// options' StackSpec at Build(). Lets tests and ablations swap a single
/// layer while inheriting the rest of a calibrated platform.
class LayerStackBuilder {
 public:
  explicit LayerStackBuilder(PlatformOptions options)
      : options_(std::move(options)) {}

  LayerStackBuilder& WithConsensus(std::unique_ptr<ConsensusLayer> layer) {
    consensus_ = std::move(layer);
    return *this;
  }
  LayerStackBuilder& WithData(std::unique_ptr<DataLayer> layer) {
    data_ = std::move(layer);
    return *this;
  }
  LayerStackBuilder& WithExecution(std::unique_ptr<ExecutionLayer> layer) {
    execution_ = std::move(layer);
    return *this;
  }

  Result<std::unique_ptr<LayerStack>> Build(uint64_t seed,
                                            const std::string& node_tag = "");

 private:
  PlatformOptions options_;
  std::unique_ptr<ConsensusLayer> consensus_;
  std::unique_ptr<DataLayer> data_;
  std::unique_ptr<ExecutionLayer> execution_;
};

}  // namespace bb::platform

#endif  // BLOCKBENCH_PLATFORM_LAYERS_H_
