#include "platform/layers.h"

#include "storage/diskkv.h"
#include "storage/memkv.h"

namespace bb::platform {

// --- ConsensusLayer ----------------------------------------------------------

std::unique_ptr<ConsensusLayer> ConsensusLayer::Make(
    const PlatformOptions& options, uint64_t seed) {
  std::unique_ptr<consensus::Engine> engine;
  switch (options.stack.consensus) {
    case ConsensusKind::kPow:
      engine = std::make_unique<consensus::ProofOfWork>(options.pow, seed);
      break;
    case ConsensusKind::kPoa:
      engine = std::make_unique<consensus::ProofOfAuthority>(options.poa);
      break;
    case ConsensusKind::kPbft:
      engine = std::make_unique<consensus::Pbft>(options.pbft);
      break;
    case ConsensusKind::kTendermint:
      engine = std::make_unique<consensus::Tendermint>(options.tendermint);
      break;
    case ConsensusKind::kRaft:
      engine = std::make_unique<consensus::Raft>(options.raft, seed);
      break;
  }
  return std::make_unique<ConsensusLayer>(options.stack.consensus,
                                          std::move(engine));
}

// --- DataLayer ---------------------------------------------------------------

Hash256 DataLayer::empty_state_root() const {
  if (tree_kind_ == StateTreeKind::kPatriciaTrie) {
    return storage::MerklePatriciaTrie::EmptyRoot();
  }
  return Hash256::Zero();
}

Result<std::unique_ptr<DataLayer>> DataLayer::Make(
    const PlatformOptions& options, const std::string& node_tag) {
  auto layer = std::unique_ptr<DataLayer>(new DataLayer());
  layer->tree_kind_ = options.stack.state_tree;
  layer->backend_kind_ = options.stack.storage;

  switch (options.stack.storage) {
    case StorageBackendKind::kMemKv:
      layer->store_ =
          std::make_unique<storage::MemKv>(options.state_mem_capacity);
      break;
    case StorageBackendKind::kDiskKv: {
      if (options.data_dir.empty()) {
        return Status::InvalidArgument(
            "diskkv storage backend requires a data_dir");
      }
      std::string path = options.data_dir + "/state";
      if (!node_tag.empty()) path += "_" + node_tag;
      path += ".kv";
      auto disk = storage::DiskKv::Open(path);
      if (!disk.ok()) return disk.status();
      layer->store_ = std::move(*disk);
      break;
    }
  }

  switch (options.stack.state_tree) {
    case StateTreeKind::kPatriciaTrie:
      layer->state_ = std::make_unique<chain::TrieStateDb>(
          layer->store_.get(), options.trie_cache_entries);
      break;
    case StateTreeKind::kBucketTree:
      layer->state_ = std::make_unique<chain::BucketStateDb>(layer->store_.get());
      break;
  }
  return layer;
}

// --- ExecutionLayer ----------------------------------------------------------

Status ExecutionLayer::DeployProgram(const std::string& name,
                                     const vm::Program&) {
  return Status::InvalidArgument("execution layer '" + std::string(this->name()) +
                                 "' cannot host EVM program: " + name);
}

Status ExecutionLayer::DeployChaincode(const std::string& name,
                                       const std::string&) {
  return Status::InvalidArgument("execution layer '" + std::string(this->name()) +
                                 "' cannot host native chaincode: " + name);
}

std::unique_ptr<ExecutionLayer> ExecutionLayer::Make(
    const PlatformOptions& options) {
  switch (options.stack.exec_engine) {
    case ExecEngineKind::kEvm:
      return std::make_unique<EvmExecution>(options.vm, options.cost);
    case ExecEngineKind::kNative:
      return std::make_unique<NativeExecution>(options.cost);
    case ExecEngineKind::kNoop:
      return std::make_unique<NoopExecution>();
  }
  return nullptr;
}

Status EvmExecution::DeployProgram(const std::string& name,
                                   const vm::Program& program) {
  if (programs_.count(name)) {
    return Status::InvalidArgument("contract exists: " + name);
  }
  programs_.emplace(name, program);
  return Status::Ok();
}

Status EvmExecution::Invoke(const std::string& name, const vm::TxContext& ctx,
                            vm::HostInterface* host, ExecOutcome* out) {
  auto it = programs_.find(name);
  if (it == programs_.end()) return Status::NotFound("no contract: " + name);
  out->receipt = interpreter_.Execute(it->second, ctx, host);
  out->gas = out->receipt.gas_used;
  out->cpu = double(out->receipt.gas_used) * cost_.seconds_per_gas;
  return Status::Ok();
}

Status NativeExecution::DeployChaincode(const std::string& name,
                                        const std::string& registered_as) {
  if (chaincodes_.count(name)) {
    return Status::InvalidArgument("contract exists: " + name);
  }
  auto cc = vm::ChaincodeRegistry::Instance().Create(registered_as);
  if (!cc.ok()) return cc.status();
  chaincodes_.emplace(name, std::move(*cc));
  return Status::Ok();
}

Status NativeExecution::Invoke(const std::string& name,
                               const vm::TxContext& ctx,
                               vm::HostInterface* host, ExecOutcome* out) {
  auto it = chaincodes_.find(name);
  if (it == chaincodes_.end()) return Status::NotFound("no contract: " + name);
  out->receipt = runtime_.Execute(it->second.get(), ctx, host);
  out->cpu = double(out->receipt.storage_reads + out->receipt.storage_writes) *
             cost_.native_op_cpu;
  return Status::Ok();
}

Status NoopExecution::Record(const std::string& name) {
  if (deployed_.count(name)) {
    return Status::InvalidArgument("contract exists: " + name);
  }
  deployed_.emplace(name, true);
  return Status::Ok();
}

Status NoopExecution::DeployProgram(const std::string& name,
                                    const vm::Program&) {
  return Record(name);
}

Status NoopExecution::DeployChaincode(const std::string& name,
                                      const std::string&) {
  return Record(name);
}

Status NoopExecution::Invoke(const std::string& name, const vm::TxContext&,
                             vm::HostInterface*, ExecOutcome* out) {
  if (!deployed_.count(name)) return Status::NotFound("no contract: " + name);
  *out = ExecOutcome{};  // Ok receipt, zero gas, zero cost
  return Status::Ok();
}

// --- LayerStack --------------------------------------------------------------

Result<std::unique_ptr<LayerStack>> LayerStack::Build(
    const PlatformOptions& options, uint64_t seed,
    const std::string& node_tag) {
  return LayerStackBuilder(options).Build(seed, node_tag);
}

Result<std::unique_ptr<LayerStack>> LayerStackBuilder::Build(
    uint64_t seed, const std::string& node_tag) {
  if (consensus_ == nullptr) consensus_ = ConsensusLayer::Make(options_, seed);
  if (data_ == nullptr) {
    auto data = DataLayer::Make(options_, node_tag);
    if (!data.ok()) return data.status();
    data_ = std::move(*data);
  }
  if (execution_ == nullptr) execution_ = ExecutionLayer::Make(options_);
  if (execution_ == nullptr) {
    return Status::InvalidArgument("unknown execution engine kind");
  }
  return std::make_unique<LayerStack>(std::move(consensus_), std::move(data_),
                                      std::move(execution_));
}

}  // namespace bb::platform
