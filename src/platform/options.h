// Platform configuration: one options struct per layer, with factory
// functions producing the calibrated Ethereum / Parity / Hyperledger
// models the benchmarks run against.

#ifndef BLOCKBENCH_PLATFORM_OPTIONS_H_
#define BLOCKBENCH_PLATFORM_OPTIONS_H_

#include <string>

#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "consensus/tendermint.h"
#include "consensus/poa.h"
#include "consensus/pow.h"
#include "sim/network.h"
#include "vm/interpreter.h"

namespace bb::platform {

enum class ConsensusKind { kPow, kPoa, kPbft, kTendermint, kRaft };
enum class ExecEngineKind { kEvm, kNative };
enum class StateModelKind { kTrieDisk, kTrieMem, kBucketDisk };

/// Maps execution receipts to virtual CPU seconds, so contract cost shows
/// up in throughput/latency the way it did on the paper's testbed.
struct ExecCostModel {
  /// Per-transaction fixed cost (signature recovery, dispatch).
  double tx_fixed_cpu = 1e-4;
  /// EVM: virtual seconds per unit of gas.
  double seconds_per_gas = 2e-8;
  /// Native: per storage operation.
  double native_op_cpu = 2e-5;
  /// Block assembly overhead per transaction (pool pop, envelope checks).
  double assemble_tx_cpu = 2e-5;
};

struct PlatformOptions {
  std::string name = "ethereum";
  ConsensusKind consensus = ConsensusKind::kPow;
  ExecEngineKind exec_engine = ExecEngineKind::kEvm;
  StateModelKind state_model = StateModelKind::kTrieDisk;

  consensus::PowConfig pow;
  consensus::PoaConfig poa;
  consensus::PbftConfig pbft;
  consensus::TendermintConfig tendermint;
  consensus::RaftConfig raft;

  sim::NetworkConfig net;
  /// Bounded consensus message channel (Hyperledger model): max queued
  /// "pbft_*" messages per node; overflow is dropped. 0 = unbounded.
  size_t consensus_channel_capacity = 0;

  /// Block assembly -------------------------------------------------------
  /// Max transactions per block (derived from gasLimit for Ethereum,
  /// batchSize for Hyperledger, the signing budget for Parity).
  size_t block_tx_limit = 700;
  /// Max block payload bytes (0 = unlimited).
  size_t block_byte_limit = 0;
  /// Gas-based block packing (EVM platforms only; 0 = off): the proposer
  /// executes candidates speculatively while assembling the block and
  /// stops at the gas limit, exactly as geth miners do.
  uint64_t block_gas_limit = 0;
  /// Blocks below the tip needed before a block counts as confirmed
  /// (ceil(confirmationLength / block interval); 0 for PBFT finality).
  size_t confirmation_depth = 2;

  /// Transaction admission -------------------------------------------------
  /// Server-side pending-pool capacity; submissions beyond it are
  /// rejected back to the client. 0 = unbounded.
  size_t tx_pool_capacity = 0;
  /// Server-side admission rate limit in tx/s (token bucket); 0 = off.
  /// Models Parity's observed ~80 tx/s network-wide client cap.
  double admission_rate_limit = 0;
  /// Batch assembly order: true = newest-first (Parity's gas-price
  /// ordered pool in effect), which keeps commit latency low while the
  /// backlog of accepted transactions grows.
  bool pool_lifo = false;
  /// CPU cost of admitting one client transaction.
  double admission_cpu = 5e-5;
  /// Whether accepted transactions are gossiped to all peers.
  bool gossip_txs = true;
  /// CPU to ingest one gossiped transaction.
  double gossip_ingest_cpu = 2e-5;

  /// Parity only: per-transaction server-side signing cost paid while the
  /// authority seals a block. The sealing budget (a fraction of the step)
  /// bounds block size; this is the paper's Parity bottleneck.
  double seal_sign_cpu = 0;
  /// Fraction of the PoA step usable for signing/sealing.
  double seal_budget_fraction = 0.5;

  /// Execution -------------------------------------------------------------
  vm::VmOptions vm;
  ExecCostModel cost;

  /// State ------------------------------------------------------------------
  /// Memory capacity for the in-memory state model (Parity); 0 = unlimited.
  uint64_t state_mem_capacity = 0;
  /// Trie node cache entries (Ethereum caches part of the state).
  size_t trie_cache_entries = 1 << 16;
  /// Directory for disk-backed state stores; empty = keep state in memory
  /// (macro benches) — IOHeavy passes a real directory.
  std::string data_dir;

  /// RPC --------------------------------------------------------------------
  double rpc_request_cpu = 2e-4;
};

/// geth v1.4.18-like model: PoW, EVM with heavyweight dispatch and boxed
/// words, LevelDB-backed Patricia trie with a partial cache.
PlatformOptions EthereumOptions();
/// Parity v1.6-like model: PoA (stepDuration=1), optimized EVM, all state
/// in memory, server-side signing bottleneck.
PlatformOptions ParityOptions();
/// Fabric v0.6-like model: PBFT (batch 500), native chaincode in Docker,
/// RocksDB-backed bucket tree, bounded consensus message channel.
PlatformOptions HyperledgerOptions();
/// ErisDB-like model: Tendermint (PoS + BFT), EVM contracts, trie state —
/// the backend the paper lists as "under development" for BLOCKBENCH.
PlatformOptions ErisDbOptions();
/// Corda-like model (Table 2): Raft — crash-fault-tolerant only — with
/// JVM-class native execution. The §2 contrast: cheap consensus that
/// trusts every well-formed message.
PlatformOptions CordaOptions();

}  // namespace bb::platform

#endif  // BLOCKBENCH_PLATFORM_OPTIONS_H_
