// Platform configuration: a declarative layer-stack description plus one
// options struct per layer, with factory functions producing the
// calibrated Ethereum / Parity / Hyperledger / ErisDB / Corda models the
// benchmarks run against. The factories are registered by name in the
// PlatformRegistry (platform/registry.h).

#ifndef BLOCKBENCH_PLATFORM_OPTIONS_H_
#define BLOCKBENCH_PLATFORM_OPTIONS_H_

#include <string>

#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "consensus/tendermint.h"
#include "consensus/poa.h"
#include "consensus/pow.h"
#include "sim/network.h"
#include "util/status.h"
#include "vm/interpreter.h"

namespace bb::platform {

// The paper's layer taxonomy (§3): each axis below is one independently
// swappable layer, assembled into a LayerStack (platform/layers.h).

/// Consensus layer: which agreement protocol orders blocks.
enum class ConsensusKind { kPow, kPoa, kPbft, kTendermint, kRaft };
/// Execution layer: how deployed contracts run. kNoop accepts any deploy
/// and executes nothing — the consensus/data ablation baseline.
enum class ExecEngineKind { kEvm, kNative, kNoop };
/// Data layer, authenticated-structure axis: Patricia-Merkle trie
/// (Ethereum/Parity; versioned reads) vs bucket-Merkle tree (Hyperledger;
/// mutable in place).
enum class StateTreeKind { kPatriciaTrie, kBucketTree };
/// Data layer, backing-store axis: in-memory KV (capacity-bounded via
/// state_mem_capacity) vs the append-log disk store (needs data_dir).
enum class StorageBackendKind { kMemKv, kDiskKv };

const char* ToString(ConsensusKind kind);
const char* ToString(ExecEngineKind kind);
const char* ToString(StateTreeKind kind);
const char* ToString(StorageBackendKind kind);

/// Declarative stack description: which concrete layer fills each slot.
/// The five canonical platforms are just named StackSpec values plus
/// calibration; mix-and-match specs (e.g. PBFT over the Ethereum data
/// model) are equally valid — see registry.h.
struct StackSpec {
  ConsensusKind consensus = ConsensusKind::kPow;
  StateTreeKind state_tree = StateTreeKind::kPatriciaTrie;
  StorageBackendKind storage = StorageBackendKind::kMemKv;
  ExecEngineKind exec_engine = ExecEngineKind::kEvm;

  bool operator==(const StackSpec& o) const {
    return consensus == o.consensus && state_tree == o.state_tree &&
           storage == o.storage && exec_engine == o.exec_engine;
  }
};

/// "pbft+bucket/memkv+native"-style rendering of a stack.
std::string ToString(const StackSpec& spec);

/// Maps execution receipts to virtual CPU seconds, so contract cost shows
/// up in throughput/latency the way it did on the paper's testbed.
struct ExecCostModel {
  /// Per-transaction fixed cost (signature recovery, dispatch).
  double tx_fixed_cpu = 1e-4;
  /// EVM: virtual seconds per unit of gas.
  double seconds_per_gas = 2e-8;
  /// Native: per storage operation.
  double native_op_cpu = 2e-5;
  /// Block assembly overhead per transaction (pool pop, envelope checks).
  double assemble_tx_cpu = 2e-5;
};

struct PlatformOptions {
  std::string name = "ethereum";
  /// Which concrete layer fills each slot of the stack.
  StackSpec stack;

  consensus::PowConfig pow;
  consensus::PoaConfig poa;
  consensus::PbftConfig pbft;
  consensus::TendermintConfig tendermint;
  consensus::RaftConfig raft;

  sim::NetworkConfig net;
  /// Bounded consensus message channel (Hyperledger model): max queued
  /// "pbft_*" messages per node; overflow is dropped. 0 = unbounded.
  size_t consensus_channel_capacity = 0;

  /// Block assembly -------------------------------------------------------
  /// Max transactions per block (derived from gasLimit for Ethereum,
  /// batchSize for Hyperledger, the signing budget for Parity).
  size_t block_tx_limit = 700;
  /// Max block payload bytes (0 = unlimited).
  size_t block_byte_limit = 0;
  /// Gas-based block packing (EVM platforms only; 0 = off): the proposer
  /// executes candidates speculatively while assembling the block and
  /// stops at the gas limit, exactly as geth miners do.
  uint64_t block_gas_limit = 0;
  /// Blocks below the tip needed before a block counts as confirmed
  /// (ceil(confirmationLength / block interval); 0 for PBFT finality).
  size_t confirmation_depth = 2;

  /// Transaction admission -------------------------------------------------
  /// Server-side pending-pool capacity; submissions beyond it are
  /// rejected back to the client. 0 = unbounded.
  size_t tx_pool_capacity = 0;
  /// Server-side admission rate limit in tx/s (token bucket); 0 = off.
  /// Models Parity's observed ~80 tx/s network-wide client cap.
  double admission_rate_limit = 0;
  /// Batch assembly order: true = newest-first (Parity's gas-price
  /// ordered pool in effect), which keeps commit latency low while the
  /// backlog of accepted transactions grows.
  bool pool_lifo = false;
  /// CPU cost of admitting one client transaction.
  double admission_cpu = 5e-5;
  /// Whether accepted transactions are gossiped to all peers.
  bool gossip_txs = true;
  /// CPU to ingest one gossiped transaction.
  double gossip_ingest_cpu = 2e-5;

  /// Parity only: per-transaction server-side signing cost paid while the
  /// authority seals a block. The sealing budget (a fraction of the step)
  /// bounds block size; this is the paper's Parity bottleneck.
  double seal_sign_cpu = 0;
  /// Fraction of the PoA step usable for signing/sealing.
  double seal_budget_fraction = 0.5;

  /// Execution -------------------------------------------------------------
  vm::VmOptions vm;
  ExecCostModel cost;

  /// State ------------------------------------------------------------------
  /// Memory capacity for the in-memory state backend (Parity); 0 = unlimited.
  uint64_t state_mem_capacity = 0;
  /// Trie node cache entries (Ethereum caches part of the state).
  size_t trie_cache_entries = 1 << 16;
  /// Directory for the disk-backed state backend (StorageBackendKind::kDiskKv);
  /// must be non-empty when that backend is selected.
  std::string data_dir;

  /// RPC --------------------------------------------------------------------
  double rpc_request_cpu = 2e-4;

  /// Sharding ---------------------------------------------------------------
  /// Number of independent consensus groups the platform is partitioned
  /// into. 1 (the default) is the classic unsharded platform; S > 1
  /// builds a ShardedPlatform (platform/sharding.h): S full LayerStacks
  /// over a hash-partitioned state space with 2PC cross-shard commit.
  /// Spelled "@shards=S" in stack specs ("pbft+trie+evm@shards=4").
  size_t num_shards = 1;
  /// Virtual seconds the coordinator waits for every participant shard to
  /// seal a prepare record before aborting the cross-shard transaction.
  double xs_prepare_timeout = 30.0;
  /// Coordinator CPU per cross-shard protocol step (record fan-out,
  /// vote bookkeeping).
  double xs_coordinator_cpu = 1e-4;

  /// Rejects inconsistent layer combinations (gas-based packing on a
  /// non-EVM execution layer, a sealing budget without PoA, a disk
  /// backend without a data_dir, ...) with a message naming the conflict.
  /// Called by the Platform constructor — invalid stacks fail loudly at
  /// assembly instead of silently falling back.
  Status Validate() const;
};

/// geth v1.4.18-like model: PoW, EVM with heavyweight dispatch and boxed
/// words, LevelDB-backed Patricia trie with a partial cache.
PlatformOptions EthereumOptions();
/// Parity v1.6-like model: PoA (stepDuration=1), optimized EVM, all state
/// in memory, server-side signing bottleneck.
PlatformOptions ParityOptions();
/// Fabric v0.6-like model: PBFT (batch 500), native chaincode in Docker,
/// RocksDB-backed bucket tree, bounded consensus message channel.
PlatformOptions HyperledgerOptions();
/// ErisDB-like model: Tendermint (PoS + BFT), EVM contracts, trie state —
/// the backend the paper lists as "under development" for BLOCKBENCH.
PlatformOptions ErisDbOptions();
/// Corda-like model (Table 2): Raft — crash-fault-tolerant only — with
/// JVM-class native execution. The §2 contrast: cheap consensus that
/// trusts every well-formed message.
PlatformOptions CordaOptions();

}  // namespace bb::platform

#endif  // BLOCKBENCH_PLATFORM_OPTIONS_H_
