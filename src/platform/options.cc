#include "platform/options.h"

namespace bb::platform {

const char* ToString(ConsensusKind kind) {
  switch (kind) {
    case ConsensusKind::kPow: return "pow";
    case ConsensusKind::kPoa: return "poa";
    case ConsensusKind::kPbft: return "pbft";
    case ConsensusKind::kTendermint: return "tendermint";
    case ConsensusKind::kRaft: return "raft";
  }
  return "?";
}

const char* ToString(ExecEngineKind kind) {
  switch (kind) {
    case ExecEngineKind::kEvm: return "evm";
    case ExecEngineKind::kNative: return "native";
    case ExecEngineKind::kNoop: return "noop";
  }
  return "?";
}

const char* ToString(StateTreeKind kind) {
  switch (kind) {
    case StateTreeKind::kPatriciaTrie: return "trie";
    case StateTreeKind::kBucketTree: return "bucket";
  }
  return "?";
}

const char* ToString(StorageBackendKind kind) {
  switch (kind) {
    case StorageBackendKind::kMemKv: return "memkv";
    case StorageBackendKind::kDiskKv: return "diskkv";
  }
  return "?";
}

std::string ToString(const StackSpec& spec) {
  std::string out = ToString(spec.consensus);
  out += '+';
  out += ToString(spec.state_tree);
  out += '/';
  out += ToString(spec.storage);
  out += '+';
  out += ToString(spec.exec_engine);
  return out;
}

Status PlatformOptions::Validate() const {
  // Every rejection names the offending field and suggests a stack spec
  // that would accept it, so a failed sweep line is self-diagnosing.
  auto bad = [&](const std::string& field, const std::string& why,
                 const StackSpec& suggestion) {
    std::string spec = ToString(suggestion);
    if (num_shards > 1) {
      spec += "@shards=" + std::to_string(num_shards);
    }
    return Status::InvalidArgument(
        "platform '" + name + "' (" + ToString(stack) + "): " + field + ": " +
        why + "; try e.g. '" + spec + "'");
  };
  if (block_tx_limit == 0) {
    return bad("block_tx_limit", "must be at least 1", stack);
  }
  if (block_gas_limit > 0 && stack.exec_engine != ExecEngineKind::kEvm) {
    StackSpec s = stack;
    s.exec_engine = ExecEngineKind::kEvm;
    return bad("block_gas_limit",
               "gas-based block packing requires the EVM execution layer; "
               "the '" +
                   std::string(ToString(stack.exec_engine)) +
                   "' layer has no gas metering",
               s);
  }
  if (seal_sign_cpu > 0 && stack.consensus != ConsensusKind::kPoa) {
    StackSpec s = stack;
    s.consensus = ConsensusKind::kPoa;
    return bad("seal_sign_cpu",
               "the per-transaction sealing budget is defined by the PoA "
               "step duration and requires the PoA consensus layer",
               s);
  }
  if (seal_budget_fraction <= 0 || seal_budget_fraction > 1) {
    return bad("seal_budget_fraction", "must be in (0, 1]", stack);
  }
  if (consensus_channel_capacity > 0 &&
      stack.consensus != ConsensusKind::kPbft) {
    StackSpec s = stack;
    s.consensus = ConsensusKind::kPbft;
    return bad("consensus_channel_capacity",
               "bounds the \"pbft_*\" message class and requires the PBFT "
               "consensus layer",
               s);
  }
  if (stack.storage == StorageBackendKind::kDiskKv && data_dir.empty()) {
    StackSpec s = stack;
    s.storage = StorageBackendKind::kMemKv;
    return bad("data_dir",
               "the diskkv storage backend requires a non-empty data_dir "
               "(or drop the disk backend)",
               s);
  }
  if (admission_rate_limit < 0) {
    return bad("admission_rate_limit", "must be >= 0", stack);
  }
  if (num_shards == 0) {
    return bad("num_shards",
               "must be at least 1 (spell shard counts as '@shards=S')",
               stack);
  }
  if (num_shards > 1) {
    // Cross-shard 2PC pins prepare/commit records into each participant
    // chain and needs them final once sealed: probabilistic-finality
    // consensus (PoW/PoA fork-and-reorg) could un-commit a prepare.
    if (stack.consensus != ConsensusKind::kPbft &&
        stack.consensus != ConsensusKind::kTendermint &&
        stack.consensus != ConsensusKind::kRaft) {
      StackSpec s = stack;
      s.consensus = ConsensusKind::kPbft;
      return bad("num_shards",
                 "sharding requires a finality consensus layer "
                 "(pbft/tendermint/raft); '" +
                     std::string(ToString(stack.consensus)) +
                     "' blocks can be reorged after a cross-shard prepare "
                     "is sealed",
                 s);
    }
    if (xs_prepare_timeout <= 0) {
      return bad("xs_prepare_timeout", "must be > 0 when num_shards > 1",
                 stack);
    }
  }
  return Status::Ok();
}

PlatformOptions EthereumOptions() {
  PlatformOptions o;
  o.name = "ethereum";
  o.stack.consensus = ConsensusKind::kPow;
  o.stack.exec_engine = ExecEngineKind::kEvm;
  o.stack.state_tree = StateTreeKind::kPatriciaTrie;
  o.stack.storage = StorageBackendKind::kMemKv;

  o.pow.base_block_interval = 2.5;  // the paper's tuned genesis difficulty
  o.pow.reference_nodes = 8;
  o.pow.difficulty_growth = 0.9;

  // Gas-based block packing: the intrinsic per-tx gas (the EVM's 21000,
  // rescaled) plus this gasLimit sizes a block at ~820 YCSB transactions
  // (284 tx/s * 2.5 s/block at the paper's YCSB peak). The tx-count cap
  // bounds even zero-gas (DoNothing) blocks.
  o.vm.gas.tx_intrinsic = 800;
  o.block_gas_limit = 845'000;
  o.block_tx_limit = 1000;
  // confirmationLength = 5 s -> ceil(5 / 2.5) blocks.
  o.confirmation_depth = 2;

  o.tx_pool_capacity = 0;  // geth queues deeply
  // "servers do not always broadcast transactions to each other (they
  // keep mining on their own transaction pool)".
  o.gossip_txs = false;

  // geth's EVM: slow dispatch, heavily boxed words (22 GB for a 10M-element
  // sort in the paper).
  o.vm.dispatch_overhead = 60;
  o.vm.word_overhead_bytes = 2200;
  o.vm.memory_word_limit = 14'000'000;  // OOM between 10M and 100M elements

  o.cost.seconds_per_gas = 2e-8;
  o.cost.tx_fixed_cpu = 1.2e-4;
  return o;
}

PlatformOptions ParityOptions() {
  PlatformOptions o;
  o.name = "parity";
  o.stack.consensus = ConsensusKind::kPoa;
  o.stack.exec_engine = ExecEngineKind::kEvm;
  o.stack.state_tree = StateTreeKind::kPatriciaTrie;
  o.stack.storage = StorageBackendKind::kMemKv;

  o.poa.step_duration = 1.0;  // the paper sets stepDuration = 1

  // The authority signs every transaction it seals; the signing budget
  // inside a 1 s step caps blocks at ~45 transactions — the paper's
  // measured constant ~45 tx/s, independent of load and network size.
  o.seal_sign_cpu = 0.011;
  o.seal_budget_fraction = 0.5;
  o.block_tx_limit = 4096;  // bounded by the signing budget in practice

  // Admission rate-limited at the RPC layer (~80 tx/s network-wide over
  // 8 servers) with a newest-first pool: the queue of accepted-but-
  // unconfirmed transactions grows while commit latency stays low —
  // both Parity behaviours in Fig 6.
  o.admission_rate_limit = 10.0;
  o.pool_lifo = true;
  o.confirmation_depth = 3;
  o.gossip_txs = true;

  // Optimized EVM: ~3x faster than geth's, words still boxed but leaner.
  o.vm.dispatch_overhead = 12;
  o.vm.word_overhead_bytes = 200;
  o.vm.memory_word_limit = 0;  // memory pressure comes from state, not VM

  // All state in memory; ~3M states exhausted the paper's 32 GB boxes.
  o.state_mem_capacity = 1'100'000'000;  // scaled: see DESIGN.md
  o.trie_cache_entries = size_t(1) << 22;

  o.cost.seconds_per_gas = 7e-9;
  o.cost.tx_fixed_cpu = 1e-4;
  return o;
}

PlatformOptions HyperledgerOptions() {
  PlatformOptions o;
  o.name = "hyperledger";
  o.stack.consensus = ConsensusKind::kPbft;
  o.stack.exec_engine = ExecEngineKind::kNative;
  o.stack.state_tree = StateTreeKind::kBucketTree;
  o.stack.storage = StorageBackendKind::kMemKv;

  o.pbft.batch_size = 500;  // the paper's default batchSize
  o.pbft.view_timeout = 3.0;
  o.pbft.tx_validate_cpu = 1e-4;
  o.pbft.per_message_cpu = 4e-4;

  o.block_tx_limit = 500;
  o.confirmation_depth = 0;  // PBFT commits are final immediately
  o.tx_pool_capacity = 0;
  o.gossip_txs = true;
  // Fabric v0.6 re-validates and re-broadcasts every gossiped tx; this
  // per-node ingest cost scales with N x offered load and is what tips
  // nodes into saturation in the 16+-node scalability runs.
  o.gossip_ingest_cpu = 7e-5;

  // Fabric v0.6's bounded consensus message channel: the cause of the
  // view-change livelock past ~16 nodes under load. Sized so an 8-node
  // network at peak load never overflows, but the O(N^2) per-pipeline
  // message volume of larger networks does.
  o.consensus_channel_capacity = 96;

  // Native chaincode: no gas, flat per-op cost; Docker call overhead in
  // the fixed term.
  o.cost.tx_fixed_cpu = 5.5e-4;
  o.cost.native_op_cpu = 2e-5;
  return o;
}

PlatformOptions ErisDbOptions() {
  PlatformOptions o;
  o.name = "erisdb";
  o.stack.consensus = ConsensusKind::kTendermint;
  o.stack.exec_engine = ExecEngineKind::kEvm;  // ErisDB runs Solidity on an EVM
  o.stack.state_tree = StateTreeKind::kPatriciaTrie;
  o.stack.storage = StorageBackendKind::kMemKv;

  o.tendermint.batch_size = 500;
  o.tendermint.round_timeout = 2.0;

  o.block_tx_limit = 500;
  o.confirmation_depth = 0;  // BFT finality
  o.gossip_txs = true;

  // ErisDB's EVM: comparable to Parity's in optimization level.
  o.vm.dispatch_overhead = 16;
  o.vm.word_overhead_bytes = 300;
  o.cost.seconds_per_gas = 9e-9;
  o.cost.tx_fixed_cpu = 3.5e-4;
  return o;
}

PlatformOptions CordaOptions() {
  PlatformOptions o;
  o.name = "corda";
  o.stack.consensus = ConsensusKind::kRaft;
  // Corda runs contracts on the JVM; native-class execution speed and a
  // flat state model are the closest fit in this framework.
  o.stack.exec_engine = ExecEngineKind::kNative;
  o.stack.state_tree = StateTreeKind::kBucketTree;
  o.stack.storage = StorageBackendKind::kMemKv;

  o.raft.batch_size = 500;
  o.block_tx_limit = 500;
  o.confirmation_depth = 0;  // committed == final (crash model)
  o.gossip_txs = true;

  o.cost.tx_fixed_cpu = 3e-4;
  o.cost.native_op_cpu = 2e-5;
  return o;
}

}  // namespace bb::platform
