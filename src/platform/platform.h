// Platform: a cluster of PlatformNode servers sharing one simulated
// network — "a private testnet". Construct, deploy contracts, preload
// state, Start(), then attach clients (the Driver) to the same network.

#ifndef BLOCKBENCH_PLATFORM_PLATFORM_H_
#define BLOCKBENCH_PLATFORM_PLATFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "platform/node.h"

namespace bb::platform {

class Platform {
 public:
  /// Servers get node ids 0..num_servers-1 on a fresh Network owned by
  /// the platform; clients registered later get subsequent ids.
  Platform(sim::Simulation* sim, PlatformOptions options, size_t num_servers,
           uint64_t seed = 42);

  sim::Simulation* psim() { return sim_; }
  sim::Network& network() { return *network_; }
  size_t num_servers() const { return nodes_.size(); }
  PlatformNode& node(size_t i) { return *nodes_.at(i); }
  const PlatformOptions& options() const { return options_; }

  /// Assembles `casm` once and deploys to every server.
  Status DeployContract(const std::string& name, const std::string& casm);
  /// Deploys registered chaincode to every server.
  Status DeployChaincode(const std::string& name,
                         const std::string& registered_as);
  /// Deploys with the engine matching this platform: EVM platforms get
  /// the assembled contract, the native platform gets the chaincode.
  Status DeployWorkloadContract(const std::string& name,
                                const std::string& casm,
                                const std::string& chaincode_name);

  Status PreloadState(const std::string& contract, const std::string& key,
                      const std::string& value);
  Status FinalizeGenesis();
  /// Commits one block of transactions on every node, bypassing
  /// consensus (historical-chain preloading).
  Status PreloadBlock(const std::vector<chain::Transaction>& txs);

  /// Starts consensus on every server.
  void Start();

  // --- Aggregate statistics ---------------------------------------------------
  uint64_t TotalBlocksProduced() const;
  /// Main-branch blocks as seen by server 0.
  uint64_t CanonicalBlocks() const;
  uint64_t TotalTxsExecuted() const;
  /// Snapshots every server's counters into `reg` (labelled per node).
  void ExportMetrics(obs::MetricsRegistry* reg) const;

 private:
  sim::Simulation* sim_;
  PlatformOptions options_;
  std::unique_ptr<sim::Network> network_;
  std::vector<std::unique_ptr<PlatformNode>> nodes_;
};

}  // namespace bb::platform

#endif  // BLOCKBENCH_PLATFORM_PLATFORM_H_
