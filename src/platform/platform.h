// Platform: a cluster of PlatformNode servers sharing one simulated
// network — "a private testnet". Construct, deploy contracts, preload
// state, Start(), then attach clients (the Driver) to the same network.

#ifndef BLOCKBENCH_PLATFORM_PLATFORM_H_
#define BLOCKBENCH_PLATFORM_PLATFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "platform/node.h"

namespace bb::platform {

class Platform {
 public:
  /// Servers get node ids 0..num_servers-1 on a fresh Network owned by
  /// the platform; clients registered later get subsequent ids.
  Platform(sim::Simulation* sim, PlatformOptions options, size_t num_servers,
           uint64_t seed = 42);
  virtual ~Platform();

  sim::Simulation* psim() { return sim_; }
  sim::Network& network() { return *network_; }
  size_t num_servers() const { return nodes_.size(); }
  PlatformNode& node(size_t i) { return *nodes_.at(i); }
  const PlatformOptions& options() const { return options_; }

  // --- Sharding topology ------------------------------------------------------
  // The unsharded base platform is the S == 1 degenerate case of the
  // hooks below; ShardedPlatform (platform/sharding.h) overrides them.

  /// Number of independent consensus groups.
  virtual size_t num_shards() const { return 1; }
  /// Servers per consensus group (== num_servers() when unsharded).
  virtual size_t servers_per_shard() const { return nodes_.size(); }
  /// Which shard a state key hashes to (always 0 when unsharded).
  virtual uint32_t ShardOfKey(const std::string& key) const {
    (void)key;
    return 0;
  }
  /// First node id usable by clients; the Driver assigns client i the id
  /// first_client_id() + i. Sharded platforms reserve an extra id for
  /// the 2PC coordinator between the servers and the clients.
  virtual sim::NodeId first_client_id() const {
    return sim::NodeId(nodes_.size());
  }
  /// Server a client should submit single-shard transactions to, spread
  /// round-robin over the cluster by client index.
  virtual sim::NodeId SubmitServerFor(size_t client_index) const {
    return sim::NodeId(client_index % nodes_.size());
  }
  /// Submission server inside a specific shard (for single-shard
  /// transactions whose keys all hash to `shard`).
  virtual sim::NodeId ServerInShard(uint32_t shard,
                                    size_t client_index) const {
    (void)shard;
    return SubmitServerFor(client_index);
  }
  /// Node id of the cross-shard 2PC coordinator; only meaningful when
  /// num_shards() > 1.
  virtual sim::NodeId coordinator_id() const {
    return sim::NodeId(nodes_.size());
  }

  /// Assembles `casm` once and deploys to every server.
  Status DeployContract(const std::string& name, const std::string& casm);
  /// Deploys registered chaincode to every server.
  Status DeployChaincode(const std::string& name,
                         const std::string& registered_as);
  /// Deploys with the engine matching this platform: EVM platforms get
  /// the assembled contract, the native platform gets the chaincode.
  Status DeployWorkloadContract(const std::string& name,
                                const std::string& casm,
                                const std::string& chaincode_name);

  Status PreloadState(const std::string& contract, const std::string& key,
                      const std::string& value);
  Status FinalizeGenesis();
  /// Commits one block of transactions on every node, bypassing
  /// consensus (historical-chain preloading).
  Status PreloadBlock(const std::vector<chain::Transaction>& txs);

  /// Starts consensus on every server.
  void Start();

  // --- Aggregate statistics ---------------------------------------------------
  uint64_t TotalBlocksProduced() const;
  /// Main-branch blocks as seen by server 0 (summed over one lead server
  /// per shard when sharded).
  virtual uint64_t CanonicalBlocks() const;
  uint64_t TotalTxsExecuted() const;
  /// Snapshots every server's counters into `reg` (labelled per node).
  void ExportMetrics(obs::MetricsRegistry* reg) const;

 protected:
  sim::Simulation* sim_;
  PlatformOptions options_;
  std::unique_ptr<sim::Network> network_;
  std::vector<std::unique_ptr<PlatformNode>> nodes_;
};

/// Builds the platform matching `options`: a plain Platform when
/// options.num_shards <= 1, a ShardedPlatform (with num_servers servers
/// PER SHARD plus one coordinator node) otherwise.
std::unique_ptr<Platform> MakePlatform(sim::Simulation* sim,
                                       PlatformOptions options,
                                       size_t num_servers, uint64_t seed = 42);

}  // namespace bb::platform

#endif  // BLOCKBENCH_PLATFORM_PLATFORM_H_
