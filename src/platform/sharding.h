// ShardedPlatform: S independent consensus groups — each a full
// LayerStack cluster — over a hash-partitioned state space, glued
// together by a coordinator-driven two-phase-commit protocol for
// transactions whose keys straddle shards.
//
// Topology on one shared sim::Network:
//   ids [s*n, (s+1)*n)  servers of shard s (peer group == shard)
//   id  S*n             the ShardCoordinator
//   ids S*n+1 ...       driver clients
//
// Cross-shard protocol (records are ordinary transactions so the
// auditor can replay the protocol from the chains alone):
//   1. client -> coordinator: "xs_client_tx" {tx, participant shards}
//   2. coordinator -> each participant shard: a prepare record
//      (id = tx.id | kXsPrepareBit, contract = "__xshard") submitted
//      through the shard's normal client_tx admission path
//   3. each server canonically executing a "__xshard" record notifies
//      the coordinator ("xs_sealed")
//   4. all participants sealed their prepare -> the coordinator submits
//      the original transaction (the commit record) to every
//      participant shard; a prepare timeout instead seals abort records
//      (id = tx.id | kXsAbortBit) and rejects the client
// The client discovers commit by polling its home shard, exactly like a
// single-shard transaction.

#ifndef BLOCKBENCH_PLATFORM_SHARDING_H_
#define BLOCKBENCH_PLATFORM_SHARDING_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "platform/platform.h"

namespace bb::platform {

class ShardedPlatform;

/// The 2PC coordinator: a dedicated node (think "ordering service
/// front-end") that owns the prepare/commit state machine for every
/// in-flight cross-shard transaction.
class ShardCoordinator : public sim::Node {
 public:
  ShardCoordinator(sim::NodeId id, sim::Network* network,
                   ShardedPlatform* platform);

  double HandleMessage(const sim::Message& msg) override;

  /// Test hook: when set, a decided-commit transaction is committed on
  /// its first participant shard but aborted on the rest — a broken
  /// coordinator the cross_shard_atomicity invariant must catch.
  void set_break_atomicity(bool broken) { break_atomicity_ = broken; }

  uint64_t started() const { return started_; }
  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }
  size_t pending() const { return started_ - committed_ - aborted_; }

 private:
  struct Entry {
    chain::Transaction tx;
    std::vector<uint32_t> shards;
    sim::NodeId client = 0;
    std::set<uint32_t> prepared;
    bool decided = false;
  };

  double HandleClientTx(const sim::Message& msg);
  double HandleSealed(const sim::Message& msg);
  double HandleReject(const sim::Message& msg);
  void OnPrepareTimeout(uint64_t base_id);
  void Decide(uint64_t base_id, bool commit);
  /// The "__xshard" prepare/abort record for `e` ("prepare"/"abort").
  chain::Transaction MakeRecord(const Entry& e, const char* phase,
                                uint64_t id_bit) const;
  /// Submits a record through `shard`'s normal admission path.
  void SubmitToShard(uint32_t shard, const chain::Transaction& record);

  /// Logical bytes of the in-flight 2PC table (the coordinator's
  /// consensus.bookkeeping contribution).
  void SyncMemGauge();

  ShardedPlatform* platform_;
  obs::mem::Gauge mem_entries_;
  /// Ordered map: deterministic iteration under the (time, seq) contract.
  std::map<uint64_t, Entry> entries_;
  bool break_atomicity_ = false;
  uint64_t started_ = 0;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
};

class ShardedPlatform : public Platform {
 public:
  /// Builds options.num_shards shard clusters of `servers_per_shard`
  /// nodes each, plus the coordinator, on one shared network.
  ShardedPlatform(sim::Simulation* sim, PlatformOptions options,
                  size_t servers_per_shard, uint64_t seed = 42);
  ~ShardedPlatform() override;

  size_t num_shards() const override { return shards_; }
  size_t servers_per_shard() const override { return per_shard_; }
  uint32_t ShardOfKey(const std::string& key) const override {
    return HashKey(key) % uint32_t(shards_);
  }
  sim::NodeId coordinator_id() const override {
    return sim::NodeId(num_servers());
  }
  sim::NodeId first_client_id() const override {
    return sim::NodeId(num_servers() + 1);
  }
  /// Client i's home shard is i % S; its submission server rotates
  /// within that shard so load spreads evenly at any client count.
  sim::NodeId SubmitServerFor(size_t client_index) const override {
    return ServerInShard(uint32_t(client_index % shards_), client_index);
  }
  sim::NodeId ServerInShard(uint32_t shard,
                            size_t client_index) const override {
    return sim::NodeId(size_t(shard) * per_shard_ +
                       (client_index / shards_) % per_shard_);
  }
  uint64_t CanonicalBlocks() const override;

  ShardCoordinator& coordinator() { return *coordinator_; }
  const ShardCoordinator& coordinator() const { return *coordinator_; }

  /// FNV-1a (stdlib-independent so golden digests hold across
  /// toolchains) — the one hash every key-to-shard decision uses.
  static uint32_t HashKey(const std::string& key) {
    uint32_t h = 2166136261u;
    for (unsigned char c : key) {
      h ^= c;
      h *= 16777619u;
    }
    return h;
  }

 private:
  size_t shards_;
  size_t per_shard_;
  std::unique_ptr<ShardCoordinator> coordinator_;
};

}  // namespace bb::platform

#endif  // BLOCKBENCH_PLATFORM_SHARDING_H_
