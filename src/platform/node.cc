#include "platform/node.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace bb::platform {

PlatformNode::PlatformNode(sim::NodeId id, sim::Network* network,
                           PlatformOptions options, uint64_t seed)
    : sim::Node(id, network), options_(std::move(options)) {
  auto stack =
      LayerStack::Build(options_, seed, "node" + std::to_string(id));
  if (!stack.ok()) {
    // Platform::Validate() rejects bad specs before nodes are built, so
    // only environment failures (disk backend I/O) reach here.
    std::fprintf(stderr, "layer stack assembly failed: %s\n",
                 stack.status().ToString().c_str());
    std::abort();
  }
  stack_ = std::move(*stack);
  exec_block_hash_ = chain().head();
  if (options_.consensus_channel_capacity > 0) {
    SetInboxClassLimit("pbft_", options_.consensus_channel_capacity);
  }
  if (auto* mt = sim()->memtracker()) {
    const auto nid = uint32_t(id);
    mem_pool_ = {mt, nid, obs::mem::kPoolSlots};
    mem_consensus_ = {mt, nid, obs::mem::kConsensus};
    mem_chain_ = {mt, nid, obs::mem::kChainBlocks};
    mem_vm_ = {mt, nid, obs::mem::kVm};
    mem_obs_ = {mt, nid, obs::mem::kObsSelf};
    stack_->data().store().set_mem_gauge({mt, nid, obs::mem::kStorageState});
    SyncMemGauges();
  }
}

PlatformNode::~PlatformNode() = default;

Status PlatformNode::DeployContract(const std::string& name,
                                    const vm::Program& program) {
  return stack_->execution().DeployProgram(name, program);
}

Status PlatformNode::DeployChaincode(const std::string& name,
                                     const std::string& registered_as) {
  return stack_->execution().DeployChaincode(name, registered_as);
}

Status PlatformNode::PreloadState(const std::string& contract,
                                  const std::string& key,
                                  const std::string& value) {
  return state().Put(contract, key, value);
}

Status PlatformNode::FinalizeGenesis() {
  auto root = state().Commit();
  if (!root.ok()) return root.status();
  block_state_roots_[chain().head()] = *root;
  return Status::Ok();
}

Status PlatformNode::DirectCommit(const std::vector<chain::Transaction>& txs) {
  chain::Block b;
  b.header.parent = chain().head();
  b.header.height = chain().head_height() + 1;
  b.header.timestamp = Now();
  b.txs = txs;
  b.SealTxRoot();
  double cpu = 0;
  if (!CommitBlock(std::make_shared<const chain::Block>(std::move(b)), &cpu)) {
    return Status::Internal("direct commit failed");
  }
  SyncMemGauges();
  return Status::Ok();
}

void PlatformNode::Start() {
  engine().Start(this);
  SyncMemGauges();
}

void PlatformNode::OnCrash() { engine().OnCrash(); }

void PlatformNode::OnRestart() { engine().OnRestart(); }

void PlatformNode::HostBroadcast(const std::string& type, std::any payload,
                                 uint64_t size_bytes) {
  // Consensus traffic flows only among this node's consensus group
  // (clients and other shards' servers live outside [peer_base_,
  // peer_base_ + num_peers_)).
  for (sim::NodeId to = peer_base_; to < peer_base_ + num_peers_; ++to) {
    if (to == id()) continue;
    Send(to, type, payload, size_bytes);
  }
}

bool PlatformNode::HostSend(sim::NodeId to, const std::string& type,
                            std::any payload, uint64_t size_bytes) {
  return Send(to, type, std::move(payload), size_bytes);
}

double PlatformNode::HandleMessage(const sim::Message& msg) {
  double cpu = DispatchMessage(msg);
  // Every layer mutation happens on some message (or a Start/DirectCommit
  // call, which sync themselves), so this epilogue is the deterministic
  // re-sync point for the O(1) byte counters.
  SyncMemGauges();
  return cpu;
}

double PlatformNode::DispatchMessage(const sim::Message& msg) {
  double cpu = 0;
  if (engine().HandleMessage(msg, &cpu)) return cpu;
  if (msg.type == "client_tx") return HandleClientTx(msg);
  if (msg.type == "gossip_tx") return HandleGossipTx(msg);
  if (msg.type.starts_with("rpc_")) return HandleRpc(msg);
  return 0;
}

void PlatformNode::SyncMemGauges() {
  if (!mem_pool_) return;
  mem_pool_.Set(pool_.slot_bytes());
  mem_consensus_.Set(stack_->consensus().engine().BookkeepingBytes());
  mem_chain_.Set(chain().stored_bytes());
  mem_vm_.Set(stack_->execution().footprint_bytes());
  if (const auto* rec = sim()->recorder()) {
    mem_obs_.Set(uint64_t(rec->ring_size(uint32_t(id()))) *
                 sizeof(obs::FlightRecorder::Record));
  }
}

double PlatformNode::HandleClientTx(const sim::Message& msg) {
  BB_PROF_SCOPE("driver.admit");
  const auto& m = std::any_cast<const ClientTx&>(msg.payload);
  double cpu = options_.admission_cpu;
  if (msg.corrupted) return cpu;  // malformed submission dropped
  if (committed_ids_.count(m.tx.id) || pool_.Seen(m.tx.id)) return cpu;
  if (options_.admission_rate_limit > 0) {
    double rate = options_.admission_rate_limit;
    admission_tokens_ = std::min(
        rate, admission_tokens_ + (Now() - admission_refill_time_) * rate);
    admission_refill_time_ = Now();
    if (admission_tokens_ < 1.0) {
      Send(msg.from, "client_tx_reject", ClientTxReject{m.tx.id}, 60);
      return cpu;
    }
    admission_tokens_ -= 1.0;
  }
  if (options_.tx_pool_capacity != 0 &&
      pool_.pending() >= options_.tx_pool_capacity) {
    Send(msg.from, "client_tx_reject", ClientTxReject{m.tx.id}, 60);
    return cpu;
  }
  pool_.Add(m.tx);
  if (pool_.pending() > pool_peak_) pool_peak_ = pool_.pending();
  if (auto* tr = sim()->tracer()) {
    tr->TxMilestone(m.tx.id, obs::Tracer::kAdmit, Now());
  }
  if (options_.gossip_txs) {
    // One shared payload for all peers: each Send copies a GossipTx (a
    // refcount bump), not the transaction itself.
    auto shared = std::make_shared<const chain::Transaction>(m.tx);
    uint64_t wire = shared->SizeBytes();
    HostBroadcast("gossip_tx", GossipTx{std::move(shared)}, wire);
  }
  engine().OnNewTransactions();
  return cpu;
}

double PlatformNode::HandleGossipTx(const sim::Message& msg) {
  BB_PROF_SCOPE("driver.gossip_admit");
  const auto& m = std::any_cast<const GossipTx&>(msg.payload);
  double cpu = options_.gossip_ingest_cpu;
  if (msg.corrupted) return cpu;
  const chain::Transaction& tx = *m.tx;
  if (committed_ids_.count(tx.id)) return cpu;
  if (options_.tx_pool_capacity != 0 &&
      pool_.pending() >= options_.tx_pool_capacity) {
    return cpu;
  }
  if (pool_.Add(tx)) {
    if (pool_.pending() > pool_peak_) pool_peak_ = pool_.pending();
    if (auto* tr = sim()->tracer()) {
      tr->TxMilestone(tx.id, obs::Tracer::kAdmit, Now());
    }
    engine().OnNewTransactions();
  }
  return cpu;
}

uint64_t PlatformNode::ConfirmedHeight() const {
  uint64_t h = chain().head_height();
  return h > options_.confirmation_depth ? h - options_.confirmation_depth : 0;
}

double PlatformNode::HandleRpc(const sim::Message& msg) {
  BB_PROF_SCOPE("driver.rpc");
  double cpu = options_.rpc_request_cpu;
  if (msg.corrupted) return cpu;

  if (msg.type == "rpc_getblocks") {
    const auto& m = std::any_cast<const RpcGetBlocks&>(msg.payload);
    RpcBlocks reply;
    reply.req_id = m.req_id;
    reply.confirmed_height = ConfirmedHeight();
    uint64_t bytes = 100;
    reply.blocks =
        chain().CanonicalRangePtr(m.from_height, reply.confirmed_height);
    for (const auto& b : reply.blocks) bytes += b->SizeBytes();
    Send(msg.from, "rpc_blocks", std::move(reply), bytes);
    return cpu;
  }

  if (msg.type == "rpc_getblock") {
    const auto& m = std::any_cast<const RpcGetBlock&>(msg.payload);
    RpcBlock reply;
    reply.req_id = m.req_id;
    uint64_t bytes = 100;
    if (m.height <= ConfirmedHeight()) {
      reply.block = chain().CanonicalAtPtr(m.height);
      if (reply.block != nullptr) bytes += reply.block->SizeBytes();
    }
    Send(msg.from, "rpc_block", std::move(reply), bytes);
    return cpu;
  }

  if (msg.type == "rpc_getbalance") {
    const auto& m = std::any_cast<const RpcGetBalance&>(msg.payload);
    RpcBalance reply{m.req_id, false, 0};
    const chain::Block* b = chain().CanonicalAt(m.height);
    if (b != nullptr && state().supports_versioned_reads()) {
      auto it = block_state_roots_.find(b->HashOf());
      if (it != block_state_roots_.end()) {
        std::string raw;
        Status s = state().GetAt(it->second, "__bal", m.account, &raw);
        if (s.ok()) {
          reply.ok = true;
          reply.balance = std::strtoll(raw.c_str(), nullptr, 10);
        } else if (s.IsNotFound()) {
          reply.ok = true;
          reply.balance = 0;
        }
      }
    }
    Send(msg.from, "rpc_balance", reply, 80);
    return cpu;
  }

  if (msg.type == "rpc_query") {
    const auto& m = std::any_cast<const RpcQuery&>(msg.payload);
    double query_cpu = 0;
    auto result = QueryContract(m.contract, m.function, m.args, &query_cpu);
    cpu += query_cpu;
    RpcResult reply{m.req_id, result.ok(),
                    result.ok() ? *result : vm::Value()};
    // The caller observes the scan time: the reply leaves only after the
    // query's CPU work is done.
    sim::NodeId client = msg.from;
    sim()->After(cpu, [this, client, reply = std::move(reply)]() mutable {
      Send(client, "rpc_result", std::move(reply), 120);
    });
    return cpu;
  }

  return cpu;
}

Result<vm::Value> PlatformNode::QueryContract(const std::string& contract,
                                              const std::string& function,
                                              const vm::Args& args,
                                              double* cpu) {
  ExecutionLayer& exec = stack_->execution();
  if (!exec.HasContract(contract)) return Status::NotFound("no contract");
  chain::StateHost host(&state(), contract);
  vm::TxContext ctx;
  ctx.sender = "query";
  ctx.function = function;
  ctx.args = args;
  ExecOutcome out;
  Status s = exec.Invoke(contract, ctx, &host, &out);
  *cpu += options_.cost.tx_fixed_cpu + out.cpu;
  // Queries must not mutate state: drop any writes the call buffered.
  state().Abort();
  if (!s.ok()) return s;
  if (!out.receipt.status.ok()) return out.receipt.status;
  return out.receipt.return_value;
}

std::optional<chain::Block> PlatformNode::BuildBlock(const Hash256& parent,
                                                     uint64_t parent_height,
                                                     bool allow_empty,
                                                     double* build_cpu) {
  BB_PROF_SCOPE("consensus.build_block");
  size_t limit = options_.block_tx_limit;
  if (options_.seal_sign_cpu > 0) {
    // Parity model: the authority signs transactions between blocks, so
    // its sealing budget spans the time since the parent block (capped):
    // skipped slots (crashed authorities) do not cost throughput, which
    // is why Parity sails through the Fig 9 crash unharmed.
    double step = options_.poa.step_duration;
    double since_parent = step;
    const chain::Block* parent_block = chain().GetBlock(parent);
    if (parent_block != nullptr && parent_block->header.height > 0) {
      since_parent = Now() - parent_block->header.timestamp;
    }
    double budget = std::clamp(since_parent, step, 6.0 * step) *
                    options_.seal_budget_fraction;
    limit = std::min(limit,
                     size_t(std::max(1.0, budget / options_.seal_sign_cpu)));
  }
  std::vector<chain::Transaction> batch;
  for (auto& tx :
       pool_.TakeBatch(limit, options_.block_byte_limit, options_.pool_lifo)) {
    if (committed_ids_.count(tx.id)) continue;  // raced in via gossip
    batch.push_back(std::move(tx));
  }

  if (options_.block_gas_limit > 0 &&
      stack_->execution().kind() == ExecEngineKind::kEvm) {
    // Gas-based packing: speculatively execute candidates against the
    // current state, stopping once the block's gas budget is spent.
    // Effects are discarded; the canonical execution happens at commit.
    uint64_t gas_used = 0;
    size_t taken = 0;
    uint64_t saved_exec = txs_executed_, saved_failed = txs_failed_;
    while (taken < batch.size()) {
      uint64_t gas = 0;
      *build_cpu += ExecuteTx(batch[taken], &gas);
      // Speculative runs must not perturb the executed/failed counters.
      gas_used += gas;
      ++taken;
      if (gas_used >= options_.block_gas_limit) break;
    }
    state().Abort();
    txs_executed_ = saved_exec;
    txs_failed_ = saved_failed;
    if (taken < batch.size()) {
      pool_.Requeue(std::vector<chain::Transaction>(
          batch.begin() + long(taken), batch.end()));
      batch.resize(taken);
    }
  }

  if (batch.empty() && !allow_empty) return std::nullopt;

  if (auto* tr = sim()->tracer()) {
    // Stamp after the gas-packing trim so requeued txs don't count as
    // proposed; speculative execution above never stamps milestones.
    for (const auto& tx : batch) {
      tr->TxMilestone(tx.id, obs::Tracer::kPropose, Now());
    }
  }

  *build_cpu += double(batch.size()) *
                (options_.cost.assemble_tx_cpu + options_.seal_sign_cpu);

  chain::Block b;
  b.header.parent = parent;
  b.header.height = parent_height + 1;
  b.txs = std::move(batch);
  b.SealTxRoot();
  ++blocks_produced_;
  if (auto* rec = sim()->recorder()) {
    // 48-bit prefix: record aux values must survive the JSON double
    // round-trip losslessly. The header hash is not final here (the
    // engine still fills proposer/nonce), so the tx root identifies the
    // sealed content.
    rec->Seal(uint32_t(id()), Now(), b.header.height,
              b.header.tx_root.Prefix64() >> 16);
  }
  return b;
}

bool PlatformNode::CommitBlock(chain::BlockPtr block, double* cpu) {
  BB_PROF_SCOPE("consensus.commit_block");
  auto r = stack_->data().chain().AddBlock(std::move(block));
  if (r.duplicate) return true;
  if (!r.attached) return false;  // parked until the parent arrives
  if (r.head_changed) ExecuteCanonical(cpu);
  return true;
}

double PlatformNode::ExecuteTx(const chain::Transaction& tx,
                               uint64_t* gas_out) {
  BB_PROF_SCOPE("vm.execute_tx");
  if (gas_out != nullptr) *gas_out = 0;
  ExecutionLayer& exec = stack_->execution();
  if (!exec.HasContract(tx.contract)) {
    // Plain value transfer: move balance from sender to recipient.
    if (tx.value != 0) {
      chain::StateHost::Credit(&state(), tx.sender, -tx.value);
      chain::StateHost::Credit(&state(), tx.contract, tx.value);
    }
    ++txs_executed_;
    return options_.cost.tx_fixed_cpu;
  }
  chain::StateHost host(&state(), tx.contract);
  vm::TxContext ctx;
  ctx.sender = tx.sender;
  ctx.value = tx.value;
  ctx.function = tx.function;
  ctx.args = tx.args;
  ctx.block_height = executing_height_;

  ExecOutcome out;
  Status s = exec.Invoke(tx.contract, ctx, &host, &out);
  double cpu = options_.cost.tx_fixed_cpu + out.cpu;
  if (gas_out != nullptr) *gas_out = out.gas;
  if (s.ok() && out.receipt.status.ok()) {
    ++txs_executed_;
    if (tx.value != 0) {
      chain::StateHost::Credit(&state(), tx.contract, tx.value);
    }
  } else {
    ++txs_failed_;
  }
  return cpu;
}

void PlatformNode::ExecuteCanonical(double* cpu) {
  chain::ChainStore& chain = stack_->data().chain();
  // Rewind if the previously executed prefix left the canonical chain.
  uint64_t rewound = 0;
  while (exec_height_ > 0 && !chain.IsCanonical(exec_block_hash_)) {
    const chain::Block* rolled = chain.GetBlock(exec_block_hash_);
    assert(rolled != nullptr);
    for (const auto& tx : rolled->txs) committed_ids_.erase(tx.id);
    pool_.Requeue(rolled->txs);
    exec_block_hash_ = rolled->header.parent;
    --exec_height_;
    ++rewound;
  }
  if (rewound > 0) {
    if (auto* rec = sim()->recorder()) {
      rec->ForkSwitch(uint32_t(id()), Now(), chain.head_height(), rewound);
    }
  }
  if (exec_height_ == 0) exec_block_hash_ = chain.CanonicalAt(0)->HashOf();

  // Reset versioned state to the fork point (no-op when just extending).
  if (state().supports_versioned_reads()) {
    auto root = block_state_roots_.find(exec_block_hash_);
    Hash256 target = root != block_state_roots_.end()
                         ? root->second
                         : stack_->data().empty_state_root();
    if (state().current_root() != target) state().ResetTo(target);
  }

  // Execute forward along the canonical chain.
  obs::Tracer* tr = sim()->tracer();
  bool evm = stack_->execution().kind() == ExecEngineKind::kEvm;
  uint64_t head = chain.head_height();
  for (uint64_t h = exec_height_ + 1; h <= head; ++h) {
    const chain::Block* b = chain.CanonicalAt(h);
    assert(b != nullptr);
    executing_height_ = h;
    uint64_t block_gas = 0;
    for (const auto& tx : b->txs) {
      uint64_t gas = 0;
      *cpu += ExecuteTx(tx, &gas);
      block_gas += gas;
      committed_ids_.insert(tx.id);
      if (tr != nullptr) tr->TxMilestone(tx.id, obs::Tracer::kCommit, Now());
      if (xs_notify_.has_value() && tx.contract == kXsContract) {
        Send(*xs_notify_, "xs_sealed", XsSealed{tx.id}, 60);
      }
    }
    // Non-empty blocks only: PoA/PoW seal empty blocks continuously and
    // a flood of zeros would drown the distribution.
    if (evm && !b->txs.empty()) gas_per_block_.Add(double(block_gas));
    const Hash256 block_hash = b->HashOf();
    if (auto* rec = sim()->recorder()) {
      rec->Commit(uint32_t(id()), Now(), h, block_hash.Prefix64() >> 16);
    }
    auto root = state().Commit();
    if (root.ok()) {
      block_state_roots_[block_hash] = *root;
    } else {
      // Out-of-memory state (Parity at scale): the writes are lost but
      // the chain advances; record the stall.
      state().Abort();
    }
    pool_.RemoveCommitted(b->txs);
    exec_height_ = h;
    exec_block_hash_ = block_hash;
  }
}

void PlatformNode::ExportMetrics(obs::MetricsRegistry* reg) const {
  obs::Labels labels{{"node", std::to_string(id())}};
  reg->SetGauge("pool.depth", labels, double(pool_.pending()));
  reg->SetGauge("pool.peak", labels, double(pool_peak_));
  reg->AddCounter("txs.executed", labels, txs_executed_);
  reg->AddCounter("txs.failed", labels, txs_failed_);
  reg->AddCounter("blocks.produced", labels, blocks_produced_);

  const chain::ChainStore& ch = chain();
  reg->AddCounter("chain.main_blocks", labels, ch.main_chain_blocks());
  reg->AddCounter("chain.fork_blocks", labels, ch.orphaned_blocks());
  reg->AddCounter("chain.reorgs", labels, ch.reorgs());
  reg->AddCounter("chain.invalid_blocks", labels, ch.invalid_blocks());

  reg->SetGauge("cpu.busy_seconds", labels, meter().total_cpu());
  reg->AddCounter("net.bytes_sent", labels, meter().total_net_bytes());
  reg->AddCounter("net.messages_sent", labels, meter().total_msgs_sent());
  reg->AddCounter("net.class_dropped", labels, class_dropped());
  for (const auto& [type, n] : meter().msgs_sent_by_type()) {
    obs::Labels typed = labels;
    typed.emplace_back("type", type);
    reg->AddCounter("net.messages", typed, n);
  }

  if (gas_per_block_.count() > 0) {
    reg->GetHistogram("exec.gas_per_block", labels)->Merge(gas_per_block_);
  }
  stack_->consensus().engine().ExportMetrics(reg, labels);
  stack_->data().state().ExportMetrics(reg, labels);
}

void PlatformNode::RequeueTxs(std::vector<chain::Transaction> txs) {
  std::vector<chain::Transaction> keep;
  keep.reserve(txs.size());
  for (auto& tx : txs) {
    if (!committed_ids_.count(tx.id)) keep.push_back(std::move(tx));
  }
  pool_.Requeue(std::move(keep));
}

}  // namespace bb::platform
