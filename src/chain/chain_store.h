// ChainStore: a node's view of the block tree.
//
// Keeps every block received (including fork branches), selects the head
// by cumulative chain weight (heaviest chain — Ethereum's simplification
// of GHOST; equals longest chain when all weights are 1), maintains the
// canonical chain index, and buffers blocks whose parent has not arrived
// yet. Fork statistics feed the security experiment (Fig 10).
//
// Blocks are stored behind shared_ptr<const Block> so gossip, sync replies
// and RPC serving hand out refcounted pointers instead of copying tx
// payloads (the zero-copy message path; see DESIGN.md "Hot path").

#ifndef BLOCKBENCH_CHAIN_CHAIN_STORE_H_
#define BLOCKBENCH_CHAIN_CHAIN_STORE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "chain/block.h"

namespace bb::chain {

/// Shared immutable block handle, the unit of the zero-copy message path.
using BlockPtr = std::shared_ptr<const Block>;

class ChainStore {
 public:
  explicit ChainStore(Block genesis);

  struct AddResult {
    /// False when the parent is unknown (block parked in the orphan buffer).
    bool attached = false;
    /// True when this insertion changed the canonical head (possibly a
    /// reorganization).
    bool head_changed = false;
    /// True when the block was already known (no-op).
    bool duplicate = false;
  };

  AddResult AddBlock(BlockPtr block);
  /// Convenience for by-value callers (tests, genesis bootstrap).
  AddResult AddBlock(Block block) {
    return AddBlock(std::make_shared<const Block>(std::move(block)));
  }

  bool Contains(const Hash256& hash) const { return entries_.count(hash) > 0; }
  /// Null when unknown.
  const Block* GetBlock(const Hash256& hash) const;
  /// Shared handle for forwarding without a copy; null when unknown.
  BlockPtr GetBlockPtr(const Hash256& hash) const;

  const Hash256& head() const { return head_; }
  uint64_t head_height() const { return HeightOf(head_); }
  uint64_t HeightOf(const Hash256& hash) const;
  uint64_t CumulativeWeightOf(const Hash256& hash) const;

  /// Canonical block at `height` (<= head_height()); null if out of range.
  const Block* CanonicalAt(uint64_t height) const;
  BlockPtr CanonicalAtPtr(uint64_t height) const;
  /// Canonical blocks with height in (from, to]; to is clamped to head.
  std::vector<const Block*> CanonicalRange(uint64_t from_exclusive,
                                           uint64_t to_inclusive) const;
  /// Same range as shared handles (sync replies gossip these directly).
  std::vector<BlockPtr> CanonicalRangePtr(uint64_t from_exclusive,
                                          uint64_t to_inclusive) const;
  bool IsCanonical(const Hash256& hash) const;

  /// All attached blocks excluding genesis (fork branches included).
  size_t total_blocks() const { return entries_.size() - 1; }
  /// Canonical blocks excluding genesis.
  size_t main_chain_blocks() const { return canonical_.size() - 1; }
  /// Blocks off the canonical chain = total - main. The paper's Δ.
  size_t orphaned_blocks() const {
    return total_blocks() - main_chain_blocks();
  }
  size_t pending_orphans() const { return orphan_buffer_count_; }
  /// Wire bytes of everything the store holds: attached blocks (genesis
  /// and fork branches included) plus the orphan buffer. Blocks are
  /// never evicted, so this only shrinks when a buffered orphan turns
  /// out invalid (mem observability: the chain.blocks subsystem).
  uint64_t stored_bytes() const { return stored_bytes_; }
  const Hash256& genesis() const { return genesis_; }
  /// Visits every attached block, genesis included, in storage order
  /// (unspecified — callers needing determinism must sort by hash).
  template <typename Fn>
  void ForEachBlock(Fn&& fn) const {
    for (const auto& [hash, entry] : entries_) fn(hash, *entry.block);
  }
  /// Blocks rejected for claiming an inconsistent height.
  uint64_t invalid_blocks() const { return invalid_blocks_; }
  /// Number of head reorganizations observed (head moved to a block whose
  /// parent was not the previous head).
  uint64_t reorgs() const { return reorgs_; }

 private:
  struct Entry {
    BlockPtr block;
    uint64_t cumulative_weight;
  };

  void Attach(BlockPtr block);
  void UpdateCanonical();

  std::unordered_map<Hash256, Entry, Hash256Hasher> entries_;
  // parent hash -> blocks waiting for it.
  std::unordered_map<Hash256, std::vector<BlockPtr>, Hash256Hasher> orphans_;
  size_t orphan_buffer_count_ = 0;
  std::vector<Hash256> canonical_;  // index = height
  Hash256 head_;
  Hash256 genesis_;
  uint64_t reorgs_ = 0;
  uint64_t invalid_blocks_ = 0;
  uint64_t stored_bytes_ = 0;
};

}  // namespace bb::chain

#endif  // BLOCKBENCH_CHAIN_CHAIN_STORE_H_
