#include "chain/txpool.h"

namespace bb::chain {

bool TxPool::Add(Transaction tx) {
  if (!seen_.insert(tx.id).second) return false;
  in_queue_.insert(tx.id);
  queue_.push_back(std::move(tx));
  return true;
}

std::vector<Transaction> TxPool::TakeBatch(size_t max_count,
                                           size_t max_bytes, bool lifo) {
  std::vector<Transaction> batch;
  size_t bytes = 0;
  while (!queue_.empty() && batch.size() < max_count) {
    Transaction& next = lifo ? queue_.back() : queue_.front();
    size_t tx_bytes = next.SizeBytes();
    if (max_bytes != 0 && !batch.empty() && bytes + tx_bytes > max_bytes) {
      break;
    }
    bytes += tx_bytes;
    in_queue_.erase(next.id);
    batch.push_back(std::move(next));
    if (lifo) {
      queue_.pop_back();
    } else {
      queue_.pop_front();
    }
  }
  return batch;
}

void TxPool::RemoveCommitted(const std::vector<Transaction>& txs) {
  std::unordered_set<uint64_t> committed;
  for (const auto& tx : txs) {
    seen_.insert(tx.id);  // gossip may deliver the block before the tx
    if (in_queue_.count(tx.id)) committed.insert(tx.id);
  }
  if (committed.empty()) return;
  std::deque<Transaction> kept;
  for (auto& tx : queue_) {
    if (committed.count(tx.id)) {
      in_queue_.erase(tx.id);
    } else {
      kept.push_back(std::move(tx));
    }
  }
  queue_ = std::move(kept);
}

void TxPool::Requeue(std::vector<Transaction> txs) {
  for (auto& tx : txs) {
    if (in_queue_.count(tx.id)) continue;
    in_queue_.insert(tx.id);
    queue_.push_back(std::move(tx));
  }
}

}  // namespace bb::chain
