#include "chain/txpool.h"

namespace bb::chain {

uint32_t TxPool::AllocSlot(Transaction tx) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(tx);
  } else {
    slot = uint32_t(slots_.size());
    slots_.push_back(std::move(tx));
    slot_ids_.push_back(0);
    slot_sizes_.push_back(0);
    slot_live_.push_back(0);
  }
  slot_ids_[slot] = slots_[slot].id;
  slot_sizes_[slot] = uint32_t(slots_[slot].SizeBytes());
  slot_live_[slot] = 1;
  slot_bytes_ += slot_sizes_[slot];
  return slot;
}

// Only called once the slot's order_ entry has been removed; until then a
// recycled slot could alias the stale entry.
void TxPool::FreeSlot(uint32_t slot) {
  slots_[slot] = Transaction{};  // release payload memory
  slot_bytes_ -= slot_sizes_[slot];
  free_slots_.push_back(slot);
}

void TxPool::Admit(Transaction tx) {
  const uint64_t id = tx.id;
  uint32_t slot = AllocSlot(std::move(tx));
  in_queue_.Put(id, slot);
  order_.push_back(slot);
  ++live_;
}

bool TxPool::Add(Transaction tx) {
  // The in_queue_ check matters only when the dedup window is smaller
  // than the pending queue: a pending id that fell out of the window
  // must still not be admitted twice.
  if (seen_.Contains(tx.id) || in_queue_.Find(tx.id) != nullptr) return false;
  seen_.Insert(tx.id);
  Admit(std::move(tx));
  return true;
}

std::vector<Transaction> TxPool::TakeBatch(size_t max_count,
                                           size_t max_bytes, bool lifo) {
  std::vector<Transaction> batch;
  size_t bytes = 0;
  while (live_ > 0 && batch.size() < max_count) {
    uint32_t slot = lifo ? order_.back() : order_.front();
    if (!slot_live_[slot]) {
      // Lazily-deleted entry: purge it and keep scanning.
      if (lifo) order_.pop_back(); else order_.pop_front();
      FreeSlot(slot);
      continue;
    }
    size_t tx_bytes = slot_sizes_[slot];
    if (max_bytes != 0 && !batch.empty() && bytes + tx_bytes > max_bytes) {
      break;
    }
    bytes += tx_bytes;
    in_queue_.Erase(slot_ids_[slot]);
    batch.push_back(std::move(slots_[slot]));
    slot_live_[slot] = 0;
    --live_;
    if (lifo) order_.pop_back(); else order_.pop_front();
    FreeSlot(slot);
  }
  return batch;
}

void TxPool::RemoveCommitted(const std::vector<Transaction>& txs) {
  for (const auto& tx : txs) {
    seen_.Insert(tx.id);  // gossip may deliver the block before the tx
    if (const uint32_t* slot = in_queue_.Find(tx.id)) {
      slot_live_[*slot] = 0;
      --live_;
      in_queue_.Erase(tx.id);
    }
  }
  MaybeCompact();
}

void TxPool::Requeue(std::vector<Transaction> txs) {
  for (auto& tx : txs) {
    if (in_queue_.Find(tx.id) != nullptr) continue;
    Admit(std::move(tx));
  }
}

void TxPool::MaybeCompact() {
  size_t dead = order_.size() - live_;
  if (dead <= live_ + 64) return;
  std::deque<uint32_t> kept;
  for (uint32_t slot : order_) {
    if (slot_live_[slot]) {
      kept.push_back(slot);
    } else {
      FreeSlot(slot);
    }
  }
  order_ = std::move(kept);
}

}  // namespace bb::chain
