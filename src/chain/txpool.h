// TxPool: a node's pending-transaction pool with id-based deduplication
// (transactions arrive both from clients and from peer gossip).
//
// Layout is struct-of-arrays: transaction payloads live in a recycled slot
// vector while the hot metadata consulted by TakeBatch/RemoveCommitted —
// ids, wire sizes, liveness — sits in parallel flat arrays. Admission
// order is a deque of slot indices with lazy deletion: RemoveCommitted
// only flips a liveness bit, and dead entries are purged when the
// FIFO/LIFO cursor reaches them or when they outnumber the live ones.
// Observable behaviour (admission order, batch boundaries, dedup) is
// identical to the original deque-of-Transaction implementation.

#ifndef BLOCKBENCH_CHAIN_TXPOOL_H_
#define BLOCKBENCH_CHAIN_TXPOOL_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "chain/transaction.h"
#include "util/flat_id_table.h"

namespace bb::chain {

class TxPool {
 public:
  /// Adds a transaction; returns false if it was already seen (pending,
  /// or committed within the dedup window).
  bool Add(Transaction tx);

  /// Takes up to max_count transactions whose sizes sum to at most
  /// max_bytes (0 = no byte limit). FIFO by default; lifo = true takes
  /// the most recently admitted first (Parity's effective ordering,
  /// which keeps commit latency low while old transactions starve).
  std::vector<Transaction> TakeBatch(size_t max_count, size_t max_bytes = 0,
                                     bool lifo = false);

  /// Removes committed transactions from the pending queue (e.g. when a
  /// peer's block wins) without forgetting their ids.
  void RemoveCommitted(const std::vector<Transaction>& txs);

  /// Re-queues transactions (e.g. from an orphaned block).
  void Requeue(std::vector<Transaction> txs);

  size_t pending() const { return live_; }
  /// Wire bytes resident in slots — includes committed-but-unpurged
  /// entries whose payloads lazy deletion has not released yet, so this
  /// is the pool's actual slot-store footprint (mem observability).
  uint64_t slot_bytes() const { return slot_bytes_; }
  bool Seen(uint64_t id) const { return seen_.Contains(id); }

  /// Dedup-window size (ids remembered per generation; two generations
  /// are kept, so an id is forgotten after between W and 2W newer ids).
  /// The default is large enough that a run has to commit over a million
  /// transactions before any id is recycled.
  size_t seen_window() const { return seen_.window(); }
  void set_seen_window(size_t window) { seen_.set_window(window); }

 private:
  uint32_t AllocSlot(Transaction tx);
  void FreeSlot(uint32_t slot);
  void Admit(Transaction tx);
  void MaybeCompact();

  std::deque<Transaction> slots_;      // payloads, indexed by slot; deque
                                       // so growth never moves payloads
  std::vector<uint64_t> slot_ids_;     // parallel: tx id
  std::vector<uint32_t> slot_sizes_;   // parallel: cached wire size
  std::vector<uint8_t> slot_live_;     // parallel: still pending?
  std::vector<uint32_t> free_slots_;   // recyclable slots
  std::deque<uint32_t> order_;         // admission order (may hold dead)
  size_t live_ = 0;                    // live entries in order_
  uint64_t slot_bytes_ = 0;            // wire bytes of occupied slots
  util::FlatIdMap<uint32_t> in_queue_;  // id -> slot for pending txs
  util::SeenIdWindow seen_;             // bounded dedup of admitted ids
};

}  // namespace bb::chain

#endif  // BLOCKBENCH_CHAIN_TXPOOL_H_
