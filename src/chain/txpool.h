// TxPool: a node's pending-transaction pool with id-based deduplication
// (transactions arrive both from clients and from peer gossip).

#ifndef BLOCKBENCH_CHAIN_TXPOOL_H_
#define BLOCKBENCH_CHAIN_TXPOOL_H_

#include <deque>
#include <unordered_set>

#include "chain/transaction.h"

namespace bb::chain {

class TxPool {
 public:
  /// Adds a transaction; returns false if it was already seen (pending,
  /// or committed and Forget() not called).
  bool Add(Transaction tx);

  /// Takes up to max_count transactions whose sizes sum to at most
  /// max_bytes (0 = no byte limit). FIFO by default; lifo = true takes
  /// the most recently admitted first (Parity's effective ordering,
  /// which keeps commit latency low while old transactions starve).
  std::vector<Transaction> TakeBatch(size_t max_count, size_t max_bytes = 0,
                                     bool lifo = false);

  /// Removes committed transactions from the pending queue (e.g. when a
  /// peer's block wins) without forgetting their ids.
  void RemoveCommitted(const std::vector<Transaction>& txs);

  /// Re-queues transactions (e.g. from an orphaned block).
  void Requeue(std::vector<Transaction> txs);

  size_t pending() const { return queue_.size(); }
  bool Seen(uint64_t id) const { return seen_.count(id) > 0; }

 private:
  std::deque<Transaction> queue_;
  std::unordered_set<uint64_t> seen_;       // all ids ever admitted
  std::unordered_set<uint64_t> in_queue_;   // ids currently pending
};

}  // namespace bb::chain

#endif  // BLOCKBENCH_CHAIN_TXPOOL_H_
