// Transaction: a signed request to invoke a contract function.

#ifndef BLOCKBENCH_CHAIN_TRANSACTION_H_
#define BLOCKBENCH_CHAIN_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/sha256.h"
#include "vm/value.h"

namespace bb::chain {

struct Transaction {
  /// Client-assigned unique id (stands in for the tx hash handed back by
  /// the JSON-RPC submit call).
  uint64_t id = 0;
  std::string sender;
  /// Target contract address/name. Empty = plain value transfer.
  std::string contract;
  std::string function;
  vm::Args args;
  /// Currency attached to the call.
  int64_t value = 0;
  /// Virtual time at which the client submitted it (for latency stats).
  double submit_time = 0;

  /// Canonical byte encoding (deterministic; used for hashing and the
  /// transaction Merkle root). Excludes submit_time, so latency restamping
  /// never changes the hash.
  std::string Serialize() const;
  static Result<Transaction> Deserialize(Slice data);

  /// Content hash. Memoized, witnessed by `id`: ids are unique
  /// system-wide and the only field rewritten on copies after creation
  /// (the sharding coordinator re-tags ids), so an id mismatch is the
  /// invalidation signal. perf::LegacyMode() bypasses the cache.
  Hash256 HashOf() const;
  /// Wire size: serialized payload plus a signature envelope. Memoized
  /// with the same id witness as HashOf().
  size_t SizeBytes() const;

  /// out[i] = txs[i].HashOf(), computed as one batch: cold caches are
  /// serialized up front and digested via Sha256::DigestBatch (8-wide on
  /// CPUs without SHA-NI), then stored back into each tx's cache. This is
  /// the admission/seal-time path that amortizes per-tx digest cost.
  static void HashAll(const std::vector<Transaction>& txs,
                      std::vector<Hash256>* out);

 private:
  mutable Hash256 cached_hash_;
  mutable uint64_t hash_witness_ = 0;
  mutable bool hash_valid_ = false;
  mutable size_t cached_size_ = 0;
  mutable uint64_t size_witness_ = 0;
  mutable bool size_valid_ = false;
};

}  // namespace bb::chain

#endif  // BLOCKBENCH_CHAIN_TRANSACTION_H_
