// Transaction: a signed request to invoke a contract function.

#ifndef BLOCKBENCH_CHAIN_TRANSACTION_H_
#define BLOCKBENCH_CHAIN_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/sha256.h"
#include "vm/value.h"

namespace bb::chain {

struct Transaction {
  /// Client-assigned unique id (stands in for the tx hash handed back by
  /// the JSON-RPC submit call).
  uint64_t id = 0;
  std::string sender;
  /// Target contract address/name. Empty = plain value transfer.
  std::string contract;
  std::string function;
  vm::Args args;
  /// Currency attached to the call.
  int64_t value = 0;
  /// Virtual time at which the client submitted it (for latency stats).
  double submit_time = 0;

  /// Canonical byte encoding (deterministic; used for hashing and the
  /// transaction Merkle root).
  std::string Serialize() const;
  static Result<Transaction> Deserialize(Slice data);

  Hash256 HashOf() const;
  /// Wire size: serialized payload plus a signature envelope.
  size_t SizeBytes() const;
};

}  // namespace bb::chain

#endif  // BLOCKBENCH_CHAIN_TRANSACTION_H_
