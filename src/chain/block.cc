#include "chain/block.h"

#include "storage/merkle_tree.h"
#include "util/codec.h"
#include "util/perf.h"
#include "obs/profiler.h"

namespace bb::chain {

namespace {
constexpr size_t kHeaderWireBytes = 200;  // hashes + metadata + seal
}

std::string BlockHeader::Serialize() const {
  std::string out;
  out.append(reinterpret_cast<const char*>(parent.bytes.data()), 32);
  PutFixed64(&out, height);
  out.append(reinterpret_cast<const char*>(tx_root.bytes.data()), 32);
  out.append(reinterpret_cast<const char*>(state_root.bytes.data()), 32);
  PutFixed32(&out, proposer);
  PutFixed64(&out, uint64_t(timestamp * 1e6));
  PutFixed64(&out, nonce);
  PutFixed64(&out, weight);
  return out;
}

Hash256 BlockHeader::HashOf() const { return Sha256::Digest(Serialize()); }

Block::Block(const Block& other)
    : header(other.header),
      txs(other.txs),
      hash_witness_(other.hash_witness_),
      cached_hash_(other.cached_hash_),
      hash_valid_(other.hash_valid_),
      cached_size_(other.cached_size_),
      size_witness_(other.size_witness_),
      size_valid_(other.size_valid_) {
  BB_PROF_ALLOC(txs.empty() ? 0 : 1, 0);
  BB_PROF_COPY(other.SizeBytes());
}

Block& Block::operator=(const Block& other) {
  if (this != &other) {
    BB_PROF_ALLOC(other.txs.empty() ? 0 : 1, 0);
    BB_PROF_COPY(other.SizeBytes());
    header = other.header;
    txs = other.txs;
    hash_witness_ = other.hash_witness_;
    cached_hash_ = other.cached_hash_;
    hash_valid_ = other.hash_valid_;
    cached_size_ = other.cached_size_;
    size_witness_ = other.size_witness_;
    size_valid_ = other.size_valid_;
  }
  return *this;
}

Hash256 Block::HashOf() const {
  const bool legacy = perf::LegacyMode();
  if (!legacy && hash_valid_ && hash_witness_ == header) return cached_hash_;
  BB_PROF_SCOPE("hash.block_hash");
  Hash256 h = header.HashOf();
  if (!legacy) {
    cached_hash_ = h;
    hash_witness_ = header;
    hash_valid_ = true;
  }
  return h;
}

void Block::SealTxRoot() {
  BB_PROF_SCOPE("hash.seal_tx_root");
  std::vector<Hash256> leaves;
  Transaction::HashAll(txs, &leaves);
  header.tx_root = storage::MerkleTree(std::move(leaves)).root();
}

size_t Block::SizeBytes() const {
  const bool legacy = perf::LegacyMode();
  if (!legacy && size_valid_ && size_witness_ == txs.size())
    return cached_size_;
  size_t n = kHeaderWireBytes;
  for (const auto& tx : txs) n += tx.SizeBytes();
  if (!legacy) {
    cached_size_ = n;
    size_witness_ = txs.size();
    size_valid_ = true;
  }
  return n;
}

}  // namespace bb::chain
