#include "chain/block.h"

#include "storage/merkle_tree.h"
#include "util/codec.h"

namespace bb::chain {

namespace {
constexpr size_t kHeaderWireBytes = 200;  // hashes + metadata + seal
}

std::string BlockHeader::Serialize() const {
  std::string out;
  out.append(reinterpret_cast<const char*>(parent.bytes.data()), 32);
  PutFixed64(&out, height);
  out.append(reinterpret_cast<const char*>(tx_root.bytes.data()), 32);
  out.append(reinterpret_cast<const char*>(state_root.bytes.data()), 32);
  PutFixed32(&out, proposer);
  PutFixed64(&out, uint64_t(timestamp * 1e6));
  PutFixed64(&out, nonce);
  PutFixed64(&out, weight);
  return out;
}

Hash256 BlockHeader::HashOf() const { return Sha256::Digest(Serialize()); }

void Block::SealTxRoot() {
  std::vector<Hash256> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.HashOf());
  header.tx_root = storage::MerkleTree(std::move(leaves)).root();
}

size_t Block::SizeBytes() const {
  size_t n = kHeaderWireBytes;
  for (const auto& tx : txs) n += tx.SizeBytes();
  return n;
}

}  // namespace bb::chain
