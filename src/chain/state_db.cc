#include "chain/state_db.h"

#include <charconv>

#include "obs/profiler.h"

namespace bb::chain {

// --- TrieStateDb ------------------------------------------------------------

TrieStateDb::TrieStateDb(storage::KvStore* store, size_t cache_entries)
    : store_(store), trie_(store, cache_entries) {}

Status TrieStateDb::Get(const std::string& ns, const std::string& key,
                        std::string* value) const {
  std::string fk = FullKey(ns, key);
  auto it = pending_.find(fk);
  if (it != pending_.end()) {
    if (!it->second.present) return Status::NotFound();
    *value = it->second.value;
    return Status::Ok();
  }
  return trie_.Get(root_, fk, value);
}

Status TrieStateDb::Put(const std::string& ns, const std::string& key,
                        const std::string& value) {
  pending_[FullKey(ns, key)] = {true, value};
  return Status::Ok();
}

Status TrieStateDb::Delete(const std::string& ns, const std::string& key) {
  pending_[FullKey(ns, key)] = {false, {}};
  return Status::Ok();
}

Result<Hash256> TrieStateDb::Commit() {
  BB_PROF_SCOPE("storage.trie_commit");
  Hash256 root = root_;
  for (const auto& [key, w] : pending_) {
    if (w.present) {
      auto r = trie_.Put(root, key, w.value);
      if (!r.ok()) return r.status();
      root = *r;
    } else {
      auto r = trie_.Delete(root, key);
      if (r.ok()) {
        root = *r;
      } else if (!r.status().IsNotFound()) {
        return r.status();
      }
    }
  }
  pending_.clear();
  root_ = root;
  return root;
}

Status TrieStateDb::ResetTo(const Hash256& root) {
  pending_.clear();
  root_ = root;
  return Status::Ok();
}

Status TrieStateDb::GetAt(const Hash256& root, const std::string& ns,
                          const std::string& key, std::string* value) const {
  return trie_.Get(root, FullKey(ns, key), value);
}

// --- BucketStateDb ----------------------------------------------------------

BucketStateDb::BucketStateDb(storage::KvStore* store, size_t num_buckets)
    : store_(store), tree_(store, num_buckets) {
  root_ = tree_.RootHash();
}

Status BucketStateDb::Get(const std::string& ns, const std::string& key,
                          std::string* value) const {
  std::string fk = FullKey(ns, key);
  auto it = pending_.find(fk);
  if (it != pending_.end()) {
    if (!it->second.present) return Status::NotFound();
    *value = it->second.value;
    return Status::Ok();
  }
  return tree_.Get(fk, value);
}

Status BucketStateDb::Put(const std::string& ns, const std::string& key,
                          const std::string& value) {
  pending_[FullKey(ns, key)] = {true, value};
  return Status::Ok();
}

Status BucketStateDb::Delete(const std::string& ns, const std::string& key) {
  pending_[FullKey(ns, key)] = {false, {}};
  return Status::Ok();
}

Result<Hash256> BucketStateDb::Commit() {
  BB_PROF_SCOPE("storage.bucket_commit");
  for (const auto& [key, w] : pending_) {
    if (w.present) {
      BB_RETURN_IF_ERROR(tree_.Put(key, w.value));
    } else {
      Status s = tree_.Delete(key);
      if (!s.ok() && !s.IsNotFound()) return s;
    }
  }
  pending_.clear();
  root_ = tree_.RootHash();
  return root_;
}

// --- StateHost --------------------------------------------------------------

namespace {
constexpr char kBalanceNs[] = "__bal";

int64_t ParseBalance(const std::string& raw) {
  int64_t v = 0;
  std::from_chars(raw.data(), raw.data() + raw.size(), v);
  return v;
}
}  // namespace

int64_t StateHost::BalanceOf(const StateDb& db, const std::string& account) {
  std::string raw;
  if (!db.Get(kBalanceNs, account, &raw).ok()) return 0;
  return ParseBalance(raw);
}

Status StateHost::Credit(StateDb* db, const std::string& account,
                         int64_t amount) {
  int64_t bal = BalanceOf(*db, account);
  return db->Put(kBalanceNs, account, std::to_string(bal + amount));
}

Status StateHost::Transfer(const std::string& to, int64_t amount) {
  BB_RETURN_IF_ERROR(Credit(db_, contract_, -amount));
  return Credit(db_, to, amount);
}

}  // namespace bb::chain
