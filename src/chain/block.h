// Block and BlockHeader, mirroring Figure 1 of the paper: header carries
// the parent pointer, the transaction Merkle root, and the state root.

#ifndef BLOCKBENCH_CHAIN_BLOCK_H_
#define BLOCKBENCH_CHAIN_BLOCK_H_

#include <cstdint>
#include <vector>

#include "chain/transaction.h"
#include "util/sha256.h"

namespace bb::chain {

struct BlockHeader {
  Hash256 parent;
  uint64_t height = 0;
  Hash256 tx_root;
  Hash256 state_root;
  /// Node id of the proposer/miner.
  uint32_t proposer = 0;
  /// Virtual time when the block was sealed.
  double timestamp = 0;
  /// PoW nonce / PoA step / PBFT sequence number, per consensus.
  uint64_t nonce = 0;
  /// Chain-work carried by this block (PoW difficulty; 1 for PoA/PBFT).
  uint64_t weight = 1;

  std::string Serialize() const;
  Hash256 HashOf() const;

  bool operator==(const BlockHeader&) const = default;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;

  Block() = default;
  /// Copying a block is the expense the zero-copy BlockPtr plumbing
  /// exists to avoid; the remaining copies are charged to the wall
  /// profiler so they stay visible (wire-size bytes, one alloc for the
  /// tx vector). Declared out of line in block.cc.
  Block(const Block& other);
  Block& operator=(const Block& other);
  Block(Block&&) = default;
  Block& operator=(Block&&) = default;

  /// Content hash. Memoized: the digest is witnessed by a full copy of the
  /// header, so any header mutation (SealTxRoot, consensus engines stamping
  /// proposer/timestamp/nonce after BuildBlock) naturally invalidates it on
  /// the next call. perf::LegacyMode() bypasses the cache entirely.
  Hash256 HashOf() const;

  /// Computes and installs the Merkle root over txs into the header
  /// (batch-hashing the transactions; see Transaction::HashAll).
  void SealTxRoot();

  /// Wire size of the whole block. Memoized, witnessed by the tx count —
  /// blocks only ever grow/shrink their tx list, never swap same-count
  /// payloads in place.
  size_t SizeBytes() const;

 private:
  mutable BlockHeader hash_witness_;
  mutable Hash256 cached_hash_;
  mutable bool hash_valid_ = false;
  mutable size_t cached_size_ = 0;
  mutable size_t size_witness_ = 0;
  mutable bool size_valid_ = false;
};

}  // namespace bb::chain

#endif  // BLOCKBENCH_CHAIN_BLOCK_H_
