// Block and BlockHeader, mirroring Figure 1 of the paper: header carries
// the parent pointer, the transaction Merkle root, and the state root.

#ifndef BLOCKBENCH_CHAIN_BLOCK_H_
#define BLOCKBENCH_CHAIN_BLOCK_H_

#include <cstdint>
#include <vector>

#include "chain/transaction.h"
#include "util/sha256.h"

namespace bb::chain {

struct BlockHeader {
  Hash256 parent;
  uint64_t height = 0;
  Hash256 tx_root;
  Hash256 state_root;
  /// Node id of the proposer/miner.
  uint32_t proposer = 0;
  /// Virtual time when the block was sealed.
  double timestamp = 0;
  /// PoW nonce / PoA step / PBFT sequence number, per consensus.
  uint64_t nonce = 0;
  /// Chain-work carried by this block (PoW difficulty; 1 for PoA/PBFT).
  uint64_t weight = 1;

  std::string Serialize() const;
  Hash256 HashOf() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> txs;

  /// Content hash (cached by ChainStore on insert; recomputed here).
  Hash256 HashOf() const { return header.HashOf(); }

  /// Computes and installs the Merkle root over txs into the header.
  void SealTxRoot();

  /// Wire size of the whole block.
  size_t SizeBytes() const;
};

}  // namespace bb::chain

#endif  // BLOCKBENCH_CHAIN_BLOCK_H_
