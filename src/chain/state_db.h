// StateDb: the world-state abstraction a platform node executes against.
//
// Two concrete data models, matching Section 3.1.2 of the paper:
//   * TrieStateDb   — Patricia-Merkle trie over a KvStore; every Commit()
//                     yields a new root while old versions stay readable
//                     (Ethereum / Parity).
//   * BucketStateDb — flat keys in the KvStore plus a Bucket-Merkle root;
//                     mutable in place, no historical reads (Hyperledger).
//
// Keys are namespaced per contract; currency balances live in a reserved
// namespace and are manipulated through the StateHost adapter.

#ifndef BLOCKBENCH_CHAIN_STATE_DB_H_
#define BLOCKBENCH_CHAIN_STATE_DB_H_

#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "storage/bucket_tree.h"
#include "storage/kvstore.h"
#include "storage/patricia_trie.h"
#include "util/sha256.h"
#include "vm/host.h"

namespace bb::chain {

class StateDb {
 public:
  virtual ~StateDb() = default;

  /// Reads from the current (uncommitted writes visible) state.
  virtual Status Get(const std::string& ns, const std::string& key,
                     std::string* value) const = 0;
  /// Buffers a write; becomes durable at Commit().
  virtual Status Put(const std::string& ns, const std::string& key,
                     const std::string& value) = 0;
  virtual Status Delete(const std::string& ns, const std::string& key) = 0;

  /// Applies buffered writes; returns the new state root.
  virtual Result<Hash256> Commit() = 0;
  /// Drops buffered writes (failed block application).
  virtual void Abort() = 0;

  virtual Hash256 current_root() const = 0;
  /// Rewinds the current version to `root` (reorg). Unavailable on state
  /// models without versioning (BucketStateDb).
  virtual Status ResetTo(const Hash256& root) = 0;
  /// Reads ns/key in the historical version identified by `root`.
  /// Unavailable on BucketStateDb — the gap that forces Hyperledger's
  /// Analytics Q2 through a custom chaincode (VersionKVStore).
  virtual Status GetAt(const Hash256& root, const std::string& ns,
                       const std::string& key, std::string* value) const = 0;

  /// True when historical versions are queryable.
  virtual bool supports_versioned_reads() const = 0;

  /// Bytes consumed by the backing store (disk-usage series in Fig 12c).
  virtual uint64_t storage_bytes() const = 0;

  /// Exports data-model metrics into `reg` under `labels`; concrete
  /// models add their own (trie node traffic, cache hit rates).
  virtual void ExportMetrics(obs::MetricsRegistry* reg,
                             const obs::Labels& labels) const {
    reg->SetGauge("state.storage_bytes", labels, double(storage_bytes()));
  }

 protected:
  static std::string FullKey(const std::string& ns, const std::string& key) {
    std::string out;
    out.reserve(ns.size() + 1 + key.size());
    out.append(ns);
    out.push_back('\0');
    out.append(key);
    return out;
  }
};

class TrieStateDb : public StateDb {
 public:
  /// `store` backs the trie nodes; not owned. `cache_entries` bounds the
  /// in-memory node cache (Ethereum caches part of the state; Parity in
  /// effect caches all of it — pass a huge value and a MemKv store).
  explicit TrieStateDb(storage::KvStore* store, size_t cache_entries = 1 << 16);

  Status Get(const std::string& ns, const std::string& key,
             std::string* value) const override;
  Status Put(const std::string& ns, const std::string& key,
             const std::string& value) override;
  Status Delete(const std::string& ns, const std::string& key) override;
  Result<Hash256> Commit() override;
  void Abort() override { pending_.clear(); }
  Hash256 current_root() const override { return root_; }
  Status ResetTo(const Hash256& root) override;
  Status GetAt(const Hash256& root, const std::string& ns,
               const std::string& key, std::string* value) const override;
  bool supports_versioned_reads() const override { return true; }
  uint64_t storage_bytes() const override { return store_->size_bytes(); }
  void ExportMetrics(obs::MetricsRegistry* reg,
                     const obs::Labels& labels) const override {
    StateDb::ExportMetrics(reg, labels);
    const storage::TrieStats& s = trie_stats();
    reg->AddCounter("state.trie_node_reads", labels, s.node_reads);
    reg->AddCounter("state.trie_node_writes", labels, s.node_writes);
    reg->AddCounter("state.trie_bytes_written", labels, s.bytes_written);
    reg->AddCounter("state.trie_cache_hits", labels, s.cache_hits);
    reg->AddCounter("state.trie_cache_misses", labels, s.cache_misses);
  }

  const storage::TrieStats& trie_stats() const { return trie_.stats(); }

 private:
  struct PendingWrite {
    bool present;
    std::string value;
  };

  storage::KvStore* store_;
  mutable storage::MerklePatriciaTrie trie_;
  Hash256 root_ = storage::MerklePatriciaTrie::EmptyRoot();
  std::map<std::string, PendingWrite> pending_;
};

class BucketStateDb : public StateDb {
 public:
  explicit BucketStateDb(storage::KvStore* store, size_t num_buckets = 1024);

  Status Get(const std::string& ns, const std::string& key,
             std::string* value) const override;
  Status Put(const std::string& ns, const std::string& key,
             const std::string& value) override;
  Status Delete(const std::string& ns, const std::string& key) override;
  Result<Hash256> Commit() override;
  void Abort() override { pending_.clear(); }
  Hash256 current_root() const override { return root_; }
  Status ResetTo(const Hash256&) override {
    return Status::Unavailable("bucket state has no versions");
  }
  Status GetAt(const Hash256&, const std::string&, const std::string&,
               std::string*) const override {
    return Status::Unavailable("bucket state has no historical reads");
  }
  bool supports_versioned_reads() const override { return false; }
  uint64_t storage_bytes() const override { return store_->size_bytes(); }

 private:
  struct PendingWrite {
    bool present;
    std::string value;
  };

  storage::KvStore* store_;
  mutable storage::BucketMerkleTree tree_;
  Hash256 root_;
  std::map<std::string, PendingWrite> pending_;
};

/// Adapts (StateDb, contract namespace) to the VM's HostInterface.
/// Transfers move integer balances inside the reserved "__bal" namespace;
/// balances may go negative — the framework does not model funding.
class StateHost : public vm::HostInterface {
 public:
  StateHost(StateDb* db, std::string contract)
      : db_(db), contract_(std::move(contract)) {}

  Status GetState(const std::string& key, std::string* value) override {
    return db_->Get(contract_, key, value);
  }
  Status PutState(const std::string& key, const std::string& value) override {
    return db_->Put(contract_, key, value);
  }
  Status DeleteState(const std::string& key) override {
    return db_->Delete(contract_, key);
  }
  Status Transfer(const std::string& to, int64_t amount) override;

  /// Balance helpers shared by platforms and workloads.
  static int64_t BalanceOf(const StateDb& db, const std::string& account);
  static Status Credit(StateDb* db, const std::string& account,
                       int64_t amount);

 private:
  StateDb* db_;
  std::string contract_;
};

}  // namespace bb::chain

#endif  // BLOCKBENCH_CHAIN_STATE_DB_H_
