#include "chain/chain_store.h"

#include <cassert>

namespace bb::chain {

ChainStore::ChainStore(Block genesis) {
  genesis.header.height = 0;
  Hash256 h = genesis.HashOf();
  genesis_ = h;
  head_ = h;
  stored_bytes_ += genesis.SizeBytes();
  entries_.emplace(h,
                   Entry{std::make_shared<const Block>(std::move(genesis)), 0});
  canonical_.push_back(h);
}

const Block* ChainStore::GetBlock(const Hash256& hash) const {
  auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : it->second.block.get();
}

BlockPtr ChainStore::GetBlockPtr(const Hash256& hash) const {
  auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : it->second.block;
}

uint64_t ChainStore::HeightOf(const Hash256& hash) const {
  auto it = entries_.find(hash);
  assert(it != entries_.end());
  return it->second.block->header.height;
}

uint64_t ChainStore::CumulativeWeightOf(const Hash256& hash) const {
  auto it = entries_.find(hash);
  assert(it != entries_.end());
  return it->second.cumulative_weight;
}

ChainStore::AddResult ChainStore::AddBlock(BlockPtr block) {
  AddResult r;
  Hash256 h = block->HashOf();
  if (entries_.count(h)) {
    r.duplicate = true;
    r.attached = true;
    return r;
  }
  auto parent = entries_.find(block->header.parent);
  if (parent == entries_.end()) {
    stored_bytes_ += block->SizeBytes();
    orphans_[block->header.parent].push_back(std::move(block));
    ++orphan_buffer_count_;
    return r;
  }
  r.attached = true;

  Hash256 old_head = head_;
  Attach(std::move(block));
  if (head_ != old_head) {
    r.head_changed = true;
    const Block* new_head = GetBlock(head_);
    if (new_head->header.parent != old_head) ++reorgs_;
    UpdateCanonical();
  }
  return r;
}

void ChainStore::Attach(BlockPtr block) {
  // Iterative attach: adding one block may unlock buffered descendants.
  std::vector<BlockPtr> to_attach;
  to_attach.push_back(std::move(block));
  while (!to_attach.empty()) {
    BlockPtr b = std::move(to_attach.back());
    to_attach.pop_back();
    Hash256 h = b->HashOf();
    if (entries_.count(h)) continue;
    auto parent = entries_.find(b->header.parent);
    assert(parent != entries_.end());
    // The height is part of the hashed header; a block claiming the
    // wrong height is invalid and dropped.
    if (b->header.height != parent->second.block->header.height + 1) {
      ++invalid_blocks_;
      continue;
    }
    uint64_t cw = parent->second.cumulative_weight + b->header.weight;
    stored_bytes_ += b->SizeBytes();
    entries_.emplace(h, Entry{std::move(b), cw});

    if (cw > entries_.at(head_).cumulative_weight) head_ = h;

    auto waiting = orphans_.find(h);
    if (waiting != orphans_.end()) {
      for (auto& w : waiting->second) {
        --orphan_buffer_count_;
        // Re-added above if it attaches; an invalid/duplicate orphan
        // really is released, so the subtraction stands.
        stored_bytes_ -= w->SizeBytes();
        to_attach.push_back(std::move(w));
      }
      orphans_.erase(waiting);
    }
  }
}

void ChainStore::UpdateCanonical() {
  uint64_t height = HeightOf(head_);
  canonical_.resize(height + 1);
  Hash256 cur = head_;
  while (true) {
    uint64_t h = HeightOf(cur);
    if (h < canonical_.size() && canonical_[h] == cur) break;
    canonical_[h] = cur;
    if (h == 0) break;
    cur = entries_.at(cur).block->header.parent;
  }
}

const Block* ChainStore::CanonicalAt(uint64_t height) const {
  if (height >= canonical_.size()) return nullptr;
  return GetBlock(canonical_[height]);
}

BlockPtr ChainStore::CanonicalAtPtr(uint64_t height) const {
  if (height >= canonical_.size()) return nullptr;
  return GetBlockPtr(canonical_[height]);
}

std::vector<const Block*> ChainStore::CanonicalRange(
    uint64_t from_exclusive, uint64_t to_inclusive) const {
  std::vector<const Block*> out;
  uint64_t to = std::min<uint64_t>(to_inclusive, canonical_.size() - 1);
  for (uint64_t h = from_exclusive + 1; h <= to; ++h) {
    out.push_back(GetBlock(canonical_[h]));
  }
  return out;
}

std::vector<BlockPtr> ChainStore::CanonicalRangePtr(
    uint64_t from_exclusive, uint64_t to_inclusive) const {
  std::vector<BlockPtr> out;
  uint64_t to = std::min<uint64_t>(to_inclusive, canonical_.size() - 1);
  for (uint64_t h = from_exclusive + 1; h <= to; ++h) {
    out.push_back(GetBlockPtr(canonical_[h]));
  }
  return out;
}

bool ChainStore::IsCanonical(const Hash256& hash) const {
  auto it = entries_.find(hash);
  if (it == entries_.end()) return false;
  uint64_t h = it->second.block->header.height;
  return h < canonical_.size() && canonical_[h] == hash;
}

}  // namespace bb::chain
