#include "chain/transaction.h"

#include "util/codec.h"

namespace bb::chain {

namespace {
// ECDSA signature + pubkey recovery envelope, as on Ethereum wire txs.
constexpr size_t kSignatureEnvelopeBytes = 97;
}  // namespace

std::string Transaction::Serialize() const {
  std::string out;
  PutFixed64(&out, id);
  PutLengthPrefixed(&out, sender);
  PutLengthPrefixed(&out, contract);
  PutLengthPrefixed(&out, function);
  PutFixed64(&out, uint64_t(value));
  PutVarint64(&out, args.size());
  for (const auto& a : args) PutLengthPrefixed(&out, a.Serialize());
  return out;
}

Result<Transaction> Transaction::Deserialize(Slice data) {
  Transaction tx;
  uint64_t v = 0;
  BB_RETURN_IF_ERROR(GetFixed64(&data, &tx.id));
  BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &tx.sender));
  BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &tx.contract));
  BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &tx.function));
  BB_RETURN_IF_ERROR(GetFixed64(&data, &v));
  tx.value = int64_t(v);
  uint64_t nargs = 0;
  BB_RETURN_IF_ERROR(GetVarint64(&data, &nargs));
  for (uint64_t i = 0; i < nargs; ++i) {
    std::string enc;
    BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &enc));
    auto val = vm::Value::Deserialize(enc);
    if (!val.ok()) return val.status();
    tx.args.push_back(std::move(*val));
  }
  return tx;
}

Hash256 Transaction::HashOf() const { return Sha256::Digest(Serialize()); }

size_t Transaction::SizeBytes() const {
  return Serialize().size() + kSignatureEnvelopeBytes;
}

}  // namespace bb::chain
