#include "chain/transaction.h"

#include "util/codec.h"
#include "util/perf.h"

namespace bb::chain {

namespace {
// ECDSA signature + pubkey recovery envelope, as on Ethereum wire txs.
constexpr size_t kSignatureEnvelopeBytes = 97;
}  // namespace

std::string Transaction::Serialize() const {
  std::string out;
  PutFixed64(&out, id);
  PutLengthPrefixed(&out, sender);
  PutLengthPrefixed(&out, contract);
  PutLengthPrefixed(&out, function);
  PutFixed64(&out, uint64_t(value));
  PutVarint64(&out, args.size());
  for (const auto& a : args) PutLengthPrefixed(&out, a.Serialize());
  return out;
}

Result<Transaction> Transaction::Deserialize(Slice data) {
  Transaction tx;
  uint64_t v = 0;
  BB_RETURN_IF_ERROR(GetFixed64(&data, &tx.id));
  BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &tx.sender));
  BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &tx.contract));
  BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &tx.function));
  BB_RETURN_IF_ERROR(GetFixed64(&data, &v));
  tx.value = int64_t(v);
  uint64_t nargs = 0;
  BB_RETURN_IF_ERROR(GetVarint64(&data, &nargs));
  for (uint64_t i = 0; i < nargs; ++i) {
    std::string enc;
    BB_RETURN_IF_ERROR(GetLengthPrefixed(&data, &enc));
    auto val = vm::Value::Deserialize(enc);
    if (!val.ok()) return val.status();
    tx.args.push_back(std::move(*val));
  }
  return tx;
}

Hash256 Transaction::HashOf() const {
  const bool legacy = perf::LegacyMode();
  if (!legacy && hash_valid_ && hash_witness_ == id) return cached_hash_;
  Hash256 h = Sha256::Digest(Serialize());
  if (!legacy) {
    cached_hash_ = h;
    hash_witness_ = id;
    hash_valid_ = true;
  }
  return h;
}

size_t Transaction::SizeBytes() const {
  const bool legacy = perf::LegacyMode();
  if (!legacy && size_valid_ && size_witness_ == id) return cached_size_;
  size_t n = Serialize().size() + kSignatureEnvelopeBytes;
  if (!legacy) {
    cached_size_ = n;
    size_witness_ = id;
    size_valid_ = true;
  }
  return n;
}

void Transaction::HashAll(const std::vector<Transaction>& txs,
                          std::vector<Hash256>* out) {
  out->resize(txs.size());
  if (perf::LegacyMode()) {
    for (size_t i = 0; i < txs.size(); ++i) (*out)[i] = txs[i].HashOf();
    return;
  }

  // Serve warm caches directly; serialize + batch-digest the rest.
  std::vector<std::string> bufs;
  std::vector<Slice> slices;
  std::vector<size_t> cold;
  for (size_t i = 0; i < txs.size(); ++i) {
    const Transaction& tx = txs[i];
    if (tx.hash_valid_ && tx.hash_witness_ == tx.id) {
      (*out)[i] = tx.cached_hash_;
    } else {
      bufs.push_back(tx.Serialize());
      cold.push_back(i);
    }
  }
  slices.reserve(bufs.size());
  for (const auto& b : bufs) slices.push_back(Slice(b));
  std::vector<Hash256> hashed(cold.size());
  Sha256::DigestBatch(slices.data(), slices.size(), hashed.data());
  for (size_t j = 0; j < cold.size(); ++j) {
    const Transaction& tx = txs[cold[j]];
    (*out)[cold[j]] = hashed[j];
    tx.cached_hash_ = hashed[j];
    tx.hash_witness_ = tx.id;
    tx.hash_valid_ = true;
  }
}

}  // namespace bb::chain
