#include "obs/sampler.h"

#include "obs/trace.h"
#include "sim/simulation.h"

namespace bb::obs {

void Sampler::AddGauge(uint32_t node, const char* name,
                       std::function<double()> fn) {
  gauges_.push_back(GaugeSeries{node, name, std::move(fn), {}});
}

void Sampler::AddTag(uint32_t node, const char* name,
                     std::function<std::string()> fn) {
  tags_.push_back(TagSeries{node, name, std::move(fn), {}});
}

void Sampler::Schedule(sim::Simulation* sim, double end) {
  // t = start + k * period, computed from k so long runs do not drift.
  for (uint64_t k = 1;; ++k) {
    double t = config_.start + double(k) * config_.period;
    if (t > end + 1e-9) break;
    sim->At(t, [this, sim, t] { Tick(sim, t); });
  }
}

void Sampler::Tick(sim::Simulation* sim, double t) {
  ticks_.push_back(t);
  Tracer* tracer = sim->tracer();
  for (GaugeSeries& g : gauges_) {
    double v = g.fn();
    g.values.push_back(v);
    if (tracer != nullptr) tracer->Counter(g.node, "sampler", g.name, t, v);
  }
  for (TagSeries& s : tags_) s.values.push_back(s.fn());
}

double Sampler::ValueAt(uint32_t node, const std::string& name,
                        size_t tick) const {
  for (const GaugeSeries& g : gauges_) {
    if (g.node == node && name == g.name) {
      return tick < g.values.size() ? g.values[tick] : -1;
    }
  }
  return -1;
}

util::Json Sampler::ToJson() const {
  util::Json doc = util::Json::Object();
  doc.Set("period", config_.period);
  util::Json ticks = util::Json::Array();
  for (double t : ticks_) ticks.Push(t);
  doc.Set("ticks", std::move(ticks));
  util::Json series = util::Json::Array();
  for (const GaugeSeries& g : gauges_) {
    util::Json s = util::Json::Object();
    s.Set("node", uint64_t(g.node));
    s.Set("name", g.name);
    util::Json values = util::Json::Array();
    for (double v : g.values) values.Push(v);
    s.Set("values", std::move(values));
    series.Push(std::move(s));
  }
  doc.Set("series", std::move(series));
  if (!tags_.empty()) {
    util::Json tags = util::Json::Array();
    for (const TagSeries& ts : tags_) {
      util::Json s = util::Json::Object();
      s.Set("node", uint64_t(ts.node));
      s.Set("name", ts.name);
      util::Json values = util::Json::Array();
      for (const std::string& v : ts.values) values.Push(v);
      s.Set("values", std::move(values));
      tags.Push(std::move(s));
    }
    doc.Set("tags", std::move(tags));
  }
  return doc;
}

}  // namespace bb::obs
