// Auditor: post-run cross-node ledger forensics.
//
// The client-side surface (throughput/latency) says a fault scenario
// *happened*; only the ledgers say what it *did*. The auditor takes
// every node's final view of the block tree, merges them into the
// global fork tree, and answers the questions behind the paper's
// security experiments (Fig 9 crash, Fig 10 partition attack):
//
//   * how many distinct blocks were ever sealed, and how many ended up
//     off the agreed chain (the paper's Δ — the double-spend window)?
//   * how deep did fork branches grow, and how much chain-work
//     (mining effort) was wasted on them?
//   * how far had individual ledgers diverged by the end of the run?
//   * were safety invariants kept — no two conflicting blocks both
//     confirmed, canonical chains structurally sound, all honest nodes
//     agreeing after a partition heals?
//   * after the heal, how long until the next block committed (the
//     Hyperledger-model recovery gap)?
//
// Inputs are neutral NodeChainView records rather than chain::ChainStore
// (bb_chain links bb_obs, so obs cannot look back up the stack);
// platform::CollectAuditViews (platform/forensics.h) does the
// extraction. Reports are deterministic: all iteration is over sorted
// keys, so the serialized blockbench-audit-v1 document is byte-identical
// across runs and is pinned by golden tests.

#ifndef BLOCKBENCH_OBS_AUDITOR_H_
#define BLOCKBENCH_OBS_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace bb::obs {

/// One block as recorded by one node's chain store, platform-neutral.
struct AuditBlock {
  std::string hash;    // hex digest
  std::string parent;  // hex digest of the parent
  uint64_t height = 0;
  uint32_t proposer = 0;
  double timestamp = 0;  // virtual seconds when sealed
  uint64_t weight = 1;   // chain-work carried (PoW difficulty; else 1)
  bool canonical = false;  // on THIS node's canonical chain
};

/// One cross-shard commit-protocol record replayed from a node's
/// canonical chain (sharded platforms only). `phase` is "prepare" or
/// "abort" for the sealed __xshard marker records, "commit" for the
/// sealed original transaction.
struct XsRecord {
  uint64_t base_id = 0;  // the client transaction id (phase bits cleared)
  std::string phase;
  std::vector<uint32_t> participants;  // prepare only: the shard set
  double timestamp = 0;                // seal time of the carrying block
};

/// One node's complete final ledger view (genesis excluded).
struct NodeChainView {
  uint32_t node = 0;
  /// Consensus group this node belongs to (0 when unsharded). Nodes are
  /// only compared against peers in the same shard; each shard grows an
  /// independent chain off the shared genesis.
  uint32_t shard = 0;
  bool crashed = false;
  std::string genesis;  // hex digest every chain must root at
  std::string head;
  uint64_t head_height = 0;
  uint64_t reorgs = 0;
  uint64_t invalid_blocks = 0;
  std::vector<AuditBlock> blocks;
  /// Cross-shard 2PC records on this node's canonical chain, in seal
  /// order (empty when unsharded).
  std::vector<XsRecord> xs_records;
};

struct AuditorConfig {
  /// Blocks below a node's head that count as confirmed for clients
  /// (0 = immediate finality). A fork branch outgrowing this depth means
  /// confirmed transactions were discarded — the double-spend condition.
  uint64_t confirmation_depth = 0;
  /// When the partition healed (virtual seconds); < 0 = no partition.
  double heal_time = -1;
  /// End of the run (bounds the over-time series).
  double end_time = 0;
  /// Bin width of the sealed/forked-over-time series, seconds.
  double series_bin = 10;
  /// Number of consensus groups the views split into (1 = unsharded).
  /// When > 1, structural invariants run per shard and the
  /// cross_shard_atomicity invariant replays the sealed 2PC records.
  uint32_t num_shards = 1;
  /// Cross-shard decisions whose prepare sealed within this many virtual
  /// seconds of end_time may still be legitimately in flight; they are
  /// counted but not treated as atomicity violations.
  double xs_grace = 10;
};

struct AuditViolation {
  std::string invariant;
  std::string detail;
};

/// The audit result. ToJson() renders the blockbench-audit-v1 document.
struct AuditReport {
  // --- Global fork tree (union of every node's blocks) --------------------
  uint64_t distinct_blocks = 0;
  uint64_t agreed_blocks = 0;   // on the reference (heaviest live) chain
  uint64_t forked_blocks = 0;   // distinct - agreed: the paper's Δ
  double forked_pct = 0;        // forked / distinct * 100
  uint64_t fork_points = 0;     // blocks (or genesis) with > 1 child
  uint64_t branches = 0;        // maximal branches off the agreed chain
  uint64_t max_branch_depth = 0;  // longest such branch, in blocks
  uint64_t wasted_weight = 0;     // chain-work sealed into forked blocks

  // --- Per-node divergence at run end -------------------------------------
  struct NodeSummary {
    uint32_t node = 0;
    bool crashed = false;
    uint64_t head_height = 0;
    uint64_t known_blocks = 0;      // attached in this node's store
    uint64_t canonical_blocks = 0;  // on its own canonical chain
    uint64_t forked_blocks = 0;
    uint64_t reorgs = 0;
    /// Distance from this node's head back to the first block shared
    /// with the reference chain (0 = head is on the agreed chain).
    uint64_t divergence_depth = 0;
  };
  std::vector<NodeSummary> nodes;

  // --- Over time (bins of config.series_bin virtual seconds) --------------
  std::vector<uint64_t> sealed_per_bin;
  std::vector<uint64_t> forked_per_bin;

  // --- Recovery after the heal --------------------------------------------
  /// Timestamp of the first agreed-chain block sealed at/after heal_time;
  /// -1 when no heal was configured or nothing committed afterwards.
  double first_seal_after_heal = -1;
  /// first_seal_after_heal - heal_time; -1 when not applicable. The
  /// Hyperledger model's "recovers ~50 s slower" shows up here.
  double recovery_gap = -1;

  // --- Cross-shard 2PC replay (sharded runs only) -------------------------
  uint64_t xs_decisions = 0;  // distinct base ids with a sealed prepare
  uint64_t xs_committed = 0;  // decided commit on every participant
  uint64_t xs_aborted = 0;    // decided abort on every participant
  uint64_t xs_in_flight = 0;  // undecided but inside the grace window

  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }

  /// The blockbench-audit-v1 document (deterministic member order).
  util::Json ToJson(const AuditorConfig& config) const;
  /// Human-readable summary block for bench output.
  std::string RenderTable() const;
};

/// Accumulates node views, then Run() builds the report.
class Auditor {
 public:
  explicit Auditor(AuditorConfig config = {}) : config_(std::move(config)) {}

  void AddNode(NodeChainView view) { views_.push_back(std::move(view)); }
  size_t num_nodes() const { return views_.size(); }

  /// Reconstructs the fork tree and checks every invariant. Views are
  /// consumed read-only; Run() may be called repeatedly. Sharded configs
  /// audit each shard's group independently, merge the results, and then
  /// replay the cross-shard 2PC records for atomicity.
  AuditReport Run() const;

 private:
  /// The single-group audit (the whole pre-sharding pipeline).
  AuditReport RunGroup(const std::vector<const NodeChainView*>& views) const;
  void CheckCrossShardAtomicity(AuditReport* rep) const;

  AuditorConfig config_;
  std::vector<NodeChainView> views_;
};

}  // namespace bb::obs

#endif  // BLOCKBENCH_OBS_AUDITOR_H_
