// MemTracker: deterministic logical-byte accounting per (node, subsystem).
//
// The obs stack measures virtual time (tracer, metrics, sampler), safety
// (auditor), wall-clock cost (profiler) and history (flight recorder) —
// but not a single byte of footprint, even though the scale campaign's
// stressor is per-node memory (PBFT's O(N^2) message traffic). The
// MemTracker closes that gap with *logical* bytes: sizes the simulated
// artifacts report about themselves (wire sizes, slot sizes, bookkeeping
// models), never malloc/RSS. Logical bytes are a pure function of the
// deterministic simulation, so dumps are byte-identical across runs and
// across sweep --jobs values and can live in golden baselines; RSS is
// not and cannot.
//
// One MemTracker serves one sim::Simulation, attached through the
// non-owning Simulation::set_memtracker pointer exactly like set_tracer:
// disabled mode costs one pointer test per hook site, and the hot path
// is inline so bb_sim / bb_storage (below bb_obs in the link graph)
// account without a link-time dependency. CI gates the ratio
// BM_SimulationEventLoopMemOff / BM_SimulationEventLoop <= 1.03.
//
// Two hook styles feed the same counters:
//  * event-style Track/Untrack where the owner sees every transition
//    (sim event slots, in-flight network messages);
//  * sync-style mem::Gauge::Set(bytes) where the owner keeps an O(1)
//    byte counter (tx pool, chain store, consensus bookkeeping, storage
//    backends, vm programs) that is re-synced at deterministic points.
//    Set() computes the delta, so peaks/alloc/free counts still work;
//    its high-water mark granularity is per-sync, not per-mutation.
//
// Every counter records current bytes, the high-water mark with the
// virtual time it was reached, and alloc/free event counts. Aggregation
// is per (node, subsystem), per node, and cluster-wide (a true
// concurrent HWM across subsystems). Export is blockbench-mem-v1 JSON;
// see docs/OBSERVABILITY.md for the taxonomy table.

#ifndef BLOCKBENCH_OBS_MEMTRACK_H_
#define BLOCKBENCH_OBS_MEMTRACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "util/json.h"
#include "util/status.h"

namespace bb::obs {

class MemTracker;

namespace mem {

/// The fixed subsystem taxonomy. Names are part of the
/// blockbench-mem-v1 schema; add here, in SubsystemName, and in the
/// docs/OBSERVABILITY.md table together.
enum Subsystem : uint8_t {
  kSimEvents = 0,  // event-loop slots: handles + callable slab
  kNetInflight,    // messages sent but not yet delivered/dropped
  kPoolSlots,      // live tx-pool slots (SoA wire bytes)
  kConsensus,      // per-instance consensus bookkeeping + 2PC entries
  kChainBlocks,    // blocks stored by ChainStore (attached + orphans)
  kStorageState,   // state-store backend bytes (memkv / diskkv log)
  kVm,             // deployed contract programs / chaincode
  kObsSelf,        // the obs stack's own footprint (recorder rings, ...)
  kNumSubsystems,
};

inline const char* SubsystemName(uint8_t s) {
  static constexpr const char* kNames[kNumSubsystems] = {
      "sim.events",   "net.inflight",  "pool.slots", "consensus.bookkeeping",
      "chain.blocks", "storage.state", "vm",         "obs.self"};
  return s < kNumSubsystems ? kNames[s] : "?";
}

/// -1 when the string names no subsystem (validator input).
int SubsystemFromName(const std::string& name);

/// "mem."-prefixed gauge/counter-track names (static lifetime, as the
/// Sampler requires).
inline const char* TrackName(uint8_t s) {
  static constexpr const char* kNames[kNumSubsystems] = {
      "mem.sim.events",   "mem.net.inflight",
      "mem.pool.slots",   "mem.consensus.bookkeeping",
      "mem.chain.blocks", "mem.storage.state",
      "mem.vm",           "mem.obs.self"};
  return s < kNumSubsystems ? kNames[s] : "?";
}

/// Logical sizing constants for bookkeeping models that count container
/// entries rather than wire bytes (consensus vote sets, index maps).
/// They approximate real node-based container overhead; what matters is
/// that they are fixed, documented, and identical across platforms so
/// cross-platform scaling comparisons are apples-to-apples.
inline constexpr uint64_t kSetEntryBytes = 48;  // per element in a vote set
inline constexpr uint64_t kMapEntryBytes = 40;  // per small-value map entry

}  // namespace mem

/// Deterministic logical-byte accounting for one simulation. All methods
/// are inline (hot path) except export/validation, which live in
/// memtrack.cc inside bb_obs.
class MemTracker {
 public:
  /// Owner id for cluster-shared costs (the sim event queue) — exported
  /// as node "global" and excluded from per-node peak gates.
  static constexpr uint32_t kGlobalNode = 0xffffffffu;

  struct Counter {
    uint64_t current = 0;
    uint64_t peak = 0;
    double peak_at = 0;  // virtual time the HWM was (first) reached
    uint64_t allocs = 0;
    uint64_t frees = 0;
  };

  MemTracker() = default;
  MemTracker(const MemTracker&) = delete;
  MemTracker& operator=(const MemTracker&) = delete;

  /// Binds the virtual clock used for peak_at stamps. Called by
  /// Simulation::set_memtracker; hooks before a bind stamp t=0.
  void BindSim(const sim::Simulation* sim) { sim_ = sim; }

  // --- Hot path (inline; one branch when no tracker is attached) --------

  /// `count` alloc events adding `bytes` to (node, subsystem).
  void Track(uint32_t node, mem::Subsystem s, uint64_t bytes,
             uint64_t count = 1) {
    NodeCounters& nc = CountersFor(node);
    double t = Now();
    Grow(nc.subsys[s], bytes, count, t);
    Grow(nc.total, bytes, count, t);
    Grow(cluster_, bytes, count, t);
  }

  /// `count` free events removing `bytes` from (node, subsystem).
  void Untrack(uint32_t node, mem::Subsystem s, uint64_t bytes,
               uint64_t count = 1) {
    NodeCounters& nc = CountersFor(node);
    Shrink(nc.subsys[s], bytes, count);
    Shrink(nc.total, bytes, count);
    Shrink(cluster_, bytes, count);
  }

  /// Sync-style update: sets (node, subsystem) to `bytes`, charging the
  /// delta as one alloc (growth) or one free (shrink) event. No-op when
  /// the value is unchanged.
  void Set(uint32_t node, mem::Subsystem s, uint64_t bytes) {
    NodeCounters& nc = CountersFor(node);
    uint64_t have = nc.subsys[s].current;
    if (bytes == have) return;
    if (bytes > have) {
      Track(node, s, bytes - have);
    } else {
      Untrack(node, s, have - bytes);
    }
  }

  // --- Introspection (sampler gauges, tests) ----------------------------

  uint64_t current(uint32_t node, mem::Subsystem s) const {
    const NodeCounters* nc = Find(node);
    return nc != nullptr ? nc->subsys[s].current : 0;
  }
  uint64_t peak(uint32_t node, mem::Subsystem s) const {
    const NodeCounters* nc = Find(node);
    return nc != nullptr ? nc->subsys[s].peak : 0;
  }
  Counter counter(uint32_t node, mem::Subsystem s) const {
    const NodeCounters* nc = Find(node);
    return nc != nullptr ? nc->subsys[s] : Counter{};
  }
  uint64_t node_current(uint32_t node) const {
    const NodeCounters* nc = Find(node);
    return nc != nullptr ? nc->total.current : 0;
  }
  uint64_t node_peak(uint32_t node) const {
    const NodeCounters* nc = Find(node);
    return nc != nullptr ? nc->total.peak : 0;
  }
  const Counter& cluster() const { return cluster_; }
  /// Highest real node id with any recorded activity, plus one.
  size_t num_nodes() const { return nodes_.size(); }

  /// Committed-transaction count for bytes-per-committed-tx in exports;
  /// set by the harness after the run (0 = unknown).
  void set_committed(uint64_t committed) { committed_ = committed; }
  uint64_t committed() const { return committed_; }

  // --- Export (memtrack.cc, bb_obs) -------------------------------------

  /// The full blockbench-mem-v1 document. Deterministic member order,
  /// virtual-time data only: byte-identical across runs and --jobs.
  util::Json ToJson() const;
  /// Compact subset for embedding as "mem" in blockbench-sweep-v1 rows:
  /// per-node peak (max + per-node list), per-subsystem peaks,
  /// bytes-per-committed-tx.
  util::Json ToSweepJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  struct NodeCounters {
    Counter subsys[mem::kNumSubsystems];
    Counter total;
  };

  double Now() const { return sim_ != nullptr ? sim_->Now() : 0; }

  static void Grow(Counter& c, uint64_t bytes, uint64_t count, double t) {
    c.current += bytes;
    c.allocs += count;
    if (c.current > c.peak) {
      c.peak = c.current;
      c.peak_at = t;
    }
  }

  static void Shrink(Counter& c, uint64_t bytes, uint64_t count) {
    c.current = bytes <= c.current ? c.current - bytes : 0;
    c.frees += count;
  }

  NodeCounters& CountersFor(uint32_t node) {
    if (node == kGlobalNode) return global_;
    if (node >= nodes_.size()) {
      nodes_.resize(node + 1);
      // The tracker's own table growth is footprint too (obs.self,
      // owned by the cluster): account it live so it shows up in its
      // own attribution instead of silently vanishing.
      uint64_t self = nodes_.capacity() * sizeof(NodeCounters);
      NodeCounters& g = global_;
      uint64_t have = g.subsys[mem::kObsSelf].current;
      if (self > have) {
        double t = Now();
        Grow(g.subsys[mem::kObsSelf], self - have, 1, t);
        Grow(g.total, self - have, 1, t);
        Grow(cluster_, self - have, 1, t);
      }
    }
    return nodes_[node];
  }

  const NodeCounters* Find(uint32_t node) const {
    if (node == kGlobalNode) return &global_;
    return node < nodes_.size() ? &nodes_[node] : nullptr;
  }

  const sim::Simulation* sim_ = nullptr;
  std::vector<NodeCounters> nodes_;
  NodeCounters global_;  // kGlobalNode costs (event queue, obs.self)
  Counter cluster_;      // all nodes + global: true concurrent HWM
  uint64_t committed_ = 0;
};

namespace mem {

/// A bound (tracker, node, subsystem) handle for sync-style owners.
/// Default-constructed = disabled: Set() is one branch, and the byte
/// computation should be guarded by operator bool at the call site.
class Gauge {
 public:
  Gauge() = default;
  Gauge(MemTracker* tracker, uint32_t node, Subsystem s)
      : tracker_(tracker), node_(node), subsystem_(s) {}

  explicit operator bool() const { return tracker_ != nullptr; }

  void Set(uint64_t bytes) {
    if (tracker_ != nullptr) tracker_->Set(node_, subsystem_, bytes);
  }

 private:
  MemTracker* tracker_ = nullptr;
  uint32_t node_ = 0;
  Subsystem subsystem_ = kSimEvents;
};

}  // namespace mem

/// Renders the per-subsystem attribution table for one parsed
/// blockbench-mem-v1 document (peak bytes, share of cluster peak-sum,
/// alloc/free counts, end-of-run residency).
std::string RenderMemAttribution(const util::Json& dump);

/// Renders the diff table between two mem dumps: per-subsystem peak
/// deltas sorted by absolute delta, so the top growth centers lead.
std::string RenderMemDiff(const util::Json& before, const util::Json& after);

/// Structural validation of a blockbench-mem-v1 document: schema tag,
/// taxonomy names, counter invariants (current <= peak), and the
/// cross-check that node totals equal their subsystem sums and the
/// aggregate section equals the node-wise column sums (so a tampered
/// byte count is rejected, not just a malformed shape).
Status ValidateMemDump(const util::Json& dump);

}  // namespace bb::obs

#endif  // BLOCKBENCH_OBS_MEMTRACK_H_
