// Tracer: a span/event recorder keyed on virtual simulation time.
//
// One Tracer serves one sim::Simulation. Components reach it through
// Simulation::tracer(), which returns nullptr when tracing is off — the
// entire instrumentation cost in disabled mode is one pointer test per
// hook site. All timestamps are virtual seconds, and events are stored
// in dispatch order, so a trace is byte-identical across runs and
// across sweep --jobs values (each run owns its simulation and tracer).
//
// Two event families:
//  * spans/instants on a (node, category, name) axis — consensus engines
//    emit their named phases here ("pbft.prepare", "pow.mine", ...);
//  * transaction lifecycle milestones (submit -> admit -> propose ->
//    commit -> confirm) recorded first-wins per tx id; each adjacent
//    milestone pair becomes an async span ("tx.admission",
//    "tx.pool_wait", "tx.consensus", "tx.confirmation") whose durations
//    telescope to exactly the client-measured commit latency.
//
// Serialization targets the Chrome trace_event JSON format, loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. See
// docs/OBSERVABILITY.md.

#ifndef BLOCKBENCH_OBS_TRACE_H_
#define BLOCKBENCH_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace bb::obs {

class Tracer {
 public:
  /// Transaction lifecycle milestones, in causal order.
  enum TxPhase : uint8_t {
    kSubmit = 0,   // client hands the tx to its server
    kAdmit,        // a server pool accepts it (direct or via gossip)
    kPropose,      // a proposer packs it into a block
    kCommit,       // first canonical execution commits it
    kConfirm,      // the submitting client observes the commit
  };
  static constexpr size_t kNumTxPhases = 5;
  /// Span between milestone `leg` and `leg + 1` (4 legs total).
  static constexpr size_t kNumTxSpans = kNumTxPhases - 1;
  static const char* TxSpanName(size_t leg);

  /// Milestone timestamps for one tx; entries are -1 until recorded.
  using TxMilestones = std::array<double, kNumTxPhases>;

  // --- Recording (hot path when enabled) ---------------------------------

  /// A closed span [start, end] on node `node`'s track.
  void CompleteSpan(uint32_t node, const char* cat, const char* name,
                    double start, double end) {
    PushEvent(node, cat, name, 'X', start, end - start, 0, nullptr, 0);
  }
  void CompleteSpan(uint32_t node, const char* cat, const char* name,
                    double start, double end, const char* arg_key,
                    double arg_value) {
    PushEvent(node, cat, name, 'X', start, end - start, 0, arg_key, arg_value);
  }
  /// A point event on node `node`'s track.
  void Instant(uint32_t node, const char* cat, const char* name, double t) {
    PushEvent(node, cat, name, 'i', t, 0, 0, nullptr, 0);
  }
  void Instant(uint32_t node, const char* cat, const char* name, double t,
               const char* arg_key, double arg_value) {
    PushEvent(node, cat, name, 'i', t, 0, 0, arg_key, arg_value);
  }
  /// A counter sample: one point of the per-node counter track
  /// (name, id=node) — the obs::Sampler's output primitive. Renders as a
  /// Chrome trace_event counter ("ph":"C"); Perfetto draws one track per
  /// (name, id) pair.
  void Counter(uint32_t node, const char* cat, const char* name, double t,
               double value) {
    PushEvent(node, cat, name, 'C', t, 0, node, "value", value);
  }
  /// Flow arrow start/end linking a message send to its delivery across
  /// node tracks ('s'/'f' pairs share the message seq as id; Perfetto
  /// renders them as arrows). Each call also records a zero-duration
  /// anchor span on the node track for the arrow to bind to. A send
  /// whose message is dropped in flight leaves an unmatched 's' —
  /// trace_report treats that as legal (the arrow just never lands).
  void FlowBegin(uint32_t node, const char* cat, const char* name, double t,
                 uint64_t id) {
    PushEvent(node, cat, name, 'X', t, 0, 0, nullptr, 0);
    PushEvent(node, cat, name, 's', t, 0, id, nullptr, 0);
  }
  void FlowEnd(uint32_t node, const char* cat, const char* name, double t,
               uint64_t id) {
    PushEvent(node, cat, name, 'X', t, 0, 0, nullptr, 0);
    PushEvent(node, cat, name, 'f', t, 0, id, nullptr, 0);
  }

  /// Starts (or restarts, on client retry after a rejection) the
  /// lifecycle record for `tx_id`: later milestones are cleared.
  void TxSubmit(uint64_t tx_id, double t);
  /// Records milestone `phase` at time t, first writer wins; emits the
  /// async span from the previous milestone once both ends are known.
  void TxMilestone(uint64_t tx_id, TxPhase phase, double t);
  /// Milestone record for a tx, nullptr if never seen.
  const TxMilestones* FindTx(uint64_t tx_id) const;

  // --- Introspection / export --------------------------------------------

  size_t num_events() const { return events_.size(); }
  size_t num_tx() const { return tx_.size(); }

  /// Whole trace as a Chrome trace_event JSON document (for tests and
  /// golden digests).
  std::string DumpChromeTrace() const;
  /// Streams the trace to `path` through a BufferedWriter.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct Event {
    const char* cat;      // static-lifetime strings only
    const char* name;
    const char* arg_key;  // optional single numeric arg
    double ts;            // virtual seconds
    double dur;           // seconds, 'X' only
    double arg_val;
    uint64_t id;          // async pair id ('b'/'e'), counter ('C'), flow ('s'/'f')
    uint32_t tid;
    char ph;              // 'X', 'i', 'b', 'e', 'C', 's', 'f'
  };

  // Inline so bb_sim (below bb_obs in the link graph) can emit flow
  // events without a link-time dependency.
  void PushEvent(uint32_t tid, const char* cat, const char* name, char ph,
                 double ts, double dur, uint64_t id, const char* arg_key,
                 double arg_val) {
    if (tid > max_tid_) max_tid_ = tid;
    events_.push_back(Event{cat, name, arg_key, ts, dur, arg_val, id, tid, ph});
  }

  void RenderTo(const std::function<void(const std::string&)>& sink) const;
  static void RenderEvent(const Event& e, std::string* out);

  std::vector<Event> events_;
  std::unordered_map<uint64_t, TxMilestones> tx_;
  uint32_t max_tid_ = 0;
};

}  // namespace bb::obs

#endif  // BLOCKBENCH_OBS_TRACE_H_
