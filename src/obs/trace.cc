#include "obs/trace.h"

#include <cstdio>

#include "util/bufwriter.h"

namespace bb::obs {

namespace {

constexpr const char* kTxSpanNames[Tracer::kNumTxSpans] = {
    "tx.admission",      // submit  -> admit
    "tx.pool_wait",      // admit   -> propose
    "tx.consensus",      // propose -> commit
    "tx.confirmation",   // commit  -> confirm
};

/// Seconds -> microseconds with fixed millinanosecond precision; the
/// fixed format keeps traces byte-identical across runs.
void AppendMicros(std::string* out, double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  out->append(buf);
}

void AppendArgNumber(std::string* out, double v) {
  char buf[48];
  if (v == double(int64_t(v)) && v >= -9.2e18 && v <= 9.2e18) {
    std::snprintf(buf, sizeof(buf), "%lld", (long long)int64_t(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out->append(buf);
}

}  // namespace

const char* Tracer::TxSpanName(size_t leg) {
  return leg < kNumTxSpans ? kTxSpanNames[leg] : "tx.unknown";
}

void Tracer::TxSubmit(uint64_t tx_id, double t) {
  TxMilestones& ms = tx_[tx_id];
  ms.fill(-1);
  ms[kSubmit] = t;
}

void Tracer::TxMilestone(uint64_t tx_id, TxPhase phase, double t) {
  if (phase == kSubmit) {
    TxSubmit(tx_id, t);
    return;
  }
  auto it = tx_.find(tx_id);
  if (it == tx_.end()) {
    // Tx never submitted through a traced client (e.g. injected
    // directly in a test); start a partial record.
    it = tx_.emplace(tx_id, TxMilestones{}).first;
    it->second.fill(-1);
  }
  TxMilestones& ms = it->second;
  if (ms[phase] >= 0) return;  // first milestone wins (gossip, replicas)
  ms[phase] = t;
  size_t leg = size_t(phase) - 1;
  if (ms[leg] >= 0) {
    // Emit the async span for the completed leg; pid/tid of async
    // events are fixed at render time, here we only log endpoints.
    PushEvent(0, "tx", TxSpanName(leg), 'b', ms[leg], 0, tx_id, nullptr, 0);
    PushEvent(0, "tx", TxSpanName(leg), 'e', t, 0, tx_id, nullptr, 0);
  }
}

const Tracer::TxMilestones* Tracer::FindTx(uint64_t tx_id) const {
  auto it = tx_.find(tx_id);
  return it != tx_.end() ? &it->second : nullptr;
}

void Tracer::RenderEvent(const Event& e, std::string* out) {
  out->append("{\"ph\":\"");
  out->push_back(e.ph);
  out->push_back('"');
  if (e.ph == 'b' || e.ph == 'e') {
    // Async tx-lifecycle events live in their own process so Perfetto
    // groups them apart from the per-node tracks.
    out->append(",\"pid\":1,\"tid\":0");
    char buf[32];
    std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                  (unsigned long long)e.id);
    out->append(buf);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ",\"pid\":0,\"tid\":%u", e.tid);
    out->append(buf);
    if (e.ph == 'C') {
      // name + id identify one counter track: per-node series of the
      // same gauge stay separate ("pool.depth" id 0, 1, ...).
      std::snprintf(buf, sizeof(buf), ",\"id\":\"%llu\"",
                    (unsigned long long)e.id);
      out->append(buf);
    } else if (e.ph == 's' || e.ph == 'f') {
      // Flow arrows: the id (message seq) pairs a start with its finish;
      // bp:"e" binds the finish to the enclosing anchor span.
      std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                    (unsigned long long)e.id);
      out->append(buf);
      if (e.ph == 'f') out->append(",\"bp\":\"e\"");
    }
  }
  out->append(",\"ts\":");
  AppendMicros(out, e.ts);
  if (e.ph == 'X') {
    out->append(",\"dur\":");
    AppendMicros(out, e.dur);
  }
  if (e.ph == 'i') out->append(",\"s\":\"t\"");
  out->append(",\"cat\":\"");
  out->append(e.cat);
  out->append("\",\"name\":\"");
  out->append(e.name);
  out->push_back('"');
  if (e.arg_key != nullptr) {
    out->append(",\"args\":{\"");
    out->append(e.arg_key);
    out->append("\":");
    AppendArgNumber(out, e.arg_val);
    out->push_back('}');
  }
  out->push_back('}');
}

void Tracer::RenderTo(
    const std::function<void(const std::string&)>& sink) const {
  std::string line;
  line.reserve(256);

  sink("{\"traceEvents\":[\n");
  // Metadata: name the two processes and each node track.
  sink("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"cluster\"}},\n");
  sink("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"transactions\"}},\n");
  for (uint32_t tid = 0; tid <= max_tid_; ++tid) {
    line.clear();
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%u,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"node %u\"}}",
                  tid, tid);
    line.append(buf);
    if (tid < max_tid_ || !events_.empty()) line.push_back(',');
    line.push_back('\n');
    sink(line);
  }
  for (size_t i = 0; i < events_.size(); ++i) {
    line.clear();
    RenderEvent(events_[i], &line);
    if (i + 1 < events_.size()) line.push_back(',');
    line.push_back('\n');
    sink(line);
  }
  sink("],\"displayTimeUnit\":\"ms\"}\n");
}

std::string Tracer::DumpChromeTrace() const {
  std::string out;
  out.reserve(events_.size() * 128 + 256);
  RenderTo([&out](const std::string& chunk) { out.append(chunk); });
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  util::BufferedWriter writer;
  BB_RETURN_IF_ERROR(writer.Open(path));
  RenderTo([&writer](const std::string& chunk) { writer.Append(chunk); });
  return writer.Close();
}

}  // namespace bb::obs
