// FlightRecorder: the black box. A per-node bounded ring of compact,
// virtual-time-stamped records — message send/recv/drop keyed by the
// deterministic Message.seq the Tracer already uses for flow arrows,
// consensus phase/view transitions, block seal/commit/fork-switch,
// timer fires, and fault-schedule edges (crash/recover/partition/heal).
//
// One FlightRecorder serves one sim::Simulation, attached through the
// non-owning Simulation::set_recorder pointer exactly like set_tracer:
// disabled mode costs one pointer test per hook site, and the recording
// methods are inline so bb_sim (below bb_obs in the link graph) can
// record without a link-time dependency.
//
// Unlike the Tracer, the recorder is bounded: each node keeps only the
// last `ring_capacity` records (evicted counts are reported), so it can
// stay armed for a multi-minute adversarial run at O(nodes) memory.
//
// On an audit violation (or on request) the rings serialize to a
// `blockbench-blackbox-v1` JSON document embedding the run's full
// configuration (RunSpec) — enough for `bbench --replay=FILE` to re-run
// it deterministically — plus a *causal slice*: a backward traversal
// from the violation site through recv->send flow edges and bounded
// program order down to the event set that produced it. All content is
// virtual-time data, so dumps are byte-identical across runs and across
// sweep --jobs values. See docs/OBSERVABILITY.md.

#ifndef BLOCKBENCH_OBS_RECORDER_H_
#define BLOCKBENCH_OBS_RECORDER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace bb::obs {

class MetricsRegistry;

/// The run configuration a blackbox dump embeds — every knob needed to
/// re-run the recorded experiment bit-for-bit through bbench --replay.
/// bbench fills it from its CLI args; the bench harness fills it from a
/// MacroConfig (the three seeds differ between the two front ends, so
/// all three are recorded explicitly).
struct RunSpec {
  std::string platform = "hyperledger";  // registry name or stack spec
  std::string workload = "ycsb";
  uint64_t servers = 8;  // per shard when the spec carries @shards=
  uint64_t clients = 8;
  double cross_shard = 0;
  double rate = 100;
  double duration = 120;
  double warmup = 10;
  double drain = 30;
  uint64_t max_outstanding = 0;
  uint64_t seed = 42;           // Simulation seed
  uint64_t platform_seed = 42;  // MakePlatform seed
  uint64_t driver_seed = 42;    // DriverConfig seed
  /// 0 = the workload's own default preload size.
  uint64_t ycsb_records = 0;
  uint64_t smallbank_accounts = 0;
  std::vector<std::pair<uint64_t, double>> crashes;  // (server, time)
  double partition_start = -1, partition_end = -1;   // < 0 = none
  double delay = 0;
  double corrupt = 0;

  util::Json ToJson() const;
  static Result<RunSpec> FromJson(const util::Json& run);
};

/// Why a dump was written: "audit_violation" carries the first violated
/// invariant, "explicit" means --blackbox / a test asked for it.
struct BlackboxTrigger {
  std::string kind = "explicit";
  std::string invariant;
  std::string detail;
};

class FlightRecorder {
 public:
  enum class Kind : uint8_t {
    kSend = 0,    // id=Message.seq, peer=to, aux=size_bytes
    kRecv,        // id=Message.seq, peer=from, aux=size_bytes
    kDrop,        // id=Message.seq, peer=other end, aux: 0=at send, 1=in flight
    kPhase,       // consensus transition; id/aux are phase-specific
    kTimer,       // a timeout fired and changed behaviour; id=view/round/...
    kSeal,        // id=height, aux=block-hash prefix
    kCommit,      // id=height, aux=block-hash prefix (canonical execution)
    kForkSwitch,  // id=new head height, aux=rewind depth
    kCrash,       // fault-schedule edges; aux=partition side for kPartition
    kRecover,
    kPartition,
    kHeal,
  };
  static constexpr size_t kNumKinds = 12;
  /// Inline so the bb_sim fault hooks (below bb_obs in the link graph)
  /// can name their records without a link-time dependency.
  static const char* KindName(Kind k) {
    static const char* const kNames[kNumKinds] = {
        "send",   "recv",        "drop",  "phase",   "timer",     "seal",
        "commit", "fork_switch", "crash", "recover", "partition", "heal",
    };
    return kNames[size_t(k)];
  }
  /// -1 when the string names no kind (validator input).
  static int KindFromName(const std::string& name);

  struct Record {
    double t = 0;
    uint64_t id = 0;
    uint64_t aux = 0;
    uint32_t peer = kNoPeer;
    uint32_t name = 0;  // index into the interned name table
    Kind kind = Kind::kPhase;
  };
  static constexpr uint32_t kNoPeer = 0xffffffffu;
  static constexpr size_t kDefaultRingCapacity = 4096;
  /// Causal-slice size cap ("minimal" is bounded, not exhaustive).
  static constexpr size_t kMaxSliceRecords = 512;

  explicit FlightRecorder(size_t ring_capacity = kDefaultRingCapacity)
      : capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

  // --- Recording (hot path when enabled; inline for bb_sim) --------------

  void MsgSend(uint32_t node, double t, uint64_t seq, uint32_t to,
               const std::string& type, uint64_t bytes) {
    Push(node, Record{t, seq, bytes, to, Intern(type), Kind::kSend});
  }
  void MsgRecv(uint32_t node, double t, uint64_t seq, uint32_t from,
               const std::string& type, uint64_t bytes) {
    Push(node, Record{t, seq, bytes, from, Intern(type), Kind::kRecv});
  }
  /// in_flight=false: dropped at send time (crashed end, partition, loss,
  /// full inbox); true: dropped at delivery time (state changed mid-hop).
  void MsgDrop(uint32_t node, double t, uint64_t seq, uint32_t peer,
               const std::string& type, bool in_flight) {
    Push(node,
         Record{t, seq, in_flight ? 1u : 0u, peer, Intern(type), Kind::kDrop});
  }
  /// A consensus phase/view transition ("pbft.view_change", ...).
  void Phase(uint32_t node, double t, const char* name, uint64_t id = 0,
             uint64_t aux = 0) {
    Push(node, Record{t, id, aux, kNoPeer, Intern(name), Kind::kPhase});
  }
  /// A timer that fired AND changed behaviour (view change started,
  /// round advanced, election called, 2PC decision timed out).
  void Timer(uint32_t node, double t, const char* name, uint64_t id = 0) {
    Push(node, Record{t, id, 0, kNoPeer, Intern(name), Kind::kTimer});
  }
  void Seal(uint32_t node, double t, uint64_t height, uint64_t hash_prefix) {
    Push(node,
         Record{t, height, hash_prefix, kNoPeer, Intern("block.seal"),
                Kind::kSeal});
  }
  void Commit(uint32_t node, double t, uint64_t height, uint64_t hash_prefix) {
    Push(node,
         Record{t, height, hash_prefix, kNoPeer, Intern("block.commit"),
                Kind::kCommit});
  }
  void ForkSwitch(uint32_t node, double t, uint64_t height,
                  uint64_t rewind_depth) {
    Push(node,
         Record{t, height, rewind_depth, kNoPeer, Intern("chain.fork_switch"),
                Kind::kForkSwitch});
  }
  /// Fault-schedule edge; `kind` must be kCrash/kRecover/kPartition/kHeal.
  void Fault(Kind kind, uint32_t node, double t, uint64_t aux = 0) {
    Push(node, Record{t, 0, aux, kNoPeer, Intern(KindName(kind)), kind});
  }

  // --- Replay breakpoint --------------------------------------------------

  /// bbench --until=TIME,SEQ: the network hook requests a simulation
  /// stop as soon as message seq `seq` has been sent. 0 = no breakpoint.
  void set_break_seq(uint64_t seq) { break_seq_ = seq; }
  uint64_t break_seq() const { return break_seq_; }

  // --- Introspection ------------------------------------------------------

  size_t ring_capacity() const { return capacity_; }
  size_t num_nodes() const { return rings_.size(); }
  /// Everything ever pushed for `node` (including evicted records).
  uint64_t recorded(uint32_t node) const {
    return node < rings_.size() ? rings_[node].total : 0;
  }
  uint64_t evicted(uint32_t node) const {
    uint64_t n = recorded(node);
    return n > capacity_ ? n - capacity_ : 0;
  }
  size_t ring_size(uint32_t node) const {
    return node < rings_.size() ? rings_[node].buf.size() : 0;
  }
  /// The i-th oldest surviving record on `node`'s ring.
  const Record& At(uint32_t node, size_t i) const;
  const std::string& Name(uint32_t idx) const { return names_[idx]; }
  size_t num_names() const { return names_.size(); }

  // --- Export -------------------------------------------------------------

  /// Per-node ring occupancy and eviction gauges ("recorder.ring_size",
  /// "recorder.recorded", "recorder.evicted", labelled {node=i}), so
  /// eviction pressure is visible in any metrics snapshot without
  /// writing a blackbox dump. Ring capacity rides along unlabelled.
  void ExportMetrics(MetricsRegistry* reg) const;

  /// The blockbench-blackbox-v1 document: run spec, trigger, the full
  /// rings, and the causal slice. Deterministic member order; contains
  /// no wall-clock data, so it is byte-identical across runs and --jobs.
  util::Json ToJson(const RunSpec& run, const BlackboxTrigger& trigger) const;
  Status WriteJson(const std::string& path, const RunSpec& run,
                   const BlackboxTrigger& trigger) const;

 private:
  struct Ring {
    std::vector<Record> buf;  // wraps at capacity_; oldest = total % cap
    uint64_t total = 0;
  };

  uint32_t Intern(const std::string& name) {
    auto [it, inserted] = name_idx_.emplace(name, uint32_t(names_.size()));
    if (inserted) names_.push_back(name);
    return it->second;
  }
  uint32_t Intern(const char* name) { return Intern(std::string(name)); }

  void Push(uint32_t node, Record r) {
    if (node >= rings_.size()) rings_.resize(node + 1);
    Ring& g = rings_[node];
    if (g.buf.size() < capacity_) {
      g.buf.push_back(r);
    } else {
      g.buf[g.total % capacity_] = r;
    }
    ++g.total;
  }

  util::Json SliceToJson() const;

  size_t capacity_;
  std::vector<Ring> rings_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> name_idx_;
  uint64_t break_seq_ = 0;
};

/// Structural validation of a parsed blockbench-blackbox-v1 document
/// (schema tag, run spec completeness, ring/record shape, name-table
/// references, per-node time monotonicity, causal-slice shape).
Status ValidateBlackbox(const util::Json& doc);

/// Per-node record/eviction summary plus the trigger line.
std::string RenderBlackboxSummary(const util::Json& doc);

/// The interleaved cross-node timeline, newest records last; at most
/// `limit` lines (0 = everything). Causal-slice records are marked '*'.
std::string RenderBlackboxTimeline(const util::Json& doc, size_t limit);

/// Names the first height at which two nodes' committed views diverge
/// ("" when every commit agrees and no fork switch was recorded).
std::string FirstDivergence(const util::Json& doc);

}  // namespace bb::obs

#endif  // BLOCKBENCH_OBS_RECORDER_H_
