#include "obs/auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace bb::obs {

namespace {

/// One distinct block in the global fork tree, with which nodes saw it.
struct TreeBlock {
  AuditBlock block;
  std::set<uint32_t> seen_by;
  std::set<uint32_t> canonical_on;
};

std::string Shorten(const std::string& hash) {
  return hash.size() > 12 ? hash.substr(0, 12) : hash;
}

}  // namespace

AuditReport Auditor::RunGroup(
    const std::vector<const NodeChainView*>& views) const {
  AuditReport rep;
  AuditorConfig cfg = config_;
  // All maps are keyed by hash (or height); iteration order is sorted,
  // which is what makes the report deterministic.
  std::map<std::string, TreeBlock> tree;
  std::string genesis = views.empty() ? "" : views.front()->genesis;

  auto violate = [&rep](const char* invariant, std::string detail) {
    rep.violations.push_back(AuditViolation{invariant, std::move(detail)});
  };

  // --- Merge every view into the global tree ------------------------------
  for (const NodeChainView* vp : views) {
    const NodeChainView& v = *vp;
    if (v.genesis != genesis) {
      violate("view_consistency",
              "node " + std::to_string(v.node) + " roots at genesis " +
                  Shorten(v.genesis) + ", node " +
                  std::to_string(views.front()->node) + " at " +
                  Shorten(genesis));
    }
    for (const AuditBlock& b : v.blocks) {
      auto [it, inserted] = tree.emplace(b.hash, TreeBlock{b, {}, {}});
      TreeBlock& tb = it->second;
      if (!inserted && (tb.block.parent != b.parent ||
                        tb.block.height != b.height)) {
        violate("view_consistency",
                "block " + Shorten(b.hash) + " has conflicting "
                "parent/height across nodes");
      }
      tb.seen_by.insert(v.node);
      if (b.canonical) tb.canonical_on.insert(v.node);
    }
  }
  rep.distinct_blocks = tree.size();

  // --- Structural invariant: heights follow parents -----------------------
  for (const auto& [hash, tb] : tree) {
    const AuditBlock& b = tb.block;
    if (b.parent == genesis) {
      if (b.height != 1) {
        violate("height_continuity", "block " + Shorten(hash) +
                                         " extends genesis at height " +
                                         std::to_string(b.height));
      }
      continue;
    }
    auto parent = tree.find(b.parent);
    if (parent == tree.end()) {
      violate("height_continuity", "block " + Shorten(hash) +
                                       " has unknown parent " +
                                       Shorten(b.parent));
    } else if (b.height != parent->second.block.height + 1) {
      violate("height_continuity",
              "block " + Shorten(hash) + " at height " +
                  std::to_string(b.height) + " extends a parent at height " +
                  std::to_string(parent->second.block.height));
    }
  }

  // --- Per-node canonical chains ------------------------------------------
  // node -> (height -> hash), plus structural checks on each chain.
  std::map<uint32_t, std::map<uint64_t, std::string>> canon;
  for (const NodeChainView* vp : views) {
    const NodeChainView& v = *vp;
    std::map<uint64_t, std::string>& chain = canon[v.node];
    for (const AuditBlock& b : v.blocks) {
      if (!b.canonical) continue;
      auto [it, inserted] = chain.emplace(b.height, b.hash);
      if (!inserted) {
        violate("canonical_completeness",
                "node " + std::to_string(v.node) + " has two canonical "
                "blocks at height " + std::to_string(b.height));
      }
    }
    if (chain.size() != v.head_height) {
      violate("canonical_completeness",
              "node " + std::to_string(v.node) + " head height " +
                  std::to_string(v.head_height) + " but " +
                  std::to_string(chain.size()) + " canonical blocks");
    }
    for (uint64_t h = 1; h <= v.head_height; ++h) {
      if (chain.find(h) == chain.end()) {
        violate("canonical_completeness",
                "node " + std::to_string(v.node) +
                    " canonical chain has a gap at height " +
                    std::to_string(h));
        break;  // one gap report per node is enough
      }
    }
  }

  // --- Reference chain: heaviest canonical chain among live nodes ---------
  // (falls back to all nodes when everything crashed). This is the chain
  // an honest client would follow at run end.
  const NodeChainView* ref_view = nullptr;
  uint64_t ref_weight = 0;
  for (const NodeChainView* vp : views) {
    const NodeChainView& v = *vp;
    if (v.crashed) continue;
    uint64_t w = 0;
    for (const AuditBlock& b : v.blocks) {
      if (b.canonical) w += b.weight;
    }
    if (ref_view == nullptr || w > ref_weight ||
        (w == ref_weight && v.head_height > ref_view->head_height)) {
      ref_view = &v;
      ref_weight = w;
    }
  }
  if (ref_view == nullptr && !views.empty()) ref_view = views.front();

  std::set<std::string> agreed;  // hashes on the reference chain
  if (ref_view != nullptr) {
    for (const AuditBlock& b : ref_view->blocks) {
      if (b.canonical) agreed.insert(b.hash);
    }
  }
  rep.agreed_blocks = agreed.size();
  rep.forked_blocks = rep.distinct_blocks - rep.agreed_blocks;
  rep.forked_pct = rep.distinct_blocks > 0
                       ? 100.0 * double(rep.forked_blocks) /
                             double(rep.distinct_blocks)
                       : 0.0;

  // --- Fork-tree shape ----------------------------------------------------
  std::map<std::string, uint64_t> child_count;
  for (const auto& [hash, tb] : tree) ++child_count[tb.block.parent];
  for (const auto& [parent, n] : child_count) {
    if (n > 1) ++rep.fork_points;
  }
  // Branch roots: forked blocks extending the agreed chain (or genesis).
  // Depth via heights: blocks sorted by (height, hash) see their parent
  // first, so one pass computes each forked block's branch depth.
  std::map<std::string, uint64_t> branch_depth;
  std::vector<const TreeBlock*> by_height;
  by_height.reserve(tree.size());
  for (const auto& [hash, tb] : tree) by_height.push_back(&tb);
  std::stable_sort(by_height.begin(), by_height.end(),
                   [](const TreeBlock* a, const TreeBlock* b) {
                     return a->block.height < b->block.height;
                   });
  for (const TreeBlock* tb : by_height) {
    const AuditBlock& b = tb->block;
    if (agreed.count(b.hash) != 0) continue;
    rep.wasted_weight += b.weight;
    auto parent_depth = branch_depth.find(b.parent);
    if (parent_depth == branch_depth.end()) {
      // Parent is agreed or genesis: this block starts a branch.
      branch_depth[b.hash] = 1;
      ++rep.branches;
    } else {
      branch_depth[b.hash] = parent_depth->second + 1;
    }
    rep.max_branch_depth = std::max(rep.max_branch_depth,
                                    branch_depth[b.hash]);
  }

  // --- Per-node summaries and divergence ----------------------------------
  for (const NodeChainView* vp : views) {
    const NodeChainView& v = *vp;
    AuditReport::NodeSummary ns;
    ns.node = v.node;
    ns.crashed = v.crashed;
    ns.head_height = v.head_height;
    ns.known_blocks = v.blocks.size();
    for (const AuditBlock& b : v.blocks) {
      if (b.canonical) ++ns.canonical_blocks;
    }
    ns.forked_blocks = ns.known_blocks - ns.canonical_blocks;
    ns.reorgs = v.reorgs;
    // Walk the head's ancestry until it joins the reference chain.
    std::string cursor = v.head;
    while (cursor != genesis && agreed.count(cursor) == 0) {
      auto it = tree.find(cursor);
      if (it == tree.end()) break;  // already reported as discontinuity
      ++ns.divergence_depth;
      cursor = it->second.block.parent;
    }
    rep.nodes.push_back(ns);
  }
  std::sort(rep.nodes.begin(), rep.nodes.end(),
            [](const AuditReport::NodeSummary& a,
               const AuditReport::NodeSummary& b) { return a.node < b.node; });

  // --- Over-time series ---------------------------------------------------
  double span = cfg.end_time;
  for (const auto& [hash, tb] : tree) {
    span = std::max(span, tb.block.timestamp);
  }
  size_t bins = cfg.series_bin > 0 ? size_t(span / cfg.series_bin) + 1 : 0;
  rep.sealed_per_bin.assign(bins, 0);
  rep.forked_per_bin.assign(bins, 0);
  if (bins > 0) {
    for (const auto& [hash, tb] : tree) {
      size_t bin = std::min(bins - 1,
                            size_t(tb.block.timestamp / cfg.series_bin));
      ++rep.sealed_per_bin[bin];
      if (agreed.count(hash) == 0) ++rep.forked_per_bin[bin];
    }
  }

  // --- Recovery gap after the heal ----------------------------------------
  if (cfg.heal_time >= 0) {
    double first = -1;
    for (const std::string& hash : agreed) {
      const TreeBlock& tb = tree.at(hash);
      if (tb.block.timestamp >= cfg.heal_time &&
          (first < 0 || tb.block.timestamp < first)) {
        first = tb.block.timestamp;
      }
    }
    rep.first_seal_after_heal = first;
    rep.recovery_gap = first >= 0 ? first - cfg.heal_time : -1;
  }

  // --- Safety invariants over confirmed state -----------------------------
  // Conflicting finality: two live nodes each confirmed a different
  // block at one height — the realized double-spend of Fig 10.
  std::map<uint64_t, std::set<std::string>> confirmed_at;
  for (const NodeChainView* vp : views) {
    const NodeChainView& v = *vp;
    if (v.crashed) continue;
    uint64_t confirmed = v.head_height > cfg.confirmation_depth
                             ? v.head_height - cfg.confirmation_depth
                             : 0;
    const std::map<uint64_t, std::string>& chain = canon[v.node];
    for (const auto& [h, hash] : chain) {
      if (h <= confirmed) confirmed_at[h].insert(hash);
    }
  }
  uint64_t conflicting_heights = 0;
  std::string first_conflict;
  for (const auto& [h, hashes] : confirmed_at) {
    if (hashes.size() > 1) {
      if (conflicting_heights == 0) {
        first_conflict = "height " + std::to_string(h) + ": " +
                         Shorten(*hashes.begin()) + " vs " +
                         Shorten(*std::next(hashes.begin()));
      }
      ++conflicting_heights;
    }
  }
  if (conflicting_heights > 0) {
    violate("conflicting_finality",
            std::to_string(conflicting_heights) +
                " height(s) with two confirmed blocks on live nodes, "
                "first at " + first_conflict);
  }

  // Confirmed-fork depth: a branch that outgrew the confirmation depth
  // means blocks confirmed during the run were discarded later, even if
  // the final views now agree.
  if (rep.max_branch_depth > cfg.confirmation_depth &&
      rep.forked_blocks > 0) {
    violate("confirmed_fork_depth",
            "a fork branch reached depth " +
                std::to_string(rep.max_branch_depth) +
                " > confirmation depth " +
                std::to_string(cfg.confirmation_depth) +
                ": confirmed blocks were discarded (double-spend window)");
  }

  // Post-heal agreement: once the partition healed, every live node must
  // be back on the agreed chain (up to normal tip lag).
  if (cfg.heal_time >= 0) {
    for (const AuditReport::NodeSummary& ns : rep.nodes) {
      if (ns.crashed) continue;
      if (ns.divergence_depth > cfg.confirmation_depth) {
        violate("post_heal_agreement",
                "node " + std::to_string(ns.node) + " still diverges by " +
                    std::to_string(ns.divergence_depth) +
                    " blocks after the heal");
      }
    }
  }

  return rep;
}

AuditReport Auditor::Run() const {
  std::vector<const NodeChainView*> all;
  all.reserve(views_.size());
  for (const NodeChainView& v : views_) all.push_back(&v);
  if (config_.num_shards <= 1) return RunGroup(all);

  // Shards grow independent chains off the shared genesis, so the
  // structural audit runs per consensus group — one shard's blocks are
  // not forks of another's — and the results merge into one report.
  std::map<uint32_t, std::vector<const NodeChainView*>> groups;
  for (const NodeChainView& v : views_) groups[v.shard].push_back(&v);
  AuditReport rep;
  for (auto& [shard, group] : groups) {
    AuditReport sub = RunGroup(group);
    rep.distinct_blocks += sub.distinct_blocks;
    rep.agreed_blocks += sub.agreed_blocks;
    rep.forked_blocks += sub.forked_blocks;
    rep.fork_points += sub.fork_points;
    rep.branches += sub.branches;
    rep.max_branch_depth = std::max(rep.max_branch_depth,
                                    sub.max_branch_depth);
    rep.wasted_weight += sub.wasted_weight;
    rep.nodes.insert(rep.nodes.end(), sub.nodes.begin(), sub.nodes.end());
    if (sub.sealed_per_bin.size() > rep.sealed_per_bin.size()) {
      rep.sealed_per_bin.resize(sub.sealed_per_bin.size(), 0);
      rep.forked_per_bin.resize(sub.sealed_per_bin.size(), 0);
    }
    for (size_t i = 0; i < sub.sealed_per_bin.size(); ++i) {
      rep.sealed_per_bin[i] += sub.sealed_per_bin[i];
    }
    for (size_t i = 0; i < sub.forked_per_bin.size(); ++i) {
      rep.forked_per_bin[i] += sub.forked_per_bin[i];
    }
    if (sub.first_seal_after_heal >= 0 &&
        (rep.first_seal_after_heal < 0 ||
         sub.first_seal_after_heal < rep.first_seal_after_heal)) {
      rep.first_seal_after_heal = sub.first_seal_after_heal;
      rep.recovery_gap = sub.recovery_gap;
    }
    for (AuditViolation& viol : sub.violations) {
      viol.detail = "shard " + std::to_string(shard) + ": " + viol.detail;
      rep.violations.push_back(std::move(viol));
    }
  }
  rep.forked_pct =
      rep.distinct_blocks > 0
          ? 100.0 * double(rep.forked_blocks) / double(rep.distinct_blocks)
          : 0.0;
  std::sort(rep.nodes.begin(), rep.nodes.end(),
            [](const AuditReport::NodeSummary& a,
               const AuditReport::NodeSummary& b) { return a.node < b.node; });
  CheckCrossShardAtomicity(&rep);
  return rep;
}

void Auditor::CheckCrossShardAtomicity(AuditReport* rep) const {
  // Replay the sealed 2PC records from one live replica per shard (all
  // replicas in a shard agree — that is the per-shard audit's job) and
  // check every decision resolved the same way on every participant.
  std::map<uint32_t, const NodeChainView*> shard_rep;
  for (const NodeChainView& v : views_) {
    auto [it, inserted] = shard_rep.emplace(v.shard, &v);
    if (!inserted && it->second->crashed && !v.crashed) it->second = &v;
  }

  struct Decision {
    std::vector<uint32_t> participants;
    std::map<uint32_t, std::string> outcome;  // shard -> latest phase
    double prepare_time = 0;
  };
  std::map<uint64_t, Decision> decisions;
  for (const auto& [shard, view] : shard_rep) {
    for (const XsRecord& r : view->xs_records) {
      Decision& d = decisions[r.base_id];
      if (r.phase == "prepare") {
        if (d.participants.empty()) d.participants = r.participants;
        d.prepare_time = std::max(d.prepare_time, r.timestamp);
        d.outcome.emplace(shard, "prepare");  // keep commit/abort if seen
      } else {
        d.outcome[shard] = r.phase;
      }
    }
  }

  auto violate = [rep](std::string detail) {
    rep->violations.push_back(
        AuditViolation{"cross_shard_atomicity", std::move(detail)});
  };
  for (const auto& [id, d] : decisions) {
    ++rep->xs_decisions;
    std::vector<uint32_t> participants = d.participants;
    if (participants.empty()) {
      for (const auto& [shard, phase] : d.outcome) {
        participants.push_back(shard);
      }
    }
    size_t commits = 0, aborts = 0;
    std::string detail;
    for (uint32_t shard : participants) {
      auto it = d.outcome.find(shard);
      std::string phase = it == d.outcome.end() ? "missing" : it->second;
      if (phase == "commit") ++commits;
      if (phase == "abort") ++aborts;
      if (!detail.empty()) detail += ", ";
      detail += "shard " + std::to_string(shard) + "=" + phase;
    }
    const bool in_grace = d.prepare_time > config_.end_time - config_.xs_grace;
    if (commits > 0 && aborts > 0) {
      violate("transaction " + std::to_string(id) +
              " decided both ways: " + detail);
    } else if (commits == participants.size()) {
      ++rep->xs_committed;
    } else if (commits > 0) {
      // Partially sealed commit: legitimate only while the remaining
      // participants' commit blocks can still be in flight.
      if (in_grace) {
        ++rep->xs_in_flight;
      } else {
        violate("transaction " + std::to_string(id) +
                " committed on a strict subset of participants: " + detail);
      }
    } else if (aborts > 0) {
      ++rep->xs_aborted;
    } else if (in_grace) {
      ++rep->xs_in_flight;
    } else {
      violate("transaction " + std::to_string(id) +
              " prepared but never decided: " + detail);
    }
  }
}

util::Json AuditReport::ToJson(const AuditorConfig& config) const {
  util::Json doc = util::Json::Object();
  doc.Set("schema", "blockbench-audit-v1");

  util::Json cfg = util::Json::Object();
  cfg.Set("confirmation_depth", config.confirmation_depth);
  cfg.Set("heal_time", config.heal_time);
  cfg.Set("end_time", config.end_time);
  cfg.Set("series_bin", config.series_bin);
  if (config.num_shards > 1) {
    // Sharded-only members keep the unsharded document byte-identical
    // (its SHA-256 is pinned by golden tests).
    cfg.Set("num_shards", uint64_t(config.num_shards));
    cfg.Set("xs_grace", config.xs_grace);
  }
  doc.Set("config", std::move(cfg));

  util::Json tree = util::Json::Object();
  tree.Set("distinct_blocks", distinct_blocks);
  tree.Set("agreed_blocks", agreed_blocks);
  tree.Set("forked_blocks", forked_blocks);
  tree.Set("forked_pct", forked_pct);
  tree.Set("fork_points", fork_points);
  tree.Set("branches", branches);
  tree.Set("max_branch_depth", max_branch_depth);
  tree.Set("wasted_weight", wasted_weight);
  doc.Set("fork_tree", std::move(tree));

  util::Json nodes_json = util::Json::Array();
  for (const NodeSummary& ns : nodes) {
    util::Json n = util::Json::Object();
    n.Set("node", uint64_t(ns.node));
    n.Set("crashed", ns.crashed);
    n.Set("head_height", ns.head_height);
    n.Set("known_blocks", ns.known_blocks);
    n.Set("canonical_blocks", ns.canonical_blocks);
    n.Set("forked_blocks", ns.forked_blocks);
    n.Set("reorgs", ns.reorgs);
    n.Set("divergence_depth", ns.divergence_depth);
    nodes_json.Push(std::move(n));
  }
  doc.Set("nodes", std::move(nodes_json));

  util::Json series = util::Json::Object();
  series.Set("bin_seconds", config.series_bin);
  util::Json sealed = util::Json::Array();
  for (uint64_t v : sealed_per_bin) sealed.Push(v);
  series.Set("sealed", std::move(sealed));
  util::Json forked = util::Json::Array();
  for (uint64_t v : forked_per_bin) forked.Push(v);
  series.Set("forked", std::move(forked));
  doc.Set("series", std::move(series));

  util::Json recovery = util::Json::Object();
  recovery.Set("heal_time", config.heal_time);
  recovery.Set("first_seal_after_heal", first_seal_after_heal);
  recovery.Set("gap_seconds", recovery_gap);
  doc.Set("recovery", std::move(recovery));

  if (config.num_shards > 1) {
    util::Json xs = util::Json::Object();
    xs.Set("decisions", xs_decisions);
    xs.Set("committed", xs_committed);
    xs.Set("aborted", xs_aborted);
    xs.Set("in_flight", xs_in_flight);
    doc.Set("cross_shard", std::move(xs));
  }

  util::Json invariants = util::Json::Object();
  util::Json checked = util::Json::Array();
  for (const char* name :
       {"view_consistency", "height_continuity", "canonical_completeness",
        "conflicting_finality", "confirmed_fork_depth",
        "post_heal_agreement"}) {
    checked.Push(name);
  }
  if (config.num_shards > 1) checked.Push("cross_shard_atomicity");
  invariants.Set("checked", std::move(checked));
  util::Json violations_json = util::Json::Array();
  for (const AuditViolation& v : violations) {
    util::Json vj = util::Json::Object();
    vj.Set("invariant", v.invariant);
    vj.Set("detail", v.detail);
    violations_json.Push(std::move(vj));
  }
  invariants.Set("violations", std::move(violations_json));
  doc.Set("invariants", std::move(invariants));
  doc.Set("ok", ok());
  return doc;
}

std::string AuditReport::RenderTable() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  blocks sealed %llu, agreed %llu, forked %llu (%.1f%%)\n",
                (unsigned long long)distinct_blocks,
                (unsigned long long)agreed_blocks,
                (unsigned long long)forked_blocks, forked_pct);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  fork points %llu, branches %llu (max depth %llu), "
                "wasted weight %llu\n",
                (unsigned long long)fork_points, (unsigned long long)branches,
                (unsigned long long)max_branch_depth,
                (unsigned long long)wasted_weight);
  out += buf;
  uint64_t max_div = 0;
  for (const NodeSummary& ns : nodes) {
    max_div = std::max(max_div, ns.divergence_depth);
  }
  std::snprintf(buf, sizeof(buf), "  max node divergence %llu block(s)\n",
                (unsigned long long)max_div);
  out += buf;
  if (xs_decisions > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  cross-shard: %llu decision(s), %llu committed, "
                  "%llu aborted, %llu in flight\n",
                  (unsigned long long)xs_decisions,
                  (unsigned long long)xs_committed,
                  (unsigned long long)xs_aborted,
                  (unsigned long long)xs_in_flight);
    out += buf;
  }
  if (recovery_gap >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "  recovery: first agreed block %.1f s after the heal\n",
                  recovery_gap);
    out += buf;
  } else if (first_seal_after_heal < 0 && recovery_gap < 0 &&
             !nodes.empty() && violations.empty()) {
    // Nothing to report: either no heal was configured or no block
    // committed afterwards; the JSON carries the distinction.
  }
  if (violations.empty()) {
    out += "  invariants: all OK\n";
  } else {
    std::snprintf(buf, sizeof(buf), "  invariants: %zu VIOLATION(S)\n",
                  violations.size());
    out += buf;
    for (const AuditViolation& v : violations) {
      out += "    [" + v.invariant + "] " + v.detail + "\n";
    }
  }
  return out;
}

}  // namespace bb::obs
