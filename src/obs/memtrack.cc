#include "obs/memtrack.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/bufwriter.h"

namespace bb::obs {

namespace {

std::string FormatBytes(double b) {
  char buf[32];
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", b);
  }
  return buf;
}

util::Json CounterToJson(const MemTracker::Counter& c, bool peak_is_sum) {
  util::Json j = util::Json::Object();
  j.Set("current", c.current);
  j.Set(peak_is_sum ? "peak_sum" : "peak", c.peak);
  if (!peak_is_sum) j.Set("peak_at", c.peak_at);
  j.Set("allocs", c.allocs);
  j.Set("frees", c.frees);
  return j;
}

/// Reads one counter object back; field naming as in CounterToJson.
bool CounterFromJson(const util::Json& j, MemTracker::Counter* c,
                     bool peak_is_sum) {
  if (!j.is_object()) return false;
  const util::Json* cur = j.Get("current");
  const util::Json* peak = j.Get(peak_is_sum ? "peak_sum" : "peak");
  const util::Json* allocs = j.Get("allocs");
  const util::Json* frees = j.Get("frees");
  if (cur == nullptr || !cur->is_number() || peak == nullptr ||
      !peak->is_number() || allocs == nullptr || !allocs->is_number() ||
      frees == nullptr || !frees->is_number()) {
    return false;
  }
  c->current = cur->AsUint();
  c->peak = peak->AsUint();
  c->allocs = allocs->AsUint();
  c->frees = frees->AsUint();
  if (const util::Json* at = j.Get("peak_at")) c->peak_at = at->AsDouble();
  return true;
}

}  // namespace

namespace mem {

int SubsystemFromName(const std::string& name) {
  for (uint8_t s = 0; s < kNumSubsystems; ++s) {
    if (name == SubsystemName(s)) return int(s);
  }
  return -1;
}

}  // namespace mem

util::Json MemTracker::ToJson() const {
  util::Json doc = util::Json::Object();
  doc.Set("schema", "blockbench-mem-v1");
  doc.Set("committed_txs", committed_);
  doc.Set("cluster", CounterToJson(cluster_, false));
  doc.Set("bytes_per_committed_tx",
          committed_ > 0 ? double(cluster_.peak) / double(committed_) : 0.0);

  // Aggregate per-subsystem column sums across every node (real +
  // global). "peak_sum" is the sum of per-node HWMs — an attribution
  // weight, not a concurrent HWM (that is cluster.peak).
  Counter agg[mem::kNumSubsystems];
  auto fold = [&agg](const NodeCounters& nc) {
    for (uint8_t s = 0; s < mem::kNumSubsystems; ++s) {
      agg[s].current += nc.subsys[s].current;
      agg[s].peak += nc.subsys[s].peak;
      agg[s].allocs += nc.subsys[s].allocs;
      agg[s].frees += nc.subsys[s].frees;
    }
  };
  for (const NodeCounters& nc : nodes_) fold(nc);
  fold(global_);
  util::Json subsystems = util::Json::Array();
  for (uint8_t s = 0; s < mem::kNumSubsystems; ++s) {
    const util::Json row = CounterToJson(agg[s], true);
    util::Json named = util::Json::Object();
    named.Set("subsystem", mem::SubsystemName(s));
    for (const auto& [k, v] : row.members()) named.Set(k, v);
    subsystems.Push(std::move(named));
  }
  doc.Set("subsystems", std::move(subsystems));

  // Per-node sections in node-id order, the shared "global" owner last.
  // Every node gets the full fixed-width subsystem array so the document
  // shape is independent of which subsystems happened to be touched.
  util::Json nodes = util::Json::Array();
  auto node_json = [](const util::Json& id, const NodeCounters& nc) {
    util::Json n = util::Json::Object();
    n.Set("node", id);
    n.Set("total", CounterToJson(nc.total, false));
    util::Json per = util::Json::Array();
    for (uint8_t s = 0; s < mem::kNumSubsystems; ++s) {
      util::Json row = util::Json::Object();
      row.Set("subsystem", mem::SubsystemName(s));
      const util::Json counter = CounterToJson(nc.subsys[s], false);
      for (const auto& [k, v] : counter.members()) row.Set(k, v);
      per.Push(std::move(row));
    }
    n.Set("subsystems", std::move(per));
    return n;
  };
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes.Push(node_json(util::Json(uint64_t(i)), nodes_[i]));
  }
  nodes.Push(node_json(util::Json("global"), global_));
  doc.Set("nodes", std::move(nodes));
  return doc;
}

util::Json MemTracker::ToSweepJson() const {
  util::Json j = util::Json::Object();
  j.Set("cluster_peak", cluster_.peak);
  j.Set("cluster_peak_at", cluster_.peak_at);
  uint64_t peak_node_bytes = 0, peak_node = 0;
  util::Json per_node = util::Json::Array();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    uint64_t p = nodes_[i].total.peak;
    per_node.Push(p);
    if (p > peak_node_bytes) {
      peak_node_bytes = p;
      peak_node = i;
    }
  }
  j.Set("peak_node_bytes", peak_node_bytes);
  j.Set("peak_node", peak_node);
  j.Set("global_peak", global_.total.peak);
  j.Set("per_node_peak", std::move(per_node));
  util::Json subsys = util::Json::Object();
  for (uint8_t s = 0; s < mem::kNumSubsystems; ++s) {
    uint64_t sum = global_.subsys[s].peak;
    for (const NodeCounters& nc : nodes_) sum += nc.subsys[s].peak;
    subsys.Set(mem::SubsystemName(s), sum);
  }
  j.Set("subsystem_peak_sum", std::move(subsys));
  j.Set("committed_txs", committed_);
  j.Set("bytes_per_committed_tx",
        committed_ > 0 ? double(cluster_.peak) / double(committed_) : 0.0);
  return j;
}

Status MemTracker::WriteJson(const std::string& path) const {
  util::Json doc = ToJson();
  util::BufferedWriter writer;
  BB_RETURN_IF_ERROR(writer.Open(path));
  writer.Append(doc.Dump(2));
  writer.Append("\n");
  return writer.Close();
}

// --- Validation --------------------------------------------------------------

namespace {

struct ParsedNode {
  std::string label;
  MemTracker::Counter total;
  MemTracker::Counter subsys[mem::kNumSubsystems];
};

Status ParseNodes(const util::Json& dump, std::vector<ParsedNode>* out) {
  const util::Json* nodes = dump.Get("nodes");
  if (nodes == nullptr || !nodes->is_array() || nodes->size() == 0) {
    return Status::InvalidArgument("mem dump: missing nodes array");
  }
  for (const util::Json& n : nodes->items()) {
    ParsedNode pn;
    const util::Json* id = n.Get("node");
    if (id == nullptr) {
      return Status::InvalidArgument("mem dump: node without id");
    }
    pn.label = id->is_string() ? id->AsString()
                               : std::to_string(id->AsUint());
    const util::Json* total = n.Get("total");
    if (total == nullptr || !CounterFromJson(*total, &pn.total, false)) {
      return Status::InvalidArgument("mem dump: node " + pn.label +
                                     ": bad total counter");
    }
    const util::Json* per = n.Get("subsystems");
    if (per == nullptr || !per->is_array() ||
        per->size() != mem::kNumSubsystems) {
      return Status::InvalidArgument(
          "mem dump: node " + pn.label +
          ": subsystem array must have exactly " +
          std::to_string(int(mem::kNumSubsystems)) + " entries");
    }
    for (size_t i = 0; i < per->size(); ++i) {
      const util::Json& row = per->items()[i];
      const util::Json* name = row.Get("subsystem");
      if (name == nullptr || !name->is_string()) {
        return Status::InvalidArgument("mem dump: node " + pn.label +
                                       ": unnamed subsystem row");
      }
      int s = mem::SubsystemFromName(name->AsString());
      if (s != int(i)) {
        return Status::InvalidArgument(
            "mem dump: node " + pn.label + ": subsystem \"" +
            name->AsString() + "\" unknown or out of taxonomy order");
      }
      if (!CounterFromJson(row, &pn.subsys[i], false)) {
        return Status::InvalidArgument("mem dump: node " + pn.label + ": " +
                                       name->AsString() + ": bad counter");
      }
    }
    out->push_back(std::move(pn));
  }
  if (out->back().label != "global") {
    return Status::InvalidArgument(
        "mem dump: last node section must be \"global\"");
  }
  for (size_t i = 0; i + 1 < out->size(); ++i) {
    if ((*out)[i].label != std::to_string(i)) {
      return Status::InvalidArgument(
          "mem dump: real node sections must be dense and in id order");
    }
  }
  return Status::Ok();
}

Status CheckCounter(const std::string& where, const MemTracker::Counter& c) {
  if (c.current > c.peak) {
    return Status::Corruption("mem dump: " + where + ": current " +
                              std::to_string(c.current) + " exceeds peak " +
                              std::to_string(c.peak));
  }
  if (c.peak > 0 && c.allocs == 0) {
    return Status::Corruption("mem dump: " + where +
                              ": nonzero peak with zero alloc events");
  }
  return Status::Ok();
}

}  // namespace

Status ValidateMemDump(const util::Json& dump) {
  const util::Json* schema = dump.Get("schema");
  if (schema == nullptr || schema->AsString() != "blockbench-mem-v1") {
    return Status::InvalidArgument(
        "mem dump: missing schema tag blockbench-mem-v1");
  }
  std::vector<ParsedNode> nodes;
  BB_RETURN_IF_ERROR(ParseNodes(dump, &nodes));

  // Per-counter invariants plus the per-node cross-check: a node's
  // total must be the exact sum of its subsystem counters (current,
  // allocs, frees), and its concurrent-HWM total must sit between the
  // largest single subsystem peak and the sum of all of them. This is
  // what makes a tampered byte count detectable rather than cosmetic.
  for (const ParsedNode& n : nodes) {
    BB_RETURN_IF_ERROR(CheckCounter("node " + n.label + " total", n.total));
    uint64_t cur = 0, allocs = 0, frees = 0, peak_sum = 0, peak_max = 0;
    for (uint8_t s = 0; s < mem::kNumSubsystems; ++s) {
      BB_RETURN_IF_ERROR(CheckCounter(
          "node " + n.label + " " + mem::SubsystemName(s), n.subsys[s]));
      cur += n.subsys[s].current;
      allocs += n.subsys[s].allocs;
      frees += n.subsys[s].frees;
      peak_sum += n.subsys[s].peak;
      peak_max = std::max(peak_max, n.subsys[s].peak);
    }
    if (cur != n.total.current || allocs != n.total.allocs ||
        frees != n.total.frees) {
      return Status::Corruption("mem dump: node " + n.label +
                                ": total does not match subsystem sums");
    }
    if (n.total.peak < peak_max || n.total.peak > peak_sum) {
      return Status::Corruption(
          "mem dump: node " + n.label +
          ": total peak outside [max subsystem peak, subsystem peak sum]");
    }
  }

  // Aggregate section must be the exact column sums over all nodes.
  const util::Json* subsystems = dump.Get("subsystems");
  if (subsystems == nullptr || !subsystems->is_array() ||
      subsystems->size() != mem::kNumSubsystems) {
    return Status::InvalidArgument(
        "mem dump: subsystems aggregate must have exactly " +
        std::to_string(int(mem::kNumSubsystems)) + " entries");
  }
  for (uint8_t s = 0; s < mem::kNumSubsystems; ++s) {
    const util::Json& row = subsystems->items()[s];
    const util::Json* name = row.Get("subsystem");
    if (name == nullptr || name->AsString() != mem::SubsystemName(s)) {
      return Status::InvalidArgument(
          "mem dump: aggregate subsystem order must follow the taxonomy");
    }
    MemTracker::Counter agg;
    if (!CounterFromJson(row, &agg, true)) {
      return Status::InvalidArgument("mem dump: aggregate " +
                                     std::string(mem::SubsystemName(s)) +
                                     ": bad counter");
    }
    MemTracker::Counter sum;
    for (const ParsedNode& n : nodes) {
      sum.current += n.subsys[s].current;
      sum.peak += n.subsys[s].peak;
      sum.allocs += n.subsys[s].allocs;
      sum.frees += n.subsys[s].frees;
    }
    if (agg.current != sum.current || agg.peak != sum.peak ||
        agg.allocs != sum.allocs || agg.frees != sum.frees) {
      return Status::Corruption("mem dump: aggregate " +
                                std::string(mem::SubsystemName(s)) +
                                " does not match node column sums");
    }
  }

  // Cluster counter: currents sum exactly; the concurrent HWM is
  // bounded by the per-node HWMs.
  const util::Json* cluster = dump.Get("cluster");
  MemTracker::Counter cl;
  if (cluster == nullptr || !CounterFromJson(*cluster, &cl, false)) {
    return Status::InvalidArgument("mem dump: missing cluster counter");
  }
  BB_RETURN_IF_ERROR(CheckCounter("cluster", cl));
  uint64_t cur = 0, allocs = 0, frees = 0, peak_sum = 0, peak_max = 0;
  for (const ParsedNode& n : nodes) {
    cur += n.total.current;
    allocs += n.total.allocs;
    frees += n.total.frees;
    peak_sum += n.total.peak;
    peak_max = std::max(peak_max, n.total.peak);
  }
  if (cur != cl.current || allocs != cl.allocs || frees != cl.frees) {
    return Status::Corruption(
        "mem dump: cluster counter does not match node totals");
  }
  if (cl.peak < peak_max || cl.peak > peak_sum) {
    return Status::Corruption(
        "mem dump: cluster peak outside [max node peak, node peak sum]");
  }
  return Status::Ok();
}

// --- Report rendering (shared by tools/mem_report and bbench) ----------------

namespace {

struct SubsystemRow {
  std::string name;
  double current = 0, peak = 0, allocs = 0, frees = 0;
};

std::vector<SubsystemRow> AggregateRows(const util::Json& dump) {
  std::vector<SubsystemRow> rows;
  const util::Json* subsystems = dump.Get("subsystems");
  if (subsystems == nullptr || !subsystems->is_array()) return rows;
  for (const util::Json& row : subsystems->items()) {
    SubsystemRow r;
    if (const util::Json* x = row.Get("subsystem")) r.name = x->AsString();
    if (const util::Json* x = row.Get("current")) r.current = x->AsDouble();
    if (const util::Json* x = row.Get("peak_sum")) r.peak = x->AsDouble();
    if (const util::Json* x = row.Get("allocs")) r.allocs = x->AsDouble();
    if (const util::Json* x = row.Get("frees")) r.frees = x->AsDouble();
    rows.push_back(std::move(r));
  }
  return rows;
}

double ClusterPeak(const util::Json& dump) {
  if (const util::Json* c = dump.Get("cluster")) {
    if (const util::Json* p = c->Get("peak")) return p->AsDouble();
  }
  return 0;
}

std::string FormatCount(double c) {
  char buf[32];
  if (c >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", c / 1e9);
  } else if (c >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", c / 1e6);
  } else if (c >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", c / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", c);
  }
  return buf;
}

}  // namespace

std::string RenderMemAttribution(const util::Json& dump) {
  std::string out;
  char buf[256];
  std::vector<SubsystemRow> rows = AggregateRows(dump);
  double peak_sum = 0;
  for (const auto& r : rows) peak_sum += r.peak;
  std::sort(rows.begin(), rows.end(),
            [](const SubsystemRow& a, const SubsystemRow& b) {
              return a.peak > b.peak;
            });
  std::snprintf(buf, sizeof(buf), "%-22s %10s %7s %10s %10s %10s\n",
                "subsystem", "peak", "%peak", "allocs", "frees", "resident");
  out += buf;
  for (const auto& r : rows) {
    std::snprintf(buf, sizeof(buf), "%-22s %10s %6.1f%% %10s %10s %10s\n",
                  r.name.c_str(), FormatBytes(r.peak).c_str(),
                  peak_sum > 0 ? 100.0 * r.peak / peak_sum : 0.0,
                  FormatCount(r.allocs).c_str(), FormatCount(r.frees).c_str(),
                  FormatBytes(r.current).c_str());
    out += buf;
  }
  double cluster_peak = ClusterPeak(dump);
  std::snprintf(buf, sizeof(buf), "%-22s %10s   (concurrent cluster HWM)\n",
                "cluster peak", FormatBytes(cluster_peak).c_str());
  out += buf;
  if (const util::Json* bpt = dump.Get("bytes_per_committed_tx");
      bpt != nullptr && bpt->AsDouble() > 0) {
    std::snprintf(buf, sizeof(buf), "%-22s %10s\n", "per committed tx",
                  FormatBytes(bpt->AsDouble()).c_str());
    out += buf;
  }
  return out;
}

std::string RenderMemDiff(const util::Json& before, const util::Json& after) {
  struct DiffRow {
    std::string name;
    double before = 0, after = 0;
  };
  std::vector<DiffRow> rows;
  for (const SubsystemRow& r : AggregateRows(before)) {
    rows.push_back({r.name, r.peak, 0});
  }
  for (const SubsystemRow& r : AggregateRows(after)) {
    bool found = false;
    for (DiffRow& d : rows) {
      if (d.name == r.name) {
        d.after = r.peak;
        found = true;
        break;
      }
    }
    if (!found) rows.push_back({r.name, 0, r.peak});
  }
  std::sort(rows.begin(), rows.end(), [](const DiffRow& a, const DiffRow& b) {
    return std::fabs(a.after - a.before) > std::fabs(b.after - b.before);
  });
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-22s %12s %12s %12s %8s\n", "subsystem",
                "before", "after", "delta", "ratio");
  out += buf;
  for (const DiffRow& r : rows) {
    double delta = r.after - r.before;
    std::snprintf(buf, sizeof(buf), "%-22s %12s %12s %s%11s %7.2fx\n",
                  r.name.c_str(), FormatBytes(r.before).c_str(),
                  FormatBytes(r.after).c_str(), delta < 0 ? "-" : "+",
                  FormatBytes(std::fabs(delta)).c_str(),
                  r.before > 0 ? r.after / r.before : 0.0);
    out += buf;
  }
  double pb = ClusterPeak(before), pa = ClusterPeak(after);
  std::snprintf(buf, sizeof(buf), "%-22s %12s %12s %s%11s %7.2fx\n",
                "cluster peak", FormatBytes(pb).c_str(),
                FormatBytes(pa).c_str(), pa - pb < 0 ? "-" : "+",
                FormatBytes(std::fabs(pa - pb)).c_str(),
                pb > 0 ? pa / pb : 0.0);
  out += buf;
  return out;
}

}  // namespace bb::obs
