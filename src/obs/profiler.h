// Wall-clock profiler with subsystem attribution and allocation/copy
// accounting.
//
// The tracer/metrics stack measures *virtual* time — deterministic,
// byte-identical across runs — but the raw-speed campaign optimizes
// *wall-clock* cost, and until now nothing attributed real CPU seconds
// to subsystems. This profiler closes that gap:
//
//  * BB_PROF_SCOPE("consensus.pbft.prepare") opens a scoped timer on a
//    thread-local call-tree. Nesting is attributed exactly: a scope's
//    self time excludes its profiled children, so rollups never double
//    count.
//  * BB_PROF_ALLOC(count, bytes) / BB_PROF_COPY(bytes) charge
//    allocation and byte-copy work to the innermost open scope — the
//    message-serialization path (std::any boxing, payload copies,
//    msg.type churn) uses these so bytes-copied and allocs-per-event
//    are first-class metrics, not guesses.
//  * The first dotted segment of a scope name selects its subsystem
//    (consensus / serialize / hash / storage / vm / sim / driver); the
//    Profiler aggregator rolls self time up per subsystem and exports
//    blockbench-profile-v1 JSON, folded stacks (flamegraph.pl /
//    speedscope), and Perfetto counter tracks.
//
// Disabled-mode contract (same pattern as Simulation::set_tracer): the
// hot path reads one `constinit thread_local` pointer; when no profiler
// is attached to the thread that is a single predictable branch per
// scope. CI gates the ratio BM_SimulationEventLoopProfOff /
// BM_SimulationEventLoop < 1.03.
//
// Everything the instrumented hot paths touch lives in this header so
// that bb_sim / bb_storage / bb_vm / bb_chain (which sit *below* bb_obs
// in the link graph) can use the macros without a link-time dependency;
// only aggregation and export (class Profiler) need bb_obs.
//
// Wall-clock values are nondeterministic by nature and are never part
// of golden digests; virtual-time behaviour is unchanged whether or not
// a profiler is attached.

#ifndef BLOCKBENCH_OBS_PROFILER_H_
#define BLOCKBENCH_OBS_PROFILER_H_

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace bb::obs {

class Profiler;

namespace prof {

/// Subsystem buckets for attribution rollups. Mapped from the first
/// dotted segment of the scope name — see SubsystemOf().
enum Subsystem : uint8_t {
  kConsensus = 0,
  kSerialization,
  kHashing,
  kStorage,
  kVm,
  kSimKernel,
  kDriver,
  kOther,
  kNumSubsystems,
};

inline const char* SubsystemName(uint8_t s) {
  static constexpr const char* kNames[kNumSubsystems] = {
      "consensus", "serialization", "hashing", "storage",
      "vm",        "sim-kernel",    "driver",  "other"};
  return s < kNumSubsystems ? kNames[s] : "other";
}

/// First dotted segment -> subsystem. "consensus.pbft.prepare" ->
/// kConsensus, "serialize.msg_send" -> kSerialization, "hash.merkle" ->
/// kHashing, etc. Unknown prefixes land in kOther so a typo'd scope is
/// visible in reports instead of silently dropped.
inline Subsystem SubsystemOf(const char* name) {
  const char* dot = std::strchr(name, '.');
  size_t n = dot != nullptr ? size_t(dot - name) : std::strlen(name);
  switch (n) {
    case 2:
      if (std::memcmp(name, "vm", 2) == 0) return kVm;
      break;
    case 3:
      if (std::memcmp(name, "sim", 3) == 0) return kSimKernel;
      break;
    case 4:
      if (std::memcmp(name, "hash", 4) == 0) return kHashing;
      break;
    case 6:
      if (std::memcmp(name, "driver", 6) == 0) return kDriver;
      break;
    case 7:
      if (std::memcmp(name, "storage", 7) == 0) return kStorage;
      break;
    case 9:
      if (std::memcmp(name, "consensus", 9) == 0) return kConsensus;
      if (std::memcmp(name, "serialize", 9) == 0) return kSerialization;
      break;
    default:
      break;
  }
  return kOther;
}

inline uint64_t NowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

/// One thread's call-tree of profiled scopes. Nodes are identified by
/// (parent, name); children of a node form a singly linked sibling list
/// (trees are tiny — tens of nodes — so linear scan beats hashing).
/// Not thread-safe: exactly one thread mutates a ThreadProfile, and the
/// Profiler merges it only after the thread detaches.
class ThreadProfile {
 public:
  struct Node {
    const char* name;        // static-lifetime string (scope literal)
    int32_t parent;          // -1 for roots
    int32_t first_child = -1;
    int32_t next_sibling = -1;
    uint8_t subsystem = kOther;
    uint64_t count = 0;      // completed invocations
    uint64_t total_ns = 0;   // inclusive wall time
    uint64_t self_ns = 0;    // total minus profiled children
    uint64_t alloc_count = 0;
    uint64_t alloc_bytes = 0;
    uint64_t copy_count = 0;
    uint64_t copy_bytes = 0;
  };

  /// One cumulative per-subsystem self-ns sample, for Perfetto counter
  /// tracks ("where did the CPU go over wall time").
  struct CounterSample {
    uint64_t at_ns;  // since thread attach
    uint64_t subsys_self_ns[kNumSubsystems];
  };

  ThreadProfile() {
    nodes_.reserve(64);
    stack_.reserve(16);
    attach_ns_ = NowNs();
    last_sample_ns_ = attach_ns_;
  }

  // --- Hot path ----------------------------------------------------------

  void Enter(const char* name) {
    int32_t parent = stack_.empty() ? -1 : stack_.back().node;
    int32_t idx = FindOrAddChild(parent, name);
    stack_.push_back(Frame{idx, NowNs(), 0});
  }

  void Exit() {
    Frame f = stack_.back();
    stack_.pop_back();
    uint64_t end = NowNs();
    uint64_t dur = end - f.start_ns;
    Node& n = nodes_[size_t(f.node)];
    uint64_t self = dur > f.child_ns ? dur - f.child_ns : 0;
    n.count += 1;
    n.total_ns += dur;
    n.self_ns += self;
    subsys_self_ns_[n.subsystem] += self;
    if (!stack_.empty()) {
      stack_.back().child_ns += dur;
    } else if (end - last_sample_ns_ >= kSampleIntervalNs) {
      // Snapshot cumulative per-subsystem self time at most every
      // ~50ms of wall clock, only at stack depth 0 so samples never
      // split an open scope.
      last_sample_ns_ = end;
      CounterSample s;
      s.at_ns = end - attach_ns_;
      for (size_t i = 0; i < kNumSubsystems; ++i) {
        s.subsys_self_ns[i] = subsys_self_ns_[i];
      }
      samples_.push_back(s);
    }
  }

  void Alloc(uint64_t count, uint64_t bytes) {
    Node& n = AttributionNode();
    n.alloc_count += count;
    n.alloc_bytes += bytes;
  }

  void Copy(uint64_t bytes) {
    Node& n = AttributionNode();
    n.copy_count += 1;
    n.copy_bytes += bytes;
  }

  // --- Aggregation side --------------------------------------------------

  /// Accumulates another profile's call tree into this one, matching
  /// nodes by (parent, name). Counter samples are not merged (they are
  /// per-thread series; the Profiler keeps them tagged by thread).
  void MergeFrom(const ThreadProfile& other) {
    std::vector<int32_t> remap(other.nodes_.size(), -1);
    // Parents are always created before their children, so one forward
    // pass sees every parent already remapped.
    for (size_t i = 0; i < other.nodes_.size(); ++i) {
      const Node& src = other.nodes_[i];
      int32_t parent = src.parent < 0 ? -1 : remap[size_t(src.parent)];
      int32_t dst = FindOrAddChild(parent, src.name);
      remap[i] = dst;
      Node& d = nodes_[size_t(dst)];
      d.count += src.count;
      d.total_ns += src.total_ns;
      d.self_ns += src.self_ns;
      d.alloc_count += src.alloc_count;
      d.alloc_bytes += src.alloc_bytes;
      d.copy_count += src.copy_count;
      d.copy_bytes += src.copy_bytes;
    }
    for (size_t s = 0; s < kNumSubsystems; ++s) {
      subsys_self_ns_[s] += other.subsys_self_ns_[s];
    }
  }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<CounterSample>& samples() const { return samples_; }
  const uint64_t* subsys_self_ns() const { return subsys_self_ns_; }
  size_t open_depth() const { return stack_.size(); }
  uint64_t attach_ns() const { return attach_ns_; }

 private:
  struct Frame {
    int32_t node;
    uint64_t start_ns;
    uint64_t child_ns;  // inclusive time of directly profiled children
  };

  static constexpr uint64_t kSampleIntervalNs = 50'000'000;  // 50ms

  int32_t FindOrAddChild(int32_t parent, const char* name) {
    int32_t head =
        parent < 0 ? root_head_ : nodes_[size_t(parent)].first_child;
    for (int32_t i = head; i >= 0; i = nodes_[size_t(i)].next_sibling) {
      // Scope names are string literals; within one binary the same
      // site always passes the same pointer, so pointer equality is the
      // fast path and strcmp only runs for cross-TU duplicates.
      const char* have = nodes_[size_t(i)].name;
      if (have == name || std::strcmp(have, name) == 0) return i;
    }
    Node n;
    n.name = name;
    n.parent = parent;
    n.subsystem = uint8_t(SubsystemOf(name));
    n.next_sibling = head;
    nodes_.push_back(n);
    int32_t idx = int32_t(nodes_.size()) - 1;
    if (parent < 0) {
      root_head_ = idx;
    } else {
      nodes_[size_t(parent)].first_child = idx;
    }
    return idx;
  }

  /// Alloc/copy work outside any open scope is charged to a synthetic
  /// "unattributed" root so the byte totals always balance.
  Node& AttributionNode() {
    if (!stack_.empty()) return nodes_[size_t(stack_.back().node)];
    if (unattributed_ < 0) {
      unattributed_ = FindOrAddChild(-1, "other.unattributed");
    }
    return nodes_[size_t(unattributed_)];
  }

  std::vector<Node> nodes_;
  std::vector<Frame> stack_;
  std::vector<CounterSample> samples_;
  uint64_t subsys_self_ns_[kNumSubsystems] = {};
  int32_t root_head_ = -1;
  int32_t unattributed_ = -1;
  uint64_t attach_ns_ = 0;
  uint64_t last_sample_ns_ = 0;
};

/// The per-thread attach point. constinit zero-init: no TLS guard on
/// the read path, so the disabled cost really is one load + branch.
inline constinit thread_local ThreadProfile* g_thread_profile = nullptr;

inline ThreadProfile* Current() { return g_thread_profile; }

/// RAII scope. Reads the TLS pointer once in the constructor — when no
/// profiler is attached both constructor and destructor are a single
/// predicted-not-taken branch.
class Scope {
 public:
  explicit Scope(const char* name) : tp_(g_thread_profile) {
    if (tp_ != nullptr) tp_->Enter(name);
  }
  ~Scope() {
    if (tp_ != nullptr) tp_->Exit();
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  ThreadProfile* tp_;
};

inline void CountAlloc(uint64_t count, uint64_t bytes) {
  if (ThreadProfile* tp = g_thread_profile; tp != nullptr) {
    tp->Alloc(count, bytes);
  }
}

inline void CountCopy(uint64_t bytes) {
  if (ThreadProfile* tp = g_thread_profile; tp != nullptr) tp->Copy(bytes);
}

}  // namespace prof

// Scope names must be string literals (static lifetime) and follow the
// "<subsystem>.<site>" convention — docs/OBSERVABILITY.md lists the
// recognized subsystem prefixes.
#define BB_PROF_CONCAT_INNER(a, b) a##b
#define BB_PROF_CONCAT(a, b) BB_PROF_CONCAT_INNER(a, b)
#define BB_PROF_SCOPE(name) \
  ::bb::obs::prof::Scope BB_PROF_CONCAT(bb_prof_scope_, __LINE__)(name)
// Statement macros so the operands (often a SizeBytes() walk) are only
// evaluated when a profiler is attached — disabled cost is one branch.
#define BB_PROF_ALLOC(count, bytes)                                        \
  do {                                                                     \
    if (::bb::obs::prof::ThreadProfile* bb_prof_tp_ =                      \
            ::bb::obs::prof::g_thread_profile;                             \
        bb_prof_tp_ != nullptr) {                                          \
      bb_prof_tp_->Alloc(uint64_t(count), uint64_t(bytes));                \
    }                                                                      \
  } while (0)
#define BB_PROF_COPY(bytes)                                                \
  do {                                                                     \
    if (::bb::obs::prof::ThreadProfile* bb_prof_tp_ =                      \
            ::bb::obs::prof::g_thread_profile;                             \
        bb_prof_tp_ != nullptr) {                                          \
      bb_prof_tp_->Copy(uint64_t(bytes));                                  \
    }                                                                      \
  } while (0)

/// Aggregates ThreadProfiles into one profile document. One Profiler
/// serves one logical run (e.g. one sweep case, or one bbench
/// invocation); worker threads attach around their work and the merge
/// happens at detach under a mutex, so SweepRunner --jobs=N aggregates
/// correctly and key order in every export is deterministic
/// (wall-clock *values* are not, and never enter golden digests).
class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Attaches the calling thread: BB_PROF_SCOPE et al. start recording
  /// into a fresh ThreadProfile owned by this Profiler. Nesting
  /// attaches (same thread, any profiler) is a programming error.
  void AttachCurrentThread();
  /// Detaches and merges the thread's profile into the aggregate.
  void DetachCurrentThread();

  /// RAII attach/detach for worker-thread bodies.
  class ThreadScope {
   public:
    explicit ThreadScope(Profiler* p) : p_(p) {
      if (p_ != nullptr) p_->AttachCurrentThread();
    }
    ~ThreadScope() {
      if (p_ != nullptr) p_->DetachCurrentThread();
    }
    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

   private:
    Profiler* p_;
  };

  /// Freezes the profile duration (wall time from construction). Called
  /// implicitly by the exporters on first use.
  void Stop();

  // --- Aggregate introspection -------------------------------------------

  size_t num_threads() const { return threads_merged_; }
  double duration_seconds() const;
  /// Inclusive wall seconds of root scopes (the attributed fraction's
  /// numerator is per-subsystem self time; this is the tree total).
  double attributed_seconds() const;
  uint64_t subsystem_self_ns(uint8_t s) const;
  uint64_t total_alloc_count() const;
  uint64_t total_alloc_bytes() const;
  uint64_t total_copy_count() const;
  uint64_t total_copy_bytes() const;

  /// Denominator for allocs-per-event / copies-per-event: the caller
  /// knows how many simulator events the run dispatched.
  void set_events(uint64_t events) { events_ = events; }

  // --- Export ------------------------------------------------------------

  /// Full profile document (schema blockbench-profile-v1): per-subsystem
  /// rollup, per-scope tree rows sorted by path, allocation/copy
  /// counters, and the Perfetto-ready counter timeline. Deterministic
  /// key order; values are wall-clock and therefore not.
  util::Json ToJson() const;
  /// Compact subset for embedding as "wall_profile" in
  /// blockbench-sweep-v1 rows (subsystem rollup + counters only).
  util::Json ToSweepJson() const;
  /// Folded-stack lines ("root;child;leaf self_us\n"), flamegraph.pl /
  /// speedscope compatible, sorted by path.
  std::string DumpFolded() const;
  Status WriteFolded(const std::string& path) const;
  /// Chrome trace_event counter tracks: one "prof.<subsystem>" counter
  /// per subsystem, values in self-milliseconds, sampled on the
  /// profiled threads' wall clocks.
  Status WritePerfettoCounters(const std::string& path) const;
  Status WriteJson(const std::string& path) const;

 private:
  /// One detached thread's counter samples, re-based onto this
  /// Profiler's clock. Cumulative series never mix across threads.
  struct ThreadSamples {
    size_t thread_index;
    std::vector<prof::ThreadProfile::CounterSample> samples;
  };

  void MergeLocked(std::unique_ptr<prof::ThreadProfile> tp);

  mutable std::mutex mu_;
  std::unique_ptr<prof::ThreadProfile> merged_;  // aggregate call tree
  std::vector<ThreadSamples> samples_;
  size_t threads_merged_ = 0;
  uint64_t events_ = 0;
  uint64_t start_ns_ = 0;
  uint64_t stop_ns_ = 0;  // 0 = still running
};

/// Renders the subsystem attribution table for one profile document
/// (parsed blockbench-profile-v1). Shared by tools/prof_report and
/// bench_raw_speed so the PR-facing tables are identical.
std::string RenderProfileAttribution(const util::Json& profile);

/// Renders the profile diff table (before vs after): per-subsystem self
/// time, allocation and copy deltas, sorted by absolute self-time
/// delta so the top cost centers lead.
std::string RenderProfileDiff(const util::Json& before,
                              const util::Json& after);

/// Structural validation of a blockbench-profile-v1 document.
Status ValidateProfile(const util::Json& profile);

/// Fraction of profile duration attributed to named (non-"other")
/// subsystems, in [0,1]; 0 when the document is malformed.
double AttributedFraction(const util::Json& profile);

}  // namespace bb::obs

#endif  // BLOCKBENCH_OBS_PROFILER_H_
