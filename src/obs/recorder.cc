#include "obs/recorder.h"

#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>

namespace bb::obs {

namespace {

constexpr char kSchema[] = "blockbench-blackbox-v1";

}  // namespace

int FlightRecorder::KindFromName(const std::string& name) {
  for (size_t i = 0; i < kNumKinds; ++i) {
    if (name == KindName(Kind(i))) return int(i);
  }
  return -1;
}

const FlightRecorder::Record& FlightRecorder::At(uint32_t node,
                                                 size_t i) const {
  const Ring& g = rings_[node];
  if (g.total <= capacity_) return g.buf[i];
  return g.buf[(g.total + i) % capacity_];
}

// --- RunSpec -----------------------------------------------------------------

util::Json RunSpec::ToJson() const {
  util::Json run = util::Json::Object();
  run.Set("platform", platform);
  run.Set("workload", workload);
  run.Set("servers", servers);
  run.Set("clients", clients);
  run.Set("cross_shard", cross_shard);
  run.Set("rate", rate);
  run.Set("duration", duration);
  run.Set("warmup", warmup);
  run.Set("drain", drain);
  run.Set("max_outstanding", max_outstanding);
  run.Set("seed", seed);
  run.Set("platform_seed", platform_seed);
  run.Set("driver_seed", driver_seed);
  run.Set("ycsb_records", ycsb_records);
  run.Set("smallbank_accounts", smallbank_accounts);
  util::Json cr = util::Json::Array();
  for (const auto& [id, t] : crashes) {
    util::Json c = util::Json::Array();
    c.Push(id);
    c.Push(t);
    cr.Push(std::move(c));
  }
  run.Set("crashes", std::move(cr));
  run.Set("partition_start", partition_start);
  run.Set("partition_end", partition_end);
  run.Set("delay", delay);
  run.Set("corrupt", corrupt);
  return run;
}

Result<RunSpec> RunSpec::FromJson(const util::Json& run) {
  if (!run.is_object()) {
    return Status::InvalidArgument("run spec is not an object");
  }
  RunSpec s;
  // Required fields: a dump a replay cannot faithfully re-run from is a
  // validation error, not a silent default.
  const char* required[] = {"platform", "workload", "servers",       "clients",
                            "rate",     "duration", "warmup",        "drain",
                            "seed",     "platform_seed", "driver_seed"};
  for (const char* key : required) {
    if (run.Get(key) == nullptr) {
      return Status::InvalidArgument(std::string("run spec missing \"") + key +
                                     "\"");
    }
  }
  s.platform = run.Get("platform")->AsString();
  s.workload = run.Get("workload")->AsString();
  s.servers = run.Get("servers")->AsUint();
  s.clients = run.Get("clients")->AsUint();
  s.rate = run.Get("rate")->AsDouble();
  s.duration = run.Get("duration")->AsDouble();
  s.warmup = run.Get("warmup")->AsDouble();
  s.drain = run.Get("drain")->AsDouble();
  s.seed = run.Get("seed")->AsUint();
  s.platform_seed = run.Get("platform_seed")->AsUint();
  s.driver_seed = run.Get("driver_seed")->AsUint();
  if (const auto* v = run.Get("cross_shard")) s.cross_shard = v->AsDouble();
  if (const auto* v = run.Get("max_outstanding")) {
    s.max_outstanding = v->AsUint();
  }
  if (const auto* v = run.Get("ycsb_records")) s.ycsb_records = v->AsUint();
  if (const auto* v = run.Get("smallbank_accounts")) {
    s.smallbank_accounts = v->AsUint();
  }
  if (const auto* v = run.Get("crashes")) {
    if (!v->is_array()) {
      return Status::InvalidArgument("run spec \"crashes\" is not an array");
    }
    for (const auto& c : v->items()) {
      if (!c.is_array() || c.size() != 2) {
        return Status::InvalidArgument("run spec crash entry is not [id, t]");
      }
      s.crashes.emplace_back(c.items()[0].AsUint(), c.items()[1].AsDouble());
    }
  }
  if (const auto* v = run.Get("partition_start")) {
    s.partition_start = v->AsDouble();
  }
  if (const auto* v = run.Get("partition_end")) s.partition_end = v->AsDouble();
  if (const auto* v = run.Get("delay")) s.delay = v->AsDouble();
  if (const auto* v = run.Get("corrupt")) s.corrupt = v->AsDouble();
  return s;
}

// --- Causal slice ------------------------------------------------------------

namespace {

/// A record's address: ring index is oldest-first within the surviving
/// window, so (node, idx) is stable for one dump.
struct Pos {
  uint32_t node;
  uint32_t idx;
  bool operator<(const Pos& o) const {
    return node != o.node ? node < o.node : idx < o.idx;
  }
};

}  // namespace

util::Json FlightRecorder::SliceToJson() const {
  // Index every surviving send by Message.seq so a recv's flow edge can
  // be followed back across nodes. Built once per dump; recording never
  // pays for it.
  std::unordered_map<uint64_t, Pos> send_at;
  for (uint32_t n = 0; n < rings_.size(); ++n) {
    for (size_t i = 0; i < ring_size(n); ++i) {
      const Record& r = At(n, i);
      if (r.kind == Kind::kSend) send_at[r.id] = Pos{n, uint32_t(i)};
    }
  }

  // Seed selection: the violation site. Fork switches are the signature
  // of a safety violation (a node discarded part of its chain), so each
  // node's LAST fork switch seeds the traversal; absent any, each
  // node's last commit does (divergence shows up as conflicting commit
  // hashes); absent those too, the last record per node.
  std::vector<Pos> seeds;
  auto seed_with = [&](Kind want) {
    for (uint32_t n = 0; n < rings_.size(); ++n) {
      for (size_t i = ring_size(n); i-- > 0;) {
        if (At(n, uint32_t(i)).kind == want) {
          seeds.push_back(Pos{n, uint32_t(i)});
          break;
        }
      }
    }
  };
  seed_with(Kind::kForkSwitch);
  if (seeds.empty()) seed_with(Kind::kCommit);
  if (seeds.empty()) {
    for (uint32_t n = 0; n < rings_.size(); ++n) {
      if (ring_size(n) > 0) seeds.push_back(Pos{n, uint32_t(ring_size(n) - 1)});
    }
  }

  util::Json slice = util::Json::Object();
  if (seeds.empty()) {
    slice.Set("target", util::Json());
    slice.Set("records", util::Json::Array());
    return slice;
  }

  // The latest seed is the named target (closest to the violation).
  Pos target = seeds.front();
  for (const Pos& p : seeds) {
    if (At(p.node, p.idx).t > At(target.node, target.idx).t ||
        (At(p.node, p.idx).t == At(target.node, target.idx).t &&
         target < p)) {
      target = p;
    }
  }

  // Backward BFS: program-order predecessor on the same node plus the
  // matching send for every recv. Bounded by kMaxSliceRecords.
  std::set<Pos> visited;
  std::deque<Pos> frontier;
  std::sort(seeds.begin(), seeds.end());
  for (const Pos& p : seeds) {
    if (visited.insert(p).second) frontier.push_back(p);
  }
  while (!frontier.empty() && visited.size() < kMaxSliceRecords) {
    Pos p = frontier.front();
    frontier.pop_front();
    const Record& r = At(p.node, p.idx);
    auto visit = [&](Pos q) {
      if (visited.size() < kMaxSliceRecords && visited.insert(q).second) {
        frontier.push_back(q);
      }
    };
    if (p.idx > 0) visit(Pos{p.node, p.idx - 1});
    if (r.kind == Kind::kRecv) {
      auto it = send_at.find(r.id);
      if (it != send_at.end()) visit(it->second);
    }
  }

  // Serialize in (t, node, idx) order so the slice reads as a timeline.
  std::vector<Pos> ordered(visited.begin(), visited.end());
  std::sort(ordered.begin(), ordered.end(), [this](const Pos& a, const Pos& b) {
    double ta = At(a.node, a.idx).t, tb = At(b.node, b.idx).t;
    if (ta != tb) return ta < tb;
    return a < b;
  });

  const Record& tr = At(target.node, target.idx);
  util::Json tj = util::Json::Object();
  tj.Set("kind", KindName(tr.kind));
  tj.Set("node", uint64_t(target.node));
  tj.Set("t", tr.t);
  tj.Set("height", tr.id);
  slice.Set("target", std::move(tj));

  util::Json records = util::Json::Array();
  for (const Pos& p : ordered) {
    const Record& r = At(p.node, p.idx);
    util::Json j = util::Json::Object();
    j.Set("node", uint64_t(p.node));
    j.Set("i", uint64_t(p.idx));
    j.Set("t", r.t);
    j.Set("kind", KindName(r.kind));
    j.Set("name", names_[r.name]);
    j.Set("id", r.id);
    j.Set("aux", r.aux);
    if (r.peer != kNoPeer) j.Set("peer", uint64_t(r.peer));
    records.Push(std::move(j));
  }
  slice.Set("records", std::move(records));
  return slice;
}

// --- Export ------------------------------------------------------------------

void FlightRecorder::ExportMetrics(MetricsRegistry* reg) const {
  reg->SetGauge("recorder.ring_capacity", {}, double(capacity_));
  for (uint32_t node = 0; node < rings_.size(); ++node) {
    Labels labels{{"node", std::to_string(node)}};
    reg->SetGauge("recorder.ring_size", labels, double(ring_size(node)));
    reg->AddCounter("recorder.recorded", labels, recorded(node));
    reg->AddCounter("recorder.evicted", labels, evicted(node));
  }
}

util::Json FlightRecorder::ToJson(const RunSpec& run,
                                  const BlackboxTrigger& trigger) const {
  util::Json doc = util::Json::Object();
  doc.Set("schema", kSchema);
  doc.Set("run", run.ToJson());
  util::Json trig = util::Json::Object();
  trig.Set("kind", trigger.kind);
  trig.Set("invariant", trigger.invariant);
  trig.Set("detail", trigger.detail);
  doc.Set("trigger", std::move(trig));
  doc.Set("ring_capacity", capacity_);
  util::Json names = util::Json::Array();
  for (const std::string& n : names_) names.Push(n);
  doc.Set("names", std::move(names));
  util::Json nodes = util::Json::Array();
  for (uint32_t n = 0; n < rings_.size(); ++n) {
    util::Json node = util::Json::Object();
    node.Set("node", uint64_t(n));
    node.Set("recorded", recorded(n));
    node.Set("evicted", evicted(n));
    util::Json records = util::Json::Array();
    for (size_t i = 0; i < ring_size(n); ++i) {
      const Record& r = At(n, i);
      util::Json rec = util::Json::Array();
      rec.Push(r.t);
      rec.Push(KindName(r.kind));
      rec.Push(uint64_t(r.name));
      rec.Push(r.id);
      rec.Push(r.aux);
      rec.Push(r.peer == kNoPeer ? util::Json(-1)
                                 : util::Json(uint64_t(r.peer)));
      records.Push(std::move(rec));
    }
    node.Set("records", std::move(records));
    nodes.Push(std::move(node));
  }
  doc.Set("nodes", std::move(nodes));
  doc.Set("causal_slice", SliceToJson());
  return doc;
}

Status FlightRecorder::WriteJson(const std::string& path, const RunSpec& run,
                                 const BlackboxTrigger& trigger) const {
  std::string text = ToJson(run, trigger).Dump(2);
  text.push_back('\n');
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::NotFound("cannot write " + path);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::Internal("short write: " + path);
  return Status::Ok();
}

// --- Document-side helpers (blackbox_report, tests) --------------------------

namespace {

Status Bad(const std::string& what) { return Status::InvalidArgument(what); }

/// Record columns in the per-node "records" arrays.
enum { kColT = 0, kColKind, kColName, kColId, kColAux, kColPeer, kNumCols };

}  // namespace

Status ValidateBlackbox(const util::Json& doc) {
  if (!doc.is_object()) return Bad("document is not an object");
  const util::Json* schema = doc.Get("schema");
  if (schema == nullptr || schema->AsString() != kSchema) {
    return Bad(std::string("schema is not \"") + kSchema + "\"");
  }
  const util::Json* run = doc.Get("run");
  if (run == nullptr) return Bad("missing \"run\"");
  auto spec = RunSpec::FromJson(*run);
  if (!spec.ok()) return spec.status();
  const util::Json* trig = doc.Get("trigger");
  if (trig == nullptr || !trig->is_object() || trig->Get("kind") == nullptr) {
    return Bad("missing or malformed \"trigger\"");
  }
  const util::Json* cap = doc.Get("ring_capacity");
  if (cap == nullptr || cap->AsUint() == 0) return Bad("bad \"ring_capacity\"");
  const util::Json* names = doc.Get("names");
  if (names == nullptr || !names->is_array()) return Bad("missing \"names\"");
  for (const auto& n : names->items()) {
    if (!n.is_string()) return Bad("name table entry is not a string");
  }
  size_t num_names = names->size();
  const util::Json* nodes = doc.Get("nodes");
  if (nodes == nullptr || !nodes->is_array()) return Bad("missing \"nodes\"");
  for (const auto& node : nodes->items()) {
    if (!node.is_object()) return Bad("node entry is not an object");
    for (const char* key : {"node", "recorded", "evicted", "records"}) {
      if (node.Get(key) == nullptr) {
        return Bad(std::string("node entry missing \"") + key + "\"");
      }
    }
    const util::Json& records = *node.Get("records");
    if (!records.is_array()) return Bad("node \"records\" is not an array");
    uint64_t surviving =
        node.Get("recorded")->AsUint() - node.Get("evicted")->AsUint();
    if (surviving != records.size()) {
      return Bad("recorded - evicted does not match the ring size");
    }
    double prev_t = -1;
    for (const auto& rec : records.items()) {
      if (!rec.is_array() || rec.size() != kNumCols) {
        return Bad("record is not a 6-column array");
      }
      double t = rec.items()[kColT].AsDouble();
      if (t < prev_t) return Bad("records are not time-ordered within a node");
      prev_t = t;
      if (FlightRecorder::KindFromName(rec.items()[kColKind].AsString()) < 0) {
        return Bad("unknown record kind \"" +
                   rec.items()[kColKind].AsString() + "\"");
      }
      if (rec.items()[kColName].AsUint() >= num_names) {
        return Bad("record name index out of range");
      }
    }
  }
  const util::Json* slice = doc.Get("causal_slice");
  if (slice == nullptr || !slice->is_object() ||
      slice->Get("records") == nullptr ||
      !slice->Get("records")->is_array()) {
    return Bad("missing or malformed \"causal_slice\"");
  }
  for (const auto& rec : slice->Get("records")->items()) {
    if (!rec.is_object() || rec.Get("node") == nullptr ||
        rec.Get("t") == nullptr || rec.Get("kind") == nullptr ||
        rec.Get("name") == nullptr) {
      return Bad("causal-slice record is malformed");
    }
  }
  return Status::Ok();
}

std::string RenderBlackboxSummary(const util::Json& doc) {
  std::string out;
  char line[256];
  const util::Json* trig = doc.Get("trigger");
  std::snprintf(line, sizeof(line), "trigger: %s",
                trig->Get("kind")->AsString().c_str());
  out += line;
  if (trig->Get("invariant") != nullptr &&
      !trig->Get("invariant")->AsString().empty()) {
    out += " — " + trig->Get("invariant")->AsString();
    if (trig->Get("detail") != nullptr &&
        !trig->Get("detail")->AsString().empty()) {
      out += " (" + trig->Get("detail")->AsString() + ")";
    }
  }
  out += "\n";
  const util::Json* run = doc.Get("run");
  std::snprintf(line, sizeof(line),
                "run: %s / %s, %llu servers, %llu clients, seed %llu\n",
                run->Get("platform")->AsString().c_str(),
                run->Get("workload")->AsString().c_str(),
                (unsigned long long)run->Get("servers")->AsUint(),
                (unsigned long long)run->Get("clients")->AsUint(),
                (unsigned long long)run->Get("seed")->AsUint());
  out += line;
  std::snprintf(line, sizeof(line), "%6s %10s %10s %10s\n", "node", "recorded",
                "evicted", "surviving");
  out += line;
  for (const auto& node : doc.Get("nodes")->items()) {
    std::snprintf(line, sizeof(line), "%6llu %10llu %10llu %10zu\n",
                  (unsigned long long)node.Get("node")->AsUint(),
                  (unsigned long long)node.Get("recorded")->AsUint(),
                  (unsigned long long)node.Get("evicted")->AsUint(),
                  node.Get("records")->size());
    out += line;
  }
  const util::Json* slice = doc.Get("causal_slice");
  const util::Json* target = slice->Get("target");
  if (target != nullptr && target->is_object()) {
    std::snprintf(line, sizeof(line),
                  "causal slice: %zu records, target %s on node %llu at "
                  "t=%.6f (height %llu)\n",
                  slice->Get("records")->size(),
                  target->Get("kind")->AsString().c_str(),
                  (unsigned long long)target->Get("node")->AsUint(),
                  target->Get("t")->AsDouble(),
                  (unsigned long long)target->Get("height")->AsUint());
    out += line;
  }
  return out;
}

std::string RenderBlackboxTimeline(const util::Json& doc, size_t limit) {
  // Interleave every node's ring by (t, node, ring index); causal-slice
  // membership (matched on node + ring index) is marked with '*'.
  struct Line {
    double t;
    uint32_t node;
    uint32_t idx;
    const util::Json* rec;
  };
  std::vector<Line> lines;
  for (const auto& node : doc.Get("nodes")->items()) {
    uint32_t n = uint32_t(node.Get("node")->AsUint());
    const auto& records = node.Get("records")->items();
    for (uint32_t i = 0; i < records.size(); ++i) {
      lines.push_back(Line{records[i].items()[kColT].AsDouble(), n, i,
                           &records[i]});
    }
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (a.node != b.node) return a.node < b.node;
                     return a.idx < b.idx;
                   });
  std::set<std::pair<uint32_t, uint32_t>> in_slice;
  for (const auto& rec : doc.Get("causal_slice")->Get("records")->items()) {
    if (rec.Get("i") != nullptr) {
      in_slice.emplace(uint32_t(rec.Get("node")->AsUint()),
                       uint32_t(rec.Get("i")->AsUint()));
    }
  }
  const auto& names = doc.Get("names")->items();
  size_t start = (limit > 0 && lines.size() > limit) ? lines.size() - limit : 0;
  std::string out;
  if (start > 0) {
    out += "  ... " + std::to_string(start) + " earlier records elided ...\n";
  }
  char buf[256];
  for (size_t i = start; i < lines.size(); ++i) {
    const Line& l = lines[i];
    const auto& cols = l.rec->items();
    const std::string& name = names[cols[kColName].AsUint()].AsString();
    bool starred = in_slice.count({l.node, l.idx}) != 0;
    std::snprintf(buf, sizeof(buf), "%c %12.6f  node%-4u %-11s %-24s",
                  starred ? '*' : ' ', l.t, l.node,
                  cols[kColKind].AsString().c_str(), name.c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf), " id=%llu aux=%llu",
                  (unsigned long long)cols[kColId].AsUint(),
                  (unsigned long long)cols[kColAux].AsUint());
    out += buf;
    if (cols[kColPeer].AsDouble() >= 0) {
      std::snprintf(buf, sizeof(buf), " peer=%llu",
                    (unsigned long long)cols[kColPeer].AsUint());
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string FirstDivergence(const util::Json& doc) {
  // A node's final view of each height is its LAST commit record there
  // (fork switches re-commit the winning branch), so later records win.
  std::vector<std::pair<uint32_t, std::unordered_map<uint64_t, uint64_t>>>
      views;
  for (const auto& node : doc.Get("nodes")->items()) {
    uint32_t n = uint32_t(node.Get("node")->AsUint());
    std::unordered_map<uint64_t, uint64_t> commits;
    for (const auto& rec : node.Get("records")->items()) {
      const auto& cols = rec.items();
      if (cols[kColKind].AsString() == "commit") {
        commits[cols[kColId].AsUint()] = cols[kColAux].AsUint();
      }
    }
    if (!commits.empty()) views.emplace_back(n, std::move(commits));
  }
  std::set<uint64_t> heights;
  for (const auto& [n, commits] : views) {
    for (const auto& [h, hash] : commits) heights.insert(h);
  }
  char buf[192];
  for (uint64_t h : heights) {
    // First (node, node) pair disagreeing at the lowest height.
    for (size_t a = 0; a < views.size(); ++a) {
      auto ia = views[a].second.find(h);
      if (ia == views[a].second.end()) continue;
      for (size_t b = a + 1; b < views.size(); ++b) {
        auto ib = views[b].second.find(h);
        if (ib == views[b].second.end()) continue;
        if (ia->second != ib->second) {
          std::snprintf(buf, sizeof(buf),
                        "first divergence: height %llu — node %u committed "
                        "%#llx, node %u committed %#llx",
                        (unsigned long long)h, views[a].first,
                        (unsigned long long)ia->second, views[b].first,
                        (unsigned long long)ib->second);
          return buf;
        }
      }
    }
  }
  // Commits agree where they overlap; a recorded fork switch still
  // means some node abandoned a branch inside the window.
  uint64_t fork_switches = 0;
  for (const auto& node : doc.Get("nodes")->items()) {
    for (const auto& rec : node.Get("records")->items()) {
      if (rec.items()[kColKind].AsString() == "fork_switch") ++fork_switches;
    }
  }
  if (fork_switches > 0) {
    std::snprintf(buf, sizeof(buf),
                  "no conflicting commits in the recorded window, but %llu "
                  "fork switch(es) were recorded",
                  (unsigned long long)fork_switches);
    return buf;
  }
  return "";
}

}  // namespace bb::obs
