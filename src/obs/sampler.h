// Sampler: a periodic virtual-time probe over live per-node state.
//
// Where the Tracer records *events* (something happened at t) and the
// MetricsRegistry records *post-run totals*, the Sampler records
// *levels*: what each node's mempool depth, chain height, consensus
// progress coordinate (PBFT view / Raft term / Tendermint round) and
// crash/partition status were at every sampling tick while the run was
// still going. This is the live layer the fault/attack experiments need
// — the interesting part of Fig 9/10 is chain state *during* the fault
// window, which no end-of-run counter can show.
//
// Probes are registered up front (fixed series set, so output shape is
// deterministic), then Schedule() pre-plants one tick event per period
// on the simulation — no self-rescheduling, so RunToCompletion() still
// drains and a run without a sampler carries zero overhead (there is
// nothing to branch on: the tick events simply do not exist).
//
// Each tick appends to in-memory series; when the simulation has a
// Tracer attached, numeric gauges are also emitted as Chrome/Perfetto
// counter events ("ph":"C"), one counter track per (node, name). The
// whole sample set serializes as the `timeline` section of
// blockbench-sweep-v1 rows — byte-identical across runs and sweep
// --jobs values, like the trace. See docs/OBSERVABILITY.md.

#ifndef BLOCKBENCH_OBS_SAMPLER_H_
#define BLOCKBENCH_OBS_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/json.h"

namespace bb::sim {
class Simulation;
}  // namespace bb::sim

namespace bb::obs {

class Sampler {
 public:
  struct Config {
    /// Seconds of virtual time between samples.
    double period = 1.0;
    /// First sample fires at start + period.
    double start = 0.0;
  };

  Sampler() = default;
  explicit Sampler(Config config) : config_(config) {}

  /// Registers a numeric per-node gauge polled at every tick. `name`
  /// must have static lifetime (it becomes the counter-track name).
  void AddGauge(uint32_t node, const char* name, std::function<double()> fn);
  /// Registers a string-valued probe (e.g. the head block hash) —
  /// serialized into the timeline JSON but not traced as a counter.
  void AddTag(uint32_t node, const char* name,
              std::function<std::string()> fn);

  /// Plants one tick event per period on `sim`, covering (start, end].
  /// Call after every probe is registered and before the run; the
  /// sampler must outlive the simulation's run.
  void Schedule(sim::Simulation* sim, double end);

  size_t num_ticks() const { return ticks_.size(); }
  size_t num_gauges() const { return gauges_.size(); }
  const Config& config() const { return config_; }

  /// Sampled value of gauge (node, name) at tick i; -1 when absent.
  double ValueAt(uint32_t node, const std::string& name, size_t tick) const;

  /// The `timeline` document: {"period","ticks","series","tags"}, with
  /// series in registration order — deterministic for a fixed probe set.
  util::Json ToJson() const;

 private:
  struct GaugeSeries {
    uint32_t node;
    const char* name;
    std::function<double()> fn;
    std::vector<double> values;  // one per tick
  };
  struct TagSeries {
    uint32_t node;
    const char* name;
    std::function<std::string()> fn;
    std::vector<std::string> values;
  };

  void Tick(sim::Simulation* sim, double t);

  Config config_;
  std::vector<double> ticks_;
  std::vector<GaugeSeries> gauges_;
  std::vector<TagSeries> tags_;
};

}  // namespace bb::obs

#endif  // BLOCKBENCH_OBS_SAMPLER_H_
