#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace bb::obs {

namespace {

Labels Sorted(const Labels& labels) {
  Labels out = labels;
  std::sort(out.begin(), out.end());
  return out;
}

/// Counters and integral gauges print as integers, everything else with
/// enough digits to round-trip typical metric values.
void AppendNumber(std::string* out, double v) {
  char buf[64];
  if (v == double(int64_t(v)) && v >= -9.2e18 && v <= 9.2e18) {
    std::snprintf(buf, sizeof(buf), "%lld", (long long)int64_t(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out->append(buf);
}

}  // namespace

std::string MetricsRegistry::Key(const std::string& name,
                                 const Labels& labels) {
  std::string key = name;
  if (labels.empty()) return key;
  key.push_back('{');
  Labels sorted = Sorted(labels);
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key.push_back(',');
    key += sorted[i].first;
    key.push_back('=');
    key += sorted[i].second;
  }
  key.push_back('}');
  return key;
}

MetricsRegistry::Instrument* MetricsRegistry::Upsert(const std::string& name,
                                                     const Labels& labels,
                                                     Kind kind) {
  std::string key = Key(name, labels);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    Instrument inst;
    inst.kind = kind;
    inst.name = name;
    inst.labels = Sorted(labels);
    it = by_key_.emplace(std::move(key), std::move(inst)).first;
  }
  // A name+labels pair identifies one instrument of one kind; accesses
  // with a mismatched kind are ignored rather than clobbering data.
  if (it->second.kind != kind) return nullptr;
  return &it->second;
}

const MetricsRegistry::Instrument* MetricsRegistry::Find(
    const std::string& name, const Labels& labels, Kind kind) const {
  auto it = by_key_.find(Key(name, labels));
  if (it == by_key_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

void MetricsRegistry::AddCounter(const std::string& name, const Labels& labels,
                                 uint64_t delta) {
  if (Instrument* inst = Upsert(name, labels, Kind::kCounter)) {
    inst->counter += delta;
  }
}

void MetricsRegistry::SetGauge(const std::string& name, const Labels& labels,
                               double value) {
  if (Instrument* inst = Upsert(name, labels, Kind::kGauge)) {
    inst->gauge = value;
  }
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  Instrument* inst = Upsert(name, labels, Kind::kHistogram);
  return inst != nullptr ? &inst->hist : nullptr;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const Labels& labels) const {
  const Instrument* inst = Find(name, labels, Kind::kCounter);
  return inst != nullptr ? inst->counter : 0;
}

double MetricsRegistry::GaugeValue(const std::string& name,
                                   const Labels& labels) const {
  const Instrument* inst = Find(name, labels, Kind::kGauge);
  return inst != nullptr ? inst->gauge : 0;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const Labels& labels) const {
  const Instrument* inst = Find(name, labels, Kind::kHistogram);
  return inst != nullptr ? &inst->hist : nullptr;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [key, theirs] : other.by_key_) {
    auto it = by_key_.find(key);
    if (it == by_key_.end()) {
      by_key_.emplace(key, theirs);
      continue;
    }
    Instrument& ours = it->second;
    if (ours.kind != theirs.kind) continue;
    switch (ours.kind) {
      case Kind::kCounter:
        ours.counter += theirs.counter;
        break;
      case Kind::kGauge:
        ours.gauge = theirs.gauge;
        break;
      case Kind::kHistogram:
        ours.hist.Merge(theirs.hist);
        break;
    }
  }
}

util::Json MetricsRegistry::ToJson() const {
  util::Json arr = util::Json::Array();
  for (const auto& [key, inst] : by_key_) {
    util::Json m = util::Json::Object();
    m.Set("name", inst.name);
    util::Json labels = util::Json::Object();
    for (const auto& [k, v] : inst.labels) labels.Set(k, v);
    m.Set("labels", std::move(labels));
    switch (inst.kind) {
      case Kind::kCounter:
        m.Set("type", "counter");
        m.Set("value", inst.counter);
        break;
      case Kind::kGauge:
        m.Set("type", "gauge");
        m.Set("value", inst.gauge);
        break;
      case Kind::kHistogram:
        m.Set("type", "histogram");
        m.Set("count", uint64_t(inst.hist.count()));
        if (inst.hist.count() > 0) {
          m.Set("mean", inst.hist.Mean());
          m.Set("p50", inst.hist.Percentile(50));
          m.Set("p95", inst.hist.Percentile(95));
          m.Set("p99", inst.hist.Percentile(99));
          m.Set("max", inst.hist.max());
        }
        break;
    }
    arr.Push(std::move(m));
  }
  return arr;
}

std::string MetricsRegistry::RenderTable() const {
  // Keys pad to one column so values align; histogram rows break out
  // count / mean / p50 / p95 / p99 / max as fixed columns.
  size_t key_width = 0;
  for (const auto& [key, inst] : by_key_) {
    key_width = std::max(key_width, key.size());
  }
  std::string out;
  char buf[192];
  for (const auto& [key, inst] : by_key_) {
    std::snprintf(buf, sizeof(buf), "%-*s  ", int(key_width), key.c_str());
    out += buf;
    switch (inst.kind) {
      case Kind::kCounter:
        AppendNumber(&out, double(inst.counter));
        break;
      case Kind::kGauge:
        AppendNumber(&out, inst.gauge);
        break;
      case Kind::kHistogram: {
        const Histogram& h = inst.hist;
        std::snprintf(buf, sizeof(buf),
                      "count %8llu  mean %10.4f  p50 %10.4f  p95 %10.4f  "
                      "p99 %10.4f  max %10.4f",
                      (unsigned long long)h.count(), h.Mean(),
                      h.Percentile(50), h.Percentile(95), h.Percentile(99),
                      h.max());
        out += buf;
        break;
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace bb::obs
