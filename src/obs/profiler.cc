#include "obs/profiler.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

#include "util/bufwriter.h"

namespace bb::obs {

namespace {

constexpr char kProfileSchema[] = "blockbench-profile-v1";

/// Formats nanoseconds as seconds with microsecond precision (plenty
/// for wall-clock data, keeps the JSON readable).
double NsToSeconds(uint64_t ns) { return double(ns) * 1e-9; }

std::string FormatSeconds(double s) {
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  }
  return buf;
}

std::string FormatBytes(double b) {
  char buf[32];
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", b);
  }
  return buf;
}

std::string FormatCount(double c) {
  char buf[32];
  if (c >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", c / 1e9);
  } else if (c >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", c / 1e6);
  } else if (c >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", c / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", c);
  }
  return buf;
}

/// Dotted path from the root to `idx` ("driver.run;consensus.pbft...."
/// uses ';' separators in folded output, '/' in scope rows).
std::string PathOf(const std::vector<prof::ThreadProfile::Node>& nodes,
                   int32_t idx, char sep) {
  std::vector<const char*> parts;
  for (int32_t i = idx; i >= 0; i = nodes[size_t(i)].parent) {
    parts.push_back(nodes[size_t(i)].name);
  }
  std::string out;
  for (size_t i = parts.size(); i-- > 0;) {
    out += parts[i];
    if (i != 0) out.push_back(sep);
  }
  return out;
}

struct ScopeRow {
  std::string path;
  const prof::ThreadProfile::Node* node;
};

std::vector<ScopeRow> SortedScopeRows(
    const std::vector<prof::ThreadProfile::Node>& nodes, char sep) {
  std::vector<ScopeRow> rows;
  rows.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].count == 0 && nodes[i].alloc_count == 0 &&
        nodes[i].copy_count == 0) {
      continue;  // created but never completed (open at merge)
    }
    rows.push_back(ScopeRow{PathOf(nodes, int32_t(i), sep), &nodes[i]});
  }
  std::sort(rows.begin(), rows.end(),
            [](const ScopeRow& a, const ScopeRow& b) { return a.path < b.path; });
  return rows;
}

/// Pulls "subsystems" entries out of a parsed profile doc as
/// (name, self_seconds, alloc_bytes, copy_bytes, alloc_count,
/// copy_count) rows in document order.
struct SubsystemRow {
  std::string name;
  double self_seconds = 0;
  double alloc_count = 0;
  double alloc_bytes = 0;
  double copy_count = 0;
  double copy_bytes = 0;
};

std::vector<SubsystemRow> SubsystemRows(const util::Json& profile) {
  std::vector<SubsystemRow> rows;
  const util::Json* subs = profile.Get("subsystems");
  if (subs == nullptr || !subs->is_object()) return rows;
  for (const auto& [name, v] : subs->members()) {
    SubsystemRow r;
    r.name = name;
    if (const util::Json* x = v.Get("self_seconds")) r.self_seconds = x->AsDouble();
    if (const util::Json* x = v.Get("alloc_count")) r.alloc_count = x->AsDouble();
    if (const util::Json* x = v.Get("alloc_bytes")) r.alloc_bytes = x->AsDouble();
    if (const util::Json* x = v.Get("copy_count")) r.copy_count = x->AsDouble();
    if (const util::Json* x = v.Get("copy_bytes")) r.copy_bytes = x->AsDouble();
    rows.push_back(std::move(r));
  }
  return rows;
}

double ProfileDuration(const util::Json& profile) {
  const util::Json* d = profile.Get("duration_seconds");
  return d != nullptr ? d->AsDouble() : 0;
}

double ProfileEvents(const util::Json& profile) {
  const util::Json* e = profile.Get("events");
  return e != nullptr ? e->AsDouble() : 0;
}

}  // namespace

// --- Profiler lifecycle ------------------------------------------------------

Profiler::Profiler() : start_ns_(prof::NowNs()) {}

Profiler::~Profiler() {
  assert(prof::g_thread_profile == nullptr &&
         "destroying a Profiler while a thread is still attached");
}

void Profiler::AttachCurrentThread() {
  assert(prof::g_thread_profile == nullptr &&
         "thread already attached to a profiler");
  prof::g_thread_profile = new prof::ThreadProfile();
}

void Profiler::DetachCurrentThread() {
  prof::ThreadProfile* tp = prof::g_thread_profile;
  if (tp == nullptr) return;
  prof::g_thread_profile = nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  MergeLocked(std::unique_ptr<prof::ThreadProfile>(tp));
}

void Profiler::MergeLocked(std::unique_ptr<prof::ThreadProfile> tp) {
  if (merged_ == nullptr) {
    merged_ = std::make_unique<prof::ThreadProfile>();
  }
  merged_->MergeFrom(*tp);
  if (!tp->samples().empty()) {
    ThreadSamples ts;
    ts.thread_index = threads_merged_;
    ts.samples = tp->samples();
    // Re-base sample timestamps from thread-attach onto this
    // Profiler's clock so multi-thread timelines share one x axis.
    uint64_t base =
        tp->attach_ns() > start_ns_ ? tp->attach_ns() - start_ns_ : 0;
    for (auto& s : ts.samples) s.at_ns += base;
    samples_.push_back(std::move(ts));
  }
  ++threads_merged_;
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_ns_ == 0) stop_ns_ = prof::NowNs();
}

double Profiler::duration_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t end = stop_ns_ != 0 ? stop_ns_ : prof::NowNs();
  return NsToSeconds(end - start_ns_);
}

double Profiler::attributed_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (merged_ == nullptr) return 0;
  uint64_t ns = 0;
  for (const auto& n : merged_->nodes()) {
    if (n.parent < 0) ns += n.total_ns;
  }
  return NsToSeconds(ns);
}

uint64_t Profiler::subsystem_self_ns(uint8_t s) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (merged_ == nullptr || s >= prof::kNumSubsystems) return 0;
  return merged_->subsys_self_ns()[s];
}

uint64_t Profiler::total_alloc_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  if (merged_ != nullptr) {
    for (const auto& node : merged_->nodes()) n += node.alloc_count;
  }
  return n;
}

uint64_t Profiler::total_alloc_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  if (merged_ != nullptr) {
    for (const auto& node : merged_->nodes()) n += node.alloc_bytes;
  }
  return n;
}

uint64_t Profiler::total_copy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  if (merged_ != nullptr) {
    for (const auto& node : merged_->nodes()) n += node.copy_count;
  }
  return n;
}

uint64_t Profiler::total_copy_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  if (merged_ != nullptr) {
    for (const auto& node : merged_->nodes()) n += node.copy_bytes;
  }
  return n;
}

// --- Export ------------------------------------------------------------------

util::Json Profiler::ToJson() const {
  const_cast<Profiler*>(this)->Stop();
  std::lock_guard<std::mutex> lock(mu_);

  util::Json doc = util::Json::Object();
  doc.Set("schema", kProfileSchema);
  doc.Set("duration_seconds", NsToSeconds(stop_ns_ - start_ns_));
  doc.Set("threads", uint64_t(threads_merged_));
  if (events_ > 0) doc.Set("events", events_);

  // Per-subsystem rollup: fixed enum order (deterministic), zero rows
  // omitted so quiet subsystems don't pad every profile.
  util::Json subsystems = util::Json::Object();
  uint64_t subsys_alloc_count[prof::kNumSubsystems] = {};
  uint64_t subsys_alloc_bytes[prof::kNumSubsystems] = {};
  uint64_t subsys_copy_count[prof::kNumSubsystems] = {};
  uint64_t subsys_copy_bytes[prof::kNumSubsystems] = {};
  uint64_t total_alloc_count = 0, total_alloc_bytes = 0;
  uint64_t total_copy_count = 0, total_copy_bytes = 0;
  if (merged_ != nullptr) {
    for (const auto& n : merged_->nodes()) {
      subsys_alloc_count[n.subsystem] += n.alloc_count;
      subsys_alloc_bytes[n.subsystem] += n.alloc_bytes;
      subsys_copy_count[n.subsystem] += n.copy_count;
      subsys_copy_bytes[n.subsystem] += n.copy_bytes;
      total_alloc_count += n.alloc_count;
      total_alloc_bytes += n.alloc_bytes;
      total_copy_count += n.copy_count;
      total_copy_bytes += n.copy_bytes;
    }
    for (uint8_t s = 0; s < prof::kNumSubsystems; ++s) {
      uint64_t self = merged_->subsys_self_ns()[s];
      if (self == 0 && subsys_alloc_count[s] == 0 && subsys_copy_count[s] == 0) {
        continue;
      }
      util::Json row = util::Json::Object();
      row.Set("self_seconds", NsToSeconds(self));
      if (subsys_alloc_count[s] > 0) {
        row.Set("alloc_count", subsys_alloc_count[s]);
        row.Set("alloc_bytes", subsys_alloc_bytes[s]);
      }
      if (subsys_copy_count[s] > 0) {
        row.Set("copy_count", subsys_copy_count[s]);
        row.Set("copy_bytes", subsys_copy_bytes[s]);
      }
      subsystems.Set(prof::SubsystemName(s), std::move(row));
    }
  }
  doc.Set("subsystems", std::move(subsystems));

  // Per-scope tree rows, path-sorted for deterministic key order.
  util::Json scopes = util::Json::Array();
  if (merged_ != nullptr) {
    for (const auto& row : SortedScopeRows(merged_->nodes(), '/')) {
      const auto& n = *row.node;
      util::Json s = util::Json::Object();
      s.Set("path", row.path);
      s.Set("subsystem", prof::SubsystemName(n.subsystem));
      s.Set("count", n.count);
      s.Set("total_seconds", NsToSeconds(n.total_ns));
      s.Set("self_seconds", NsToSeconds(n.self_ns));
      if (n.alloc_count > 0) {
        s.Set("alloc_count", n.alloc_count);
        s.Set("alloc_bytes", n.alloc_bytes);
      }
      if (n.copy_count > 0) {
        s.Set("copy_count", n.copy_count);
        s.Set("copy_bytes", n.copy_bytes);
      }
      scopes.Push(std::move(s));
    }
  }
  doc.Set("scopes", std::move(scopes));

  util::Json counters = util::Json::Object();
  counters.Set("alloc_count", total_alloc_count);
  counters.Set("alloc_bytes", total_alloc_bytes);
  counters.Set("copy_count", total_copy_count);
  counters.Set("copy_bytes", total_copy_bytes);
  if (events_ > 0) {
    counters.Set("allocs_per_event", double(total_alloc_count) / double(events_));
    counters.Set("copied_bytes_per_event",
                 double(total_copy_bytes) / double(events_));
  }
  doc.Set("counters", std::move(counters));

  // Counter timeline: per-thread cumulative self-seconds samples.
  util::Json timeline = util::Json::Array();
  for (const auto& ts : samples_) {
    for (const auto& s : ts.samples) {
      util::Json point = util::Json::Object();
      point.Set("thread", uint64_t(ts.thread_index));
      point.Set("at_seconds", NsToSeconds(s.at_ns));
      util::Json vals = util::Json::Object();
      for (uint8_t i = 0; i < prof::kNumSubsystems; ++i) {
        if (s.subsys_self_ns[i] == 0) continue;
        vals.Set(prof::SubsystemName(i), NsToSeconds(s.subsys_self_ns[i]));
      }
      point.Set("self_seconds", std::move(vals));
      timeline.Push(std::move(point));
    }
  }
  doc.Set("timeline", std::move(timeline));
  return doc;
}

util::Json Profiler::ToSweepJson() const {
  util::Json full = ToJson();
  util::Json doc = util::Json::Object();
  doc.Set("duration_seconds", *full.Get("duration_seconds"));
  doc.Set("threads", *full.Get("threads"));
  doc.Set("subsystems", *full.Get("subsystems"));
  doc.Set("counters", *full.Get("counters"));
  return doc;
}

std::string Profiler::DumpFolded() const {
  const_cast<Profiler*>(this)->Stop();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  if (merged_ == nullptr) return out;
  for (const auto& row : SortedScopeRows(merged_->nodes(), ';')) {
    if (row.node->self_ns == 0) continue;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n",
                  row.node->self_ns / 1000);  // folded value = self µs
    out += row.path;
    out += buf;
  }
  return out;
}

Status Profiler::WriteFolded(const std::string& path) const {
  util::BufferedWriter writer;
  BB_RETURN_IF_ERROR(writer.Open(path));
  writer.Append(DumpFolded());
  return writer.Close();
}

Status Profiler::WritePerfettoCounters(const std::string& path) const {
  const_cast<Profiler*>(this)->Stop();
  std::lock_guard<std::mutex> lock(mu_);
  util::BufferedWriter writer;
  BB_RETURN_IF_ERROR(writer.Open(path));
  writer.Append("{\"traceEvents\":[\n");
  writer.Append(
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"wall profiler\"}}");
  std::string line;
  for (const auto& ts : samples_) {
    for (const auto& s : ts.samples) {
      for (uint8_t i = 0; i < prof::kNumSubsystems; ++i) {
        if (s.subsys_self_ns[i] == 0) continue;
        char buf[224];
        std::snprintf(
            buf, sizeof(buf),
            ",\n{\"ph\":\"C\",\"pid\":0,\"tid\":%zu,\"id\":\"%zu\","
            "\"ts\":%.3f,\"cat\":\"prof\",\"name\":\"prof.%s\","
            "\"args\":{\"self_ms\":%.3f}}",
            ts.thread_index, ts.thread_index, double(s.at_ns) * 1e-3,
            prof::SubsystemName(i), double(s.subsys_self_ns[i]) * 1e-6);
        writer.Append(buf);
      }
    }
  }
  writer.Append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return writer.Close();
}

Status Profiler::WriteJson(const std::string& path) const {
  util::Json doc = ToJson();
  util::BufferedWriter writer;
  BB_RETURN_IF_ERROR(writer.Open(path));
  writer.Append(doc.Dump(2));
  writer.Append("\n");
  return writer.Close();
}

// --- Report rendering (shared by prof_report and bench_raw_speed) ------------

std::string RenderProfileAttribution(const util::Json& profile) {
  std::string out;
  char buf[256];
  double duration = ProfileDuration(profile);
  double events = ProfileEvents(profile);
  std::vector<SubsystemRow> rows = SubsystemRows(profile);
  std::sort(rows.begin(), rows.end(),
            [](const SubsystemRow& a, const SubsystemRow& b) {
              return a.self_seconds > b.self_seconds;
            });

  std::snprintf(buf, sizeof(buf), "%-14s %10s %7s %12s %12s\n", "subsystem",
                "self", "%wall", "allocs", "copied");
  out += buf;
  double attributed = 0;
  for (const auto& r : rows) {
    if (r.name != "other") attributed += r.self_seconds;
    std::snprintf(buf, sizeof(buf), "%-14s %10s %6.1f%% %12s %12s\n",
                  r.name.c_str(), FormatSeconds(r.self_seconds).c_str(),
                  duration > 0 ? 100.0 * r.self_seconds / duration : 0.0,
                  FormatCount(r.alloc_count).c_str(),
                  FormatBytes(r.copy_bytes).c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-14s %10s %6.1f%%\n", "attributed",
                FormatSeconds(attributed).c_str(),
                duration > 0 ? 100.0 * attributed / duration : 0.0);
  out += buf;
  if (const util::Json* counters = profile.Get("counters")) {
    double ac = 0, ab = 0, cc = 0, cb = 0;
    if (const util::Json* x = counters->Get("alloc_count")) ac = x->AsDouble();
    if (const util::Json* x = counters->Get("alloc_bytes")) ab = x->AsDouble();
    if (const util::Json* x = counters->Get("copy_count")) cc = x->AsDouble();
    if (const util::Json* x = counters->Get("copy_bytes")) cb = x->AsDouble();
    std::snprintf(buf, sizeof(buf),
                  "allocs: %s (%s)   copies: %s (%s)", FormatCount(ac).c_str(),
                  FormatBytes(ab).c_str(), FormatCount(cc).c_str(),
                  FormatBytes(cb).c_str());
    out += buf;
    if (events > 0) {
      std::snprintf(buf, sizeof(buf), "   %.2f allocs/event, %s copied/event",
                    ac / events, FormatBytes(cb / events).c_str());
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string RenderProfileDiff(const util::Json& before,
                              const util::Json& after) {
  struct DiffRow {
    std::string name;
    SubsystemRow b, a;
    double delta() const { return a.self_seconds - b.self_seconds; }
  };
  std::vector<DiffRow> rows;
  auto find = [&rows](const std::string& name) -> DiffRow& {
    for (auto& r : rows) {
      if (r.name == name) return r;
    }
    rows.push_back(DiffRow{name, {}, {}});
    return rows.back();
  };
  for (const auto& r : SubsystemRows(before)) find(r.name).b = r;
  for (const auto& r : SubsystemRows(after)) find(r.name).a = r;
  // Largest absolute self-time delta first: the top rows *are* the
  // cost centers a regression or win came from.
  std::sort(rows.begin(), rows.end(), [](const DiffRow& x, const DiffRow& y) {
    double ax = x.delta() < 0 ? -x.delta() : x.delta();
    double ay = y.delta() < 0 ? -y.delta() : y.delta();
    return ax > ay;
  });

  std::string out;
  char buf[256];
  double db = ProfileDuration(before), da = ProfileDuration(after);
  std::snprintf(buf, sizeof(buf), "wall: %s -> %s (%+.1f%%)\n",
                FormatSeconds(db).c_str(), FormatSeconds(da).c_str(),
                db > 0 ? 100.0 * (da - db) / db : 0.0);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-14s %10s %10s %9s %12s %12s\n",
                "subsystem", "before", "after", "delta", "d-allocs",
                "d-copied");
  out += buf;
  for (const auto& r : rows) {
    double d = r.delta();
    double dalloc = r.a.alloc_count - r.b.alloc_count;
    double dcopy = r.a.copy_bytes - r.b.copy_bytes;
    std::string dalloc_s(dalloc < 0 ? "-" : "+");
    dalloc_s += FormatCount(dalloc < 0 ? -dalloc : dalloc);
    std::string dcopy_s(dcopy < 0 ? "-" : "+");
    dcopy_s += FormatBytes(dcopy < 0 ? -dcopy : dcopy);
    std::snprintf(buf, sizeof(buf), "%-14s %10s %10s %s%8s %12s %12s\n",
                  r.name.c_str(), FormatSeconds(r.b.self_seconds).c_str(),
                  FormatSeconds(r.a.self_seconds).c_str(), d < 0 ? "-" : "+",
                  FormatSeconds(d < 0 ? -d : d).c_str(), dalloc_s.c_str(),
                  dcopy_s.c_str());
    out += buf;
  }

  // What's left to optimize: the top remaining cost centers of the
  // *after* profile, by self wall time and — the ROADMAP's "remaining
  // copies" lens — by bytes still being copied (the std::any boxing /
  // payload-copy path shows up here long after its time share shrank).
  std::vector<DiffRow> remaining = rows;
  std::sort(remaining.begin(), remaining.end(),
            [](const DiffRow& x, const DiffRow& y) {
              return x.a.self_seconds > y.a.self_seconds;
            });
  out += "top remaining cost centers (after):";
  for (size_t i = 0; i < remaining.size() && i < 3; ++i) {
    std::snprintf(buf, sizeof(buf), "%s %s %s (%.1f%%)", i > 0 ? "," : "",
                  remaining[i].name.c_str(),
                  FormatSeconds(remaining[i].a.self_seconds).c_str(),
                  da > 0 ? 100.0 * remaining[i].a.self_seconds / da : 0.0);
    out += buf;
  }
  out += "\n";
  std::sort(remaining.begin(), remaining.end(),
            [](const DiffRow& x, const DiffRow& y) {
              return x.a.copy_bytes > y.a.copy_bytes;
            });
  if (!remaining.empty() && remaining[0].a.copy_bytes > 0) {
    out += "top copy/alloc cost centers (after):";
    for (size_t i = 0; i < remaining.size() && i < 3; ++i) {
      if (remaining[i].a.copy_bytes <= 0 && remaining[i].a.alloc_count <= 0) {
        break;
      }
      std::snprintf(buf, sizeof(buf), "%s %s %s copied / %s allocs",
                    i > 0 ? "," : "", remaining[i].name.c_str(),
                    FormatBytes(remaining[i].a.copy_bytes).c_str(),
                    FormatCount(remaining[i].a.alloc_count).c_str());
      out += buf;
    }
    out += "\n";
  }
  return out;
}

Status ValidateProfile(const util::Json& profile) {
  if (!profile.is_object()) {
    return Status::InvalidArgument("profile: not a JSON object");
  }
  const util::Json* schema = profile.Get("schema");
  if (schema == nullptr || schema->AsString() != kProfileSchema) {
    return Status::InvalidArgument(std::string("profile: schema != ") +
                                   kProfileSchema);
  }
  if (ProfileDuration(profile) <= 0) {
    return Status::InvalidArgument("profile: duration_seconds must be > 0");
  }
  const util::Json* subs = profile.Get("subsystems");
  if (subs == nullptr || !subs->is_object()) {
    return Status::InvalidArgument("profile: missing subsystems object");
  }
  for (const auto& [name, v] : subs->members()) {
    bool known = false;
    for (uint8_t s = 0; s < prof::kNumSubsystems; ++s) {
      if (name == prof::SubsystemName(s)) known = true;
    }
    if (!known) {
      return Status::InvalidArgument("profile: unknown subsystem " + name);
    }
    if (v.Get("self_seconds") == nullptr) {
      return Status::InvalidArgument("profile: subsystem " + name +
                                     " missing self_seconds");
    }
  }
  const util::Json* scopes = profile.Get("scopes");
  if (scopes != nullptr) {
    if (!scopes->is_array()) {
      return Status::InvalidArgument("profile: scopes must be an array");
    }
    std::string prev;
    for (const auto& s : scopes->items()) {
      const util::Json* path = s.Get("path");
      if (path == nullptr || path->AsString().empty()) {
        return Status::InvalidArgument("profile: scope row missing path");
      }
      if (!prev.empty() && !(prev < path->AsString())) {
        return Status::InvalidArgument(
            "profile: scope rows not sorted by path (" + prev + " vs " +
            path->AsString() + ")");
      }
      prev = path->AsString();
      const util::Json* total = s.Get("total_seconds");
      const util::Json* self = s.Get("self_seconds");
      if (total == nullptr || self == nullptr) {
        return Status::InvalidArgument("profile: scope " + prev +
                                       " missing total/self seconds");
      }
      if (self->AsDouble() > total->AsDouble() * 1.000001 + 1e-9) {
        return Status::InvalidArgument("profile: scope " + prev +
                                       " has self > total");
      }
    }
  }
  const util::Json* counters = profile.Get("counters");
  if (counters == nullptr || !counters->is_object()) {
    return Status::InvalidArgument("profile: missing counters object");
  }
  return Status::Ok();
}

double AttributedFraction(const util::Json& profile) {
  double duration = ProfileDuration(profile);
  if (duration <= 0) return 0;
  double attributed = 0;
  for (const auto& r : SubsystemRows(profile)) {
    if (r.name != "other") attributed += r.self_seconds;
  }
  double f = attributed / duration;
  return f < 0 ? 0 : f;
}

}  // namespace bb::obs
