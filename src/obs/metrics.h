// MetricsRegistry: labeled counters, gauges and histograms harvested
// from every layer after a run (pool depth, view changes, fork events,
// gas per block, trie node reads/writes, messages per consensus phase).
//
// The registry is a post-run sink, not a hot-path dependency: layers
// keep their own cheap counters during the simulation and export them
// into a registry via ExportMetrics(...) when a snapshot is wanted.
// Instruments are keyed by name plus a sorted label set, so the same
// metric emitted with labels in any order lands in one instrument and
// serialized output is deterministic.

#ifndef BLOCKBENCH_OBS_METRICS_H_
#define BLOCKBENCH_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"
#include "util/json.h"

namespace bb::obs {

/// Label set for one instrument, e.g. {{"node","3"},{"type","pbft_prepare"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  void AddCounter(const std::string& name, const Labels& labels,
                  uint64_t delta = 1);
  void SetGauge(const std::string& name, const Labels& labels, double value);
  /// Returns the histogram instrument, creating it if needed. The pointer
  /// stays valid for the registry's lifetime.
  Histogram* GetHistogram(const std::string& name, const Labels& labels);

  /// Lookups return 0 / nullptr when the instrument does not exist (or
  /// exists with a different kind).
  uint64_t CounterValue(const std::string& name, const Labels& labels) const;
  double GaugeValue(const std::string& name, const Labels& labels) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const Labels& labels) const;

  /// Folds `other` into this registry: counters add, gauges take the
  /// incoming value, histograms merge sample sets.
  void Merge(const MetricsRegistry& other);

  size_t size() const { return by_key_.size(); }
  bool empty() const { return by_key_.empty(); }

  /// Array of {name, labels, type, value...} objects in key order —
  /// embedded into blockbench-sweep-v1 rows.
  util::Json ToJson() const;
  /// Human-readable "name{k=v} = value" lines in key order.
  std::string RenderTable() const;

  /// Canonical instrument key: name{k=v,...} with labels sorted by key.
  static std::string Key(const std::string& name, const Labels& labels);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    Kind kind;
    std::string name;
    Labels labels;  // sorted by key
    uint64_t counter = 0;
    double gauge = 0;
    Histogram hist;
  };

  Instrument* Upsert(const std::string& name, const Labels& labels, Kind kind);
  const Instrument* Find(const std::string& name, const Labels& labels,
                         Kind kind) const;

  std::map<std::string, Instrument> by_key_;
};

}  // namespace bb::obs

#endif  // BLOCKBENCH_OBS_METRICS_H_
