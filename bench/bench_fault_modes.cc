// Extension bench: the two fault modes of Section 3.3 that the paper's
// evaluation does not plot — injected network delay and random response
// (message corruption) — swept against all four platform models (the
// three evaluated in the paper plus the ErisDB/Tendermint backend that
// was "under development").
//
// Expected shapes:
//   delay     — PoW (block interval >> delay) barely notices small
//               delays but forks more as delay approaches the interval;
//               BFT protocols' commit latency tracks the extra RTTs.
//   corruption — corrupted messages fail signature/MAC checks and are
//               retransmission-free in these protocols, so throughput
//               falls roughly with the fraction of surviving quorum
//               traffic; BFT protocols tolerate it until quorums break.

#include "common.h"

using namespace bb;
using namespace bb::bench;

namespace {

const char* kAllPlatforms[] = {"ethereum", "parity", "hyperledger", "erisdb",
                               "corda"};

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = args.full ? 180 : 80;

  SweepRunner runner("fault_modes", args);
  struct Row {
    const char* platform;
    bool corrupt_mode;  // false: delay sweep, true: corruption sweep
    double value;       // delay in seconds or corrupt fraction
  };
  std::vector<Row> rows;
  std::vector<uint64_t> orphans;
  for (const char* p : kAllPlatforms) {
    auto opts = OptionsFor(p);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    for (double delay : {0.0, 0.05, 0.2, 0.5}) {
      SweepCase c;
      c.config.options = *opts;
      c.config.rate = 40;
      c.config.duration = duration;
      c.labels = {{"platform", p},
                  {"mode", "delay"},
                  {"delay_ms", std::to_string(int(delay * 1e3))}};
      c.before = [delay](MacroRun& run) {
        run.rplatform().network().InjectDelay(delay);
      };
      size_t slot = rows.size();
      orphans.push_back(0);
      c.after = [&orphans, slot](MacroRun& run, const core::BenchReport&) {
        uint64_t worst = 0;
        for (size_t i = 0; i < run.rplatform().num_servers(); ++i) {
          worst = std::max<uint64_t>(
              worst, run.rplatform().node(i).chain().orphaned_blocks());
        }
        orphans[slot] = worst;
      };
      runner.Add(std::move(c));
      rows.push_back({p, false, delay});
    }
  }
  for (const char* p : kAllPlatforms) {
    auto opts = OptionsFor(p);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    for (double frac : {0.0, 0.02, 0.10, 0.25}) {
      SweepCase c;
      c.config.options = *opts;
      c.config.rate = 40;
      c.config.duration = duration;
      c.labels = {{"platform", p},
                  {"mode", "corrupt"},
                  {"corrupt_pct", std::to_string(int(frac * 100))}};
      c.before = [frac](MacroRun& run) {
        run.rplatform().network().SetCorruptProbability(frac);
      };
      runner.Add(std::move(c));
      orphans.push_back(0);
      rows.push_back({p, true, frac});
    }
  }

  bool printed_corrupt_header = false;
  PrintHeader("Fault mode: injected one-way network delay (YCSB, 8/8)");
  std::printf("%-12s %10s | %10s %12s %10s\n", "platform", "delay(ms)",
              "tput tx/s", "lat p50 (s)", "orphans");
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    const Row& row = rows[i];
    if (row.corrupt_mode && !printed_corrupt_header) {
      printed_corrupt_header = true;
      PrintHeader("Fault mode: random response (message corruption)");
      std::printf("%-12s %10s | %10s %12s\n", "platform", "corrupt%",
                  "tput tx/s", "lat p50 (s)");
    }
    if (!o.status.ok()) return;
    if (row.corrupt_mode) {
      std::printf("%-12s %10.0f | %10.1f %12.2f\n", row.platform,
                  row.value * 100, o.report.throughput, o.report.latency_p50);
    } else {
      std::printf("%-12s %10.0f | %10.1f %12.2f %10llu\n", row.platform,
                  row.value * 1e3, o.report.throughput, o.report.latency_p50,
                  (unsigned long long)orphans[i]);
    }
  });
  return ok ? 0 : 1;
}
