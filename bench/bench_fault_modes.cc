// Extension bench: the two fault modes of Section 3.3 that the paper's
// evaluation does not plot — injected network delay and random response
// (message corruption) — swept against all four platform models (the
// three evaluated in the paper plus the ErisDB/Tendermint backend that
// was "under development").
//
// Expected shapes:
//   delay     — PoW (block interval >> delay) barely notices small
//               delays but forks more as delay approaches the interval;
//               BFT protocols' commit latency tracks the extra RTTs.
//   corruption — corrupted messages fail signature/MAC checks and are
//               retransmission-free in these protocols, so throughput
//               falls roughly with the fraction of surviving quorum
//               traffic; BFT protocols tolerate it until quorums break.

#include "common.h"

using namespace bb;
using namespace bb::bench;

namespace {

const char* kAllPlatforms[] = {"ethereum", "parity", "hyperledger", "erisdb",
                               "corda"};

}  // namespace

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  double duration = full ? 180 : 80;

  PrintHeader("Fault mode: injected one-way network delay (YCSB, 8/8)");
  std::printf("%-12s %10s | %10s %12s %10s\n", "platform", "delay(ms)",
              "tput tx/s", "lat p50 (s)", "orphans");
  for (const char* p : kAllPlatforms) {
    for (double delay : {0.0, 0.05, 0.2, 0.5}) {
      MacroConfig cfg;
      cfg.options = OptionsFor(p);
      cfg.rate = 40;
      cfg.duration = duration;
      MacroRun run(cfg);
      run.rplatform().network().InjectDelay(delay);
      auto r = run.Run();
      uint64_t orphans = 0;
      for (size_t i = 0; i < run.rplatform().num_servers(); ++i) {
        orphans = std::max<uint64_t>(
            orphans, run.rplatform().node(i).chain().orphaned_blocks());
      }
      std::printf("%-12s %10.0f | %10.1f %12.2f %10llu\n", p, delay * 1e3,
                  r.throughput, r.latency_p50, (unsigned long long)orphans);
    }
  }

  PrintHeader("Fault mode: random response (message corruption)");
  std::printf("%-12s %10s | %10s %12s\n", "platform", "corrupt%",
              "tput tx/s", "lat p50 (s)");
  for (const char* p : kAllPlatforms) {
    for (double frac : {0.0, 0.02, 0.10, 0.25}) {
      MacroConfig cfg;
      cfg.options = OptionsFor(p);
      cfg.rate = 40;
      cfg.duration = duration;
      MacroRun run(cfg);
      run.rplatform().network().SetCorruptProbability(frac);
      auto r = run.Run();
      std::printf("%-12s %10.0f | %10.1f %12.2f\n", p, frac * 100,
                  r.throughput, r.latency_p50);
    }
  }
  return 0;
}
