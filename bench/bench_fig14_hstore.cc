// Figure 14 (Appendix B): the three blockchains versus H-Store on YCSB
// and Smallbank.
//
// Paper: H-Store reaches 142,702 tx/s (YCSB) and 21,596 tx/s (Smallbank,
// 6.6x lower due to distributed 2PC) with sub-millisecond latency, at
// least an order of magnitude above Hyperledger — the cost of Byzantine
// consensus. The blockchains, by contrast, lose only ~10% on Smallbank
// because every replica holds all state (no distributed transactions).

#include "baseline/hstore.h"
#include "common.h"

using namespace bb;
using namespace bb::bench;

namespace {

// YCSB over H-Store: single-key ops -> always single-partition.
baseline::HsTransaction YcsbTxn(Rng& rng) {
  baseline::HsTransaction t;
  baseline::KvOp op;
  op.is_write = rng.Bernoulli(0.5);
  op.key = "user" + std::to_string(rng.Uniform(100000));
  if (op.is_write) op.value = std::string(100, 'v');
  t.ops.push_back(std::move(op));
  return t;
}

// Smallbank over H-Store: multi-key transactions -> frequently 2PC.
baseline::HsTransaction SmallbankTxn(Rng& rng) {
  baseline::HsTransaction t;
  std::string a = "acct" + std::to_string(rng.Uniform(100000));
  std::string b = "acct" + std::to_string(rng.Uniform(100000));
  auto read = [](const std::string& k) {
    return baseline::KvOp{false, k, ""};
  };
  auto write = [](const std::string& k) {
    return baseline::KvOp{true, k, "100"};
  };
  double p = rng.NextDouble();
  if (p < 0.25) {  // sendPayment: two accounts
    t.ops = {read("c_" + a), write("c_" + a), read("c_" + b),
             write("c_" + b)};
  } else if (p < 0.40) {  // amalgamate: two accounts, three keys
    t.ops = {read("s_" + a), write("s_" + a), read("c_" + a),
             write("c_" + a), write("c_" + b)};
  } else if (p < 0.55) {  // getBalance
    t.ops = {read("s_" + a), read("c_" + a)};
  } else {  // single-account updates
    t.ops = {read("c_" + a), write("c_" + a)};
  }
  return t;
}

// Runs once saturated (throughput) and once at partial load (latency),
// like the paper's open-loop vs blocking driver modes.
double RunHStore(bool smallbank, double per_client_rate, double duration) {
  sim::Simulation sim(3);
  baseline::HStoreOptions opts;
  baseline::HStoreCluster cluster(&sim, opts);
  core::StatsCollector stats(8);
  std::vector<std::unique_ptr<baseline::HStoreClient>> clients;
  for (uint32_t i = 0; i < 8; ++i) {
    clients.push_back(std::make_unique<baseline::HStoreClient>(
        sim::NodeId(opts.num_sites + i), &cluster, i,
        smallbank ? SmallbankTxn : YcsbTxn, &stats, per_client_rate, duration,
        1000 + i));
  }
  for (auto& c : clients) c->Start();
  sim.RunUntil(duration + 5);
  return stats.Throughput(2, duration);
}

void ReportHStore(bool smallbank, double sat_rate, double duration,
                  double* tput_out) {
  double tput = RunHStore(smallbank, sat_rate, duration);
  // Latency at 40% load, where queueing is negligible (the paper's
  // blocking driver sees service latency, not queueing delay).
  sim::Simulation sim(4);
  baseline::HStoreOptions opts;
  baseline::HStoreCluster cluster(&sim, opts);
  core::StatsCollector stats(8);
  std::vector<std::unique_ptr<baseline::HStoreClient>> clients;
  for (uint32_t i = 0; i < 8; ++i) {
    clients.push_back(std::make_unique<baseline::HStoreClient>(
        sim::NodeId(opts.num_sites + i), &cluster, i,
        smallbank ? SmallbankTxn : YcsbTxn, &stats, tput * 0.4 / 8, duration,
        2000 + i));
  }
  for (auto& c : clients) c->Start();
  sim.RunUntil(duration + 5);
  std::printf("  %-10s H-Store: %10.0f tx/s peak, latency mean %.3f ms "
              "(p95 %.3f ms)\n",
              smallbank ? "Smallbank" : "YCSB", tput,
              stats.latencies().Mean() * 1e3,
              stats.latencies().Percentile(95) * 1e3);
  *tput_out = tput;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = args.full ? 60 : 20;

  PrintHeader("Figure 14: blockchains vs H-Store "
              "(paper: H-Store 142,702 / 21,596 tx/s)");
  double hs_ycsb = 0, hs_sb = 0;
  ReportHStore(false, 40'000, duration, &hs_ycsb);
  ReportHStore(true, 10'000, duration, &hs_sb);

  std::printf("\n");
  double chain_duration = args.full ? 180 : 70;
  double sat_rate[3] = {256, 64, 384};

  SweepRunner runner("fig14_hstore", args);
  struct Row {
    int pi;
    int wi;
  };
  std::vector<Row> rows;
  for (int pi = 0; pi < 3; ++pi) {
    auto opts = OptionsFor(kPlatforms[pi]);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    for (int wi = 0; wi < 2; ++wi) {
      WorkloadKind w = wi == 0 ? WorkloadKind::kYcsb : WorkloadKind::kSmallbank;
      MacroConfig cfg;
      cfg.options = *opts;
      cfg.rate = sat_rate[pi];
      cfg.duration = chain_duration;
      cfg.workload = w;
      runner.Add(std::move(cfg), {{"platform", kPlatforms[pi]},
                                  {"workload", WorkloadName(w)}});
      rows.push_back({pi, wi});
    }
  }

  double tput[3][2] = {};
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok()) return;
    tput[rows[i].pi][rows[i].wi] = o.report.throughput;
  });

  std::printf("%-12s | %12s %12s\n", "system", "YCSB tx/s", "Smallbank tx/s");
  for (int pi = 0; pi < 3; ++pi) {
    std::printf("%-12s | %12.1f %12.1f\n", kPlatforms[pi], tput[pi][0],
                tput[pi][1]);
  }
  std::printf("%-12s | %12.0f %12.0f\n", "h-store", hs_ycsb, hs_sb);
  return ok ? 0 : 1;
}
