// Figure 19 (Appendix B): scalability with the Smallbank benchmark
// (#clients = #servers = N). Same pattern as Fig 7, except Hyperledger
// collapses even earlier under the heavier transactions.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  std::vector<size_t> sizes = args.full
      ? std::vector<size_t>{1, 2, 4, 8, 12, 16, 20, 24, 28, 32}
      : std::vector<size_t>{2, 4, 8, 16, 24, 32};
  double duration = args.full ? 120 : 70;

  SweepRunner runner("fig19_smallbank_scal", args);
  struct Row {
    const char* platform;
    size_t n;
  };
  std::vector<Row> rows;
  for (int pi = 0; pi < 3; ++pi) {
    auto opts = OptionsFor(kPlatforms[pi]);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    for (size_t n : sizes) {
      MacroConfig cfg;
      cfg.options = *opts;
      cfg.servers = n;
      cfg.clients = n;
      cfg.rate = 80;
      cfg.duration = duration;
      cfg.drain = 20;
      cfg.workload = WorkloadKind::kSmallbank;
      runner.Add(std::move(cfg), {{"platform", kPlatforms[pi]},
                                  {"n", std::to_string(n)}});
      rows.push_back({kPlatforms[pi], n});
    }
  }

  PrintHeader("Figure 19: scalability, #clients = #servers = N (Smallbank)");
  std::printf("%-12s %4s | %10s %12s\n", "platform", "N", "tput tx/s",
              "lat p50 (s)");
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok()) return;
    std::printf("%-12s %4zu | %10.1f %12.2f\n", rows[i].platform, rows[i].n,
                o.report.throughput, o.report.latency_p50);
  });
  return ok ? 0 : 1;
}
