// Figure 19 (Appendix B): scalability with the Smallbank benchmark
// (#clients = #servers = N). Same pattern as Fig 7, except Hyperledger
// collapses even earlier under the heavier transactions.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  std::vector<size_t> sizes = full
      ? std::vector<size_t>{1, 2, 4, 8, 12, 16, 20, 24, 28, 32}
      : std::vector<size_t>{2, 4, 8, 16, 24, 32};
  double duration = full ? 120 : 70;

  PrintHeader("Figure 19: scalability, #clients = #servers = N (Smallbank)");
  std::printf("%-12s %4s | %10s %12s\n", "platform", "N", "tput tx/s",
              "lat p50 (s)");
  for (int pi = 0; pi < 3; ++pi) {
    for (size_t n : sizes) {
      MacroConfig cfg;
      cfg.options = OptionsFor(kPlatforms[pi]);
      cfg.servers = n;
      cfg.clients = n;
      cfg.rate = 80;
      cfg.duration = duration;
      cfg.drain = 20;
      cfg.workload = WorkloadKind::kSmallbank;
      MacroRun run(cfg);
      auto r = run.Run();
      std::printf("%-12s %4zu | %10.1f %12.2f\n", kPlatforms[pi], n,
                  r.throughput, r.latency_p50);
    }
  }
  return 0;
}
