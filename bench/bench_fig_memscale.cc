// Memory-scaling figure: per-node and cluster-wide peak footprint vs
// cluster size (DoNothing, all five platforms, N = 4..64). Not a figure
// from the paper — this is the memory companion to Figure 7's
// throughput-scalability sweep, built on the mem-observability stack.
//
// The offered load is light and fixed (clients and rate do not scale
// with N) and the workload writes no state, so the N-independent volume
// terms (chain, storage, pool) stay small and the protocol's own
// footprint carries the curve. Expected shape: PBFT-family platforms
// (hyperledger, erisdb) retain per-sequence vote certificates from all
// N peers — per-node footprint grows ~linearly in N and the cluster-wide
// total grows ~quadratically (the O(N^2) stressor of the scale
// campaign) — while PoA/PoW/Raft per-node footprint stays flat and the
// cluster total linear. mem_report --gate-scaling pins that contrast.
//
// Memory tracking is always on here (the sweep rows are useless without
// their mem blocks); pass --mem=PREFIX to additionally write one full
// blockbench-mem-v1 dump per case.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  std::vector<size_t> sizes = args.full
      ? std::vector<size_t>{4, 8, 16, 32, 64}
      : std::vector<size_t>{4, 8, 16, 32};
  double duration = args.full ? 60 : 40;
  const char* platforms[] = {"ethereum", "parity", "hyperledger", "erisdb",
                             "corda"};

  SweepRunner runner("fig_memscale", args);
  runner.EnableMemTracking();
  struct Row {
    const char* platform;
    size_t n;
  };
  std::vector<Row> rows;
  for (const char* platform : platforms) {
    auto opts = OptionsFor(platform);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    for (size_t n : sizes) {
      MacroConfig cfg;
      cfg.options = *opts;
      cfg.servers = n;
      // Light fixed load, no state writes: the volume terms are small
      // and N-independent by construction, so the fit isolates what the
      // *protocol* holds per node as the cluster grows.
      cfg.clients = 4;
      cfg.rate = 5;
      cfg.workload = WorkloadKind::kDoNothing;
      cfg.duration = duration;
      cfg.drain = 15;
      runner.Add(std::move(cfg),
                 {{"platform", platform}, {"n", std::to_string(n)}});
      rows.push_back({platform, n});
    }
  }

  PrintHeader("Memory scaling: peak footprint vs N (DoNothing, fixed load)");
  std::printf("%-12s %4s | %14s %14s %12s %10s\n", "platform", "N",
              "peak node B", "cluster peak B", "bytes/tx", "committed");
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok() || o.mem.is_null()) return;
    const util::Json* peak_node = o.mem.Get("peak_node_bytes");
    const util::Json* cluster = o.mem.Get("cluster_peak");
    const util::Json* per_tx = o.mem.Get("bytes_per_committed_tx");
    std::printf("%-12s %4zu | %14llu %14llu %12.1f %10llu\n", rows[i].platform,
                rows[i].n,
                (unsigned long long)(peak_node ? peak_node->AsUint() : 0),
                (unsigned long long)(cluster ? cluster->AsUint() : 0),
                per_tx ? per_tx->AsDouble() : 0.0,
                (unsigned long long)o.report.committed);
  });
  return ok ? 0 : 1;
}
