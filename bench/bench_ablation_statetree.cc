// Ablation (DESIGN.md §4): the data-model choice in isolation — Patricia
// trie vs bucket-Merkle tree vs plain KV, on the same MemKv substrate.
// Separates the structure's own cost from the storage engine underneath
// (which Fig 12 measures end-to-end).

#include <chrono>

#include "common.h"
#include "storage/bucket_tree.h"
#include "storage/memkv.h"
#include "storage/patricia_trie.h"

using namespace bb;
using namespace bb::bench;

namespace {

struct Cell {
  double write_ops = 0, read_ops = 0;
  uint64_t bytes = 0;
  uint64_t entries = 0;
};

template <typename PutFn, typename GetFn>
Cell Measure(uint64_t n, storage::KvStore& kv, PutFn put, GetFn get) {
  Rng rng(11);
  std::vector<std::string> keys;
  keys.reserve(n);
  const std::string value(100, 'v');
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < n; ++i) {
    keys.push_back("key" + std::to_string(rng.Next() % (n * 4)));
    put(keys.back(), value);
  }
  auto t1 = std::chrono::steady_clock::now();
  std::string out;
  uint64_t reads = std::min<uint64_t>(n, 100'000);
  for (uint64_t i = 0; i < reads; ++i) {
    get(keys[rng.Uniform(keys.size())], &out);
  }
  auto t2 = std::chrono::steady_clock::now();
  Cell c;
  c.write_ops = double(n) / std::chrono::duration<double>(t1 - t0).count();
  c.read_ops = double(reads) / std::chrono::duration<double>(t2 - t1).count();
  c.bytes = kv.size_bytes();
  c.entries = kv.num_entries();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  uint64_t n = args.full ? 1'000'000 : 200'000;

  util::Json rows = util::Json::Array();
  auto record = [&rows](const char* structure, const Cell& c) {
    util::Json row = util::Json::Object();
    util::Json labels = util::Json::Object();
    labels.Set("structure", structure);
    row.Set("labels", std::move(labels));
    row.Set("status", "Ok");
    util::Json metrics = util::Json::Object();
    metrics.Set("write_ops_per_sec", c.write_ops);
    metrics.Set("read_ops_per_sec", c.read_ops);
    metrics.Set("storage_bytes", c.bytes);
    metrics.Set("kv_entries", c.entries);
    row.Set("metrics", std::move(metrics));
    rows.Push(std::move(row));
  };

  PrintHeader("Ablation: state-structure cost (same in-memory substrate, " +
              std::to_string(n) + " writes)");
  std::printf("%-16s | %12s %12s %12s %10s\n", "structure", "write ops/s",
              "read ops/s", "store (MB)", "kv entries");

  {
    storage::MemKv kv;
    Cell c = Measure(
        n, kv, [&](const std::string& k, const std::string& v) { kv.Put(k, v); },
        [&](const std::string& k, std::string* out) { kv.Get(k, out); });
    std::printf("%-16s | %12.0f %12.0f %12.1f %10llu\n", "plain-kv",
                c.write_ops, c.read_ops, double(c.bytes) / 1e6,
                (unsigned long long)c.entries);
    record("plain-kv", c);
  }
  {
    storage::MemKv kv;
    storage::BucketMerkleTree tree(&kv, 1024);
    Cell c = Measure(
        n, kv,
        [&](const std::string& k, const std::string& v) { tree.Put(k, v); },
        [&](const std::string& k, std::string* out) { tree.Get(k, out); });
    tree.RootHash();
    std::printf("%-16s | %12.0f %12.0f %12.1f %10llu\n", "bucket-merkle",
                c.write_ops, c.read_ops, double(c.bytes) / 1e6,
                (unsigned long long)c.entries);
    record("bucket-merkle", c);
  }
  {
    storage::MemKv kv;
    storage::MerklePatriciaTrie trie(&kv, 1 << 20);
    Hash256 root = storage::MerklePatriciaTrie::EmptyRoot();
    Cell c = Measure(
        n, kv,
        [&](const std::string& k, const std::string& v) {
          auto r = trie.Put(root, k, v);
          if (r.ok()) root = *r;
        },
        [&](const std::string& k, std::string* out) {
          (void)trie.Get(root, k, out);
        });
    std::printf("%-16s | %12.0f %12.0f %12.1f %10llu\n", "patricia-trie",
                c.write_ops, c.read_ops, double(c.bytes) / 1e6,
                (unsigned long long)c.entries);
    record("patricia-trie", c);
    std::printf("\npatricia-trie amplification: %.1fx space vs plain kv, "
                "%llu node writes for %llu puts\n",
                double(c.bytes) / double(n * 123),
                (unsigned long long)trie.stats().node_writes,
                (unsigned long long)n);
  }

  if (!args.json_path.empty()) {
    util::Json doc = util::Json::Object();
    doc.Set("schema", "blockbench-sweep-v1");
    doc.Set("bench", "ablation_statetree");
    doc.Set("full", args.full);
    doc.Set("rows", std::move(rows));
    std::string text = doc.Dump(2);
    text.push_back('\n');
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ablation_statetree: cannot write %s\n",
                   args.json_path.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return 0;
}
