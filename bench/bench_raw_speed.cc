// Raw-speed campaign end-to-end gate: the PBFT 16-node YCSB macro run
// (ROADMAP's reference point for the message/crypto hot path), executed
// twice inside one binary — once with the legacy slow paths forced
// (scalar SHA-256, no hash memoization, per-message digest loops) and
// once with every optimization enabled. The two variants are the same
// simulation (identical virtual-time results; the bench asserts it), so
// the events/sec ratio isolates the wall-clock win on the machine that
// runs the bench. CI gates on that same-run ratio plus an absolute
// comparison against the committed seed baseline
// (bench/baselines/BENCH_SEED_pbft16_ycsb.json) via bench_report.
//
// --jobs is forced to 1: the legacy toggle is process-wide, and timing
// two variants concurrently would let them steal each other's cycles.
// A side effect worth keeping: output is trivially identical at any
// requested --jobs value.

#include "common.h"
#include "util/perf.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  args.jobs = 1;  // see header comment: variants must time in isolation
  double duration = args.full ? 60 : 30;

  auto opts = OptionsFor("hyperledger");
  if (!opts.ok()) return UsageError(argv[0], opts.status());

  MacroConfig cfg;
  cfg.options = *opts;
  cfg.servers = 16;
  cfg.clients = 16;
  cfg.rate = 100;
  cfg.duration = duration;
  cfg.drain = 15;
  cfg.warmup = 5;
  cfg.workload = WorkloadKind::kYcsb;
  cfg.seed = 7;

  SweepRunner runner("raw_speed", args);
  const char* variants[] = {"legacy", "optimized"};
  for (const char* v : variants) {
    SweepCase c;
    c.config = cfg;
    c.labels = {{"bench", "raw_speed"}, {"variant", v}};
    bool legacy = std::string(v) == "legacy";
    c.before = [legacy](MacroRun&) { perf::SetLegacyMode(legacy); };
    c.after = [](MacroRun&, const core::BenchReport&) {
      perf::SetLegacyMode(false);
    };
    runner.Add(std::move(c));
  }

  PrintHeader("Raw-speed campaign: PBFT 16-node YCSB, legacy vs optimized");
  std::printf("%10s | %10s %10s | %12s %14s\n", "variant", "tput tx/s",
              "committed", "sim events", "events/sec");
  uint64_t committed[2] = {0, 0};
  double events_per_sec[2] = {0, 0};
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok()) return;
    std::printf("%10s | %10.1f %10llu | %12llu %14.0f\n", variants[i],
                o.report.throughput, (unsigned long long)o.report.committed,
                (unsigned long long)o.events, o.events_per_sec);
    committed[i] = o.report.committed;
    events_per_sec[i] = o.events_per_sec;
  });
  if (!ok) return 1;

  // The toggle must not leak into simulated behaviour.
  if (committed[0] != committed[1]) {
    std::fprintf(stderr,
                 "FAIL: legacy and optimized variants diverged "
                 "(%llu vs %llu committed) — the perf toggle changed "
                 "simulated results\n",
                 (unsigned long long)committed[0],
                 (unsigned long long)committed[1]);
    return 1;
  }
  if (events_per_sec[0] > 0) {
    std::printf("\noptimized/legacy events-per-sec ratio: %.2fx\n",
                events_per_sec[1] / events_per_sec[0]);
  }

  // With --profile, attribute the win: same diff table prof_report
  // prints for `--diff legacy.prof.json optimized.prof.json`, so every
  // raw-speed step can land with a profile-diff in the PR.
  if (runner.profiling()) {
    const obs::Profiler* legacy = runner.profiler(0);
    const obs::Profiler* optimized = runner.profiler(1);
    if (legacy != nullptr && optimized != nullptr) {
      PrintHeader("Wall-profile diff: legacy -> optimized");
      std::fputs(
          obs::RenderProfileDiff(legacy->ToJson(), optimized->ToJson())
              .c_str(),
          stdout);
      std::printf("\nprofiles written: %s / %s\n",
                  runner.ProfilePath(0).c_str(),
                  runner.ProfilePath(1).c_str());
    }
  }
  return 0;
}
