// Layer-stack ablation: sweep consensus x state-tree x execution over the
// YCSB workload, one throughput/latency row per stack — the experiment
// family the paper's four-layer taxonomy (§3) enables. Attribution works
// by differencing rows: e.g. PBFT+trie+evm vs PBFT+bucket+native isolates
// the Hyperledger data/execution layers under identical ordering, and
// swapping only the consensus column reprices ordering under an identical
// data/execution stack (the Fig 14-style decomposition).
//
// Stacks are built through the PlatformRegistry's spec grammar
// ("pbft+trie+evm"), so every row here is runnable verbatim via
//   bbench --platform=<stack> --workload=ycsb
//
// Default: the 10 trie/bucket x evm/native combinations per consensus
// engine with chain-based and BFT consensus; --full adds the noop
// execution layer (consensus+data in isolation).

#include "common.h"

using namespace bb;
using namespace bb::bench;

namespace {

MacroConfig StackConfig(const platform::PlatformOptions& options,
                        double duration) {
  MacroConfig cfg;
  cfg.options = options;
  cfg.servers = 4;
  cfg.clients = 4;
  cfg.rate = 30;
  cfg.duration = duration;
  cfg.drain = 20;
  cfg.warmup = 10;
  cfg.ycsb_records = 1000;
  return cfg;
}

void PrintRow(const std::string& name, const core::BenchReport& r) {
  std::printf("%-38s %10.1f %10.3f %10.3f %10llu\n", name.c_str(),
              r.throughput, r.latency_p50, r.latency_p95,
              (unsigned long long)r.committed);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = args.full ? 120 : 60;

  const char* consensus[] = {"pow", "poa", "pbft", "tendermint", "raft"};
  const char* trees[] = {"trie", "bucket"};
  std::vector<const char*> engines = {"evm", "native"};
  if (args.full) engines.push_back("noop");

  SweepRunner runner("ablation_layers", args);
  struct Row {
    std::string name;
    const char* consensus;  // null for registry rows
  };
  std::vector<Row> rows;
  for (const char* c : consensus) {
    for (const char* t : trees) {
      for (const char* e : engines) {
        std::string spec = std::string(c) + "+" + t + "+" + e;
        auto options = platform::StackOptionsFromString(spec);
        if (!options.ok()) {
          std::fprintf(stderr, "skip %s: %s\n", spec.c_str(),
                       options.status().ToString().c_str());
          continue;
        }
        runner.Add(StackConfig(*options, duration), {{"stack", spec}});
        rows.push_back({spec, c});
      }
    }
  }
  for (const auto& name : platform::PlatformRegistry::Instance().Names()) {
    auto options = platform::PlatformRegistry::Instance().Make(name);
    runner.Add(StackConfig(*options, duration), {{"platform", name}});
    rows.push_back(
        {name + " (" + platform::ToString(options->stack) + ")", nullptr});
  }

  PrintHeader("Layer ablation: consensus x state tree x execution, YCSB 4/4");
  std::printf("%-38s %10s %10s %10s %10s\n", "stack", "tput tx/s", "p50 (s)",
              "p95 (s)", "committed");
  bool printed_registry_header = false;
  const char* last_consensus = nullptr;
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    const Row& row = rows[i];
    if (row.consensus == nullptr && !printed_registry_header) {
      printed_registry_header = true;
      PrintHeader("Canonical registry stacks (calibrated models), same load");
    } else if (row.consensus != nullptr && last_consensus != nullptr &&
               row.consensus != last_consensus) {
      std::printf("\n");
    }
    last_consensus = row.consensus;
    if (!o.status.ok()) return;
    PrintRow(row.name, o.report);
  });
  return ok ? 0 : 1;
}
