// Figure 14 companion: sharding as a first-class platform axis. Where
// bench_ablation_sharding measures the coordination-FREE upper bound (K
// disjoint clusters, no cross-shard transactions by construction), this
// bench runs the real thing: one ShardedPlatform ("hyperledger@shards=S")
// whose S PBFT groups share a hash-partitioned Smallbank state and pay
// for cross-shard payments with coordinator-driven 2PC. Sweeping the
// cross-shard ratio shows the H-Store-style trade-off the paper points
// at: near-linear scaling at ratio 0, eroding as 2PC traffic grows.
//
// Gate (CI): 4 shards at ratio 0 must commit >= 2.5x the single-shard
// throughput — the scaling claim behind promoting the axis at all.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = args.full ? 120 : 45;
  const size_t kShardSize = 4;       // servers per shard
  const size_t kClientsPerShard = 4;
  // Per-shard offered load (4 x 450 = 1800 tx/s) sits ~1.4x above a
  // 4-server PBFT group's ~1250 tx/s sustainable capacity, so every
  // shard runs saturated and the S-shard speedup measures real capacity
  // scaling, not offered-load bookkeeping.
  const double kRate = 450;

  std::vector<size_t> shard_counts = {1, 2, 4, 8};
  std::vector<double> ratios = args.full
      ? std::vector<double>{0.0, 0.05, 0.1, 0.3, 0.5}
      : std::vector<double>{0.0, 0.1};

  SweepRunner runner("fig14_sharded", args);
  struct Row {
    size_t shards;
    double ratio;
  };
  std::vector<Row> rows;
  for (size_t shards : shard_counts) {
    for (double ratio : ratios) {
      if (shards == 1 && ratio > 0) continue;  // nothing to straddle
      std::string spec = "hyperledger";
      if (shards > 1) spec += "@shards=" + std::to_string(shards);
      auto opts = OptionsFor(spec);
      if (!opts.ok()) return UsageError(argv[0], opts.status());
      MacroConfig cfg;
      cfg.options = *opts;
      cfg.servers = kShardSize;  // per shard
      cfg.clients = kClientsPerShard * shards;
      cfg.rate = kRate;
      cfg.duration = duration;
      cfg.drain = 30;
      cfg.workload = WorkloadKind::kSmallbank;
      cfg.cross_shard_ratio = ratio;
      char ratio_label[16];
      std::snprintf(ratio_label, sizeof(ratio_label), "%.2f", ratio);
      runner.Add(std::move(cfg), {{"shards", std::to_string(shards)},
                                  {"ratio", ratio_label}});
      rows.push_back({shards, ratio});
    }
  }

  PrintHeader("Figure 14 companion: sharded PBFT + 2PC (Smallbank, "
              "hash-partitioned)");
  std::printf("%6s %6s | %10s %12s | %8s %8s %8s\n", "shards", "ratio",
              "tput tx/s", "lat p50 (s)", "xs sub", "xs cmt", "xs abt");
  double tput_1 = 0, tput_4 = 0;
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok()) return;
    std::printf("%6zu %6.2f | %10.1f %12.2f | %8llu %8llu %8llu\n",
                rows[i].shards, rows[i].ratio, o.report.throughput,
                o.report.latency_p50,
                (unsigned long long)o.report.xs_submitted,
                (unsigned long long)o.report.xs_committed,
                (unsigned long long)o.report.xs_aborted);
    if (rows[i].ratio == 0) {
      if (rows[i].shards == 1) tput_1 = o.report.throughput;
      if (rows[i].shards == 4) tput_4 = o.report.throughput;
    }
  });

  if (tput_1 > 0) {
    double speedup = tput_4 / tput_1;
    std::printf("\n4-shard speedup at ratio 0: %.2fx (gate: >= 2.5x)\n",
                speedup);
    if (speedup < 2.5) {
      std::fprintf(stderr,
                   "%s: FAIL: 4-shard/1-shard speedup %.2fx < 2.5x\n",
                   argv[0], speedup);
      ok = false;
    }
  }
  std::printf(
      "\nUnlike the ablation's disjoint clusters, every point here pays the\n"
      "cross-shard protocol: prepares and commits are sealed into the\n"
      "participant chains, so `--audit` runs can replay atomicity.\n");
  return ok ? 0 : 1;
}
