// Figure 9: fault tolerance — 4 servers killed at t=250 s with 8 clients,
// for 12- and 16-server networks. Reports committed transactions per
// 10-second window over the 400 s run.
//
// Paper shape: Ethereum nearly unaffected; Parity unaffected (surviving
// authorities produce MORE blocks each); Hyperledger-12 stops entirely
// (4 > f = 3) and Hyperledger-16 recovers at a reduced rate.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  const double kill_time = 250;
  const double end_time = args.full ? 400 : 360;

  // series[platform][{12,16}] -> per-bin committed counts
  std::vector<std::vector<std::vector<double>>> series(
      3, std::vector<std::vector<double>>(2));
  std::vector<std::vector<obs::AuditReport>> audits(
      3, std::vector<obs::AuditReport>(2));
  // One flight recorder per case: a violated audit dumps the black box
  // and prints the bbench --replay line that reproduces it.
  std::vector<std::vector<std::unique_ptr<obs::FlightRecorder>>> recorders(3);
  std::vector<std::vector<obs::RunSpec>> specs(3, std::vector<obs::RunSpec>(2));

  SweepRunner runner("fig9_crash", args);
  for (int pi = 0; pi < 3; ++pi) {
    auto opts = OptionsFor(kPlatforms[pi]);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    for (int si = 0; si < 2; ++si) {
      size_t servers = si == 0 ? 12 : 16;
      SweepCase c;
      c.config.options = *opts;
      c.config.servers = servers;
      c.config.clients = 8;
      c.config.rate = 60;
      c.config.duration = end_time;
      c.config.drain = 0;
      c.labels = {{"platform", kPlatforms[pi]},
                  {"servers", std::to_string(servers)}};
      recorders[size_t(pi)].push_back(std::make_unique<obs::FlightRecorder>());
      c.config.recorder = recorders[size_t(pi)].back().get();
      obs::RunSpec& spec = specs[size_t(pi)][size_t(si)];
      spec = RunSpecFromMacro(c.config);
      for (size_t k = servers - 4; k < servers; ++k) {
        spec.crashes.emplace_back(uint64_t(k), kill_time);
      }
      c.before = [servers, kill_time](MacroRun& run) {
        // Kill the last four servers (none of them hosts a client).
        run.rsim().At(kill_time, [&run, servers] {
          for (size_t k = servers - 4; k < servers; ++k) {
            run.rplatform().network().Crash(sim::NodeId(k));
          }
        });
      };
      std::vector<double>* out = &series[size_t(pi)][size_t(si)];
      obs::AuditReport* audit = &audits[size_t(pi)][size_t(si)];
      c.after = [out, audit, end_time](MacroRun& run,
                                       const core::BenchReport&) {
        for (size_t s = 0; s < size_t(end_time); s += 10) {
          double sum = 0;
          for (size_t t = s; t < s + 10 && t < size_t(end_time); ++t) {
            sum += run.driver().stats().CommittedInSecond(t);
          }
          out->push_back(sum);
        }
        obs::AuditorConfig ac;
        ac.confirmation_depth = run.config().options.confirmation_depth;
        ac.end_time = end_time;
        *audit = platform::RunAudit(run.rplatform(), ac);
      };
      runner.Add(std::move(c));
    }
  }

  bool ok = runner.Run(nullptr);

  PrintHeader("Figure 9: committed tx per 10 s; 4 servers crash at t=250 s");
  std::printf("%8s", "time(s)");
  for (const char* p : kPlatforms) {
    std::printf(" %12s-12 %12s-16", p, p);
  }
  std::printf("\n");
  size_t bins = series[0][0].size();
  for (size_t b = 0; b < bins; ++b) {
    std::printf("%8zu", b * 10);
    for (int pi = 0; pi < 3; ++pi) {
      std::printf(" %15.0f %15.0f", series[size_t(pi)][0][b],
                  series[size_t(pi)][1][b]);
    }
    std::printf("\n");
  }

  PrintHeader("Ledger audit (cross-node forensics after the crashes)");
  for (int pi = 0; pi < 3; ++pi) {
    for (int si = 0; si < 2; ++si) {
      const obs::AuditReport& audit = audits[size_t(pi)][size_t(si)];
      std::printf("%s-%d:\n%s", kPlatforms[pi], si == 0 ? 12 : 16,
                  audit.RenderTable().c_str());
      if (!audit.ok()) {
        // Violated invariant -> dump the black box and print the exact
        // replay-to-failure command next to it.
        std::string dump = std::string("fig9-") + kPlatforms[pi] + "-" +
                           (si == 0 ? "12" : "16") + ".blackbox.json";
        obs::BlackboxTrigger trig{"audit_violation",
                                  audit.violations.front().invariant,
                                  audit.violations.front().detail};
        Status ws = recorders[size_t(pi)][size_t(si)]->WriteJson(
            dump, specs[size_t(pi)][size_t(si)], trig);
        if (ws.ok()) {
          std::printf("    repro: bbench --replay=%s\n", dump.c_str());
        } else {
          std::fprintf(stderr, "fig9: blackbox write failed: %s\n",
                       ws.ToString().c_str());
          ok = false;
        }
      }
    }
  }
  return ok ? 0 : 1;
}
