// Figure 16 (Appendix B): CPU and network utilization over 100 seconds
// (8 clients, 8 servers, YCSB at saturation), sampled on server 1.
//
// Paper shape: Ethereum is CPU-bound (mining saturates its reserved
// cores, ~80-90%); Hyperledger uses CPU sparingly but far more network
// (PBFT broadcasts); Parity has low footprints on both.

#include <map>

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = 100;

  std::vector<std::vector<double>> cpu(3), mbps(3);
  std::vector<std::map<std::string, uint64_t>> msgs(3);
  // Ethereum at saturation (CPU-bound mining); Hyperledger at ~60% load,
  // where the paper's low-CPU / high-network contrast is visible.
  double sat_rate[3] = {256, 64, 100};

  SweepRunner runner("fig16_utilization", args);
  for (int pi = 0; pi < 3; ++pi) {
    auto opts = OptionsFor(kPlatforms[pi]);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    SweepCase c;
    c.config.options = *opts;
    c.config.rate = sat_rate[pi];
    c.config.duration = duration;
    c.config.drain = 0;
    c.labels = {{"platform", kPlatforms[pi]}};
    std::vector<double>* cpu_out = &cpu[size_t(pi)];
    std::vector<double>* mbps_out = &mbps[size_t(pi)];
    std::map<std::string, uint64_t>* msgs_out = &msgs[size_t(pi)];
    c.after = [cpu_out, mbps_out, msgs_out, duration](
                  MacroRun& run, const core::BenchReport&) {
      const auto& meter = run.rplatform().node(1).meter();
      for (size_t s = 0; s < size_t(duration); s += 5) {
        cpu_out->push_back(meter.CpuUtilizationAt(s) * 100);
        mbps_out->push_back(meter.NetworkMbpsAt(s));
      }
      *msgs_out = meter.msgs_sent_by_type();
    };
    runner.Add(std::move(c));
  }

  bool ok = runner.Run(nullptr);

  PrintHeader("Figure 16: resource utilization over time (server 1)");
  std::printf("%8s | %8s %8s | %8s %8s | %8s %8s\n", "time(s)", "eth-cpu%",
              "eth-Mbps", "par-cpu%", "par-Mbps", "hl-cpu%", "hl-Mbps");
  for (size_t b = 0; b < cpu[0].size(); ++b) {
    std::printf("%8zu | %8.1f %8.2f | %8.1f %8.2f | %8.1f %8.2f\n", b * 5,
                cpu[0][b], mbps[0][b], cpu[1][b], mbps[1][b], cpu[2][b],
                mbps[2][b]);
  }

  // Where the network time goes: messages sent by server 1, per type.
  // The PBFT broadcast phases dominating Hyperledger's traffic is the
  // paper's explanation for its network-heavy profile.
  std::printf("\nmessages sent by server 1, per type:\n");
  for (int pi = 0; pi < 3; ++pi) {
    std::printf("  %-12s", kPlatforms[pi]);
    uint64_t total = 0;
    for (const auto& [type, n] : msgs[size_t(pi)]) total += n;
    std::printf(" total %8llu |", (unsigned long long)total);
    for (const auto& [type, n] : msgs[size_t(pi)]) {
      std::printf(" %s=%llu", type.c_str(), (unsigned long long)n);
    }
    std::printf("\n");
  }
  return ok ? 0 : 1;
}
