// Figure 6: client request queue length over time at per-client request
// rates of 8 tx/s and 512 tx/s (8 clients, 8 servers, YCSB).
//
// Paper shape: at 8 tx/s Ethereum and Hyperledger queues stay ~constant
// while Parity's grows (offered 64 tx/s > its ~45 tx/s capacity); at
// 512 tx/s Parity's queue is the SMALLEST because the server enforces a
// per-client admission cap.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  double duration = full ? 300 : 150;

  for (double rate : {8.0, 512.0}) {
    PrintHeader("Figure 6: queue length over time, " +
                std::to_string(int(rate)) + " tx/s per client");
    std::printf("%8s %14s %14s %14s\n", "time(s)", "ethereum", "parity",
                "hyperledger");
    // Run the three platforms, then print a merged table.
    std::vector<std::vector<double>> queues(3);
    for (int pi = 0; pi < 3; ++pi) {
      MacroConfig cfg;
      cfg.options = OptionsFor(kPlatforms[pi]);
      cfg.rate = rate;
      cfg.duration = duration;
      cfg.drain = 0;
      MacroRun run(cfg);
      run.Run();
      for (size_t s = 0; s < size_t(duration); s += 10) {
        queues[size_t(pi)].push_back(run.driver().stats().QueueLengthAt(s));
      }
    }
    for (size_t i = 0; i * 10 < size_t(duration); ++i) {
      std::printf("%8zu %14.0f %14.0f %14.0f\n", i * 10, queues[0][i],
                  queues[1][i], queues[2][i]);
    }
  }
  return 0;
}
