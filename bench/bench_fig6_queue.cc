// Figure 6: client request queue length over time at per-client request
// rates of 8 tx/s and 512 tx/s (8 clients, 8 servers, YCSB).
//
// Paper shape: at 8 tx/s Ethereum and Hyperledger queues stay ~constant
// while Parity's grows (offered 64 tx/s > its ~45 tx/s capacity); at
// 512 tx/s Parity's queue is the SMALLEST because the server enforces a
// per-client admission cap.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = args.full ? 300 : 150;
  const double rates[2] = {8.0, 512.0};

  SweepRunner runner("fig6_queue", args);
  // queues[rate index][platform index] -> samples every 10 s.
  std::vector<double> queues[2][3];
  for (int ri = 0; ri < 2; ++ri) {
    for (int pi = 0; pi < 3; ++pi) {
      auto opts = OptionsFor(kPlatforms[pi]);
      if (!opts.ok()) return UsageError(argv[0], opts.status());
      SweepCase c;
      c.config.options = *opts;
      c.config.rate = rates[ri];
      c.config.duration = duration;
      c.config.drain = 0;
      c.labels = {{"platform", kPlatforms[pi]},
                  {"rate", std::to_string(int(rates[ri]))}};
      std::vector<double>* out = &queues[ri][pi];
      c.after = [out, duration](MacroRun& run, const core::BenchReport&) {
        for (size_t s = 0; s < size_t(duration); s += 10) {
          out->push_back(run.driver().stats().QueueLengthAt(s));
        }
      };
      runner.Add(std::move(c));
    }
  }

  bool ok = runner.Run(nullptr);
  for (int ri = 0; ri < 2; ++ri) {
    PrintHeader("Figure 6: queue length over time, " +
                std::to_string(int(rates[ri])) + " tx/s per client");
    std::printf("%8s %14s %14s %14s\n", "time(s)", "ethereum", "parity",
                "hyperledger");
    for (size_t i = 0; i * 10 < size_t(duration); ++i) {
      double e = i < queues[ri][0].size() ? queues[ri][0][i] : 0;
      double p = i < queues[ri][1].size() ? queues[ri][1][i] : 0;
      double h = i < queues[ri][2].size() ? queues[ri][2][i] : 0;
      std::printf("%8zu %14.0f %14.0f %14.0f\n", i * 10, e, p, h);
    }
  }
  return ok ? 0 : 1;
}
