// Shared harness for the figure benchmarks: constructs a platform +
// workload + driver stack in one object, and fans independent sweep
// points out across a thread pool (each MacroRun owns its Simulation,
// so points never share state). Every bench binary built on this header
// understands:
//   --full         the long (paper-scale) sweep
//   --jobs=N       worker threads (default: hardware concurrency)
//   --json=PATH    machine-readable results (schema: blockbench-sweep-v1,
//                  see docs/BENCHMARKING.md)
//   --profile=PREFIX  wall-clock profile per sweep point: writes
//                  PREFIX-<i>.prof.json (blockbench-profile-v1) and
//                  PREFIX-<i>.folded (flamegraph format), and embeds a
//                  "wall_profile" section in each sweep-v1 row
//   --mem=PREFIX   memory accounting per sweep point: writes
//                  PREFIX-<i>.mem.json (blockbench-mem-v1) and embeds a
//                  "mem" section in each sweep-v1 row. Logical bytes on
//                  virtual time — deterministic, safe in golden digests.

#ifndef BLOCKBENCH_BENCH_COMMON_H_
#define BLOCKBENCH_BENCH_COMMON_H_

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/driver.h"
#include "obs/memtrack.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "platform/forensics.h"
#include "platform/platform.h"
#include "platform/registry.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/thread_pool.h"
#include "workloads/contracts.h"
#include "workloads/donothing.h"
#include "workloads/smallbank.h"
#include "workloads/ycsb.h"

namespace bb::bench {

enum class WorkloadKind { kYcsb, kSmallbank, kDoNothing };

inline const char* WorkloadName(WorkloadKind w) {
  switch (w) {
    case WorkloadKind::kYcsb: return "YCSB";
    case WorkloadKind::kSmallbank: return "Smallbank";
    case WorkloadKind::kDoNothing: return "DoNothing";
  }
  return "?";
}

/// Resolves a registered platform name or a "pbft+trie+evm"-style stack
/// spec via the PlatformRegistry. InvalidArgument on unknown names —
/// bench mains report it and exit non-zero (no abort).
inline Result<platform::PlatformOptions> OptionsFor(const std::string& name) {
  return platform::StackOptionsFromString(name);
}

inline const char* kPlatforms[] = {"ethereum", "parity", "hyperledger"};

struct MacroConfig {
  platform::PlatformOptions options;
  size_t servers = 8;
  size_t clients = 8;
  double rate = 8;            // per client, tx/s
  size_t max_outstanding = 0;
  double duration = 120;
  double drain = 30;
  double warmup = 15;
  WorkloadKind workload = WorkloadKind::kYcsb;
  uint64_t seed = 1;
  /// Fraction of YCSB/Smallbank transactions that deliberately straddle
  /// shards (only meaningful when options.num_shards > 1). `servers` is
  /// then the per-shard cluster size.
  double cross_shard_ratio = 0;
  /// Smaller preloads keep bench startup fast without changing shape.
  uint64_t ycsb_records = 2000;
  uint64_t smallbank_accounts = 2000;
  /// Optional tracer, attached to the simulation before the platform is
  /// built (so every layer sees it). Not owned; must outlive the run.
  obs::Tracer* tracer = nullptr;
  /// Optional live sampler. Init() attaches the standard per-server
  /// probes and schedules ticks through duration + drain; the timeline
  /// lands in the sweep row / trace counter tracks. Not owned; must
  /// outlive the run, and each sweep case needs its own instance.
  obs::Sampler* sampler = nullptr;
  /// Optional flight recorder (black-box event rings + replay dumps).
  /// Attached before the platform is built, like the tracer. Not owned;
  /// must outlive the run, one instance per sweep case.
  obs::FlightRecorder* recorder = nullptr;
  /// Optional per-subsystem memory accounting (logical bytes, virtual
  /// time). Attached before the platform is built so node construction
  /// binds the layer gauges. Not owned; one instance per sweep case.
  obs::MemTracker* memtracker = nullptr;
};

/// The RunSpec a blackbox dump embeds for a MacroRun-driven experiment,
/// so `bbench --replay=DUMP` re-runs it. The bench harness seeds the
/// three layers differently (simulation = config.seed, platform =
/// MakePlatform's default, driver = DriverConfig's default), so all
/// three land in the spec explicitly. Fault-schedule fields stay at
/// their "none" defaults; benches that inject faults in a `before` hook
/// fill them in before dumping.
inline obs::RunSpec RunSpecFromMacro(const MacroConfig& c) {
  obs::RunSpec s;
  s.platform = c.options.name;
  if (c.options.num_shards > 1 &&
      s.platform.find("@shards=") == std::string::npos) {
    s.platform += "@shards=" + std::to_string(c.options.num_shards);
  }
  switch (c.workload) {
    case WorkloadKind::kYcsb: s.workload = "ycsb"; break;
    case WorkloadKind::kSmallbank: s.workload = "smallbank"; break;
    case WorkloadKind::kDoNothing: s.workload = "donothing"; break;
  }
  s.servers = c.servers;
  s.clients = c.clients;
  s.cross_shard = c.cross_shard_ratio;
  s.rate = c.rate;
  s.duration = c.duration;
  s.warmup = c.warmup;
  s.drain = c.drain;
  s.max_outstanding = c.max_outstanding;
  s.seed = c.seed;
  s.platform_seed = 42;  // MakePlatform's default (MacroRun passes none)
  s.driver_seed = core::DriverConfig{}.seed;
  s.ycsb_records = c.ycsb_records;
  s.smallbank_accounts = c.smallbank_accounts;
  return s;
}

/// One macro experiment: platform cluster + driver + workload.
class MacroRun {
 public:
  /// Builds the full stack; InvalidArgument/Internal instead of abort
  /// when the options are inconsistent or workload setup fails.
  static Result<std::unique_ptr<MacroRun>> Create(MacroConfig config) {
    auto run = std::unique_ptr<MacroRun>(new MacroRun(std::move(config)));
    Status s = run->Init();
    if (!s.ok()) return s;
    return run;
  }

  /// Schedule fault/attack events before calling Run().
  sim::Simulation& rsim() { return *sim_; }
  platform::Platform& rplatform() { return *platform_; }
  core::Driver& driver() { return *driver_; }

  core::BenchReport Run() {
    driver_->Run();
    return driver_->Report();
  }

  const MacroConfig& config() const { return config_; }

 private:
  explicit MacroRun(MacroConfig config) : config_(std::move(config)) {}

  Status Init() {
    BB_RETURN_IF_ERROR(config_.options.Validate());
    sim_ = std::make_unique<sim::Simulation>(config_.seed);
    if (config_.tracer != nullptr) sim_->set_tracer(config_.tracer);
    if (config_.recorder != nullptr) sim_->set_recorder(config_.recorder);
    if (config_.memtracker != nullptr) sim_->set_memtracker(config_.memtracker);
    // MakePlatform dispatches on options.num_shards: `servers` is the
    // per-shard cluster size, so the sharded total is shards * servers.
    platform_ = platform::MakePlatform(sim_.get(), config_.options,
                                       config_.servers);
    switch (config_.workload) {
      case WorkloadKind::kYcsb: {
        workloads::YcsbConfig yc;
        yc.record_count = config_.ycsb_records;
        yc.cross_shard_ratio = config_.cross_shard_ratio;
        workload_ = std::make_unique<workloads::YcsbWorkload>(yc);
        break;
      }
      case WorkloadKind::kSmallbank: {
        workloads::SmallbankConfig sc;
        sc.num_accounts = config_.smallbank_accounts;
        sc.cross_shard_ratio = config_.cross_shard_ratio;
        workload_ = std::make_unique<workloads::SmallbankWorkload>(sc);
        break;
      }
      case WorkloadKind::kDoNothing:
        workload_ = std::make_unique<workloads::DoNothingWorkload>();
        break;
    }
    Status s = workload_->Setup(platform_.get());
    if (!s.ok()) {
      return Status::Internal("workload setup failed: " + s.ToString());
    }
    core::DriverConfig dc;
    dc.num_clients = config_.clients;
    dc.request_rate = config_.rate;
    dc.max_outstanding = config_.max_outstanding;
    dc.duration = config_.duration;
    dc.drain = config_.drain;
    dc.warmup = config_.warmup;
    driver_ = std::make_unique<core::Driver>(platform_.get(), workload_.get(),
                                             dc);
    if (config_.sampler != nullptr) {
      platform::AttachStandardProbes(config_.sampler, platform_.get());
      config_.sampler->Schedule(sim_.get(),
                                config_.duration + config_.drain);
    }
    return Status::Ok();
  }

  MacroConfig config_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<platform::Platform> platform_;
  std::unique_ptr<core::WorkloadConnector> workload_;
  std::unique_ptr<core::Driver> driver_;
};

using util::FlagDouble;
using util::FlagUint;
using util::FlagValue;
using util::HasFlag;

/// Flags every bench binary shares.
struct BenchArgs {
  bool full = false;
  size_t jobs = 0;  // 0 -> hardware concurrency
  std::string json_path;
  /// Non-empty -> wall-clock profiling: one obs::Profiler per sweep
  /// point, written as PREFIX-<i>.prof.json + PREFIX-<i>.folded.
  std::string profile_prefix;
  /// Non-empty -> memory accounting: one obs::MemTracker per sweep
  /// point, written as PREFIX-<i>.mem.json (blockbench-mem-v1).
  std::string mem_prefix;

  size_t EffectiveJobs() const {
    return jobs == 0 ? util::ThreadPool::DefaultThreads() : jobs;
  }
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s != "--full" && s.rfind("--jobs=", 0) != 0 &&
        s.rfind("--json=", 0) != 0 && s.rfind("--profile=", 0) != 0 &&
        s.rfind("--mem=", 0) != 0 &&
        s.rfind("--benchmark_", 0) != 0) {  // google-benchmark passthrough
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], s.c_str());
      std::fprintf(stderr,
                   "usage: %s [--full] [--jobs=N] [--json=PATH] "
                   "[--profile=PREFIX] [--mem=PREFIX]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  BenchArgs args;
  args.full = HasFlag(argc, argv, "--full");
  args.jobs = size_t(FlagUint(argc, argv, "--jobs", 0));
  args.json_path = FlagValue(argc, argv, "--json").value_or("");
  args.profile_prefix = FlagValue(argc, argv, "--profile").value_or("");
  args.mem_prefix = FlagValue(argc, argv, "--mem").value_or("");
  return args;
}

/// Prints `status` and the shared flag summary; returns a non-zero exit
/// code for main().
inline int UsageError(const char* bench, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", bench, status.ToString().c_str());
  std::fprintf(stderr,
               "usage: %s [--full] [--jobs=N] [--json=PATH] "
               "[--profile=PREFIX] [--mem=PREFIX]\n",
               bench);
  return 2;
}

/// One sweep point: a config plus optional hooks that run on the worker
/// thread (fault injection before Run, metric extraction after).
struct SweepCase {
  /// Row identity in the JSON output, e.g. {{"platform","ethereum"},
  /// {"n","8"}}. Purely descriptive for the text table.
  std::vector<std::pair<std::string, std::string>> labels;
  MacroConfig config;
  /// Runs after Create() and before Run() — schedule faults/attacks.
  std::function<void(MacroRun&)> before;
  /// Runs after Run() — pull histograms/meters/chain state out while
  /// the platform is still alive. Touch only this case's storage: hooks
  /// for different cases run concurrently.
  std::function<void(MacroRun&, const core::BenchReport&)> after;
};

/// Everything one sweep point produced.
struct SweepOutcome {
  Status status = Status::Ok();
  core::BenchReport report;
  double wall_seconds = 0;    // real time for this point
  uint64_t events = 0;        // simulator events dispatched
  double events_per_sec = 0;  // events / wall_seconds
  /// Per-node counters harvested from every layer after the run
  /// (serialized as "node_metrics" in blockbench-sweep-v1 rows).
  obs::MetricsRegistry metrics;
  /// Sampled gauge series when the case wired a sampler (serialized as
  /// "timeline" in blockbench-sweep-v1 rows); null otherwise.
  util::Json timeline;
  /// Compact wall-clock profile (subsystem rollup + alloc/copy
  /// counters) when the sweep ran with --profile; null otherwise.
  /// Wall-clock values are nondeterministic and never enter golden
  /// digests — byte-identical-output tests must not run profiled.
  util::Json wall_profile;
  /// Compact memory rollup (per-node peaks, subsystem peak sums,
  /// bytes-per-committed-tx) when the sweep ran with --mem or the bench
  /// called EnableMemTracking(); null otherwise. Logical bytes on
  /// virtual time: deterministic, allowed in golden digests.
  util::Json mem;
};

/// Runs a set of independent MacroRun sweep points, `--jobs` at a time,
/// and reports rows in deterministic case order no matter which worker
/// finishes first. With jobs=1 everything runs inline on the calling
/// thread — byte-identical output is the determinism contract
/// (tests/sweep_runner_test.cc).
class SweepRunner {
 public:
  SweepRunner(std::string bench_name, BenchArgs args)
      : bench_name_(std::move(bench_name)), args_(std::move(args)) {}

  size_t Add(SweepCase c) {
    cases_.push_back(std::move(c));
    return cases_.size() - 1;
  }

  /// Convenience for the common "just run this config" case.
  size_t Add(MacroConfig config,
             std::vector<std::pair<std::string, std::string>> labels = {}) {
    SweepCase c;
    c.config = std::move(config);
    c.labels = std::move(labels);
    return Add(std::move(c));
  }

  size_t size() const { return cases_.size(); }

  /// Runs every case and streams `row(index, outcome)` on the calling
  /// thread in case order (row i prints as soon as cases 0..i are done).
  /// Returns true when every case succeeded and the JSON (if requested)
  /// was written.
  bool Run(const std::function<void(size_t, const SweepOutcome&)>& row) {
    // Chaincode registration mutates a global registry: do it once,
    // before any worker threads exist.
    workloads::RegisterAllChaincodes();
    outcomes_.assign(cases_.size(), SweepOutcome{});
    profilers_.clear();
    if (!args_.profile_prefix.empty()) profilers_.resize(cases_.size());
    memtrackers_.clear();
    if (mem_enabled()) memtrackers_.resize(cases_.size());
    auto wall_start = std::chrono::steady_clock::now();

    size_t jobs = std::min(args_.EffectiveJobs(),
                           cases_.empty() ? size_t(1) : cases_.size());
    if (jobs <= 1) {
      for (size_t i = 0; i < cases_.size(); ++i) {
        RunCase(i);
        if (row) row(i, outcomes_[i]);
      }
    } else {
      std::vector<char> done(cases_.size(), 0);
      std::mutex mu;
      std::condition_variable cv;
      util::ThreadPool pool(jobs);
      for (size_t i = 0; i < cases_.size(); ++i) {
        pool.Submit([this, i, &done, &mu, &cv] {
          RunCase(i);
          {
            std::lock_guard<std::mutex> lock(mu);
            done[i] = 1;
          }
          cv.notify_all();
        });
      }
      for (size_t i = 0; i < cases_.size(); ++i) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done[i] != 0; });
        lock.unlock();
        if (row) row(i, outcomes_[i]);
      }
      pool.Wait();
    }

    wall_seconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    bool ok = true;
    for (const auto& o : outcomes_) {
      if (!o.status.ok()) {
        std::fprintf(stderr, "%s: sweep point failed: %s\n",
                     bench_name_.c_str(), o.status.ToString().c_str());
        ok = false;
      }
    }
    // Profiles first: WriteProfiles() stores each case's wall_profile
    // rollup, which WriteJson() then embeds in the sweep rows.
    if (!profilers_.empty() && !WriteProfiles()) ok = false;
    if (!memtrackers_.empty() && !args_.mem_prefix.empty() &&
        !WriteMemDumps()) {
      ok = false;
    }
    if (!args_.json_path.empty() && !WriteJson()) ok = false;
    return ok;
  }

  const std::vector<SweepOutcome>& outcomes() const { return outcomes_; }
  double wall_seconds() const { return wall_seconds_; }

  /// This case's aggregated wall profiler (null unless --profile).
  const obs::Profiler* profiler(size_t i) const {
    return i < profilers_.size() ? profilers_[i].get() : nullptr;
  }
  bool profiling() const { return !args_.profile_prefix.empty(); }
  std::string ProfilePath(size_t i) const {
    return args_.profile_prefix + "-" + std::to_string(i) + ".prof.json";
  }
  std::string FoldedPath(size_t i) const {
    return args_.profile_prefix + "-" + std::to_string(i) + ".folded";
  }

  /// Forces memory tracking for every case even without --mem (benches
  /// whose purpose is the memory baseline). Call before Run().
  void EnableMemTracking() { mem_always_ = true; }
  bool mem_enabled() const {
    return mem_always_ || !args_.mem_prefix.empty();
  }
  /// This case's memory tracker (null unless mem_enabled()).
  const obs::MemTracker* memtracker(size_t i) const {
    return i < memtrackers_.size() ? memtrackers_[i].get() : nullptr;
  }
  std::string MemPath(size_t i) const {
    return args_.mem_prefix + "-" + std::to_string(i) + ".mem.json";
  }

 private:
  void RunCase(size_t i) {
    SweepOutcome& out = outcomes_[i];
    // The profiler is constructed here, on the worker thread, so its
    // duration window is this case's wall time — not time spent queued
    // behind other sweep points.
    obs::Profiler* prof = nullptr;
    if (!profilers_.empty()) {
      profilers_[i] = std::make_unique<obs::Profiler>();
      prof = profilers_[i].get();
    }
    obs::Profiler::ThreadScope prof_scope(prof);
    if (!memtrackers_.empty()) {
      memtrackers_[i] = std::make_unique<obs::MemTracker>();
      cases_[i].config.memtracker = memtrackers_[i].get();
    }
    auto t0 = std::chrono::steady_clock::now();
    Result<std::unique_ptr<MacroRun>> run = [this, i] {
      // Setup (platform build, workload preload) attributed to the
      // driver subsystem; hashing/storage scopes nest inside.
      BB_PROF_SCOPE("driver.setup");
      return MacroRun::Create(cases_[i].config);
    }();
    if (!run.ok()) {
      out.status = run.status();
      return;
    }
    if (cases_[i].before) cases_[i].before(**run);
    out.report = (*run)->Run();
    {
      BB_PROF_SCOPE("driver.collect");
      if (cases_[i].after) cases_[i].after(**run, out.report);
      (*run)->rplatform().ExportMetrics(&out.metrics);
      if (cases_[i].config.sampler != nullptr) {
        out.timeline = cases_[i].config.sampler->ToJson();
      }
    }
    if (!memtrackers_.empty() && memtrackers_[i] != nullptr) {
      memtrackers_[i]->set_committed(uint64_t(out.report.committed));
      out.mem = memtrackers_[i]->ToSweepJson();
    }
    out.events = (*run)->rsim().events_executed();
    out.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    if (out.wall_seconds > 0) {
      out.events_per_sec = double(out.events) / out.wall_seconds;
    }
    if (prof != nullptr) {
      prof->set_events(out.events);
      prof->Stop();
    }
  }

  /// Writes PREFIX-<i>.prof.json / PREFIX-<i>.folded for every case and
  /// stores the compact rollup in the outcome (after workers joined).
  bool WriteProfiles() {
    bool ok = true;
    for (size_t i = 0; i < profilers_.size(); ++i) {
      if (profilers_[i] == nullptr) continue;
      outcomes_[i].wall_profile = profilers_[i]->ToSweepJson();
      Status s = profilers_[i]->WriteJson(ProfilePath(i));
      if (s.ok()) s = profilers_[i]->WriteFolded(FoldedPath(i));
      if (!s.ok()) {
        std::fprintf(stderr, "%s: profile write failed: %s\n",
                     bench_name_.c_str(), s.ToString().c_str());
        ok = false;
      }
    }
    return ok;
  }

  /// Writes PREFIX-<i>.mem.json for every case (after workers joined).
  bool WriteMemDumps() {
    bool ok = true;
    for (size_t i = 0; i < memtrackers_.size(); ++i) {
      if (memtrackers_[i] == nullptr) continue;
      Status s = memtrackers_[i]->WriteJson(MemPath(i));
      if (!s.ok()) {
        std::fprintf(stderr, "%s: mem dump write failed: %s\n",
                     bench_name_.c_str(), s.ToString().c_str());
        ok = false;
      }
    }
    return ok;
  }

  bool WriteJson() const {
    util::Json doc = util::Json::Object();
    doc.Set("schema", "blockbench-sweep-v1");
    doc.Set("bench", bench_name_);
    doc.Set("full", args_.full);
    doc.Set("jobs", args_.EffectiveJobs());
    doc.Set("wall_seconds", wall_seconds_);
    util::Json rows = util::Json::Array();
    for (size_t i = 0; i < cases_.size(); ++i) {
      const SweepCase& c = cases_[i];
      const SweepOutcome& o = outcomes_[i];
      util::Json r = util::Json::Object();
      util::Json labels = util::Json::Object();
      for (const auto& [k, v] : c.labels) labels.Set(k, v);
      r.Set("labels", std::move(labels));
      util::Json config = util::Json::Object();
      config.Set("servers", c.config.servers);
      config.Set("clients", c.config.clients);
      config.Set("rate", c.config.rate);
      config.Set("duration", c.config.duration);
      config.Set("workload", WorkloadName(c.config.workload));
      config.Set("seed", c.config.seed);
      if (c.config.options.num_shards > 1) {
        config.Set("num_shards", c.config.options.num_shards);
        config.Set("cross_shard_ratio", c.config.cross_shard_ratio);
      }
      r.Set("config", std::move(config));
      r.Set("status", o.status.ToString());
      if (o.status.ok()) {
        util::Json metrics = util::Json::Object();
        metrics.Set("throughput", o.report.throughput);
        metrics.Set("latency_mean", o.report.latency_mean);
        metrics.Set("latency_p50", o.report.latency_p50);
        metrics.Set("latency_p95", o.report.latency_p95);
        metrics.Set("latency_p99", o.report.latency_p99);
        metrics.Set("submitted", o.report.submitted);
        metrics.Set("committed", o.report.committed);
        metrics.Set("rejected", o.report.rejected);
        if (o.report.xs_submitted > 0) {
          metrics.Set("xs_submitted", o.report.xs_submitted);
          metrics.Set("xs_committed", o.report.xs_committed);
          metrics.Set("xs_aborted", o.report.xs_aborted);
          metrics.Set("xs_latency_mean", o.report.xs_latency_mean);
          metrics.Set("xs_latency_p95", o.report.xs_latency_p95);
        }
        r.Set("metrics", std::move(metrics));
        util::Json sim = util::Json::Object();
        sim.Set("events", o.events);
        sim.Set("wall_seconds", o.wall_seconds);
        sim.Set("events_per_sec", o.events_per_sec);
        r.Set("sim", std::move(sim));
        if (!o.metrics.empty()) r.Set("node_metrics", o.metrics.ToJson());
        if (!o.timeline.is_null()) r.Set("timeline", o.timeline);
        if (!o.wall_profile.is_null()) r.Set("wall_profile", o.wall_profile);
        if (!o.mem.is_null()) r.Set("mem", o.mem);
      }
      rows.Push(std::move(r));
    }
    doc.Set("rows", std::move(rows));
    std::string text = doc.Dump(2);
    text.push_back('\n');
    std::FILE* f = std::fopen(args_.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", bench_name_.c_str(),
                   args_.json_path.c_str());
      return false;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
  }

  std::string bench_name_;
  BenchArgs args_;
  std::vector<SweepCase> cases_;
  std::vector<SweepOutcome> outcomes_;
  // One profiler per case when --profile is set; each slot is written
  // only by the worker running that case, read after the join.
  std::vector<std::unique_ptr<obs::Profiler>> profilers_;
  // Same ownership discipline for the per-case memory trackers.
  std::vector<std::unique_ptr<obs::MemTracker>> memtrackers_;
  bool mem_always_ = false;
  double wall_seconds_ = 0;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bb::bench

#endif  // BLOCKBENCH_BENCH_COMMON_H_
