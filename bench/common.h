// Shared harness for the figure benchmarks: constructs a platform +
// workload + driver stack in one object so each bench binary focuses on
// its sweep and its table.

#ifndef BLOCKBENCH_BENCH_COMMON_H_
#define BLOCKBENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "core/driver.h"
#include "platform/platform.h"
#include "platform/registry.h"
#include "workloads/donothing.h"
#include "workloads/smallbank.h"
#include "workloads/ycsb.h"

namespace bb::bench {

enum class WorkloadKind { kYcsb, kSmallbank, kDoNothing };

inline const char* WorkloadName(WorkloadKind w) {
  switch (w) {
    case WorkloadKind::kYcsb: return "YCSB";
    case WorkloadKind::kSmallbank: return "Smallbank";
    case WorkloadKind::kDoNothing: return "DoNothing";
  }
  return "?";
}

/// Resolves a registered platform name or a "pbft+trie+evm"-style stack
/// spec via the PlatformRegistry.
inline platform::PlatformOptions OptionsFor(const std::string& name) {
  auto opts = platform::StackOptionsFromString(name);
  if (!opts.ok()) {
    std::fprintf(stderr, "unknown platform %s: %s\n", name.c_str(),
                 opts.status().ToString().c_str());
    std::abort();
  }
  return *opts;
}

inline const char* kPlatforms[] = {"ethereum", "parity", "hyperledger"};

struct MacroConfig {
  platform::PlatformOptions options;
  size_t servers = 8;
  size_t clients = 8;
  double rate = 8;            // per client, tx/s
  size_t max_outstanding = 0;
  double duration = 120;
  double drain = 30;
  double warmup = 15;
  WorkloadKind workload = WorkloadKind::kYcsb;
  uint64_t seed = 1;
  /// Smaller preloads keep bench startup fast without changing shape.
  uint64_t ycsb_records = 2000;
  uint64_t smallbank_accounts = 2000;
};

/// One macro experiment: platform cluster + driver + workload.
class MacroRun {
 public:
  explicit MacroRun(MacroConfig config) : config_(std::move(config)) {
    sim_ = std::make_unique<sim::Simulation>(config_.seed);
    platform_ = std::make_unique<platform::Platform>(
        sim_.get(), config_.options, config_.servers);
    switch (config_.workload) {
      case WorkloadKind::kYcsb: {
        workloads::YcsbConfig yc;
        yc.record_count = config_.ycsb_records;
        workload_ = std::make_unique<workloads::YcsbWorkload>(yc);
        break;
      }
      case WorkloadKind::kSmallbank: {
        workloads::SmallbankConfig sc;
        sc.num_accounts = config_.smallbank_accounts;
        workload_ = std::make_unique<workloads::SmallbankWorkload>(sc);
        break;
      }
      case WorkloadKind::kDoNothing:
        workload_ = std::make_unique<workloads::DoNothingWorkload>();
        break;
    }
    Status s = workload_->Setup(platform_.get());
    if (!s.ok()) {
      std::fprintf(stderr, "workload setup failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    core::DriverConfig dc;
    dc.num_clients = config_.clients;
    dc.request_rate = config_.rate;
    dc.max_outstanding = config_.max_outstanding;
    dc.duration = config_.duration;
    dc.drain = config_.drain;
    dc.warmup = config_.warmup;
    driver_ = std::make_unique<core::Driver>(platform_.get(), workload_.get(),
                                             dc);
  }

  /// Schedule fault/attack events before calling Run().
  sim::Simulation& rsim() { return *sim_; }
  platform::Platform& rplatform() { return *platform_; }
  core::Driver& driver() { return *driver_; }

  core::BenchReport Run() {
    driver_->Run();
    return driver_->Report();
  }

  const MacroConfig& config() const { return config_; }

 private:
  MacroConfig config_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<platform::Platform> platform_;
  std::unique_ptr<core::WorkloadConnector> workload_;
  std::unique_ptr<core::Driver> driver_;
};

/// True when the flag (e.g. "--full") is among the args.
inline bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bb::bench

#endif  // BLOCKBENCH_BENCH_COMMON_H_
