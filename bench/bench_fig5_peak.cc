// Figure 5: throughput and latency with 8 clients and 8 servers.
//   (a) peak performance for YCSB and Smallbank
//   (b, c) throughput and latency vs per-client request rate.
//
// Paper reference (peak): Ethereum 284/255 tx/s, Parity 45/46 tx/s,
// Hyperledger 1273/1122 tx/s (YCSB/Smallbank); latency 92/114, 3/4,
// 38/51 seconds.

#include <vector>

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  std::vector<double> rates = full
      ? std::vector<double>{8, 16, 32, 64, 128, 256, 512, 1024}
      : std::vector<double>{8, 32, 128, 512};
  double duration = full ? 300 : 90;

  PrintHeader("Figure 5(b,c): throughput & latency vs request rate "
              "(8 clients, 8 servers, YCSB + Smallbank)");
  std::printf("%-12s %-10s %8s | %10s %12s %12s\n", "platform", "workload",
              "rate", "tput tx/s", "lat p50 (s)", "lat mean (s)");

  struct Peak {
    double tput = 0;
    double lat_mean = 0;
  };
  Peak peak[3][2];

  for (int pi = 0; pi < 3; ++pi) {
    for (int wi = 0; wi < 2; ++wi) {
      WorkloadKind w = wi == 0 ? WorkloadKind::kYcsb : WorkloadKind::kSmallbank;
      for (double rate : rates) {
        MacroConfig cfg;
        cfg.options = OptionsFor(kPlatforms[pi]);
        cfg.rate = rate;
        cfg.duration = duration;
        cfg.workload = w;
        MacroRun run(cfg);
        auto r = run.Run();
        std::printf("%-12s %-10s %8.0f | %10.1f %12.2f %12.2f\n",
                    kPlatforms[pi], WorkloadName(w), rate, r.throughput,
                    r.latency_p50, r.latency_mean);
        if (r.throughput > peak[pi][wi].tput) {
          peak[pi][wi].tput = r.throughput;
          peak[pi][wi].lat_mean = r.latency_mean;
        }
      }
    }
  }

  PrintHeader("Figure 5(a): peak performance (paper: Eth 284/255, Parity "
              "45/46, Hyperledger 1273/1122 tx/s)");
  std::printf("%-12s | %16s %16s | %16s %16s\n", "platform", "YCSB tput",
              "Smallbank tput", "YCSB lat(s)", "Smallbank lat(s)");
  for (int pi = 0; pi < 3; ++pi) {
    std::printf("%-12s | %16.1f %16.1f | %16.2f %16.2f\n", kPlatforms[pi],
                peak[pi][0].tput, peak[pi][1].tput, peak[pi][0].lat_mean,
                peak[pi][1].lat_mean);
  }
  return 0;
}
