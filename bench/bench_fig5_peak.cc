// Figure 5: throughput and latency with 8 clients and 8 servers.
//   (a) peak performance for YCSB and Smallbank
//   (b, c) throughput and latency vs per-client request rate.
//
// Paper reference (peak): Ethereum 284/255 tx/s, Parity 45/46 tx/s,
// Hyperledger 1273/1122 tx/s (YCSB/Smallbank); latency 92/114, 3/4,
// 38/51 seconds.

#include <vector>

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  std::vector<double> rates = args.full
      ? std::vector<double>{8, 16, 32, 64, 128, 256, 512, 1024}
      : std::vector<double>{8, 32, 128, 512};
  double duration = args.full ? 300 : 90;

  SweepRunner runner("fig5_peak", args);
  struct Row {
    int pi;
    int wi;
    double rate;
  };
  std::vector<Row> rows;
  for (int pi = 0; pi < 3; ++pi) {
    auto opts = OptionsFor(kPlatforms[pi]);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    for (int wi = 0; wi < 2; ++wi) {
      WorkloadKind w = wi == 0 ? WorkloadKind::kYcsb : WorkloadKind::kSmallbank;
      for (double rate : rates) {
        MacroConfig cfg;
        cfg.options = *opts;
        cfg.rate = rate;
        cfg.duration = duration;
        cfg.workload = w;
        runner.Add(std::move(cfg),
                   {{"platform", kPlatforms[pi]},
                    {"workload", WorkloadName(w)},
                    {"rate", std::to_string(int(rate))}});
        rows.push_back({pi, wi, rate});
      }
    }
  }

  PrintHeader("Figure 5(b,c): throughput & latency vs request rate "
              "(8 clients, 8 servers, YCSB + Smallbank)");
  std::printf("%-12s %-10s %8s | %10s %12s %12s\n", "platform", "workload",
              "rate", "tput tx/s", "lat p50 (s)", "lat mean (s)");

  struct Peak {
    double tput = 0;
    double lat_mean = 0;
  };
  Peak peak[3][2];

  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok()) return;
    const Row& row = rows[i];
    WorkloadKind w = row.wi == 0 ? WorkloadKind::kYcsb
                                 : WorkloadKind::kSmallbank;
    std::printf("%-12s %-10s %8.0f | %10.1f %12.2f %12.2f\n",
                kPlatforms[row.pi], WorkloadName(w), row.rate,
                o.report.throughput, o.report.latency_p50,
                o.report.latency_mean);
    if (o.report.throughput > peak[row.pi][row.wi].tput) {
      peak[row.pi][row.wi].tput = o.report.throughput;
      peak[row.pi][row.wi].lat_mean = o.report.latency_mean;
    }
  });

  PrintHeader("Figure 5(a): peak performance (paper: Eth 284/255, Parity "
              "45/46, Hyperledger 1273/1122 tx/s)");
  std::printf("%-12s | %16s %16s | %16s %16s\n", "platform", "YCSB tput",
              "Smallbank tput", "YCSB lat(s)", "Smallbank lat(s)");
  for (int pi = 0; pi < 3; ++pi) {
    std::printf("%-12s | %16.1f %16.1f | %16.2f %16.2f\n", kPlatforms[pi],
                peak[pi][0].tput, peak[pi][1].tput, peak[pi][0].lat_mean,
                peak[pi][1].lat_mean);
  }
  return ok ? 0 : 1;
}
