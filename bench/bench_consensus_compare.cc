// Extension bench: the four consensus engines head-to-head on identical
// hardware assumptions — the comparison the paper's Table 2 implies but
// could not run (ErisDB integration was unfinished). Same YCSB load,
// same cluster sizes; only the consensus layer (and its natural
// execution pairing) differs.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  double duration = full ? 180 : 80;
  std::vector<size_t> sizes = {4, 8, 16};

  PrintHeader("Consensus engines head-to-head (YCSB, saturating load)");
  std::printf("%-12s %-12s %4s | %10s %12s %10s\n", "platform", "consensus",
              "N", "tput tx/s", "lat p50 (s)", "blocks/s");
  struct Row {
    const char* name;
    platform::PlatformOptions opts;
    double rate;
  };
  std::vector<Row> rows = {
      {"ethereum", OptionsFor("ethereum"), 128},
      {"parity", OptionsFor("parity"), 128},
      {"hyperledger", OptionsFor("hyperledger"), 128},
      {"erisdb", platform::ErisDbOptions(), 128},
      {"corda", platform::CordaOptions(), 128},
  };
  const char* consensus_names[] = {"PoW", "PoA", "PBFT", "Tendermint",
                                   "Raft(CFT)"};
  for (size_t ri = 0; ri < rows.size(); ++ri) {
    for (size_t n : sizes) {
      MacroConfig cfg;
      cfg.options = rows[ri].opts;
      cfg.servers = n;
      cfg.clients = n;
      cfg.rate = rows[ri].rate;
      cfg.duration = duration;
      MacroRun run(cfg);
      auto r = run.Run();
      double blocks =
          double(run.rplatform().node(0).chain().main_chain_blocks()) /
          (duration + 30);
      std::printf("%-12s %-12s %4zu | %10.1f %12.2f %10.2f\n", rows[ri].name,
                  consensus_names[ri], n, r.throughput, r.latency_p50,
                  blocks);
    }
  }
  std::printf(
      "\nTendermint's rotating proposer avoids PBFT's stable-leader view\n"
      "changes; with an EVM execution layer its throughput sits between\n"
      "Parity's signing-bound ceiling and Hyperledger's native execution.\n"
      "Raft commits with a single majority round trip and O(N) messages —\n"
      "the crash-fault-only efficiency the paper's Section 2 contrasts\n"
      "against Byzantine tolerance (it trusts every well-formed message).\n");
  return 0;
}
