// Extension bench: the four consensus engines head-to-head on identical
// hardware assumptions — the comparison the paper's Table 2 implies but
// could not run (ErisDB integration was unfinished). Same YCSB load,
// same cluster sizes; only the consensus layer (and its natural
// execution pairing) differs.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = args.full ? 180 : 80;
  std::vector<size_t> sizes = {4, 8, 16};

  struct Engine {
    const char* name;
    platform::PlatformOptions opts;
    double rate;
  };
  std::vector<Engine> engines;
  for (const char* name : {"ethereum", "parity", "hyperledger"}) {
    auto opts = OptionsFor(name);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    engines.push_back({name, *opts, 128});
  }
  engines.push_back({"erisdb", platform::ErisDbOptions(), 128});
  engines.push_back({"corda", platform::CordaOptions(), 128});
  const char* consensus_names[] = {"PoW", "PoA", "PBFT", "Tendermint",
                                   "Raft(CFT)"};

  SweepRunner runner("consensus_compare", args);
  struct Row {
    size_t ri;
    size_t n;
  };
  std::vector<Row> rows;
  std::vector<double> blocks;
  for (size_t ri = 0; ri < engines.size(); ++ri) {
    for (size_t n : sizes) {
      SweepCase c;
      c.config.options = engines[ri].opts;
      c.config.servers = n;
      c.config.clients = n;
      c.config.rate = engines[ri].rate;
      c.config.duration = duration;
      c.labels = {{"platform", engines[ri].name},
                  {"consensus", consensus_names[ri]},
                  {"n", std::to_string(n)}};
      size_t slot = rows.size();
      blocks.push_back(0.0);
      c.after = [&blocks, slot](MacroRun& run, const core::BenchReport&) {
        blocks[slot] =
            double(run.rplatform().node(0).chain().main_chain_blocks());
      };
      runner.Add(std::move(c));
      rows.push_back({ri, n});
    }
  }

  PrintHeader("Consensus engines head-to-head (YCSB, saturating load)");
  std::printf("%-12s %-12s %4s | %10s %12s %10s\n", "platform", "consensus",
              "N", "tput tx/s", "lat p50 (s)", "blocks/s");
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok()) return;
    std::printf("%-12s %-12s %4zu | %10.1f %12.2f %10.2f\n",
                engines[rows[i].ri].name, consensus_names[rows[i].ri],
                rows[i].n, o.report.throughput, o.report.latency_p50,
                blocks[i] / (duration + 30));
  });
  std::printf(
      "\nTendermint's rotating proposer avoids PBFT's stable-leader view\n"
      "changes; with an EVM execution layer its throughput sits between\n"
      "Parity's signing-bound ceiling and Hyperledger's native execution.\n"
      "Raft commits with a single majority round trip and O(N) messages —\n"
      "the crash-fault-only efficiency the paper's Section 2 contrasts\n"
      "against Byzantine tolerance (it trusts every well-formed message).\n");
  return ok ? 0 : 1;
}
