// Figure 13(a,b): Analytics workload — latency of historical queries
// over a preloaded chain (10K blocks, ~3 transfer transactions each):
//   Q1: total transaction value committed between blocks i and j
//       (implemented with one getBlock RPC per block on every platform)
//   Q2: balance aggregate for one account between blocks i and j
//       (getBalance-per-block RPCs on Ethereum/Parity; ONE VersionKVStore
//        chaincode query on Hyperledger, whose bucket state model has no
//        historical reads)
//
// Paper shape: Q1 similar across systems (same number of RPCs); Q2 an
// order of magnitude faster on Hyperledger thanks to the single RPC.

#include "common.h"
#include "workloads/analytics.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  workloads::AnalyticsConfig acfg;
  acfg.num_blocks = full ? 100'000 : 10'000;
  acfg.num_accounts = full ? 120'000 : 10'000;
  std::vector<uint64_t> scans = {1, 10, 100, 1'000, 10'000};

  PrintHeader("Figure 13(a,b): analytics query latency vs #blocks scanned");
  std::printf("%-12s %-4s %10s | %12s %10s %14s\n", "platform", "q",
              "#blocks", "latency (s)", "#RPCs", "result");

  for (const char* pname : kPlatforms) {
    sim::Simulation sim(7);
    platform::Platform p(&sim, OptionsFor(pname), 1);
    Status s = workloads::SetupAnalyticsChain(&p, acfg);
    if (!s.ok()) {
      std::fprintf(stderr, "analytics setup failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    p.Start();
    bool chaincode_q2 = std::string(pname) == "hyperledger";
    workloads::AnalyticsClient client(1, &p.network(), 0, acfg);

    uint64_t head = p.node(0).chain().head_height();
    for (uint64_t scan : scans) {
      if (scan > head) continue;
      uint64_t from = head - scan;
      client.StartQ1(from, head);
      double lat = workloads::RunAnalyticsQuery(&sim, &client);
      std::printf("%-12s %-4s %10llu | %12.3f %10llu %14lld\n", pname, "Q1",
                  (unsigned long long)scan, lat,
                  (unsigned long long)client.rpcs_issued(),
                  (long long)client.result());
    }
    for (uint64_t scan : scans) {
      if (scan > head) continue;
      uint64_t from = head - scan;
      client.StartQ2(workloads::AnalyticsHotAccount(), from, head,
                     chaincode_q2);
      double lat = workloads::RunAnalyticsQuery(&sim, &client);
      std::printf("%-12s %-4s %10llu | %12.3f %10llu %14lld\n", pname, "Q2",
                  (unsigned long long)scan, lat,
                  (unsigned long long)client.rpcs_issued(),
                  (long long)client.result());
    }
  }
  return 0;
}
