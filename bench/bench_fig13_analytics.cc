// Figure 13(a,b): Analytics workload — latency of historical queries
// over a preloaded chain (10K blocks, ~3 transfer transactions each):
//   Q1: total transaction value committed between blocks i and j
//       (implemented with one getBlock RPC per block on every platform)
//   Q2: balance aggregate for one account between blocks i and j
//       (getBalance-per-block RPCs on Ethereum/Parity; ONE VersionKVStore
//        chaincode query on Hyperledger, whose bucket state model has no
//        historical reads)
//
// Paper shape: Q1 similar across systems (same number of RPCs); Q2 an
// order of magnitude faster on Hyperledger thanks to the single RPC.

#include "common.h"
#include "workloads/analytics.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  workloads::AnalyticsConfig acfg;
  acfg.num_blocks = args.full ? 100'000 : 10'000;
  acfg.num_accounts = args.full ? 120'000 : 10'000;
  std::vector<uint64_t> scans = {1, 10, 100, 1'000, 10'000};

  util::Json rows = util::Json::Array();

  PrintHeader("Figure 13(a,b): analytics query latency vs #blocks scanned");
  std::printf("%-12s %-4s %10s | %12s %10s %14s\n", "platform", "q",
              "#blocks", "latency (s)", "#RPCs", "result");

  for (const char* pname : kPlatforms) {
    auto opts = OptionsFor(pname);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    sim::Simulation sim(7);
    platform::Platform p(&sim, *opts, 1);
    Status s = workloads::SetupAnalyticsChain(&p, acfg);
    if (!s.ok()) {
      std::fprintf(stderr, "analytics setup failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    p.Start();
    bool chaincode_q2 = std::string(pname) == "hyperledger";
    workloads::AnalyticsClient client(1, &p.network(), 0, acfg);

    uint64_t head = p.node(0).chain().head_height();
    auto record = [&](const char* q, uint64_t scan, double lat) {
      util::Json row = util::Json::Object();
      util::Json labels = util::Json::Object();
      labels.Set("platform", pname);
      labels.Set("query", q);
      labels.Set("blocks", std::to_string(scan));
      row.Set("labels", std::move(labels));
      row.Set("status", "Ok");
      util::Json metrics = util::Json::Object();
      metrics.Set("latency_seconds", lat);
      metrics.Set("rpcs", client.rpcs_issued());
      row.Set("metrics", std::move(metrics));
      rows.Push(std::move(row));
    };
    for (uint64_t scan : scans) {
      if (scan > head) continue;
      uint64_t from = head - scan;
      client.StartQ1(from, head);
      double lat = workloads::RunAnalyticsQuery(&sim, &client);
      std::printf("%-12s %-4s %10llu | %12.3f %10llu %14lld\n", pname, "Q1",
                  (unsigned long long)scan, lat,
                  (unsigned long long)client.rpcs_issued(),
                  (long long)client.result());
      record("Q1", scan, lat);
    }
    for (uint64_t scan : scans) {
      if (scan > head) continue;
      uint64_t from = head - scan;
      client.StartQ2(workloads::AnalyticsHotAccount(), from, head,
                     chaincode_q2);
      double lat = workloads::RunAnalyticsQuery(&sim, &client);
      std::printf("%-12s %-4s %10llu | %12.3f %10llu %14lld\n", pname, "Q2",
                  (unsigned long long)scan, lat,
                  (unsigned long long)client.rpcs_issued(),
                  (long long)client.result());
      record("Q2", scan, lat);
    }
  }

  if (!args.json_path.empty()) {
    util::Json doc = util::Json::Object();
    doc.Set("schema", "blockbench-sweep-v1");
    doc.Set("bench", "fig13_analytics");
    doc.Set("full", args.full);
    doc.Set("rows", std::move(rows));
    std::string text = doc.Dump(2);
    text.push_back('\n');
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fig13_analytics: cannot write %s\n",
                   args.json_path.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return 0;
}
