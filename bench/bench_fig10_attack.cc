// Figure 10: security under a partition attack. The network (8 servers,
// 8 clients) is split in half at t=100 s for 150 s. Reports, over time,
// the total number of blocks generated (X-total) and the number on the
// main branch reaching consensus (X-bc); their gap Δ is the double-spend
// vulnerability window.
//
// Paper shape: Ethereum and Parity fork during the partition (up to ~30%
// of blocks orphaned) and discard one branch on healing; Hyperledger
// never forks but takes ~50 s longer to recover after the heal.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  const double t_partition = 100, t_heal = 250;
  const double end_time = args.full ? 400 : 350;

  std::vector<std::vector<double>> totals(3), mains(3);
  std::vector<obs::AuditReport> audits(3);
  // One live sampler per case (periodic gauge probes -> the sweep row's
  // "timeline" section); each case needs its own instance.
  std::vector<std::unique_ptr<obs::Sampler>> samplers(3);
  // One flight recorder per case: the expected Ethereum/Parity safety
  // violations dump black boxes with a replay-to-failure command.
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders(3);
  std::vector<obs::RunSpec> specs(3);

  SweepRunner runner("fig10_attack", args);
  for (int pi = 0; pi < 3; ++pi) {
    auto opts = OptionsFor(kPlatforms[pi]);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    samplers[size_t(pi)] =
        std::make_unique<obs::Sampler>(obs::Sampler::Config{10.0, 0.0});
    SweepCase c;
    c.config.options = *opts;
    c.config.servers = 8;
    c.config.clients = 8;
    c.config.rate = 60;
    c.config.duration = end_time;
    c.config.drain = 0;
    c.config.sampler = samplers[size_t(pi)].get();
    recorders[size_t(pi)] = std::make_unique<obs::FlightRecorder>();
    c.config.recorder = recorders[size_t(pi)].get();
    specs[size_t(pi)] = RunSpecFromMacro(c.config);
    specs[size_t(pi)].partition_start = t_partition;
    specs[size_t(pi)].partition_end = t_heal;
    c.labels = {{"platform", kPlatforms[pi]}};
    std::vector<double>* tot = &totals[size_t(pi)];
    std::vector<double>* mn = &mains[size_t(pi)];
    obs::AuditReport* audit = &audits[size_t(pi)];
    c.before = [t_partition, t_heal, end_time, tot, mn](MacroRun& run) {
      auto& net = run.rplatform().network();
      run.rsim().At(t_partition, [&net] { net.Partition({0, 1, 2, 3}); });
      run.rsim().At(t_heal, [&net] { net.HealPartition(); });

      // Sample block counts every 10 s (writes only this case's storage).
      for (double t = 10; t <= end_time; t += 10) {
        run.rsim().At(t, [&run, tot, mn] {
          auto& p = run.rplatform();
          // Total blocks produced across all proposers; main-branch blocks
          // as agreed by a node from each partition side (max view).
          uint64_t best_main = 0;
          for (size_t i = 0; i < p.num_servers(); ++i) {
            best_main = std::max(
                best_main, uint64_t(p.node(i).chain().main_chain_blocks()));
          }
          tot->push_back(double(p.TotalBlocksProduced()));
          mn->push_back(double(best_main));
        });
      }
    };
    c.after = [audit, t_heal, end_time](MacroRun& run,
                                        const core::BenchReport&) {
      obs::AuditorConfig ac;
      ac.confirmation_depth = run.config().options.confirmation_depth;
      ac.heal_time = t_heal;
      ac.end_time = end_time;
      *audit = platform::RunAudit(run.rplatform(), ac);
    };
    runner.Add(std::move(c));
  }

  bool ok = runner.Run(nullptr);

  PrintHeader("Figure 10: blocks generated vs blocks on main branch; "
              "partition [100s, 250s)");
  std::printf("%8s", "time(s)");
  for (const char* p : kPlatforms) std::printf(" %11s-tot %11s-bc", p, p);
  std::printf("\n");
  size_t bins = totals[0].size();
  for (size_t b = 0; b < bins; ++b) {
    std::printf("%8zu", (b + 1) * 10);
    for (int pi = 0; pi < 3; ++pi) {
      std::printf(" %15.0f %14.0f", totals[size_t(pi)][b],
                  mains[size_t(pi)][b]);
    }
    std::printf("\n");
  }

  std::printf("\nDelta (generated - main branch) at end:\n");
  for (int pi = 0; pi < 3; ++pi) {
    double d = totals[size_t(pi)].back() - mains[size_t(pi)].back();
    std::printf("  %-12s Δ = %.0f blocks (%.1f%% of generated)\n",
                kPlatforms[pi], d,
                100.0 * d / std::max(1.0, totals[size_t(pi)].back()));
  }

  PrintHeader("Ledger audit (cross-node fork forensics)");
  for (int pi = 0; pi < 3; ++pi) {
    const obs::AuditReport& audit = audits[size_t(pi)];
    std::printf("%s:\n%s", kPlatforms[pi], audit.RenderTable().c_str());
    if (!audit.ok()) {
      std::string dump =
          std::string("fig10-") + kPlatforms[pi] + ".blackbox.json";
      obs::BlackboxTrigger trig{"audit_violation",
                                audit.violations.front().invariant,
                                audit.violations.front().detail};
      Status ws = recorders[size_t(pi)]->WriteJson(dump, specs[size_t(pi)],
                                                   trig);
      if (ws.ok()) {
        std::printf("    repro: bbench --replay=%s\n", dump.c_str());
      } else {
        std::fprintf(stderr, "fig10: blackbox write failed: %s\n",
                     ws.ToString().c_str());
        ok = false;
      }
    }
  }
  return ok ? 0 : 1;
}
