// Figure 15 (Appendix B): block generation rate for small / medium /
// large block sizes, measured at saturation (8 clients, 8 servers, YCSB).
//   Ethereum:   gasLimit scaled 0.5x / 1x / 2x. Bigger blocks require a
//               matching difficulty increase to keep the uncle rate down,
//               so the effective block interval scales with the size.
//   Parity:     stepDuration 1 / 2 / 4 (the paper's knob for block size).
//   Hyperledger: batchSize 250 / 500 / 1000.
//
// Paper: Eth 0.34/0.22/0.12, Parity 1.0/0.56/0.28, HL 5.2/3.1/1.75
// blocks/s — rate drops roughly in proportion, so overall throughput
// does NOT improve with bigger blocks.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = args.full ? 240 : 90;
  const char* size_names[3] = {"small", "medium", "large"};

  SweepRunner runner("fig15_blocksize", args);
  struct Row {
    const char* platform;
    const char* size;
  };
  std::vector<Row> rows;
  std::vector<double> blocks(9, 0.0);
  for (int pi = 0; pi < 3; ++pi) {
    auto opts = OptionsFor(kPlatforms[pi]);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    for (int si = 0; si < 3; ++si) {
      double factor = si == 0 ? 0.5 : (si == 1 ? 1.0 : 2.0);
      SweepCase c;
      c.config.options = *opts;
      c.config.rate = 384;
      c.config.duration = duration;
      c.config.drain = 10;
      if (std::string(kPlatforms[pi]) == "ethereum") {
        c.config.options.block_tx_limit =
            size_t(double(c.config.options.block_tx_limit) * factor);
        // Difficulty response to the heavier blocks.
        c.config.options.pow.base_block_interval *= factor;
      } else if (std::string(kPlatforms[pi]) == "parity") {
        c.config.options.poa.step_duration *= 2.0 * factor;  // 1 / 2 / 4 s
      } else {
        c.config.options.pbft.batch_size =
            size_t(double(c.config.options.pbft.batch_size) * factor);
        c.config.options.block_tx_limit = c.config.options.pbft.batch_size;
      }
      c.labels = {{"platform", kPlatforms[pi]}, {"size", size_names[si]}};
      size_t slot = rows.size();
      c.after = [&blocks, slot](MacroRun& run, const core::BenchReport&) {
        blocks[slot] =
            double(run.rplatform().node(0).chain().main_chain_blocks());
      };
      runner.Add(std::move(c));
      rows.push_back({kPlatforms[pi], size_names[si]});
    }
  }

  PrintHeader("Figure 15: block generation rate vs block size");
  std::printf("%-12s %-8s | %14s %14s\n", "platform", "size", "blocks/s",
              "tput tx/s");
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok()) return;
    std::printf("%-12s %-8s | %14.2f %14.1f\n", rows[i].platform, rows[i].size,
                blocks[i] / (duration + 10), o.report.throughput);
  });
  return ok ? 0 : 1;
}
