// Figure 15 (Appendix B): block generation rate for small / medium /
// large block sizes, measured at saturation (8 clients, 8 servers, YCSB).
//   Ethereum:   gasLimit scaled 0.5x / 1x / 2x. Bigger blocks require a
//               matching difficulty increase to keep the uncle rate down,
//               so the effective block interval scales with the size.
//   Parity:     stepDuration 1 / 2 / 4 (the paper's knob for block size).
//   Hyperledger: batchSize 250 / 500 / 1000.
//
// Paper: Eth 0.34/0.22/0.12, Parity 1.0/0.56/0.28, HL 5.2/3.1/1.75
// blocks/s — rate drops roughly in proportion, so overall throughput
// does NOT improve with bigger blocks.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  double duration = full ? 240 : 90;
  const char* size_names[3] = {"small", "medium", "large"};

  PrintHeader("Figure 15: block generation rate vs block size");
  std::printf("%-12s %-8s | %14s %14s\n", "platform", "size", "blocks/s",
              "tput tx/s");
  for (int pi = 0; pi < 3; ++pi) {
    for (int si = 0; si < 3; ++si) {
      double factor = si == 0 ? 0.5 : (si == 1 ? 1.0 : 2.0);
      MacroConfig cfg;
      cfg.options = OptionsFor(kPlatforms[pi]);
      cfg.rate = 384;
      cfg.duration = duration;
      cfg.drain = 10;
      if (std::string(kPlatforms[pi]) == "ethereum") {
        cfg.options.block_tx_limit =
            size_t(double(cfg.options.block_tx_limit) * factor);
        // Difficulty response to the heavier blocks.
        cfg.options.pow.base_block_interval *= factor;
      } else if (std::string(kPlatforms[pi]) == "parity") {
        cfg.options.poa.step_duration *= 2.0 * factor;  // 1 / 2 / 4 s
      } else {
        cfg.options.pbft.batch_size =
            size_t(double(cfg.options.pbft.batch_size) * factor);
        cfg.options.block_tx_limit = cfg.options.pbft.batch_size;
      }
      MacroRun run(cfg);
      auto r = run.Run();
      double blocks =
          double(run.rplatform().node(0).chain().main_chain_blocks());
      std::printf("%-12s %-8s | %14.2f %14.1f\n", kPlatforms[pi],
                  size_names[si], blocks / (duration + 10), r.throughput);
    }
  }
  return 0;
}
