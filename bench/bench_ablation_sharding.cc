// Ablation (paper §5, "Bringing database designs into blockchain"):
// sharding. The paper argues partitioning the blockchain H-Store-style
// could recover throughput, with cross-shard consistency as the open
// problem. This bench measures the coordination-free upper bound the
// argument rests on: K independent PBFT shards of fixed size, disjoint
// key ranges, single-shard transactions only — aggregate throughput
// should scale ~K x while per-shard latency stays flat, in contrast to
// Fig 7 where growing ONE consensus group of the same total size
// collapses.

#include "common.h"

using namespace bb;
using namespace bb::bench;

namespace {

struct ShardResult {
  Status status = Status::Ok();
  double total_tput = 0;
  double lat_p50 = 0;
};

ShardResult RunSharded(const platform::PlatformOptions& options, size_t shards,
                       double duration) {
  const size_t kShardSize = 4;  // servers per shard
  const size_t kClientsPerShard = 4;
  const double kRate = 120;  // near one shard's saturation

  // All shards share one virtual clock; each is its own network,
  // consensus group and state — the paper's partitioned design.
  sim::Simulation sim(9);
  std::vector<std::unique_ptr<platform::Platform>> platforms;
  std::vector<std::unique_ptr<workloads::YcsbWorkload>> wls;
  std::vector<std::unique_ptr<core::Driver>> drivers;

  ShardResult res;
  for (size_t s = 0; s < shards; ++s) {
    platforms.push_back(std::make_unique<platform::Platform>(
        &sim, options, kShardSize, 100 + s));
    workloads::YcsbConfig yc;
    yc.record_count = 2000;  // disjoint per shard by construction
    wls.push_back(std::make_unique<workloads::YcsbWorkload>(yc));
    Status st = wls.back()->Setup(platforms.back().get());
    if (!st.ok()) {
      res.status = Status::Internal("shard setup failed: " + st.ToString());
      return res;
    }
    core::DriverConfig dc;
    dc.num_clients = kClientsPerShard;
    dc.request_rate = kRate;
    dc.duration = duration;
    dc.drain = 20;
    dc.warmup = 10;
    dc.seed = 7 + s;
    drivers.push_back(std::make_unique<core::Driver>(
        platforms.back().get(), wls.back().get(), dc));
  }
  for (auto& d : drivers) d->StartAll();
  sim.RunUntil(duration + 20);

  for (auto& d : drivers) {
    auto r = d->Report();
    res.total_tput += r.throughput;
    res.lat_p50 = std::max(res.lat_p50, r.latency_p50);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = args.full ? 180 : 80;
  const size_t kShardSize = 4;
  std::vector<size_t> shard_counts = {1, 2, 4, 8};

  auto opts = OptionsFor("hyperledger");
  if (!opts.ok()) return UsageError(argv[0], opts.status());

  // Each shard-count point owns its Simulation, so the points fan out
  // across the pool like any other sweep.
  workloads::RegisterAllChaincodes();
  std::vector<ShardResult> results(shard_counts.size());
  size_t jobs = std::min(args.EffectiveJobs(), shard_counts.size());
  if (jobs <= 1) {
    for (size_t i = 0; i < shard_counts.size(); ++i) {
      results[i] = RunSharded(*opts, shard_counts[i], duration);
    }
  } else {
    util::ThreadPool pool(jobs);
    for (size_t i = 0; i < shard_counts.size(); ++i) {
      pool.Submit([&, i] {
        results[i] = RunSharded(*opts, shard_counts[i], duration);
      });
    }
    pool.Wait();
  }

  PrintHeader("Ablation: sharded PBFT — K independent 4-node shards, "
              "single-shard transactions");
  std::printf("%8s %8s | %16s %14s %12s\n", "shards", "servers",
              "total tput tx/s", "per-shard tx/s", "lat p50 (s)");
  bool ok = true;
  util::Json rows = util::Json::Array();
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    size_t shards = shard_counts[i];
    const ShardResult& r = results[i];
    if (!r.status.ok()) {
      std::fprintf(stderr, "%s: shards=%zu: %s\n", argv[0], shards,
                   r.status.ToString().c_str());
      ok = false;
      continue;
    }
    std::printf("%8zu %8zu | %16.1f %14.1f %12.2f\n", shards,
                shards * kShardSize, r.total_tput,
                r.total_tput / double(shards), r.lat_p50);
    util::Json row = util::Json::Object();
    util::Json labels = util::Json::Object();
    labels.Set("shards", std::to_string(shards));
    row.Set("labels", std::move(labels));
    row.Set("status", "Ok");
    util::Json metrics = util::Json::Object();
    metrics.Set("total_throughput", r.total_tput);
    metrics.Set("per_shard_throughput", r.total_tput / double(shards));
    metrics.Set("latency_p50", r.lat_p50);
    row.Set("metrics", std::move(metrics));
    rows.Push(std::move(row));
  }
  std::printf(
      "\nCompare Fig 7: one 32-node PBFT group collapses, while 8 shards\n"
      "x 4 nodes scale aggregate throughput ~linearly. The open problem\n"
      "the paper names — Byzantine-tolerant cross-shard transactions —\n"
      "is exactly what this upper bound excludes.\n");

  if (!args.json_path.empty()) {
    util::Json doc = util::Json::Object();
    doc.Set("schema", "blockbench-sweep-v1");
    doc.Set("bench", "ablation_sharding");
    doc.Set("full", args.full);
    doc.Set("jobs", jobs);
    doc.Set("rows", std::move(rows));
    std::string text = doc.Dump(2);
    text.push_back('\n');
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ablation_sharding: cannot write %s\n",
                   args.json_path.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return ok ? 0 : 1;
}
