// Ablation (paper §5, "Bringing database designs into blockchain"):
// sharding. The paper argues partitioning the blockchain H-Store-style
// could recover throughput, with cross-shard consistency as the open
// problem. This bench measures the coordination-free upper bound the
// argument rests on: K independent PBFT shards of fixed size, disjoint
// key ranges, single-shard transactions only — aggregate throughput
// should scale ~K x while per-shard latency stays flat, in contrast to
// Fig 7 where growing ONE consensus group of the same total size
// collapses.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  double duration = full ? 180 : 80;
  const size_t kShardSize = 4;   // servers per shard
  const size_t kClientsPerShard = 4;
  const double kRate = 120;      // near one shard's saturation

  PrintHeader("Ablation: sharded PBFT — K independent 4-node shards, "
              "single-shard transactions");
  std::printf("%8s %8s | %16s %14s %12s\n", "shards", "servers",
              "total tput tx/s", "per-shard tx/s", "lat p50 (s)");

  for (size_t shards : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
    // All shards share one virtual clock; each is its own network,
    // consensus group and state — the paper's partitioned design.
    sim::Simulation sim(9);
    std::vector<std::unique_ptr<platform::Platform>> platforms;
    std::vector<std::unique_ptr<workloads::YcsbWorkload>> wls;
    std::vector<std::unique_ptr<core::Driver>> drivers;

    for (size_t s = 0; s < shards; ++s) {
      platforms.push_back(std::make_unique<platform::Platform>(
          &sim, OptionsFor("hyperledger"), kShardSize, 100 + s));
      workloads::YcsbConfig yc;
      yc.record_count = 2000;  // disjoint per shard by construction
      wls.push_back(std::make_unique<workloads::YcsbWorkload>(yc));
      Status st = wls.back()->Setup(platforms.back().get());
      if (!st.ok()) {
        std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
        return 1;
      }
      core::DriverConfig dc;
      dc.num_clients = kClientsPerShard;
      dc.request_rate = kRate;
      dc.duration = duration;
      dc.drain = 20;
      dc.warmup = 10;
      dc.seed = 7 + s;
      drivers.push_back(std::make_unique<core::Driver>(
          platforms.back().get(), wls.back().get(), dc));
    }
    for (auto& d : drivers) d->StartAll();
    sim.RunUntil(duration + 20);

    double total = 0, lat = 0;
    for (auto& d : drivers) {
      auto r = d->Report();
      total += r.throughput;
      lat = std::max(lat, r.latency_p50);
    }
    std::printf("%8zu %8zu | %16.1f %14.1f %12.2f\n", shards,
                shards * kShardSize, total, total / double(shards), lat);
  }
  std::printf(
      "\nCompare Fig 7: one 32-node PBFT group collapses, while 8 shards\n"
      "x 4 nodes scale aggregate throughput ~linearly. The open problem\n"
      "the paper names — Byzantine-tolerant cross-shard transactions —\n"
      "is exactly what this upper bound excludes.\n");
  return 0;
}
