// Figure 18 (Appendix B): client request queue over time with 20 servers
// and 20 clients (YCSB).
//
// Paper shape: Ethereum's queue grows and shrinks with commits (normal
// behaviour); Hyperledger fails to generate blocks at this scale, so its
// queue only ever grows — yet stays below Ethereum's early on because a
// processing bottleneck at the servers throttles ingestion.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  double duration = full ? 350 : 200;

  PrintHeader("Figure 18: queue length at the client, 20 servers / 20 "
              "clients");
  std::printf("%8s %14s %14s %14s\n", "time(s)", "ethereum", "parity",
              "hyperledger");
  std::vector<std::vector<double>> queues(3);
  std::vector<uint64_t> committed(3);
  for (int pi = 0; pi < 3; ++pi) {
    MacroConfig cfg;
    cfg.options = OptionsFor(kPlatforms[pi]);
    cfg.servers = 20;
    cfg.clients = 20;
    cfg.rate = 100;  // overload: at 20 nodes Hyperledger stops generating blocks
    cfg.duration = duration;
    cfg.drain = 0;
    MacroRun run(cfg);
    auto r = run.Run();
    committed[size_t(pi)] = r.committed;
    for (size_t s = 0; s < size_t(duration); s += 10) {
      queues[size_t(pi)].push_back(run.driver().stats().QueueLengthAt(s));
    }
  }
  for (size_t b = 0; b < queues[0].size(); ++b) {
    std::printf("%8zu %14.0f %14.0f %14.0f\n", b * 10, queues[0][b],
                queues[1][b], queues[2][b]);
  }
  std::printf("\ncommitted: ethereum=%llu parity=%llu hyperledger=%llu\n",
              (unsigned long long)committed[0], (unsigned long long)committed[1],
              (unsigned long long)committed[2]);
  return 0;
}
