// Figure 18 (Appendix B): client request queue over time with 20 servers
// and 20 clients (YCSB).
//
// Paper shape: Ethereum's queue grows and shrinks with commits (normal
// behaviour); Hyperledger fails to generate blocks at this scale, so its
// queue only ever grows — yet stays below Ethereum's early on because a
// processing bottleneck at the servers throttles ingestion.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = args.full ? 350 : 200;

  std::vector<std::vector<double>> queues(3);
  std::vector<uint64_t> committed(3);

  SweepRunner runner("fig18_queue20", args);
  for (int pi = 0; pi < 3; ++pi) {
    auto opts = OptionsFor(kPlatforms[pi]);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    SweepCase c;
    c.config.options = *opts;
    c.config.servers = 20;
    c.config.clients = 20;
    c.config.rate = 100;  // overload: at 20 nodes Hyperledger stops generating blocks
    c.config.duration = duration;
    c.config.drain = 0;
    c.labels = {{"platform", kPlatforms[pi]}};
    std::vector<double>* out = &queues[size_t(pi)];
    c.after = [out, duration](MacroRun& run, const core::BenchReport&) {
      for (size_t s = 0; s < size_t(duration); s += 10) {
        out->push_back(run.driver().stats().QueueLengthAt(s));
      }
    };
    runner.Add(std::move(c));
  }

  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok()) return;
    committed[i] = o.report.committed;
  });

  PrintHeader("Figure 18: queue length at the client, 20 servers / 20 "
              "clients");
  std::printf("%8s %14s %14s %14s\n", "time(s)", "ethereum", "parity",
              "hyperledger");
  for (size_t b = 0; b < queues[0].size(); ++b) {
    std::printf("%8zu %14.0f %14.0f %14.0f\n", b * 10, queues[0][b],
                queues[1][b], queues[2][b]);
  }
  std::printf("\ncommitted: ethereum=%llu parity=%llu hyperledger=%llu\n",
              (unsigned long long)committed[0], (unsigned long long)committed[1],
              (unsigned long long)committed[2]);
  return ok ? 0 : 1;
}
