// Component microbenchmarks (google-benchmark): the primitive costs the
// platform models are built from — hashing, Merkle structures, the KV
// stores, VM dispatch, and the discrete-event core.

#include <benchmark/benchmark.h>

#include <deque>
#include <unordered_set>

#include "chain/block.h"
#include "chain/txpool.h"
#include "obs/memtrack.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/node.h"
#include "storage/bucket_tree.h"
#include "storage/diskkv.h"
#include "storage/memkv.h"
#include "storage/merkle_tree.h"
#include "storage/patricia_trie.h"
#include "util/perf.h"
#include "util/random.h"
#include "util/sha256.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "workloads/contracts.h"

namespace bb {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::string data(size_t(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_MerkleTreeBuild(benchmark::State& state) {
  std::vector<Hash256> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(Sha256::Digest("leaf" + std::to_string(i)));
  }
  for (auto _ : state) {
    storage::MerkleTree t(leaves);
    benchmark::DoNotOptimize(t.root());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MerkleTreeBuild)->Arg(100)->Arg(500)->Arg(2000);

// --- Raw-speed campaign pairs ------------------------------------------------
// Each optimized benchmark is paired with a *Legacy twin that runs the
// seed-equivalent slow path (scalar SHA, no memoization, AoS pool), so CI
// can gate on the ratio within one run — immune to machine differences.

chain::Transaction BenchTx(uint64_t id) {
  chain::Transaction tx;
  tx.id = id;
  tx.sender = "client" + std::to_string(id % 16);
  tx.contract = "ycsb";
  tx.function = "update";
  tx.args = {vm::Value("user" + std::to_string(id)),
             vm::Value(std::string(100, 'v'))};
  return tx;
}

chain::Block BenchBlock(size_t n_txs) {
  chain::Block b;
  for (size_t i = 0; i < n_txs; ++i) b.txs.push_back(BenchTx(i + 1));
  b.SealTxRoot();
  b.header.height = 7;
  b.header.proposer = 3;
  return b;
}

// Repeated HashOf on a sealed block: the consensus hot pattern (pbft
// digest checks, fork-choice comparisons, commit bookkeeping).
void BM_BlockHashCached(benchmark::State& state) {
  chain::Block b = BenchBlock(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.HashOf());
  }
}
BENCHMARK(BM_BlockHashCached);

void BM_BlockHashLegacy(benchmark::State& state) {
  perf::ScopedLegacyMode legacy;
  chain::Block b = BenchBlock(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.HashOf());
  }
}
BENCHMARK(BM_BlockHashLegacy);

void DigestBatchBench(benchmark::State& state) {
  const size_t n = size_t(state.range(0));
  std::vector<std::string> msgs(n);
  std::vector<Slice> slices(n);
  for (size_t i = 0; i < n; ++i) {
    msgs[i] = BenchTx(i + 1).Serialize();
    slices[i] = Slice(msgs[i]);
  }
  std::vector<Hash256> out(n);
  for (auto _ : state) {
    Sha256::DigestBatch(slices.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}

void BM_DigestBatch(benchmark::State& state) { DigestBatchBench(state); }
BENCHMARK(BM_DigestBatch)->Arg(64)->Arg(512);

void BM_DigestBatchLegacy(benchmark::State& state) {
  perf::ScopedLegacyMode legacy;
  DigestBatchBench(state);
}
BENCHMARK(BM_DigestBatchLegacy)->Arg(64)->Arg(512);

// The seed pool, kept verbatim for the ratio gate: deque of whole
// transactions with unordered_set membership tracking.
class LegacyTxPool {
 public:
  bool Add(chain::Transaction tx) {
    if (!seen_.insert(tx.id).second) return false;
    in_queue_.insert(tx.id);
    queue_.push_back(std::move(tx));
    return true;
  }
  std::vector<chain::Transaction> TakeBatch(size_t max_count,
                                            size_t max_bytes = 0) {
    std::vector<chain::Transaction> batch;
    size_t bytes = 0;
    while (!queue_.empty() && batch.size() < max_count) {
      chain::Transaction& next = queue_.front();
      size_t tx_bytes = next.Serialize().size();  // seed recomputed sizes
      if (max_bytes != 0 && !batch.empty() && bytes + tx_bytes > max_bytes) {
        break;
      }
      bytes += tx_bytes;
      in_queue_.erase(next.id);
      batch.push_back(std::move(next));
      queue_.pop_front();
    }
    return batch;
  }
  void RemoveCommitted(const std::vector<chain::Transaction>& txs) {
    std::unordered_set<uint64_t> committed;
    for (const auto& tx : txs) {
      seen_.insert(tx.id);
      if (in_queue_.count(tx.id)) committed.insert(tx.id);
    }
    if (committed.empty()) return;
    std::deque<chain::Transaction> kept;
    for (auto& tx : queue_) {
      if (committed.count(tx.id)) {
        in_queue_.erase(tx.id);
      } else {
        kept.push_back(std::move(tx));
      }
    }
    queue_ = std::move(kept);
  }

 private:
  std::deque<chain::Transaction> queue_;
  std::unordered_set<uint64_t> seen_;
  std::unordered_set<uint64_t> in_queue_;
};

// Admission -> batch-take -> peer-commit churn, the pool's simulation
// life-cycle: every admitted tx has its wire size queried for gossip
// (the node does this before broadcasting), proposers take FIFO batches,
// and replicas remove still-pending txs when a peer's block commits —
// with standing queue depth, as on a loaded node. Template over the pool
// type so both variants run the exact same driver.
template <typename Pool>
void TxPoolChurn(benchmark::State& state) {
  const size_t kBatch = 200;
  const int kRounds = 20;
  for (auto _ : state) {
    state.PauseTiming();
    Pool pool;
    uint64_t next_id = 1;
    uint64_t commit_cursor = 1;  // pending ids are [commit_cursor, next_id)
    state.ResumeTiming();
    for (int round = 0; round < kRounds; ++round) {
      for (size_t i = 0; i < kBatch + kBatch / 2; ++i) {
        chain::Transaction tx = BenchTx(next_id++);
        benchmark::DoNotOptimize(tx.SizeBytes());  // gossip wire size
        pool.Add(std::move(tx));
      }
      if (round % 2 == 0) {
        auto batch = pool.TakeBatch(kBatch);
        benchmark::DoNotOptimize(batch.data());
        commit_cursor += batch.size();
      } else {
        // A peer's block commits the next kBatch pending ids; only the id
        // matters for removal.
        std::vector<chain::Transaction> committed(kBatch);
        for (size_t i = 0; i < kBatch; ++i) {
          committed[i].id = commit_cursor++;
        }
        pool.RemoveCommitted(committed);
      }
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kRounds *
                          int64_t(kBatch + kBatch / 2));
}

void BM_TxPoolTakeBatch(benchmark::State& state) {
  TxPoolChurn<chain::TxPool>(state);
}
BENCHMARK(BM_TxPoolTakeBatch);

void BM_TxPoolTakeBatchLegacy(benchmark::State& state) {
  perf::ScopedLegacyMode legacy;  // also disables tx size memoization
  TxPoolChurn<LegacyTxPool>(state);
}
BENCHMARK(BM_TxPoolTakeBatchLegacy);

void BM_TriePut(benchmark::State& state) {
  storage::MemKv kv;
  storage::MerklePatriciaTrie trie(&kv, 1 << 18);
  Hash256 root = storage::MerklePatriciaTrie::EmptyRoot();
  Rng rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    auto r = trie.Put(root, "key" + std::to_string(i++ % 100000),
                      "value-payload-100b");
    root = *r;
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_TriePut);

void BM_TrieGet(benchmark::State& state) {
  storage::MemKv kv;
  storage::MerklePatriciaTrie trie(&kv, 1 << 18);
  Hash256 root = storage::MerklePatriciaTrie::EmptyRoot();
  for (uint64_t i = 0; i < 50000; ++i) {
    root = *trie.Put(root, "key" + std::to_string(i), "value");
  }
  Rng rng(2);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.Get(root, "key" + std::to_string(rng.Uniform(50000)), &out));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_TrieGet);

void BM_BucketTreePut(benchmark::State& state) {
  storage::MemKv kv;
  storage::BucketMerkleTree tree(&kv, 1024);
  uint64_t i = 0;
  for (auto _ : state) {
    tree.Put("key" + std::to_string(i++ % 100000), "value-payload-100b");
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_BucketTreePut);

void BM_MemKvPut(benchmark::State& state) {
  storage::MemKv kv;
  uint64_t i = 0;
  for (auto _ : state) {
    kv.Put("key" + std::to_string(i++ % 100000), "value-payload-100b");
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_MemKvPut);

void BM_DiskKvPut(benchmark::State& state) {
  auto kv = storage::DiskKv::Open("/tmp/bb_bench_diskkv.log");
  uint64_t i = 0;
  for (auto _ : state) {
    (*kv)->Put("key" + std::to_string(i++ % 100000), "value-payload-100b");
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
  std::remove("/tmp/bb_bench_diskkv.log");
}
BENCHMARK(BM_DiskKvPut);

void BM_VmDispatch(benchmark::State& state) {
  // Tight arithmetic loop: measures raw interpreter dispatch speed at a
  // given dispatch_overhead (0 = Parity-class, 60 = geth-class).
  auto program = vm::Assemble(R"(
  PUSH 0
loop:
  PUSH 1
  ADD
  DUP 0
  PUSH 100000
  LT
  JUMPI loop
  RETURN
)");
  vm::VmOptions opts;
  opts.dispatch_overhead = uint32_t(state.range(0));
  vm::Interpreter interp(opts);
  vm::MapHost host;
  vm::TxContext ctx;
  ctx.function = "main";
  for (auto _ : state) {
    auto r = interp.Execute(*program, ctx, &host);
    benchmark::DoNotOptimize(r.return_value);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 100000 * 6);
}
BENCHMARK(BM_VmDispatch)->Arg(0)->Arg(12)->Arg(60);

void BM_ContractYcsbWrite(benchmark::State& state) {
  auto program = vm::Assemble(workloads::KvStoreCasm());
  vm::Interpreter interp;
  vm::MapHost host;
  vm::TxContext ctx;
  ctx.function = "write";
  ctx.args = {vm::Value("user123"), vm::Value(std::string(100, 'v'))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Execute(*program, ctx, &host));
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_ContractYcsbWrite);

void BM_SimulationEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int count = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.At(double(i) * 0.001, [&count] { ++count; });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulationEventLoop);

// Same loop, but each callback pays the disabled-tracing test that every
// instrumented hook site performs. The CI perf-smoke gate holds the
// ratio of this benchmark to BM_SimulationEventLoop under 1.02 — the
// "zero overhead when disabled" contract of docs/OBSERVABILITY.md.
void BM_SimulationEventLoopTraceOff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int count = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.At(double(i) * 0.001, [&count, &sim] {
        if (auto* tr = sim.tracer()) {
          tr->Instant(0, "bench", "tick", sim.Now());
        }
        ++count;
      });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulationEventLoopTraceOff);

// Same loop again, but each callback opens a BB_PROF_SCOPE with no
// profiler attached to the thread — the disabled wall-profiler cost
// (one thread-local load + branch in ctor and dtor). The CI perf-smoke
// gate holds the ratio to BM_SimulationEventLoop under 1.03, the
// "<3% overhead when disabled" contract of docs/OBSERVABILITY.md.
void BM_SimulationEventLoopProfOff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int count = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.At(double(i) * 0.001, [&count] {
        BB_PROF_SCOPE("driver.bench_tick");
        ++count;
      });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulationEventLoopProfOff);

// Same loop once more, with the disabled flight-recorder test each hook
// site pays when no recorder is attached. The CI perf-smoke gate holds
// the ratio to BM_SimulationEventLoop under 1.03 — the black box must be
// free when disarmed (docs/OBSERVABILITY.md).
void BM_SimulationEventLoopRecOff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int count = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.At(double(i) * 0.001, [&count, &sim] {
        if (auto* rec = sim.recorder()) {
          rec->Phase(0, sim.Now(), "bench.tick");
        }
        ++count;
      });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulationEventLoopRecOff);

// And the disabled byte-accounting cost: the pointer test every
// instrumented container pays when no MemTracker is attached, plus a
// null mem::Gauge re-sync (the PlatformNode epilogue shape). The CI
// perf-smoke gate holds the ratio to BM_SimulationEventLoop under 1.03 —
// memory observability must also be free when off (docs/OBSERVABILITY.md).
void BM_SimulationEventLoopMemOff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int count = 0;
    obs::mem::Gauge gauge;  // default-constructed: not attached
    for (int i = 0; i < 10000; ++i) {
      sim.At(double(i) * 0.001, [&count, &sim, &gauge] {
        if (auto* mt = sim.memtracker()) {
          mt->Track(obs::MemTracker::kGlobalNode, obs::mem::kSimEvents, 1);
        }
        gauge.Set(uint64_t(count));
        ++count;
      });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulationEventLoopMemOff);

// sim_schedule: raw cost of pushing events through the queue in the
// mostly-monotonic pattern real runs produce (network delays of a few
// ms to a few hundred ms ahead of Now), then draining them. Dominated
// by queue insert/extract, not by the callbacks.
void BM_SimSchedule(benchmark::State& state) {
  const int kBatch = 10000;
  // Delay ladder approximating latency + CPU-cost + timer scales.
  static const double kDelays[] = {0.0005, 0.002, 0.01, 0.05, 0.003,
                                   0.25,   0.001, 1.0,  0.02, 0.007};
  for (auto _ : state) {
    sim::Simulation sim;
    uint64_t count = 0;
    for (int i = 0; i < kBatch; ++i) {
      sim.After(kDelays[i % 10], [&count] { ++count; });
      // Interleave scheduling with draining, as real runs do.
      if (i % 64 == 63) sim.RunUntil(sim.Now() + 0.001);
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kBatch);
}
BENCHMARK(BM_SimSchedule);

// sim_dispatch: self-perpetuating event chains — each event schedules
// its successor, so the queue stays small and the cost measured is the
// per-event dispatch path (pop, callable invocation, state capture).
void BM_SimDispatch(benchmark::State& state) {
  // Capture-heavy callable (two pointers, a double, an int), typical of
  // the network/consensus callbacks the real platforms schedule. Each
  // event reschedules a copy of itself, so the queue stays small and
  // the measured cost is the per-event dispatch path (pop, callable
  // invocation, state capture).
  struct Hop {
    sim::Simulation* sim;
    uint64_t* fired;
    double step;
    int left;
    void operator()() {
      ++*fired;
      if (left > 1) sim->After(step, Hop{sim, fired, step, left - 1});
    }
  };
  const int kChains = 16;
  const int kHops = 1000;
  for (auto _ : state) {
    sim::Simulation sim;
    uint64_t fired = 0;
    for (int c = 0; c < kChains; ++c) {
      sim.After(0.001 * (c + 1), Hop{&sim, &fired, 0.001 * (c + 1), kHops});
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kChains * kHops);
}
BENCHMARK(BM_SimDispatch);

// network_send: the full Send -> queue -> deliver -> HandleMessage path
// between two nodes, the single hottest edge in every macro benchmark.
void BM_NetworkSend(benchmark::State& state) {
  class Sink : public sim::Node {
   public:
    using sim::Node::Node;
    double HandleMessage(const sim::Message&) override { return 0; }
  };
  sim::Simulation sim;
  sim::Network net(&sim, {});
  Sink a(0, &net), b(1, &net);
  const int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      sim::Message m;
      m.from = 0;
      m.to = 1;
      m.type = "bench";
      m.size_bytes = 100;
      net.Send(std::move(m));
    }
    sim.RunUntil(sim.Now() + 1.0);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kBatch);
}
BENCHMARK(BM_NetworkSend);

void BM_NetworkMessageRoundtrip(benchmark::State& state) {
  class Sink : public sim::Node {
   public:
    using sim::Node::Node;
    double HandleMessage(const sim::Message&) override { return 0; }
  };
  sim::Simulation sim;
  sim::Network net(&sim, {});
  Sink a(0, &net), b(1, &net);
  for (auto _ : state) {
    sim::Message m;
    m.from = 0;
    m.to = 1;
    m.type = "bench";
    m.size_bytes = 100;
    net.Send(std::move(m));
    sim.RunUntil(sim.Now() + 0.01);
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_NetworkMessageRoundtrip);

}  // namespace
}  // namespace bb

BENCHMARK_MAIN();
