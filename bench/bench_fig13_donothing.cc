// Figure 13(c): DoNothing vs YCSB vs Smallbank throughput (8 clients,
// 8 servers) — isolates the consensus layer's share of the cost.
//
// Paper: Ethereum gains ~10% on DoNothing over YCSB (execution is ~10%
// overhead); Parity shows NO difference (its bottleneck is transaction
// signing, not consensus or execution); Hyperledger gains slightly.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  double duration = full ? 300 : 90;
  // Saturating rates per platform (found by the Fig 5 sweep).
  double sat_rate[3] = {256, 64, 384};

  PrintHeader("Figure 13(c): transaction throughput by workload "
              "(paper: Eth 256/284/328, Parity 45/45/46, HL 1122/1273/1285)");
  std::printf("%-12s | %12s %12s %12s\n", "platform", "Smallbank", "YCSB",
              "DoNothing");
  for (int pi = 0; pi < 3; ++pi) {
    double tput[3];
    WorkloadKind kinds[3] = {WorkloadKind::kSmallbank, WorkloadKind::kYcsb,
                             WorkloadKind::kDoNothing};
    for (int wi = 0; wi < 3; ++wi) {
      MacroConfig cfg;
      cfg.options = OptionsFor(kPlatforms[pi]);
      cfg.rate = sat_rate[pi];
      cfg.duration = duration;
      cfg.workload = kinds[wi];
      MacroRun run(cfg);
      tput[wi] = run.Run().throughput;
    }
    std::printf("%-12s | %12.1f %12.1f %12.1f\n", kPlatforms[pi], tput[0],
                tput[1], tput[2]);
  }
  return 0;
}
