// Figure 13(c): DoNothing vs YCSB vs Smallbank throughput (8 clients,
// 8 servers) — isolates the consensus layer's share of the cost.
//
// Paper: Ethereum gains ~10% on DoNothing over YCSB (execution is ~10%
// overhead); Parity shows NO difference (its bottleneck is transaction
// signing, not consensus or execution); Hyperledger gains slightly.

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  double duration = args.full ? 300 : 90;
  // Saturating rates per platform (found by the Fig 5 sweep).
  double sat_rate[3] = {256, 64, 384};
  WorkloadKind kinds[3] = {WorkloadKind::kSmallbank, WorkloadKind::kYcsb,
                           WorkloadKind::kDoNothing};

  SweepRunner runner("fig13_donothing", args);
  struct Row {
    int pi;
    int wi;
  };
  std::vector<Row> rows;
  for (int pi = 0; pi < 3; ++pi) {
    auto opts = OptionsFor(kPlatforms[pi]);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    for (int wi = 0; wi < 3; ++wi) {
      MacroConfig cfg;
      cfg.options = *opts;
      cfg.rate = sat_rate[pi];
      cfg.duration = duration;
      cfg.workload = kinds[wi];
      runner.Add(std::move(cfg), {{"platform", kPlatforms[pi]},
                                  {"workload", WorkloadName(kinds[wi])}});
      rows.push_back({pi, wi});
    }
  }

  double tput[3][3] = {};
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok()) return;
    tput[rows[i].pi][rows[i].wi] = o.report.throughput;
  });

  PrintHeader("Figure 13(c): transaction throughput by workload "
              "(paper: Eth 256/284/328, Parity 45/45/46, HL 1122/1273/1285)");
  std::printf("%-12s | %12s %12s %12s\n", "platform", "Smallbank", "YCSB",
              "DoNothing");
  for (int pi = 0; pi < 3; ++pi) {
    std::printf("%-12s | %12.1f %12.1f %12.1f\n", kPlatforms[pi], tput[pi][0],
                tput[pi][1], tput[pi][2]);
  }
  return ok ? 0 : 1;
}
