// Figure 7: performance scalability with the same number of clients and
// servers (YCSB, N = 1..32).
//
// Paper shape: Parity constant; Ethereum degrades roughly linearly
// beyond 8 servers; Hyperledger stops working beyond 16 servers (views
// diverge once the consensus channel saturates).

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  bool full = HasFlag(argc, argv, "--full");
  std::vector<size_t> sizes = full
      ? std::vector<size_t>{1, 2, 4, 8, 12, 16, 20, 24, 28, 32}
      : std::vector<size_t>{2, 4, 8, 16, 20, 28, 32};
  double duration = full ? 120 : 70;

  PrintHeader("Figure 7: scalability, #clients = #servers = N (YCSB)");
  std::printf("%-12s %4s | %10s %12s %12s\n", "platform", "N", "tput tx/s",
              "lat p50 (s)", "committed");
  for (int pi = 0; pi < 3; ++pi) {
    for (size_t n : sizes) {
      MacroConfig cfg;
      cfg.options = OptionsFor(kPlatforms[pi]);
      cfg.servers = n;
      cfg.clients = n;
      cfg.rate = 80;  // saturates every platform; drives PBFT past its channel capacity beyond 16 nodes
      cfg.duration = duration;
      cfg.drain = 20;
      MacroRun run(cfg);
      auto r = run.Run();
      std::printf("%-12s %4zu | %10.1f %12.2f %12llu\n", kPlatforms[pi], n,
                  r.throughput, r.latency_p50,
                  (unsigned long long)r.committed);
    }
  }
  return 0;
}
