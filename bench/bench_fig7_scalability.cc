// Figure 7: performance scalability with the same number of clients and
// servers (YCSB, N = 1..32).
//
// Paper shape: Parity constant; Ethereum degrades roughly linearly
// beyond 8 servers; Hyperledger stops working beyond 16 servers (views
// diverge once the consensus channel saturates).

#include "common.h"

using namespace bb;
using namespace bb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  std::vector<size_t> sizes = args.full
      ? std::vector<size_t>{1, 2, 4, 8, 12, 16, 20, 24, 28, 32}
      : std::vector<size_t>{2, 4, 8, 16, 20, 28, 32};
  double duration = args.full ? 120 : 70;

  SweepRunner runner("fig7_scalability", args);
  struct Row {
    const char* platform;
    size_t n;
  };
  std::vector<Row> rows;
  for (int pi = 0; pi < 3; ++pi) {
    auto opts = OptionsFor(kPlatforms[pi]);
    if (!opts.ok()) return UsageError(argv[0], opts.status());
    for (size_t n : sizes) {
      MacroConfig cfg;
      cfg.options = *opts;
      cfg.servers = n;
      cfg.clients = n;
      cfg.rate = 80;  // saturates every platform; drives PBFT past its channel capacity beyond 16 nodes
      cfg.duration = duration;
      cfg.drain = 20;
      runner.Add(std::move(cfg), {{"platform", kPlatforms[pi]},
                                  {"n", std::to_string(n)}});
      rows.push_back({kPlatforms[pi], n});
    }
  }

  PrintHeader("Figure 7: scalability, #clients = #servers = N (YCSB)");
  std::printf("%-12s %4s | %10s %12s %12s\n", "platform", "N", "tput tx/s",
              "lat p50 (s)", "committed");
  bool ok = runner.Run([&](size_t i, const SweepOutcome& o) {
    if (!o.status.ok()) return;
    std::printf("%-12s %4zu | %10.1f %12.2f %12llu\n", rows[i].platform,
                rows[i].n, o.report.throughput, o.report.latency_p50,
                (unsigned long long)o.report.committed);
  });
  return ok ? 0 : 1;
}
