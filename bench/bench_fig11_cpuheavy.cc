// Figure 11: CPUHeavy — quicksort over a descending array, measured as
// real execution time and (accounted) peak memory per execution engine:
//   geth-style EVM    (slow dispatch, heavily boxed words)
//   Parity-style EVM  (optimized dispatch, leaner boxing)
//   native chaincode  (compiled machine code, Hyperledger)
//
// Paper (sizes 1M/10M/100M): Ethereum 10.5 s / 79.6 s / OOM with
// 4.1 GB / 22.8 GB memory; Parity 3.0 / 24.0 / 232.8 s; Hyperledger
// 0.19 / 0.33 / 1.94 s. Default sizes here are scaled one decade down
// (100K/1M/10M) so the full suite stays fast; pass --full for 1M/10M/
// 100M (the geth model OOMs at the largest size either way).

#include <chrono>

#include "common.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "vm/native.h"
#include "workloads/contracts.h"

using namespace bb;
using namespace bb::bench;

namespace {

struct EngineSpec {
  const char* name;
  bool native;
  vm::VmOptions vm;
};

struct Cell {
  bool ok;
  bool oom;
  double seconds;
  uint64_t peak_bytes;
};

Cell RunSort(const EngineSpec& spec, int64_t n) {
  vm::MapHost host;
  vm::TxContext ctx;
  ctx.function = "sort";
  ctx.args = {vm::Value(n)};

  auto t0 = std::chrono::steady_clock::now();
  vm::ExecReceipt r;
  if (spec.native) {
    workloads::RegisterAllChaincodes();
    auto cc = vm::ChaincodeRegistry::Instance().Create(
        workloads::kCpuHeavyChaincode);
    r = vm::NativeRuntime().Execute(cc->get(), ctx, &host);
    // Native peak memory: the array itself (8 B elements) plus the
    // partition stack; no boxing.
    r.peak_memory_bytes = uint64_t(n) * 8 + (1 << 16);
  } else {
    auto program = vm::Assemble(workloads::CpuHeavyCasm());
    r = vm::Interpreter(spec.vm).Execute(*program, ctx, &host);
  }
  auto t1 = std::chrono::steady_clock::now();
  Cell c;
  c.ok = r.status.ok();
  c.oom = r.status.IsOutOfMemory();
  c.seconds = std::chrono::duration<double>(t1 - t0).count();
  c.peak_bytes = r.peak_memory_bytes;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv);
  std::vector<int64_t> sizes = args.full
      ? std::vector<int64_t>{1'000'000, 10'000'000, 100'000'000}
      : std::vector<int64_t>{10'000, 100'000, 1'000'000};

  auto eth = OptionsFor("ethereum");
  if (!eth.ok()) return UsageError(argv[0], eth.status());
  auto par = OptionsFor("parity");
  if (!par.ok()) return UsageError(argv[0], par.status());
  // Model the testbed's 32 GB memory ceiling relative to the sweep: the
  // geth-style engine (2200 B/word accounted) dies at the largest size,
  // exactly as in the paper.
  eth->vm.memory_word_limit = uint64_t(double(sizes.back()) * 0.6);
  EngineSpec engines[] = {
      {"ethereum(EVM)", false, eth->vm},
      {"parity(EVM)", false, par->vm},
      {"hyperledger(native)", false, {}},
  };
  engines[2].native = true;

  util::Json rows = util::Json::Array();

  PrintHeader("Figure 11: CPUHeavy — execution time and peak memory "
              "(paper, one decade up: Eth 10.5/79.6/OOM s, Parity "
              "3.0/24.0/232.8 s, HL 0.19/0.33/1.94 s)");
  std::printf("%-22s %12s | %12s %14s\n", "engine", "input size", "time (s)",
              "peak mem (MB)");
  for (const auto& spec : engines) {
    for (int64_t n : sizes) {
      Cell c = RunSort(spec, n);
      if (c.oom) {
        std::printf("%-22s %12lld | %12s %14s\n", spec.name,
                    (long long)n, "X (OOM)", "X");
      } else if (!c.ok) {
        std::printf("%-22s %12lld | execution failed\n", spec.name,
                    (long long)n);
      } else {
        std::printf("%-22s %12lld | %12.2f %14.1f\n", spec.name,
                    (long long)n, c.seconds,
                    double(c.peak_bytes) / 1e6);
      }
      util::Json row = util::Json::Object();
      util::Json labels = util::Json::Object();
      labels.Set("engine", spec.name);
      labels.Set("size", std::to_string(n));
      row.Set("labels", std::move(labels));
      row.Set("status", c.oom ? "OOM" : (c.ok ? "Ok" : "FAILED"));
      if (c.ok) {
        util::Json metrics = util::Json::Object();
        metrics.Set("seconds", c.seconds);
        metrics.Set("peak_bytes", c.peak_bytes);
        row.Set("metrics", std::move(metrics));
      }
      rows.Push(std::move(row));
    }
  }
  std::printf("\nAll engines are single-threaded (none of the paper's "
              "systems used more than one core).\n");

  if (!args.json_path.empty()) {
    util::Json doc = util::Json::Object();
    doc.Set("schema", "blockbench-sweep-v1");
    doc.Set("bench", "fig11_cpuheavy");
    doc.Set("full", args.full);
    doc.Set("rows", std::move(rows));
    std::string text = doc.Dump(2);
    text.push_back('\n');
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fig11_cpuheavy: cannot write %s\n",
                   args.json_path.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return 0;
}
